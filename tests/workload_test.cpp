// Tests for the synthetic workload generators: every generated layout must
// satisfy the paper's placement restrictions for every seed (parameterized
// sweep), the figure replicas must have their designed properties, and
// generation must be *portably* deterministic — the serving layer's GEN
// verb promises that an identical seed materializes a byte-identical
// layout (and therefore the same content-addressed session key) on every
// platform, which golden hashes of the serialized text pin down.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "core/netlist_router.hpp"
#include "io/text_format.hpp"
#include "workload/figures.hpp"
#include "workload/floorplan.hpp"
#include "workload/netgen.hpp"
#include "workload/padring.hpp"
#include "workload/rng.hpp"

namespace {

using namespace gcr;

class FloorplanSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FloorplanSeedSweep, GeneratedPlacementIsAlwaysValid) {
  workload::FloorplanOptions opts;
  opts.seed = GetParam();
  opts.cell_count = 24;
  layout::Layout lay = workload::random_floorplan(opts);
  EXPECT_EQ(lay.cells().size(), 24u);
  EXPECT_TRUE(lay.valid()) << "seed " << GetParam() << ": "
                           << lay.validate().front().detail;

  workload::PinGenOptions pins;
  pins.seed = GetParam() * 13 + 1;
  workload::sprinkle_pins(lay, pins);
  workload::NetGenOptions nets;
  nets.seed = GetParam() * 17 + 3;
  nets.net_count = 16;
  workload::generate_nets(lay, nets);
  EXPECT_TRUE(lay.valid()) << "seed " << GetParam() << " after pins/nets: "
                           << lay.validate().front().detail;
  EXPECT_EQ(lay.nets().size(), 16u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloorplanSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

class FloorplanSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FloorplanSizeSweep, ScalesAcrossCellCounts) {
  workload::FloorplanOptions opts;
  opts.cell_count = GetParam();
  opts.seed = 99;
  const layout::Layout lay = workload::random_floorplan(opts);
  EXPECT_EQ(lay.cells().size(), GetParam());
  EXPECT_TRUE(lay.valid());
}

INSTANTIATE_TEST_SUITE_P(Sizes, FloorplanSizeSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

TEST(Floorplan, Deterministic) {
  workload::FloorplanOptions opts;
  opts.seed = 7;
  const auto a = workload::random_floorplan(opts);
  const auto b = workload::random_floorplan(opts);
  ASSERT_EQ(a.cells().size(), b.cells().size());
  for (std::size_t i = 0; i < a.cells().size(); ++i) {
    EXPECT_EQ(a.cells()[i].outline(), b.cells()[i].outline());
  }
}

TEST(Floorplan, RespectsRequestedSeparation) {
  workload::FloorplanOptions opts;
  opts.min_separation = 16;
  opts.cell_count = 12;
  opts.seed = 5;
  const auto lay = workload::random_floorplan(opts);
  for (std::size_t i = 0; i < lay.cells().size(); ++i) {
    for (std::size_t j = i + 1; j < lay.cells().size(); ++j) {
      EXPECT_GE(lay.cells()[i].outline().separation(lay.cells()[j].outline()),
                16);
    }
  }
}

TEST(NetGen, PinsLandOnCellBoundaries) {
  workload::FloorplanOptions opts;
  opts.seed = 3;
  layout::Layout lay = workload::random_floorplan(opts);
  workload::sprinkle_pins(lay);
  for (const auto& cell : lay.cells()) {
    for (const auto& term : cell.terminals()) {
      ASSERT_FALSE(term.pins.empty());
      for (const auto& pin : term.pins) {
        EXPECT_TRUE(cell.outline().on_boundary(pin.pos))
            << cell.name() << " pin " << pin.pos;
      }
    }
  }
}

TEST(NetGen, NetsUseDistinctCells) {
  workload::FloorplanOptions opts;
  opts.seed = 3;
  layout::Layout lay = workload::random_floorplan(opts);
  workload::sprinkle_pins(lay);
  workload::generate_nets(lay);
  for (const auto& net : lay.nets()) {
    std::vector<std::uint32_t> cells;
    for (const auto& ref : net.terminals()) cells.push_back(ref.cell.value);
    std::sort(cells.begin(), cells.end());
    EXPECT_EQ(std::adjacent_find(cells.begin(), cells.end()), cells.end())
        << net.name() << " repeats a cell";
  }
}

TEST(Figures, Figure1IsValidAndRoutable) {
  const auto q = workload::figure1_layout();
  EXPECT_TRUE(q.layout.valid());
  const spatial::ObstacleIndex idx(q.layout.boundary(), q.layout.obstacles());
  EXPECT_TRUE(idx.routable(q.s));
  EXPECT_TRUE(idx.routable(q.d));
}

TEST(Figures, InvertedCornerHasTieGeometry) {
  const auto q = workload::inverted_corner_layout();
  EXPECT_TRUE(q.layout.valid());
  // Manhattan distance equals the obstacle-avoiding optimum: the block only
  // grazes the bounding box, so several 80-length routes exist.
  EXPECT_EQ(manhattan(q.s, q.d), 80);
}

class MazeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MazeSweep, CombMazeValidAndSerpentine) {
  const auto q = workload::comb_maze(GetParam());
  ASSERT_TRUE(q.layout.valid()) << q.layout.validate().front().detail;
  const spatial::ObstacleIndex idx(q.layout.boundary(), q.layout.obstacles());
  ASSERT_TRUE(idx.routable(q.s));
  ASSERT_TRUE(idx.routable(q.d));
  const spatial::EscapeLineSet lines(idx);
  const route::GridlessRouter router(idx, lines);
  const auto r = router.route(q.s, q.d);
  ASSERT_TRUE(r.found);
  // The serpentine forces a detour well beyond the Manhattan distance, and
  // it grows with the tooth count.
  EXPECT_GT(r.length, manhattan(q.s, q.d) +
                          static_cast<geom::Cost>(GetParam()) * 50);
}

TEST_P(MazeSweep, SpiralMazeValidAndSerpentine) {
  const auto q = workload::spiral_maze(GetParam());
  ASSERT_TRUE(q.layout.valid()) << q.layout.validate().front().detail;
  const spatial::ObstacleIndex idx(q.layout.boundary(), q.layout.obstacles());
  ASSERT_TRUE(idx.routable(q.s));
  ASSERT_TRUE(idx.routable(q.d));
  const spatial::EscapeLineSet lines(idx);
  const route::GridlessRouter router(idx, lines);
  const auto r = router.route(q.s, q.d);
  ASSERT_TRUE(r.found);
  EXPECT_GT(r.length, manhattan(q.s, q.d));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MazeSweep, ::testing::Values(2, 3, 4, 6));

TEST(PadRing, PadsOnBoundaryAndNetsRoutable) {
  workload::FloorplanOptions fp;
  fp.seed = 9;
  fp.cell_count = 9;
  fp.boundary = geom::Rect{0, 0, 512, 512};
  layout::Layout lay = workload::random_floorplan(fp);
  workload::sprinkle_pins(lay);

  workload::PadRingOptions pr;
  pr.pads_per_side = 3;
  const std::size_t nets = workload::add_pad_ring(lay, pr);
  EXPECT_EQ(lay.pads().size(), 12u);
  EXPECT_EQ(nets, 12u);  // connected_pct = 100
  for (const auto& pad : lay.pads()) {
    EXPECT_TRUE(lay.boundary().on_boundary(pad.pins[0].pos))
        << pad.name << " " << pad.pins[0].pos;
  }
  ASSERT_TRUE(lay.valid()) << lay.validate().front().detail;

  const route::NetlistRouter router(lay);
  const auto result = router.route_all();
  EXPECT_EQ(result.failed, 0u);
}

TEST(PadRing, ConnectedFractionRespected) {
  workload::FloorplanOptions fp;
  fp.seed = 10;
  layout::Layout lay = workload::random_floorplan(fp);
  workload::sprinkle_pins(lay);
  workload::PadRingOptions pr;
  pr.pads_per_side = 8;
  pr.connected_pct = 0;
  EXPECT_EQ(workload::add_pad_ring(lay, pr), 0u);
  EXPECT_EQ(lay.pads().size(), 32u);
  EXPECT_TRUE(lay.nets().empty());
}

TEST(PadRing, MultiTerminalPadNets) {
  workload::FloorplanOptions fp;
  fp.seed = 11;
  layout::Layout lay = workload::random_floorplan(fp);
  workload::sprinkle_pins(lay);
  workload::PadRingOptions pr;
  pr.pads_per_side = 2;
  pr.extra_terminals = 2;
  workload::add_pad_ring(lay, pr);
  for (const auto& net : lay.nets()) {
    EXPECT_EQ(net.terminals().size(), 4u);  // pad + 1 + 2 extras
  }
  EXPECT_TRUE(lay.valid());
}

TEST(PadRing, NoCoreTerminalsNoNets) {
  workload::FloorplanOptions fp;
  fp.seed = 12;
  layout::Layout lay = workload::random_floorplan(fp);  // no pins sprinkled
  EXPECT_EQ(workload::add_pad_ring(lay, {}), 0u);
}

// ------------------------------------------------- portable determinism

TEST(PortableRng, BoundedDrawStaysInRangeAndIsSeedStable) {
  std::mt19937_64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(workload::bounded_u64(rng, 7), 7u);
  }
  EXPECT_EQ(workload::bounded_u64(rng, 0), 0u);
  EXPECT_EQ(workload::bounded_u64(rng, 1), 0u);
  // Identical seeds give identical draw sequences.
  std::mt19937_64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(workload::bounded_u64(a, 1000), workload::bounded_u64(b, 1000));
  }
}

TEST(PortableRng, UniformIntIsInclusiveAndSignedSafe) {
  std::mt19937_64 rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = workload::uniform_int(rng, -2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(workload::uniform_int(rng, 5, 5), 5);
}

TEST(PortableRng, UniformIntSurvivesExtremeRanges) {
  // Unsigned values above INT64_MAX and full-width spans used to collapse
  // to lo via signed-cast overflow (and span+1 wrapping to 0).
  std::mt19937_64 rng(9);
  const std::uint64_t big_lo = 1ull << 63;
  bool moved = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t v =
        workload::uniform_int(rng, big_lo, big_lo + 1000);
    EXPECT_GE(v, big_lo);
    EXPECT_LE(v, big_lo + 1000);
    moved |= v != big_lo;
  }
  EXPECT_TRUE(moved);

  // Full 64-bit span: every draw is just the engine output.
  std::mt19937_64 a(13), b(13);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(workload::uniform_int(
                  a, std::uint64_t{0},
                  std::numeric_limits<std::uint64_t>::max()),
              b());
  }

  // Full signed span exercises the same wrap-free path.
  std::mt19937_64 c(17);
  (void)workload::uniform_int(c, std::numeric_limits<std::int64_t>::min(),
                              std::numeric_limits<std::int64_t>::max());
}

TEST(PortableRng, ShuffleIsAPermutationAndSeedStable) {
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::mt19937_64 rng(11);
  workload::portable_shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> want(50);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(sorted, want);

  std::vector<int> w(50);
  std::iota(w.begin(), w.end(), 0);
  std::mt19937_64 rng2(11);
  workload::portable_shuffle(w.begin(), w.end(), rng2);
  EXPECT_EQ(v, w);
}

/// FNV-1a 64 over the serialized layout — the same construction the serve
/// layer's content keys use, so a golden here freezes the session key a
/// GEN of these parameters produces.
std::uint64_t text_hash(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

TEST(Determinism, GeneratedLayoutsMatchGoldenHashes) {
  // These goldens pin the byte-exact serialized output of each generator.
  // mt19937_64 is fully specified and the samplers in workload/rng.hpp
  // avoid every implementation-defined distribution, so the values must
  // hold on any platform and standard library.  A mismatch means a
  // generator changed behaviour: deliberate changes must bump these
  // constants (and accept that cached GEN session keys roll over).
  const std::string standard = io::write_layout_string(
      workload::standard_workload(12, 512, 20, 42));
  EXPECT_EQ(standard.size(), 2232u);
  EXPECT_EQ(text_hash(standard), 0x36a0e016607eb360ull);

  workload::FloorplanOptions fp;
  fp.cell_count = 10;
  fp.seed = 9;
  const std::string floorplan =
      io::write_layout_string(workload::random_floorplan(fp));
  EXPECT_EQ(floorplan.size(), 293u);
  EXPECT_EQ(text_hash(floorplan), 0x9e137c54357a5796ull);

  layout::Layout ring = workload::standard_workload(8, 512, 10, 23);
  workload::PadRingOptions pr;
  pr.seed = 26;
  workload::add_pad_ring(ring, pr);
  const std::string padring = io::write_layout_string(ring);
  EXPECT_EQ(padring.size(), 1795u);
  EXPECT_EQ(text_hash(padring), 0xe0f870f064d90c95ull);
}

TEST(Determinism, RepeatedGenerationIsByteIdentical) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1000ull}) {
    EXPECT_EQ(io::write_layout_string(
                  workload::standard_workload(10, 512, 14, seed)),
              io::write_layout_string(
                  workload::standard_workload(10, 512, 14, seed)))
        << "seed " << seed;
  }
}

}  // namespace
