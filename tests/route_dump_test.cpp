// Tests for the route-dump serialization: round trip, failure records, and
// malformed-input diagnostics.

#include <gtest/gtest.h>

#include "core/netlist_router.hpp"
#include "io/route_dump.hpp"
#include "io/text_format.hpp"
#include "workload/floorplan.hpp"
#include "workload/netgen.hpp"

namespace {

using namespace gcr;

layout::Layout routed_layout() {
  workload::FloorplanOptions fp;
  fp.seed = 5;
  fp.cell_count = 9;
  fp.boundary = geom::Rect{0, 0, 512, 512};
  layout::Layout lay = workload::random_floorplan(fp);
  workload::PinGenOptions pg;
  pg.seed = 6;
  workload::sprinkle_pins(lay, pg);
  workload::NetGenOptions ng;
  ng.seed = 7;
  ng.net_count = 8;
  workload::generate_nets(lay, ng);
  return lay;
}

TEST(RouteDump, RoundTrip) {
  const layout::Layout lay = routed_layout();
  const route::NetlistRouter router(lay);
  const auto result = router.route_all();
  ASSERT_EQ(result.failed, 0u);

  const std::string text = io::write_routes_string(lay, result);
  const auto back = io::read_routes_string(text, lay);
  EXPECT_EQ(back.routed, result.routed);
  EXPECT_EQ(back.failed, result.failed);
  EXPECT_EQ(back.total_wirelength, result.total_wirelength);
  for (std::size_t n = 0; n < result.routes.size(); ++n) {
    EXPECT_EQ(back.routes[n].ok, result.routes[n].ok);
    EXPECT_EQ(back.routes[n].segments, result.routes[n].segments) << n;
    EXPECT_EQ(back.routes[n].wirelength, result.routes[n].wirelength) << n;
  }
  // Idempotent serialization.
  EXPECT_EQ(io::write_routes_string(lay, back), text);
}

TEST(RouteDump, FailedNetsRecorded) {
  const layout::Layout lay = routed_layout();
  const route::NetlistRouter router(lay);
  auto result = router.route_all();
  result.routes[2] = route::NetRoute{};  // mark failed
  const std::string text = io::write_routes_string(lay, result);
  EXPECT_NE(text.find(lay.nets()[2].name() + " failed"), std::string::npos);
  const auto back = io::read_routes_string(text, lay);
  EXPECT_FALSE(back.routes[2].ok);
  EXPECT_EQ(back.failed, 1u);
}

TEST(RouteDump, Errors) {
  const layout::Layout lay = routed_layout();
  EXPECT_THROW(io::read_routes_string("bogus", lay), io::ParseError);
  EXPECT_THROW(io::read_routes_string("seg 0 0 5 0", lay), io::ParseError);
  EXPECT_THROW(io::read_routes_string("route ghost ok wirelength 0", lay),
               io::ParseError);
  EXPECT_THROW(io::read_routes_string(
                   "route " + lay.nets()[0].name() + " maybe", lay),
               io::ParseError);
  // Diagonal segment.
  EXPECT_THROW(io::read_routes_string("route " + lay.nets()[0].name() +
                                          " ok wirelength 10\nseg 0 0 5 5",
                                      lay),
               io::ParseError);
  // Wirelength lie.
  EXPECT_THROW(io::read_routes_string("route " + lay.nets()[0].name() +
                                          " ok wirelength 99\nseg 0 0 5 0",
                                      lay),
               io::ParseError);
}

}  // namespace
