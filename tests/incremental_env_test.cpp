// Differential tests for the incremental SearchEnvironment: obstacle-index
// bucket inserts and localized escape-line regeneration must be *exactly*
// equivalent to rebuilding both structures from scratch after every change.
// Sequential-mode netlist routing — the consumer that motivated the
// incremental path — is checked end-to-end for bit-identical routes against
// a reference loop that rebuilds per net, across the fuzz layout corpus.

#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <vector>

#include "core/netlist_router.hpp"
#include "core/search_environment.hpp"
#include "fuzz_env.hpp"
#include "reference_sequential.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"
#include "workload/floorplan.hpp"
#include "workload/netgen.hpp"

namespace {

using namespace gcr;
using geom::Coord;
using geom::Dir;
using geom::Point;
using geom::Rect;
using geom::Segment;

// ------------------------------------------------------------ helpers

/// Random rectangles in a `extent`^2 region; sizes skew small, like wire
/// halos.  Overlaps are intentional: sequential-mode halos overlap cells.
std::vector<Rect> random_rects(std::mt19937_64& rng, std::size_t count,
                               Coord extent) {
  std::uniform_int_distribution<Coord> pos(0, extent - 1);
  std::uniform_int_distribution<Coord> len(0, extent / 4);
  std::vector<Rect> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Coord x = pos(rng), y = pos(rng);
    out.push_back(Rect{x, y, x + len(rng), y + len(rng)});
  }
  return out;
}

/// Asserts every observable ObstacleIndex query answers identically.
void expect_index_equivalent(const spatial::ObstacleIndex& incremental,
                             const spatial::ObstacleIndex& fresh,
                             std::mt19937_64& rng, int probes) {
  ASSERT_EQ(incremental.size(), fresh.size());
  ASSERT_EQ(incremental.obstacles(), fresh.obstacles());
  const Rect& b = fresh.boundary();
  std::uniform_int_distribution<Coord> px(b.xlo, b.xhi);
  std::uniform_int_distribution<Coord> py(b.ylo, b.yhi);
  for (int i = 0; i < probes; ++i) {
    const Point p{px(rng), py(rng)};
    EXPECT_EQ(incremental.interior(p), fresh.interior(p)) << p;
    EXPECT_EQ(incremental.routable(p), fresh.routable(p)) << p;
    for (const Dir d : geom::kAllDirs) {
      EXPECT_EQ(incremental.trace(p, d).stop, fresh.trace(p, d).stop)
          << p << " dir " << static_cast<int>(d);
    }
    const Point q{px(rng), py(rng)};
    if (p.x == q.x || p.y == q.y) {
      const Segment s{p, q};
      EXPECT_EQ(incremental.segment_blocked(s), fresh.segment_blocked(s)) << s;
    }
    EXPECT_EQ(incremental.query(Rect{p, q}), fresh.query(Rect{p, q}));
  }
}

/// Asserts crossings queries answer identically from random routable probes.
void expect_lines_equivalent(const spatial::EscapeLineSet& incremental,
                             const spatial::EscapeLineSet& fresh,
                             const spatial::ObstacleIndex& index,
                             std::mt19937_64& rng, int probes) {
  const Rect& b = index.boundary();
  std::uniform_int_distribution<Coord> px(b.xlo, b.xhi);
  std::uniform_int_distribution<Coord> py(b.ylo, b.yhi);
  for (int i = 0; i < probes; ++i) {
    const Point p{px(rng), py(rng)};
    if (!index.routable(p)) continue;
    for (const Dir d : geom::kAllDirs) {
      const Coord stop = index.trace(p, d).stop;
      EXPECT_EQ(incremental.crossings(p, d, stop),
                fresh.crossings(p, d, stop))
          << p << " dir " << static_cast<int>(d);
    }
  }
}

layout::Layout corpus_layout(std::uint64_t seed) {
  workload::FloorplanOptions fp;
  fp.seed = seed;
  fp.cell_count = 6 + seed % 7;
  fp.boundary = Rect{0, 0, 384, 384};
  layout::Layout lay = workload::random_floorplan(fp);
  workload::PinGenOptions pins;
  pins.seed = seed + 1;
  workload::sprinkle_pins(lay, pins);
  workload::NetGenOptions ng;
  ng.seed = seed + 2;
  ng.net_count = 8 + seed % 9;
  ng.max_terminals = 3;
  workload::generate_nets(lay, ng);
  return lay;
}

void expect_results_identical(const route::NetlistResult& got,
                              const route::NetlistResult& want) {
  EXPECT_EQ(got.routed, want.routed);
  EXPECT_EQ(got.failed, want.failed);
  EXPECT_EQ(got.total_wirelength, want.total_wirelength);
  EXPECT_EQ(got.stats.nodes_expanded, want.stats.nodes_expanded);
  EXPECT_EQ(got.stats.nodes_generated, want.stats.nodes_generated);
  EXPECT_EQ(got.stats.nodes_reopened, want.stats.nodes_reopened);
  ASSERT_EQ(got.routes.size(), want.routes.size());
  for (std::size_t i = 0; i < want.routes.size(); ++i) {
    EXPECT_EQ(got.routes[i].ok, want.routes[i].ok) << "net " << i;
    EXPECT_EQ(got.routes[i].segments, want.routes[i].segments) << "net " << i;
    EXPECT_EQ(got.routes[i].wirelength, want.routes[i].wirelength)
        << "net " << i;
    EXPECT_EQ(got.routes[i].stats.nodes_expanded,
              want.routes[i].stats.nodes_expanded)
        << "net " << i;
  }
}

// ------------------------------------------------- ObstacleIndex::insert

TEST(IncrementalIndex, InsertMatchesFromScratchBuild) {
  std::mt19937_64 rng(0xA11CE);
  const int iters = test::fuzz_iters(40);
  for (int round = 0; round < 8; ++round) {
    const std::vector<Rect> rects = random_rects(rng, 24, 200);
    spatial::ObstacleIndex incremental(Rect{0, 0, 200, 200}, {});
    for (std::size_t n = 0; n < rects.size(); ++n) {
      incremental.insert(rects[n]);
      if (n % 5 != 0 && n + 1 != rects.size()) continue;  // spot-check
      const spatial::ObstacleIndex fresh(
          Rect{0, 0, 200, 200},
          std::vector<Rect>(rects.begin(), rects.begin() + n + 1));
      expect_index_equivalent(incremental, fresh, rng, iters);
    }
  }
}

TEST(IncrementalIndex, InsertIntoDefaultConstructedIndex) {
  // A default-constructed index never built its bucket grid; the first
  // insert must lay it out instead of writing into empty buckets (this was
  // an ASan finding).
  spatial::ObstacleIndex idx;
  idx.insert(Rect{0, 0, 10, 10});
  idx.insert(Rect{20, 0, 30, 10});
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_TRUE(idx.interior(Point{5, 5}));
  EXPECT_FALSE(idx.interior(Point{15, 5}));
  EXPECT_EQ(idx.query(Rect{0, 0, 40, 10}).size(), 2u);
}

TEST(IncrementalIndex, InsertAcceptsRectsBeyondBoundary) {
  // Wire halos inflate past the routing boundary; inserts and queries must
  // behave exactly like a from-scratch build over the same rects.
  std::mt19937_64 rng(7);
  spatial::ObstacleIndex incremental(Rect{0, 0, 100, 100},
                                     {Rect{40, 40, 60, 60}});
  incremental.insert(Rect{-5, 20, 30, 30});    // protrudes west
  incremental.insert(Rect{90, 95, 120, 108});  // protrudes north-east
  const spatial::ObstacleIndex fresh(
      Rect{0, 0, 100, 100},
      {Rect{40, 40, 60, 60}, Rect{-5, 20, 30, 30}, Rect{90, 95, 120, 108}});
  expect_index_equivalent(incremental, fresh, rng, 200);
  EXPECT_TRUE(incremental.interior(Point{0, 25}));  // inside the west halo
}

// -------------------------------------------- EscapeLineSet::insert_obstacle

TEST(IncrementalLines, InsertMatchesFromScratchBuild) {
  std::mt19937_64 rng(0xBEEF);
  const int iters = test::fuzz_iters(40);
  for (int round = 0; round < 8; ++round) {
    const std::vector<Rect> rects = random_rects(rng, 20, 200);
    spatial::ObstacleIndex index(Rect{0, 0, 200, 200}, {});
    spatial::EscapeLineSet incremental(index);
    for (std::size_t n = 0; n < rects.size(); ++n) {
      index.insert(rects[n]);
      incremental.insert_obstacle(index, n);
      if (n % 4 != 0 && n + 1 != rects.size()) continue;  // spot-check
      const spatial::EscapeLineSet fresh(index);
      ASSERT_EQ(incremental.lines().size(), fresh.lines().size());
      EXPECT_EQ(incremental.lines(), fresh.lines());
      expect_lines_equivalent(incremental, fresh, index, rng, iters);
    }
  }
}

// -------------------------------------------------- SearchEnvironment

TEST(SearchEnvironment, CommitRouteMatchesFromScratchRebuild) {
  std::mt19937_64 rng(11);
  const layout::Layout lay = corpus_layout(3);
  route::SearchEnvironment env(lay);

  const std::vector<Segment> wires{
      {Point{10, 30}, Point{120, 30}},
      {Point{120, 30}, Point{120, 90}},
      {Point{50, 200}, Point{50, 200}},  // degenerate via stub
  };
  env.commit_route(wires, 2);
  EXPECT_EQ(env.committed(), wires.size());

  std::vector<Rect> all = lay.obstacles();
  for (const Segment& s : wires) all.push_back(s.bounds().inflated(2));
  const spatial::ObstacleIndex fresh_index(lay.boundary(), all);
  const spatial::EscapeLineSet fresh_lines(fresh_index);
  expect_index_equivalent(env.index(), fresh_index, rng, 300);
  expect_lines_equivalent(env.lines(), fresh_lines, fresh_index, rng, 300);
}

TEST(SearchEnvironment, RebuildFallbackPreservesBehavior) {
  // rebuild() is the invalidation path for non-local edits: it re-sorts,
  // re-buckets, and re-traces everything, and must answer identically.
  std::mt19937_64 rng(13);
  const layout::Layout lay = corpus_layout(5);
  route::SearchEnvironment incremental(lay);
  incremental.commit_route({{Point{20, 40}, Point{200, 40}}}, 1);

  route::SearchEnvironment rebuilt = incremental;
  const std::size_t builds = route::SearchEnvironment::build_count();
  rebuilt.rebuild();
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds + 1);
  EXPECT_EQ(rebuilt.committed(), incremental.committed());
  expect_index_equivalent(rebuilt.index(), incremental.index(), rng, 300);
  expect_lines_equivalent(rebuilt.lines(), incremental.lines(),
                          incremental.index(), rng, 300);
}

TEST(SearchEnvironment, RebuildAgainstLayoutDiscardsCommits) {
  const layout::Layout lay = corpus_layout(7);
  route::SearchEnvironment env(lay);
  env.commit_route({{Point{20, 40}, Point{200, 40}}}, 1);
  ASSERT_GT(env.committed(), 0u);
  env.rebuild(lay);
  EXPECT_EQ(env.committed(), 0u);
  EXPECT_EQ(env.index().size(), lay.obstacles().size());
}

TEST(SearchEnvironment, CopyDoesNotCountAsBuild) {
  const layout::Layout lay = corpus_layout(9);
  const route::SearchEnvironment env(lay);
  const std::size_t builds = route::SearchEnvironment::build_count();
  const route::SearchEnvironment copy = env;
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds);
  EXPECT_EQ(copy.index().size(), env.index().size());
}

// ------------------------------------------ sequential-mode differential

class SequentialDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SequentialDifferential, IncrementalRoutesBitIdenticalToPerNetRebuild) {
  const layout::Layout lay = corpus_layout(GetParam());
  ASSERT_TRUE(lay.valid());

  route::NetlistOptions opts;
  opts.mode = route::NetlistMode::kSequential;

  const auto want = test::reference_sequential(lay, opts);
  const auto got = route::NetlistRouter(lay).route_all(opts);
  expect_results_identical(got, want);

  // And through a cached (injected) environment — the serving-layer path.
  const route::SearchEnvironment env(lay);
  const std::size_t builds = route::SearchEnvironment::build_count();
  const auto cached = route::NetlistRouter(lay, env).route_all(opts);
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds)
      << "sequential mode must not rebuild when an environment is injected";
  expect_results_identical(cached, want);
}

INSTANTIATE_TEST_SUITE_P(FuzzCorpus, SequentialDifferential,
                         ::testing::ValuesIn(test::fuzz_seeds(41, 17, 6)));

TEST(SequentialDifferential, NonTrivialHaloAndOrder) {
  // Wider halos force detours/failures; a custom order exercises the
  // accounting replay.  Both must still match the reference exactly.
  const layout::Layout lay = corpus_layout(2);
  route::NetlistOptions opts;
  opts.mode = route::NetlistMode::kSequential;
  opts.wire_halo = 4;
  opts.order.resize(lay.nets().size());
  for (std::size_t i = 0; i < opts.order.size(); ++i) {
    opts.order[i] = opts.order.size() - 1 - i;
  }

  const auto want = test::reference_sequential(lay, opts);
  const auto got = route::NetlistRouter(lay).route_all(opts);
  expect_results_identical(got, want);
}

// ----------------------------------------------- parallel line construction

TEST(EscapeLineBuild, ParallelConstructionIsBitIdentical) {
  std::mt19937_64 rng(0xCAFE);
  // Large enough to exceed the auto-parallel threshold.
  const std::vector<Rect> rects = random_rects(rng, 600, 4000);
  const spatial::ObstacleIndex index(Rect{0, 0, 4000, 4000}, rects);
  const spatial::EscapeLineSet serial(index, 1);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const spatial::EscapeLineSet parallel(index, threads);
    EXPECT_EQ(serial.lines(), parallel.lines()) << threads << " threads";
  }
  const spatial::EscapeLineSet auto_threads(index, 0);
  EXPECT_EQ(serial.lines(), auto_threads.lines());
}

}  // namespace
