// Differential tests for the incremental SearchEnvironment: obstacle-index
// bucket inserts and localized escape-line regeneration must be *exactly*
// equivalent to rebuilding both structures from scratch after every change.
// Sequential-mode netlist routing — the consumer that motivated the
// incremental path — is checked end-to-end for bit-identical routes against
// a reference loop that rebuilds per net, across the fuzz layout corpus.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <random>
#include <stdexcept>
#include <vector>

#include "core/netlist_router.hpp"
#include "core/search_environment.hpp"
#include "core/steiner.hpp"
#include "fuzz_env.hpp"
#include "reference_sequential.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"
#include "workload/floorplan.hpp"
#include "workload/netgen.hpp"

namespace {

using namespace gcr;
using geom::Coord;
using geom::Dir;
using geom::Point;
using geom::Rect;
using geom::Segment;

// ------------------------------------------------------------ helpers

/// Random rectangles in a `extent`^2 region; sizes skew small, like wire
/// halos.  Overlaps are intentional: sequential-mode halos overlap cells.
std::vector<Rect> random_rects(std::mt19937_64& rng, std::size_t count,
                               Coord extent) {
  std::uniform_int_distribution<Coord> pos(0, extent - 1);
  std::uniform_int_distribution<Coord> len(0, extent / 4);
  std::vector<Rect> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Coord x = pos(rng), y = pos(rng);
    out.push_back(Rect{x, y, x + len(rng), y + len(rng)});
  }
  return out;
}

/// Asserts every observable ObstacleIndex query answers identically.
void expect_index_equivalent(const spatial::ObstacleIndex& incremental,
                             const spatial::ObstacleIndex& fresh,
                             std::mt19937_64& rng, int probes) {
  ASSERT_EQ(incremental.size(), fresh.size());
  ASSERT_EQ(incremental.obstacles(), fresh.obstacles());
  const Rect& b = fresh.boundary();
  std::uniform_int_distribution<Coord> px(b.xlo, b.xhi);
  std::uniform_int_distribution<Coord> py(b.ylo, b.yhi);
  for (int i = 0; i < probes; ++i) {
    const Point p{px(rng), py(rng)};
    EXPECT_EQ(incremental.interior(p), fresh.interior(p)) << p;
    EXPECT_EQ(incremental.routable(p), fresh.routable(p)) << p;
    for (const Dir d : geom::kAllDirs) {
      EXPECT_EQ(incremental.trace(p, d).stop, fresh.trace(p, d).stop)
          << p << " dir " << static_cast<int>(d);
    }
    const Point q{px(rng), py(rng)};
    if (p.x == q.x || p.y == q.y) {
      const Segment s{p, q};
      EXPECT_EQ(incremental.segment_blocked(s), fresh.segment_blocked(s)) << s;
    }
    EXPECT_EQ(incremental.query(Rect{p, q}), fresh.query(Rect{p, q}));
  }
}

/// Asserts crossings queries answer identically from random routable probes.
void expect_lines_equivalent(const spatial::EscapeLineSet& incremental,
                             const spatial::EscapeLineSet& fresh,
                             const spatial::ObstacleIndex& index,
                             std::mt19937_64& rng, int probes) {
  const Rect& b = index.boundary();
  std::uniform_int_distribution<Coord> px(b.xlo, b.xhi);
  std::uniform_int_distribution<Coord> py(b.ylo, b.yhi);
  for (int i = 0; i < probes; ++i) {
    const Point p{px(rng), py(rng)};
    if (!index.routable(p)) continue;
    for (const Dir d : geom::kAllDirs) {
      const Coord stop = index.trace(p, d).stop;
      EXPECT_EQ(incremental.crossings(p, d, stop),
                fresh.crossings(p, d, stop))
          << p << " dir " << static_cast<int>(d);
    }
  }
}

/// Behavioral index equivalence for the removal path: a tombstoned index
/// and a fresh build over the live rects number their obstacles
/// differently, so identity-carrying outputs (`query` indices) are
/// compared as *rect sets* and everything else by observable geometry.
void expect_index_equivalent_behavior(const spatial::ObstacleIndex& got,
                                      const spatial::ObstacleIndex& want,
                                      std::mt19937_64& rng, int probes) {
  ASSERT_EQ(got.live_size(), want.live_size());
  const Rect& b = want.boundary();
  std::uniform_int_distribution<Coord> px(b.xlo, b.xhi);
  std::uniform_int_distribution<Coord> py(b.ylo, b.yhi);
  const auto rect_set = [](const spatial::ObstacleIndex& idx,
                           const std::vector<std::size_t>& hits) {
    std::vector<Rect> out;
    out.reserve(hits.size());
    for (const std::size_t i : hits) out.push_back(idx.obstacles()[i]);
    std::sort(out.begin(), out.end());
    return out;
  };
  for (int i = 0; i < probes; ++i) {
    const Point p{px(rng), py(rng)};
    EXPECT_EQ(got.interior(p), want.interior(p)) << p;
    EXPECT_EQ(got.routable(p), want.routable(p)) << p;
    for (const Dir d : geom::kAllDirs) {
      EXPECT_EQ(got.trace(p, d).stop, want.trace(p, d).stop)
          << p << " dir " << static_cast<int>(d);
    }
    const Point q{px(rng), py(rng)};
    if (p.x == q.x || p.y == q.y) {
      const Segment s{p, q};
      EXPECT_EQ(got.segment_blocked(s), want.segment_blocked(s)) << s;
    }
    EXPECT_EQ(rect_set(got, got.query(Rect{p, q})),
              rect_set(want, want.query(Rect{p, q})));
  }
}

layout::Layout corpus_layout(std::uint64_t seed) {
  workload::FloorplanOptions fp;
  fp.seed = seed;
  fp.cell_count = 6 + seed % 7;
  fp.boundary = Rect{0, 0, 384, 384};
  layout::Layout lay = workload::random_floorplan(fp);
  workload::PinGenOptions pins;
  pins.seed = seed + 1;
  workload::sprinkle_pins(lay, pins);
  workload::NetGenOptions ng;
  ng.seed = seed + 2;
  ng.net_count = 8 + seed % 9;
  ng.max_terminals = 3;
  workload::generate_nets(lay, ng);
  return lay;
}

void expect_results_identical(const route::NetlistResult& got,
                              const route::NetlistResult& want) {
  EXPECT_EQ(got.routed, want.routed);
  EXPECT_EQ(got.failed, want.failed);
  EXPECT_EQ(got.total_wirelength, want.total_wirelength);
  EXPECT_EQ(got.stats.nodes_expanded, want.stats.nodes_expanded);
  EXPECT_EQ(got.stats.nodes_generated, want.stats.nodes_generated);
  EXPECT_EQ(got.stats.nodes_reopened, want.stats.nodes_reopened);
  ASSERT_EQ(got.routes.size(), want.routes.size());
  for (std::size_t i = 0; i < want.routes.size(); ++i) {
    EXPECT_EQ(got.routes[i].ok, want.routes[i].ok) << "net " << i;
    EXPECT_EQ(got.routes[i].segments, want.routes[i].segments) << "net " << i;
    EXPECT_EQ(got.routes[i].wirelength, want.routes[i].wirelength)
        << "net " << i;
    EXPECT_EQ(got.routes[i].stats.nodes_expanded,
              want.routes[i].stats.nodes_expanded)
        << "net " << i;
  }
}

// ------------------------------------------------- ObstacleIndex::insert

TEST(IncrementalIndex, InsertMatchesFromScratchBuild) {
  std::mt19937_64 rng(0xA11CE);
  const int iters = test::fuzz_iters(40);
  for (int round = 0; round < 8; ++round) {
    const std::vector<Rect> rects = random_rects(rng, 24, 200);
    spatial::ObstacleIndex incremental(Rect{0, 0, 200, 200}, {});
    for (std::size_t n = 0; n < rects.size(); ++n) {
      incremental.insert(rects[n]);
      if (n % 5 != 0 && n + 1 != rects.size()) continue;  // spot-check
      const spatial::ObstacleIndex fresh(
          Rect{0, 0, 200, 200},
          std::vector<Rect>(rects.begin(), rects.begin() + n + 1));
      expect_index_equivalent(incremental, fresh, rng, iters);
    }
  }
}

TEST(IncrementalIndex, InsertIntoDefaultConstructedIndex) {
  // A default-constructed index never built its bucket grid; the first
  // insert must lay it out instead of writing into empty buckets (this was
  // an ASan finding).
  spatial::ObstacleIndex idx;
  idx.insert(Rect{0, 0, 10, 10});
  idx.insert(Rect{20, 0, 30, 10});
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_TRUE(idx.interior(Point{5, 5}));
  EXPECT_FALSE(idx.interior(Point{15, 5}));
  EXPECT_EQ(idx.query(Rect{0, 0, 40, 10}).size(), 2u);
}

TEST(IncrementalIndex, InsertAcceptsRectsBeyondBoundary) {
  // Wire halos inflate past the routing boundary; inserts and queries must
  // behave exactly like a from-scratch build over the same rects.
  std::mt19937_64 rng(7);
  spatial::ObstacleIndex incremental(Rect{0, 0, 100, 100},
                                     {Rect{40, 40, 60, 60}});
  incremental.insert(Rect{-5, 20, 30, 30});    // protrudes west
  incremental.insert(Rect{90, 95, 120, 108});  // protrudes north-east
  const spatial::ObstacleIndex fresh(
      Rect{0, 0, 100, 100},
      {Rect{40, 40, 60, 60}, Rect{-5, 20, 30, 30}, Rect{90, 95, 120, 108}});
  expect_index_equivalent(incremental, fresh, rng, 200);
  EXPECT_TRUE(incremental.interior(Point{0, 25}));  // inside the west halo
}

// ------------------------------------------------- ObstacleIndex::remove

TEST(IncrementalIndex, RemoveMatchesFromScratchBuild) {
  // Tombstoning must answer every query exactly like a fresh build over
  // the surviving rects, at any interleaving of removals — and compact()
  // must preserve the answers while erasing the tombstones.
  std::mt19937_64 rng(0xD00D);
  const int iters = test::fuzz_iters(40);
  for (int round = 0; round < 8; ++round) {
    const std::vector<Rect> rects = random_rects(rng, 24, 200);
    spatial::ObstacleIndex incremental(Rect{0, 0, 200, 200}, {});
    for (const Rect& r : rects) incremental.insert(r);

    // Remove a random half, one at a time, spot-checking along the way.
    std::vector<std::size_t> victims;
    for (std::size_t i = 0; i < rects.size(); ++i) {
      if (rng() % 2 == 0) victims.push_back(i);
    }
    std::vector<bool> removed(rects.size(), false);
    for (std::size_t k = 0; k < victims.size(); ++k) {
      EXPECT_TRUE(incremental.remove(victims[k]));
      EXPECT_FALSE(incremental.remove(victims[k]));  // idempotent
      removed[victims[k]] = true;
      if (k % 3 != 0 && k + 1 != victims.size()) continue;  // spot-check
      std::vector<Rect> live;
      for (std::size_t i = 0; i < rects.size(); ++i) {
        if (!removed[i]) live.push_back(rects[i]);
      }
      const spatial::ObstacleIndex fresh(Rect{0, 0, 200, 200}, live);
      expect_index_equivalent_behavior(incremental, fresh, rng, iters);
    }

    // Compaction: same behavior, tombstones gone, remap consistent.
    const std::size_t live_before = incremental.live_size();
    const std::vector<std::size_t> remap = incremental.compact();
    EXPECT_EQ(incremental.dead_count(), 0u);
    EXPECT_EQ(incremental.size(), live_before);
    std::vector<Rect> live;
    for (std::size_t i = 0; i < rects.size(); ++i) {
      if (removed[i]) {
        EXPECT_EQ(remap[i], spatial::ObstacleIndex::npos);
      } else {
        ASSERT_LT(remap[i], incremental.size());
        EXPECT_EQ(incremental.obstacles()[remap[i]], rects[i]);
        live.push_back(rects[i]);
      }
    }
    const spatial::ObstacleIndex fresh(Rect{0, 0, 200, 200}, live);
    expect_index_equivalent(incremental, fresh, rng, iters);
  }
}

// -------------------------------------------- EscapeLineSet::insert_obstacle

TEST(IncrementalLines, InsertMatchesFromScratchBuild) {
  std::mt19937_64 rng(0xBEEF);
  const int iters = test::fuzz_iters(40);
  for (int round = 0; round < 8; ++round) {
    const std::vector<Rect> rects = random_rects(rng, 20, 200);
    spatial::ObstacleIndex index(Rect{0, 0, 200, 200}, {});
    spatial::EscapeLineSet incremental(index);
    for (std::size_t n = 0; n < rects.size(); ++n) {
      index.insert(rects[n]);
      incremental.insert_obstacle(index, n);
      if (n % 4 != 0 && n + 1 != rects.size()) continue;  // spot-check
      const spatial::EscapeLineSet fresh(index);
      ASSERT_EQ(incremental.lines().size(), fresh.lines().size());
      EXPECT_EQ(incremental.lines(), fresh.lines());
      expect_lines_equivalent(incremental, fresh, index, rng, iters);
    }
  }
}

// -------------------------------------------- EscapeLineSet::remove_obstacle

TEST(IncrementalLines, RemoveMatchesFromScratchBuild) {
  // Ripping an obstacle out must re-extend exactly the lines it had
  // clipped: crossings answers must match a fresh build over the live
  // obstacles at every step, and a compaction must reproduce the fresh
  // build's records verbatim.
  std::mt19937_64 rng(0xFEED);
  const int iters = test::fuzz_iters(40);
  for (int round = 0; round < 6; ++round) {
    const std::vector<Rect> rects = random_rects(rng, 20, 200);
    spatial::ObstacleIndex index(Rect{0, 0, 200, 200}, {});
    spatial::EscapeLineSet incremental(index);
    for (std::size_t n = 0; n < rects.size(); ++n) {
      index.insert(rects[n]);
      incremental.insert_obstacle(index, n);
    }

    std::vector<bool> removed(rects.size(), false);
    std::vector<std::size_t> victims;
    for (std::size_t i = 0; i < rects.size(); ++i) {
      if (rng() % 2 == 0) victims.push_back(i);
    }
    for (std::size_t k = 0; k < victims.size(); ++k) {
      ASSERT_TRUE(index.remove(victims[k]));
      incremental.remove_obstacle(index, victims[k]);
      removed[victims[k]] = true;
      EXPECT_EQ(incremental.live_lines(), 4 + 4 * index.live_size());
      if (k % 3 != 0 && k + 1 != victims.size()) continue;  // spot-check
      std::vector<Rect> live;
      for (std::size_t i = 0; i < rects.size(); ++i) {
        if (!removed[i]) live.push_back(rects[i]);
      }
      const spatial::ObstacleIndex fresh_index(Rect{0, 0, 200, 200}, live);
      const spatial::EscapeLineSet fresh(fresh_index);
      expect_lines_equivalent(incremental, fresh, fresh_index, rng, iters);
    }

    // Lockstep compaction must land on exactly the fresh build's records.
    const std::vector<std::size_t> remap = index.compact();
    incremental.compact(remap);
    const spatial::EscapeLineSet fresh(index);
    EXPECT_EQ(incremental.lines(), fresh.lines());
  }
}

TEST(IncrementalLines, CoincidentCorridorSplitHealsAfterRemoval) {
  // Two cells sharing an edge coordinate keep distinct line records; a
  // halo landing between them splits the corridor, and removing that halo
  // must re-merge the spans without leaking or losing a record — even
  // cycled many times (the rip-up soak the per-source storage exists for).
  const Rect bounds{0, 0, 100, 100};
  spatial::ObstacleIndex index(bounds, {});
  spatial::EscapeLineSet lines(index);
  index.insert(Rect{10, 20, 30, 40});
  lines.insert_obstacle(index, 0);
  index.insert(Rect{60, 20, 80, 40});  // same y-edges: coincident corridors
  lines.insert_obstacle(index, 1);

  const spatial::EscapeLineSet fresh_two(index);
  const int cycles = test::fuzz_iters(1000);
  for (int k = 0; k < cycles; ++k) {
    const std::size_t ob = index.size();
    index.insert(Rect{40, 15, 50, 45});  // between them: splits y=20/y=40
    lines.insert_obstacle(index, ob);
    ASSERT_TRUE(index.remove(ob));
    lines.remove_obstacle(index, ob);
    ASSERT_EQ(lines.live_lines(), 4u + 4 * 2)
        << "cycle " << k << " leaked or lost a line record";
  }
  // After any number of cycles the live behavior is the two-obstacle set.
  std::mt19937_64 rng(5);
  expect_lines_equivalent(lines, fresh_two, index, rng, 300);
  // And a lockstep compaction erases every tombstone, restoring the exact
  // two-obstacle records — memory does not grow with cycle count anymore.
  lines.compact(index.compact());
  EXPECT_EQ(lines.lines(), fresh_two.lines());
  EXPECT_EQ(lines.lines().size(), 4u + 4 * 2);
}

// -------------------------------------------------- SearchEnvironment

TEST(SearchEnvironment, CommitRouteMatchesFromScratchRebuild) {
  std::mt19937_64 rng(11);
  const layout::Layout lay = corpus_layout(3);
  route::SearchEnvironment env(lay);

  const std::vector<Segment> wires{
      {Point{10, 30}, Point{120, 30}},
      {Point{120, 30}, Point{120, 90}},
      {Point{50, 200}, Point{50, 200}},  // degenerate via stub
  };
  env.commit_route(wires, 2);
  EXPECT_EQ(env.committed(), wires.size());

  std::vector<Rect> all = lay.obstacles();
  for (const Segment& s : wires) all.push_back(s.bounds().inflated(2));
  const spatial::ObstacleIndex fresh_index(lay.boundary(), all);
  const spatial::EscapeLineSet fresh_lines(fresh_index);
  expect_index_equivalent(env.index(), fresh_index, rng, 300);
  expect_lines_equivalent(env.lines(), fresh_lines, fresh_index, rng, 300);
}

TEST(SearchEnvironment, RebuildFallbackPreservesBehavior) {
  // rebuild() is the invalidation path for non-local edits: it re-sorts,
  // re-buckets, and re-traces everything, and must answer identically.
  std::mt19937_64 rng(13);
  const layout::Layout lay = corpus_layout(5);
  route::SearchEnvironment incremental(lay);
  incremental.commit_route({{Point{20, 40}, Point{200, 40}}}, 1);

  route::SearchEnvironment rebuilt = incremental;
  const std::size_t builds = route::SearchEnvironment::build_count();
  rebuilt.rebuild();
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds + 1);
  EXPECT_EQ(rebuilt.committed(), incremental.committed());
  expect_index_equivalent(rebuilt.index(), incremental.index(), rng, 300);
  expect_lines_equivalent(rebuilt.lines(), incremental.lines(),
                          incremental.index(), rng, 300);
}

TEST(SearchEnvironment, RebuildAgainstLayoutDiscardsCommits) {
  const layout::Layout lay = corpus_layout(7);
  route::SearchEnvironment env(lay);
  env.commit_route({{Point{20, 40}, Point{200, 40}}}, 1);
  ASSERT_GT(env.committed(), 0u);
  env.rebuild(lay);
  EXPECT_EQ(env.committed(), 0u);
  EXPECT_EQ(env.index().size(), lay.obstacles().size());
}

TEST(SearchEnvironment, RemoveRouteMatchesFromScratchRebuild) {
  // Rip-up at the environment level: committing three keyed nets and
  // removing one must answer every query exactly like a fresh environment
  // over the base cells plus the surviving nets' halos.
  std::mt19937_64 rng(17);
  const layout::Layout lay = corpus_layout(4);
  route::SearchEnvironment env(lay);

  const std::vector<std::vector<Segment>> nets{
      {{Point{10, 30}, Point{120, 30}}, {Point{120, 30}, Point{120, 90}}},
      {{Point{40, 160}, Point{200, 160}}},
      {{Point{250, 40}, Point{250, 220}}, {Point{250, 220}, Point{300, 220}}},
  };
  for (std::size_t i = 0; i < nets.size(); ++i) {
    env.commit_route(i, nets[i], 2);
  }
  EXPECT_EQ(env.committed(), 5u);

  EXPECT_FALSE(env.remove_route(99));  // unknown id: no-op
  EXPECT_TRUE(env.remove_route(1));
  EXPECT_FALSE(env.remove_route(1));  // already ripped
  EXPECT_EQ(env.committed(), 4u);

  std::vector<Rect> want_obs = lay.obstacles();
  for (const std::size_t i : {0u, 2u}) {
    for (const Segment& s : nets[i]) want_obs.push_back(s.bounds().inflated(2));
  }
  const spatial::ObstacleIndex fresh_index(lay.boundary(), want_obs);
  const spatial::EscapeLineSet fresh_lines(fresh_index);
  expect_index_equivalent_behavior(env.index(), fresh_index, rng, 300);
  expect_lines_equivalent(env.lines(), fresh_lines, fresh_index, rng, 300);

  // A net committed after removals is itself removable (indices stay
  // coherent across the tombstones).
  env.commit_route(7, nets[1], 2);
  EXPECT_EQ(env.committed(), 5u);
  EXPECT_TRUE(env.remove_route(7));
  EXPECT_EQ(env.committed(), 4u);
  expect_index_equivalent_behavior(env.index(), fresh_index, rng, 200);
}

TEST(SearchEnvironment, InsertRemoveCyclesStayBoundedAndExact) {
  // The rip-up soak: a thousand commit/remove cycles must not grow the
  // tables (periodic compaction), must keep per-source line records exact
  // (no leaked duplicates from corridor splits), and must leave behavior
  // identical to the never-touched base environment.
  std::mt19937_64 rng(23);
  const layout::Layout lay = corpus_layout(6);
  route::SearchEnvironment env(lay);
  const route::SearchEnvironment base(lay);
  const std::size_t base_obstacles = base.index().size();

  const std::vector<Segment> wire{{Point{20, 50}, Point{180, 50}},
                                  {Point{180, 50}, Point{180, 140}}};
  const int cycles = test::fuzz_iters(1000);
  for (int k = 0; k < cycles; ++k) {
    env.commit_route(static_cast<std::size_t>(k), wire, 2);
    ASSERT_TRUE(env.remove_route(static_cast<std::size_t>(k)));
    ASSERT_EQ(env.committed(), 0u) << "cycle " << k;
    // Tombstones may linger between compactions, but never unboundedly:
    // the compaction policy caps the table at roughly twice the live set.
    ASSERT_LE(env.index().size(), 2 * (base_obstacles + wire.size()) + 16)
        << "cycle " << k << ": tombstones escaped compaction";
    ASSERT_EQ(env.lines().lines().size(), 4 + 4 * env.index().size());
    ASSERT_EQ(env.lines().live_lines(), 4 + 4 * env.index().live_size());
  }
  expect_index_equivalent_behavior(env.index(), base.index(), rng, 300);
  expect_lines_equivalent(env.lines(), base.lines(), base.index(), rng, 300);
}

TEST(SearchEnvironment, UpdateFaultFlagsInvalidAndNextQueryRebuilds) {
  // The exception-safety contract: a throw mid-splice leaves the
  // environment flagged invalid, and the next accessor repairs it with a
  // full rebuild instead of answering from a half-spliced index.
  std::mt19937_64 rng(29);
  const layout::Layout lay = corpus_layout(8);
  route::SearchEnvironment env(lay);
  const std::vector<Segment> wire{{Point{15, 60}, Point{160, 60}},
                                  {Point{160, 60}, Point{160, 130}},
                                  {Point{160, 130}, Point{240, 130}}};

  route::SearchEnvironment::inject_update_fault_for_tests();
  EXPECT_THROW(env.commit_route(0, wire, 2), std::runtime_error);
  EXPECT_FALSE(env.valid());

  const std::size_t builds = route::SearchEnvironment::build_count();
  (void)env.index();  // the next query triggers the rebuild fallback
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds + 1);
  EXPECT_TRUE(env.valid());

  // Whatever prefix of the commit survived is on record: ripping the net
  // back out and comparing against a fresh base environment proves the
  // repair left a coherent, fully-removable state.
  env.remove_route(0);
  const route::SearchEnvironment fresh(lay);
  expect_index_equivalent_behavior(env.index(), fresh.index(), rng, 300);
  expect_lines_equivalent(env.lines(), fresh.lines(), fresh.index(), rng, 300);

  // Same contract on the removal side — and this time retry the mutation
  // *directly*, with no accessor in between: mutators must repair an
  // invalid environment before splicing (a naive retry would skip the
  // already-tombstoned halo and leave its line records live forever).
  env.commit_route(1, wire, 2);
  route::SearchEnvironment::inject_update_fault_for_tests();
  EXPECT_THROW((void)env.remove_route(1), std::runtime_error);
  EXPECT_FALSE(env.valid());
  EXPECT_TRUE(env.remove_route(1));  // repairs, then finishes the rip-up
  EXPECT_TRUE(env.valid());
  expect_index_equivalent_behavior(env.index(), fresh.index(), rng, 300);
  expect_lines_equivalent(env.lines(), fresh.lines(), fresh.index(), rng, 300);

  // And a commit retried directly after a failed commit: the partial
  // commit is on record, so the contract is remove-then-recommit.
  route::SearchEnvironment::inject_update_fault_for_tests();
  EXPECT_THROW(env.commit_route(2, wire, 2), std::runtime_error);
  EXPECT_FALSE(env.valid());
  EXPECT_THROW(env.commit_route(2, wire, 2), std::invalid_argument);
  EXPECT_TRUE(env.remove_route(2));
  env.commit_route(2, wire, 2);
  EXPECT_TRUE(env.valid());
  EXPECT_TRUE(env.remove_route(2));
  expect_index_equivalent_behavior(env.index(), fresh.index(), rng, 300);
}

TEST(SearchEnvironment, CopyDoesNotCountAsBuild) {
  const layout::Layout lay = corpus_layout(9);
  const route::SearchEnvironment env(lay);
  const std::size_t builds = route::SearchEnvironment::build_count();
  const route::SearchEnvironment copy = env;
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds);
  EXPECT_EQ(copy.index().size(), env.index().size());
}

// ------------------------------------------ sequential-mode differential

class SequentialDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SequentialDifferential, IncrementalRoutesBitIdenticalToPerNetRebuild) {
  const layout::Layout lay = corpus_layout(GetParam());
  ASSERT_TRUE(lay.valid());

  route::NetlistOptions opts;
  opts.mode = route::NetlistMode::kSequential;

  const auto want = test::reference_sequential(lay, opts);
  const auto got = route::NetlistRouter(lay).route_all(opts);
  expect_results_identical(got, want);

  // And through a cached (injected) environment — the serving-layer path.
  const route::SearchEnvironment env(lay);
  const std::size_t builds = route::SearchEnvironment::build_count();
  const auto cached = route::NetlistRouter(lay, env).route_all(opts);
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds)
      << "sequential mode must not rebuild when an environment is injected";
  expect_results_identical(cached, want);
}

INSTANTIATE_TEST_SUITE_P(FuzzCorpus, SequentialDifferential,
                         ::testing::ValuesIn(test::fuzz_seeds(41, 17, 6)));

// ------------------------------------------- rip-up-and-reroute differential

class RipupDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RipupDifferential, IncrementalRipupBitIdenticalToRebuildReference) {
  // The acceptance property: NetlistOptions::reroute, whose removals are
  // incremental tombstone updates, must reproduce — segments, wirelength,
  // stats — the reference that performs the same rip-up with from-scratch
  // environment rebuilds at every step, across the fuzz corpus.
  const std::uint64_t seed = GetParam();
  const layout::Layout lay = corpus_layout(seed);
  ASSERT_TRUE(lay.valid());

  std::mt19937_64 rng(seed * 977 + 5);
  std::vector<std::size_t> reroute;
  for (std::size_t i = 0; i < lay.nets().size(); ++i) {
    if (rng() % 3 == 0) reroute.push_back(i);
  }
  if (reroute.empty()) reroute.push_back(lay.nets().size() / 2);
  std::shuffle(reroute.begin(), reroute.end(), rng);

  route::NetlistOptions opts;
  opts.mode = route::NetlistMode::kSequential;
  opts.reroute = reroute;

  const auto want = test::reference_ripup(lay, opts, reroute);
  const auto got = route::NetlistRouter(lay).route_all(opts);
  expect_results_identical(got, want);

  // And through a cached (injected) environment — the REROUTE serve path.
  const route::SearchEnvironment env(lay);
  const std::size_t builds = route::SearchEnvironment::build_count();
  const auto cached = route::NetlistRouter(lay, env).route_all(opts);
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds)
      << "rip-up must stay incremental when an environment is injected";
  expect_results_identical(cached, want);
}

INSTANTIATE_TEST_SUITE_P(FuzzCorpus, RipupDifferential,
                         ::testing::ValuesIn(test::fuzz_seeds(43, 19, 6)));

TEST(RipupDifferential, WideHaloRipup) {
  // Wider halos force detours and failures; ripping up half the netlist
  // must still match the rebuild reference exactly.
  const layout::Layout lay = corpus_layout(2);
  route::NetlistOptions opts;
  opts.mode = route::NetlistMode::kSequential;
  opts.wire_halo = 4;
  for (std::size_t i = 0; i < lay.nets().size(); i += 2) {
    opts.reroute.push_back(i);
  }
  const auto want = test::reference_ripup(lay, opts, opts.reroute);
  const auto got = route::NetlistRouter(lay).route_all(opts);
  expect_results_identical(got, want);
}

TEST(SequentialDifferential, NonTrivialHaloAndOrder) {
  // Wider halos force detours/failures; a custom order exercises the
  // accounting replay.  Both must still match the reference exactly.
  const layout::Layout lay = corpus_layout(2);
  route::NetlistOptions opts;
  opts.mode = route::NetlistMode::kSequential;
  opts.wire_halo = 4;
  opts.order.resize(lay.nets().size());
  for (std::size_t i = 0; i < opts.order.size(); ++i) {
    opts.order[i] = opts.order.size() - 1 - i;
  }

  const auto want = test::reference_sequential(lay, opts);
  const auto got = route::NetlistRouter(lay).route_all(opts);
  expect_results_identical(got, want);
}

// ------------------------------------------- optimize-style rip/commit soak

class OptimizeSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizeSoak, RepeatedRipCommitPassesStayExactAndBounded) {
  // The OPTIMIZE engine's SearchEnvironment workload, distilled: route the
  // netlist once with keyed commits, then run many rip / re-route / commit
  // passes over rotating thirds of the netlist.  Every re-routed net must
  // come out bit-identical to the same search through a from-scratch
  // environment over the base cells plus the surviving halos, the tables
  // must stay bounded (the removals cross the dead >= max(16, live)
  // compaction threshold many times over), and the final environment must
  // be behaviorally indistinguishable from a fresh build.
  const std::uint64_t seed = GetParam();
  const layout::Layout lay = corpus_layout(seed);
  ASSERT_TRUE(lay.valid());
  std::mt19937_64 rng(seed * 31 + 7);
  constexpr geom::Coord kHalo = 1;
  const std::size_t n = lay.nets().size();
  const std::size_t base_obstacles = lay.obstacles().size();

  const auto route_one = [&](route::SearchEnvironment& e, std::size_t i) {
    for (const auto& pins : route::net_terminal_pins(lay, lay.nets()[i])) {
      for (const Point& p : pins) {
        if (!e.index().routable(p)) return route::NetRoute{};
      }
    }
    return route::SteinerNetRouter(e.index(), e.lines(), nullptr)
        .route_net(lay, lay.nets()[i], {});
  };

  route::SearchEnvironment env(lay);
  std::vector<route::NetRoute> routes(n);
  for (std::size_t i = 0; i < n; ++i) {
    routes[i] = route_one(env, i);
    if (routes[i].ok) env.commit_route(i, routes[i].segments, kHalo);
  }

  // From-scratch reference over the base cells plus every surviving halo.
  const auto fresh_env = [&]() {
    route::SearchEnvironment e(lay);
    for (std::size_t i = 0; i < n; ++i) {
      if (routes[i].ok) e.commit_route(i, routes[i].segments, kHalo);
    }
    return e;
  };

  std::size_t removed_halos = 0;
  std::size_t compactions = 0;
  const int passes = std::max(12, test::fuzz_iters(12));
  for (int pass = 0; pass < passes; ++pass) {
    std::vector<std::size_t> victims;
    for (std::size_t i = 0; i < n; ++i) {
      if (routes[i].ok && (i + static_cast<std::size_t>(pass)) % 3 == 0) {
        victims.push_back(i);
      }
    }
    for (const std::size_t v : victims) {
      const std::size_t dead_before = env.index().dead_count();
      ASSERT_TRUE(env.remove_route(v)) << "pass " << pass << " net " << v;
      // A removal only adds tombstones; the count dropping means the
      // dead >= max(16, live) compaction policy fired mid-soak.
      if (env.index().dead_count() < dead_before) ++compactions;
      removed_halos += routes[v].segments.size();
      routes[v] = route::NetRoute{};
    }
    for (const std::size_t v : victims) {
      route::SearchEnvironment ref = fresh_env();
      const route::NetRoute want = route_one(ref, v);
      route::NetRoute got = route_one(env, v);
      ASSERT_EQ(got.ok, want.ok) << "pass " << pass << " net " << v;
      EXPECT_EQ(got.segments, want.segments) << "pass " << pass << " net "
                                             << v;
      EXPECT_EQ(got.wirelength, want.wirelength);
      EXPECT_EQ(got.stats.nodes_expanded, want.stats.nodes_expanded);
      if (got.ok) env.commit_route(v, got.segments, kHalo);
      routes[v] = std::move(got);
    }

    // Boundedness: tombstones may linger between compactions but the
    // table never exceeds roughly twice the live set, and the line set
    // tracks the obstacle table record for record.
    std::size_t live_halos = 0;
    for (const route::NetRoute& r : routes) {
      if (r.ok) live_halos += r.segments.size();
    }
    ASSERT_LE(env.index().size(), 2 * (base_obstacles + live_halos) + 16)
        << "pass " << pass << ": tombstones escaped compaction";
    ASSERT_EQ(env.lines().lines().size(), 4 + 4 * env.index().size());
    ASSERT_EQ(env.lines().live_lines(), 4 + 4 * env.index().live_size());
  }

  // The soak is only meaningful if it actually drove the compaction
  // machinery — enough halos ripped that the dead >= max(16, live)
  // trigger fired at least once.
  EXPECT_GE(compactions, 1u)
      << "soak never crossed the compaction threshold (removed "
      << removed_halos << " halos)";

  const route::SearchEnvironment ref = fresh_env();
  expect_index_equivalent_behavior(env.index(), ref.index(), rng, 200);
  expect_lines_equivalent(env.lines(), ref.lines(), ref.index(), rng, 200);
}

INSTANTIATE_TEST_SUITE_P(FuzzCorpus, OptimizeSoak,
                         ::testing::ValuesIn(test::fuzz_seeds(59, 23, 6)));

// ----------------------------------------------- parallel line construction

TEST(EscapeLineBuild, ParallelConstructionIsBitIdentical) {
  std::mt19937_64 rng(0xCAFE);
  // Large enough to exceed the auto-parallel threshold.
  const std::vector<Rect> rects = random_rects(rng, 600, 4000);
  const spatial::ObstacleIndex index(Rect{0, 0, 4000, 4000}, rects);
  const spatial::EscapeLineSet serial(index, 1);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const spatial::EscapeLineSet parallel(index, threads);
    EXPECT_EQ(serial.lines(), parallel.lines()) << threads << " threads";
  }
  const spatial::EscapeLineSet auto_threads(index, 0);
  EXPECT_EQ(serial.lines(), auto_threads.lines());
}

}  // namespace
