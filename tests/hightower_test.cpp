// Tests for the Hightower line-probe baseline: succeeds on easy cases, uses
// few escape lines, produces legal (if not minimal) paths — and fails on
// labyrinths that the admissible searches solve, the paper's motivating
// contrast.

#include <gtest/gtest.h>

#include "core/gridless_router.hpp"
#include "hightower/hightower.hpp"
#include "workload/figures.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Rect;
using geom::Segment;

TEST(Hightower, StraightLine) {
  const spatial::ObstacleIndex idx(Rect{0, 0, 100, 100}, {});
  const hightower::HightowerRouter router(idx);
  const auto r = router.route({10, 20}, {90, 20});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 80);
}

TEST(Hightower, LConnection) {
  const spatial::ObstacleIndex idx(Rect{0, 0, 100, 100}, {});
  const hightower::HightowerRouter router(idx);
  const auto r = router.route({10, 10}, {60, 70});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 110);
  // The initial cross lines already meet: minimal probing effort.
  EXPECT_LE(r.lines_used, 4u);
}

TEST(Hightower, RoundsOneBlock) {
  const spatial::ObstacleIndex idx(Rect{0, 0, 100, 100},
                                   {Rect{40, 30, 60, 70}});
  const hightower::HightowerRouter router(idx);
  const auto r = router.route({10, 50}, {90, 50});
  ASSERT_TRUE(r.found);
  // Legal path (not necessarily minimal).
  for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
    EXPECT_FALSE(idx.segment_blocked(Segment{r.path[i], r.path[i + 1]}));
  }
  EXPECT_GE(r.length, 120);  // cannot beat the optimum
}

TEST(Hightower, PathEndpointsAreTerminals) {
  const spatial::ObstacleIndex idx(Rect{0, 0, 100, 100},
                                   {Rect{40, 30, 60, 70}});
  const hightower::HightowerRouter router(idx);
  const auto r = router.route({10, 50}, {90, 50});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.path.front(), (Point{10, 50}));
  EXPECT_EQ(r.path.back(), (Point{90, 50}));
}

TEST(Hightower, UnroutableEndpointsRejected) {
  const spatial::ObstacleIndex idx(Rect{0, 0, 100, 100},
                                   {Rect{40, 30, 60, 70}});
  const hightower::HightowerRouter router(idx);
  EXPECT_FALSE(router.route({50, 50}, {90, 50}).found);  // buried source
  EXPECT_FALSE(router.route({10, 50}, {50, 50}).found);  // buried target
}

TEST(Hightower, FailsOnSpiralThatAStarSolves) {
  // The paper: Hightower "fail[s] to find some connections which could be
  // found by a Lee-Moore router"; the admissible line search inherits
  // Lee-Moore's completeness.  On a spiral both probe trees exhaust their
  // escape points without meeting, no matter how large the line budget.
  const workload::PointQuery q = workload::spiral_maze(3);
  ASSERT_TRUE(q.layout.valid());
  const spatial::ObstacleIndex idx(q.layout.boundary(), q.layout.obstacles());

  const hightower::HightowerRouter ht(idx);
  const auto hr = ht.route(q.s, q.d, /*max_lines=*/4096);
  EXPECT_FALSE(hr.found);

  const spatial::EscapeLineSet lines(idx);
  const route::GridlessRouter astar(idx, lines);
  const auto ar = astar.route(q.s, q.d);
  EXPECT_TRUE(ar.found);  // complete search always connects
}

TEST(Hightower, TightBudgetFailsOnCombThatAStarSolves) {
  // With its "quick first try" budget, Hightower gives up on the labyrinth;
  // with a generous budget it serpentines through at much higher effort.
  const workload::PointQuery q = workload::comb_maze(6);
  const spatial::ObstacleIndex idx(q.layout.boundary(), q.layout.obstacles());
  const hightower::HightowerRouter ht(idx);
  const auto quick = ht.route(q.s, q.d, /*max_lines=*/16);
  EXPECT_FALSE(quick.found);
  const auto patient = ht.route(q.s, q.d, /*max_lines=*/256);
  ASSERT_TRUE(patient.found);
  EXPECT_GT(patient.lines_used, 16u);

  const spatial::EscapeLineSet lines(idx);
  const route::GridlessRouter astar(idx, lines);
  const auto ar = astar.route(q.s, q.d);
  ASSERT_TRUE(ar.found);
  // Hightower's path is legal but not minimal on the serpentine.
  EXPECT_GE(patient.length, ar.length);
}

TEST(Hightower, RespectsLineBudget) {
  const workload::PointQuery q = workload::spiral_maze(4);
  const spatial::ObstacleIndex idx(q.layout.boundary(), q.layout.obstacles());
  const hightower::HightowerRouter ht(idx);
  const auto r = ht.route(q.s, q.d, /*max_lines=*/8);
  EXPECT_LE(r.lines_used, 2u * 8u + 4u);
}

}  // namespace
