// Tests for the channel-problem extraction bridge and the VCG routing of
// dynamically discovered channels.

#include <gtest/gtest.h>

#include "core/netlist_router.hpp"
#include "detail/channel_extract.hpp"
#include "detail/detailed_router.hpp"
#include "workload/floorplan.hpp"
#include "workload/netgen.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Segment;

route::NetlistResult two_net_global() {
  // Net 0: trunk y=10 from x=0..50, rising at both ends (top pins).
  // Net 1: trunk y=14 from x=20..70, dropping at both ends (bottom pins).
  route::NetlistResult g;
  route::NetRoute n0;
  n0.ok = true;
  n0.segments = {Segment{Point{0, 30}, Point{0, 10}},
                 Segment{Point{0, 10}, Point{50, 10}},
                 Segment{Point{50, 10}, Point{50, 30}}};
  route::NetRoute n1;
  n1.ok = true;
  n1.segments = {Segment{Point{20, 0}, Point{20, 14}},
                 Segment{Point{20, 14}, Point{70, 14}},
                 Segment{Point{70, 14}, Point{70, 0}}};
  g.routes = {n0, n1};
  g.routed = 2;
  return g;
}

TEST(ChannelExtract, RecoverPinSides) {
  const auto global = two_net_global();
  const auto subnets = detail::collect_subnets(global);
  const auto channels = detail::assign_channels(subnets, /*window=*/8);

  // Find the horizontal channel containing both trunks.
  const detail::Channel* hchan = nullptr;
  for (const auto& ch : channels) {
    if (ch.axis == geom::Axis::kX && ch.members.size() == 2) hchan = &ch;
  }
  ASSERT_NE(hchan, nullptr);

  const auto problem = detail::make_channel_problem(*hchan, subnets, global);
  ASSERT_EQ(problem.columns(), 4u);
  // Net 0 (id 1) pins on top; net 1 (id 2) pins on bottom.
  int top_count = 0, bottom_count = 0;
  for (std::size_t c = 0; c < problem.columns(); ++c) {
    if (problem.top[c] == 1) ++top_count;
    if (problem.bottom[c] == 2) ++bottom_count;
  }
  EXPECT_EQ(top_count, 2);
  EXPECT_EQ(bottom_count, 2);
}

TEST(ChannelExtract, VcgRoutesExtractedChannel) {
  const auto global = two_net_global();
  const auto subnets = detail::collect_subnets(global);
  const auto channels = detail::assign_channels(subnets, 8);
  const auto summary = detail::route_channels_vcg(channels, subnets, global);
  EXPECT_EQ(summary.channels_failed, 0u);
  EXPECT_EQ(summary.channels_routed, channels.size());
  // The overlapping trunks need two tracks in their shared channel.
  EXPECT_GE(summary.total_tracks, 2u);
  EXPECT_GE(summary.total_tracks, summary.density_lower_bound);
}

TEST(ChannelExtract, FullFlowOnRandomLayout) {
  workload::FloorplanOptions fp;
  fp.seed = 77;
  fp.cell_count = 9;
  fp.boundary = geom::Rect{0, 0, 512, 512};
  layout::Layout lay = workload::random_floorplan(fp);
  workload::PinGenOptions pg;
  pg.seed = 78;
  workload::sprinkle_pins(lay, pg);
  workload::NetGenOptions ng;
  ng.seed = 79;
  ng.net_count = 12;
  workload::generate_nets(lay, ng);

  const route::NetlistRouter router(lay);
  const auto global = router.route_all();
  ASSERT_EQ(global.failed, 0u);

  const auto subnets = detail::collect_subnets(global);
  const auto channels = detail::assign_channels(subnets, 8);
  const auto summary = detail::route_channels_vcg(channels, subnets, global);
  // Most channels route; constraint-cycle fallbacks stay rare.
  EXPECT_GT(summary.channels_routed, 0u);
  EXPECT_LE(summary.channels_failed, channels.size() / 4);
  EXPECT_GE(summary.total_tracks, summary.density_lower_bound);
}

TEST(ChannelExtract, UnknownSidePinsStillSpanInterval) {
  // A lone trunk with no perpendicular continuations: interval preserved on
  // the bottom row, one track suffices.
  route::NetlistResult g;
  route::NetRoute n0;
  n0.ok = true;
  n0.segments = {Segment{Point{0, 10}, Point{50, 10}}};
  g.routes = {n0};
  g.routed = 1;
  const auto subnets = detail::collect_subnets(g);
  const auto channels = detail::assign_channels(subnets, 8);
  ASSERT_EQ(channels.size(), 1u);
  const auto problem = detail::make_channel_problem(channels[0], subnets, g);
  const auto r = detail::route_channel(problem);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.tracks_used, 1u);
}

}  // namespace
