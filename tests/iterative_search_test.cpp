// Tests for the iterative-deepening drivers (IDDFS, IDA*): optimality,
// completeness, memory-light behaviour, agreement with the queue-based A*.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/gridless_router.hpp"
#include "search/iterative.hpp"
#include "workload/figures.hpp"

namespace {

using namespace gcr;
using search::IterativeOptions;
using search::Successor;

struct GraphSpace {
  using State = std::string;
  std::map<std::string, std::vector<Successor<std::string>>> edges;
  std::map<std::string, geom::Cost> h;
  std::string goal;

  void successors(const State& s, std::vector<Successor<State>>& out) const {
    const auto it = edges.find(s);
    if (it != edges.end()) out = it->second;
  }
  [[nodiscard]] geom::Cost heuristic(const State& s) const {
    const auto it = h.find(s);
    return it == h.end() ? 0 : it->second;
  }
  [[nodiscard]] bool is_goal(const State& s) const { return s == goal; }
};

GraphSpace diamond() {
  GraphSpace g;
  g.edges["s"] = {{"a", 1}, {"b", 4}};
  g.edges["a"] = {{"t", 5}};
  g.edges["b"] = {{"t", 1}};
  g.goal = "t";
  return g;
}

TEST(IdaStar, FindsMinimalCost) {
  const GraphSpace g = diamond();
  const auto r = search::ida_star(g, std::string("s"));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cost, 5);
  EXPECT_EQ(r.path, (std::vector<std::string>{"s", "b", "t"}));
}

TEST(IdaStar, AdmissibleHeuristicPreservesOptimality) {
  GraphSpace g = diamond();
  g.h = {{"s", 5}, {"a", 4}, {"b", 1}, {"t", 0}};
  const auto r = search::ida_star(g, std::string("s"));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cost, 5);
}

TEST(IdaStar, UnreachableGoal) {
  GraphSpace g = diamond();
  g.goal = "nowhere";
  const auto r = search::ida_star(g, std::string("s"));
  EXPECT_FALSE(r.found);
}

TEST(IdaStar, StartIsGoal) {
  GraphSpace g = diamond();
  g.goal = "s";
  const auto r = search::ida_star(g, std::string("s"));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cost, 0);
}

TEST(IdaStar, RespectsExpansionCap) {
  GraphSpace g;
  for (int i = 0; i < 200; ++i) {
    g.edges["n" + std::to_string(i)] = {{"n" + std::to_string(i + 1), 1}};
  }
  g.goal = "n200";
  IterativeOptions opts;
  opts.max_expansions = 10;
  const auto r = search::ida_star(g, std::string("n0"), opts);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.stats.aborted);
}

TEST(IdaStar, MatchesAStarOnGridlessRouting) {
  const workload::PointQuery q = workload::figure1_layout();
  const spatial::ObstacleIndex index(q.layout.boundary(), q.layout.obstacles());
  const spatial::EscapeLineSet lines(index);
  const route::GridlessRouter router(index, lines);
  const auto astar = router.route(q.s, q.d);
  ASSERT_TRUE(astar.found);

  const route::GridlessSpace space(index, lines, {q.d});
  IterativeOptions opts;
  opts.max_expansions = 2'000'000;
  const auto ida =
      search::ida_star(space, route::RouteState{q.s, route::kNoDir}, opts);
  ASSERT_TRUE(ida.found);
  EXPECT_EQ(ida.cost, astar.cost);
}

TEST(Iddfs, FindsShallowestPath) {
  GraphSpace g;
  g.edges["s"] = {{"deep1", 1}, {"t_direct", 100}};
  g.edges["deep1"] = {{"deep2", 1}};
  g.edges["deep2"] = {{"t", 1}};
  g.edges["t_direct"] = {{"t", 1}};
  g.goal = "t";
  const auto r = search::iddfs(g, std::string("s"));
  ASSERT_TRUE(r.found);
  // Shallowest = 2 edges via t_direct (costs ignored by IDDFS).
  EXPECT_EQ(r.path.size(), 3u);
}

TEST(Iddfs, UnreachableTerminatesOnFiniteGraph) {
  GraphSpace g = diamond();
  g.goal = "nowhere";
  const auto r = search::iddfs(g, std::string("s"));
  EXPECT_FALSE(r.found);
}

TEST(Iddfs, StartIsGoal) {
  GraphSpace g = diamond();
  g.goal = "s";
  const auto r = search::iddfs(g, std::string("s"));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.path, (std::vector<std::string>{"s"}));
}

TEST(Iddfs, MaxBoundStopsGrowth) {
  GraphSpace g;
  for (int i = 0; i < 50; ++i) {
    g.edges["n" + std::to_string(i)] = {{"n" + std::to_string(i + 1), 1}};
  }
  g.goal = "n50";
  IterativeOptions opts;
  opts.max_bound = 10;  // depth ceiling below the solution depth
  const auto r = search::iddfs(g, std::string("n0"), opts);
  EXPECT_FALSE(r.found);
}

TEST(Iddfs, RoutesOnGridlessSpace) {
  const spatial::ObstacleIndex index(geom::Rect{0, 0, 100, 100},
                                     {geom::Rect{40, 30, 60, 70}});
  const spatial::EscapeLineSet lines(index);
  const route::GridlessSpace space(index, lines, {{90, 50}});
  IterativeOptions opts;
  opts.max_expansions = 500000;
  const auto r =
      search::iddfs(space, route::RouteState{{10, 50}, route::kNoDir}, opts);
  ASSERT_TRUE(r.found);
  EXPECT_GE(r.cost, 120 * route::kCostScale);  // legal but maybe suboptimal
}

}  // namespace
