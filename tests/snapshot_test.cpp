// Tests for the durable-session half of the serving layer: the versioned
// snapshot codec (encode/decode framing, checksum, structural validation),
// SAVE/--restore-dir round trips that must answer byte-identically after a
// restart without rebuilding any environment, the PIN/COMMIT/UNCOMMIT/
// REROUTE/UNPIN lifecycle over the wire, pin ownership gating, and the
// HELLO capability handshake of protocol v2.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/search_environment.hpp"
#include "io/text_format.hpp"
#include "serve/protocol.hpp"
#include "serve/routing_service.hpp"
#include "serve/snapshot.hpp"
#include "workload/netgen.hpp"

namespace {

using namespace gcr;
namespace fs = std::filesystem;

std::string workload_text(std::size_t cells, std::size_t nets,
                          std::uint64_t seed) {
  return io::write_layout_string(
      workload::standard_workload(cells, 512, nets, seed));
}

/// A per-test temporary directory, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "gcr_snapshot_test_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path = made;
  }
  ~TempDir() {
    std::error_code ec;
    if (!path.empty()) fs::remove_all(path, ec);
  }
};

/// Runs a scripted connection against an existing service and returns
/// everything it wrote.
std::string run_on(serve::RoutingService& service, const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  serve::serve_connection(service, in, out);
  return out.str();
}

struct Frame {
  std::string status;
  std::string body;
};

Frame next_frame(std::istringstream& in) {
  Frame f;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, f.status)));
  std::istringstream is(f.status);
  std::string kw;
  std::size_t nbytes = 0;
  is >> kw;
  if (kw == "OK" && (is >> nbytes) && nbytes > 0) {
    f.body.resize(nbytes);
    in.read(f.body.data(), static_cast<std::streamsize>(nbytes));
  }
  return f;
}

/// Status line with the run-dependent timing meta chopped off, so two runs
/// of the same deterministic request compare equal.
std::string strip_timing(const std::string& status) {
  const std::size_t pos = status.find(" queue_us=");
  return pos == std::string::npos ? status : status.substr(0, pos);
}

/// The first handle a fresh registry mints — deterministic, so protocol
/// scripts can name it before the PIN reply arrives.
const char kFirstHandle[] = "pin-0000000000000001";

std::shared_ptr<std::atomic<bool>> make_owner() {
  return std::make_shared<std::atomic<bool>>(false);
}

/// Drives LOAD + PIN + COMMIT(all nets) + SAVE through the service API and
/// returns the snapshot file's bytes.
std::string write_snapshot(const fs::path& dir, const std::string& text) {
  serve::RoutingService::Options opts;
  opts.workers = 1;
  opts.snapshot_dir = dir.string();
  serve::RoutingService service(opts);
  const auto session = service.load(text);
  const auto owner = make_owner();

  serve::PinRequest pin;
  pin.op = serve::PinRequest::Op::kPin;
  pin.key = session->key;
  pin.owner = owner;
  const serve::PinResponse pinned = service.pin_op(std::move(pin));
  EXPECT_TRUE(pinned.ok()) << pinned.error;

  serve::PinRequest commit;
  commit.op = serve::PinRequest::Op::kCommit;
  commit.key = pinned.handle;
  for (const auto& net : session->layout.nets()) {
    commit.nets.push_back(net.name());
  }
  commit.owner = owner;
  const serve::PinResponse committed = service.pin_op(std::move(commit));
  EXPECT_TRUE(committed.ok()) << committed.error;

  serve::PinRequest save;
  save.op = serve::PinRequest::Op::kSave;
  save.key = pinned.handle;
  save.save_name = "codec.snap";
  save.owner = owner;
  const serve::PinResponse saved = service.pin_op(std::move(save));
  EXPECT_TRUE(saved.ok()) << saved.error;

  std::ifstream in(dir / "codec.snap", std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

/// decode_snapshot's error message, or "" when the blob decodes.
std::string decode_error(const std::string& blob) {
  try {
    (void)serve::decode_snapshot(blob);
  } catch (const std::exception& e) {
    return e.what();
  }
  return std::string();
}

// ------------------------------------------------------------------ codec

TEST(SnapshotCodec, ReencodeIsByteIdentical) {
  TempDir dir;
  const std::string blob = write_snapshot(dir.path, workload_text(9, 12, 7));
  ASSERT_FALSE(blob.empty());

  const serve::PinSnapshot snap = serve::decode_snapshot(blob);
  EXPECT_EQ(snap.handle, kFirstHandle);
  EXPECT_FALSE(snap.layout_text.empty());
  EXPECT_EQ(snap.lines.size(), 4 + 4 * snap.obstacles.size());
  EXPECT_GT(snap.committed.size(), 0u);
  // Every commit record has a route record; the reverse need not hold — a
  // net whose route failed (or produced no segments) is recorded in
  // `routes` but committed no obstacles.
  EXPECT_LE(snap.committed.size(), snap.routes.size());

  // The codec is canonical: decode → encode reproduces the exact bytes.
  EXPECT_EQ(serve::encode_snapshot(snap), blob);
}

TEST(SnapshotCodec, TruncationAndCorruptionRejected) {
  TempDir dir;
  const std::string blob = write_snapshot(dir.path, workload_text(9, 12, 7));
  ASSERT_GT(blob.size(), 64u);

  // Every truncated prefix throws — dense over the header, sampled beyond.
  for (std::size_t len = 0; len < 64; ++len) {
    EXPECT_NE(decode_error(blob.substr(0, len)), "") << "prefix " << len;
  }
  for (std::size_t len = 64; len < blob.size(); len += 97) {
    EXPECT_NE(decode_error(blob.substr(0, len)), "") << "prefix " << len;
  }

  // Trailing garbage is not ignored.
  EXPECT_NE(decode_error(blob + 'x'), "");

  // A flipped payload byte trips the checksum.
  std::string flipped = blob;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_NE(decode_error(flipped).find("checksum"), std::string::npos);

  // A damaged magic or version is called out before any payload work.
  std::string bad_magic = blob;
  bad_magic[0] ^= 0x01;
  EXPECT_NE(decode_error(bad_magic).find("bad magic"), std::string::npos);
  std::string bad_version = blob;
  bad_version[8] ^= 0x7f;
  EXPECT_NE(decode_error(bad_version).find("unsupported version"),
            std::string::npos);
}

// ---------------------------------------------------------------- restore

TEST(SnapshotRestore, RerouteByteIdenticalAcrossRestartWithZeroBuilds) {
  TempDir dir;
  const layout::Layout lay = workload::standard_workload(9, 512, 12, 7);
  const std::string text = io::write_layout_string(lay);
  const std::string key = serve::SessionCache::content_key(text);
  std::string all_nets;
  for (const auto& net : lay.nets()) {
    if (!all_nets.empty()) all_nets += ',';
    all_nets += net.name();
  }
  const std::string rip =
      lay.nets()[0].name() + "," + lay.nets()[1].name();

  // ---- first server lifetime: pin, commit, save, then answer a REROUTE.
  // The reference REROUTE runs *after* SAVE, so the snapshot holds exactly
  // the state that answer was computed from.
  std::string live_status, live_body;
  std::string commit_meta;
  {
    serve::RoutingService::Options opts;
    opts.workers = 1;
    opts.snapshot_dir = dir.path.string();
    serve::RoutingService service(opts);
    const std::string script =
        "LOAD " + std::to_string(text.size()) + "\n" + text + "PIN " + key +
        "\n" + "COMMIT " + std::string(kFirstHandle) + " nets=" + all_nets +
        "\nSAVE " + kFirstHandle + " soak.snap\nREROUTE " + kFirstHandle +
        " nets=" + rip + "\nQUIT\n";
    std::istringstream replies(run_on(service, script));

    const Frame load = next_frame(replies);
    ASSERT_EQ(load.status.rfind("OK ", 0), 0u) << load.status;
    const Frame pin = next_frame(replies);
    ASSERT_EQ(pin.status.rfind("OK ", 0), 0u) << pin.status;
    EXPECT_NE(pin.status.find("pin=" + std::string(kFirstHandle)),
              std::string::npos)
        << pin.status;
    EXPECT_NE(pin.status.find("session=" + key), std::string::npos);
    const Frame commit = next_frame(replies);
    ASSERT_EQ(commit.status.rfind("OK ", 0), 0u) << commit.status;
    commit_meta = strip_timing(commit.status);
    const Frame save = next_frame(replies);
    ASSERT_EQ(save.status.rfind("OK ", 0), 0u) << save.status;
    EXPECT_NE(save.status.find("bytes="), std::string::npos);
    const Frame reroute = next_frame(replies);
    ASSERT_EQ(reroute.status.rfind("OK ", 0), 0u) << reroute.status;
    live_status = strip_timing(reroute.status);
    live_body = reroute.body;
    EXPECT_FALSE(live_body.empty());
  }
  ASSERT_TRUE(fs::exists(dir.path / "soak.snap"));

  // ---- second server lifetime: restore must not build any environment —
  // rehydration re-derives lookup tables only (that is the whole point of
  // the snapshot), and the pin's REROUTE mutates incrementally.
  const std::size_t builds = route::SearchEnvironment::build_count();
  serve::RoutingService::Options opts;
  opts.workers = 1;
  opts.restore_dir = dir.path.string();
  serve::RoutingService service(opts);
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds)
      << "restore must rehydrate without a single environment build";
  ASSERT_EQ(service.pins().size(), 1u);
  EXPECT_EQ(service.snapshot().pins_restored, 1u);

  const std::string script = "PIN " + std::string(kFirstHandle) +
                             "\nREROUTE " + kFirstHandle + " nets=" + rip +
                             "\nQUIT\n";
  std::istringstream replies(run_on(service, script));
  const Frame claim = next_frame(replies);
  ASSERT_EQ(claim.status.rfind("OK ", 0), 0u) << claim.status;
  EXPECT_NE(claim.status.find("session=" + key), std::string::npos)
      << claim.status;
  const Frame reroute = next_frame(replies);
  ASSERT_EQ(reroute.status.rfind("OK ", 0), 0u) << reroute.status;

  // The restarted server answers byte-identically (timing excluded).
  EXPECT_EQ(strip_timing(reroute.status), live_status);
  EXPECT_EQ(reroute.body, live_body);
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds)
      << "pin REROUTE must stay incremental after restore";
}

TEST(SnapshotRestore, CorruptOrTruncatedBlobLeavesSessionAbsent) {
  TempDir dir;
  const std::string blob = write_snapshot(dir.path, workload_text(9, 12, 7));
  ASSERT_FALSE(blob.empty());

  // Overwrite with a truncated copy and drop in a garbage sibling: the
  // restoring server must come up with *no* pins, never a half-restored
  // one.
  {
    std::ofstream out(dir.path / "codec.snap",
                      std::ios::binary | std::ios::trunc);
    out.write(blob.data(),
              static_cast<std::streamsize>(blob.size() / 2));
  }
  {
    std::ofstream out(dir.path / "garbage.snap", std::ios::binary);
    out << "this is not a snapshot";
  }

  serve::RoutingService::Options opts;
  opts.workers = 1;
  opts.restore_dir = dir.path.string();
  serve::RoutingService service(opts);
  EXPECT_EQ(service.pins().size(), 0u);
  EXPECT_EQ(service.snapshot().pins_restored, 0u);
}

// -------------------------------------------------------------- lifecycle

TEST(PinProtocol, LifecycleOverTheWire) {
  const std::string text = workload_text(9, 12, 7);
  const std::string key = serve::SessionCache::content_key(text);
  const layout::Layout lay = workload::standard_workload(9, 512, 12, 7);
  const std::string n0 = lay.nets()[0].name();

  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const std::string handle(kFirstHandle);
  const std::string script =
      "LOAD " + std::to_string(text.size()) + "\n" + text + "PIN " + key +
      "\n" + "PIN " + handle + "\n" +      // idempotent re-claim
      "COMMIT " + handle + " nets=" + n0 + "\n" +
      "UNCOMMIT " + handle + " nets=" + n0 + "\n" +
      "SAVE " + handle + " x.snap\n" +     // snapshots not enabled
      "UNPIN " + handle + "\n" +
      "COMMIT " + handle + " nets=" + n0 + "\n" +  // gone after UNPIN
      "QUIT\n";
  std::istringstream replies(run_on(service, script));

  (void)next_frame(replies);  // LOAD
  const Frame pin = next_frame(replies);
  ASSERT_EQ(pin.status.rfind("OK 0 ", 0), 0u) << pin.status;
  EXPECT_NE(pin.status.find("pin=" + handle), std::string::npos);
  EXPECT_NE(pin.status.find("session=" + key), std::string::npos);
  EXPECT_NE(pin.status.find("committed=0"), std::string::npos);
  const Frame reclaim = next_frame(replies);
  ASSERT_EQ(reclaim.status.rfind("OK 0 ", 0), 0u)
      << "same-owner PIN must be an idempotent claim: " << reclaim.status;
  EXPECT_NE(reclaim.status.find("pin=" + handle), std::string::npos);
  const Frame commit = next_frame(replies);
  ASSERT_EQ(commit.status.rfind("OK ", 0), 0u) << commit.status;
  EXPECT_NE(commit.status.find("pin=" + handle), std::string::npos);
  EXPECT_NE(commit.status.find("committed="), std::string::npos);
  const Frame uncommit = next_frame(replies);
  ASSERT_EQ(uncommit.status.rfind("OK ", 0), 0u) << uncommit.status;
  EXPECT_NE(uncommit.status.find("removed=1"), std::string::npos)
      << uncommit.status;
  EXPECT_NE(uncommit.status.find("committed=0"), std::string::npos);
  const Frame save = next_frame(replies);
  EXPECT_EQ(save.status.rfind("ERR ", 0), 0u) << save.status;
  EXPECT_NE(save.status.find("snapshots are disabled"), std::string::npos);
  const Frame unpin = next_frame(replies);
  ASSERT_EQ(unpin.status.rfind("OK 0 ", 0), 0u) << unpin.status;
  EXPECT_NE(unpin.status.find("released=1"), std::string::npos);
  const Frame gone = next_frame(replies);
  EXPECT_EQ(gone.status.rfind("ERR ", 0), 0u)
      << "COMMIT after UNPIN must fail: " << gone.status;
  const Frame bye = next_frame(replies);
  EXPECT_EQ(bye.status, "OK 0 bye");

  EXPECT_EQ(service.pins().size(), 0u);
  const serve::MetricsSnapshot snap = service.snapshot();
  EXPECT_EQ(snap.pins_created, 1u);
  EXPECT_EQ(snap.pins_released, 1u);
}

TEST(PinProtocol, DisconnectAutoReleases) {
  const std::string text = workload_text(9, 12, 7);
  const std::string key = serve::SessionCache::content_key(text);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);

  // The connection ends (EOF) without UNPIN; serve_connection's exit path
  // must release the pin through the owner token.
  const std::string script =
      "LOAD " + std::to_string(text.size()) + "\n" + text + "PIN " + key +
      "\n";
  std::istringstream replies(run_on(service, script));
  (void)next_frame(replies);
  const Frame pin = next_frame(replies);
  ASSERT_EQ(pin.status.rfind("OK 0 ", 0), 0u) << pin.status;
  EXPECT_EQ(service.pins().size(), 0u)
      << "disconnect must auto-release owned pins";
  EXPECT_EQ(service.snapshot().pins_released, 1u);
}

TEST(PinRegistry, OwnershipGatesMutations) {
  const std::string text = workload_text(9, 12, 7);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(text);
  const auto owner1 = make_owner();
  const auto owner2 = make_owner();

  serve::PinRequest pin;
  pin.op = serve::PinRequest::Op::kPin;
  pin.key = session->key;
  pin.owner = owner1;
  const serve::PinResponse created = service.pin_op(std::move(pin));
  ASSERT_TRUE(created.ok()) << created.error;

  // Another connection can neither claim, mutate, nor release it.
  serve::PinRequest steal;
  steal.op = serve::PinRequest::Op::kPin;
  steal.key = created.handle;
  steal.owner = owner2;
  EXPECT_FALSE(service.pin_op(std::move(steal)).ok());

  serve::PinRequest mutate;
  mutate.op = serve::PinRequest::Op::kCommit;
  mutate.key = created.handle;
  mutate.nets = {session->layout.nets()[0].name()};
  mutate.owner = owner2;
  EXPECT_FALSE(service.pin_op(std::move(mutate)).ok());

  serve::PinRequest unpin;
  unpin.op = serve::PinRequest::Op::kUnpin;
  unpin.key = created.handle;
  unpin.owner = owner2;
  EXPECT_FALSE(service.pin_op(std::move(unpin)).ok());
  EXPECT_EQ(service.pins().size(), 1u);

  // The owner's disconnect releases it.
  service.release_pins(owner1);
  EXPECT_EQ(service.pins().size(), 0u);
}

// ------------------------------------------------------------------ hello

TEST(Protocol, HelloAdvertisesVerbTable) {
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  std::istringstream replies(run_on(service, "HELLO\nQUIT\n"));
  const Frame hello = next_frame(replies);
  ASSERT_EQ(hello.status.rfind("OK ", 0), 0u) << hello.status;
  EXPECT_NE(hello.status.find("version=2"), std::string::npos)
      << hello.status;
  EXPECT_NE(hello.status.find(
                "verbs=" + std::to_string(serve::verb_table().size())),
            std::string::npos)
      << hello.status;

  // One body line per verb, each led by "verb "; the capability list names
  // required knobs with a '!' marker.
  std::istringstream body(hello.body);
  std::size_t lines = 0;
  std::string line;
  bool saw_pin = false, saw_save = false, saw_reroute_nets = false;
  while (std::getline(body, line)) {
    EXPECT_EQ(line.rfind("verb ", 0), 0u) << line;
    ++lines;
    if (line.rfind("verb PIN args=1", 0) == 0) saw_pin = true;
    if (line.rfind("verb SAVE args=2", 0) == 0) saw_save = true;
    if (line.rfind("verb REROUTE", 0) == 0 &&
        line.find("nets!") != std::string::npos) {
      saw_reroute_nets = true;
    }
  }
  EXPECT_EQ(lines, serve::verb_table().size());
  EXPECT_TRUE(saw_pin);
  EXPECT_TRUE(saw_save);
  EXPECT_TRUE(saw_reroute_nets);
}

// --------------------------------------------------- drain-time final save

TEST(FinalSave, RidesTicketChainSoInFlightMutationsLandInSnapshot) {
  TempDir dir;
  const std::string text = workload_text(9, 12, 21);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  opts.snapshot_dir = dir.path.string();
  serve::RoutingService service(opts);
  const auto session = service.load(text);
  const auto owner = make_owner();

  serve::PinRequest pin;
  pin.op = serve::PinRequest::Op::kPin;
  pin.key = session->key;
  pin.owner = owner;
  const serve::PinResponse pinned = service.pin_op(std::move(pin));
  ASSERT_TRUE(pinned.ok()) << pinned.error;

  // The regression scenario: SIGINT lands while a COMMIT is still in the
  // pin's ticket chain.  The final save acquires a LATER ticket, so it must
  // observe the committed state — never a torn or pre-commit snapshot.
  serve::PinRequest commit;
  commit.op = serve::PinRequest::Op::kCommit;
  commit.key = pinned.handle;
  for (const auto& net : session->layout.nets()) {
    commit.nets.push_back(net.name());
  }
  commit.owner = owner;
  std::atomic<bool> commit_done{false};
  std::atomic<std::size_t> commit_routed{0};
  service.submit_pin(std::move(commit), [&](serve::PinResponse resp) {
    EXPECT_TRUE(resp.ok()) << resp.error;
    commit_routed.store(resp.routed);
    commit_done.store(true);
  });

  EXPECT_EQ(service.final_save_pins(), 1u);
  // The ticket chain orders the *mutation* before the save; the response
  // callback fires just after finish_turn, so give it a beat.
  for (int i = 0; i < 5000 && !commit_done.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(commit_done.load()) << "commit never completed";
  // Incremental commits leave the halo of each committed net in place, so
  // not every net of the workload routes — what matters is that the
  // snapshot holds the commit's *final* count, never a torn prefix of it.
  EXPECT_GT(commit_routed.load(), 0u);

  const fs::path file = dir.path / pinned.handle;
  ASSERT_TRUE(fs::exists(file));
  std::ifstream is(file, std::ios::binary);
  std::stringstream blob;
  blob << is.rdbuf();
  const serve::PinSnapshot snap = serve::decode_snapshot(blob.str());
  EXPECT_EQ(snap.handle, pinned.handle);
  EXPECT_EQ(snap.committed.size(), commit_routed.load())
      << "final save overtook the ticket chain (torn snapshot)";
  EXPECT_EQ(service.snapshot().pin_autosaves, 1u);

  // Drain-style release: ownership drops (the connection is gone) but the
  // pin survives, unowned, for later saves and re-claims...
  service.release_pins(owner, /*preserve=*/true);
  EXPECT_EQ(service.snapshot().pins_active, 1u);

  // ...and the snapshot restores into a fresh service where a successor
  // can claim the handle.
  serve::RoutingService::Options ropts;
  ropts.workers = 1;
  ropts.restore_dir = dir.path.string();
  serve::RoutingService restored(ropts);
  EXPECT_EQ(restored.snapshot().pins_restored, 1u);
  serve::PinRequest claim;
  claim.op = serve::PinRequest::Op::kPin;
  claim.key = pinned.handle;
  claim.owner = make_owner();
  EXPECT_TRUE(restored.pin_op(std::move(claim)).ok());
}

TEST(FinalSave, NonPreservingReleaseStillDestroysPins) {
  // The steady-state disconnect path must keep its old semantics: without
  // preserve, releasing the owner erases the pin outright.
  const std::string text = workload_text(9, 12, 21);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(text);
  const auto owner = make_owner();

  serve::PinRequest pin;
  pin.op = serve::PinRequest::Op::kPin;
  pin.key = session->key;
  pin.owner = owner;
  ASSERT_TRUE(service.pin_op(std::move(pin)).ok());
  EXPECT_EQ(service.snapshot().pins_active, 1u);

  service.release_pins(owner);
  EXPECT_EQ(service.snapshot().pins_active, 0u);
  EXPECT_EQ(service.final_save_pins(), 0u);  // no dir, nothing registered
}

TEST(FinalSave, PeriodicAutosaveSweepsHotPins) {
  TempDir dir;
  const std::string text = workload_text(9, 12, 22);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  opts.snapshot_dir = dir.path.string();
  opts.snapshot_interval_s = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(text);
  const auto owner = make_owner();

  serve::PinRequest pin;
  pin.op = serve::PinRequest::Op::kPin;
  pin.key = session->key;
  pin.owner = owner;
  const serve::PinResponse pinned = service.pin_op(std::move(pin));
  ASSERT_TRUE(pinned.ok()) << pinned.error;

  // The sweep runs every second and snapshots pins it does NOT own (the
  // system bypass); the artifact is named by handle, ready for
  // --restore-dir.
  const fs::path file = dir.path / pinned.handle;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (!fs::exists(file) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(fs::exists(file)) << "autosave never wrote " << file;
  EXPECT_GE(service.snapshot().pin_autosaves, 1u);

  // The blob on disk is a valid snapshot of this pin.
  std::ifstream is(file, std::ios::binary);
  std::stringstream blob;
  blob << is.rdbuf();
  EXPECT_EQ(serve::decode_snapshot(blob.str()).handle, pinned.handle);
}

}  // namespace
