// Tests for the serving subsystem: session cache (content addressing, LRU,
// environment reuse), bounded job queue, worker-pool request lifecycle
// (deadlines, cancellation, saturation), and the framed line protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/netlist_router.hpp"
#include "core/optimize.hpp"
#include "core/search_environment.hpp"
#include "io/route_dump.hpp"
#include "io/text_format.hpp"
#include "serve/job_queue.hpp"
#include "serve/layout_session.hpp"
#include "serve/protocol.hpp"
#include "serve/routing_service.hpp"
#include "workload/netgen.hpp"

namespace {

using namespace gcr;

constexpr const char* kTinyLayout = R"(boundary 0 0 100 100
minsep 4
cell alu 10 10 30 30
cell rom 50 50 80 80
term alu a 30 20
term rom d 50 70
net n1 alu.a rom.d
)";

std::string workload_text(std::size_t cells, std::size_t nets,
                          std::uint64_t seed) {
  return io::write_layout_string(
      workload::standard_workload(cells, 512, nets, seed));
}

// ------------------------------------------------------------- session cache

TEST(SessionCache, HitSkipsEnvironmentConstruction) {
  serve::SessionCache cache(4);
  const std::string text = workload_text(9, 12, 3);

  const std::size_t builds_before = route::SearchEnvironment::build_count();
  const auto first = cache.load(text);
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds_before + 1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  // The acceptance check: a cache hit must perform zero ObstacleIndex /
  // EscapeLineSet construction.
  const auto second = cache.load(text);
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds_before + 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(second.get(), first.get());  // literally the same session
}

TEST(SessionCache, ContentAddressing) {
  // Known FNV-1a vectors pin the hash: an accidental constant change would
  // silently orphan every handle a client computed out-of-process.
  EXPECT_EQ(serve::SessionCache::content_key(""), "cbf29ce484222325");
  EXPECT_EQ(serve::SessionCache::content_key("a"), "af63dc4c8601ec8c");

  const std::string a = workload_text(9, 12, 3);
  const std::string b = workload_text(9, 12, 4);
  EXPECT_EQ(serve::SessionCache::content_key(a),
            serve::SessionCache::content_key(a));
  EXPECT_NE(serve::SessionCache::content_key(a),
            serve::SessionCache::content_key(b));

  serve::SessionCache cache(4);
  const auto sa = cache.load(a);
  EXPECT_EQ(sa->key, serve::SessionCache::content_key(a));
  EXPECT_EQ(cache.find(sa->key).get(), sa.get());
  EXPECT_EQ(cache.find("0000000000000000"), nullptr);
}

TEST(SessionCache, LruEviction) {
  serve::SessionCache cache(2);
  const std::string a = workload_text(9, 12, 3);
  const std::string b = workload_text(9, 12, 4);
  const std::string c = workload_text(9, 12, 5);
  const auto ka = cache.load(a)->key;
  const auto kb = cache.load(b)->key;
  (void)cache.find(ka);  // refresh a: b is now least recent
  (void)cache.load(c);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.find(ka), nullptr);
  EXPECT_EQ(cache.find(kb), nullptr);  // evicted
}

TEST(SessionCache, RejectsMalformedAndInvalidLayouts) {
  serve::SessionCache cache(2);
  EXPECT_THROW((void)cache.load("boundary 0 0 9\n"), std::runtime_error);
  EXPECT_THROW((void)cache.load("garbage directive\n"), std::runtime_error);
  // Parseable but violates placement rules (overlapping cells): the service
  // must refuse to build a session rather than route a broken problem.
  EXPECT_THROW(
      (void)cache.load("boundary 0 0 100 100\ncell a 10 10 50 50\n"
                       "cell b 20 20 60 60\n"),
      std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------- job queue

TEST(BoundedQueue, SaturationAndClose) {
  serve::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: admission fails fast
  EXPECT_EQ(q.size(), 2u);

  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));

  q.close();
  EXPECT_FALSE(q.try_push(4));  // closed: no admission
  EXPECT_EQ(q.pop(), 2);        // but queued jobs drain
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), std::nullopt);  // closed + drained
}

TEST(BoundedQueue, BlockingHandoff) {
  serve::BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(7));
  std::thread producer([&] { EXPECT_TRUE(q.push(8)); });  // blocks while full
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), 8);
  producer.join();
}

// ------------------------------------------------------------ route service

TEST(RoutingService, MatchesDirectRouterOnCachedSession) {
  const std::string text = workload_text(9, 12, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult direct = route::NetlistRouter(lay).route_all();

  serve::RoutingService::Options opts;
  opts.workers = 2;
  serve::RoutingService service(opts);
  const auto session = service.load(text);

  serve::RouteRequest req;
  req.session_key = session->key;
  const serve::RouteResponse resp = service.route(std::move(req));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.result.total_wirelength, direct.total_wirelength);
  EXPECT_EQ(resp.result.routed, direct.routed);
  EXPECT_EQ(resp.result.failed, direct.failed);
  EXPECT_GE(resp.latency.count(), resp.queue_wait.count());
}

TEST(RoutingService, SequentialModeServedFromCachedSession) {
  // Sequential mode used to rebuild the ObstacleIndex and EscapeLineSet per
  // net, which made cached sessions useless for it.  With incremental
  // commit_route updates it starts from a *copy* of the session environment
  // and performs zero builds — while producing exactly the direct result.
  const std::string text = workload_text(9, 12, 7);
  const layout::Layout lay = io::read_layout_string(text);
  route::NetlistOptions seq;
  seq.mode = route::NetlistMode::kSequential;
  const route::NetlistResult direct = route::NetlistRouter(lay).route_all(seq);

  serve::RoutingService::Options opts;
  opts.workers = 2;
  serve::RoutingService service(opts);
  const auto session = service.load(text);
  const std::size_t builds = route::SearchEnvironment::build_count();

  serve::RouteRequest req;
  req.session_key = session->key;
  req.opts = seq;
  const serve::RouteResponse resp = service.route(std::move(req));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds)
      << "a cached session must serve sequential mode without env builds";
  EXPECT_EQ(resp.result.total_wirelength, direct.total_wirelength);
  EXPECT_EQ(resp.result.routed, direct.routed);
  EXPECT_EQ(resp.result.failed, direct.failed);
  ASSERT_EQ(resp.result.routes.size(), direct.routes.size());
  for (std::size_t i = 0; i < direct.routes.size(); ++i) {
    EXPECT_EQ(resp.result.routes[i].segments, direct.routes[i].segments)
        << "net " << i;
  }
}

TEST(RoutingService, ConcurrentRequestsShareOneSession) {
  const std::string text = workload_text(9, 12, 7);
  serve::RoutingService::Options opts;
  opts.workers = 4;
  opts.queue_capacity = 64;
  serve::RoutingService service(opts);
  const auto session = service.load(text);
  const std::size_t builds_after_load = route::SearchEnvironment::build_count();

  const geom::Cost expected =
      route::NetlistRouter(session->layout, session->env)
          .route_all()
          .total_wirelength;

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 4;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        serve::RouteRequest req;
        req.session_key = session->key;
        const serve::RouteResponse resp = service.route(std::move(req));
        if (!resp.ok() || resp.result.total_wirelength != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  // The reference route and all 32 concurrent requests reused the session's
  // environment: not one ObstacleIndex or EscapeLineSet was built after
  // load().
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds_after_load);
  EXPECT_EQ(service.snapshot().requests_ok, kClients * kPerClient);
}

TEST(RoutingService, UnknownSessionFailsFast) {
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  serve::RouteRequest req;
  req.session_key = "feedfacefeedface";
  const serve::RouteResponse resp = service.route(std::move(req));
  EXPECT_EQ(resp.status, serve::RouteStatus::kSessionNotFound);
  const serve::MetricsSnapshot snap = service.snapshot();
  EXPECT_EQ(snap.requests_not_found, 1u);
  EXPECT_EQ(snap.requests_errored, 0u);  // addressing mistake, not a failure
}

TEST(RoutingService, ExpiredDeadlineIsDroppedAtDequeue) {
  const std::string text = workload_text(9, 12, 7);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(text);

  serve::RouteRequest req;
  req.session_key = session->key;
  req.deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(1);  // already expired
  const serve::RouteResponse resp = service.route(std::move(req));
  EXPECT_EQ(resp.status, serve::RouteStatus::kExpired);
  EXPECT_EQ(service.snapshot().requests_expired, 1u);
}

TEST(RoutingService, CancelledRequestNeverRoutes) {
  const std::string text = workload_text(9, 12, 7);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(text);

  serve::RouteRequest req;
  req.session_key = session->key;
  req.cancel = std::make_shared<std::atomic<bool>>(true);
  const serve::RouteResponse resp = service.route(std::move(req));
  EXPECT_EQ(resp.status, serve::RouteStatus::kCancelled);
  EXPECT_EQ(service.snapshot().nets_routed, 0u);
}

// ------------------------------------------------------------------ protocol

/// Runs a scripted connection and returns everything the service wrote.
std::string run_protocol(const std::string& script,
                         std::size_t workers = 1) {
  serve::RoutingService::Options opts;
  opts.workers = workers;
  serve::RoutingService service(opts);
  std::istringstream in(script);
  std::ostringstream out;
  serve::serve_connection(service, in, out);
  return out.str();
}

/// Reads one framed response (status line + counted body) off \p in.
struct Frame {
  std::string status;
  std::string body;
};

Frame next_frame(std::istringstream& in) {
  Frame f;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, f.status)));
  std::istringstream is(f.status);
  std::string kw;
  std::size_t nbytes = 0;
  is >> kw;
  if (kw == "OK" && (is >> nbytes) && nbytes > 0) {
    f.body.resize(nbytes);
    in.read(f.body.data(), static_cast<std::streamsize>(nbytes));
  }
  return f;
}

TEST(Protocol, LoadRouteStatsQuitRoundTrip) {
  const std::string text(kTinyLayout);
  const std::string key = serve::SessionCache::content_key(text);
  const std::string script = "LOAD " + std::to_string(text.size()) + "\n" +
                             text + "LOAD " + std::to_string(text.size()) +
                             "\n" + text + "ROUTE " + key +
                             " threads=1\nSTATS\nQUIT\n";
  std::istringstream replies(run_protocol(script));

  const Frame load1 = next_frame(replies);
  EXPECT_NE(load1.status.find("OK 0 session=" + key), std::string::npos);
  EXPECT_NE(load1.status.find("cached=0"), std::string::npos);
  const Frame load2 = next_frame(replies);
  EXPECT_NE(load2.status.find("cached=1"), std::string::npos);

  const Frame route = next_frame(replies);
  ASSERT_EQ(route.status.rfind("OK ", 0), 0u) << route.status;
  EXPECT_NE(route.status.find("routed=1 failed=0"), std::string::npos);
  // The body is a parseable route dump that matches a direct route.
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult direct = route::NetlistRouter(lay).route_all();
  const route::NetlistResult parsed = io::read_routes_string(route.body, lay);
  EXPECT_EQ(parsed.total_wirelength, direct.total_wirelength);
  EXPECT_EQ(parsed.routed, direct.routed);

  const Frame stats = next_frame(replies);
  EXPECT_EQ(stats.status.rfind("OK ", 0), 0u);
  EXPECT_NE(stats.body.find("requests_ok 1"), std::string::npos);
  EXPECT_NE(stats.body.find("cache_hits"), std::string::npos);

  const Frame bye = next_frame(replies);
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(Protocol, MalformedFramesGetErrNotCrash) {
  const std::string text(kTinyLayout);
  // Bad *command lines* are recoverable: the stream position is still at a
  // line boundary, so the connection continues.
  const std::string script =
      "NONSENSE\n"                      // unknown command
      "ROUTE\n"                         // missing session key
      "ROUTE deadbeefdeadbeef\n"        // unknown session
      "ROUTE k mode=banana\n"           // bad option value
      "ROUTE k frobnicate=1\n"          // unknown option
      "ROUTE k threads\n"               // not key=value
      "LOAD " + std::to_string(text.size()) + "\n" + text +  // recovers
      "QUIT\n";
  std::istringstream replies(run_protocol(script));
  for (int i = 0; i < 6; ++i) {
    const Frame f = next_frame(replies);
    EXPECT_EQ(f.status.rfind("ERR ", 0), 0u) << "frame " << i << ": "
                                             << f.status;
  }
  // The connection survived six bad frames and still serves real ones.
  const Frame load = next_frame(replies);
  EXPECT_EQ(load.status.rfind("OK 0 session=", 0), 0u) << load.status;
  const Frame bye = next_frame(replies);
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(Protocol, UnframeableLoadDropsConnection) {
  // A LOAD whose byte count cannot be parsed leaves the body length — and
  // therefore the stream position — unknown; the connection must drop
  // instead of parsing body bytes as commands (a QUIT inside a layout
  // would otherwise kill a pipelined client's session).
  for (const char* bad : {"LOAD\n", "LOAD abc\n",
                          "LOAD 99999999999999999999\n"}) {
    const std::string out = run_protocol(std::string(bad) + "QUIT\n");
    EXPECT_EQ(out.rfind("ERR ", 0), 0u) << bad;
    EXPECT_EQ(out.find("OK 0 bye"), std::string::npos)
        << "connection continued after " << bad;
  }
  // An oversized but well-formed count keeps framing: the declared body is
  // skipped and the connection continues (here the body is absent, so the
  // skip hits EOF and the connection ends — without misparsing).
  const std::string out = run_protocol("LOAD 67108865\nQUIT\n");
  EXPECT_NE(out.find("larger than 64 MiB"), std::string::npos);
}

TEST(Protocol, TruncatedLoadBodyDropsConnection) {
  // 100 declared bytes, far fewer supplied: framing is unrecoverable.
  const std::string out = run_protocol("LOAD 100\nboundary 0 0 9 9\n");
  EXPECT_EQ(out.rfind("ERR ", 0), 0u);
  EXPECT_NE(out.find("truncated"), std::string::npos);
}

TEST(Protocol, OverlongCommandLineGetsErrAndRecovers) {
  // A peer that streams an enormous "line" must not buffer unbounded
  // memory; the overlong line is discarded to its LF and the connection
  // keeps serving.
  const std::string out = run_protocol(
      std::string(serve::kMaxCommandLine + 100, 'x') + "\nQUIT\n");
  EXPECT_EQ(out.rfind("ERR ", 0), 0u) << out.substr(0, 40);
  EXPECT_NE(out.find("command line exceeds"), std::string::npos);
  EXPECT_NE(out.find("OK 0 bye"), std::string::npos)
      << "connection must survive an overlong line";
}

TEST(Protocol, ErrEchoesAreClampedToPrintable) {
  // Untrusted tokens echo back in ERR reasons; terminal escapes and other
  // control bytes must never reach the client (or an operator's terminal).
  const std::string out = run_protocol("FROB\x1b[31m\x01\x02\nQUIT\n");
  EXPECT_EQ(out.rfind("ERR ", 0), 0u);
  for (const char c : out) {
    const unsigned char u = static_cast<unsigned char>(c);
    EXPECT_TRUE(u == '\n' || (u >= 0x20 && u < 0x7f))
        << "control byte 0x" << std::hex << static_cast<int>(u)
        << " leaked into a response";
  }
  // And very long reasons are truncated, not amplified.
  const std::string flood = run_protocol(
      "ROUTE k " + std::string(2000, 'y') + "=1\nQUIT\n");
  const std::size_t first_line_len = flood.find('\n');
  ASSERT_NE(first_line_len, std::string::npos);
  EXPECT_LE(first_line_len, 300u);
}

TEST(Protocol, RouteNetSubset) {
  const std::string text = workload_text(9, 12, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult reference = route::NetlistRouter(lay).route_all();
  ASSERT_GE(lay.nets().size(), 3u);
  const std::string& a = lay.nets()[2].name();
  const std::string& b = lay.nets()[0].name();
  const std::string key = serve::SessionCache::content_key(text);

  const std::string script =
      "LOAD " + std::to_string(text.size()) + "\n" + text +
      "ROUTE " + key + " nets=" + a + "," + b + "\n" +   // named subset
      "ROUTE " + key + " nets=" + a + "," + a + "\n" +   // duplicate: once
      "ROUTE " + key + " nets=bogus\n" +                 // unknown net
      "QUIT\n";
  std::istringstream replies(run_protocol(script));

  (void)next_frame(replies);  // LOAD
  const Frame subset = next_frame(replies);
  ASSERT_EQ(subset.status.rfind("OK ", 0), 0u) << subset.status;
  EXPECT_NE(subset.status.find("routed=2 failed=0"), std::string::npos);
  // The dump covers exactly the requested nets and reproduces the full
  // run's routes for them bit-for-bit.
  const route::NetlistResult parsed = io::read_routes_string(subset.body, lay);
  EXPECT_EQ(parsed.routed, 2u);
  EXPECT_EQ(parsed.routes[0].segments, reference.routes[0].segments);
  EXPECT_EQ(parsed.routes[2].segments, reference.routes[2].segments);
  EXPECT_EQ(subset.body.rfind("route " + a + " ", 0), 0u)
      << "dump order must follow the request list";

  const Frame dedup = next_frame(replies);
  EXPECT_NE(dedup.status.find("routed=1 "), std::string::npos)
      << "duplicate names must route once: " << dedup.status;

  const Frame unknown = next_frame(replies);
  EXPECT_EQ(unknown.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(unknown.status.find("unknown net 'bogus'"), std::string::npos);

  const Frame bye = next_frame(replies);
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(Protocol, ParseRouteCommand) {
  const serve::RouteCommand cmd = serve::parse_route_command(
      " abc123 mode=sequential threads=4 deadline_ms=250 sorted=0"
      " segments=0");
  EXPECT_EQ(cmd.session_key, "abc123");
  EXPECT_EQ(cmd.opts.mode, route::NetlistMode::kSequential);
  EXPECT_EQ(cmd.opts.threads, 4u);
  EXPECT_FALSE(cmd.opts.sorted_dispatch);
  EXPECT_FALSE(cmd.opts.steiner.connect_to_segments);
  ASSERT_TRUE(cmd.deadline.has_value());
  EXPECT_EQ(cmd.deadline->count(), 250);
  EXPECT_THROW((void)serve::parse_route_command(""), std::runtime_error);
  EXPECT_THROW((void)serve::parse_route_command("k deadline_ms=-1"),
               std::runtime_error);
}

TEST(Protocol, ParseRouteCommandNets) {
  const serve::RouteCommand cmd =
      serve::parse_route_command("key nets=clk,rst,d0");
  EXPECT_EQ(cmd.nets, (std::vector<std::string>{"clk", "rst", "d0"}));
  EXPECT_TRUE(serve::parse_route_command("key").nets.empty());
  // Empty items would silently route nothing — malformed.
  EXPECT_THROW((void)serve::parse_route_command("k nets=a,,b"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_route_command("k nets=a,"),
               std::runtime_error);
}

TEST(Protocol, ParseRerouteCommand) {
  const serve::RouteCommand cmd =
      serve::parse_reroute_command("key nets=clk,rst threads=2");
  EXPECT_EQ(cmd.session_key, "key");
  EXPECT_EQ(cmd.nets, (std::vector<std::string>{"clk", "rst"}));
  EXPECT_TRUE(cmd.reroute);
  EXPECT_EQ(cmd.opts.mode, route::NetlistMode::kSequential);
  EXPECT_EQ(cmd.opts.threads, 2u);
  // nets= is mandatory: an empty rip-up set would silently be a plain
  // route.  mode= is rejected either way — REROUTE is sequential by
  // definition, and a silently-ignored mode=independent would mislead.
  EXPECT_THROW((void)serve::parse_reroute_command("key"), std::runtime_error);
  EXPECT_THROW((void)serve::parse_reroute_command("key mode=independent"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_reroute_command("key mode=sequential"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_reroute_command("key nets=a,"),
               std::runtime_error);
  // ROUTE does not grow a reroute flag by accident.
  EXPECT_FALSE(serve::parse_route_command("key nets=a").reroute);
}

TEST(Protocol, RerouteRoundTrip) {
  // Blocking-path REROUTE end to end: the dump must be restricted to the
  // ripped nets and reproduce the rip-up driver bit-for-bit; the meta
  // totals cover the whole netlist (the remainder is part of the result).
  const std::string text = workload_text(9, 12, 7);
  const layout::Layout lay = io::read_layout_string(text);
  ASSERT_GE(lay.nets().size(), 4u);
  const std::string& a = lay.nets()[3].name();
  const std::string& b = lay.nets()[1].name();
  const std::string key = serve::SessionCache::content_key(text);

  route::NetlistOptions ropts;
  ropts.mode = route::NetlistMode::kSequential;
  ropts.reroute = {3, 1};
  const route::NetlistResult want =
      route::NetlistRouter(lay).route_all(ropts);
  const std::string want_dump =
      io::write_routes_string(lay, want, ropts.reroute);

  const std::string script =
      "LOAD " + std::to_string(text.size()) + "\n" + text +
      "REROUTE " + key + " nets=" + a + "," + b + "\n" +
      "REROUTE " + key + " nets=" + a + "," + a + "\n" +  // dedup: rip once
      "REROUTE " + key + "\n" +                           // missing nets=
      "REROUTE " + key + " nets=bogus\n" +                // unknown net
      "QUIT\n";
  std::istringstream replies(run_protocol(script));

  (void)next_frame(replies);  // LOAD
  const Frame reroute = next_frame(replies);
  ASSERT_EQ(reroute.status.rfind("OK ", 0), 0u) << reroute.status;
  EXPECT_NE(reroute.status.find(
                "routed=" + std::to_string(want.routed) + " failed=" +
                std::to_string(want.failed) + " wirelength=" +
                std::to_string(want.total_wirelength)),
            std::string::npos)
      << reroute.status;
  EXPECT_EQ(reroute.body, want_dump);
  EXPECT_EQ(reroute.body.rfind("route " + a + " ", 0), 0u)
      << "dump order must follow the rip-up list";

  const Frame dedup = next_frame(replies);
  ASSERT_EQ(dedup.status.rfind("OK ", 0), 0u) << dedup.status;
  const route::NetlistResult dedup_parsed =
      io::read_routes_string(dedup.body, lay);
  EXPECT_EQ(dedup_parsed.routed + dedup_parsed.failed, 1u)
      << "duplicate names must rip once";

  const Frame missing = next_frame(replies);
  EXPECT_EQ(missing.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(missing.status.find("REROUTE needs nets="), std::string::npos);

  const Frame unknown = next_frame(replies);
  EXPECT_EQ(unknown.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(unknown.status.find("unknown net 'bogus'"), std::string::npos);

  const Frame bye = next_frame(replies);
  EXPECT_EQ(bye.status, "OK 0 bye");
}

// ---------------------------------------------------------------- OPTIMIZE

TEST(Protocol, ParseOptimizeCommand) {
  const serve::RouteCommand cmd = serve::parse_optimize_command(
      " abc123 passes=4 budget_ms=250 deadline_ms=500 segments=0");
  EXPECT_EQ(cmd.session_key, "abc123");
  EXPECT_TRUE(cmd.optimize);
  EXPECT_FALSE(cmd.reroute);
  EXPECT_EQ(cmd.passes, 4u);
  EXPECT_EQ(cmd.budget.count(), 250);
  ASSERT_TRUE(cmd.deadline.has_value());
  EXPECT_EQ(cmd.deadline->count(), 500);
  EXPECT_FALSE(cmd.opts.steiner.connect_to_segments);
  EXPECT_EQ(cmd.opts.mode, route::NetlistMode::kSequential);

  EXPECT_THROW((void)serve::parse_optimize_command(""), std::runtime_error);
  EXPECT_THROW((void)serve::parse_optimize_command("k passes=0"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_optimize_command("k passes=1025"),
               std::runtime_error);
  // The engine is sequential whole-netlist by definition: mode=, nets=,
  // threads=, sorted= must be rejected, not silently ignored.
  for (const char* bad : {"k mode=independent", "k nets=a", "k threads=2",
                          "k sorted=1"}) {
    EXPECT_THROW((void)serve::parse_optimize_command(bad), std::runtime_error)
        << bad;
  }
  // ROUTE does not grow an optimize flag by accident.
  EXPECT_FALSE(serve::parse_route_command("key").optimize);
  EXPECT_EQ(serve::parse_route_command("key").passes, 0u);
}

TEST(Protocol, DeadlineAndBudgetCappedAt24Hours) {
  // deadline_ms used to feed parse_count's full unsigned range straight
  // into std::chrono::milliseconds (a *signed* rep): a huge value narrowed
  // to a negative duration, and `now + deadline` could overflow the clock
  // rep outright.  The cap answers ERR instead; exactly 24h still parses.
  const std::string max = std::to_string(serve::kMaxDeadlineMs);
  EXPECT_EQ(serve::parse_route_command("k deadline_ms=" + max)
                .deadline->count(),
            static_cast<long long>(serve::kMaxDeadlineMs));
  EXPECT_THROW((void)serve::parse_route_command("k deadline_ms=86400001"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_route_command(
                   "k deadline_ms=18446744073709551615"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_reroute_command(
                   "k nets=a deadline_ms=86400001"),
               std::runtime_error);
  EXPECT_EQ(serve::parse_optimize_command("k budget_ms=" + max).budget.count(),
            static_cast<long long>(serve::kMaxDeadlineMs));
  EXPECT_THROW((void)serve::parse_optimize_command("k budget_ms=86400001"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_optimize_command("k deadline_ms=86400001"),
               std::runtime_error);

  // End to end on the blocking front-end: the oversized value answers ERR
  // and the connection keeps serving.
  const std::string out = run_protocol(
      "ROUTE k deadline_ms=18446744073709551615\nQUIT\n");
  EXPECT_EQ(out.rfind("ERR ", 0), 0u) << out.substr(0, 60);
  EXPECT_NE(out.find("86400000"), std::string::npos);
  EXPECT_NE(out.find("OK 0 bye"), std::string::npos);
}

/// One parsed `PASS <i> wirelength=<w> overflow=<o>` progress line.
struct PassLine {
  std::size_t pass = 0;
  long long wirelength = 0;
  long long overflow = 0;
};

/// Reads an OPTIMIZE reply: any number of PASS progress lines, then the
/// terminating OK/ERR frame.  (next_frame alone would misparse the PASS
/// lines as status lines.)
std::pair<std::vector<PassLine>, Frame> next_optimize_reply(
    std::istringstream& in) {
  std::vector<PassLine> passes;
  std::string line;
  for (;;) {
    const std::istringstream::pos_type pos = in.tellg();
    if (!std::getline(in, line)) {
      ADD_FAILURE() << "stream ended inside an OPTIMIZE reply";
      return {passes, {}};
    }
    if (line.rfind("PASS ", 0) != 0) {
      in.seekg(pos);
      return {passes, next_frame(in)};
    }
    PassLine p;
    EXPECT_EQ(std::sscanf(line.c_str(), "PASS %zu wirelength=%lld overflow=%lld",
                          &p.pass, &p.wirelength, &p.overflow),
              3)
        << line;
    passes.push_back(p);
  }
}

TEST(Protocol, OptimizeRoundTripStreamsPasses) {
  const std::string text = workload_text(12, 24, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const route::OptimizeReport direct = route::Optimizer(lay).run();
  const std::string key = serve::SessionCache::content_key(text);

  const std::string script =
      "LOAD " + std::to_string(text.size()) + "\n" + text +
      "OPTIMIZE " + key + "\n" +
      "OPTIMIZE deadbeefdeadbeef\n" +   // unknown session
      "OPTIMIZE " + key + " frob=1\n" + // unknown option
      "QUIT\n";
  std::istringstream replies(run_protocol(script));

  (void)next_frame(replies);  // LOAD
  const auto [passes, frame] = next_optimize_reply(replies);
  ASSERT_EQ(frame.status.rfind("OK ", 0), 0u) << frame.status;

  // One PASS line per recorded pass, numbered from 1, and — the protocol's
  // promise — non-increasing in both wirelength and overflow.
  ASSERT_EQ(passes.size(), direct.passes.size());
  for (std::size_t i = 0; i < passes.size(); ++i) {
    EXPECT_EQ(passes[i].pass, i + 1);
    EXPECT_EQ(passes[i].wirelength, direct.passes[i].wirelength);
    EXPECT_EQ(static_cast<std::size_t>(passes[i].overflow),
              direct.passes[i].overflow);
    if (i > 0) {
      EXPECT_LE(passes[i].wirelength, passes[i - 1].wirelength);
      EXPECT_LE(passes[i].overflow, passes[i - 1].overflow);
    }
  }

  // The meta summarizes the run; the body is the full final routing and
  // reproduces the direct optimizer bit-for-bit.
  EXPECT_NE(frame.status.find(
                "passes=" + std::to_string(direct.passes.size()) + " routed=" +
                std::to_string(direct.result.routed) + " failed=" +
                std::to_string(direct.result.failed) + " wirelength=" +
                std::to_string(direct.result.total_wirelength) + " overflow=" +
                std::to_string(direct.final_overflow())),
            std::string::npos)
      << frame.status;
  const route::NetlistResult parsed = io::read_routes_string(frame.body, lay);
  EXPECT_EQ(parsed.total_wirelength, direct.result.total_wirelength);
  EXPECT_EQ(parsed.routed, direct.result.routed);

  const auto [no_passes, not_found] = next_optimize_reply(replies);
  EXPECT_TRUE(no_passes.empty());
  EXPECT_EQ(not_found.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(not_found.status.find("session_not_found"), std::string::npos);

  const auto [no_passes2, bad_opt] = next_optimize_reply(replies);
  EXPECT_TRUE(no_passes2.empty());
  EXPECT_EQ(bad_opt.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(bad_opt.status.find("unknown option"), std::string::npos);

  const Frame bye = next_frame(replies);
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(RoutingService, OptimizeRequestCountsMetrics) {
  const std::string text = workload_text(12, 24, 7);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(text);

  serve::RouteRequest req;
  req.session_key = session->key;
  req.optimize = true;
  const serve::RouteResponse resp = service.route(std::move(req));
  ASSERT_TRUE(resp.ok());
  ASSERT_FALSE(resp.passes.empty());
  EXPECT_EQ(resp.result.total_wirelength, resp.passes.back().wirelength);

  const serve::MetricsSnapshot snap = service.snapshot();
  EXPECT_EQ(snap.optimizes_ok, 1u);
  EXPECT_EQ(snap.optimize_passes, resp.passes.size() - 1);
  EXPECT_NE(snap.to_text().find("optimizes_ok 1"), std::string::npos);
}

}  // namespace
