// Tests for the serving subsystem: session cache (content addressing, LRU,
// environment reuse), bounded job queue, worker-pool request lifecycle
// (deadlines, cancellation, saturation), and the framed line protocol.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/netlist_router.hpp"
#include "core/optimize.hpp"
#include "core/search_environment.hpp"
#include "io/route_dump.hpp"
#include "io/text_format.hpp"
#include "serve/fair_queue.hpp"
#include "serve/job_queue.hpp"
#include "serve/layout_session.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/routing_service.hpp"
#include "serve/trace.hpp"
#include "workload/netgen.hpp"

namespace {

using namespace gcr;

constexpr const char* kTinyLayout = R"(boundary 0 0 100 100
minsep 4
cell alu 10 10 30 30
cell rom 50 50 80 80
term alu a 30 20
term rom d 50 70
net n1 alu.a rom.d
)";

std::string workload_text(std::size_t cells, std::size_t nets,
                          std::uint64_t seed) {
  return io::write_layout_string(
      workload::standard_workload(cells, 512, nets, seed));
}

// ------------------------------------------------------------- session cache

TEST(SessionCache, HitSkipsEnvironmentConstruction) {
  serve::SessionCache cache(4);
  const std::string text = workload_text(9, 12, 3);

  const std::size_t builds_before = route::SearchEnvironment::build_count();
  const auto first = cache.load(text);
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds_before + 1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  // The acceptance check: a cache hit must perform zero ObstacleIndex /
  // EscapeLineSet construction.
  const auto second = cache.load(text);
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds_before + 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(second.get(), first.get());  // literally the same session
}

TEST(SessionCache, ContentAddressing) {
  // Known FNV-1a vectors pin the hash: an accidental constant change would
  // silently orphan every handle a client computed out-of-process.
  EXPECT_EQ(serve::SessionCache::content_key(""), "cbf29ce484222325");
  EXPECT_EQ(serve::SessionCache::content_key("a"), "af63dc4c8601ec8c");

  const std::string a = workload_text(9, 12, 3);
  const std::string b = workload_text(9, 12, 4);
  EXPECT_EQ(serve::SessionCache::content_key(a),
            serve::SessionCache::content_key(a));
  EXPECT_NE(serve::SessionCache::content_key(a),
            serve::SessionCache::content_key(b));

  serve::SessionCache cache(4);
  const auto sa = cache.load(a);
  EXPECT_EQ(sa->key, serve::SessionCache::content_key(a));
  EXPECT_EQ(cache.find(sa->key).get(), sa.get());
  EXPECT_EQ(cache.find("0000000000000000"), nullptr);
}

TEST(SessionCache, LruEviction) {
  serve::SessionCache cache(2);
  const std::string a = workload_text(9, 12, 3);
  const std::string b = workload_text(9, 12, 4);
  const std::string c = workload_text(9, 12, 5);
  const auto ka = cache.load(a)->key;
  const auto kb = cache.load(b)->key;
  (void)cache.find(ka);  // refresh a: b is now least recent
  (void)cache.load(c);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.find(ka), nullptr);
  EXPECT_EQ(cache.find(kb), nullptr);  // evicted
}

TEST(SessionCache, RejectsMalformedAndInvalidLayouts) {
  serve::SessionCache cache(2);
  EXPECT_THROW((void)cache.load("boundary 0 0 9\n"), std::runtime_error);
  EXPECT_THROW((void)cache.load("garbage directive\n"), std::runtime_error);
  // Parseable but violates placement rules (overlapping cells): the service
  // must refuse to build a session rather than route a broken problem.
  EXPECT_THROW(
      (void)cache.load("boundary 0 0 100 100\ncell a 10 10 50 50\n"
                       "cell b 20 20 60 60\n"),
      std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------- job queue

TEST(BoundedQueue, SaturationAndClose) {
  serve::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: admission fails fast
  EXPECT_EQ(q.size(), 2u);

  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));

  q.close();
  EXPECT_FALSE(q.try_push(4));  // closed: no admission
  EXPECT_EQ(q.pop(), 2);        // but queued jobs drain
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), std::nullopt);  // closed + drained
}

TEST(BoundedQueue, BlockingHandoff) {
  serve::BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(7));
  std::thread producer([&] { EXPECT_TRUE(q.push(8)); });  // blocks while full
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), 8);
  producer.join();
}

// ---------------------------------------------------------------- fair queue

/// Drains the whole queue (which must already be fully loaded) and returns
/// the dequeue order.
std::vector<int> drain_order(serve::FairQueue<int>& q) {
  std::vector<int> order;
  while (q.size() > 0) order.push_back(*q.pop());
  return order;
}

TEST(FairQueue, SaturationAndCloseMatchBoundedQueueSemantics) {
  serve::FairQueue<int> q(2);
  EXPECT_TRUE(q.try_push("a", 1));
  EXPECT_TRUE(q.try_push("b", 2));
  EXPECT_FALSE(q.try_push("c", 3));  // capacity is TOTAL, across shards
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_EQ(q.shards(), 2u);

  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push("a", 4));  // closed: no admission
  EXPECT_NE(q.pop(), std::nullopt);  // but queued jobs drain
  EXPECT_NE(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);  // closed + drained
  EXPECT_EQ(q.shards(), 0u);         // drained shards are retired
}

TEST(FairQueue, SingleKeyPreservesFifoOrder) {
  // One shard degenerates to the old bounded FIFO — the N=1 differential
  // at the queue level.
  serve::FairQueue<int> q(8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.try_push("only", int{i}));
  EXPECT_EQ(drain_order(q), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(FairQueue, DeficitRoundRobinBoundsNeighborBurst) {
  // Session "hot" has 5 queued jobs before "idle" submits one.  Under the
  // old global FIFO the idle job waits behind all five; under DRR it waits
  // behind exactly one (the ring serves each shard once per round).
  serve::FairQueue<int> q(16);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push("hot", 100 + i));
  ASSERT_TRUE(q.try_push("idle", 1));

  const std::vector<int> order = drain_order(q);
  EXPECT_EQ(order, (std::vector<int>{100, 1, 101, 102, 103, 104}));
  EXPECT_GT(q.fair_rounds(), 0u);
}

TEST(FairQueue, WeightsScaleServicePerRound) {
  // weight("hot") = 3: the hot shard drains three jobs per ring pass, the
  // idle shard one — proportional service, still per-key FIFO.
  serve::FairQueue<int> q(16);
  q.set_weight("hot", 3);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.try_push("hot", 100 + i));
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(q.try_push("idle", int{i}));
  EXPECT_EQ(drain_order(q),
            (std::vector<int>{100, 101, 102, 0, 103, 104, 105, 1}));
}

TEST(FairQueue, ShardStatsExposeSkew) {
  serve::FairQueue<int> q(16);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push("hot", int{i}));
  ASSERT_TRUE(q.try_push("idle", 9));

  const auto stats = q.shard_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].key, "hot");
  EXPECT_EQ(stats[0].depth, 4u);
  EXPECT_EQ(stats[0].enqueued, 4u);
  EXPECT_EQ(stats[0].served, 0u);
  EXPECT_EQ(stats[1].key, "idle");
  EXPECT_EQ(stats[1].depth, 1u);

  (void)q.pop();  // hot serves one
  const auto after = q.shard_stats();
  // The served shard rotated to the ring's back; idle now fronts.
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0].key, "idle");
  EXPECT_EQ(after[1].key, "hot");
  EXPECT_EQ(after[1].served, 1u);
  EXPECT_EQ(after[1].depth, 3u);
  EXPECT_GE(q.oldest_wait_us(), 0u);
}

TEST(RoutingService, HotSessionCannotStarveIdleNeighbor) {
  // The fairness differential at the service level: one worker, a 50-deep
  // burst on session A, then a single request on session B.  Weighted-fair
  // dispatch must answer B near the front (it waits behind at most one A
  // job per DRR round from the moment it queues); the retired global FIFO
  // would have answered it dead last.
  const std::string text_a = workload_text(9, 12, 7);
  const std::string text_b = workload_text(9, 12, 8);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  opts.queue_capacity = 128;
  serve::RoutingService service(opts);
  const auto session_a = service.load(text_a);
  const auto session_b = service.load(text_b);

  constexpr std::size_t kBurst = 50;
  std::mutex mu;
  std::vector<std::string> completions;
  std::condition_variable cv;
  const auto on_done = [&](const std::string& tag) {
    return [&, tag](serve::RouteResponse resp) {
      EXPECT_TRUE(resp.ok()) << resp.error;
      const std::lock_guard<std::mutex> lock(mu);
      completions.push_back(tag);
      cv.notify_all();
    };
  };
  for (std::size_t i = 0; i < kBurst; ++i) {
    serve::RouteRequest req;
    req.session_key = session_a->key;
    service.submit(std::move(req), on_done("A"));
  }
  serve::RouteRequest req;
  req.session_key = session_b->key;
  service.submit(std::move(req), on_done("B"));

  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return completions.size() == kBurst + 1; });
  const auto b_pos = static_cast<std::size_t>(
      std::find(completions.begin(), completions.end(), "B") -
      completions.begin());
  // The worker may legitimately drain a few A jobs before B is admitted,
  // but B must never sink to the tail the FIFO would have left it at.
  EXPECT_LT(b_pos, kBurst / 2) << "idle session starved behind hot burst";
  EXPECT_GT(service.snapshot().queue_fair_rounds, 0u);
}

// ------------------------------------------------------------ route service

TEST(RoutingService, MatchesDirectRouterOnCachedSession) {
  const std::string text = workload_text(9, 12, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult direct = route::NetlistRouter(lay).route_all();

  serve::RoutingService::Options opts;
  opts.workers = 2;
  serve::RoutingService service(opts);
  const auto session = service.load(text);

  serve::RouteRequest req;
  req.session_key = session->key;
  const serve::RouteResponse resp = service.route(std::move(req));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.result.total_wirelength, direct.total_wirelength);
  EXPECT_EQ(resp.result.routed, direct.routed);
  EXPECT_EQ(resp.result.failed, direct.failed);
  EXPECT_GE(resp.latency.count(), resp.queue_wait.count());
}

TEST(RoutingService, SequentialModeServedFromCachedSession) {
  // Sequential mode used to rebuild the ObstacleIndex and EscapeLineSet per
  // net, which made cached sessions useless for it.  With incremental
  // commit_route updates it starts from a *copy* of the session environment
  // and performs zero builds — while producing exactly the direct result.
  const std::string text = workload_text(9, 12, 7);
  const layout::Layout lay = io::read_layout_string(text);
  route::NetlistOptions seq;
  seq.mode = route::NetlistMode::kSequential;
  const route::NetlistResult direct = route::NetlistRouter(lay).route_all(seq);

  serve::RoutingService::Options opts;
  opts.workers = 2;
  serve::RoutingService service(opts);
  const auto session = service.load(text);
  const std::size_t builds = route::SearchEnvironment::build_count();

  serve::RouteRequest req;
  req.session_key = session->key;
  req.opts = seq;
  const serve::RouteResponse resp = service.route(std::move(req));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds)
      << "a cached session must serve sequential mode without env builds";
  EXPECT_EQ(resp.result.total_wirelength, direct.total_wirelength);
  EXPECT_EQ(resp.result.routed, direct.routed);
  EXPECT_EQ(resp.result.failed, direct.failed);
  ASSERT_EQ(resp.result.routes.size(), direct.routes.size());
  for (std::size_t i = 0; i < direct.routes.size(); ++i) {
    EXPECT_EQ(resp.result.routes[i].segments, direct.routes[i].segments)
        << "net " << i;
  }
}

TEST(RoutingService, ConcurrentRequestsShareOneSession) {
  const std::string text = workload_text(9, 12, 7);
  serve::RoutingService::Options opts;
  opts.workers = 4;
  opts.queue_capacity = 64;
  serve::RoutingService service(opts);
  const auto session = service.load(text);
  const std::size_t builds_after_load = route::SearchEnvironment::build_count();

  const geom::Cost expected =
      route::NetlistRouter(session->layout, session->env)
          .route_all()
          .total_wirelength;

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 4;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        serve::RouteRequest req;
        req.session_key = session->key;
        const serve::RouteResponse resp = service.route(std::move(req));
        if (!resp.ok() || resp.result.total_wirelength != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  // The reference route and all 32 concurrent requests reused the session's
  // environment: not one ObstacleIndex or EscapeLineSet was built after
  // load().
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds_after_load);
  EXPECT_EQ(service.snapshot().requests_ok, kClients * kPerClient);
}

TEST(RoutingService, UnknownSessionFailsFast) {
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  serve::RouteRequest req;
  req.session_key = "feedfacefeedface";
  const serve::RouteResponse resp = service.route(std::move(req));
  EXPECT_EQ(resp.status, serve::RouteStatus::kSessionNotFound);
  const serve::MetricsSnapshot snap = service.snapshot();
  EXPECT_EQ(snap.requests_not_found, 1u);
  EXPECT_EQ(snap.requests_errored, 0u);  // addressing mistake, not a failure
}

TEST(RoutingService, ExpiredDeadlineIsDroppedAtDequeue) {
  const std::string text = workload_text(9, 12, 7);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(text);

  serve::RouteRequest req;
  req.session_key = session->key;
  req.deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(1);  // already expired
  const serve::RouteResponse resp = service.route(std::move(req));
  EXPECT_EQ(resp.status, serve::RouteStatus::kExpired);
  EXPECT_EQ(service.snapshot().requests_expired, 1u);
}

TEST(RoutingService, CancelledRequestNeverRoutes) {
  const std::string text = workload_text(9, 12, 7);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(text);

  serve::RouteRequest req;
  req.session_key = session->key;
  req.cancel = std::make_shared<std::atomic<bool>>(true);
  const serve::RouteResponse resp = service.route(std::move(req));
  EXPECT_EQ(resp.status, serve::RouteStatus::kCancelled);
  EXPECT_EQ(service.snapshot().nets_routed, 0u);
}

// ------------------------------------------------------------------ protocol

/// Runs a scripted connection and returns everything the service wrote.
std::string run_protocol(const std::string& script,
                         std::size_t workers = 1) {
  serve::RoutingService::Options opts;
  opts.workers = workers;
  serve::RoutingService service(opts);
  std::istringstream in(script);
  std::ostringstream out;
  serve::serve_connection(service, in, out);
  return out.str();
}

/// Reads one framed response (status line + counted body) off \p in.
struct Frame {
  std::string status;
  std::string body;
};

Frame next_frame(std::istringstream& in) {
  Frame f;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, f.status)));
  std::istringstream is(f.status);
  std::string kw;
  std::size_t nbytes = 0;
  is >> kw;
  if (kw == "OK" && (is >> nbytes) && nbytes > 0) {
    f.body.resize(nbytes);
    in.read(f.body.data(), static_cast<std::streamsize>(nbytes));
  }
  return f;
}

TEST(Protocol, LoadRouteStatsQuitRoundTrip) {
  const std::string text(kTinyLayout);
  const std::string key = serve::SessionCache::content_key(text);
  const std::string script = "LOAD " + std::to_string(text.size()) + "\n" +
                             text + "LOAD " + std::to_string(text.size()) +
                             "\n" + text + "ROUTE " + key +
                             " threads=1\nSTATS\nQUIT\n";
  std::istringstream replies(run_protocol(script));

  const Frame load1 = next_frame(replies);
  EXPECT_NE(load1.status.find("OK 0 session=" + key), std::string::npos);
  EXPECT_NE(load1.status.find("cached=0"), std::string::npos);
  const Frame load2 = next_frame(replies);
  EXPECT_NE(load2.status.find("cached=1"), std::string::npos);

  const Frame route = next_frame(replies);
  ASSERT_EQ(route.status.rfind("OK ", 0), 0u) << route.status;
  EXPECT_NE(route.status.find("routed=1 failed=0"), std::string::npos);
  // The body is a parseable route dump that matches a direct route.
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult direct = route::NetlistRouter(lay).route_all();
  const route::NetlistResult parsed = io::read_routes_string(route.body, lay);
  EXPECT_EQ(parsed.total_wirelength, direct.total_wirelength);
  EXPECT_EQ(parsed.routed, direct.routed);

  const Frame stats = next_frame(replies);
  EXPECT_EQ(stats.status.rfind("OK ", 0), 0u);
  EXPECT_NE(stats.body.find("requests_ok 1"), std::string::npos);
  EXPECT_NE(stats.body.find("cache_hits"), std::string::npos);

  const Frame bye = next_frame(replies);
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(Protocol, MalformedFramesGetErrNotCrash) {
  const std::string text(kTinyLayout);
  // Bad *command lines* are recoverable: the stream position is still at a
  // line boundary, so the connection continues.
  const std::string script =
      "NONSENSE\n"                      // unknown command
      "ROUTE\n"                         // missing session key
      "ROUTE deadbeefdeadbeef\n"        // unknown session
      "ROUTE k mode=banana\n"           // bad option value
      "ROUTE k frobnicate=1\n"          // unknown option
      "ROUTE k threads\n"               // not key=value
      "LOAD " + std::to_string(text.size()) + "\n" + text +  // recovers
      "QUIT\n";
  std::istringstream replies(run_protocol(script));
  for (int i = 0; i < 6; ++i) {
    const Frame f = next_frame(replies);
    EXPECT_EQ(f.status.rfind("ERR ", 0), 0u) << "frame " << i << ": "
                                             << f.status;
  }
  // The connection survived six bad frames and still serves real ones.
  const Frame load = next_frame(replies);
  EXPECT_EQ(load.status.rfind("OK 0 session=", 0), 0u) << load.status;
  const Frame bye = next_frame(replies);
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(Protocol, UnframeableLoadDropsConnection) {
  // A LOAD whose byte count cannot be parsed leaves the body length — and
  // therefore the stream position — unknown; the connection must drop
  // instead of parsing body bytes as commands (a QUIT inside a layout
  // would otherwise kill a pipelined client's session).
  for (const char* bad : {"LOAD\n", "LOAD abc\n",
                          "LOAD 99999999999999999999\n"}) {
    const std::string out = run_protocol(std::string(bad) + "QUIT\n");
    EXPECT_EQ(out.rfind("ERR ", 0), 0u) << bad;
    EXPECT_EQ(out.find("OK 0 bye"), std::string::npos)
        << "connection continued after " << bad;
  }
  // An oversized but well-formed count keeps framing: the declared body is
  // skipped and the connection continues (here the body is absent, so the
  // skip hits EOF and the connection ends — without misparsing).
  const std::string out = run_protocol("LOAD 67108865\nQUIT\n");
  EXPECT_NE(out.find("larger than 64 MiB"), std::string::npos);
}

TEST(Protocol, TruncatedLoadBodyDropsConnection) {
  // 100 declared bytes, far fewer supplied: framing is unrecoverable.
  const std::string out = run_protocol("LOAD 100\nboundary 0 0 9 9\n");
  EXPECT_EQ(out.rfind("ERR ", 0), 0u);
  EXPECT_NE(out.find("truncated"), std::string::npos);
}

TEST(Protocol, OverlongCommandLineGetsErrAndRecovers) {
  // A peer that streams an enormous "line" must not buffer unbounded
  // memory; the overlong line is discarded to its LF and the connection
  // keeps serving.
  const std::string out = run_protocol(
      std::string(serve::kMaxCommandLine + 100, 'x') + "\nQUIT\n");
  EXPECT_EQ(out.rfind("ERR ", 0), 0u) << out.substr(0, 40);
  EXPECT_NE(out.find("command line exceeds"), std::string::npos);
  EXPECT_NE(out.find("OK 0 bye"), std::string::npos)
      << "connection must survive an overlong line";
}

TEST(Protocol, ErrEchoesAreClampedToPrintable) {
  // Untrusted tokens echo back in ERR reasons; terminal escapes and other
  // control bytes must never reach the client (or an operator's terminal).
  const std::string out = run_protocol("FROB\x1b[31m\x01\x02\nQUIT\n");
  EXPECT_EQ(out.rfind("ERR ", 0), 0u);
  for (const char c : out) {
    const unsigned char u = static_cast<unsigned char>(c);
    EXPECT_TRUE(u == '\n' || (u >= 0x20 && u < 0x7f))
        << "control byte 0x" << std::hex << static_cast<int>(u)
        << " leaked into a response";
  }
  // And very long reasons are truncated, not amplified.
  const std::string flood = run_protocol(
      "ROUTE k " + std::string(2000, 'y') + "=1\nQUIT\n");
  const std::size_t first_line_len = flood.find('\n');
  ASSERT_NE(first_line_len, std::string::npos);
  EXPECT_LE(first_line_len, 300u);
}

TEST(Protocol, RouteNetSubset) {
  const std::string text = workload_text(9, 12, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult reference = route::NetlistRouter(lay).route_all();
  ASSERT_GE(lay.nets().size(), 3u);
  const std::string& a = lay.nets()[2].name();
  const std::string& b = lay.nets()[0].name();
  const std::string key = serve::SessionCache::content_key(text);

  const std::string script =
      "LOAD " + std::to_string(text.size()) + "\n" + text +
      "ROUTE " + key + " nets=" + a + "," + b + "\n" +   // named subset
      "ROUTE " + key + " nets=" + a + "," + a + "\n" +   // duplicate: once
      "ROUTE " + key + " nets=bogus\n" +                 // unknown net
      "QUIT\n";
  std::istringstream replies(run_protocol(script));

  (void)next_frame(replies);  // LOAD
  const Frame subset = next_frame(replies);
  ASSERT_EQ(subset.status.rfind("OK ", 0), 0u) << subset.status;
  EXPECT_NE(subset.status.find("routed=2 failed=0"), std::string::npos);
  // The dump covers exactly the requested nets and reproduces the full
  // run's routes for them bit-for-bit.
  const route::NetlistResult parsed = io::read_routes_string(subset.body, lay);
  EXPECT_EQ(parsed.routed, 2u);
  EXPECT_EQ(parsed.routes[0].segments, reference.routes[0].segments);
  EXPECT_EQ(parsed.routes[2].segments, reference.routes[2].segments);
  EXPECT_EQ(subset.body.rfind("route " + a + " ", 0), 0u)
      << "dump order must follow the request list";

  const Frame dedup = next_frame(replies);
  EXPECT_NE(dedup.status.find("routed=1 "), std::string::npos)
      << "duplicate names must route once: " << dedup.status;

  const Frame unknown = next_frame(replies);
  EXPECT_EQ(unknown.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(unknown.status.find("unknown net 'bogus'"), std::string::npos);

  const Frame bye = next_frame(replies);
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(Protocol, ParseRouteCommand) {
  const serve::RouteCommand cmd = serve::parse_route_command(
      " abc123 mode=sequential threads=4 deadline_ms=250 sorted=0"
      " segments=0");
  EXPECT_EQ(cmd.session_key, "abc123");
  EXPECT_EQ(cmd.opts.mode, route::NetlistMode::kSequential);
  EXPECT_EQ(cmd.opts.threads, 4u);
  EXPECT_FALSE(cmd.opts.sorted_dispatch);
  EXPECT_FALSE(cmd.opts.steiner.connect_to_segments);
  ASSERT_TRUE(cmd.deadline.has_value());
  EXPECT_EQ(cmd.deadline->count(), 250);
  EXPECT_THROW((void)serve::parse_route_command(""), std::runtime_error);
  EXPECT_THROW((void)serve::parse_route_command("k deadline_ms=-1"),
               std::runtime_error);
}

TEST(Protocol, ParseRouteCommandNets) {
  const serve::RouteCommand cmd =
      serve::parse_route_command("key nets=clk,rst,d0");
  EXPECT_EQ(cmd.nets, (std::vector<std::string>{"clk", "rst", "d0"}));
  EXPECT_TRUE(serve::parse_route_command("key").nets.empty());
  // Empty items would silently route nothing — malformed.
  EXPECT_THROW((void)serve::parse_route_command("k nets=a,,b"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_route_command("k nets=a,"),
               std::runtime_error);
}

TEST(Protocol, ParseRerouteCommand) {
  const serve::RouteCommand cmd =
      serve::parse_reroute_command("key nets=clk,rst threads=2");
  EXPECT_EQ(cmd.session_key, "key");
  EXPECT_EQ(cmd.nets, (std::vector<std::string>{"clk", "rst"}));
  EXPECT_TRUE(cmd.reroute);
  EXPECT_EQ(cmd.opts.mode, route::NetlistMode::kSequential);
  EXPECT_EQ(cmd.opts.threads, 2u);
  // nets= is mandatory: an empty rip-up set would silently be a plain
  // route.  mode= is rejected either way — REROUTE is sequential by
  // definition, and a silently-ignored mode=independent would mislead.
  EXPECT_THROW((void)serve::parse_reroute_command("key"), std::runtime_error);
  EXPECT_THROW((void)serve::parse_reroute_command("key mode=independent"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_reroute_command("key mode=sequential"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_reroute_command("key nets=a,"),
               std::runtime_error);
  // ROUTE does not grow a reroute flag by accident.
  EXPECT_FALSE(serve::parse_route_command("key nets=a").reroute);
}

TEST(Protocol, RerouteRoundTrip) {
  // Blocking-path REROUTE end to end: the dump must be restricted to the
  // ripped nets and reproduce the rip-up driver bit-for-bit; the meta
  // totals cover the whole netlist (the remainder is part of the result).
  const std::string text = workload_text(9, 12, 7);
  const layout::Layout lay = io::read_layout_string(text);
  ASSERT_GE(lay.nets().size(), 4u);
  const std::string& a = lay.nets()[3].name();
  const std::string& b = lay.nets()[1].name();
  const std::string key = serve::SessionCache::content_key(text);

  route::NetlistOptions ropts;
  ropts.mode = route::NetlistMode::kSequential;
  ropts.reroute = {3, 1};
  const route::NetlistResult want =
      route::NetlistRouter(lay).route_all(ropts);
  const std::string want_dump =
      io::write_routes_string(lay, want, ropts.reroute);

  const std::string script =
      "LOAD " + std::to_string(text.size()) + "\n" + text +
      "REROUTE " + key + " nets=" + a + "," + b + "\n" +
      "REROUTE " + key + " nets=" + a + "," + a + "\n" +  // dedup: rip once
      "REROUTE " + key + "\n" +                           // missing nets=
      "REROUTE " + key + " nets=bogus\n" +                // unknown net
      "QUIT\n";
  std::istringstream replies(run_protocol(script));

  (void)next_frame(replies);  // LOAD
  const Frame reroute = next_frame(replies);
  ASSERT_EQ(reroute.status.rfind("OK ", 0), 0u) << reroute.status;
  EXPECT_NE(reroute.status.find(
                "routed=" + std::to_string(want.routed) + " failed=" +
                std::to_string(want.failed) + " wirelength=" +
                std::to_string(want.total_wirelength)),
            std::string::npos)
      << reroute.status;
  EXPECT_EQ(reroute.body, want_dump);
  EXPECT_EQ(reroute.body.rfind("route " + a + " ", 0), 0u)
      << "dump order must follow the rip-up list";

  const Frame dedup = next_frame(replies);
  ASSERT_EQ(dedup.status.rfind("OK ", 0), 0u) << dedup.status;
  const route::NetlistResult dedup_parsed =
      io::read_routes_string(dedup.body, lay);
  EXPECT_EQ(dedup_parsed.routed + dedup_parsed.failed, 1u)
      << "duplicate names must rip once";

  const Frame missing = next_frame(replies);
  EXPECT_EQ(missing.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(missing.status.find("REROUTE needs nets="), std::string::npos);

  const Frame unknown = next_frame(replies);
  EXPECT_EQ(unknown.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(unknown.status.find("unknown net 'bogus'"), std::string::npos);

  const Frame bye = next_frame(replies);
  EXPECT_EQ(bye.status, "OK 0 bye");
}

// ---------------------------------------------------------------- OPTIMIZE

TEST(Protocol, ParseOptimizeCommand) {
  const serve::RouteCommand cmd = serve::parse_optimize_command(
      " abc123 passes=4 budget_ms=250 deadline_ms=500 segments=0");
  EXPECT_EQ(cmd.session_key, "abc123");
  EXPECT_TRUE(cmd.optimize);
  EXPECT_FALSE(cmd.reroute);
  EXPECT_EQ(cmd.passes, 4u);
  EXPECT_EQ(cmd.budget.count(), 250);
  ASSERT_TRUE(cmd.deadline.has_value());
  EXPECT_EQ(cmd.deadline->count(), 500);
  EXPECT_FALSE(cmd.opts.steiner.connect_to_segments);
  EXPECT_EQ(cmd.opts.mode, route::NetlistMode::kSequential);

  EXPECT_THROW((void)serve::parse_optimize_command(""), std::runtime_error);
  EXPECT_THROW((void)serve::parse_optimize_command("k passes=0"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_optimize_command("k passes=1025"),
               std::runtime_error);
  // The engine is sequential whole-netlist by definition: mode=, nets=,
  // threads=, sorted= must be rejected, not silently ignored.
  for (const char* bad : {"k mode=independent", "k nets=a", "k threads=2",
                          "k sorted=1"}) {
    EXPECT_THROW((void)serve::parse_optimize_command(bad), std::runtime_error)
        << bad;
  }
  // ROUTE does not grow an optimize flag by accident.
  EXPECT_FALSE(serve::parse_route_command("key").optimize);
  EXPECT_EQ(serve::parse_route_command("key").passes, 0u);
}

TEST(Protocol, DeadlineAndBudgetCappedAt24Hours) {
  // deadline_ms used to feed parse_count's full unsigned range straight
  // into std::chrono::milliseconds (a *signed* rep): a huge value narrowed
  // to a negative duration, and `now + deadline` could overflow the clock
  // rep outright.  The cap answers ERR instead; exactly 24h still parses.
  const std::string max = std::to_string(serve::kMaxDeadlineMs);
  EXPECT_EQ(serve::parse_route_command("k deadline_ms=" + max)
                .deadline->count(),
            static_cast<long long>(serve::kMaxDeadlineMs));
  EXPECT_THROW((void)serve::parse_route_command("k deadline_ms=86400001"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_route_command(
                   "k deadline_ms=18446744073709551615"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_reroute_command(
                   "k nets=a deadline_ms=86400001"),
               std::runtime_error);
  EXPECT_EQ(serve::parse_optimize_command("k budget_ms=" + max).budget.count(),
            static_cast<long long>(serve::kMaxDeadlineMs));
  EXPECT_THROW((void)serve::parse_optimize_command("k budget_ms=86400001"),
               std::runtime_error);
  EXPECT_THROW((void)serve::parse_optimize_command("k deadline_ms=86400001"),
               std::runtime_error);

  // End to end on the blocking front-end: the oversized value answers ERR
  // and the connection keeps serving.
  const std::string out = run_protocol(
      "ROUTE k deadline_ms=18446744073709551615\nQUIT\n");
  EXPECT_EQ(out.rfind("ERR ", 0), 0u) << out.substr(0, 60);
  EXPECT_NE(out.find("86400000"), std::string::npos);
  EXPECT_NE(out.find("OK 0 bye"), std::string::npos);
}

/// One parsed `PASS <i> wirelength=<w> overflow=<o>` progress line.
struct PassLine {
  std::size_t pass = 0;
  long long wirelength = 0;
  long long overflow = 0;
};

/// Reads an OPTIMIZE reply: any number of PASS progress lines, then the
/// terminating OK/ERR frame.  (next_frame alone would misparse the PASS
/// lines as status lines.)
std::pair<std::vector<PassLine>, Frame> next_optimize_reply(
    std::istringstream& in) {
  std::vector<PassLine> passes;
  std::string line;
  for (;;) {
    const std::istringstream::pos_type pos = in.tellg();
    if (!std::getline(in, line)) {
      ADD_FAILURE() << "stream ended inside an OPTIMIZE reply";
      return {passes, {}};
    }
    if (line.rfind("PASS ", 0) != 0) {
      in.seekg(pos);
      return {passes, next_frame(in)};
    }
    PassLine p;
    EXPECT_EQ(std::sscanf(line.c_str(), "PASS %zu wirelength=%lld overflow=%lld",
                          &p.pass, &p.wirelength, &p.overflow),
              3)
        << line;
    passes.push_back(p);
  }
}

TEST(Protocol, OptimizeRoundTripStreamsPasses) {
  const std::string text = workload_text(12, 24, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const route::OptimizeReport direct = route::Optimizer(lay).run();
  const std::string key = serve::SessionCache::content_key(text);

  const std::string script =
      "LOAD " + std::to_string(text.size()) + "\n" + text +
      "OPTIMIZE " + key + "\n" +
      "OPTIMIZE deadbeefdeadbeef\n" +   // unknown session
      "OPTIMIZE " + key + " frob=1\n" + // unknown option
      "QUIT\n";
  std::istringstream replies(run_protocol(script));

  (void)next_frame(replies);  // LOAD
  const auto [passes, frame] = next_optimize_reply(replies);
  ASSERT_EQ(frame.status.rfind("OK ", 0), 0u) << frame.status;

  // One PASS line per recorded pass, numbered from 1, and — the protocol's
  // promise — non-increasing in both wirelength and overflow.
  ASSERT_EQ(passes.size(), direct.passes.size());
  for (std::size_t i = 0; i < passes.size(); ++i) {
    EXPECT_EQ(passes[i].pass, i + 1);
    EXPECT_EQ(passes[i].wirelength, direct.passes[i].wirelength);
    EXPECT_EQ(static_cast<std::size_t>(passes[i].overflow),
              direct.passes[i].overflow);
    if (i > 0) {
      EXPECT_LE(passes[i].wirelength, passes[i - 1].wirelength);
      EXPECT_LE(passes[i].overflow, passes[i - 1].overflow);
    }
  }

  // The meta summarizes the run; the body is the full final routing and
  // reproduces the direct optimizer bit-for-bit.
  EXPECT_NE(frame.status.find(
                "passes=" + std::to_string(direct.passes.size()) + " routed=" +
                std::to_string(direct.result.routed) + " failed=" +
                std::to_string(direct.result.failed) + " wirelength=" +
                std::to_string(direct.result.total_wirelength) + " overflow=" +
                std::to_string(direct.final_overflow())),
            std::string::npos)
      << frame.status;
  const route::NetlistResult parsed = io::read_routes_string(frame.body, lay);
  EXPECT_EQ(parsed.total_wirelength, direct.result.total_wirelength);
  EXPECT_EQ(parsed.routed, direct.result.routed);

  const auto [no_passes, not_found] = next_optimize_reply(replies);
  EXPECT_TRUE(no_passes.empty());
  EXPECT_EQ(not_found.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(not_found.status.find("session_not_found"), std::string::npos);

  const auto [no_passes2, bad_opt] = next_optimize_reply(replies);
  EXPECT_TRUE(no_passes2.empty());
  EXPECT_EQ(bad_opt.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(bad_opt.status.find("unknown option"), std::string::npos);

  const Frame bye = next_frame(replies);
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(RoutingService, OptimizeRequestCountsMetrics) {
  const std::string text = workload_text(12, 24, 7);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(text);

  serve::RouteRequest req;
  req.session_key = session->key;
  req.optimize = true;
  const serve::RouteResponse resp = service.route(std::move(req));
  ASSERT_TRUE(resp.ok());
  ASSERT_FALSE(resp.passes.empty());
  EXPECT_EQ(resp.result.total_wirelength, resp.passes.back().wirelength);

  const serve::MetricsSnapshot snap = service.snapshot();
  EXPECT_EQ(snap.optimizes_ok, 1u);
  EXPECT_EQ(snap.optimize_passes, resp.passes.size() - 1);
  EXPECT_NE(snap.to_text().find("optimizes_ok 1"), std::string::npos);
}

// ------------------------------------------------------------ observability

TEST(Histogram, BucketBoundaries) {
  // bucket 0 = {0}; bucket k >= 1 covers [2^(k-1), 2^k - 1].
  EXPECT_EQ(serve::Histogram::bucket_index(0), 0u);
  EXPECT_EQ(serve::Histogram::bucket_index(1), 1u);
  EXPECT_EQ(serve::Histogram::bucket_index(2), 2u);
  EXPECT_EQ(serve::Histogram::bucket_index(3), 2u);
  EXPECT_EQ(serve::Histogram::bucket_index(4), 3u);
  EXPECT_EQ(serve::Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(serve::Histogram::bucket_index(1024), 11u);
  EXPECT_EQ(serve::Histogram::bucket_index(~std::uint64_t{0}), 64u);
  EXPECT_EQ(serve::Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(serve::Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(serve::Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(serve::Histogram::bucket_upper(11), 2047u);
  EXPECT_EQ(serve::Histogram::bucket_upper(64), ~std::uint64_t{0});
  // Every value lands in the bucket whose range contains it.
  for (std::uint64_t v : {5ull, 63ull, 64ull, 999ull, 1ull << 40}) {
    const std::size_t b = serve::Histogram::bucket_index(v);
    EXPECT_LE(v, serve::Histogram::bucket_upper(b)) << v;
    if (b > 1) {
      EXPECT_GT(v, serve::Histogram::bucket_upper(b - 1)) << v;
    }
  }
}

TEST(Histogram, RecordAndPercentiles) {
  serve::Histogram h;
  EXPECT_EQ(h.snapshot().percentile(50), 0u);  // empty -> 0
  // 90 fast samples (~100us) + 10 slow (~100ms): p50 reports the fast
  // bucket's upper bound, p99 the slow one's.
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(100'000);
  EXPECT_EQ(h.total_recorded(), 100u);
  const serve::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.percentile(50),
            serve::Histogram::bucket_upper(serve::Histogram::bucket_index(100)));
  EXPECT_EQ(s.percentile(99), serve::Histogram::bucket_upper(
                                  serve::Histogram::bucket_index(100'000)));
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 90u * 100u + 10u * 100'000u);
  // The record path must stay lock-free — that is the whole point of
  // replacing the mutexed window on the hot path.
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free);
}

TEST(Histogram, AgreesWithLatencyWindowWithinOneBucket) {
  // The acceptance criterion: on a uniform workload the log2 histogram's
  // p50/p95/p99 land within one bucket of the exact sliding window's.
  serve::Histogram hist;
  serve::LatencyWindow window(4096);
  std::uint64_t x = 0x243f6a8885a308d3ull;  // deterministic xorshift
  for (int i = 0; i < 4096; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t sample = 200 + x % 1800;  // uniform-ish 200..1999us
    hist.record(sample);
    window.record(sample);
  }
  const serve::Histogram::Snapshot snap = hist.snapshot();
  const std::vector<std::uint64_t> exact = window.percentiles({50, 95, 99});
  const double qs[] = {50, 95, 99};
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t hist_p = snap.percentile(qs[i]);
    const auto hist_bucket = serve::Histogram::bucket_index(hist_p);
    const auto exact_bucket = serve::Histogram::bucket_index(exact[i]);
    EXPECT_LE(hist_bucket > exact_bucket ? hist_bucket - exact_bucket
                                         : exact_bucket - hist_bucket,
              1u)
        << "q=" << qs[i] << " hist=" << hist_p << " exact=" << exact[i];
  }
}

TEST(LatencyWindow, PercentilesFromOneSnapshotMatchSingleQueries) {
  serve::LatencyWindow w(128);
  for (std::uint64_t v = 1; v <= 100; ++v) w.record(v);
  const std::vector<std::uint64_t> multi = w.percentiles({0, 50, 95, 99, 100});
  EXPECT_EQ(multi[0], w.percentile(0));
  EXPECT_EQ(multi[1], w.percentile(50));
  EXPECT_EQ(multi[2], w.percentile(95));
  EXPECT_EQ(multi[3], w.percentile(99));
  EXPECT_EQ(multi[4], w.percentile(100));
  EXPECT_EQ(multi[1], 50u);   // nearest-rank on 1..100
  EXPECT_EQ(multi[4], 100u);
}

TEST(SlowRequestRing, ThresholdAndTopN) {
  serve::SlowRequestRing ring(/*capacity=*/3, /*threshold_us=*/1000);
  const auto rec = [](std::uint64_t id, std::uint64_t total) {
    serve::SlowRecord r;
    r.id = id;
    r.verb = serve::VerbKind::kRoute;
    r.trace.total_us = total;
    return r;
  };
  ring.offer(rec(1, 500));  // below threshold: dropped
  ring.offer(rec(2, 1500));
  ring.offer(rec(3, 3000));
  ring.offer(rec(4, 2000));
  ring.offer(rec(5, 1200));  // ring full; displaces nothing (min is 1500)
  ring.offer(rec(6, 9000));  // displaces the min (1500)
  const std::vector<serve::SlowRecord> top = ring.top(10);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 6u);  // slowest first
  EXPECT_EQ(top[1].id, 3u);
  EXPECT_EQ(top[2].id, 4u);
  EXPECT_EQ(ring.top(1).size(), 1u);
  EXPECT_EQ(ring.top(1)[0].id, 6u);
}

TEST(RoutingService, TraceSpansMonotoneAndSumToTotal) {
  const std::string text = workload_text(9, 12, 7);
  serve::RoutingService::Options opts;
  opts.workers = 2;
  serve::RoutingService service(opts);
  const auto session = service.load(text);

  serve::RouteRequest req;
  req.session_key = session->key;
  req.trace = true;
  req.received = std::chrono::steady_clock::now();
  const serve::RouteResponse resp = service.route(std::move(req));
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.traced);
  const serve::RequestTrace& t = resp.trace;
  // Offsets from one submission origin must be monotone...
  EXPECT_LE(t.enqueue_us, t.dequeue_us);
  EXPECT_LE(t.dequeue_us, t.env_us);
  EXPECT_LE(t.env_us, t.exec_us);
  EXPECT_LE(t.exec_us, t.total_us);
  // ...and the rendered deltas telescope to exactly the reported latency.
  EXPECT_EQ(t.total_us, static_cast<std::uint64_t>(resp.latency.count()));
  const std::string meta = t.render_meta();
  EXPECT_NE(meta.find("span_admit_us="), std::string::npos);
  EXPECT_NE(meta.find("span_parse_us="), std::string::npos);

  // Fail-fast paths skip worker stamps; the clamp must still produce a
  // monotone (zero-width) breakdown.
  serve::RouteRequest missing;
  missing.session_key = "feedfacefeedface";
  missing.trace = true;
  const serve::RouteResponse fail = service.route(std::move(missing));
  EXPECT_EQ(fail.status, serve::RouteStatus::kSessionNotFound);
  EXPECT_LE(fail.trace.enqueue_us, fail.trace.dequeue_us);
  EXPECT_LE(fail.trace.dequeue_us, fail.trace.env_us);
  EXPECT_LE(fail.trace.env_us, fail.trace.exec_us);
  EXPECT_LE(fail.trace.exec_us, fail.trace.total_us);
}

/// Pulls `<key>=<number>` out of a status line; fails the test if absent.
std::uint64_t meta_u64(const std::string& status, const std::string& key) {
  const std::size_t pos = status.find(" " + key + "=");
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << status;
  if (pos == std::string::npos) return 0;
  return std::stoull(status.substr(pos + key.size() + 2));
}

TEST(Protocol, TraceKnobEchoesSpansThatSumToTotal) {
  const std::string text(kTinyLayout);
  const std::string key = serve::SessionCache::content_key(text);
  const std::string script = "LOAD " + std::to_string(text.size()) + "\n" +
                             text + "ROUTE " + key + " trace=1\n" + "ROUTE " +
                             key + "\n" + "ROUTE " + key + " trace=2\nQUIT\n";
  std::istringstream replies(run_protocol(script));
  (void)next_frame(replies);  // LOAD

  const Frame traced = next_frame(replies);
  ASSERT_EQ(traced.status.rfind("OK ", 0), 0u) << traced.status;
  const std::uint64_t total = meta_u64(traced.status, "total_us");
  const std::uint64_t sum = meta_u64(traced.status, "span_admit_us") +
                            meta_u64(traced.status, "span_queue_us") +
                            meta_u64(traced.status, "span_env_us") +
                            meta_u64(traced.status, "span_exec_us") +
                            meta_u64(traced.status, "span_finish_us");
  EXPECT_EQ(sum, total) << traced.status;
  EXPECT_NE(traced.status.find("span_parse_us="), std::string::npos);

  // trace=0/absent: no span keys in the meta.
  const Frame untraced = next_frame(replies);
  ASSERT_EQ(untraced.status.rfind("OK ", 0), 0u);
  EXPECT_EQ(untraced.status.find("span_"), std::string::npos);

  // trace= is a strict bool.
  const Frame bad = next_frame(replies);
  EXPECT_EQ(bad.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(bad.status.find("trace must be 0 or 1"), std::string::npos);
}

TEST(Protocol, TraceVerbDumpsSlowestRequests) {
  const std::string text(kTinyLayout);
  const std::string key = serve::SessionCache::content_key(text);
  std::string script = "LOAD " + std::to_string(text.size()) + "\n" + text;
  for (int i = 0; i < 3; ++i) script += "ROUTE " + key + "\n";
  script += "TRACE n=2\nTRACE\nTRACE n=0\nTRACE n=257\nTRACE frob=1\nQUIT\n";
  std::istringstream replies(run_protocol(script));
  (void)next_frame(replies);  // LOAD
  for (int i = 0; i < 3; ++i) (void)next_frame(replies);

  const Frame two = next_frame(replies);
  ASSERT_EQ(two.status.rfind("OK ", 0), 0u) << two.status;
  EXPECT_EQ(meta_u64(two.status, "count"), 2u);
  EXPECT_NE(two.status.find("threshold_ms=0"), std::string::npos);
  // One line per record, slowest first, each with the span fields.
  std::istringstream body(two.body);
  std::string line;
  std::uint64_t prev = ~std::uint64_t{0};
  int lines = 0;
  while (std::getline(body, line)) {
    ASSERT_EQ(line.rfind("trace ", 0), 0u) << line;
    EXPECT_NE(line.find("verb=route"), std::string::npos) << line;
    EXPECT_NE(line.find("status=ok"), std::string::npos) << line;
    const std::uint64_t total = meta_u64(line, "total_us");
    EXPECT_LE(total, prev) << "records must be sorted slowest-first";
    prev = total;
    ++lines;
  }
  EXPECT_EQ(lines, 2);

  const Frame all = next_frame(replies);
  ASSERT_EQ(all.status.rfind("OK ", 0), 0u);
  EXPECT_EQ(meta_u64(all.status, "count"), 3u);  // default n=32 >= 3 records

  for (const char* what : {"n=0", "n=257", "frob"}) {
    const Frame bad = next_frame(replies);
    EXPECT_EQ(bad.status.rfind("ERR ", 0), 0u) << what << ": " << bad.status;
  }
  EXPECT_EQ(next_frame(replies).status, "OK 0 bye");
}

TEST(Protocol, StatsCarriesVerbShardsUptimeAndVersion) {
  const std::string text(kTinyLayout);
  const std::string key = serve::SessionCache::content_key(text);
  const std::string script = "LOAD " + std::to_string(text.size()) + "\n" +
                             text + "ROUTE " + key + "\nSTATS\nSTATS\n"
                             "HELLO\nQUIT\n";
  std::istringstream replies(run_protocol(script));
  (void)next_frame(replies);  // LOAD
  (void)next_frame(replies);  // ROUTE
  (void)next_frame(replies);  // first STATS warms the stats shard
  const Frame stats = next_frame(replies);
  EXPECT_NE(stats.body.find("verb_route_count 1"), std::string::npos);
  EXPECT_NE(stats.body.find("verb_optimize_count 0"), std::string::npos);
  // The observer observes itself: the first STATS render was recorded into
  // the stats shard before this one rendered.
  EXPECT_NE(stats.body.find("verb_stats_count 1"), std::string::npos);
  EXPECT_NE(stats.body.find("uptime_s "), std::string::npos);
  EXPECT_NE(stats.body.find("protocol_version 2"), std::string::npos);
  // ROUTE's latency shows up in both the global histogram and its shard.
  EXPECT_NE(stats.body.find("latency_p50_us "), std::string::npos);
  EXPECT_NE(stats.body.find("verb_route_p50_us "), std::string::npos);

  const Frame hello = next_frame(replies);
  EXPECT_NE(hello.status.find("uptime_s="), std::string::npos);
  EXPECT_NE(hello.body.find("verb TRACE args=0 knobs=n"), std::string::npos);
  EXPECT_NE(hello.body.find("trace"), std::string::npos);
}

TEST(RoutingService, CounterConservationUnderConcurrentMixedBurst) {
  // Every submission must land in exactly one outcome counter:
  // submitted == ok + rejected + expired + cancelled + not_found + errored.
  // The burst mixes all the paths: routable requests, unknown sessions,
  // pre-expired deadlines, pre-cancelled tokens (the disconnect path),
  // unknown net names (the admission ERR path), and enough pressure on a
  // tiny queue to draw rejections.
  const std::string text = workload_text(9, 12, 7);
  serve::RoutingService::Options opts;
  opts.workers = 2;
  opts.queue_capacity = 2;  // small: saturation produces kRejected
  serve::RoutingService service(opts);
  const auto session = service.load(text);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 12;
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        serve::RouteRequest req;
        switch ((c + i) % 5) {
          case 0:  // ok (or rejected under saturation)
            req.session_key = session->key;
            break;
          case 1:  // not_found
            req.session_key = "feedfacefeedface";
            break;
          case 2:  // expired at dequeue
            req.session_key = session->key;
            req.deadline = std::chrono::steady_clock::now() -
                           std::chrono::milliseconds(1);
            break;
          case 3:  // cancelled (disconnect): token pre-flipped
            req.session_key = session->key;
            req.cancel = std::make_shared<std::atomic<bool>>(true);
            break;
          case 4:  // errored at admission: unknown net
            req.session_key = session->key;
            req.net_names = {"no_such_net"};
            break;
        }
        (void)service.route(std::move(req));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  const serve::MetricsSnapshot snap = service.snapshot();
  EXPECT_EQ(snap.requests_submitted, kThreads * kPerThread);
  EXPECT_EQ(snap.requests_submitted,
            snap.requests_ok + snap.requests_rejected + snap.requests_expired +
                snap.requests_cancelled + snap.requests_not_found +
                snap.requests_errored)
      << "ok=" << snap.requests_ok << " rej=" << snap.requests_rejected
      << " exp=" << snap.requests_expired << " can=" << snap.requests_cancelled
      << " nf=" << snap.requests_not_found << " err=" << snap.requests_errored;
  // Each exercised bucket actually fired.
  EXPECT_GE(snap.requests_not_found, 1u);
  EXPECT_GE(snap.requests_expired, 1u);
  EXPECT_GE(snap.requests_cancelled, 1u);
  EXPECT_GE(snap.requests_errored, 1u);
  EXPECT_GE(snap.requests_ok, 1u);
}

}  // namespace
