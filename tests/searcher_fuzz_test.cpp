// Randomized cross-validation of the generic search engine against a
// textbook reference Dijkstra on random weighted digraphs, plus consistency
// properties between strategies.

#include <gtest/gtest.h>

#include <queue>
#include <random>
#include <vector>

#include "fuzz_env.hpp"
#include "search/iterative.hpp"
#include "search/searcher.hpp"

namespace {

using namespace gcr;
using search::SearchOptions;
using search::Strategy;
using search::Successor;

/// Random digraph space over integer states 0..n-1.
struct RandomGraph {
  using State = int;

  std::vector<std::vector<Successor<int>>> adj;
  std::vector<geom::Cost> h;  // admissible heuristic (computed from dists)
  int goal = 0;

  void successors(const State& s, std::vector<Successor<State>>& out) const {
    out = adj[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] geom::Cost heuristic(const State& s) const {
    return h.empty() ? 0 : h[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] bool is_goal(const State& s) const { return s == goal; }
};

/// Reference: plain Dijkstra from `start`, distance to every node.
std::vector<geom::Cost> dijkstra_reference(const RandomGraph& g, int start) {
  std::vector<geom::Cost> dist(g.adj.size(), geom::kCostInf);
  using Entry = std::pair<geom::Cost, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[static_cast<std::size_t>(start)] = 0;
  pq.push({0, start});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& e : g.adj[static_cast<std::size_t>(u)]) {
      if (d + e.cost < dist[static_cast<std::size_t>(e.state)]) {
        dist[static_cast<std::size_t>(e.state)] = d + e.cost;
        pq.push({d + e.cost, e.state});
      }
    }
  }
  return dist;
}

RandomGraph make_graph(std::uint64_t seed, int n, int out_degree,
                       geom::Cost max_w) {
  RandomGraph g;
  g.adj.resize(static_cast<std::size_t>(n));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> node(0, n - 1);
  std::uniform_int_distribution<geom::Cost> w(0, max_w);
  for (int u = 0; u < n; ++u) {
    for (int k = 0; k < out_degree; ++k) {
      g.adj[static_cast<std::size_t>(u)].push_back({node(rng), w(rng)});
    }
  }
  g.goal = node(rng);
  return g;
}

class SearcherFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SearcherFuzz, BestFirstMatchesReferenceDijkstra) {
  RandomGraph g = make_graph(GetParam(), 60, 3, 9);
  const auto dist = dijkstra_reference(g, 0);
  const auto r = search::find_path(
      g, 0, SearchOptions{.strategy = Strategy::kBestFirst});
  const geom::Cost expected = dist[static_cast<std::size_t>(g.goal)];
  if (expected >= geom::kCostInf) {
    EXPECT_FALSE(r.found);
  } else {
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.cost, expected) << "seed " << GetParam();
  }
}

TEST_P(SearcherFuzz, AStarWithAdmissibleHMatchesDijkstra) {
  RandomGraph g = make_graph(GetParam() + 1000, 60, 3, 9);
  // Admissible h: exact distance-to-goal on the reversed graph, scaled down.
  RandomGraph rev = g;
  for (auto& v : rev.adj) v.clear();
  for (int u = 0; u < 60; ++u) {
    for (const auto& e : g.adj[static_cast<std::size_t>(u)]) {
      rev.adj[static_cast<std::size_t>(e.state)].push_back({u, e.cost});
    }
  }
  const auto to_goal = dijkstra_reference(rev, g.goal);
  g.h.resize(60);
  for (int u = 0; u < 60; ++u) {
    const geom::Cost d = to_goal[static_cast<std::size_t>(u)];
    g.h[static_cast<std::size_t>(u)] = d >= geom::kCostInf ? 0 : d / 2;
  }
  const auto dist = dijkstra_reference(g, 0);
  const auto r =
      search::find_path(g, 0, SearchOptions{.strategy = Strategy::kAStar});
  const geom::Cost expected = dist[static_cast<std::size_t>(g.goal)];
  if (expected >= geom::kCostInf) {
    EXPECT_FALSE(r.found);
  } else {
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.cost, expected) << "seed " << GetParam();
  }
}

TEST_P(SearcherFuzz, ExhaustiveMatchesBestFirst) {
  RandomGraph g = make_graph(GetParam() + 2000, 40, 2, 9);
  const auto a = search::find_path(
      g, 0, SearchOptions{.strategy = Strategy::kBestFirst});
  const auto b = search::find_path(
      g, 0, SearchOptions{.strategy = Strategy::kExhaustive});
  EXPECT_EQ(a.found, b.found);
  if (a.found) {
    EXPECT_EQ(a.cost, b.cost);
  }
}

TEST_P(SearcherFuzz, PathCostsAreSelfConsistent) {
  RandomGraph g = make_graph(GetParam() + 3000, 50, 3, 9);
  for (const Strategy s :
       {Strategy::kBestFirst, Strategy::kAStar, Strategy::kBreadthFirst,
        Strategy::kDepthFirst}) {
    SearchOptions opts;
    opts.strategy = s;
    opts.max_expansions = 100000;
    const auto r = search::find_path(g, 0, opts);
    if (!r.found) continue;
    // Recompute the path cost edge by edge; it must equal the reported cost.
    geom::Cost total = 0;
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      geom::Cost best_edge = geom::kCostInf;
      for (const auto& e : g.adj[static_cast<std::size_t>(r.path[i])]) {
        if (e.state == r.path[i + 1]) best_edge = std::min(best_edge, e.cost);
      }
      ASSERT_LT(best_edge, geom::kCostInf) << "path uses a non-edge";
      total += best_edge;
    }
    // Blind strategies may report a cost using a specific (possibly more
    // expensive) parallel edge; the recomputed minimum is a lower bound.
    EXPECT_LE(total, r.cost) << to_string(s);
  }
}

TEST_P(SearcherFuzz, IdaStarMatchesDijkstraOnDags) {
  // Layered DAG (no cycles) keeps IDA*'s on-path cycle check cheap.
  std::mt19937_64 rng(GetParam() + 4000);
  RandomGraph g;
  const int layers = 8, width = 5;
  const int n = layers * width;
  g.adj.resize(static_cast<std::size_t>(n));
  std::uniform_int_distribution<geom::Cost> w(1, 9);
  std::uniform_int_distribution<int> pick(0, width - 1);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int i = 0; i < width; ++i) {
      const int u = l * width + i;
      for (int k = 0; k < 2; ++k) {
        g.adj[static_cast<std::size_t>(u)].push_back(
            {(l + 1) * width + pick(rng), w(rng)});
      }
    }
  }
  g.goal = (layers - 1) * width + pick(rng);
  const auto dist = dijkstra_reference(g, 0);
  const geom::Cost expected = dist[static_cast<std::size_t>(g.goal)];
  const auto r = search::ida_star(g, 0);
  if (expected >= geom::kCostInf) {
    EXPECT_FALSE(r.found);
  } else {
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.cost, expected) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SearcherFuzz,
    ::testing::ValuesIn(gcr::test::fuzz_seeds(7, 7, 8)));

}  // namespace
