// Tests for the iterated rip-up-and-reroute engine (core/optimize): the
// monotone convergence contract (wirelength and overflow never increase,
// pass over pass), degenerate-net scoring, budget/deadline/cancel behavior
// at pass boundaries, progress streaming, and independent verification of
// every post-optimize layout.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "congestion/two_pass.hpp"
#include "core/netlist_router.hpp"
#include "core/optimize.hpp"
#include "core/search_environment.hpp"
#include "io/text_format.hpp"
#include "serve/layout_session.hpp"
#include "fuzz_env.hpp"
#include "verify/route_verifier.hpp"
#include "workload/netgen.hpp"

namespace {

using namespace gcr;

// Dense enough that sequential pass 1 leaves detours and passage overflow
// for the optimizer to recover — the engine's reason to exist.
layout::Layout congested_workload(std::uint64_t seed) {
  return workload::standard_workload(12, 360, 24, seed);
}

class OptimizeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizeFuzz, ConvergesMonotonicallyAndVerifies) {
  const layout::Layout lay = congested_workload(GetParam());
  const route::Optimizer opt(lay);
  const route::OptimizeReport report = opt.run();

  ASSERT_FALSE(report.passes.empty());
  EXPECT_EQ(report.passes.front().pass, 1u);
  EXPECT_FALSE(report.cancelled);

  // The contract: recorded wirelength and overflow are non-increasing down
  // the pass list — a regressed pass must have been rolled back, not
  // recorded.
  for (std::size_t i = 1; i < report.passes.size(); ++i) {
    const auto& prev = report.passes[i - 1];
    const auto& cur = report.passes[i];
    EXPECT_EQ(cur.pass, prev.pass + 1);
    EXPECT_LE(cur.wirelength, prev.wirelength) << "pass " << cur.pass;
    EXPECT_LE(cur.overflow, prev.overflow) << "pass " << cur.pass;
    // Optimization passes never un-route or recover nets.
    EXPECT_EQ(cur.routed, prev.routed);
    EXPECT_EQ(cur.failed, prev.failed);
  }

  // The final result is what the last pass measured.
  const auto& last = report.passes.back();
  EXPECT_EQ(report.result.total_wirelength, last.wirelength);
  EXPECT_EQ(report.result.routed, last.routed);
  EXPECT_EQ(report.result.failed, last.failed);
  EXPECT_EQ(report.final_overflow(), last.overflow);

  // The recorded overflow is the real congestion-map overflow of the final
  // routing, not a stale intermediate.
  const congestion::CongestionMap map =
      congestion::build_map(lay, report.result, {});
  EXPECT_EQ(map.total_overflow(), last.overflow);

  // Every post-optimize layout must pass the independent verifier: legal
  // geometry, connected trees, honest wirelength accounting.
  verify::VerifyOptions vopts;
  vopts.require_all_routed = false;
  const auto violations = verify::verify_routes(lay, report.result, vopts);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? ""
                             : std::string(to_string(violations[0].kind)) +
                                   " " + violations[0].detail);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeFuzz,
                         ::testing::ValuesIn(test::fuzz_seeds(101, 17, 6)));

TEST(Optimize, MeasurablyImprovesOverPassOne) {
  // The acceptance bar: across a congested corpus, OPTIMIZE must deliver a
  // strict aggregate reduction in both total wirelength and total passage
  // overflow relative to its own pass 1 (which equals the plain sequential
  // route).  Per-seed improvement is not guaranteed — some seeds route
  // clean on the first try — but a quality engine that never improves
  // anything is dead weight, and this test is what notices.
  // Fixed seeds, not the soak-scaled fuzz list: the bar is a strict
  // aggregate inequality over a corpus tuned to be congested (dense nets,
  // coarse passage pitch), and it must not float with GCR_FUZZ_ITERS.
  geom::Cost wl_before = 0, wl_after = 0;
  std::size_t of_before = 0, of_after = 0;
  for (const std::uint64_t seed : {101u, 118u, 135u, 152u, 169u, 186u}) {
    const layout::Layout lay = workload::standard_workload(12, 200, 32, seed);
    route::OptimizeOptions oopts;
    oopts.passages.wire_pitch = 12;
    const route::OptimizeReport report = route::Optimizer(lay).run(oopts);
    ASSERT_FALSE(report.passes.empty());
    wl_before += report.passes.front().wirelength;
    of_before += report.passes.front().overflow;
    wl_after += report.passes.back().wirelength;
    of_after += report.passes.back().overflow;
  }
  EXPECT_LT(wl_after, wl_before);
  EXPECT_LT(of_after, of_before);
}

TEST(Optimize, PassOneMatchesSequentialRouter) {
  // Pass 1 is the plain sequential route — bit-identical, so a client that
  // asks for OPTIMIZE with an exhausted budget loses nothing over ROUTE.
  const layout::Layout lay = congested_workload(7);
  route::NetlistOptions seq;
  seq.mode = route::NetlistMode::kSequential;
  const route::NetlistResult direct =
      route::NetlistRouter(lay).route_all(seq);

  route::OptimizeOptions oopts;
  oopts.deadline = std::chrono::steady_clock::now();  // already expired
  const route::OptimizeReport report = route::Optimizer(lay).run(oopts);
  ASSERT_EQ(report.passes.size(), 1u);  // deadline stops before pass 2
  EXPECT_FALSE(report.cancelled);
  EXPECT_EQ(report.result.total_wirelength, direct.total_wirelength);
  EXPECT_EQ(report.result.routed, direct.routed);
  ASSERT_EQ(report.result.routes.size(), direct.routes.size());
  for (std::size_t i = 0; i < direct.routes.size(); ++i) {
    EXPECT_EQ(report.result.routes[i].segments, direct.routes[i].segments)
        << "net " << i;
  }
}

TEST(Optimize, DetourRatioDefinedForDegenerateNets) {
  // A net whose terminals are coincident has a zero Manhattan lower bound;
  // its detour ratio is *defined as* 1.0 — the old score divided by zero
  // here, which is the bug this pins down.
  constexpr const char* kDegenerate = R"(boundary 0 0 100 100
minsep 4
cell alu 10 10 30 30
cell rom 50 50 80 80
term alu a 30 20
term alu b 30 20
term rom c 50 70
term rom d 50 70
net same alu.a alu.b
net pair alu.a rom.c
)";
  const layout::Layout lay = io::read_layout_string(kDegenerate);
  route::NetlistOptions seq;
  seq.mode = route::NetlistMode::kSequential;
  const route::NetlistResult routed =
      route::NetlistRouter(lay).route_all(seq);

  ASSERT_GE(lay.nets().size(), 2u);
  EXPECT_DOUBLE_EQ(
      route::detour_ratio(lay, lay.nets()[0], routed.routes[0]), 1.0)
      << "coincident terminals: zero lower bound must score as no detour";
  EXPECT_GE(route::detour_ratio(lay, lay.nets()[1], routed.routes[1]), 1.0);
  // An unrouted net also scores 1.0 (never selected for rip-up).
  EXPECT_DOUBLE_EQ(route::detour_ratio(lay, lay.nets()[0], route::NetRoute{}),
                   1.0);

  // And the full engine runs the degenerate netlist without dividing by
  // zero or ripping the degenerate net.
  const route::OptimizeReport report = route::Optimizer(lay).run();
  ASSERT_FALSE(report.passes.empty());
  EXPECT_EQ(report.result.routed + report.result.failed, lay.nets().size());
}

TEST(Optimize, CancelStopsAtPassBoundary) {
  const layout::Layout lay = congested_workload(3);
  route::OptimizeOptions oopts;
  oopts.cancel = std::make_shared<std::atomic<bool>>(true);
  const route::OptimizeReport report = route::Optimizer(lay).run(oopts);
  EXPECT_TRUE(report.cancelled);
  EXPECT_FALSE(report.converged);
  // Pass 1 still ran: cancellation returns the best routing so far.
  ASSERT_EQ(report.passes.size(), 1u);
  EXPECT_GT(report.result.routed, 0u);
}

TEST(Optimize, ProgressHookSeesEveryRecordedPass) {
  const layout::Layout lay = congested_workload(11);
  std::vector<route::OptimizePassStats> streamed;
  route::OptimizeOptions oopts;
  oopts.progress = [&streamed](const route::OptimizePassStats& s) {
    streamed.push_back(s);
  };
  const route::OptimizeReport report = route::Optimizer(lay).run(oopts);
  ASSERT_EQ(streamed.size(), report.passes.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].pass, report.passes[i].pass);
    EXPECT_EQ(streamed[i].wirelength, report.passes[i].wirelength);
    EXPECT_EQ(streamed[i].overflow, report.passes[i].overflow);
  }
}

TEST(Optimize, InjectedSessionEnvironmentPerformsNoBuilds) {
  // The serving layer hands the optimizer a cached session environment; the
  // whole run must work from a *copy* of it — zero ObstacleIndex /
  // EscapeLineSet construction, exactly like ROUTE's sequential path.
  const std::string text =
      io::write_layout_string(congested_workload(5));
  serve::SessionCache cache(2);
  const auto session = cache.load(text);
  const route::OptimizeReport direct =
      route::Optimizer(session->layout).run();

  const std::size_t builds = route::SearchEnvironment::build_count();
  const route::OptimizeReport cached =
      route::Optimizer(session->layout, session->env).run();
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds)
      << "a cached session must serve OPTIMIZE without env builds";
  EXPECT_EQ(cached.result.total_wirelength, direct.result.total_wirelength);
  EXPECT_EQ(cached.passes.size(), direct.passes.size());
}

TEST(Optimize, MaxPassesCapsIteration) {
  const layout::Layout lay = congested_workload(13);
  route::OptimizeOptions one;
  one.max_passes = 1;
  const route::OptimizeReport capped = route::Optimizer(lay).run(one);
  EXPECT_LE(capped.passes.size(), 2u);  // pass 1 + at most one rip-up pass
}

}  // namespace
