// Tests for the routing-to-placement feedback loop (the paper's stated
// future work): spacing-demand analysis, rigid widening, and empirical
// convergence.

#include <gtest/gtest.h>

#include "placement/feedback_loop.hpp"
#include "verify/route_verifier.hpp"

namespace {

using namespace gcr;
using geom::Coord;
using geom::Point;
using geom::Rect;

/// Two macros with a deliberately under-sized gap and several nets whose
/// shortest routes hug the gap's rims.
layout::Layout tight_gap_layout(std::size_t nets, Coord gap) {
  const Coord top = 30 + static_cast<Coord>(nets) * 8 + 40;
  layout::Layout lay(Rect{0, 0, 186 + gap, top + 20});
  lay.set_min_separation(2);
  const auto a = lay.add_cell(layout::Cell{"west", Rect{20, 10, 100, top}});
  const auto b = lay.add_cell(
      layout::Cell{"east", Rect{100 + gap, 10, 180 + gap, top}});
  for (std::size_t i = 0; i < nets; ++i) {
    const Coord y = 30 + static_cast<Coord>(i) * 8;
    lay.cell(a).add_pin_terminal("p" + std::to_string(i), Point{20, y});
    lay.cell(b).add_pin_terminal("q" + std::to_string(i),
                                 Point{180 + gap, y});
    layout::Net net("n" + std::to_string(i));
    net.add_terminal(layout::TerminalRef{a, static_cast<std::uint32_t>(i)});
    net.add_terminal(layout::TerminalRef{b, static_cast<std::uint32_t>(i)});
    lay.add_net(std::move(net));
  }
  return lay;
}

TEST(SpacingDemand, FindsUndersizedPassage) {
  const layout::Layout lay = tight_gap_layout(6, 4);
  ASSERT_TRUE(lay.valid());
  const route::NetlistRouter router(lay);
  const auto routed = router.route_all();
  ASSERT_EQ(routed.failed, 0u);

  placement::SpacingOptions opts;
  opts.wire_pitch = 2;
  const auto deficits = placement::spacing_deficits(lay, routed, opts);
  ASSERT_FALSE(deficits.empty());
  // 6 nets at pitch 2 demand 12; gap is 4: deficit 8.
  EXPECT_EQ(deficits.front().occupancy, 6u);
  EXPECT_EQ(deficits.front().deficit, 8);
}

TEST(SpacingDemand, NoDeficitWhenGapSuffices) {
  const layout::Layout lay = tight_gap_layout(3, 20);
  const route::NetlistRouter router(lay);
  const auto routed = router.route_all();
  placement::SpacingOptions opts;
  opts.wire_pitch = 2;
  EXPECT_TRUE(placement::spacing_deficits(lay, routed, opts).empty());
}

TEST(WidenPassages, ShiftsCellsAndGrowsBoundary) {
  layout::Layout lay = tight_gap_layout(6, 4);
  const route::NetlistRouter router(lay);
  const auto routed = router.route_all();
  placement::SpacingOptions opts;
  opts.wire_pitch = 2;
  const auto deficits = placement::spacing_deficits(lay, routed, opts);
  ASSERT_FALSE(deficits.empty());

  const Rect east_before = lay.cells()[1].outline();
  const Point pin_before = lay.cells()[1].terminals()[0].pins[0].pos;
  const geom::Cost growth = placement::widen_passages(lay, deficits);
  EXPECT_GT(growth, 0);
  // The east cell and its pins moved together; the layout is still valid.
  EXPECT_EQ(lay.cells()[1].outline().xlo, east_before.xlo + 8);
  EXPECT_EQ(lay.cells()[1].terminals()[0].pins[0].pos.x, pin_before.x + 8);
  EXPECT_TRUE(lay.valid()) << lay.validate().front().detail;
}

TEST(FeedbackLoop, ConvergesOnTightGap) {
  const layout::Layout lay = tight_gap_layout(6, 4);
  placement::FeedbackOptions opts;
  opts.spacing.wire_pitch = 2;
  const auto report = placement::run_feedback(lay, opts);
  EXPECT_TRUE(report.converged);
  EXPECT_GE(report.iterations, 2u);  // at least one adjustment round
  EXPECT_TRUE(report.final_layout.valid());
  // Final routes verify and the final gap carries all nets.
  const auto violations =
      verify::verify_routes(report.final_layout, report.final_routes);
  EXPECT_TRUE(violations.empty());
  placement::SpacingOptions sopts;
  sopts.wire_pitch = 2;
  EXPECT_TRUE(placement::spacing_deficits(report.final_layout,
                                          report.final_routes, sopts)
                  .empty());
}

TEST(FeedbackLoop, AlreadyConvergedNeedsOneIteration) {
  const layout::Layout lay = tight_gap_layout(3, 20);
  placement::FeedbackOptions opts;
  opts.spacing.wire_pitch = 2;
  const auto report = placement::run_feedback(lay, opts);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.iterations, 1u);
  EXPECT_EQ(report.trace.size(), 1u);
  EXPECT_EQ(report.trace[0].deficits, 0u);
}

TEST(FeedbackLoop, TraceRecordsMonotoneProgress) {
  const layout::Layout lay = tight_gap_layout(8, 2);
  placement::FeedbackOptions opts;
  opts.spacing.wire_pitch = 2;
  const auto report = placement::run_feedback(lay, opts);
  ASSERT_TRUE(report.converged);
  // Worst deficit never increases across iterations in this monotone
  // (widen-only) scheme.
  for (std::size_t i = 1; i < report.trace.size(); ++i) {
    EXPECT_LE(report.trace[i].worst_deficit,
              report.trace[i - 1].worst_deficit == 0
                  ? geom::kCoordMax
                  : report.trace[i - 1].worst_deficit);
  }
}

TEST(CellTranslate, MovesPolygonShape) {
  layout::Layout lay(Rect{0, 0, 200, 200});
  const geom::OrthoPolygon ell{{{10, 10}, {50, 10}, {50, 30}, {30, 30},
                                {30, 50}, {10, 50}}};
  const auto id = lay.add_cell(layout::Cell{"ell", ell});
  lay.cell(id).translate(5, 7);
  EXPECT_EQ(lay.cell(id).outline(), (Rect{15, 17, 55, 57}));
  EXPECT_EQ(lay.cell(id).shape().vertices()[0], (Point{15, 17}));
  EXPECT_TRUE(lay.cell(id).shape().valid());
}

}  // namespace
