// Unit tests for the spatial substrate: ray tracing against obstacle edges
// and escape-line extraction/crossing queries.

#include <gtest/gtest.h>

#include <algorithm>

#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"

namespace {

using namespace gcr;
using geom::Axis;
using geom::Dir;
using geom::Interval;
using geom::Point;
using geom::Rect;

spatial::ObstacleIndex one_block() {
  return spatial::ObstacleIndex(Rect{0, 0, 100, 100}, {Rect{40, 40, 60, 60}});
}

TEST(ObstacleIndex, RoutabilityRespectsOpenInteriors) {
  const auto idx = one_block();
  EXPECT_TRUE(idx.routable(Point{0, 0}));
  EXPECT_TRUE(idx.routable(Point{40, 50}));   // on the boundary: legal hug
  EXPECT_TRUE(idx.routable(Point{40, 40}));   // corner
  EXPECT_FALSE(idx.routable(Point{50, 50}));  // strictly inside
  EXPECT_FALSE(idx.routable(Point{101, 0}));  // outside the region
}

TEST(ObstacleIndex, RayStopsAtFirstObstacle) {
  const auto idx = one_block();
  const auto hit = idx.trace(Point{10, 50}, Dir::kEast);
  EXPECT_EQ(hit.stop, 40);
  ASSERT_TRUE(hit.obstacle.has_value());
  EXPECT_EQ(*hit.obstacle, 0u);
}

TEST(ObstacleIndex, RayReachesBoundaryWhenClear) {
  const auto idx = one_block();
  // y = 40 grazes the block's bottom edge: the edge line is routable, so the
  // ray passes all the way to the boundary.
  const auto hit = idx.trace(Point{10, 40}, Dir::kEast);
  EXPECT_EQ(hit.stop, 100);
  EXPECT_FALSE(hit.obstacle.has_value());
}

TEST(ObstacleIndex, RayFromHugPositionHasZeroExtent) {
  const auto idx = one_block();
  const auto hit = idx.trace(Point{40, 50}, Dir::kEast);
  EXPECT_EQ(hit.stop, 40);
  ASSERT_TRUE(hit.obstacle.has_value());
}

TEST(ObstacleIndex, AllFourDirections) {
  const auto idx = one_block();
  EXPECT_EQ(idx.trace(Point{50, 10}, Dir::kNorth).stop, 40);
  EXPECT_EQ(idx.trace(Point{50, 90}, Dir::kSouth).stop, 60);
  EXPECT_EQ(idx.trace(Point{90, 50}, Dir::kWest).stop, 60);
  EXPECT_EQ(idx.trace(Point{50, 70}, Dir::kNorth).stop, 100);
}

TEST(ObstacleIndex, NearestOfSeveralObstaclesWins) {
  const spatial::ObstacleIndex idx(
      Rect{0, 0, 200, 100},
      {Rect{50, 20, 70, 80}, Rect{120, 20, 140, 80}, Rect{30, 90, 40, 95}});
  const auto hit = idx.trace(Point{0, 50}, Dir::kEast);
  EXPECT_EQ(hit.stop, 50);
  EXPECT_EQ(*hit.obstacle, 0u);
  const auto hit2 = idx.trace(Point{200, 50}, Dir::kWest);
  EXPECT_EQ(hit2.stop, 140);
  EXPECT_EQ(*hit2.obstacle, 1u);
}

TEST(ObstacleIndex, SegmentBlockedMatchesPierces) {
  const auto idx = one_block();
  EXPECT_TRUE(idx.segment_blocked(
      geom::Segment{Point{0, 50}, Point{100, 50}}));
  EXPECT_FALSE(idx.segment_blocked(
      geom::Segment{Point{0, 40}, Point{100, 40}}));  // hugging
  EXPECT_FALSE(idx.segment_blocked(
      geom::Segment{Point{0, 10}, Point{100, 10}}));
}

TEST(ObstacleIndex, QueryFindsIntersectingObstacles) {
  const spatial::ObstacleIndex idx(
      Rect{0, 0, 200, 100},
      {Rect{50, 20, 70, 80}, Rect{120, 20, 140, 80}});
  EXPECT_EQ(idx.query(Rect{0, 0, 60, 100}).size(), 1u);
  EXPECT_EQ(idx.query(Rect{0, 0, 200, 100}).size(), 2u);
  EXPECT_TRUE(idx.query(Rect{80, 0, 110, 100}).empty());
}

// ------------------------------------------------------------ EscapeLines

TEST(EscapeLines, OneBlockProducesEdgeAndBoundaryLines) {
  const auto idx = one_block();
  const spatial::EscapeLineSet lines(idx);
  // 4 boundary lines + 4 obstacle edge lines.
  EXPECT_EQ(lines.lines().size(), 8u);

  // The vertical line through the block's left edge spans the full layout:
  // the extensions beyond the corners are unobstructed.
  const auto it = std::find_if(
      lines.lines().begin(), lines.lines().end(), [](const auto& ln) {
        return ln.axis == Axis::kY && ln.track == 40 && ln.source == 0u;
      });
  ASSERT_NE(it, lines.lines().end());
  EXPECT_EQ(it->span, (Interval{0, 100}));
}

TEST(EscapeLines, ExtensionStopsAtBlockingNeighbor) {
  // Second block directly above the first: the first block's left-edge line
  // must stop at the neighbor's bottom edge.
  const spatial::ObstacleIndex idx(
      Rect{0, 0, 100, 100},
      {Rect{40, 40, 60, 60}, Rect{30, 80, 70, 95}});
  const spatial::EscapeLineSet lines(idx);
  const auto it = std::find_if(
      lines.lines().begin(), lines.lines().end(), [](const auto& ln) {
        return ln.axis == Axis::kY && ln.track == 40 && ln.source == 0u;
      });
  ASSERT_NE(it, lines.lines().end());
  EXPECT_EQ(it->span, (Interval{0, 80}));
}

TEST(EscapeLines, CrossingsAlongARay) {
  const auto idx = one_block();
  const spatial::EscapeLineSet lines(idx);
  // Horizontal ray at y=10 from x=5 to the east boundary crosses the
  // vertical lines x=40 and x=60 (edge lines span the whole layout here)
  // and the boundary line x=100.
  const auto xs = lines.crossings(Point{5, 10}, Dir::kEast, 100);
  EXPECT_EQ(xs, (std::vector<geom::Coord>{40, 60, 100}));
}

TEST(EscapeLines, CrossingsRespectSpanContainment) {
  // Neighbor above shortens the left-edge line; a ray passing below still
  // crosses it, a ray passing above does not.
  const spatial::ObstacleIndex idx(
      Rect{0, 0, 100, 100},
      {Rect{40, 40, 60, 60}, Rect{30, 80, 70, 95}});
  const spatial::EscapeLineSet lines(idx);
  const auto below = lines.crossings(Point{5, 10}, Dir::kEast, 100);
  EXPECT_TRUE(std::count(below.begin(), below.end(), 40) == 1);
  const auto above = lines.crossings(Point{5, 97}, Dir::kEast, 100);
  EXPECT_TRUE(std::count(above.begin(), above.end(), 40) == 0);
  // x=30/70 (the neighbor's edges) do span y=97.
  EXPECT_TRUE(std::count(above.begin(), above.end(), 30) == 1);
}

TEST(EscapeLines, CrossingsExcludeOriginAndOrderByTravel) {
  const auto idx = one_block();
  const spatial::EscapeLineSet lines(idx);
  // Westward ray: descending coordinates.
  const auto xs = lines.crossings(Point{95, 10}, Dir::kWest, 0);
  EXPECT_EQ(xs, (std::vector<geom::Coord>{60, 40, 0}));
  // A ray starting exactly on a line does not re-emit its own track.
  const auto from_edge = lines.crossings(Point{40, 10}, Dir::kEast, 100);
  EXPECT_EQ(from_edge, (std::vector<geom::Coord>{60, 100}));
}

TEST(EscapeLines, CoincidentEdgesKeepPerSourceRecords) {
  // Two blocks sharing the same left-edge x coordinate keep one line record
  // *each*: the spans coincide today, but a later incremental insert between
  // the blocks must be able to clip them independently (a merged record
  // could not be split back apart).  `crossings` deduplicates coordinates,
  // so the duplicate records never change routing behavior.
  const spatial::ObstacleIndex idx(
      Rect{0, 0, 100, 100},
      {Rect{40, 10, 60, 20}, Rect{40, 70, 60, 90}});
  const spatial::EscapeLineSet lines(idx);
  const auto count = std::count_if(
      lines.lines().begin(), lines.lines().end(), [](const auto& ln) {
        return ln.axis == Axis::kY && ln.track == 40 &&
               ln.span == Interval{0, 100};
      });
  EXPECT_EQ(count, 2);
  const auto xs = lines.crossings(Point{5, 50}, Dir::kEast, 100);
  EXPECT_EQ(std::count(xs.begin(), xs.end(), 40), 1);  // deduplicated
}

TEST(EscapeLines, IncrementalInsertSplitsCoincidentCorridors) {
  // The un-merge scenario: both aligned blocks span x=40 with corridor
  // [0,100]; a new obstacle landing *between* them must split the corridor
  // into a per-source lower part ([0,40], block 0's) and upper part
  // ([50,100], block 1's) — exactly what a from-scratch build produces.
  spatial::ObstacleIndex idx(
      Rect{0, 0, 100, 100},
      {Rect{40, 10, 60, 20}, Rect{40, 70, 60, 90}});
  spatial::EscapeLineSet lines(idx);

  const Rect blocker{30, 40, 70, 50};
  idx.insert(blocker);
  lines.insert_obstacle(idx, 2);

  const spatial::ObstacleIndex fresh(
      Rect{0, 0, 100, 100},
      {Rect{40, 10, 60, 20}, Rect{40, 70, 60, 90}, blocker});
  const spatial::EscapeLineSet fresh_lines(fresh);

  const auto span_at_40 = [](const spatial::EscapeLineSet& ls,
                             std::size_t source) {
    const auto it = std::find_if(
        ls.lines().begin(), ls.lines().end(), [source](const auto& ln) {
          return ln.axis == Axis::kY && ln.track == 40 && ln.source == source;
        });
    return it == ls.lines().end() ? Interval{} : it->span;
  };
  EXPECT_EQ(span_at_40(lines, 0), (Interval{0, 40}));
  EXPECT_EQ(span_at_40(lines, 1), (Interval{50, 100}));
  EXPECT_EQ(span_at_40(lines, 0), span_at_40(fresh_lines, 0));
  EXPECT_EQ(span_at_40(lines, 1), span_at_40(fresh_lines, 1));

  // Crossing queries agree with the from-scratch build on both sides.
  for (const geom::Coord y : {15, 45, 75}) {
    EXPECT_EQ(lines.crossings(Point{5, y}, Dir::kEast, 100),
              fresh_lines.crossings(Point{5, y}, Dir::kEast, 100))
        << "y=" << y;
  }
}

}  // namespace
