// Tests for the two-layer track-realization substrate: H/V layer
// discipline, via accounting, net-blocks-net behaviour, and realization of
// globally routed netlists.

#include <gtest/gtest.h>

#include "core/netlist_router.hpp"
#include "detail/track_router.hpp"
#include "workload/floorplan.hpp"
#include "workload/netgen.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Rect;

layout::Layout empty_layout() {
  layout::Layout lay(Rect{0, 0, 100, 100});
  return lay;
}

TEST(TrackRouter, StraightWireUsesOneLayerNoVias) {
  layout::Layout lay = empty_layout();
  detail::TrackRouter tr(lay, {.pitch = 2});
  detail::TrackRealization out;
  ASSERT_TRUE(tr.route_connection(0, {10, 20}, {50, 20}, out));
  ASSERT_EQ(out.wires.size(), 1u);
  EXPECT_EQ(out.via_count, 0u);
  EXPECT_EQ(out.total_wirelength, 40);
  for (const auto l : out.wires[0].layers) EXPECT_EQ(l, 0u);  // horizontal
}

TEST(TrackRouter, LWireCostsExactlyOneVia) {
  layout::Layout lay = empty_layout();
  detail::TrackRouter tr(lay, {.pitch = 2});
  detail::TrackRealization out;
  ASSERT_TRUE(tr.route_connection(0, {10, 10}, {50, 60}, out));
  EXPECT_EQ(out.via_count, 1u);
  EXPECT_EQ(out.total_wirelength, 40 + 50);
}

TEST(TrackRouter, HorizontalMovesOnlyOnLayer0) {
  layout::Layout lay = empty_layout();
  detail::TrackRouter tr(lay, {.pitch = 2});
  detail::TrackRealization out;
  ASSERT_TRUE(tr.route_connection(0, {10, 10}, {50, 60}, out));
  const auto& w = out.wires[0];
  for (std::size_t i = 1; i < w.points.size(); ++i) {
    if (w.points[i].y == w.points[i - 1].y && w.points[i] != w.points[i - 1] &&
        w.layers[i] == w.layers[i - 1]) {
      EXPECT_EQ(w.layers[i], 0u);  // horizontal move => H layer
    }
    if (w.points[i].x == w.points[i - 1].x && w.points[i] != w.points[i - 1] &&
        w.layers[i] == w.layers[i - 1]) {
      EXPECT_EQ(w.layers[i], 1u);  // vertical move => V layer
    }
  }
}

TEST(TrackRouter, EarlierNetBlocksLaterNetOnSameLayer) {
  layout::Layout lay = empty_layout();
  detail::TrackRouter tr(lay, {.pitch = 2});
  detail::TrackRealization out;
  // Net 0: horizontal wire straight across at y=50.
  ASSERT_TRUE(tr.route_connection(0, {0, 50}, {100, 50}, out));
  // Net 1 wants the same horizontal track: must shift to another row, so
  // its realized wirelength exceeds the straight-line distance or it vias.
  detail::TrackRealization out2;
  ASSERT_TRUE(tr.route_connection(1, {0, 50}, {100, 50}, out2));
  const bool detoured =
      out2.total_wirelength > 100 || out2.via_count > 0;
  EXPECT_TRUE(detoured);
}

TEST(TrackRouter, CrossingNetsUseDifferentLayers) {
  layout::Layout lay = empty_layout();
  detail::TrackRouter tr(lay, {.pitch = 2});
  detail::TrackRealization out;
  ASSERT_TRUE(tr.route_connection(0, {0, 50}, {100, 50}, out));   // horizontal
  ASSERT_TRUE(tr.route_connection(1, {50, 0}, {50, 100}, out));   // vertical
  // The crossing is legal: H on layer 0, V on layer 1.
  EXPECT_EQ(out.connections_failed, 0u);
}

TEST(TrackRouter, SameNetMayReuseItsOwnCells) {
  layout::Layout lay = empty_layout();
  detail::TrackRouter tr(lay, {.pitch = 2});
  detail::TrackRealization out;
  ASSERT_TRUE(tr.route_connection(3, {0, 50}, {100, 50}, out));
  // A second connection of the same net along the same row rides free.
  detail::TrackRealization out2;
  ASSERT_TRUE(tr.route_connection(3, {20, 50}, {80, 50}, out2));
  EXPECT_EQ(out2.via_count, 0u);
}

TEST(TrackRouter, MacrosBlockBothLayers) {
  layout::Layout lay(Rect{0, 0, 100, 100});
  lay.add_cell(layout::Cell{"block", Rect{40, 0, 60, 90}});
  detail::TrackRouter tr(lay, {.pitch = 2});
  detail::TrackRealization out;
  ASSERT_TRUE(tr.route_connection(0, {10, 50}, {90, 50}, out));
  // Must climb over the wall (y >= 90): wirelength well above 80.
  EXPECT_GE(out.total_wirelength, 80 + 2 * 38);
}

TEST(TrackRouter, PinOnMacroBoundarySnapsOut) {
  layout::Layout lay(Rect{0, 0, 100, 100});
  lay.add_cell(layout::Cell{"block", Rect{39, 39, 61, 61}});  // odd edges
  detail::TrackRouter tr(lay, {.pitch = 2});
  detail::TrackRealization out;
  // Pin exactly on the (odd-coordinate) west edge rasterizes inside; the
  // ring snap must pull it to the adjacent routable column.
  EXPECT_TRUE(tr.route_connection(0, {39, 50}, {90, 50}, out));
}

TEST(TrackRouter, RealizeRoutesGlobalNetlist) {
  workload::FloorplanOptions fp;
  fp.seed = 31;
  fp.cell_count = 9;
  fp.boundary = Rect{0, 0, 512, 512};
  layout::Layout lay = workload::random_floorplan(fp);
  workload::PinGenOptions pg;
  pg.seed = 32;
  workload::sprinkle_pins(lay, pg);
  workload::NetGenOptions ng;
  ng.seed = 33;
  ng.net_count = 10;
  workload::generate_nets(lay, ng);

  const route::NetlistRouter router(lay);
  const auto global = router.route_all();
  ASSERT_EQ(global.failed, 0u);

  detail::TrackRouter tr(lay);
  const auto realized = tr.realize(global);
  EXPECT_GT(realized.connections_routed, 0u);
  // Nearly every connection realizes at this density.
  EXPECT_LE(realized.connections_failed, realized.connections_routed / 5);
  // Track wirelength can beat the (boundary-hugging) global estimate on a
  // net or two but stays in the same regime overall.
  EXPECT_GT(realized.total_wirelength, 0);
}

TEST(TrackRouter, DegenerateConnectionIsFreeSuccess) {
  layout::Layout lay = empty_layout();
  detail::TrackRouter tr(lay, {.pitch = 4});
  detail::TrackRealization out;
  EXPECT_TRUE(tr.route_connection(0, {10, 10}, {10, 10}, out));
  EXPECT_TRUE(tr.route_connection(0, {10, 10}, {11, 11}, out));  // same cell
  EXPECT_EQ(out.total_wirelength, 0);
}

}  // namespace
