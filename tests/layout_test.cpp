// Unit tests for the layout model: cells, terminals, nets, and the
// placement-rule validation the paper's problem statement prescribes.

#include <gtest/gtest.h>

#include <algorithm>

#include "layout/layout.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Rect;

layout::Layout two_cell_layout() {
  layout::Layout lay(Rect{0, 0, 100, 100});
  lay.set_min_separation(4);
  lay.add_cell(layout::Cell{"a", Rect{10, 10, 30, 30}});
  lay.add_cell(layout::Cell{"b", Rect{50, 50, 80, 80}});
  return lay;
}

bool has_issue(const std::vector<layout::ValidationIssue>& issues,
               layout::ValidationIssue::Kind kind) {
  return std::any_of(issues.begin(), issues.end(),
                     [kind](const auto& i) { return i.kind == kind; });
}

TEST(Layout, ValidTwoCellLayout) {
  const layout::Layout lay = two_cell_layout();
  EXPECT_TRUE(lay.valid()) << lay.validate().front().detail;
  EXPECT_EQ(lay.cells().size(), 2u);
  EXPECT_EQ(lay.obstacles().size(), 2u);
}

TEST(Layout, RejectsImproperCell) {
  layout::Layout lay = two_cell_layout();
  lay.add_cell(layout::Cell{"line", Rect{40, 5, 40, 9}});  // zero width
  EXPECT_TRUE(has_issue(lay.validate(),
                        layout::ValidationIssue::Kind::kCellNotProper));
}

TEST(Layout, RejectsCellOutsideBoundary) {
  layout::Layout lay = two_cell_layout();
  lay.add_cell(layout::Cell{"out", Rect{90, 90, 120, 95}});
  EXPECT_TRUE(has_issue(lay.validate(),
                        layout::ValidationIssue::Kind::kCellOutsideBoundary));
}

TEST(Layout, RejectsCellsTooClose) {
  layout::Layout lay = two_cell_layout();
  // Separation 2 < min_separation 4.
  lay.add_cell(layout::Cell{"close", Rect{32, 10, 44, 30}});
  EXPECT_TRUE(has_issue(lay.validate(),
                        layout::ValidationIssue::Kind::kCellsTooClose));
}

TEST(Layout, RejectsTouchingCellsEvenWithMinSeparationOne) {
  // The paper demands a *non-zero* distance: touching is always illegal.
  layout::Layout lay(Rect{0, 0, 100, 100});
  lay.set_min_separation(1);
  lay.add_cell(layout::Cell{"a", Rect{10, 10, 30, 30}});
  lay.add_cell(layout::Cell{"b", Rect{30, 10, 50, 30}});  // shares an edge
  EXPECT_TRUE(has_issue(lay.validate(),
                        layout::ValidationIssue::Kind::kCellsTooClose));
}

TEST(Layout, RejectsPinBuriedInCell) {
  layout::Layout lay = two_cell_layout();
  lay.cell(layout::CellId{0}).add_pin_terminal("buried", Point{20, 20});
  EXPECT_TRUE(has_issue(lay.validate(),
                        layout::ValidationIssue::Kind::kPinInsideCell));
}

TEST(Layout, AcceptsPinOnCellBoundary) {
  layout::Layout lay = two_cell_layout();
  lay.cell(layout::CellId{0}).add_pin_terminal("edge", Point{30, 20});
  lay.cell(layout::CellId{1}).add_pin_terminal("corner", Point{50, 50});
  layout::Net n("n");
  n.add_terminal(layout::TerminalRef{layout::CellId{0}, 0});
  n.add_terminal(layout::TerminalRef{layout::CellId{1}, 0});
  lay.add_net(std::move(n));
  EXPECT_TRUE(lay.valid()) << lay.validate().front().detail;
}

TEST(Layout, RejectsDanglingTerminalRef) {
  layout::Layout lay = two_cell_layout();
  layout::Net n("n");
  n.add_terminal(layout::TerminalRef{layout::CellId{0}, 7});  // no such term
  n.add_terminal(layout::TerminalRef{layout::CellId{5}, 0});  // no such cell
  lay.add_net(std::move(n));
  const auto issues = lay.validate();
  EXPECT_TRUE(
      has_issue(issues, layout::ValidationIssue::Kind::kDanglingTerminal));
}

TEST(Layout, RejectsSingleTerminalNet) {
  layout::Layout lay = two_cell_layout();
  lay.cell(layout::CellId{0}).add_pin_terminal("t", Point{10, 20});
  layout::Net n("lonely");
  n.add_terminal(layout::TerminalRef{layout::CellId{0}, 0});
  lay.add_net(std::move(n));
  EXPECT_TRUE(has_issue(lay.validate(),
                        layout::ValidationIssue::Kind::kNetTooSmall));
}

TEST(Layout, RejectsTerminalWithoutPins) {
  layout::Layout lay = two_cell_layout();
  lay.cell(layout::CellId{0}).add_terminal(layout::Terminal{"empty", {}});
  EXPECT_TRUE(has_issue(lay.validate(),
                        layout::ValidationIssue::Kind::kTerminalNoPins));
}

TEST(Layout, PadTerminals) {
  layout::Layout lay = two_cell_layout();
  const layout::TerminalRef pad = lay.add_pad_pin("vdd", Point{0, 50});
  EXPECT_FALSE(pad.cell.valid());
  EXPECT_TRUE(lay.terminal_exists(pad));
  EXPECT_EQ(lay.terminal(pad).pins.size(), 1u);
  EXPECT_EQ(lay.terminal(pad).pins[0].pos, (Point{0, 50}));
}

TEST(Layout, MultiPinTerminalRoundTrip) {
  layout::Layout lay = two_cell_layout();
  layout::Terminal t;
  t.name = "clk";
  t.pins.push_back(layout::Pin{Point{10, 15}, "clk"});  // west side
  t.pins.push_back(layout::Pin{Point{30, 15}, "clk"});  // east side
  const std::uint32_t idx = lay.cell(layout::CellId{0}).add_terminal(t);
  const layout::TerminalRef ref{layout::CellId{0}, idx};
  EXPECT_EQ(lay.terminal(ref).pins.size(), 2u);
}

TEST(Layout, PolygonCellObstaclesDecompose) {
  layout::Layout lay(Rect{0, 0, 100, 100});
  const geom::OrthoPolygon ell{{{10, 10}, {50, 10}, {50, 30}, {30, 30},
                                {30, 50}, {10, 50}}};
  lay.add_cell(layout::Cell{"ell", ell});
  const auto obs = lay.obstacles();
  EXPECT_GE(obs.size(), 2u);
  // The blocking set covers the polygon (with seam overlaps) and nothing
  // outside it.
  const auto pure = ell.decompose();
  geom::Cost area = 0;
  for (const Rect& r : pure) area += r.area();
  EXPECT_EQ(area, ell.area());
  for (const Rect& r : obs) {
    EXPECT_TRUE(ell.bounding_box().contains(r)) << r;
  }
  EXPECT_TRUE(lay.valid());
}

TEST(Layout, RejectsInvalidPolygonCell) {
  layout::Layout lay(Rect{0, 0, 100, 100});
  const geom::OrthoPolygon bad{{{0, 0}, {10, 10}, {0, 10}, {10, 0}}};
  lay.add_cell(layout::Cell{"bad", bad});
  EXPECT_TRUE(has_issue(lay.validate(),
                        layout::ValidationIssue::Kind::kInvalidPolygon));
}

TEST(Layout, InvalidPolygonObstaclesFallBackToOutline) {
  // An invalid polygon cannot be decomposed; obstacle queries (which run
  // even on layouts validate() rejects) must degrade to the bounding
  // outline instead of crashing on non-rectilinear edges.
  layout::Layout lay(Rect{0, 0, 100, 100});
  const geom::OrthoPolygon bad{{{0, 0}, {10, 10}, {0, 10}, {10, 0}}};
  lay.add_cell(layout::Cell{"bad", bad});
  const auto rects = lay.obstacles();
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], (Rect{0, 0, 10, 10}));
}

TEST(Layout, NestedPolygonSeparationUsesDecomposition) {
  // A C-ring around a small block: bounding boxes overlap, but the actual
  // wall rectangles keep their distance, so the layout is valid.
  layout::Layout lay(Rect{0, 0, 100, 100});
  lay.set_min_separation(2);
  const geom::OrthoPolygon ring{{{45, 90}, {10, 90}, {10, 10}, {90, 10},
                                 {90, 90}, {55, 90}, {55, 80}, {80, 80},
                                 {80, 20}, {20, 20}, {20, 80}, {45, 80}}};
  ASSERT_TRUE(ring.valid());
  lay.add_cell(layout::Cell{"ring", ring});
  lay.add_cell(layout::Cell{"core", Rect{40, 40, 60, 60}});
  EXPECT_TRUE(lay.valid()) << lay.validate().front().detail;
}

TEST(Layout, PinCountAggregates) {
  layout::Layout lay = two_cell_layout();
  lay.cell(layout::CellId{0}).add_pin_terminal("a", Point{10, 12});
  layout::Terminal multi;
  multi.name = "m";
  multi.pins = {layout::Pin{Point{10, 14}, "m"}, layout::Pin{Point{30, 14}, "m"}};
  lay.cell(layout::CellId{1}).add_terminal(multi);
  lay.add_pad_pin("p", Point{0, 1});
  EXPECT_EQ(lay.pin_count(), 4u);
}

TEST(Layout, IssueKindNames) {
  using Kind = layout::ValidationIssue::Kind;
  EXPECT_EQ(layout::to_string(Kind::kCellsTooClose), "cells-too-close");
  EXPECT_EQ(layout::to_string(Kind::kNetTooSmall), "net-too-small");
}

}  // namespace
