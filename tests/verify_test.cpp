// Tests for the independent route verifier: it must accept everything the
// router produces and reject every class of corruption.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/netlist_router.hpp"
#include "verify/route_verifier.hpp"
#include "workload/floorplan.hpp"
#include "workload/netgen.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Rect;
using geom::Segment;

layout::Layout routed_layout(std::uint64_t seed) {
  workload::FloorplanOptions fp;
  fp.seed = seed;
  fp.cell_count = 9;
  fp.boundary = Rect{0, 0, 512, 512};
  layout::Layout lay = workload::random_floorplan(fp);
  workload::PinGenOptions pg;
  pg.seed = seed + 1;
  workload::sprinkle_pins(lay, pg);
  workload::NetGenOptions ng;
  ng.seed = seed + 2;
  ng.net_count = 10;
  workload::generate_nets(lay, ng);
  return lay;
}

bool has(const std::vector<verify::RouteViolation>& vs,
         verify::RouteViolation::Kind k) {
  return std::any_of(vs.begin(), vs.end(),
                     [k](const auto& v) { return v.kind == k; });
}

class VerifierSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifierSeedSweep, RouterOutputAlwaysVerifies) {
  const layout::Layout lay = routed_layout(GetParam());
  const route::NetlistRouter router(lay);
  const auto result = router.route_all();
  ASSERT_EQ(result.failed, 0u);
  const auto violations = verify::verify_routes(lay, result);
  EXPECT_TRUE(violations.empty())
      << "net " << violations.front().net << ": "
      << verify::to_string(violations.front().kind) << " — "
      << violations.front().detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierSeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(Verifier, DetectsSegmentThroughCell) {
  const layout::Layout lay = routed_layout(1);
  const route::NetlistRouter router(lay);
  auto result = router.route_all();
  // Corrupt a net: drive a wire straight through cell 0's center.
  const Rect& c0 = lay.cells()[0].outline();
  result.routes[0].segments.push_back(
      Segment{Point{c0.xlo - 1, c0.center().y}, Point{c0.xhi + 1, c0.center().y}});
  result.routes[0].wirelength += c0.width() + 2;
  const auto violations = verify::verify_routes(lay, result);
  EXPECT_TRUE(has(violations, verify::RouteViolation::Kind::kSegmentThroughCell));
}

TEST(Verifier, DetectsWirelengthMismatch) {
  const layout::Layout lay = routed_layout(2);
  const route::NetlistRouter router(lay);
  auto result = router.route_all();
  result.routes[0].wirelength += 7;
  const auto violations = verify::verify_routes(lay, result);
  EXPECT_TRUE(has(violations, verify::RouteViolation::Kind::kWirelengthMismatch));
}

TEST(Verifier, DetectsDisconnectedTree) {
  const layout::Layout lay = routed_layout(3);
  const route::NetlistRouter router(lay);
  auto result = router.route_all();
  // Add a stray segment far from the tree (and fix the length accounting so
  // only connectivity trips).
  result.routes[0].segments.push_back(Segment{Point{1, 1}, Point{4, 1}});
  result.routes[0].wirelength += 3;
  const auto violations = verify::verify_net(lay, 0, result.routes[0]);
  EXPECT_TRUE(has(violations, verify::RouteViolation::Kind::kTreeDisconnected));
}

TEST(Verifier, DetectsMissingTerminal) {
  const layout::Layout lay = routed_layout(4);
  const route::NetlistRouter router(lay);
  auto result = router.route_all();
  // Remove the tail segment of some net until a terminal detaches.
  auto& nr = result.routes[0];
  bool detected = false;
  while (!nr.segments.empty() && !detected) {
    nr.wirelength -= nr.segments.back().length();
    nr.segments.pop_back();
    const auto violations = verify::verify_net(lay, 0, nr);
    detected =
        has(violations, verify::RouteViolation::Kind::kTerminalNotConnected) ||
        has(violations, verify::RouteViolation::Kind::kTreeDisconnected);
  }
  EXPECT_TRUE(detected);
}

TEST(Verifier, DetectsSegmentOutsideBoundary) {
  const layout::Layout lay = routed_layout(5);
  const route::NetlistRouter router(lay);
  auto result = router.route_all();
  result.routes[0].segments.push_back(
      Segment{Point{0, 0}, Point{-50, 0}});
  result.routes[0].wirelength += 50;
  const auto violations = verify::verify_routes(lay, result);
  EXPECT_TRUE(
      has(violations, verify::RouteViolation::Kind::kSegmentOutsideBoundary));
}

TEST(Verifier, UnroutedNetPolicy) {
  const layout::Layout lay = routed_layout(6);
  const route::NetlistRouter router(lay);
  auto result = router.route_all();
  result.routes[0].ok = false;
  EXPECT_TRUE(has(verify::verify_routes(lay, result),
                  verify::RouteViolation::Kind::kNetNotRouted));
  verify::VerifyOptions lax;
  lax.require_all_routed = false;
  EXPECT_FALSE(has(verify::verify_routes(lay, result, lax),
                   verify::RouteViolation::Kind::kNetNotRouted));
}

TEST(Verifier, KindNames) {
  EXPECT_EQ(verify::to_string(
                verify::RouteViolation::Kind::kSegmentThroughCell),
            "segment-through-cell");
  EXPECT_EQ(verify::to_string(verify::RouteViolation::Kind::kNetNotRouted),
            "net-not-routed");
}

}  // namespace
