// Tests for the pipeline-orchestration subsystem: stage-option and
// committed-route fingerprints, the content-addressed stage cache, the
// stage runner's determinism and cancellation, the serving integration
// (lazy default-route commit, repeated-stage cache hits counted through
// the build-count seam, REROUTE/OPTIMIZE invalidation by re-keying), and
// the DETAIL / CONGEST / VERIFY / SVG / GEN verbs end to end on both
// front-ends — including the pipelined GEN -> ROUTE -> DETAIL -> VERIFY
// -> STATS sequence over real TCP and byte-identical front-end parity.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/netlist_router.hpp"
#include "core/optimize.hpp"
#include "core/search_environment.hpp"
#include "io/route_dump.hpp"
#include "io/text_format.hpp"
#include "pipeline/route_state.hpp"
#include "pipeline/stage.hpp"
#include "pipeline/stage_cache.hpp"
#include "pipeline/stage_runner.hpp"
#include "serve/layout_session.hpp"
#include "serve/protocol.hpp"
#include "serve/routing_service.hpp"
#include "workload/netgen.hpp"

#if defined(__linux__)
#include <sys/socket.h>

#include <thread>

#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "serve/fd_stream.hpp"
#endif

namespace {

using namespace gcr;

std::string workload_text(std::size_t cells, std::size_t nets,
                          std::uint64_t seed) {
  return io::write_layout_string(
      workload::standard_workload(cells, 512, nets, seed));
}

/// In-process reference for a stage verb: default options, default full
/// sequential route — exactly what the service runs on a fresh session.
std::shared_ptr<const pipeline::StageResult> reference_stage(
    const layout::Layout& lay, const route::NetlistResult& routes,
    pipeline::StageKind kind) {
  route::SearchEnvironment env(lay);
  pipeline::StageOptions opts;
  opts.kind = kind;
  const pipeline::StageOutcome out =
      pipeline::run_stage({lay, env, routes, nullptr, {}}, opts);
  return out.result;
}

// ------------------------------------------------------------ fingerprints

TEST(StageOptions, FingerprintCoversOnlyRelevantKnobs) {
  pipeline::StageOptions a;  // kDetail
  pipeline::StageOptions b = a;
  b.penalty_dbu = 999;  // congestion knob: irrelevant to DETAIL
  b.scale = 8.0;        // svg knob: irrelevant to DETAIL
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.channel_window = 16;
  EXPECT_NE(a.fingerprint(), b.fingerprint());

  pipeline::StageOptions c;
  c.kind = pipeline::StageKind::kCongest;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  pipeline::StageOptions d = c;
  d.track_pitch = 5;  // detail knob: irrelevant to CONGEST
  EXPECT_EQ(c.fingerprint(), d.fingerprint());
  d.max_iterations = 7;
  EXPECT_NE(c.fingerprint(), d.fingerprint());
}

TEST(RouteState, FingerprintTracksGeometry) {
  const layout::Layout lay = io::read_layout_string(workload_text(9, 12, 7));
  const route::NetlistResult res = route::NetlistRouter(lay).route_all();
  const std::string fp = pipeline::fingerprint_routes(res);
  ASSERT_EQ(fp.size(), 16u);
  EXPECT_EQ(fp.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(fp, pipeline::fingerprint_routes(res));  // pure function

  route::NetlistResult tweaked = res;
  ASSERT_FALSE(tweaked.routes.empty());
  tweaked.routes[0].wirelength += 1;
  EXPECT_NE(fp, pipeline::fingerprint_routes(tweaked));
}

TEST(RouteState, SlotPublishesImmutableSnapshots) {
  const layout::Layout lay = io::read_layout_string(workload_text(9, 12, 7));
  const route::NetlistResult res = route::NetlistRouter(lay).route_all();
  pipeline::RouteStateSlot slot;
  EXPECT_EQ(slot.get(), nullptr);
  const auto snap = slot.set(res);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->fingerprint, pipeline::fingerprint_routes(res));
  EXPECT_EQ(slot.get(), snap);
  // Re-committing identical geometry keeps the fingerprint, so stage-cache
  // hits survive a repeated full ROUTE.
  EXPECT_EQ(slot.set(res)->fingerprint, snap->fingerprint);
}

// ------------------------------------------------------------- stage cache

TEST(StageCache, KeyComposition) {
  EXPECT_EQ(pipeline::StageCache::key_for("s", "r", "o"), "s|r|o");
}

TEST(StageCache, LruEvictionAndCounters) {
  pipeline::StageCache cache(2);
  const auto mk = [](const std::string& body) {
    auto r = std::make_shared<pipeline::StageResult>();
    r->body = body;
    return r;
  };
  EXPECT_EQ(cache.find("a"), nullptr);  // miss 1
  cache.insert("a", mk("A"));
  cache.insert("b", mk("B"));
  ASSERT_NE(cache.find("a"), nullptr);  // hit 1, refreshes a's recency
  cache.insert("c", mk("C"));           // evicts b (least recent)
  EXPECT_EQ(cache.find("b"), nullptr);  // miss 2
  ASSERT_NE(cache.find("a"), nullptr);  // hit 2
  ASSERT_NE(cache.find("c"), nullptr);  // hit 3
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);
}

// ------------------------------------------------------------ stage runner

TEST(StageRunner, DeterministicAcrossRuns) {
  const layout::Layout lay = io::read_layout_string(workload_text(9, 12, 7));
  route::SearchEnvironment env(lay);
  const route::NetlistResult routes = route::NetlistRouter(lay).route_all();
  for (const pipeline::StageKind kind :
       {pipeline::StageKind::kDetail, pipeline::StageKind::kCongest,
        pipeline::StageKind::kVerify, pipeline::StageKind::kSvg}) {
    pipeline::StageOptions opts;
    opts.kind = kind;
    const std::size_t before = pipeline::stage_build_count();
    const pipeline::StageOutcome one =
        pipeline::run_stage({lay, env, routes, nullptr, {}}, opts);
    const pipeline::StageOutcome two =
        pipeline::run_stage({lay, env, routes, nullptr, {}}, opts);
    ASSERT_NE(one.result, nullptr);
    ASSERT_NE(two.result, nullptr);
    EXPECT_EQ(one.result->meta, two.result->meta);
    EXPECT_EQ(one.result->body, two.result->body);
    EXPECT_EQ(one.result->kind, kind);
    if (kind != pipeline::StageKind::kVerify) {
      // A clean verify has no violation lines; every other stage renders.
      EXPECT_FALSE(one.result->body.empty());
    }
    EXPECT_EQ(pipeline::stage_build_count(), before + 2);
  }
}

TEST(StageRunner, CancelAndDeadlineStopWithoutCounting) {
  const layout::Layout lay = io::read_layout_string(workload_text(9, 12, 7));
  route::SearchEnvironment env(lay);
  const route::NetlistResult routes = route::NetlistRouter(lay).route_all();
  pipeline::StageOptions opts;  // kDetail

  const auto cancel = std::make_shared<std::atomic<bool>>(true);
  const std::size_t before = pipeline::stage_build_count();
  const pipeline::StageOutcome cancelled =
      pipeline::run_stage({lay, env, routes, cancel, {}}, opts);
  EXPECT_EQ(cancelled.result, nullptr);
  EXPECT_TRUE(cancelled.cancelled);

  const auto past =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const pipeline::StageOutcome expired =
      pipeline::run_stage({lay, env, routes, nullptr, past}, opts);
  EXPECT_EQ(expired.result, nullptr);
  EXPECT_TRUE(expired.cancelled);
  EXPECT_EQ(pipeline::stage_build_count(), before);
}

// ----------------------------------------------------- service integration

serve::RouteRequest stage_request(const std::string& key,
                                  pipeline::StageOptions opts = {}) {
  serve::RouteRequest req;
  req.session_key = key;
  req.stage = opts;
  return req;
}

TEST(ServiceStages, FreshSessionCommitsDefaultRouteThenHitsCache) {
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const std::string text = workload_text(9, 12, 7);
  const auto session = service.load(text);
  EXPECT_EQ(session->routes.get(), nullptr);

  const std::size_t before = pipeline::stage_build_count();
  const serve::RouteResponse first =
      service.route(stage_request(session->key));
  ASSERT_TRUE(first.ok()) << first.error;
  ASSERT_NE(first.stage, nullptr);
  EXPECT_FALSE(first.stage_cached);
  EXPECT_EQ(pipeline::stage_build_count(), before + 1);

  // The lazy commit is the deterministic default full sequential route.
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult ref = route::NetlistRouter(lay).route_all();
  const auto state = session->routes.get();
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->fingerprint, pipeline::fingerprint_routes(ref));

  // Repeated DETAIL: served from the cache, zero stage rebuilds.
  const serve::RouteResponse second =
      service.route(stage_request(session->key));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.stage_cached);
  EXPECT_EQ(second.stage->body, first.stage->body);
  EXPECT_EQ(second.stage->meta, first.stage->meta);
  EXPECT_EQ(pipeline::stage_build_count(), before + 1);
  EXPECT_EQ(service.stages().hits(), 1u);

  // A full ROUTE re-committing identical geometry must keep hitting.
  serve::RouteRequest route;
  route.session_key = session->key;
  ASSERT_TRUE(service.route(std::move(route)).ok());
  const serve::RouteResponse third =
      service.route(stage_request(session->key));
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third.stage_cached);
  EXPECT_EQ(pipeline::stage_build_count(), before + 1);

  // Different stage options are a different cache key.
  pipeline::StageOptions wide;
  wide.channel_window = 16;
  const serve::RouteResponse fourth =
      service.route(stage_request(session->key, wide));
  ASSERT_TRUE(fourth.ok());
  EXPECT_FALSE(fourth.stage_cached);
  EXPECT_EQ(pipeline::stage_build_count(), before + 2);
}

TEST(ServiceStages, RerouteInvalidatesCachedStages) {
  // Precondition: ripping up nets 0,1 and re-routing them last must change
  // the committed geometry, otherwise the content key would (correctly)
  // still hit.  The workload is chosen so it does.
  const std::string text = workload_text(12, 24, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult full = route::NetlistRouter(lay).route_all();
  route::NetlistOptions ropts;
  ropts.mode = route::NetlistMode::kSequential;
  ropts.reroute = {0, 1};
  const route::NetlistResult ripped =
      route::NetlistRouter(lay).route_all(ropts);
  ASSERT_NE(pipeline::fingerprint_routes(full),
            pipeline::fingerprint_routes(ripped))
      << "workload does not differentiate the reroute; pick another seed";

  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(text);

  const serve::RouteResponse first =
      service.route(stage_request(session->key));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.stage_cached);

  serve::RouteRequest rr;
  rr.session_key = session->key;
  rr.reroute = true;
  rr.opts.mode = route::NetlistMode::kSequential;
  rr.net_names = {lay.nets()[0].name(), lay.nets()[1].name()};
  const serve::RouteResponse rresp = service.route(std::move(rr));
  ASSERT_TRUE(rresp.ok()) << rresp.error;
  ASSERT_NE(session->routes.get(), nullptr);
  EXPECT_EQ(session->routes.get()->fingerprint,
            pipeline::fingerprint_routes(ripped));

  // Same DETAIL options, new committed geometry: recompute, not a hit.
  const std::size_t before = pipeline::stage_build_count();
  const serve::RouteResponse second =
      service.route(stage_request(session->key));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.stage_cached);
  EXPECT_EQ(pipeline::stage_build_count(), before + 1);
}

TEST(ServiceStages, OptimizeRecommitsAndRekeys) {
  const std::string text = workload_text(12, 24, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult full = route::NetlistRouter(lay).route_all();

  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(text);

  const serve::RouteResponse first =
      service.route(stage_request(session->key));
  ASSERT_TRUE(first.ok());

  serve::RouteRequest orq;
  orq.session_key = session->key;
  orq.optimize = true;
  const serve::RouteResponse oresp = service.route(std::move(orq));
  ASSERT_TRUE(oresp.ok());
  const auto state = session->routes.get();
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->fingerprint, pipeline::fingerprint_routes(oresp.result));

  // Re-keying is exact: the repeated stage hits iff OPTIMIZE reproduced
  // the original geometry bit-for-bit.
  const bool unchanged =
      state->fingerprint == pipeline::fingerprint_routes(full);
  const serve::RouteResponse second =
      service.route(stage_request(session->key));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.stage_cached, unchanged);
}

TEST(ServiceStages, StatsCountStagesAndGens) {
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(workload_text(9, 12, 7));
  ASSERT_TRUE(service.route(stage_request(session->key)).ok());
  ASSERT_TRUE(service.route(stage_request(session->key)).ok());
  service.record_gen(true);
  const serve::MetricsSnapshot snap = service.snapshot();
  EXPECT_EQ(snap.stages_ok, 2u);
  EXPECT_EQ(snap.stages_failed, 0u);
  EXPECT_EQ(snap.gens_ok, 1u);
  EXPECT_EQ(snap.stage_cache_hits, 1u);
  EXPECT_EQ(snap.stage_cache_misses, 1u);
  EXPECT_EQ(snap.stage_cache_size, 1u);
  const std::string text = service.stats_text();
  EXPECT_NE(text.find("stages_ok 2"), std::string::npos);
  EXPECT_NE(text.find("gens_ok 1"), std::string::npos);
  EXPECT_NE(text.find("stage_cache_hits 1"), std::string::npos);
}

// ------------------------------------------------ blocking front-end (pipe)

/// Runs a scripted connection and returns everything the service wrote.
std::string run_protocol(const std::string& script) {
  serve::RoutingService::Options opts;
  opts.workers = 2;
  serve::RoutingService service(opts);
  std::istringstream in(script);
  std::ostringstream out;
  serve::serve_connection(service, in, out);
  return out.str();
}

struct Frame {
  std::string status;
  std::string body;
};

Frame next_frame(std::istream& in) {
  Frame f;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, f.status)));
  std::istringstream is(f.status);
  std::string kw;
  std::size_t nbytes = 0;
  is >> kw;
  if (kw == "OK" && (is >> nbytes) && nbytes > 0) {
    f.body.resize(nbytes);
    in.read(f.body.data(), static_cast<std::streamsize>(nbytes));
  }
  return f;
}

/// Drops the trailing per-request timing fields, which legitimately differ
/// between runs and front-ends.
std::string strip_timing(const std::string& status) {
  const std::size_t pos = status.find(" queue_us=");
  return pos == std::string::npos ? status : status.substr(0, pos);
}

const char kGenLine[] = "GEN standard seed=5 cells=9 extent=512 nets=12\n";

TEST(Protocol, PipelineVerbsRoundTrip) {
  // The GEN equivalent of this workload, generated client-side: the session
  // key is predictable before the command is sent.
  const std::string text = workload_text(9, 12, 5);
  const std::string key = serve::SessionCache::content_key(text);
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult ref = route::NetlistRouter(lay).route_all();

  const std::string script = std::string(kGenLine) + "ROUTE " + key +
                             "\nDETAIL " + key + "\nCONGEST " + key +
                             "\nVERIFY " + key + "\nSVG " + key +
                             "\nDETAIL " + key + "\nSTATS\nQUIT\n";
  std::istringstream replies(run_protocol(script));

  const Frame gen = next_frame(replies);
  EXPECT_NE(gen.status.find("session=" + key), std::string::npos)
      << gen.status;
  EXPECT_NE(gen.status.find(" gen=standard"), std::string::npos);
  EXPECT_NE(gen.status.find("cached=0"), std::string::npos);

  const Frame route = next_frame(replies);
  ASSERT_EQ(route.status.rfind("OK ", 0), 0u) << route.status;
  EXPECT_EQ(io::read_routes_string(route.body, lay).total_wirelength,
            ref.total_wirelength);

  for (const pipeline::StageKind kind :
       {pipeline::StageKind::kDetail, pipeline::StageKind::kCongest,
        pipeline::StageKind::kVerify, pipeline::StageKind::kSvg}) {
    const auto want = reference_stage(lay, ref, kind);
    ASSERT_NE(want, nullptr);
    const Frame frame = next_frame(replies);
    const std::string name{pipeline::to_string(kind)};
    ASSERT_EQ(frame.status.rfind("OK ", 0), 0u) << frame.status;
    EXPECT_NE(frame.status.find("stage=" + name + " cached=0"),
              std::string::npos)
        << frame.status;
    if (!want->meta.empty()) {
      EXPECT_NE(frame.status.find(want->meta), std::string::npos)
          << name << ": " << frame.status;
    }
    EXPECT_EQ(frame.body, want->body) << name;
  }

  const Frame cached = next_frame(replies);
  EXPECT_NE(cached.status.find("stage=detail cached=1"), std::string::npos)
      << cached.status;

  const Frame stats = next_frame(replies);
  EXPECT_NE(stats.body.find("stages_ok 5"), std::string::npos) << stats.body;
  EXPECT_NE(stats.body.find("gens_ok 1"), std::string::npos);
  EXPECT_NE(stats.body.find("stage_cache_hits 1"), std::string::npos);
  const Frame bye = next_frame(replies);
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(Protocol, GenDedupsBySeed) {
  const std::string text = workload_text(9, 12, 5);
  const std::string key = serve::SessionCache::content_key(text);
  const std::string script =
      std::string(kGenLine) + kGenLine +
      "GEN standard seed=6 cells=9 extent=512 nets=12\nQUIT\n";
  std::istringstream replies(run_protocol(script));
  const Frame first = next_frame(replies);
  EXPECT_NE(first.status.find("session=" + key), std::string::npos);
  EXPECT_NE(first.status.find("cached=0"), std::string::npos);
  const Frame second = next_frame(replies);
  EXPECT_NE(second.status.find("session=" + key), std::string::npos);
  EXPECT_NE(second.status.find("cached=1"), std::string::npos)
      << "identical GEN must dedup into the cached session: "
      << second.status;
  const Frame third = next_frame(replies);
  EXPECT_EQ(third.status.find("session=" + key), std::string::npos)
      << "a different seed must synthesize a different session";
  EXPECT_NE(third.status.find("cached=0"), std::string::npos);
}

TEST(Protocol, StageAndGenParseRejections) {
  const std::string script =
      "DETAIL deadbeef\n"                    // unknown session
      "GEN standard cells=9\n"               // missing mandatory seed
      "GEN bogus seed=1\n"                   // unknown kind
      "GEN standard seed=1 cells=0\n"        // below the size floor
      "GEN standard seed=1 nets=999999\n"    // above the size cap
      "DETAIL deadbeef window=0\n"           // zero channel window
      "CONGEST deadbeef iterations=999\n"    // above the iteration cap
      "SVG deadbeef scale=1000\n"            // above the scale cap
      "SVG deadbeef scale=1.2.3\n"           // trailing junk after number
      "SVG deadbeef scale=.\n"               // bare dot, no digits
      "VERIFY deadbeef bogus=1\n"            // unknown stage option
      "QUIT\n";
  std::istringstream replies(run_protocol(script));
  const char* expects[] = {
      "session_not_found", "seed",       "kind",
      "cells",             "nets",       "window",
      "iterations",        "scale",      "expected a number",
      "expected a number", "bogus",
  };
  for (const char* expect : expects) {
    const Frame f = next_frame(replies);
    EXPECT_EQ(f.status.rfind("ERR ", 0), 0u) << f.status;
    EXPECT_NE(f.status.find(expect), std::string::npos)
        << "want '" << expect << "' in: " << f.status;
  }
  const Frame bye = next_frame(replies);
  EXPECT_EQ(bye.status, "OK 0 bye");
}

// --------------------------------------------------- epoll front-end (TCP)

#if defined(__linux__)

/// A RoutingService + EventLoop pair running on a background thread.
class TestServer {
 public:
  TestServer()
      : service_(service_options()), loop_(service_, net::EventLoopOptions()),
        thread_([this] { loop_.run(); }) {}

  ~TestServer() {
    loop_.stop();
    thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return loop_.port(); }
  [[nodiscard]] serve::RoutingService& service() noexcept { return service_; }

 private:
  static serve::RoutingService::Options service_options() {
    serve::RoutingService::Options opts;
    opts.workers = 2;
    return opts;
  }

  serve::RoutingService service_;
  net::EventLoop loop_;
  std::thread thread_;
};

void send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(w, 0);
    off += static_cast<std::size_t>(w);
  }
}

TEST(EventLoopPipeline, PipelinedGenRouteDetailVerifyStats) {
  // The acceptance sequence, all five frames in ONE TCP segment: the GEN
  // must act as an ordering barrier (the ROUTE and stages are parked until
  // the synthesized session exists), and every response must arrive
  // complete, correct, and in request order.
  TestServer server;
  const std::string text = workload_text(9, 12, 5);
  const std::string key = serve::SessionCache::content_key(text);
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult ref = route::NetlistRouter(lay).route_all();

  const net::ScopedFd sock = net::tcp_connect(server.port());
  serve::FdTransport transport(sock.get());
  send_all(sock.get(), std::string(kGenLine) + "ROUTE " + key + "\nDETAIL " +
                           key + "\nVERIFY " + key + "\nSTATS\nQUIT\n");

  const Frame gen = next_frame(transport.in());
  ASSERT_EQ(gen.status.rfind("OK 0 session=" + key, 0), 0u) << gen.status;
  EXPECT_NE(gen.status.find(" gen=standard"), std::string::npos);

  const Frame route = next_frame(transport.in());
  ASSERT_EQ(route.status.rfind("OK ", 0), 0u) << route.status;
  EXPECT_EQ(io::read_routes_string(route.body, lay).total_wirelength,
            ref.total_wirelength);

  const Frame detail = next_frame(transport.in());
  ASSERT_EQ(detail.status.rfind("OK ", 0), 0u) << detail.status;
  const auto want_detail =
      reference_stage(lay, ref, pipeline::StageKind::kDetail);
  ASSERT_NE(want_detail, nullptr);
  EXPECT_NE(detail.status.find("stage=detail cached=0"), std::string::npos)
      << detail.status;
  EXPECT_EQ(detail.body, want_detail->body);

  const Frame verify = next_frame(transport.in());
  ASSERT_EQ(verify.status.rfind("OK ", 0), 0u) << verify.status;
  const auto want_verify =
      reference_stage(lay, ref, pipeline::StageKind::kVerify);
  ASSERT_NE(want_verify, nullptr);
  EXPECT_NE(verify.status.find(want_verify->meta), std::string::npos)
      << verify.status;
  EXPECT_EQ(verify.body, want_verify->body);

  // STATS *executes* at dispatch — possibly while a pipelined stage is
  // still on a worker — so only the GEN (whose barrier ordered it) is
  // guaranteed visible in the body; the settled counters are checked on a
  // post-drain snapshot below.
  const Frame stats = next_frame(transport.in());
  ASSERT_EQ(stats.status.rfind("OK ", 0), 0u) << stats.status;
  EXPECT_NE(stats.body.find("gens_ok 1"), std::string::npos) << stats.body;
  const Frame bye = next_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");
  char c = 0;
  EXPECT_EQ(::recv(sock.get(), &c, 1, 0), 0);  // clean close, stream intact

  const serve::MetricsSnapshot snap = server.service().snapshot();
  EXPECT_EQ(snap.gens_ok, 1u);
  EXPECT_EQ(snap.stages_ok, 2u);
  EXPECT_EQ(snap.stage_cache_misses, 2u);
}

TEST(EventLoopPipeline, FrontEndsAnswerPipelineVerbsIdentically) {
  // The same command sequence through serve_connection (blocking) and the
  // epoll loop (TCP) must produce byte-identical frames once the timing
  // fields — the only legitimately nondeterministic bytes — are stripped.
  const std::string text = workload_text(9, 12, 5);
  const std::string key = serve::SessionCache::content_key(text);
  const std::string script = std::string(kGenLine) + "ROUTE " + key +
                             "\nDETAIL " + key + "\nCONGEST " + key +
                             "\nVERIFY " + key + "\nSVG " + key + "\nQUIT\n";
  constexpr std::size_t kFrames = 7;

  std::vector<std::pair<std::string, std::string>> blocking;
  {
    std::istringstream replies(run_protocol(script));
    for (std::size_t i = 0; i < kFrames; ++i) {
      const Frame f = next_frame(replies);
      blocking.emplace_back(strip_timing(f.status), f.body);
    }
  }

  std::vector<std::pair<std::string, std::string>> epoll;
  {
    TestServer server;
    const net::ScopedFd sock = net::tcp_connect(server.port());
    serve::FdTransport transport(sock.get());
    send_all(sock.get(), script);
    for (std::size_t i = 0; i < kFrames; ++i) {
      const Frame f = next_frame(transport.in());
      epoll.emplace_back(strip_timing(f.status), f.body);
    }
  }

  ASSERT_EQ(blocking.size(), epoll.size());
  for (std::size_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(blocking[i].first, epoll[i].first) << "frame " << i;
    EXPECT_EQ(blocking[i].second, epoll[i].second) << "frame " << i;
  }
}

TEST(EventLoopPipeline, StageVerbRejectionsOverTcp) {
  TestServer server;
  const net::ScopedFd sock = net::tcp_connect(server.port());
  serve::FdTransport transport(sock.get());
  send_all(sock.get(), "DETAIL deadbeef\nGEN standard cells=9\nSVG "
                       "deadbeef scale=1000\nQUIT\n");
  const Frame missing = next_frame(transport.in());
  EXPECT_EQ(missing.status.rfind("ERR ", 0), 0u) << missing.status;
  EXPECT_NE(missing.status.find("session_not_found"), std::string::npos);
  const Frame seedless = next_frame(transport.in());
  EXPECT_EQ(seedless.status.rfind("ERR ", 0), 0u) << seedless.status;
  EXPECT_NE(seedless.status.find("seed"), std::string::npos);
  const Frame scale = next_frame(transport.in());
  EXPECT_EQ(scale.status.rfind("ERR ", 0), 0u) << scale.status;
  const Frame bye = next_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");
}

#else  // !__linux__

TEST(EventLoopPipeline, RequiresLinux) {
  GTEST_SKIP() << "epoll front-end tests require Linux";
}

#endif  // __linux__

}  // namespace
