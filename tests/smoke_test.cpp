// End-to-end smoke: build a tiny layout, route a net gridlessly, compare
// against the Lee-Moore baseline and the track-graph oracle.

#include <gtest/gtest.h>

#include "core/gridless_router.hpp"
#include "core/track_graph.hpp"
#include "grid/lee_moore.hpp"
#include "workload/figures.hpp"

namespace {

using namespace gcr;

TEST(Smoke, Figure1RoutesAndAgreesWithBaselines) {
  const workload::PointQuery q = workload::figure1_layout();
  ASSERT_TRUE(q.layout.valid());

  const spatial::ObstacleIndex index(q.layout.boundary(), q.layout.obstacles());
  const spatial::EscapeLineSet lines(index);

  const route::GridlessRouter router(index, lines);
  const route::Route r = router.route(q.s, q.d);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length * route::kCostScale, r.cost);

  // Oracle: explicit track-graph Dijkstra.
  const route::TrackGraph oracle(index, lines);
  EXPECT_EQ(oracle.shortest_length(q.s, q.d), r.length);

  // Grid baseline at pitch 1 must agree on length and expand far more nodes.
  const grid::GridGraph gg(index, 1);
  const grid::LeeMooreRouter lee(gg);
  const grid::GridRoute gr = lee.route(q.s, q.d);
  ASSERT_TRUE(gr.found);
  EXPECT_EQ(gr.length, r.length);
  EXPECT_GT(gr.stats.nodes_expanded, r.stats.nodes_expanded);
}

}  // namespace
