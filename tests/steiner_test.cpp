// Tests for multi-terminal net construction: the paper's Steiner
// approximation (segments as connection points), multi-pin terminal
// grouping, and failure handling.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/steiner.hpp"
#include "core/track_graph.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Rect;
using geom::Segment;

struct Fixture {
  spatial::ObstacleIndex index;
  spatial::EscapeLineSet lines;
  route::SteinerNetRouter router;

  explicit Fixture(std::vector<Rect> obstacles = {},
                   Rect boundary = Rect{0, 0, 100, 100})
      : index(boundary, std::move(obstacles)),
        lines(index),
        router(index, lines) {}
};

geom::Cost tree_length(const route::NetRoute& nr) {
  geom::Cost len = 0;
  for (const Segment& s : nr.segments) len += s.length();
  return len;
}

TEST(Steiner, TwoTerminalNetIsPlainRoute) {
  const Fixture f;
  const auto nr = f.router.route_terminals({{{10, 10}}, {{60, 10}}});
  ASSERT_TRUE(nr.ok);
  EXPECT_EQ(nr.wirelength, 50);
  EXPECT_EQ(nr.connections.size(), 1u);
}

TEST(Steiner, ThreeTerminalSteinerBeatsStarTopology) {
  // T-shape: terminals at (10,50), (90,50), (50,10).  The Steiner tree
  // connects the third terminal to the *segment* joining the first two
  // (wirelength 80 + 40 = 120); a pins-only spanning tree needs 80 + 80.
  const Fixture f;
  const auto steiner =
      f.router.route_terminals({{{10, 50}}, {{90, 50}}, {{50, 10}}});
  ASSERT_TRUE(steiner.ok);
  EXPECT_EQ(steiner.wirelength, 120);

  route::SteinerOptions pins_only;
  pins_only.connect_to_segments = false;
  const auto spanning = f.router.route_terminals(
      {{{10, 50}}, {{90, 50}}, {{50, 10}}}, pins_only);
  ASSERT_TRUE(spanning.ok);
  EXPECT_EQ(spanning.wirelength, 160);
  EXPECT_LT(steiner.wirelength, spanning.wirelength);
}

TEST(Steiner, WirelengthMatchesSegmentSum) {
  const Fixture f;
  const auto nr = f.router.route_terminals(
      {{{10, 10}}, {{90, 20}}, {{40, 80}}, {{70, 60}}});
  ASSERT_TRUE(nr.ok);
  EXPECT_EQ(nr.wirelength, tree_length(nr));
}

TEST(Steiner, TreeTouchesEveryTerminal) {
  const Fixture f(std::vector<Rect>{{30, 30, 50, 70}});
  const std::vector<std::vector<Point>> terminals = {
      {{10, 10}}, {{90, 90}}, {{10, 90}}, {{90, 10}}};
  const auto nr = f.router.route_terminals(terminals);
  ASSERT_TRUE(nr.ok);
  for (const auto& pins : terminals) {
    const Point pin = pins[0];
    const bool touched =
        std::any_of(nr.segments.begin(), nr.segments.end(),
                    [&pin](const Segment& s) { return s.contains(pin); });
    EXPECT_TRUE(touched) << pin;
  }
}

TEST(Steiner, SegmentsAvoidObstacles) {
  const Fixture f(std::vector<Rect>{{30, 30, 50, 70}, {60, 10, 80, 40}});
  const auto nr = f.router.route_terminals(
      {{{10, 50}}, {{90, 50}}, {{55, 90}}, {{20, 5}}});
  ASSERT_TRUE(nr.ok);
  for (const Segment& s : nr.segments) {
    EXPECT_FALSE(f.index.segment_blocked(s)) << s;
  }
}

TEST(Steiner, MultiPinTerminalUsesClosestPin) {
  // Terminal B has pins on both sides of a wall; the router must connect to
  // the cheap (near) pin.
  const Fixture f(std::vector<Rect>{{40, 0, 60, 90}});
  const std::vector<std::vector<Point>> terminals = {
      {{10, 50}},                 // A: single pin, west of the wall
      {{40, 50}, {60, 50}},       // B: pins on the wall's west and east edges
  };
  const auto nr = f.router.route_terminals(terminals);
  ASSERT_TRUE(nr.ok);
  EXPECT_EQ(nr.wirelength, 30);  // straight to the west pin
}

TEST(Steiner, ConnectedPinsSeedLaterConnections) {
  // After a multi-pin terminal joins, its *other* pins become sources: the
  // third terminal (east of the wall) connects via B's east pin instead of
  // routing around the wall.
  const Fixture f(std::vector<Rect>{{40, 0, 60, 90}});
  const std::vector<std::vector<Point>> terminals = {
      {{10, 50}},
      {{40, 50}, {60, 50}},  // feed-through terminal
      {{90, 50}},
  };
  const auto nr = f.router.route_terminals(terminals);
  ASSERT_TRUE(nr.ok);
  // 30 (A to B west pin) + 30 (B east pin to C): the wall is never rounded.
  EXPECT_EQ(nr.wirelength, 60);
}

TEST(Steiner, SingleTerminalNetTrivialOk) {
  const Fixture f;
  const auto nr = f.router.route_terminals({{{10, 10}}});
  EXPECT_TRUE(nr.ok);
  EXPECT_TRUE(nr.segments.empty());
  EXPECT_EQ(nr.wirelength, 0);
}

TEST(Steiner, EmptyTerminalListNotOk) {
  const Fixture f;
  EXPECT_FALSE(f.router.route_terminals({}).ok);
  EXPECT_FALSE(f.router.route_terminals({{{10, 10}}, {}}).ok);
}

TEST(Steiner, StatsAccumulateAcrossConnections) {
  const Fixture f;
  const auto nr = f.router.route_terminals(
      {{{10, 10}}, {{90, 10}}, {{90, 90}}, {{10, 90}}});
  ASSERT_TRUE(nr.ok);
  EXPECT_EQ(nr.connections.size(), 3u);
  std::size_t total = 0;
  for (const auto& c : nr.connections) total += c.stats.nodes_expanded;
  EXPECT_EQ(nr.stats.nodes_expanded, total);
}

TEST(Steiner, RouteNetResolvesLayoutTerminals) {
  layout::Layout lay(Rect{0, 0, 100, 100});
  lay.set_min_separation(4);
  const auto a = lay.add_cell(layout::Cell{"a", Rect{10, 10, 30, 30}});
  const auto b = lay.add_cell(layout::Cell{"b", Rect{60, 60, 90, 90}});
  lay.cell(a).add_pin_terminal("p", Point{30, 20});
  lay.cell(b).add_pin_terminal("q", Point{60, 70});
  layout::Net net("n");
  net.add_terminal(layout::TerminalRef{a, 0});
  net.add_terminal(layout::TerminalRef{b, 0});

  const spatial::ObstacleIndex index(lay.boundary(), lay.obstacles());
  const spatial::EscapeLineSet lines(index);
  const route::SteinerNetRouter router(index, lines);
  const auto nr = router.route_net(lay, net);
  ASSERT_TRUE(nr.ok);
  EXPECT_EQ(nr.wirelength, manhattan(Point{30, 20}, Point{60, 70}));
}

TEST(Steiner, SteinerNeverWorseThanPinsOnlyTree) {
  // Property: on a seed sweep of terminal sets, segment-connection trees are
  // never longer than pins-only spanning trees.
  const Fixture f(std::vector<Rect>{{30, 30, 45, 60}, {60, 20, 75, 50}});
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<geom::Coord> coord(0, 100);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::vector<Point>> terminals;
    const int k = 3 + trial % 4;
    for (int t = 0; t < k; ++t) {
      Point p{coord(rng), coord(rng)};
      while (!f.index.routable(p)) p = Point{coord(rng), coord(rng)};
      terminals.push_back({p});
    }
    const auto steiner = f.router.route_terminals(terminals);
    route::SteinerOptions pins_only;
    pins_only.connect_to_segments = false;
    const auto spanning = f.router.route_terminals(terminals, pins_only);
    ASSERT_TRUE(steiner.ok);
    ASSERT_TRUE(spanning.ok);
    EXPECT_LE(steiner.wirelength, spanning.wirelength) << "trial " << trial;
  }
}

}  // namespace
