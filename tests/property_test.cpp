// Randomized cross-validation properties — the strongest correctness
// evidence in the suite.  On seed-swept random placements:
//   * gridless A* path length == explicit track-graph Dijkstra length
//     == unit-pitch Lee-Moore length (three independent implementations),
//   * paths are always geometrically legal,
//   * the A* cost respects the Manhattan lower bound,
//   * all admissible strategies agree on cost.

#include <gtest/gtest.h>

#include <random>

#include "core/gridless_router.hpp"
#include "core/track_graph.hpp"
#include "grid/lee_moore.hpp"
#include "workload/floorplan.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Rect;

struct World {
  layout::Layout lay;
  spatial::ObstacleIndex index;
  spatial::EscapeLineSet lines;

  explicit World(std::uint64_t seed, std::size_t cells, geom::Coord extent)
      : lay([&] {
          workload::FloorplanOptions opts;
          opts.seed = seed;
          opts.cell_count = cells;
          opts.boundary = Rect{0, 0, extent, extent};
          opts.min_separation = 4;
          return workload::random_floorplan(opts);
        }()),
        index(lay.boundary(), lay.obstacles()),
        lines(index) {}

  Point random_free_point(std::mt19937_64& rng) const {
    std::uniform_int_distribution<geom::Coord> c(0, lay.boundary().xhi);
    for (;;) {
      const Point p{c(rng), c(rng)};
      if (index.routable(p)) return p;
    }
  }
};

class RouteCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouteCrossValidation, GridlessMatchesOracleAndGrid) {
  const std::uint64_t seed = GetParam();
  const World w(seed, 8, 128);
  std::mt19937_64 rng(seed * 997 + 1);

  const route::GridlessRouter router(w.index, w.lines);
  const route::TrackGraph oracle(w.index, w.lines);
  const grid::GridGraph gg(w.index, 1);
  const grid::LeeMooreRouter lee(gg);

  for (int trial = 0; trial < 6; ++trial) {
    const Point a = w.random_free_point(rng);
    const Point b = w.random_free_point(rng);

    const auto r = router.route(a, b);
    ASSERT_TRUE(r.found) << "seed " << seed << " " << a << "->" << b;

    // Path legality.
    EXPECT_EQ(r.points.front(), a);
    EXPECT_EQ(r.points.back(), b);
    for (const auto& seg : r.segments()) {
      EXPECT_FALSE(w.index.segment_blocked(seg))
          << "seed " << seed << ": " << seg;
    }
    EXPECT_EQ(r.length, route::polyline_length(r.points));

    // Manhattan lower bound (admissibility).
    EXPECT_GE(r.length, manhattan(a, b));

    // Independent implementations agree.
    EXPECT_EQ(oracle.shortest_length(a, b), r.length)
        << "seed " << seed << " " << a << "->" << b;
    const auto lr = lee.route(a, b, search::Strategy::kAStar);
    ASSERT_TRUE(lr.found);
    EXPECT_EQ(lr.length, r.length) << "seed " << seed << " " << a << "->" << b;
  }
}

TEST_P(RouteCrossValidation, AdmissibleStrategiesAgreeOnCost) {
  const std::uint64_t seed = GetParam();
  const World w(seed, 6, 96);
  std::mt19937_64 rng(seed * 31 + 7);
  const route::GridlessRouter router(w.index, w.lines);

  for (int trial = 0; trial < 3; ++trial) {
    const Point a = w.random_free_point(rng);
    const Point b = w.random_free_point(rng);
    geom::Cost expected = -1;
    for (const auto strat :
         {search::Strategy::kAStar, search::Strategy::kBestFirst,
          search::Strategy::kExhaustive}) {
      route::RouteOptions opts;
      opts.strategy = strat;
      const auto r = router.route(a, b, opts);
      ASSERT_TRUE(r.found) << to_string(strat);
      if (expected < 0) {
        expected = r.cost;
      } else {
        EXPECT_EQ(r.cost, expected) << to_string(strat) << " seed " << seed;
      }
    }
  }
}

TEST_P(RouteCrossValidation, AStarNeverExpandsMoreThanBestFirst) {
  const std::uint64_t seed = GetParam();
  const World w(seed, 8, 128);
  std::mt19937_64 rng(seed * 131 + 5);
  const route::GridlessRouter router(w.index, w.lines);

  for (int trial = 0; trial < 3; ++trial) {
    const Point a = w.random_free_point(rng);
    const Point b = w.random_free_point(rng);
    route::RouteOptions astar{.strategy = search::Strategy::kAStar};
    route::RouteOptions dijkstra{.strategy = search::Strategy::kBestFirst};
    const auto ra = router.route(a, b, astar);
    const auto rd = router.route(a, b, dijkstra);
    ASSERT_TRUE(ra.found && rd.found);
    // The heuristic can only prune (consistent h): classic A* dominance.
    EXPECT_LE(ra.stats.nodes_expanded, rd.stats.nodes_expanded)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteCrossValidation,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
