// Tests for the network front-end: the incremental frame parser (split
// input, pipelining, oversize/overlong/fatal hardening), and the epoll
// event loop end-to-end over real TCP sockets — byte-by-byte frames,
// pipelined commands in one segment, slow-reader backpressure (suspension
// and hard-cap drop), disconnect-mid-route cancellation, and a
// many-clients smoke test asserting every client gets a correct,
// uninterleaved response stream.

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/netlist_router.hpp"
#include "core/optimize.hpp"
#include "io/route_dump.hpp"
#include "io/text_format.hpp"
#include "net/event_loop.hpp"
#include "net/frame_parser.hpp"
#include "net/reactor_pool.hpp"
#include "net/socket.hpp"
#include "serve/fd_stream.hpp"
#include "serve/layout_session.hpp"
#include "serve/protocol.hpp"
#include "serve/routing_service.hpp"
#include "workload/netgen.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using namespace gcr;
using Event = net::FrameParser::Event;
using Kind = net::FrameParser::EventKind;

// ------------------------------------------------------------ frame parser

std::vector<Event> feed_all(net::FrameParser& p, const std::string& bytes,
                            std::size_t chunk = SIZE_MAX) {
  std::vector<Event> out;
  for (std::size_t i = 0; i < bytes.size(); i += chunk) {
    p.feed(bytes.data() + i, std::min(chunk, bytes.size() - i), out);
  }
  return out;
}

TEST(FrameParser, OneByteAtATime) {
  net::FrameParser p;
  const auto events = feed_all(p, "ROUTE abc threads=2\r\n", 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, Kind::kCommand);
  EXPECT_EQ(events[0].line, "ROUTE abc threads=2");  // CR stripped
  EXPECT_TRUE(events[0].body.empty());
}

TEST(FrameParser, PipelinedCommandsInOneFeed) {
  net::FrameParser p;
  const auto events = feed_all(p, "STATS\n\n  \nQUIT\n");
  ASSERT_EQ(events.size(), 2u);  // blank lines are keep-alives, no event
  EXPECT_EQ(events[0].line, "STATS");
  EXPECT_EQ(events[1].line, "QUIT");
}

TEST(FrameParser, LoadBodySplitAcrossFeeds) {
  net::FrameParser p;
  std::vector<Event> out;
  p.feed("LOAD 5\nab", 9, out);
  EXPECT_TRUE(out.empty());  // body incomplete: nothing emitted yet
  EXPECT_EQ(p.buffered(), 2u);
  p.feed("cdeSTATS\n", 9, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, Kind::kCommand);
  EXPECT_EQ(out[0].line, "LOAD 5");
  EXPECT_EQ(out[0].body, "abcde");
  EXPECT_EQ(out[1].line, "STATS");
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(FrameParser, ZeroByteLoad) {
  net::FrameParser p;
  const auto events = feed_all(p, "LOAD 0\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].line, "LOAD 0");
  EXPECT_TRUE(events[0].body.empty());
}

TEST(FrameParser, OverlongLineDiscardedAndBounded) {
  net::FrameParser::Options opts;
  opts.max_line = 16;
  net::FrameParser p(opts);
  const std::string garbage(100, 'a');
  const auto events = feed_all(p, garbage + "\nSTATS\n", 7);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, Kind::kOverlongLine);
  EXPECT_NE(events[0].error.find("exceeds 16 bytes"), std::string::npos);
  EXPECT_EQ(events[1].kind, Kind::kCommand);
  EXPECT_EQ(events[1].line, "STATS");
  EXPECT_LE(p.buffered(), opts.max_line);
}

TEST(FrameParser, NeverendingLineStaysBounded) {
  // The attack the cap exists for: a peer streaming bytes with no LF must
  // not grow the parser's memory.
  net::FrameParser::Options opts;
  opts.max_line = 64;
  net::FrameParser p(opts);
  std::vector<Event> out;
  const std::string chunk(1024, 'x');
  for (int i = 0; i < 64; ++i) {
    p.feed(chunk.data(), chunk.size(), out);
    EXPECT_LE(p.buffered(), opts.max_line);
  }
  ASSERT_EQ(out.size(), 1u);  // reported once, then silently discarded
  EXPECT_EQ(out[0].kind, Kind::kOverlongLine);
}

TEST(FrameParser, OversizeLoadSkippedWithoutBuffering) {
  net::FrameParser::Options opts;
  opts.max_load = 8;
  net::FrameParser p(opts);
  const std::string body(100, 'b');
  const auto events = feed_all(p, "LOAD 100\n" + body + "STATS\n", 11);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, Kind::kOversizeLoad);
  EXPECT_EQ(events[1].kind, Kind::kCommand);
  EXPECT_EQ(events[1].line, "STATS");
  EXPECT_LE(p.buffered(), opts.max_line);
}

TEST(FrameParser, UnparsableLoadCountIsFatal) {
  net::FrameParser p;
  std::vector<Event> out;
  EXPECT_FALSE(p.feed("LOAD banana\nQUIT\n", 17, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, Kind::kFatal);
  EXPECT_NE(out[0].error.find("out of sync"), std::string::npos);
  EXPECT_TRUE(p.dead());
  // Bytes after the fatal frame are ignored: the stream position is lost.
  EXPECT_FALSE(p.feed("STATS\n", 6, out));
  EXPECT_EQ(out.size(), 1u);
}

TEST(FrameParser, FinishEofFlushesTrailingLine) {
  // The blocking front-end's getline serves a final line that the peer
  // never LF-terminated; EOF flush keeps the two front-ends in parity.
  net::FrameParser p;
  std::vector<Event> out;
  p.feed("STATS", 5, out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(p.finish_eof(out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, Kind::kCommand);
  EXPECT_EQ(out[0].line, "STATS");
  EXPECT_TRUE(p.dead());
}

TEST(FrameParser, FinishEofReportsTruncatedLoadBody) {
  net::FrameParser p;
  std::vector<Event> out;
  p.feed("LOAD 10\nabc", 11, out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(p.finish_eof(out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, Kind::kFatal);
  EXPECT_NE(out[0].error.find("truncated"), std::string::npos);
  // Clean EOF at a frame boundary flushes nothing.
  net::FrameParser q;
  std::vector<Event> none;
  q.feed("STATS\n", 6, none);
  none.clear();
  EXPECT_TRUE(q.finish_eof(none));
  EXPECT_TRUE(none.empty());
}

// --------------------------------------------------------------- event loop
//
// Real sockets, real epoll: these run only where the front-end exists.

#if defined(__linux__)

constexpr bool kHaveEventLoop = true;

/// A RoutingService + EventLoop pair running on a background thread.
class TestServer {
 public:
  explicit TestServer(
      const net::EventLoopOptions& lopts = net::EventLoopOptions(),
      const serve::RoutingService::Options& sopts =
          serve::RoutingService::Options())
      : service_(sopts), loop_(service_, lopts),
        thread_([this] { loop_.run(); }) {}

  ~TestServer() {
    loop_.stop();
    loop_.stop();  // force-close anything a test left dangling
    thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return loop_.port(); }
  [[nodiscard]] serve::RoutingService& service() noexcept { return service_; }
  [[nodiscard]] const net::EventLoopStats& stats() const noexcept {
    return loop_.stats();
  }

 private:
  serve::RoutingService service_;
  net::EventLoop loop_;
  std::thread thread_;
};

void send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    ASSERT_GT(w, 0) << "send failed: " << std::strerror(errno);
    off += static_cast<std::size_t>(w);
  }
}

struct Frame {
  std::string status;
  std::string body;
};

Frame read_frame(std::istream& in) {
  Frame f;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, f.status)));
  std::istringstream is(f.status);
  std::string kw;
  std::size_t nbytes = 0;
  is >> kw;
  if (kw == "OK" && (is >> nbytes) && nbytes > 0) {
    f.body.resize(nbytes);
    in.read(f.body.data(), static_cast<std::streamsize>(nbytes));
  }
  return f;
}

std::string workload_text(std::size_t cells, std::size_t nets,
                          std::uint64_t seed) {
  return io::write_layout_string(
      workload::standard_workload(cells, 512, nets, seed));
}

std::string load_frame(const std::string& text) {
  return "LOAD " + std::to_string(text.size()) + "\n" + text;
}

TEST(EventLoop, SplitFramesOneByteWrites) {
  TestServer server;
  const net::ScopedFd sock = net::tcp_connect(server.port());
  serve::FdTransport transport(sock.get());

  const std::string text = workload_text(9, 12, 3);
  const std::string script = load_frame(text) + "STATS\nQUIT\n";
  for (const char c : script) {
    send_all(sock.get(), std::string(1, c));
  }
  const Frame load = read_frame(transport.in());
  EXPECT_EQ(load.status.rfind("OK 0 session=", 0), 0u) << load.status;
  const Frame stats = read_frame(transport.in());
  EXPECT_EQ(stats.status.rfind("OK ", 0), 0u);
  EXPECT_NE(stats.body.find("requests_submitted"), std::string::npos);
  const Frame bye = read_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(EventLoop, PipelinedCommandsInOneSegment) {
  TestServer server;
  const std::string text = workload_text(9, 12, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult reference =
      route::NetlistRouter(lay).route_all();
  const std::string key = serve::SessionCache::content_key(text);

  const net::ScopedFd sock = net::tcp_connect(server.port());
  serve::FdTransport transport(sock.get());

  // One TCP segment carrying four commands: the responses must come back
  // complete, correct, and in request order.
  send_all(sock.get(), load_frame(text) + "ROUTE " + key + "\nSTATS\nQUIT\n");

  const Frame load = read_frame(transport.in());
  EXPECT_NE(load.status.find("session=" + key), std::string::npos);
  const Frame route = read_frame(transport.in());
  ASSERT_EQ(route.status.rfind("OK ", 0), 0u) << route.status;
  const route::NetlistResult parsed = io::read_routes_string(route.body, lay);
  EXPECT_EQ(parsed.total_wirelength, reference.total_wirelength);
  EXPECT_EQ(parsed.routed, reference.routed);
  const Frame stats = read_frame(transport.in());
  // STATS *executes* at dispatch — possibly while the pipelined ROUTE is
  // still on a worker — so assert on the submission counter, which is
  // bumped synchronously before STATS runs.  Its *response* still arrives
  // strictly after the ROUTE response (sequencing), which read order here
  // has already proven.
  EXPECT_NE(stats.body.find("requests_submitted 1"), std::string::npos)
      << stats.body;
  const Frame bye = read_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");
  // After QUIT's response the server closes: clean EOF, not a reset.
  char c = 0;
  EXPECT_EQ(::recv(sock.get(), &c, 1, 0), 0);
}

TEST(EventLoop, TrailingLineWithoutNewlineServedOnHalfClose) {
  // Parity with the blocking front-end: a client that sends its last
  // command without a newline and half-closes still gets its response.
  TestServer server;
  const net::ScopedFd sock = net::tcp_connect(server.port());
  serve::FdTransport transport(sock.get());
  send_all(sock.get(), "STATS");  // no LF
  ASSERT_EQ(::shutdown(sock.get(), SHUT_WR), 0);
  const Frame stats = read_frame(transport.in());
  EXPECT_EQ(stats.status.rfind("OK ", 0), 0u) << stats.status;
  EXPECT_NE(stats.body.find("requests_submitted"), std::string::npos);
  char c = 0;
  EXPECT_EQ(::recv(sock.get(), &c, 1, 0), 0);  // then a clean close
}

TEST(EventLoop, ErrorsAndHardeningOverTcp) {
  TestServer server;
  const net::ScopedFd sock = net::tcp_connect(server.port());
  serve::FdTransport transport(sock.get());

  // Unknown command with embedded control bytes: the echo must be clamped.
  send_all(sock.get(), "NO\x1b[31mPE\n");
  const Frame err = read_frame(transport.in());
  EXPECT_EQ(err.status.rfind("ERR ", 0), 0u);
  EXPECT_EQ(err.status.find('\x1b'), std::string::npos);

  // Overlong command line: ERR, then the connection keeps serving.
  send_all(sock.get(),
           std::string(serve::kMaxCommandLine + 10, 'z') + "\nSTATS\n");
  const Frame overlong = read_frame(transport.in());
  EXPECT_NE(overlong.status.find("exceeds"), std::string::npos);
  const Frame stats = read_frame(transport.in());
  EXPECT_EQ(stats.status.rfind("OK ", 0), 0u);

  // Unparsable LOAD count: ERR, then the server closes the connection.
  send_all(sock.get(), "LOAD banana\nSTATS\n");
  const Frame fatal = read_frame(transport.in());
  EXPECT_NE(fatal.status.find("out of sync"), std::string::npos);
  char c = 0;
  EXPECT_EQ(::recv(sock.get(), &c, 1, 0), 0);  // EOF, no STATS response
}

TEST(EventLoop, ManyClientsEachGetCorrectUninterleavedResponses) {
  serve::RoutingService::Options sopts;
  sopts.workers = 4;
  sopts.queue_capacity = 256;
  TestServer server(net::EventLoopOptions(), sopts);

  const std::string text = workload_text(9, 12, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult reference =
      route::NetlistRouter(lay).route_all();
  const std::string key = serve::SessionCache::content_key(text);

  constexpr std::size_t kClients = 16;
  constexpr std::size_t kPerClient = 3;
  std::vector<int> mismatches(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const net::ScopedFd sock = net::tcp_connect(server.port());
      serve::FdTransport transport(sock.get());
      // Pipeline everything in one shot, then read all responses back.
      std::string script = load_frame(text);
      for (std::size_t q = 0; q < kPerClient; ++q) {
        script += "ROUTE " + key + "\n";
      }
      script += "QUIT\n";
      send_all(sock.get(), script);

      const Frame load = read_frame(transport.in());
      if (load.status.rfind("OK 0 session=" + key, 0) != 0) ++mismatches[c];
      for (std::size_t q = 0; q < kPerClient; ++q) {
        const Frame route = read_frame(transport.in());
        if (route.status.rfind("OK ", 0) != 0) {
          ++mismatches[c];
          continue;
        }
        try {
          const route::NetlistResult parsed =
              io::read_routes_string(route.body, lay);
          if (parsed.total_wirelength != reference.total_wirelength ||
              parsed.routed != reference.routed) {
            ++mismatches[c];
          }
        } catch (const std::exception&) {
          ++mismatches[c];  // interleaved/corrupt body would not parse
        }
      }
      const Frame bye = read_frame(transport.in());
      if (bye.status != "OK 0 bye") ++mismatches[c];
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[c], 0) << "client " << c;
  }
  EXPECT_EQ(server.stats().accepted.load(), kClients);
  EXPECT_EQ(server.service().snapshot().requests_ok, kClients * kPerClient);
}

TEST(EventLoop, SlowReaderIsSuspendedThenServedOnceItDrains) {
  net::EventLoopOptions lopts;
  lopts.write_high_water = 2048;   // a couple of route dumps
  lopts.write_hard_cap = 64 << 20;  // never dropped in this test
  lopts.so_sndbuf = 1;  // minimal kernel buffering: the marks must bite
  serve::RoutingService::Options sopts;
  sopts.workers = 2;
  sopts.queue_capacity = 256;
  TestServer server(lopts, sopts);

  const std::string text = workload_text(9, 12, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult reference =
      route::NetlistRouter(lay).route_all();
  const std::string key = serve::SessionCache::content_key(text);

  // A deliberately slow reader: a minimal receive window, so the kernel
  // cannot absorb responses on this client's behalf — they must pile up in
  // the server's user-space backlog where the marks can see them.
  const net::ScopedFd sock = net::tcp_connect(server.port(), 1);
  serve::FdTransport transport(sock.get());

  // Pipeline far more responses than the high-water mark holds, without
  // reading any of them.
  constexpr std::size_t kRequests = 24;
  std::string script = load_frame(text);
  for (std::size_t q = 0; q < kRequests; ++q) {
    script += "ROUTE " + key + "\n";
  }
  send_all(sock.get(), script);

  // The server must hit the high-water mark and suspend this connection's
  // reads rather than buffer without bound.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (server.stats().reads_suspended.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(server.stats().reads_suspended.load(), 0u);
  EXPECT_EQ(server.stats().dropped_slow.load(), 0u);

  // Now drain like a healthy client: every response arrives, in order.
  const Frame load = read_frame(transport.in());
  EXPECT_EQ(load.status.rfind("OK 0 session=", 0), 0u);
  for (std::size_t q = 0; q < kRequests; ++q) {
    const Frame route = read_frame(transport.in());
    ASSERT_EQ(route.status.rfind("OK ", 0), 0u) << "request " << q;
    const route::NetlistResult parsed =
        io::read_routes_string(route.body, lay);
    EXPECT_EQ(parsed.total_wirelength, reference.total_wirelength);
  }
  send_all(sock.get(), "QUIT\n");
  const Frame bye = read_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(EventLoop, SynchronousCommandBurstIsDeferredNotDropped) {
  // One TCP segment carrying hundreds of cheap synchronously-answered
  // commands: their responses alone would blow far past the hard cap if
  // dispatched eagerly.  The loop must park the surplus (bounding the
  // backlog) and serve every command once the client drains — a healthy
  // fast reader must never hit the slow-reader drop path.
  net::EventLoopOptions lopts;
  lopts.write_high_water = 2048;  // a handful of STATS bodies
  lopts.write_hard_cap = 8192;
  TestServer server(lopts);

  const net::ScopedFd sock = net::tcp_connect(server.port());
  serve::FdTransport transport(sock.get());

  constexpr std::size_t kBurst = 300;  // ~450 B/response >> hard cap
  std::string script;
  for (std::size_t q = 0; q < kBurst; ++q) script += "STATS\n";
  script += "QUIT\n";
  send_all(sock.get(), script);

  for (std::size_t q = 0; q < kBurst; ++q) {
    const Frame stats = read_frame(transport.in());
    ASSERT_EQ(stats.status.rfind("OK ", 0), 0u) << "response " << q;
    ASSERT_NE(stats.body.find("requests_submitted"), std::string::npos);
  }
  const Frame bye = read_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");
  EXPECT_EQ(server.stats().dropped_slow.load(), 0u);
  EXPECT_GT(server.stats().reads_suspended.load(), 0u);
  EXPECT_EQ(server.stats().commands.load(), kBurst + 1);
}

TEST(EventLoop, SlowReaderBeyondHardCapIsDropped) {
  net::EventLoopOptions lopts;
  lopts.write_high_water = 1024;
  lopts.write_hard_cap = 4096;  // a few dumps overflow this
  lopts.so_sndbuf = 1;          // minimal kernel buffering
  serve::RoutingService::Options sopts;
  sopts.workers = 2;
  sopts.queue_capacity = 256;
  TestServer server(lopts, sopts);

  const std::string text = workload_text(9, 12, 7);
  const std::string key = serve::SessionCache::content_key(text);

  const net::ScopedFd sock = net::tcp_connect(server.port(), 1);
  std::string script = load_frame(text);
  for (std::size_t q = 0; q < 32; ++q) {
    script += "ROUTE " + key + "\n";
  }
  send_all(sock.get(), script);

  // Never read: responses accumulate past the hard cap and the server must
  // cut this connection loose.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (server.stats().dropped_slow.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.stats().dropped_slow.load(), 1u);

  // The server itself must stay healthy for other clients.
  const net::ScopedFd probe = net::tcp_connect(server.port());
  serve::FdTransport transport(probe.get());
  send_all(probe.get(), "STATS\nQUIT\n");
  const Frame stats = read_frame(transport.in());
  EXPECT_EQ(stats.status.rfind("OK ", 0), 0u);
  const Frame bye = read_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(EventLoop, FailFastRouteBurstIsBoundedAndServed) {
  // ROUTEs that fail at admission (unknown session) complete inline and
  // park their ERR frames in the wakeup mailbox, where the *byte* marks
  // cannot see them.  A single segment of thousands of such commands must
  // hit the per-connection in-flight cap — parking the surplus instead of
  // growing the mailbox without bound — and still answer every one, in
  // order.
  TestServer server;  // default max_inflight = 256

  const net::ScopedFd sock = net::tcp_connect(server.port());
  serve::FdTransport transport(sock.get());

  constexpr std::size_t kBurst = 2000;
  std::string script;
  for (std::size_t q = 0; q < kBurst; ++q) {
    script += "ROUTE feedfacefeedface\n";
  }
  script += "QUIT\n";
  send_all(sock.get(), script);

  for (std::size_t q = 0; q < kBurst; ++q) {
    const Frame err = read_frame(transport.in());
    ASSERT_EQ(err.status.rfind("ERR session_not_found", 0), 0u)
        << "response " << q << ": " << err.status;
  }
  const Frame bye = read_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");
  EXPECT_GT(server.stats().reads_suspended.load(), 0u)
      << "the in-flight cap should have parked the burst's tail";
  EXPECT_EQ(server.stats().dropped_slow.load(), 0u);
  EXPECT_EQ(server.service().snapshot().requests_not_found, kBurst);
}

TEST(EventLoop, DisconnectMidRouteCancelsQueuedWork) {
  serve::RoutingService::Options sopts;
  sopts.workers = 1;  // serialize routing so most requests sit queued
  sopts.queue_capacity = 64;
  TestServer server(net::EventLoopOptions(), sopts);

  // A workload slow enough (~tens of ms a route) that the disconnect lands
  // while requests are still queued.
  const std::string text = workload_text(25, 40, 105);
  const std::string key = serve::SessionCache::content_key(text);

  constexpr std::size_t kRequests = 8;
  {
    const net::ScopedFd sock = net::tcp_connect(server.port());
    serve::FdTransport transport(sock.get());
    send_all(sock.get(), load_frame(text));
    const Frame load = read_frame(transport.in());
    ASSERT_EQ(load.status.rfind("OK 0 session=", 0), 0u);
    std::string script;
    for (std::size_t q = 0; q < kRequests; ++q) {
      script += "ROUTE " + key + "\n";
    }
    send_all(sock.get(), script);
    // Vanish without reading a single response.
  }

  // Every submitted request must settle: routed before the disconnect was
  // noticed, or cancelled at dequeue via the dropped connection's token.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  for (;;) {
    const serve::MetricsSnapshot snap = server.service().snapshot();
    const std::uint64_t settled = snap.requests_ok + snap.requests_cancelled +
                                  snap.requests_errored +
                                  snap.requests_expired;
    if (snap.requests_submitted >= kRequests && settled >= kRequests &&
        snap.queue_depth == 0) {
      EXPECT_GE(snap.requests_cancelled, 1u)
          << "disconnect should cancel still-queued requests";
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      ADD_FAILURE() << "requests did not settle after disconnect";
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // And the loop keeps serving fresh connections afterwards.
  const net::ScopedFd probe = net::tcp_connect(server.port());
  serve::FdTransport transport(probe.get());
  send_all(probe.get(), "STATS\nQUIT\n");
  const Frame stats = read_frame(transport.in());
  EXPECT_EQ(stats.status.rfind("OK ", 0), 0u);
  const Frame bye = read_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(EventLoop, RouteNetSubsetOverTcp) {
  TestServer server;
  const std::string text = workload_text(9, 12, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult reference =
      route::NetlistRouter(lay).route_all();
  const std::string key = serve::SessionCache::content_key(text);
  ASSERT_GE(lay.nets().size(), 2u);
  const std::string& first = lay.nets()[0].name();
  const std::string& second = lay.nets()[1].name();

  const net::ScopedFd sock = net::tcp_connect(server.port());
  serve::FdTransport transport(sock.get());
  send_all(sock.get(), load_frame(text) + "ROUTE " + key + " nets=" + second +
                           "," + first + "\nROUTE " + key +
                           " nets=no_such_net\nQUIT\n");

  (void)read_frame(transport.in());  // LOAD
  const Frame subset = read_frame(transport.in());
  ASSERT_EQ(subset.status.rfind("OK ", 0), 0u) << subset.status;
  EXPECT_NE(subset.status.find("routed=2 "), std::string::npos);
  // The dump covers exactly the requested nets, in request order, and each
  // route matches the full-netlist reference bit-for-bit.
  const route::NetlistResult parsed = io::read_routes_string(subset.body, lay);
  EXPECT_EQ(parsed.routed, 2u);
  EXPECT_EQ(parsed.routes[0].segments, reference.routes[0].segments);
  EXPECT_EQ(parsed.routes[1].segments, reference.routes[1].segments);
  EXPECT_EQ(subset.body.rfind("route " + second + " ", 0), 0u)
      << "dump must begin with the first requested net";

  const Frame unknown = read_frame(transport.in());
  EXPECT_EQ(unknown.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(unknown.status.find("unknown net 'no_such_net'"),
            std::string::npos);
  const Frame bye = read_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");
}

TEST(EventLoop, RerouteOverTcp) {
  // REROUTE end to end over the epoll front-end — pipelined in the same
  // segment as the LOAD, which since the LOAD offload also exercises the
  // connection's load barrier: the REROUTE must not be admitted (and fail
  // session_not_found) before the offloaded build finishes.
  TestServer server;
  const std::string text = workload_text(9, 12, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const std::string key = serve::SessionCache::content_key(text);
  ASSERT_GE(lay.nets().size(), 3u);
  const std::string& a = lay.nets()[2].name();
  const std::string& b = lay.nets()[0].name();

  route::NetlistOptions ropts;
  ropts.mode = route::NetlistMode::kSequential;
  ropts.reroute = {2, 0};
  const route::NetlistResult want =
      route::NetlistRouter(lay).route_all(ropts);
  const std::string want_dump =
      io::write_routes_string(lay, want, ropts.reroute);

  const net::ScopedFd sock = net::tcp_connect(server.port());
  serve::FdTransport transport(sock.get());
  send_all(sock.get(), load_frame(text) + "REROUTE " + key + " nets=" + a +
                           "," + b + "\nREROUTE " + key +
                           "\nREROUTE " + key + " mode=independent nets=" +
                           a + "\nQUIT\n");

  const Frame load = read_frame(transport.in());
  EXPECT_EQ(load.status.rfind("OK 0 session=", 0), 0u) << load.status;
  const Frame reroute = read_frame(transport.in());
  ASSERT_EQ(reroute.status.rfind("OK ", 0), 0u) << reroute.status;
  EXPECT_NE(reroute.status.find("routed=" + std::to_string(want.routed) +
                                " failed=" + std::to_string(want.failed)),
            std::string::npos)
      << reroute.status;
  EXPECT_EQ(reroute.body, want_dump)
      << "REROUTE dump must reproduce the rip-up driver bit-for-bit";

  const Frame missing = read_frame(transport.in());
  EXPECT_EQ(missing.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(missing.status.find("REROUTE needs nets="), std::string::npos);
  const Frame badmode = read_frame(transport.in());
  EXPECT_EQ(badmode.status.rfind("ERR ", 0), 0u);
  EXPECT_NE(badmode.status.find("always sequential"), std::string::npos);
  const Frame bye = read_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");
}

/// One parsed `PASS <i> wirelength=<w> overflow=<o>` progress line.
struct PassLine {
  std::size_t pass = 0;
  long long wirelength = 0;
  long long overflow = 0;
};

/// Reads an OPTIMIZE reply off a socket stream: any number of PASS progress
/// lines, then the terminating OK/ERR frame.  No seeking (sockets cannot
/// rewind) — the first non-PASS line *is* the status line.
std::pair<std::vector<PassLine>, Frame> read_optimize_reply(std::istream& in) {
  std::vector<PassLine> passes;
  std::string line;
  for (;;) {
    if (!std::getline(in, line)) {
      ADD_FAILURE() << "stream ended inside an OPTIMIZE reply";
      return {passes, {}};
    }
    if (line.rfind("PASS ", 0) == 0) {
      PassLine p;
      EXPECT_EQ(std::sscanf(line.c_str(),
                            "PASS %zu wirelength=%lld overflow=%lld", &p.pass,
                            &p.wirelength, &p.overflow),
                3)
          << line;
      passes.push_back(p);
      continue;
    }
    Frame f;
    f.status = line;
    std::istringstream is(line);
    std::string kw;
    std::size_t nbytes = 0;
    is >> kw;
    if (kw == "OK" && (is >> nbytes) && nbytes > 0) {
      f.body.resize(nbytes);
      in.read(f.body.data(), static_cast<std::streamsize>(nbytes));
    }
    return {passes, f};
  }
}

TEST(EventLoop, OptimizeStreamsPassLinesInPipelineOrder) {
  // OPTIMIZE over the epoll front-end, pipelined between a ROUTE and a
  // STATS in one TCP segment.  The PASS progress lines must stream inside
  // the OPTIMIZE's slot of the response sequence: after the ROUTE's frame
  // (the partials park with their ticket while the earlier response is
  // pending), before the final OPTIMIZE frame, never interleaved into the
  // STATS reply.
  TestServer server;
  const std::string text = workload_text(12, 24, 7);
  const layout::Layout lay = io::read_layout_string(text);
  const route::NetlistResult ref = route::NetlistRouter(lay).route_all();
  const route::OptimizeReport direct = route::Optimizer(lay).run();
  const std::string key = serve::SessionCache::content_key(text);

  const net::ScopedFd sock = net::tcp_connect(server.port());
  serve::FdTransport transport(sock.get());
  send_all(sock.get(), load_frame(text) + "ROUTE " + key + "\nOPTIMIZE " +
                           key + "\nSTATS\nQUIT\n");

  const Frame load = read_frame(transport.in());
  EXPECT_EQ(load.status.rfind("OK 0 session=", 0), 0u) << load.status;
  const Frame route = read_frame(transport.in());
  ASSERT_EQ(route.status.rfind("OK ", 0), 0u) << route.status;
  EXPECT_EQ(io::read_routes_string(route.body, lay).total_wirelength,
            ref.total_wirelength);

  const auto [passes, frame] = read_optimize_reply(transport.in());
  ASSERT_EQ(frame.status.rfind("OK ", 0), 0u) << frame.status;
  ASSERT_EQ(passes.size(), direct.passes.size());
  for (std::size_t i = 0; i < passes.size(); ++i) {
    EXPECT_EQ(passes[i].pass, i + 1);
    EXPECT_EQ(passes[i].wirelength, direct.passes[i].wirelength);
    EXPECT_EQ(static_cast<std::size_t>(passes[i].overflow),
              direct.passes[i].overflow);
    if (i > 0) {
      EXPECT_LE(passes[i].wirelength, passes[i - 1].wirelength);
      EXPECT_LE(passes[i].overflow, passes[i - 1].overflow);
    }
  }
  EXPECT_NE(frame.status.find("passes=" +
                              std::to_string(direct.passes.size())),
            std::string::npos)
      << frame.status;
  const route::NetlistResult parsed = io::read_routes_string(frame.body, lay);
  EXPECT_EQ(parsed.total_wirelength, direct.result.total_wirelength);
  EXPECT_EQ(parsed.routed, direct.result.routed);

  const Frame stats = read_frame(transport.in());
  ASSERT_EQ(stats.status.rfind("OK ", 0), 0u) << stats.status;
  EXPECT_NE(stats.body.find("requests_submitted"), std::string::npos);
  const Frame bye = read_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");
  char c = 0;
  EXPECT_EQ(::recv(sock.get(), &c, 1, 0), 0);  // clean close, stream intact

  // OPTIMIZE deadline_ms is capped like ROUTE's (the overflow bugfix).
  const net::ScopedFd cap = net::tcp_connect(server.port());
  serve::FdTransport cap_t(cap.get());
  send_all(cap.get(),
           "OPTIMIZE " + key + " deadline_ms=18446744073709551615\nQUIT\n");
  const Frame err = read_frame(cap_t.in());
  EXPECT_EQ(err.status.rfind("ERR ", 0), 0u) << err.status;
  EXPECT_NE(err.status.find("86400000"), std::string::npos) << err.status;
  const Frame cap_bye = read_frame(cap_t.in());
  EXPECT_EQ(cap_bye.status, "OK 0 bye");
}

TEST(EventLoop, LoadRunsOnWorkerPoolAndLoopStaysResponsive) {
  // The LOAD-stall fix: a cold LOAD (parse + environment build) must run
  // on the worker pool, not the loop thread, so other connections keep
  // getting served while it builds.
  serve::RoutingService::Options sopts;
  sopts.workers = 1;  // a single worker makes the queue trip observable
  TestServer server(net::EventLoopOptions(), sopts);

  // Big enough that the build takes real time (hundreds of escape-line
  // traces), small enough to stay fast under sanitizers.
  const std::string big = workload_text(48, 64, 11);
  const net::ScopedFd loader = net::tcp_connect(server.port());
  serve::FdTransport loader_t(loader.get());
  send_all(loader.get(), load_frame(big));

  // While the LOAD is (at least potentially) building, a second connection
  // must get an inline answer from the loop.  This is a liveness check —
  // deterministic ordering proof comes from the metrics below.
  const net::ScopedFd prober = net::tcp_connect(server.port());
  serve::FdTransport prober_t(prober.get());
  send_all(prober.get(), "STATS\n");
  const Frame stats = read_frame(prober_t.in());
  EXPECT_EQ(stats.status.rfind("OK ", 0), 0u) << stats.status;

  const Frame load = read_frame(loader_t.in());
  EXPECT_EQ(load.status.rfind("OK 0 session=", 0), 0u) << load.status;

  // The cold LOAD went through the pool exactly once...
  serve::MetricsSnapshot snap = server.service().snapshot();
  EXPECT_EQ(snap.loads_offloaded, 1u);
  EXPECT_EQ(snap.loads_ok, 1u);

  // ...and a repeat LOAD of resident content answers inline (a content
  // hash on the loop), not with a second pool trip.
  send_all(loader.get(), load_frame(big) + "QUIT\n");
  const Frame cached = read_frame(loader_t.in());
  EXPECT_NE(cached.status.find("cached=1"), std::string::npos)
      << cached.status;
  snap = server.service().snapshot();
  EXPECT_EQ(snap.loads_offloaded, 1u)
      << "a resident LOAD must not burn a worker-pool trip";
  EXPECT_EQ(snap.cache_hits, 1u);
  const Frame bye = read_frame(loader_t.in());
  EXPECT_EQ(bye.status, "OK 0 bye");

  // A malformed body still answers ERR through the offloaded path.
  const net::ScopedFd bad = net::tcp_connect(server.port());
  serve::FdTransport bad_t(bad.get());
  const std::string garbage = "boundary 0 0 10\nnonsense";
  send_all(bad.get(), "LOAD " + std::to_string(garbage.size()) + "\n" +
                          garbage + "QUIT\n");
  const Frame err = read_frame(bad_t.in());
  EXPECT_EQ(err.status.rfind("ERR ", 0), 0u) << err.status;
  const Frame bad_bye = read_frame(bad_t.in());
  EXPECT_EQ(bad_bye.status, "OK 0 bye");
  EXPECT_EQ(server.service().snapshot().loads_failed, 1u);
}

TEST(EventLoop, PipelinedLoadRouteBurstWaitsForOffloadedBuild) {
  // A cold LOAD and the ROUTEs that depend on it in one TCP segment: the
  // load barrier must park the ROUTEs until the offloaded build finishes
  // (admission resolves the session by handle), and responses must come
  // back complete and in order.  Two different layouts back to back also
  // prove the barrier re-arms.
  TestServer server;
  const std::string text_a = workload_text(9, 12, 7);
  const std::string text_b = workload_text(9, 12, 8);
  const std::string key_a = serve::SessionCache::content_key(text_a);
  const std::string key_b = serve::SessionCache::content_key(text_b);
  const layout::Layout lay_a = io::read_layout_string(text_a);
  const layout::Layout lay_b = io::read_layout_string(text_b);
  const route::NetlistResult ref_a = route::NetlistRouter(lay_a).route_all();
  const route::NetlistResult ref_b = route::NetlistRouter(lay_b).route_all();

  const net::ScopedFd sock = net::tcp_connect(server.port());
  serve::FdTransport transport(sock.get());
  send_all(sock.get(), load_frame(text_a) + "ROUTE " + key_a + "\n" +
                           "ROUTE " + key_a + "\n" + load_frame(text_b) +
                           "ROUTE " + key_b + "\nQUIT\n");

  const Frame load_a = read_frame(transport.in());
  EXPECT_NE(load_a.status.find("session=" + key_a), std::string::npos);
  for (int i = 0; i < 2; ++i) {
    const Frame route = read_frame(transport.in());
    ASSERT_EQ(route.status.rfind("OK ", 0), 0u) << route.status;
    const route::NetlistResult parsed =
        io::read_routes_string(route.body, lay_a);
    EXPECT_EQ(parsed.total_wirelength, ref_a.total_wirelength);
  }
  const Frame load_b = read_frame(transport.in());
  EXPECT_NE(load_b.status.find("session=" + key_b), std::string::npos);
  const Frame route_b = read_frame(transport.in());
  ASSERT_EQ(route_b.status.rfind("OK ", 0), 0u) << route_b.status;
  const route::NetlistResult parsed_b =
      io::read_routes_string(route_b.body, lay_b);
  EXPECT_EQ(parsed_b.total_wirelength, ref_b.total_wirelength);
  const Frame bye = read_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");
  EXPECT_GE(server.service().snapshot().loads_offloaded, 2u);
}

TEST(EventLoop, StatsCarriesLoopHealthAndTraceWorksOverTcp) {
  // The loop exports its own health (loop_* keys) into the STATS body via
  // RoutingService::set_extra_stats, and the TRACE verb + trace=1 knob work
  // end to end over the epoll front-end.
  TestServer server;
  const std::string text = workload_text(9, 12, 7);
  const std::string key = serve::SessionCache::content_key(text);

  const net::ScopedFd sock = net::tcp_connect(server.port());
  serve::FdTransport transport(sock.get());
  send_all(sock.get(), load_frame(text) + "ROUTE " + key + " trace=1\n");

  (void)read_frame(transport.in());  // LOAD
  const Frame route = read_frame(transport.in());
  ASSERT_EQ(route.status.rfind("OK ", 0), 0u) << route.status;
  // Span breakdown rides the response meta when asked for...
  EXPECT_NE(route.status.find("span_exec_us="), std::string::npos)
      << route.status;
  EXPECT_NE(route.status.find("span_parse_us="), std::string::npos);

  // STATS and TRACE are answered inline on the loop thread the moment they
  // are parsed (their *responses* still sequence after earlier frames, but
  // their *content* is computed immediately) — so they only observe the
  // ROUTE deterministically once its response has been read back, which
  // happens-after the worker recorded the histogram and ring entries.
  send_all(sock.get(), "STATS\nTRACE n=4\nQUIT\n");
  const Frame stats = read_frame(transport.in());
  ASSERT_EQ(stats.status.rfind("OK ", 0), 0u);
  // ...the service shards it per verb...
  EXPECT_NE(stats.body.find("verb_route_count 1"), std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("verb_load_count 1"), std::string::npos);
  // ...and the loop's own counters ride along.  The connection gauge and
  // byte counters are live: this very connection is connected and has sent
  // bytes.
  EXPECT_NE(stats.body.find("loop_connections 1"), std::string::npos)
      << stats.body;
  for (const char* k :
       {"loop_accepted", "loop_commands", "loop_reads_suspended",
        "loop_dropped_slow", "loop_dropped_error", "loop_parked",
        "loop_replayed", "loop_bytes_in", "loop_bytes_out", "loop_wakeups",
        "loop_lag_p50_us", "loop_lag_p95_us", "loop_lag_p99_us"}) {
    EXPECT_NE(stats.body.find(std::string(k) + " "), std::string::npos) << k;
  }
  EXPECT_EQ(stats.body.find("loop_bytes_in 0\n"), std::string::npos)
      << "the LOAD alone sent hundreds of bytes";

  const Frame trace = read_frame(transport.in());
  ASSERT_EQ(trace.status.rfind("OK ", 0), 0u) << trace.status;
  EXPECT_NE(trace.status.find("count="), std::string::npos);
  // The traced ROUTE (and the offloaded LOAD) are in the ring.
  EXPECT_NE(trace.body.find("verb=route"), std::string::npos) << trace.body;
  EXPECT_NE(trace.body.find("session=" + key), std::string::npos);
  const Frame bye = read_frame(transport.in());
  EXPECT_EQ(bye.status, "OK 0 bye");

  // Once the client hangs up the gauge returns to zero — poll briefly, the
  // loop notices the close asynchronously.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.stats().connections.load() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.stats().connections.load(), 0u);
  EXPECT_GT(server.stats().bytes_out.load(), 0u);
  EXPECT_GT(server.stats().wakeups.load(), 0u);
}

TEST(EventLoop, UnixListenerServesSameProtocolAndUnlinksOnExit) {
  // --listen-unix: a second accept source on the same loop, same framing,
  // same Connection path.  The listener owns the path: bound at construction,
  // unlinked when the loop is torn down.
  const std::string path =
      "/tmp/gcr_net_test_" + std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());
  const std::string text = workload_text(9, 12, 7);
  const std::string key = serve::SessionCache::content_key(text);
  {
    net::EventLoopOptions lopts;
    lopts.unix_path = path;
    TestServer server(lopts);

    const net::ScopedFd un = net::unix_connect(path);
    serve::FdTransport transport(un.get());
    send_all(un.get(), load_frame(text) + "ROUTE " + key + "\nQUIT\n");
    const Frame load = read_frame(transport.in());
    EXPECT_EQ(load.status.rfind("OK ", 0), 0u) << load.status;
    const Frame route = read_frame(transport.in());
    ASSERT_EQ(route.status.rfind("OK ", 0), 0u) << route.status;
    EXPECT_NE(route.status.find("routed="), std::string::npos);
    EXPECT_FALSE(route.body.empty());
    const Frame bye = read_frame(transport.in());
    EXPECT_EQ(bye.status, "OK 0 bye");

    // The TCP listener coexists on the same loop — and both transports are
    // the same service: the unix-side LOAD is already cached here.
    const net::ScopedFd tcp = net::tcp_connect(server.port());
    serve::FdTransport ttrans(tcp.get());
    send_all(tcp.get(), "ROUTE " + key + "\nQUIT\n");
    const Frame troute = read_frame(ttrans.in());
    EXPECT_EQ(troute.status.rfind("OK ", 0), 0u) << troute.status;
  }
  // Loop gone ⇒ path gone (unlink-on-exit), so restarts never hit EADDRINUSE.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(ReactorPool, ShardsConnectionsAndAggregatesLoopStats) {
  // Four reactors, one port, one service.  Connections land on
  // kernel-chosen loops; STATS must carry the aggregate loop_* block (old
  // consumers), the reactor count, and the per-loop loop<i>_* shards.
  serve::RoutingService::Options sopts;
  sopts.workers = 2;
  serve::RoutingService service(sopts);
  net::ReactorPoolOptions popts;
  popts.reactors = 4;
  net::ReactorPool pool(service, popts);
  ASSERT_EQ(pool.size(), 4u);
  std::thread pool_thread([&] { pool.run(); });

  const std::string text = workload_text(9, 12, 7);
  const std::string key = serve::SessionCache::content_key(text);
  {
    // Enough connections that the reuseport hash almost surely spreads
    // them; correctness must hold regardless of the actual spread.
    std::vector<net::ScopedFd> socks;
    for (int i = 0; i < 8; ++i) {
      socks.push_back(net::tcp_connect(pool.port()));
    }
    for (std::size_t i = 0; i < socks.size(); ++i) {
      serve::FdTransport transport(socks[i].get());
      send_all(socks[i].get(), load_frame(text) + "ROUTE " + key + "\n");
      const Frame load = read_frame(transport.in());
      EXPECT_EQ(load.status.rfind("OK ", 0), 0u) << load.status;
      const Frame route = read_frame(transport.in());
      EXPECT_EQ(route.status.rfind("OK ", 0), 0u) << route.status;
    }

    // One more connection asks for STATS while the others are still open.
    const net::ScopedFd ssock = net::tcp_connect(pool.port());
    serve::FdTransport stransport(ssock.get());
    send_all(ssock.get(), "STATS\nQUIT\n");
    const Frame stats = read_frame(stransport.in());
    ASSERT_EQ(stats.status.rfind("OK ", 0), 0u) << stats.status;
    EXPECT_NE(stats.body.find("loop_reactors 4"), std::string::npos)
        << stats.body;
    // Aggregate block: 9 open connections across the pool, 9 accepts total.
    EXPECT_NE(stats.body.find("loop_connections 9"), std::string::npos)
        << stats.body;
    EXPECT_NE(stats.body.find("loop_accepted 9"), std::string::npos);
    EXPECT_NE(stats.body.find("loop_lag_p99_us "), std::string::npos);
    // Per-loop shards exist for every reactor, and the shard counters sum
    // to the aggregate.
    std::uint64_t accepted_sum = 0;
    for (int i = 0; i < 4; ++i) {
      const std::string shard_key =
          "loop" + std::to_string(i) + "_accepted ";
      const std::size_t at = stats.body.find(shard_key);
      ASSERT_NE(at, std::string::npos) << shard_key << "\n" << stats.body;
      accepted_sum += std::strtoull(
          stats.body.c_str() + at + shard_key.size(), nullptr, 10);
      EXPECT_NE(stats.body.find("loop" + std::to_string(i) + "_commands "),
                std::string::npos);
    }
    EXPECT_EQ(accepted_sum, 9u);
    const Frame bye = read_frame(stransport.in());
    EXPECT_EQ(bye.status, "OK 0 bye");
  }

  // All clients hung up: a single stop() drains every loop and run()
  // returns — the join below is the multi-reactor shutdown barrier.
  pool.stop();
  pool_thread.join();
  std::uint64_t accepted = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    accepted += pool.loop(i).stats().accepted.load();
    EXPECT_EQ(pool.loop(i).stats().connections.load(), 0u);
  }
  EXPECT_EQ(accepted, 9u);
}

#else  // !__linux__

constexpr bool kHaveEventLoop = false;

TEST(EventLoop, RequiresLinux) {
  GTEST_SKIP() << "epoll front-end tests require Linux";
}

#endif  // __linux__

TEST(EventLoopMeta, PlatformGate) {
  // Document which flavour of this suite ran: full on Linux, parser-only
  // elsewhere.
  SUCCEED() << (kHaveEventLoop ? "event loop exercised"
                               : "parser-only platform");
}

}  // namespace
