// Unit tests for the generic state-space search engine: the paper's OPEN/
// CLOSED machinery, all five strategies, reopening with parent re-pointing,
// and multi-source seeding.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "search/searcher.hpp"

namespace {

using namespace gcr;
using search::SearchOptions;
using search::Strategy;
using search::Successor;

/// A tiny explicit weighted digraph with string states.
struct GraphSpace {
  using State = std::string;

  std::map<std::string, std::vector<Successor<std::string>>> edges;
  std::map<std::string, geom::Cost> h;  // optional heuristic values
  std::string goal;

  void successors(const State& s, std::vector<Successor<State>>& out) const {
    const auto it = edges.find(s);
    if (it != edges.end()) out = it->second;
  }
  [[nodiscard]] geom::Cost heuristic(const State& s) const {
    const auto it = h.find(s);
    return it == h.end() ? 0 : it->second;
  }
  [[nodiscard]] bool is_goal(const State& s) const { return s == goal; }
};

/// Diamond graph: s->a(1), s->b(4), a->t(5), b->t(1); optimal s-b-t = 5.
GraphSpace diamond() {
  GraphSpace g;
  g.edges["s"] = {{"a", 1}, {"b", 4}};
  g.edges["a"] = {{"t", 5}};
  g.edges["b"] = {{"t", 1}};
  g.goal = "t";
  return g;
}

TEST(Searcher, BestFirstFindsMinimalCost) {
  const GraphSpace g = diamond();
  const auto r = search::find_path(g, std::string("s"),
                                   SearchOptions{.strategy = Strategy::kBestFirst});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cost, 5);
  EXPECT_EQ(r.path, (std::vector<std::string>{"s", "b", "t"}));
}

TEST(Searcher, AStarFindsMinimalCostWithAdmissibleHeuristic) {
  GraphSpace g = diamond();
  g.h = {{"s", 5}, {"a", 4}, {"b", 1}, {"t", 0}};  // admissible lower bounds
  const auto r = search::find_path(g, std::string("s"),
                                   SearchOptions{.strategy = Strategy::kAStar});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cost, 5);
}

TEST(Searcher, ExhaustiveDrainsOpenAndFindsOptimum) {
  const GraphSpace g = diamond();
  const auto r = search::find_path(
      g, std::string("s"), SearchOptions{.strategy = Strategy::kExhaustive});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cost, 5);
  // Exhaustive expands every non-goal node: s, a, b.
  EXPECT_EQ(r.stats.nodes_expanded, 3u);
}

TEST(Searcher, BlindSearchesFindSomePathNotNecessarilyOptimal) {
  const GraphSpace g = diamond();
  for (const Strategy s : {Strategy::kDepthFirst, Strategy::kBreadthFirst}) {
    const auto r =
        search::find_path(g, std::string("s"), SearchOptions{.strategy = s});
    ASSERT_TRUE(r.found) << to_string(s);
    EXPECT_GE(r.cost, 5) << to_string(s);
    EXPECT_EQ(r.path.front(), "s");
    EXPECT_EQ(r.path.back(), "t");
  }
}

TEST(Searcher, GreedyFollowsHeuristicOnly) {
  GraphSpace g = diamond();
  // Mislead greedy: a looks closer than b.
  g.h = {{"s", 2}, {"a", 1}, {"b", 100}, {"t", 0}};
  const auto r = search::find_path(g, std::string("s"),
                                   SearchOptions{.strategy = Strategy::kGreedy});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cost, 6);  // took the s-a-t detour
}

TEST(Searcher, ReopensClosedNodeOnShorterPath) {
  // With an inconsistent heuristic A* can close a node via a longer path
  // first; the paper requires moving it back to OPEN and re-pointing.
  GraphSpace g;
  g.edges["s"] = {{"a", 10}, {"b", 1}};
  g.edges["a"] = {{"t", 1}};
  g.edges["b"] = {{"a", 2}};
  g.goal = "t";
  // h(b) chosen so b is expanded after a closes but before the goal pops
  // (f(a)=10 ties f(b)=10; FIFO tie-break expands a first, then t enters
  // OPEN at f=11, then b expands at f=10 and reveals the shortcut to a).
  g.h = {{"s", 0}, {"a", 0}, {"b", 9}, {"t", 0}};
  const auto r = search::find_path(g, std::string("s"),
                                   SearchOptions{.strategy = Strategy::kAStar});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cost, 4);  // s-b-a-t
  EXPECT_EQ(r.path, (std::vector<std::string>{"s", "b", "a", "t"}));
  EXPECT_GE(r.stats.nodes_reopened, 1u);
}

TEST(Searcher, StartIsGoal) {
  GraphSpace g = diamond();
  g.goal = "s";
  const auto r = search::find_path(g, std::string("s"), SearchOptions{});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cost, 0);
  EXPECT_EQ(r.path, (std::vector<std::string>{"s"}));
}

TEST(Searcher, UnreachableGoalReportsNotFound) {
  GraphSpace g = diamond();
  g.goal = "nowhere";
  for (const Strategy s :
       {Strategy::kDepthFirst, Strategy::kBreadthFirst, Strategy::kBestFirst,
        Strategy::kAStar, Strategy::kExhaustive}) {
    const auto r =
        search::find_path(g, std::string("s"), SearchOptions{.strategy = s});
    EXPECT_FALSE(r.found) << to_string(s);
  }
}

TEST(Searcher, MultiSourceSeedsAllStarts) {
  GraphSpace g;
  g.edges["far"] = {{"mid", 10}};
  g.edges["mid"] = {{"t", 10}};
  g.edges["near"] = {{"t", 1}};
  g.goal = "t";
  search::Searcher<GraphSpace> searcher(g);
  const auto r = searcher.run({"far", "near"},
                              SearchOptions{.strategy = Strategy::kBestFirst});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cost, 1);
  EXPECT_EQ(r.path.front(), "near");
}

TEST(Searcher, DepthLimitCutsDeepBranches) {
  // Chain s -> c1 -> c2 -> ... -> t of length 5; depth limit 3 must fail,
  // limit 5 must succeed.
  GraphSpace g;
  g.edges["s"] = {{"c1", 1}};
  g.edges["c1"] = {{"c2", 1}};
  g.edges["c2"] = {{"c3", 1}};
  g.edges["c3"] = {{"c4", 1}};
  g.edges["c4"] = {{"t", 1}};
  g.goal = "t";
  const auto fail = search::find_path(
      g, std::string("s"),
      SearchOptions{.strategy = Strategy::kDepthFirst, .depth_limit = 3});
  EXPECT_FALSE(fail.found);
  const auto ok = search::find_path(
      g, std::string("s"),
      SearchOptions{.strategy = Strategy::kDepthFirst, .depth_limit = 5});
  EXPECT_TRUE(ok.found);
}

TEST(Searcher, MaxExpansionsAborts) {
  // Infinite-ish chain graph via a long line.
  GraphSpace g;
  for (int i = 0; i < 1000; ++i) {
    g.edges["n" + std::to_string(i)] = {{"n" + std::to_string(i + 1), 1}};
  }
  g.goal = "n1000";
  const auto r = search::find_path(
      g, std::string("n0"),
      SearchOptions{.strategy = Strategy::kBestFirst, .max_expansions = 10});
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.stats.aborted);
}

TEST(Searcher, StatsCountExpansionsAndGenerations) {
  const GraphSpace g = diamond();
  const auto r = search::find_path(g, std::string("s"),
                                   SearchOptions{.strategy = Strategy::kBestFirst});
  // Expansions: s, a (f=1+5=6 ordering: s then a(g=1) then b(g=4) ... t).
  EXPECT_GE(r.stats.nodes_expanded, 2u);
  EXPECT_GE(r.stats.nodes_generated, 3u);
  EXPECT_GE(r.stats.max_open_size, 1u);
}

TEST(SearchStats, Accumulate) {
  search::SearchStats a{10, 20, 1, 5, false};
  const search::SearchStats b{1, 2, 0, 9, true};
  a += b;
  EXPECT_EQ(a.nodes_expanded, 11u);
  EXPECT_EQ(a.nodes_generated, 22u);
  EXPECT_EQ(a.nodes_reopened, 1u);
  EXPECT_EQ(a.max_open_size, 9u);
  EXPECT_TRUE(a.aborted);
}

TEST(Strategy, Names) {
  EXPECT_EQ(to_string(Strategy::kAStar), "A*");
  EXPECT_EQ(to_string(Strategy::kDepthFirst), "depth-first");
  EXPECT_TRUE(admissible(Strategy::kAStar));
  EXPECT_TRUE(admissible(Strategy::kBestFirst));
  EXPECT_FALSE(admissible(Strategy::kGreedy));
  EXPECT_FALSE(admissible(Strategy::kDepthFirst));
}

}  // namespace
