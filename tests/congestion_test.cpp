// Tests for passage extraction, congestion accounting, and the two-pass
// congestion-driven re-route.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "congestion/two_pass.hpp"
#include "workload/figures.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Rect;

TEST(Passages, ExtractsFacingPair) {
  layout::Layout lay(Rect{0, 0, 120, 100});
  lay.set_min_separation(4);
  lay.add_cell(layout::Cell{"a", Rect{10, 10, 50, 60}});
  lay.add_cell(layout::Cell{"b", Rect{58, 10, 100, 60}});
  congestion::PassageOptions opts;
  opts.wire_pitch = 2;
  const auto ps = congestion::extract_passages(lay, opts);
  // The a<->b gap must be among them.
  const auto it = std::find_if(ps.begin(), ps.end(), [](const auto& p) {
    return p.cell_a == 0 && p.cell_b == 1;
  });
  ASSERT_NE(it, ps.end());
  EXPECT_EQ(it->gap, 8);
  EXPECT_EQ(it->capacity, 4u);
  EXPECT_EQ(it->flow_axis, geom::Axis::kY);
  EXPECT_EQ(it->region, (Rect{50, 10, 58, 60}));
}

TEST(Passages, VerticalStackGap) {
  layout::Layout lay(Rect{0, 0, 100, 120});
  lay.set_min_separation(4);
  lay.add_cell(layout::Cell{"lo", Rect{20, 10, 80, 50}});
  lay.add_cell(layout::Cell{"hi", Rect{30, 56, 90, 100}});
  const auto ps = congestion::extract_passages(lay, {});
  const auto it = std::find_if(ps.begin(), ps.end(), [](const auto& p) {
    return p.cell_a == 0 && p.cell_b == 1;
  });
  ASSERT_NE(it, ps.end());
  EXPECT_EQ(it->gap, 6);
  EXPECT_EQ(it->flow_axis, geom::Axis::kX);
  EXPECT_EQ(it->region, (Rect{30, 50, 80, 56}));
}

TEST(Passages, ThirdCellBlocksPassage) {
  layout::Layout lay(Rect{0, 0, 200, 100});
  lay.set_min_separation(2);
  lay.add_cell(layout::Cell{"a", Rect{10, 10, 50, 60}});
  lay.add_cell(layout::Cell{"b", Rect{100, 10, 140, 60}});
  lay.add_cell(layout::Cell{"mid", Rect{70, 5, 80, 70}});  // intrudes
  congestion::PassageOptions opts;
  opts.max_gap = 0;
  const auto ps = congestion::extract_passages(lay, opts);
  const bool ab = std::any_of(ps.begin(), ps.end(), [](const auto& p) {
    return p.cell_a == 0 && p.cell_b == 1;
  });
  EXPECT_FALSE(ab);
}

TEST(Passages, MaxGapFilters) {
  layout::Layout lay(Rect{0, 0, 200, 100});
  lay.set_min_separation(2);
  lay.add_cell(layout::Cell{"a", Rect{10, 10, 50, 60}});
  lay.add_cell(layout::Cell{"b", Rect{100, 10, 140, 60}});  // gap 50
  congestion::PassageOptions opts;
  opts.max_gap = 20;
  const auto ps = congestion::extract_passages(lay, opts);
  EXPECT_TRUE(std::none_of(ps.begin(), ps.end(), [](const auto& p) {
    return p.cell_a == 0 && p.cell_b == 1;
  }));
}

TEST(Passages, BoundaryPassages) {
  layout::Layout lay(Rect{0, 0, 100, 100});
  lay.set_min_separation(2);
  lay.add_cell(layout::Cell{"a", Rect{10, 6, 50, 60}});  // 6 above south edge
  const auto ps = congestion::extract_passages(lay, {});
  const bool boundary_passage =
      std::any_of(ps.begin(), ps.end(), [](const auto& p) {
        return p.cell_a == 0 && p.cell_b == congestion::Passage::npos &&
               p.gap == 6;
      });
  EXPECT_TRUE(boundary_passage);
}

TEST(CongestionMap, CountsDistinctNetsOnce) {
  congestion::Passage p;
  p.region = Rect{50, 10, 58, 60};
  p.capacity = 1;
  congestion::CongestionMap map({p});

  route::NetRoute nr;
  nr.ok = true;
  // Two segments of the same net through the region: one occupant.
  nr.segments.push_back(geom::Segment{Point{54, 0}, Point{54, 80}});
  nr.segments.push_back(geom::Segment{Point{40, 30}, Point{70, 30}});
  map.add_net(3, nr);
  EXPECT_EQ(map.loads()[0].occupancy, 1u);
  EXPECT_EQ(map.nets_through(0), (std::vector<std::size_t>{3}));

  route::NetRoute other;
  other.ok = true;
  other.segments.push_back(geom::Segment{Point{52, 0}, Point{52, 80}});
  map.add_net(7, other);
  EXPECT_EQ(map.loads()[0].occupancy, 2u);
  EXPECT_EQ(map.loads()[0].overflow(), 1u);
  EXPECT_EQ(map.max_occupancy(), 2u);
  EXPECT_EQ(map.total_overflow(), 1u);
  EXPECT_EQ(map.congested(), (std::vector<std::size_t>{0}));
}

TEST(CongestionMap, MissingNetsDontCount) {
  congestion::Passage p;
  p.region = Rect{50, 10, 58, 60};
  p.capacity = 2;
  congestion::CongestionMap map({p});
  route::NetRoute nr;
  nr.ok = true;
  nr.segments.push_back(geom::Segment{Point{0, 80}, Point{10, 80}});  // far
  map.add_net(0, nr);
  EXPECT_EQ(map.loads()[0].occupancy, 0u);
  EXPECT_TRUE(map.congested().empty());
}

/// A layout that funnels several nets through one narrow passage although an
/// open detour exists above.
layout::Layout funnel_layout(std::size_t net_count) {
  layout::Layout lay(Rect{0, 0, 140, 120});
  lay.set_min_separation(4);
  const auto a = lay.add_cell(layout::Cell{"a", Rect{20, 10, 64, 70}});
  const auto b = lay.add_cell(layout::Cell{"b", Rect{70, 10, 120, 70}});
  // Pins on facing edges near the gap's vertical middle; the straight route
  // for every net dives through the 6-wide corridor.
  for (std::size_t i = 0; i < net_count; ++i) {
    const geom::Coord y = 20 + static_cast<geom::Coord>(i) * 8;
    lay.cell(a).add_pin_terminal("p" + std::to_string(i), Point{64, y});
    lay.cell(b).add_pin_terminal("q" + std::to_string(i), Point{70, y});
    layout::Net net("n" + std::to_string(i));
    net.add_terminal(layout::TerminalRef{a, static_cast<std::uint32_t>(i)});
    net.add_terminal(layout::TerminalRef{b, static_cast<std::uint32_t>(i)});
    lay.add_net(std::move(net));
  }
  return lay;
}

TEST(TwoPass, FirstPassRevealsCongestion) {
  const layout::Layout lay = funnel_layout(5);
  ASSERT_TRUE(lay.valid());
  const route::NetlistRouter router(lay);
  const auto result = router.route_all();
  ASSERT_EQ(result.failed, 0u);
  congestion::PassageOptions popts;
  popts.wire_pitch = 2;
  const auto map = congestion::build_map(lay, result, popts);
  EXPECT_GE(map.max_occupancy(), 5u);  // every net uses the funnel
}

TEST(TwoPass, ReportsAreConsistent) {
  const layout::Layout lay = funnel_layout(5);
  const congestion::TwoPassRouter tp(lay);
  congestion::TwoPassOptions opts;
  opts.passages.wire_pitch = 2;
  const auto report = tp.run(opts);
  EXPECT_EQ(report.first_pass.failed, 0u);
  EXPECT_EQ(report.final_pass.failed, 0u);
  EXPECT_GE(report.passes_run, 1u);
  EXPECT_LE(report.overflow_after, report.overflow_before);
  // Every net still routed, wirelength stays finite and accounted.
  geom::Cost sum = 0;
  for (const auto& nr : report.final_pass.routes) sum += nr.wirelength;
  EXPECT_EQ(sum, report.final_pass.total_wirelength);
}

TEST(TwoPass, DeadlineStopIsMarkedCancelled) {
  // A deadline-truncated run must flag itself exactly like a cancel-token
  // stop: the serving layer treats an unflagged report as complete and
  // would cache it as the canonical result of its options.
  const layout::Layout lay = funnel_layout(5);
  const congestion::TwoPassRouter tp(lay);
  congestion::TwoPassOptions opts;
  opts.passages.wire_pitch = 2;
  opts.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_TRUE(tp.run(opts).cancelled);

  congestion::TwoPassOptions copts;
  copts.passages.wire_pitch = 2;
  copts.cancel = std::make_shared<std::atomic<bool>>(true);
  EXPECT_TRUE(tp.run(copts).cancelled);
}

}  // namespace
