// Unit tests for the geometry substrate: intervals, rects, segments,
// orthogonal polygons.

#include <gtest/gtest.h>

#include "geometry/geometry.hpp"

namespace {

using namespace gcr::geom;

// ---------------------------------------------------------------- Interval

TEST(Interval, DefaultIsEmpty) {
  Interval iv;
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv.length(), 0);
}

TEST(Interval, ContainsClosedVsOpen) {
  const Interval iv{2, 5};
  EXPECT_TRUE(iv.contains(2));
  EXPECT_TRUE(iv.contains(5));
  EXPECT_FALSE(iv.contains_open(2));
  EXPECT_FALSE(iv.contains_open(5));
  EXPECT_TRUE(iv.contains_open(3));
  EXPECT_FALSE(iv.contains(6));
}

TEST(Interval, OverlapSemantics) {
  EXPECT_TRUE((Interval{0, 5}.overlaps(Interval{5, 9})));   // touch counts
  EXPECT_FALSE((Interval{0, 5}.overlaps_open(Interval{5, 9})));
  EXPECT_TRUE((Interval{0, 5}.overlaps_open(Interval{4, 9})));
  EXPECT_FALSE((Interval{0, 5}.overlaps(Interval{6, 9})));
}

TEST(Interval, IntersectionHull) {
  const Interval a{0, 10};
  const Interval b{5, 20};
  EXPECT_EQ(a.intersection(b), (Interval{5, 10}));
  EXPECT_EQ(a.hull(b), (Interval{0, 20}));
  EXPECT_TRUE((Interval{0, 2}.intersection(Interval{5, 6}).empty()));
  EXPECT_EQ(Interval{}.hull(a), a);
}

// -------------------------------------------------------------------- Rect

TEST(Rect, ProperAndEmpty) {
  EXPECT_TRUE(Rect().empty());
  EXPECT_FALSE((Rect{0, 0, 5, 0}.proper()));  // zero height line
  EXPECT_TRUE((Rect{0, 0, 5, 3}.proper()));
}

TEST(Rect, ContainmentOpenVsClosed) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Point{0, 5}));
  EXPECT_FALSE(r.contains_open(Point{0, 5}));   // boundary: routable
  EXPECT_TRUE(r.contains_open(Point{5, 5}));
  EXPECT_TRUE(r.on_boundary(Point{10, 10}));
  EXPECT_FALSE(r.on_boundary(Point{5, 5}));
}

TEST(Rect, SeparationIsManhattanGap) {
  const Rect a{0, 0, 10, 10};
  EXPECT_EQ(a.separation(Rect{12, 0, 20, 10}), 2);   // side by side
  EXPECT_EQ(a.separation(Rect{0, 15, 10, 20}), 5);   // stacked
  EXPECT_EQ(a.separation(Rect{13, 14, 20, 20}), 7);  // diagonal: dx+dy
  EXPECT_EQ(a.separation(Rect{10, 0, 20, 10}), 0);   // touching
  EXPECT_EQ(a.separation(Rect{5, 5, 20, 20}), 0);    // overlapping
}

TEST(Rect, DistanceToPoint) {
  const Rect r{10, 10, 20, 20};
  EXPECT_EQ(r.distance(Point{15, 15}), 0);
  EXPECT_EQ(r.distance(Point{10, 10}), 0);
  EXPECT_EQ(r.distance(Point{0, 15}), 10);
  EXPECT_EQ(r.distance(Point{25, 25}), 10);
}

TEST(Rect, HullAndIntersection) {
  const Rect a{0, 0, 5, 5};
  const Rect b{3, 3, 9, 4};
  EXPECT_EQ(a.hull(b), (Rect{0, 0, 9, 5}));
  EXPECT_EQ(a.intersection(b), (Rect{3, 3, 5, 4}));
}

// ------------------------------------------------------------------- Point

TEST(Point, ManhattanAndStep) {
  EXPECT_EQ(manhattan(Point{0, 0}, Point{3, 4}), 7);
  EXPECT_EQ((Point{5, 5}.stepped(Dir::kWest, 3)), (Point{2, 5}));
  EXPECT_EQ((Point{5, 5}.stepped(Dir::kNorth, 2)), (Point{5, 7}));
}

TEST(Point, DirHelpers) {
  EXPECT_EQ(axis_of(Dir::kEast), Axis::kX);
  EXPECT_EQ(axis_of(Dir::kSouth), Axis::kY);
  EXPECT_EQ(opposite(Dir::kEast), Dir::kWest);
  EXPECT_EQ(opposite(Dir::kNorth), Dir::kSouth);
  EXPECT_EQ(sign_of(Dir::kWest), -1);
  EXPECT_EQ(other(Axis::kX), Axis::kY);
}

// ----------------------------------------------------------------- Segment

TEST(Segment, AxisTrackSpan) {
  const Segment h{Point{2, 5}, Point{9, 5}};
  EXPECT_TRUE(h.horizontal());
  EXPECT_EQ(h.track(), 5);
  EXPECT_EQ(h.span(), (Interval{2, 9}));
  EXPECT_EQ(h.length(), 7);

  const Segment v{Point{4, 1}, Point{4, 8}};
  EXPECT_TRUE(v.vertical());
  EXPECT_EQ(v.track(), 4);
}

TEST(Segment, CrossingPerpendicular) {
  const Segment h{Point{0, 5}, Point{10, 5}};
  const Segment v{Point{4, 0}, Point{4, 9}};
  const auto x = h.crossing(v);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, (Point{4, 5}));
  // Endpoint touch counts.
  const Segment v2{Point{10, 5}, Point{10, 9}};
  EXPECT_TRUE(h.crossing(v2).has_value());
  // Disjoint.
  const Segment v3{Point{12, 0}, Point{12, 9}};
  EXPECT_FALSE(h.crossing(v3).has_value());
  // Parallel: nullopt even when overlapping.
  const Segment h2{Point{5, 5}, Point{20, 5}};
  EXPECT_FALSE(h.crossing(h2).has_value());
}

TEST(Segment, PiercesOnlyOpenInterior) {
  const Rect r{10, 10, 20, 20};
  // Crossing straight through.
  EXPECT_TRUE((Segment{Point{0, 15}, Point{30, 15}}.pierces(r)));
  // Hugging an edge: legal.
  EXPECT_FALSE((Segment{Point{0, 10}, Point{30, 10}}.pierces(r)));
  EXPECT_FALSE((Segment{Point{20, 0}, Point{20, 30}}.pierces(r)));
  // Ending exactly on the boundary from outside: legal.
  EXPECT_FALSE((Segment{Point{0, 15}, Point{10, 15}}.pierces(r)));
  // Ending inside: pierces.
  EXPECT_TRUE((Segment{Point{0, 15}, Point{15, 15}}.pierces(r)));
  // Degenerate inside.
  EXPECT_TRUE((Segment{Point{15, 15}, Point{15, 15}}.pierces(r)));
}

TEST(Segment, ClosestPointClamps) {
  const Segment h{Point{0, 5}, Point{10, 5}};
  EXPECT_EQ(h.closest_point(Point{4, 9}), (Point{4, 5}));
  EXPECT_EQ(h.closest_point(Point{-3, 9}), (Point{0, 5}));
  EXPECT_EQ(h.closest_point(Point{15, 0}), (Point{10, 5}));
}

// ------------------------------------------------------------ OrthoPolygon

TEST(OrthoPolygon, RectRoundTrip) {
  const auto poly = OrthoPolygon::from_rect(Rect{0, 0, 10, 6});
  EXPECT_TRUE(poly.valid());
  EXPECT_EQ(poly.area(), 60);
  EXPECT_EQ(poly.bounding_box(), (Rect{0, 0, 10, 6}));
  const auto rects = poly.decompose();
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], (Rect{0, 0, 10, 6}));
}

TEST(OrthoPolygon, LShapeDecomposition) {
  // L-shape: 20x20 square minus its top-right 10x10 quadrant.
  const OrthoPolygon poly{{{0, 0}, {20, 0}, {20, 10}, {10, 10},
                           {10, 20}, {0, 20}}};
  ASSERT_TRUE(poly.valid());
  EXPECT_EQ(poly.area(), 300);
  Cost total = 0;
  for (const Rect& r : poly.decompose()) total += r.area();
  EXPECT_EQ(total, 300);
  EXPECT_TRUE(poly.contains(Point{5, 15}));
  EXPECT_FALSE(poly.contains(Point{15, 15}));
  EXPECT_TRUE(poly.contains(Point{10, 15}));       // on the notch edge
  EXPECT_FALSE(poly.contains_open(Point{10, 15}));
  EXPECT_TRUE(poly.contains_open(Point{5, 5}));
}

TEST(OrthoPolygon, InvalidShapesRejected) {
  // Non-alternating (two horizontal moves in a row can't happen with
  // distinct vertices, so test a diagonal edge instead).
  const OrthoPolygon diag{{{0, 0}, {5, 5}, {0, 5}, {5, 0}}};
  EXPECT_FALSE(diag.valid());
  // Self-intersecting bow-tie of rectilinear edges.
  const OrthoPolygon bow{{{0, 0}, {10, 0}, {10, 10}, {4, 10},
                          {4, -5}, {6, -5}, {6, 5}, {0, 5}}};
  EXPECT_FALSE(bow.valid());
  // Too few vertices.
  EXPECT_FALSE((OrthoPolygon{{{0, 0}, {5, 0}}}.valid()));
}

TEST(OrthoPolygon, UShapeDecomposition) {
  // U-shape: 30 wide, 20 tall, with a 10-wide notch from the top.
  const OrthoPolygon poly{{{0, 0}, {30, 0}, {30, 20}, {20, 20},
                           {20, 5}, {10, 5}, {10, 20}, {0, 20}}};
  ASSERT_TRUE(poly.valid());
  EXPECT_EQ(poly.area(), 30 * 20 - 10 * 15);
  EXPECT_FALSE(poly.contains(Point{15, 15}));  // inside the notch
  EXPECT_TRUE(poly.contains(Point{15, 3}));    // in the bridge
}

}  // namespace
