// Tests for whole-netlist routing: the paper's independent mode versus the
// classical sequential (nets-as-obstacles) mode, and order sensitivity.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>

#include "core/netlist_router.hpp"
#include "workload/floorplan.hpp"
#include "workload/netgen.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Rect;

layout::Layout small_routed_layout(std::uint64_t seed, std::size_t nets = 12) {
  workload::FloorplanOptions fp;
  fp.seed = seed;
  fp.cell_count = 9;
  fp.boundary = Rect{0, 0, 512, 512};
  layout::Layout lay = workload::random_floorplan(fp);
  workload::PinGenOptions pins;
  pins.seed = seed + 1;
  workload::sprinkle_pins(lay, pins);
  workload::NetGenOptions ng;
  ng.seed = seed + 2;
  ng.net_count = nets;
  ng.max_terminals = 3;
  workload::generate_nets(lay, ng);
  return lay;
}

TEST(NetlistRouter, IndependentModeRoutesEverything) {
  const layout::Layout lay = small_routed_layout(21);
  ASSERT_TRUE(lay.valid());
  const route::NetlistRouter router(lay);
  const auto result = router.route_all();
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.routed, lay.nets().size());
  EXPECT_GT(result.total_wirelength, 0);
  EXPECT_EQ(result.routes.size(), lay.nets().size());
}

TEST(NetlistRouter, IndependentModeIgnoresOrder) {
  // The paper: "Independent net routing also eliminates the problem of net
  // ordering."  Any order yields identical per-net routes.
  const layout::Layout lay = small_routed_layout(22);
  const route::NetlistRouter router(lay);

  route::NetlistOptions fwd;
  const auto a = router.route_all(fwd);

  route::NetlistOptions rev;
  rev.order.resize(lay.nets().size());
  std::iota(rev.order.begin(), rev.order.end(), 0);
  std::reverse(rev.order.begin(), rev.order.end());
  const auto b = router.route_all(rev);

  ASSERT_EQ(a.routes.size(), b.routes.size());
  EXPECT_EQ(a.total_wirelength, b.total_wirelength);
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i].segments, b.routes[i].segments) << "net " << i;
  }
}

TEST(NetlistRouter, SequentialModeDependsOnOrderOrCostsMore) {
  // Sequential routing makes earlier nets obstacles: total wirelength can
  // only get worse (or some nets fail), and effort rises.
  const layout::Layout lay = small_routed_layout(23);
  const route::NetlistRouter router(lay);

  const auto indep = router.route_all();
  ASSERT_EQ(indep.failed, 0u);

  route::NetlistOptions seq;
  seq.mode = route::NetlistMode::kSequential;
  const auto sequential = router.route_all(seq);

  // Whatever routed sequentially is at least as long per net.
  for (std::size_t i = 0; i < sequential.routes.size(); ++i) {
    if (!sequential.routes[i].ok || !indep.routes[i].ok) continue;
    EXPECT_GE(sequential.routes[i].wirelength, indep.routes[i].wirelength)
        << "net " << i;
  }
  EXPECT_LE(sequential.routed, indep.routed);
}

TEST(NetlistRouter, SequentialWiresBlockLaterNets) {
  // Deterministic construction: net 0's straight route lies exactly across
  // net 1's straight route; sequentially net 1 must detour (or fail), while
  // independent routing gives both their optimum.
  layout::Layout lay(Rect{0, 0, 100, 100});
  lay.set_min_separation(4);
  const auto west = lay.add_cell(layout::Cell{"w", Rect{5, 40, 20, 60}});
  const auto east = lay.add_cell(layout::Cell{"e", Rect{80, 40, 95, 60}});
  const auto south = lay.add_cell(layout::Cell{"s", Rect{40, 5, 60, 20}});
  const auto north = lay.add_cell(layout::Cell{"n", Rect{40, 80, 60, 95}});
  lay.cell(west).add_pin_terminal("p", Point{20, 50});
  lay.cell(east).add_pin_terminal("p", Point{80, 50});
  lay.cell(south).add_pin_terminal("p", Point{50, 20});
  lay.cell(north).add_pin_terminal("p", Point{50, 80});
  layout::Net h("h");
  h.add_terminal(layout::TerminalRef{west, 0});
  h.add_terminal(layout::TerminalRef{east, 0});
  lay.add_net(std::move(h));
  layout::Net v("v");
  v.add_terminal(layout::TerminalRef{south, 0});
  v.add_terminal(layout::TerminalRef{north, 0});
  lay.add_net(std::move(v));
  ASSERT_TRUE(lay.valid());

  const route::NetlistRouter router(lay);
  const auto indep = router.route_all();
  ASSERT_EQ(indep.failed, 0u);
  EXPECT_EQ(indep.routes[0].wirelength, 60);
  EXPECT_EQ(indep.routes[1].wirelength, 60);

  route::NetlistOptions seq;
  seq.mode = route::NetlistMode::kSequential;
  const auto sequential = router.route_all(seq);
  ASSERT_TRUE(sequential.routes[0].ok);
  EXPECT_EQ(sequential.routes[0].wirelength, 60);  // first net unaffected
  if (sequential.routes[1].ok) {
    EXPECT_GT(sequential.routes[1].wirelength, 60);  // forced to detour
  }
}

TEST(NetlistRouter, SequentialSearchCostsMoreThanIndependent) {
  const layout::Layout lay = small_routed_layout(25, 16);
  const route::NetlistRouter router(lay);
  const auto indep = router.route_all();
  route::NetlistOptions seq;
  seq.mode = route::NetlistMode::kSequential;
  const auto sequential = router.route_all(seq);
  // The paper: avoiding nets "greatly increases the search time"; node
  // generation count is our machine-independent proxy.
  EXPECT_GE(sequential.stats.nodes_generated, indep.stats.nodes_generated);
}

TEST(NetlistRouter, ParallelBatchMatchesSingleThread) {
  // The batch driver shares one read-only ObstacleIndex/EscapeLineSet, so
  // every thread count must reproduce the serial result bit-for-bit: same
  // per-net segments, same totals, same search stats.
  const layout::Layout lay = small_routed_layout(27, 24);
  const route::NetlistRouter router(lay);

  route::NetlistOptions serial;
  serial.threads = 1;
  const auto base = router.route_all(serial);
  ASSERT_EQ(base.routed + base.failed, lay.nets().size());

  for (const unsigned threads : {2u, 4u, 8u}) {
    route::NetlistOptions par;
    par.threads = threads;
    const auto got = router.route_all(par);
    EXPECT_EQ(got.total_wirelength, base.total_wirelength)
        << threads << " threads";
    EXPECT_EQ(got.routed, base.routed) << threads << " threads";
    EXPECT_EQ(got.failed, base.failed) << threads << " threads";
    EXPECT_EQ(got.stats.nodes_expanded, base.stats.nodes_expanded)
        << threads << " threads";
    EXPECT_EQ(got.stats.nodes_generated, base.stats.nodes_generated)
        << threads << " threads";
    ASSERT_EQ(got.routes.size(), base.routes.size());
    for (std::size_t i = 0; i < base.routes.size(); ++i) {
      EXPECT_EQ(got.routes[i].ok, base.routes[i].ok) << "net " << i;
      EXPECT_EQ(got.routes[i].segments, base.routes[i].segments)
          << "net " << i << " with " << threads << " threads";
    }
  }
}

TEST(NetlistRouter, SortedDispatchIsBitIdentical) {
  // Longest-first dispatch reorders only *when* nets are routed, never the
  // result: every (sorted, threads) combination reproduces the serial
  // arrival-order run bit-for-bit.
  const layout::Layout lay = small_routed_layout(27, 24);
  const route::NetlistRouter router(lay);

  route::NetlistOptions serial;
  serial.threads = 1;
  const auto base = router.route_all(serial);

  for (const bool sorted : {false, true}) {
    route::NetlistOptions par;
    par.threads = 4;
    par.sorted_dispatch = sorted;
    const auto got = router.route_all(par);
    EXPECT_EQ(got.total_wirelength, base.total_wirelength) << sorted;
    EXPECT_EQ(got.stats.nodes_expanded, base.stats.nodes_expanded) << sorted;
    ASSERT_EQ(got.routes.size(), base.routes.size());
    for (std::size_t i = 0; i < base.routes.size(); ++i) {
      EXPECT_EQ(got.routes[i].segments, base.routes[i].segments)
          << "net " << i << " sorted=" << sorted;
    }
  }
}

TEST(NetlistRouter, InjectedEnvironmentMatchesAndSkipsBuilds) {
  // A prebuilt SearchEnvironment (the serving layer's cached session state)
  // must yield identical results and perform zero index/escape-line builds
  // inside route_all.
  const layout::Layout lay = small_routed_layout(31);
  const auto base = route::NetlistRouter(lay).route_all();

  const route::SearchEnvironment env(lay);
  const route::NetlistRouter cached_router(lay, env);
  const std::size_t builds = route::SearchEnvironment::build_count();
  const auto got = cached_router.route_all();
  EXPECT_EQ(route::SearchEnvironment::build_count(), builds);
  EXPECT_EQ(got.total_wirelength, base.total_wirelength);
  EXPECT_EQ(got.routed, base.routed);
  EXPECT_EQ(got.stats.nodes_expanded, base.stats.nodes_expanded);
}

TEST(NetlistRouter, ParallelAutoThreadCountRoutesEverything) {
  // threads == 0 means "one worker per hardware thread"; whatever that
  // resolves to, results must still match the serial run.
  const layout::Layout lay = small_routed_layout(28);
  const route::NetlistRouter router(lay);
  const auto base = router.route_all();
  route::NetlistOptions aut;
  aut.threads = 0;
  const auto got = router.route_all(aut);
  EXPECT_EQ(got.total_wirelength, base.total_wirelength);
  EXPECT_EQ(got.routed, base.routed);
  EXPECT_EQ(got.failed, base.failed);
}

TEST(NetlistRouter, RejectsNonPermutationOrder) {
  // A duplicate index would make two batch workers race on one result
  // slot; the router must reject bad orders in every build type.
  const layout::Layout lay = small_routed_layout(30, 3);
  const route::NetlistRouter router(lay);
  route::NetlistOptions dup;
  dup.order = {0, 0, 2};
  EXPECT_THROW((void)router.route_all(dup), std::invalid_argument);
  route::NetlistOptions short_order;
  short_order.order = {0, 1};
  EXPECT_THROW((void)router.route_all(short_order), std::invalid_argument);
  route::NetlistOptions out_of_range;
  out_of_range.order = {0, 1, 7};
  EXPECT_THROW((void)router.route_all(out_of_range), std::invalid_argument);
}

TEST(NetlistRouter, SubsetRoutesOnlyListedNets) {
  // Request batching: a subset request must route exactly the listed nets,
  // bit-identically to their slots in a full run, and leave every other
  // slot untouched.
  const layout::Layout lay = small_routed_layout(21);
  const route::NetlistRouter router(lay);
  const auto full = router.route_all();

  route::NetlistOptions opts;
  opts.subset = {4, 1};
  const auto got = router.route_all(opts);
  ASSERT_EQ(got.routes.size(), lay.nets().size());
  EXPECT_EQ(got.routed + got.failed, 2u);
  EXPECT_EQ(got.routes[1].segments, full.routes[1].segments);
  EXPECT_EQ(got.routes[4].segments, full.routes[4].segments);
  EXPECT_EQ(got.total_wirelength,
            full.routes[1].wirelength + full.routes[4].wirelength);
  for (std::size_t i = 0; i < got.routes.size(); ++i) {
    if (i == 1 || i == 4) continue;
    EXPECT_FALSE(got.routes[i].ok) << "net " << i << " was not requested";
    EXPECT_TRUE(got.routes[i].segments.empty());
  }

  // Sequential mode honours the subset (and its order) too.
  route::NetlistOptions seq;
  seq.mode = route::NetlistMode::kSequential;
  seq.subset = {4, 1};
  const auto seq_got = router.route_all(seq);
  EXPECT_EQ(seq_got.routed + seq_got.failed, 2u);
}

TEST(NetlistRouter, RejectsInvalidSubset) {
  const layout::Layout lay = small_routed_layout(30, 3);
  const route::NetlistRouter router(lay);
  route::NetlistOptions dup;
  dup.subset = {1, 1};
  EXPECT_THROW((void)router.route_all(dup), std::invalid_argument);
  route::NetlistOptions out_of_range;
  out_of_range.subset = {7};
  EXPECT_THROW((void)router.route_all(out_of_range), std::invalid_argument);
  route::NetlistOptions both;
  both.subset = {0};
  both.order = {0, 1, 2};
  EXPECT_THROW((void)router.route_all(both), std::invalid_argument);
}

TEST(NetlistRouter, RejectsInvalidReroute) {
  const layout::Layout lay = small_routed_layout(30, 3);
  const route::NetlistRouter router(lay);
  route::NetlistOptions independent;
  independent.reroute = {0};  // default mode: no ordering to repair
  EXPECT_THROW((void)router.route_all(independent), std::invalid_argument);
  route::NetlistOptions dup;
  dup.mode = route::NetlistMode::kSequential;
  dup.reroute = {1, 1};
  EXPECT_THROW((void)router.route_all(dup), std::invalid_argument);
  route::NetlistOptions out_of_range;
  out_of_range.mode = route::NetlistMode::kSequential;
  out_of_range.reroute = {7};
  EXPECT_THROW((void)router.route_all(out_of_range), std::invalid_argument);
  route::NetlistOptions with_subset;
  with_subset.mode = route::NetlistMode::kSequential;
  with_subset.subset = {0};
  with_subset.reroute = {1};
  EXPECT_THROW((void)router.route_all(with_subset), std::invalid_argument);
}

TEST(NetlistRouter, RerouteOfLastNetsMatchesPlainSequential) {
  // When the first pass already routed the rip-up set last, ripping it up
  // and re-routing reproduces the first pass exactly — so the whole result
  // must be bit-identical to the plain sequential route of that order.
  // (This is the analytically provable corner of the rebuild-equivalence
  // property the incremental_env differential suite checks in general.)
  const layout::Layout lay = small_routed_layout(21);
  const route::NetlistRouter router(lay);
  const std::size_t n = lay.nets().size();

  std::vector<std::size_t> last_two_order;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && i != 2) last_two_order.push_back(i);
  }
  last_two_order.push_back(0);
  last_two_order.push_back(2);

  route::NetlistOptions plain;
  plain.mode = route::NetlistMode::kSequential;
  plain.order = last_two_order;

  route::NetlistOptions ripup = plain;
  ripup.reroute = {0, 2};

  const auto want = router.route_all(plain);
  const auto got = router.route_all(ripup);
  EXPECT_EQ(got.routed, want.routed);
  EXPECT_EQ(got.failed, want.failed);
  EXPECT_EQ(got.total_wirelength, want.total_wirelength);
  EXPECT_EQ(got.stats.nodes_expanded, want.stats.nodes_expanded);
  ASSERT_EQ(got.routes.size(), want.routes.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got.routes[i].segments, want.routes[i].segments) << "net " << i;
    EXPECT_EQ(got.routes[i].wirelength, want.routes[i].wirelength)
        << "net " << i;
  }
}

TEST(NetlistRouter, ParallelMoreThreadsThanNets) {
  // Worker count is clamped to the job count; a tiny netlist with a huge
  // thread request must not deadlock or drop nets.
  const layout::Layout lay = small_routed_layout(29, 2);
  const route::NetlistRouter router(lay);
  route::NetlistOptions par;
  par.threads = 64;
  const auto got = router.route_all(par);
  EXPECT_EQ(got.routed + got.failed, lay.nets().size());
  EXPECT_EQ(got.routes.size(), lay.nets().size());
}

TEST(NetlistRouter, DeadlineAndCancelStopEveryMode) {
  // An expired deadline or a set cancel token stops the pass between nets
  // and flags the result as cancelled (partial, must be discarded) in each
  // of the three drivers: serial independent, parallel independent, and
  // sequential.
  const layout::Layout lay = small_routed_layout(27);
  const route::NetlistRouter router(lay);

  route::NetlistOptions expired;
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::seconds(1);
  EXPECT_TRUE(router.route_all(expired).cancelled);

  expired.threads = 4;
  EXPECT_TRUE(router.route_all(expired).cancelled);

  route::NetlistOptions cancelled;
  cancelled.mode = route::NetlistMode::kSequential;
  cancelled.cancel = std::make_shared<std::atomic<bool>>(true);
  EXPECT_TRUE(router.route_all(cancelled).cancelled);

  // No token and no deadline: untouched — the pass completes un-flagged.
  EXPECT_FALSE(router.route_all().cancelled);
}

TEST(NetlistRouter, ResultAccountingConsistent) {
  const layout::Layout lay = small_routed_layout(26);
  const route::NetlistRouter router(lay);
  const auto result = router.route_all();
  EXPECT_EQ(result.routed + result.failed, lay.nets().size());
  geom::Cost sum = 0;
  for (const auto& nr : result.routes) {
    if (nr.ok) sum += nr.wirelength;
  }
  EXPECT_EQ(sum, result.total_wirelength);
}

}  // namespace
