// Tests for the paper's core contribution: the gridless line-search router.
// Covers straight/L routes, obstacle hugging, optimality against the
// track-graph oracle and the unit-pitch grid, multi-source/target searches,
// and the generalized cost models (bend, inverted corner, region penalty).

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/gridless_router.hpp"
#include "core/track_graph.hpp"
#include "grid/lee_moore.hpp"
#include "workload/figures.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Rect;
using route::kCostScale;

struct Fixture {
  spatial::ObstacleIndex index;
  spatial::EscapeLineSet lines;

  Fixture(Rect boundary, std::vector<Rect> obstacles)
      : index(boundary, std::move(obstacles)), lines(index) {}

  [[nodiscard]] route::Route go(Point a, Point b,
                                const route::CostModel* cost = nullptr) const {
    const route::GridlessRouter router(index, lines, cost);
    return router.route(a, b);
  }
};

TEST(GridlessRouter, EmptyPlaneStraightLine) {
  const Fixture f(Rect{0, 0, 100, 100}, {});
  const auto r = f.go({10, 20}, {90, 20});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 80);
  EXPECT_EQ(r.cost, 80 * kCostScale);
  EXPECT_EQ(r.points.size(), 2u);  // no bends
  EXPECT_EQ(r.bend_count(), 0u);
}

TEST(GridlessRouter, EmptyPlaneLRoute) {
  const Fixture f(Rect{0, 0, 100, 100}, {});
  const auto r = f.go({10, 10}, {60, 70});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 50 + 60);
  EXPECT_EQ(r.bend_count(), 1u);
}

TEST(GridlessRouter, DetoursAroundBlock) {
  // Block straddles the straight line; optimum detours around the nearer
  // edge: from (10,50) to (90,50) around (40,30..70): extra 2*min(20,20)=40?
  // Actually around the bottom: up/down 20 twice -> length 80+40.
  const Fixture f(Rect{0, 0, 100, 100}, {Rect{40, 30, 60, 70}});
  const auto r = f.go({10, 50}, {90, 50});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 80 + 2 * 20);
  // Every point of the path must be routable and every segment unblocked.
  for (const auto& seg : r.segments()) {
    EXPECT_FALSE(f.index.segment_blocked(seg)) << seg;
  }
}

TEST(GridlessRouter, HugsBoundaryWhenFasterAround) {
  // Block nearly spanning the height: the route must squeeze along the
  // layout boundary edge (hugging is legal).
  const Fixture f(Rect{0, 0, 100, 100}, {Rect{40, 0, 60, 98}});
  const auto r = f.go({10, 50}, {90, 50});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 80 + 2 * 48);  // over the top at y=98..? via y=98
  for (const auto& seg : r.segments()) {
    EXPECT_FALSE(f.index.segment_blocked(seg));
  }
}

TEST(GridlessRouter, EndpointsOnObstacleBoundary) {
  // Pins sit on the block's edges, as real macro pins do.
  const Fixture f(Rect{0, 0, 100, 100}, {Rect{40, 40, 60, 60}});
  const auto r = f.go({40, 50}, {60, 50});  // west edge pin to east edge pin
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 20 + 2 * 10);  // around the top or bottom corner
}

TEST(GridlessRouter, SameStartAndGoal) {
  const Fixture f(Rect{0, 0, 100, 100}, {});
  const auto r = f.go({10, 10}, {10, 10});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 0);
}

TEST(GridlessRouter, GoalOnSharedLine) {
  const Fixture f(Rect{0, 0, 100, 100}, {Rect{40, 40, 60, 60}});
  // Goal aligned with source on a clear line.
  const auto r = f.go({40, 20}, {60, 20});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 20);
  EXPECT_EQ(r.bend_count(), 0u);
}

TEST(GridlessRouter, MultiSourceMultiTargetPicksNearestPair) {
  const Fixture f(Rect{0, 0, 100, 100}, {});
  const route::GridlessRouter router(f.index, f.lines);
  const auto r = router.route_set({{10, 10}, {50, 50}}, {{55, 55}, {90, 90}});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 10);  // (50,50) -> (55,55)
  EXPECT_EQ(r.points.front(), (Point{50, 50}));
  EXPECT_EQ(r.points.back(), (Point{55, 55}));
}

TEST(GridlessRouter, ExpandsFarFewerNodesThanGrid) {
  const workload::PointQuery q = workload::figure1_layout();
  const spatial::ObstacleIndex index(q.layout.boundary(), q.layout.obstacles());
  const spatial::EscapeLineSet lines(index);
  const route::GridlessRouter router(index, lines);
  const auto r = router.route(q.s, q.d);
  ASSERT_TRUE(r.found);

  const grid::GridGraph gg(index, 1);
  const grid::LeeMooreRouter lee(gg);
  const auto lr = lee.route(q.s, q.d, search::Strategy::kBestFirst);
  ASSERT_TRUE(lr.found);
  EXPECT_EQ(lr.length, r.length);
  // The paper's headline: at least an order of magnitude fewer expansions.
  EXPECT_LT(r.stats.nodes_expanded * 10, lr.stats.nodes_expanded);
}

TEST(GridlessRouter, BlindStrategiesStillConnect) {
  const Fixture f(Rect{0, 0, 100, 100}, {Rect{40, 30, 60, 70}});
  const route::GridlessRouter router(f.index, f.lines);
  for (const auto strat :
       {search::Strategy::kDepthFirst, search::Strategy::kBreadthFirst,
        search::Strategy::kBestFirst, search::Strategy::kExhaustive}) {
    route::RouteOptions opts;
    opts.strategy = strat;
    opts.max_expansions = 200000;
    const auto r = router.route({10, 50}, {90, 50}, opts);
    ASSERT_TRUE(r.found) << to_string(strat);
    if (admissible(strat)) {
      EXPECT_EQ(r.length, 120) << to_string(strat);
    } else {
      EXPECT_GE(r.length, 120) << to_string(strat);
    }
    for (const auto& seg : r.segments()) {
      EXPECT_FALSE(f.index.segment_blocked(seg)) << to_string(strat);
    }
  }
}

// -------------------------------------------------------------- CostModel

TEST(CostModel, BendPenaltyPrefersFewerCorners) {
  const Fixture f(Rect{0, 0, 100, 100}, {});
  const route::BendCost bends(1);
  const auto r = f.go({10, 10}, {60, 70}, &bends);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 110);
  EXPECT_EQ(r.bend_count(), 1u);  // exactly one corner, never a staircase
  EXPECT_EQ(r.cost, 110 * kCostScale + 1);
}

TEST(CostModel, InvertedCornerPrefersHuggingBend) {
  const workload::PointQuery q = workload::inverted_corner_layout();
  const spatial::ObstacleIndex index(q.layout.boundary(), q.layout.obstacles());
  const spatial::EscapeLineSet lines(index);

  const route::InvertedCornerCost eps(1);
  const route::GridlessRouter router(index, lines, &eps);
  const auto r = router.route(q.s, q.d);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 80);
  // The preferred route bends exactly once, at the block corner (60,60).
  ASSERT_EQ(r.points.size(), 3u);
  EXPECT_EQ(r.points[1], (Point{60, 60}));
  EXPECT_EQ(r.cost, 80 * kCostScale);  // zero penalty: the hug bend is free
}

TEST(CostModel, InvertedCornerChargesFloatingBends) {
  // In an empty plane every bend floats, so any L-route costs epsilon.
  const Fixture f(Rect{0, 0, 100, 100}, {});
  const route::InvertedCornerCost eps(3);
  const auto r = f.go({10, 10}, {60, 70}, &eps);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cost, 110 * kCostScale + 3);
}

TEST(CostModel, RegionPenaltySteersAroundCongestion) {
  // Two corridors around a block; penalize the shorter one's region hard
  // enough that the router takes the longer corridor.
  const Fixture f(Rect{0, 0, 100, 100}, {Rect{40, 20, 60, 70}});
  // Unpenalized: prefer under the block (via y=20, detour 2*0? source at
  // y=10: under is closer).
  const auto base = f.go({10, 30}, {90, 30});
  ASSERT_TRUE(base.found);
  const geom::Cost base_len = base.length;

  route::RegionPenaltyCost penalty;
  penalty.add_region(Rect{40, 0, 60, 20}, 1000 * kCostScale);
  const auto steered = f.go({10, 30}, {90, 30}, &penalty);
  ASSERT_TRUE(steered.found);
  EXPECT_GT(steered.length, base_len);
  // The steered route must not touch the penalized region.
  for (const auto& seg : steered.segments()) {
    EXPECT_FALSE(seg.bounds().intersects(Rect{40, 0, 60, 20})) << seg;
  }
}

TEST(CostModel, HistoryCostArithmeticAndClamping) {
  const spatial::ObstacleIndex idx(Rect{0, 0, 100, 100}, {});
  route::HistoryCost cost(/*history_base=*/5);
  cost.add_region(Rect{40, 0, 60, 100}, /*present=*/7, /*history=*/3);
  // Negative inputs clamp to zero — penalties must never subtract, or the
  // Manhattan heuristic stops being a lower bound and A* loses optimality.
  cost.add_region(Rect{0, 90, 10, 100}, -4, -2);
  ASSERT_EQ(cost.regions().size(), 2u);
  EXPECT_EQ(cost.regions()[1].present, 0);
  EXPECT_EQ(cost.regions()[1].history, 0);

  // An edge through the first region: present*(1+h) + base*h = 7*4 + 5*3.
  const route::EdgeContext crossing{
      idx, {{30, 50}, route::kNoDir}, geom::Dir::kEast, {70, 50}};
  EXPECT_EQ(cost.penalty(crossing), 7 * (1 + 3) + 5 * 3);
  // An edge clear of both regions is free.
  const route::EdgeContext clear{
      idx, {{10, 20}, route::kNoDir}, geom::Dir::kEast, {30, 20}};
  EXPECT_EQ(cost.penalty(clear), 0);
  // The clamped region charges nothing even when crossed.
  const route::EdgeContext clamped{
      idx, {{5, 85}, route::kNoDir}, geom::Dir::kNorth, {5, 99}};
  EXPECT_EQ(cost.penalty(clamped), 0);
}

TEST(CostModel, HistoryCostSteersLikeNegotiatedCongestion) {
  // Same corridor setup as the RegionPenalty test: a strong present+history
  // charge on the short corridor must push the route the long way around,
  // and the route may never touch the charged region.
  const Fixture f(Rect{0, 0, 100, 100}, {Rect{40, 20, 60, 70}});
  const auto base = f.go({10, 30}, {90, 30});
  ASSERT_TRUE(base.found);

  route::HistoryCost cost(kCostScale);
  cost.add_region(Rect{40, 0, 60, 20}, 100 * kCostScale, 10);
  const auto steered = f.go({10, 30}, {90, 30}, &cost);
  ASSERT_TRUE(steered.found);
  EXPECT_GT(steered.length, base.length);
  for (const auto& seg : steered.segments()) {
    EXPECT_FALSE(seg.bounds().intersects(Rect{40, 0, 60, 20})) << seg;
  }
}

TEST(CostModel, CompositeSumsPenalties) {
  route::CompositeCost comp;
  EXPECT_TRUE(comp.empty());
  comp.add(std::make_shared<route::BendCost>(2));
  comp.add(std::make_shared<route::BendCost>(3));
  const Fixture f(Rect{0, 0, 100, 100}, {});
  const auto r = f.go({0, 0}, {10, 10}, &comp);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cost, 20 * kCostScale + 5);  // one bend, both models charge
}

TEST(CostModel, OnObstacleBoundaryHelper) {
  const spatial::ObstacleIndex idx(Rect{0, 0, 100, 100},
                                   {Rect{40, 40, 60, 60}});
  EXPECT_TRUE(route::on_obstacle_boundary(idx, Point{40, 50}));
  EXPECT_TRUE(route::on_obstacle_boundary(idx, Point{60, 60}));
  EXPECT_FALSE(route::on_obstacle_boundary(idx, Point{50, 50}));  // interior
  EXPECT_FALSE(route::on_obstacle_boundary(idx, Point{10, 10}));  // free
}

// -------------------------------------------------------------- TrackGraph

TEST(TrackGraph, OracleMatchesSimpleCases) {
  const Fixture f(Rect{0, 0, 100, 100}, {Rect{40, 30, 60, 70}});
  const route::TrackGraph oracle(f.index, f.lines);
  EXPECT_EQ(oracle.shortest_length({10, 50}, {90, 50}), 120);
  EXPECT_EQ(oracle.shortest_length({10, 10}, {90, 10}), 80);
  EXPECT_EQ(oracle.shortest_length({10, 10}, {10, 10}), 0);
}

TEST(TrackGraph, MaterializesManyMoreVerticesThanAStarExpands) {
  const workload::PointQuery q = workload::figure1_layout();
  const spatial::ObstacleIndex index(q.layout.boundary(), q.layout.obstacles());
  const spatial::EscapeLineSet lines(index);
  const route::TrackGraph oracle(index, lines);
  const route::GridlessRouter router(index, lines);
  const auto r = router.route(q.s, q.d);
  ASSERT_TRUE(r.found);
  EXPECT_GT(oracle.vertex_count(q.s, q.d), r.stats.nodes_expanded);
}

TEST(GridlessRouter, SparseSuccessorsNeverBeatFull) {
  // Ablation sanity: removing escape-line crossings can only lengthen (or
  // lose) routes, never shorten them — full mode is admissible.
  const workload::PointQuery q = workload::figure1_layout();
  const spatial::ObstacleIndex index(q.layout.boundary(), q.layout.obstacles());
  const spatial::EscapeLineSet lines(index);
  const route::GridlessRouter router(index, lines);
  const auto full = router.route(q.s, q.d);
  ASSERT_TRUE(full.found);
  route::RouteOptions sparse_opts;
  sparse_opts.successors = route::SuccessorMode::kSparse;
  sparse_opts.max_expansions = 50000;
  const auto sparse = router.route(q.s, q.d, sparse_opts);
  if (sparse.found) {
    EXPECT_GE(sparse.length, full.length);
    for (const auto& seg : sparse.segments()) {
      EXPECT_FALSE(index.segment_blocked(seg)) << seg;
    }
  }
}

TEST(GridlessRouter, SparseModeSolvesMazesSuboptimally) {
  const workload::PointQuery q = workload::spiral_maze(2);
  const spatial::ObstacleIndex index(q.layout.boundary(), q.layout.obstacles());
  const spatial::EscapeLineSet lines(index);
  const route::GridlessRouter router(index, lines);
  const auto full = router.route(q.s, q.d);
  ASSERT_TRUE(full.found);
  route::RouteOptions sparse_opts;
  sparse_opts.successors = route::SuccessorMode::kSparse;
  sparse_opts.max_expansions = 50000;
  const auto sparse = router.route(q.s, q.d, sparse_opts);
  if (sparse.found) {
    EXPECT_GE(sparse.length, full.length);
  }
}

TEST(PathHelpers, CompressMergesColinearRuns) {
  const std::vector<route::RouteState> states = {
      {{0, 0}, route::kNoDir}, {{5, 0}, 0}, {{9, 0}, 0},
      {{9, 4}, 2},             {{9, 9}, 2},
  };
  const auto pts = route::compress_path(states);
  EXPECT_EQ(pts, (std::vector<Point>{{0, 0}, {9, 0}, {9, 9}}));
  EXPECT_EQ(route::polyline_length(pts), 18);
}

}  // namespace
