// Tests for the detailed-routing substrate: interference-based channel
// discovery, left-edge track assignment, and the full pipeline.

#include <gtest/gtest.h>

#include <algorithm>

#include "detail/detailed_router.hpp"

namespace {

using namespace gcr;
using geom::Interval;
using geom::Point;
using geom::Rect;
using geom::Segment;

// ------------------------------------------------------------ LeftEdge

TEST(LeftEdge, DisjointIntervalsShareOneTrack) {
  const std::vector<detail::TrackInterval> ivs = {
      {{0, 10}, 0}, {{20, 30}, 1}, {{40, 50}, 2}};
  const auto ta = detail::left_edge(ivs);
  EXPECT_EQ(ta.tracks_used, 1u);
  EXPECT_EQ(ta.track_of, (std::vector<std::size_t>{0, 0, 0}));
}

TEST(LeftEdge, OverlappingIntervalsStack) {
  const std::vector<detail::TrackInterval> ivs = {
      {{0, 30}, 0}, {{10, 40}, 1}, {{20, 50}, 2}};
  const auto ta = detail::left_edge(ivs);
  EXPECT_EQ(ta.tracks_used, 3u);
}

TEST(LeftEdge, SameNetMayAbutDifferentNetsMayNot) {
  const std::vector<detail::TrackInterval> same = {{{0, 10}, 7}, {{10, 20}, 7}};
  EXPECT_EQ(detail::left_edge(same).tracks_used, 1u);
  const std::vector<detail::TrackInterval> diff = {{{0, 10}, 1}, {{10, 20}, 2}};
  EXPECT_EQ(detail::left_edge(diff).tracks_used, 2u);
}

TEST(LeftEdge, ClassicStaircasePacksTwoTracks) {
  // {[0,10],[5,15],[12,22],[16,26]} packs into 2 tracks.
  const std::vector<detail::TrackInterval> ivs = {
      {{0, 10}, 0}, {{5, 15}, 1}, {{12, 22}, 2}, {{16, 26}, 3}};
  const auto ta = detail::left_edge(ivs);
  EXPECT_EQ(ta.tracks_used, 2u);
  // No two different-net intervals on the same track overlap.
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    for (std::size_t j = i + 1; j < ivs.size(); ++j) {
      if (ta.track_of[i] != ta.track_of[j]) continue;
      if (ivs[i].net == ivs[j].net) continue;
      EXPECT_FALSE(ivs[i].span.overlaps(ivs[j].span)) << i << "," << j;
    }
  }
}

TEST(LeftEdge, EmptyInput) {
  const auto ta = detail::left_edge({});
  EXPECT_EQ(ta.tracks_used, 0u);
  EXPECT_TRUE(ta.track_of.empty());
}

// ------------------------------------------------------------ Channels

TEST(Channels, ParallelOverlappingSubnetsCluster) {
  const std::vector<detail::SubNet> subnets = {
      {0, Segment{Point{0, 10}, Point{50, 10}}},
      {1, Segment{Point{20, 12}, Point{70, 12}}},   // interferes with #0
      {2, Segment{Point{0, 50}, Point{50, 50}}},    // far away: own channel
      {3, Segment{Point{30, 0}, Point{30, 40}}},    // vertical: own channel
  };
  const auto channels = detail::assign_channels(subnets, /*window=*/8);
  ASSERT_EQ(channels.size(), 3u);
  const auto& first = channels[0];
  EXPECT_EQ(first.members.size(), 2u);
  EXPECT_EQ(first.axis, geom::Axis::kX);
}

TEST(Channels, WindowControlsInterference) {
  const std::vector<detail::SubNet> subnets = {
      {0, Segment{Point{0, 10}, Point{50, 10}}},
      {1, Segment{Point{20, 30}, Point{70, 30}}},  // 20 apart
  };
  EXPECT_EQ(detail::assign_channels(subnets, 8).size(), 2u);
  EXPECT_EQ(detail::assign_channels(subnets, 25).size(), 1u);
}

TEST(Channels, TransitiveClosureMerges) {
  // a-b interfere, b-c interfere, a-c do not: one channel of three.
  const std::vector<detail::SubNet> subnets = {
      {0, Segment{Point{0, 10}, Point{50, 10}}},
      {1, Segment{Point{0, 16}, Point{50, 16}}},
      {2, Segment{Point{0, 22}, Point{50, 22}}},
  };
  const auto channels = detail::assign_channels(subnets, 8);
  ASSERT_EQ(channels.size(), 1u);
  EXPECT_EQ(channels[0].members.size(), 3u);
}

TEST(Channels, DegenerateSubnetsIgnored) {
  const std::vector<detail::SubNet> subnets = {
      {0, Segment{Point{5, 5}, Point{5, 5}}},
  };
  EXPECT_TRUE(detail::assign_channels(subnets, 8).empty());
}

// ------------------------------------------------------- DetailedRouter

route::NetlistResult fake_global(std::vector<std::vector<Segment>> nets) {
  route::NetlistResult r;
  for (auto& segs : nets) {
    route::NetRoute nr;
    nr.ok = true;
    nr.segments = std::move(segs);
    r.routes.push_back(std::move(nr));
    ++r.routed;
  }
  return r;
}

TEST(DetailedRouter, CountsSubnetsChannelsTracksVias) {
  // Two nets sharing a horizontal corridor plus one bend each.
  const auto global = fake_global({
      {Segment{Point{0, 10}, Point{50, 10}}, Segment{Point{50, 10}, Point{50, 40}}},
      {Segment{Point{0, 12}, Point{60, 12}}, Segment{Point{60, 12}, Point{60, 40}}},
  });
  const detail::DetailedRouter dr;
  const auto res = dr.run(global);
  EXPECT_EQ(res.subnet_count, 4u);
  EXPECT_EQ(res.via_count, 2u);  // one bend per net
  EXPECT_GE(res.channel_count, 2u);
  // The shared horizontal corridor needs two tracks.
  EXPECT_GE(res.max_channel_tracks, 2u);
  EXPECT_EQ(res.wires.size(), 4u);
}

TEST(DetailedRouter, TrackOffsetsSeparateDifferentNets) {
  const auto global = fake_global({
      {Segment{Point{0, 10}, Point{50, 10}}},
      {Segment{Point{0, 10}, Point{60, 10}}},  // same track, different net
  });
  detail::DetailedOptions opts;
  opts.track_pitch = 3;
  const detail::DetailedRouter dr(opts);
  const auto res = dr.run(global);
  ASSERT_EQ(res.wires.size(), 2u);
  EXPECT_NE(res.wires[0].seg.track(), res.wires[1].seg.track());
  EXPECT_EQ(std::abs(res.wires[0].seg.track() - res.wires[1].seg.track()), 3);
}

TEST(DetailedRouter, LayersFollowHVConvention) {
  const auto global = fake_global({
      {Segment{Point{0, 10}, Point{50, 10}}, Segment{Point{50, 10}, Point{50, 40}}},
  });
  const detail::DetailedRouter dr;
  const auto res = dr.run(global);
  for (const auto& w : res.wires) {
    if (w.seg.horizontal()) {
      EXPECT_EQ(w.layer, 0u);
    } else {
      EXPECT_EQ(w.layer, 1u);
    }
  }
}

TEST(DetailedRouter, FailedNetsSkipped) {
  route::NetlistResult global;
  route::NetRoute bad;
  bad.ok = false;
  bad.segments.push_back(Segment{Point{0, 0}, Point{9, 0}});
  global.routes.push_back(bad);
  const detail::DetailedRouter dr;
  const auto res = dr.run(global);
  EXPECT_EQ(res.subnet_count, 0u);
  EXPECT_EQ(res.via_count, 0u);
}

TEST(DetailedRouter, ViaPositionsAtBends) {
  const auto global = fake_global({
      {Segment{Point{0, 10}, Point{50, 10}}, Segment{Point{50, 10}, Point{50, 40}}},
  });
  const detail::DetailedRouter dr;
  const auto res = dr.run(global);
  ASSERT_EQ(res.vias.size(), 1u);
  EXPECT_EQ(res.vias[0], (Point{50, 10}));
}

}  // namespace
