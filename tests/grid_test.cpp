// Tests for the Lee-Moore grid baseline: rasterization, snapping, wave
// expansion, and its equivalence to "the general algorithm with grid
// successors and h = 0".

#include <gtest/gtest.h>

#include "grid/grid_graph.hpp"
#include "grid/lee_moore.hpp"
#include "spatial/obstacle_index.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Rect;

spatial::ObstacleIndex one_block() {
  return spatial::ObstacleIndex(Rect{0, 0, 100, 100}, {Rect{40, 40, 60, 60}});
}

TEST(GridGraph, DimensionsFollowPitch) {
  const auto idx = one_block();
  const grid::GridGraph g1(idx, 1);
  EXPECT_EQ(g1.nx(), 101);
  EXPECT_EQ(g1.ny(), 101);
  EXPECT_EQ(g1.vertex_count(), 101u * 101u);

  const grid::GridGraph g5(idx, 5);
  EXPECT_EQ(g5.nx(), 21);
  EXPECT_EQ(g5.vertex_count(), 21u * 21u);
}

TEST(GridGraph, RasterizationBlocksOnlyOpenInterior) {
  const auto idx = one_block();
  const grid::GridGraph g(idx, 1);
  // Boundary grid points of the block stay routable (hugging).
  EXPECT_TRUE(g.routable(g.nearest(Point{40, 50})));
  EXPECT_TRUE(g.routable(g.nearest(Point{60, 60})));
  EXPECT_FALSE(g.routable(g.nearest(Point{50, 50})));
  EXPECT_FALSE(g.routable(g.nearest(Point{41, 41})));
}

TEST(GridGraph, CoarsePitchRasterization) {
  const auto idx = one_block();
  const grid::GridGraph g(idx, 10);
  // Grid point (50,50) is strictly inside; (40,50) lies on the edge.
  EXPECT_FALSE(g.routable(g.nearest(Point{50, 50})));
  EXPECT_TRUE(g.routable(g.nearest(Point{40, 50})));
}

TEST(GridGraph, ToDbuRoundTrip) {
  const auto idx = one_block();
  const grid::GridGraph g(idx, 5);
  const grid::GridPoint gp = g.nearest(Point{42, 58});
  EXPECT_EQ(g.to_dbu(gp), (Point{40, 60}));  // rounds to nearest lattice
}

TEST(GridGraph, SnapEscapesBlockedPoint) {
  const auto idx = one_block();
  const grid::GridGraph g(idx, 1);
  const auto snapped = g.snap(Point{50, 50});  // interior: must move out
  ASSERT_TRUE(snapped.has_value());
  EXPECT_TRUE(g.routable(*snapped));
}

TEST(GridGraph, SnapReturnsNulloptWhenFullyBlocked) {
  // An obstacle covering everything except the outer boundary ring still
  // leaves routable boundary points, so block the entire region instead by
  // inflating past the boundary.
  const spatial::ObstacleIndex idx(Rect{10, 10, 20, 20},
                                   {Rect{0, 0, 30, 30}});
  const grid::GridGraph g(idx, 1);
  EXPECT_FALSE(g.snap(Point{15, 15}).has_value());
}

TEST(LeeMoore, FindsShortestPathAroundBlock) {
  const auto idx = one_block();
  const grid::GridGraph g(idx, 1);
  const grid::LeeMooreRouter router(g);
  const auto r = router.route({10, 50}, {90, 50});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 80 + 2 * 10);
}

TEST(LeeMoore, BreadthFirstEqualsBestFirstLengthOnUnitGrid) {
  // On a uniform grid, BFS wave expansion and best-first (h=0, Dijkstra)
  // find equal-length paths: the paper's Lee-Moore equivalence.
  const auto idx = one_block();
  const grid::GridGraph g(idx, 2);
  const grid::LeeMooreRouter router(g);
  const auto bfs = router.route({10, 50}, {90, 50},
                                search::Strategy::kBreadthFirst);
  const auto dij = router.route({10, 50}, {90, 50},
                                search::Strategy::kBestFirst);
  ASSERT_TRUE(bfs.found);
  ASSERT_TRUE(dij.found);
  EXPECT_EQ(bfs.length, dij.length);
}

TEST(LeeMoore, AStarExpandsFewerNodesThanWaveExpansion) {
  const auto idx = one_block();
  const grid::GridGraph g(idx, 1);
  const grid::LeeMooreRouter router(g);
  const auto wave = router.route({10, 50}, {90, 50},
                                 search::Strategy::kBestFirst);
  const auto astar = router.route({10, 50}, {90, 50},
                                  search::Strategy::kAStar);
  ASSERT_TRUE(wave.found);
  ASSERT_TRUE(astar.found);
  EXPECT_EQ(wave.length, astar.length);
  EXPECT_LT(astar.stats.nodes_expanded, wave.stats.nodes_expanded);
}

TEST(LeeMoore, PitchScalesLength) {
  const auto idx = one_block();
  const grid::GridGraph g(idx, 5);
  const grid::LeeMooreRouter router(g);
  const auto r = router.route({10, 50}, {90, 50});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length % 5, 0);
  EXPECT_GE(r.length, 100);
}

TEST(LeeMoore, MultiSourceMultiTarget) {
  const auto idx = one_block();
  const grid::GridGraph g(idx, 1);
  const grid::LeeMooreRouter router(g);
  const auto r = router.route_set({{10, 10}, {80, 80}}, {{85, 85}, {0, 99}});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.length, 10);  // (80,80) -> (85,85)
}

TEST(LeeMoore, UnroutableWhenTargetsMissing) {
  const auto idx = one_block();
  const grid::GridGraph g(idx, 1);
  const grid::LeeMooreRouter router(g);
  const auto r = router.route_set({{10, 10}}, {});
  EXPECT_FALSE(r.found);
}

TEST(LeeMoore, PathIsFourConnectedAndUnblocked) {
  const auto idx = one_block();
  const grid::GridGraph g(idx, 1);
  const grid::LeeMooreRouter router(g);
  const auto r = router.route({30, 30}, {70, 70});
  ASSERT_TRUE(r.found);
  for (std::size_t i = 0; i + 1 < r.points.size(); ++i) {
    EXPECT_EQ(manhattan(r.points[i], r.points[i + 1]), 1);
    EXPECT_FALSE(idx.interior(r.points[i]));
  }
}

}  // namespace
