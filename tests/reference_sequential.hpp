#pragma once

#include <cstddef>
#include <numeric>
#include <utility>
#include <vector>

#include "core/netlist_router.hpp"
#include "core/steiner.hpp"
#include "layout/layout.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"

/// \file reference_sequential.hpp
/// The pre-incremental sequential routing loop, kept verbatim as the
/// differential-testing reference: every routed net's wire halos join the
/// obstacle list and BOTH search structures are rebuilt from scratch before
/// the next net.  `NetlistRouter::route_all(kSequential)` must reproduce
/// this bit-for-bit (segments, wirelength, search stats); the tests prove
/// it and `bench_incremental_env` prices the rebuilds it avoids.  Any
/// change to sequential-mode semantics (pins_ok rules, halo inflation,
/// accounting) must land here AND in the router, or the differential suite
/// will fail — that is the point.

namespace gcr::test {

/// Routes \p lay sequentially with per-net from-scratch rebuilds, honouring
/// \p opts.order (empty = netlist order) like the production router.
inline route::NetlistResult reference_sequential(
    const layout::Layout& lay, const route::NetlistOptions& opts) {
  route::NetlistResult result;
  result.routes.resize(lay.nets().size());
  std::vector<std::size_t> order = opts.order;
  if (order.empty()) {
    order.resize(lay.nets().size());
    std::iota(order.begin(), order.end(), 0);
  }
  std::vector<geom::Rect> obstacles = lay.obstacles();
  for (const std::size_t i : order) {
    const spatial::ObstacleIndex index(lay.boundary(), obstacles);
    const spatial::EscapeLineSet lines(index);
    const route::SteinerNetRouter net_router(index, lines);
    bool pins_ok = true;
    for (const auto& pins : route::net_terminal_pins(lay, lay.nets()[i])) {
      for (const geom::Point& p : pins) {
        if (!index.routable(p)) pins_ok = false;
      }
    }
    route::NetRoute nr;
    if (pins_ok) nr = net_router.route_net(lay, lay.nets()[i], opts.steiner);
    if (nr.ok) {
      for (const geom::Segment& s : nr.segments) {
        obstacles.push_back(s.bounds().inflated(opts.wire_halo));
      }
      ++result.routed;
      result.total_wirelength += nr.wirelength;
    } else {
      ++result.failed;
    }
    result.stats += nr.stats;
    result.routes[i] = std::move(nr);
  }
  return result;
}

}  // namespace gcr::test
