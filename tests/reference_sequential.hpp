#pragma once

#include <cstddef>
#include <numeric>
#include <utility>
#include <vector>

#include "core/netlist_router.hpp"
#include "core/steiner.hpp"
#include "layout/layout.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"

/// \file reference_sequential.hpp
/// The pre-incremental sequential routing loop, kept verbatim as the
/// differential-testing reference: every routed net's wire halos join the
/// obstacle list and BOTH search structures are rebuilt from scratch before
/// the next net.  `NetlistRouter::route_all(kSequential)` must reproduce
/// this bit-for-bit (segments, wirelength, search stats); the tests prove
/// it and `bench_incremental_env` prices the rebuilds it avoids.  Any
/// change to sequential-mode semantics (pins_ok rules, halo inflation,
/// accounting) must land here AND in the router, or the differential suite
/// will fail — that is the point.

namespace gcr::test {

/// Routes \p lay sequentially with per-net from-scratch rebuilds, honouring
/// \p opts.order (empty = netlist order) like the production router.
inline route::NetlistResult reference_sequential(
    const layout::Layout& lay, const route::NetlistOptions& opts) {
  route::NetlistResult result;
  result.routes.resize(lay.nets().size());
  std::vector<std::size_t> order = opts.order;
  if (order.empty()) {
    order.resize(lay.nets().size());
    std::iota(order.begin(), order.end(), 0);
  }
  std::vector<geom::Rect> obstacles = lay.obstacles();
  for (const std::size_t i : order) {
    const spatial::ObstacleIndex index(lay.boundary(), obstacles);
    const spatial::EscapeLineSet lines(index);
    const route::SteinerNetRouter net_router(index, lines);
    bool pins_ok = true;
    for (const auto& pins : route::net_terminal_pins(lay, lay.nets()[i])) {
      for (const geom::Point& p : pins) {
        if (!index.routable(p)) pins_ok = false;
      }
    }
    route::NetRoute nr;
    if (pins_ok) nr = net_router.route_net(lay, lay.nets()[i], opts.steiner);
    if (nr.ok) {
      for (const geom::Segment& s : nr.segments) {
        obstacles.push_back(s.bounds().inflated(opts.wire_halo));
      }
      ++result.routed;
      result.total_wirelength += nr.wirelength;
    } else {
      ++result.failed;
    }
    result.stats += nr.stats;
    result.routes[i] = std::move(nr);
  }
  return result;
}

/// Rip-up-and-reroute with *from-scratch environment rebuilds* at every
/// step — the reference `NetlistOptions::reroute` (incremental tombstone
/// removal) must reproduce bit-for-bit.  First pass in \p opts.order (empty
/// = netlist order), then the \p reroute nets' halos are dropped from the
/// obstacle list and each is re-routed, in list order, against a freshly
/// built index over the committed remainder.  Accounting replays the final
/// order exactly like the production driver.
inline route::NetlistResult reference_ripup(
    const layout::Layout& lay, const route::NetlistOptions& opts,
    const std::vector<std::size_t>& reroute) {
  const std::size_t n = lay.nets().size();
  route::NetlistResult result;
  result.routes.resize(n);
  std::vector<std::size_t> order = opts.order;
  if (order.empty()) {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
  }

  std::vector<geom::Rect> base = lay.obstacles();
  std::vector<std::vector<geom::Rect>> halos(n);
  const auto route_one = [&](std::size_t i,
                             const std::vector<geom::Rect>& obstacles) {
    const spatial::ObstacleIndex index(lay.boundary(), obstacles);
    const spatial::EscapeLineSet lines(index);
    const route::SteinerNetRouter net_router(index, lines);
    bool pins_ok = true;
    for (const auto& pins : route::net_terminal_pins(lay, lay.nets()[i])) {
      for (const geom::Point& p : pins) {
        if (!index.routable(p)) pins_ok = false;
      }
    }
    route::NetRoute nr;
    if (pins_ok) nr = net_router.route_net(lay, lay.nets()[i], opts.steiner);
    halos[i].clear();
    if (nr.ok) {
      for (const geom::Segment& s : nr.segments) {
        halos[i].push_back(s.bounds().inflated(opts.wire_halo));
      }
    }
    result.routes[i] = std::move(nr);
  };

  // First pass: plain sequential accumulation.
  std::vector<geom::Rect> obstacles = base;
  std::vector<std::size_t> committed;  // commit order, for the remainder
  for (const std::size_t i : order) {
    route_one(i, obstacles);
    if (result.routes[i].ok) {
      committed.push_back(i);
      obstacles.insert(obstacles.end(), halos[i].begin(), halos[i].end());
    }
  }

  // Rip-up: rebuild the obstacle list over the committed remainder, then
  // re-route the list against it, committing each re-route.
  std::vector<bool> ripped(n, false);
  for (const std::size_t r : reroute) ripped[r] = true;
  obstacles = base;
  for (const std::size_t i : committed) {
    if (ripped[i]) continue;
    obstacles.insert(obstacles.end(), halos[i].begin(), halos[i].end());
  }
  for (const std::size_t r : reroute) {
    route_one(r, obstacles);
    obstacles.insert(obstacles.end(), halos[r].begin(), halos[r].end());
  }

  // Final-order accounting, as the production driver does.
  const auto account = [&result](std::size_t i) {
    const route::NetRoute& nr = result.routes[i];
    result.stats += nr.stats;
    if (nr.ok) {
      ++result.routed;
      result.total_wirelength += nr.wirelength;
    } else {
      ++result.failed;
    }
  };
  for (const std::size_t i : order) {
    if (!ripped[i]) account(i);
  }
  for (const std::size_t r : reroute) account(r);
  return result;
}

}  // namespace gcr::test
