#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

/// \file fuzz_env.hpp
/// Environment-tunable effort for the randomized cross-validation suites.
///
/// The default iteration counts keep `ctest` fast for the edit-build-test
/// loop; CI (or a soak run) can crank them up without a rebuild:
///
///     GCR_FUZZ_ITERS=20000 ctest -L fuzz --output-on-failure
///
/// `GCR_FUZZ_ITERS` overrides the per-test query-loop counts and also
/// grows the number of generated fuzz seeds (seed count scales as
/// iters/1000, capped at kMaxFuzzSeeds so total effort stays roughly
/// linear in the knob rather than quadratic).  Unset, zero, or unparsable
/// values fall back to the built-in defaults.

namespace gcr::test {

/// Hard ceiling on generated seeds: each seed is a full gtest suite
/// instantiation, so an absurd env value must not OOM the test binary.
inline constexpr std::size_t kMaxFuzzSeeds = 64;

/// Raw env override; 0 = not set / invalid.
inline long fuzz_iters_override() {
  static const long value = [] {
    const char* env = std::getenv("GCR_FUZZ_ITERS");
    if (env == nullptr) return 0L;
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    return (end != env && parsed > 0) ? parsed : 0L;
  }();
  return value;
}

/// Iterations for a randomized query loop: the env override when set,
/// otherwise the suite's built-in default.
inline int fuzz_iters(int fallback) {
  const long override_value = fuzz_iters_override();
  if (override_value <= 0) return fallback;
  constexpr long kIntMax = std::numeric_limits<int>::max();
  return static_cast<int>(override_value < kIntMax ? override_value
                                                   : kIntMax);
}

/// Seed list for INSTANTIATE_TEST_SUITE_P: `count` seeds starting at
/// `start` with stride `stride`.  With GCR_FUZZ_ITERS set, the count
/// grows to iters/1000 — never below the default, never above
/// kMaxFuzzSeeds — so soak runs cover more layouts without exploding
/// quadratically (total work ~ seeds x iters).
inline std::vector<std::uint64_t> fuzz_seeds(std::uint64_t start,
                                             std::uint64_t stride,
                                             std::size_t count) {
  const long override_value = fuzz_iters_override();
  if (override_value > 0) {
    const std::size_t scaled = static_cast<std::size_t>(override_value) / 1000;
    if (scaled > count) count = scaled;
    if (count > kMaxFuzzSeeds) count = kMaxFuzzSeeds;
  }
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    seeds.push_back(start + stride * static_cast<std::uint64_t>(i));
  }
  return seeds;
}

}  // namespace gcr::test
