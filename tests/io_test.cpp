// Tests for the text interchange format (round trip + error reporting) and
// the SVG export.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/netlist_router.hpp"
#include "io/svg.hpp"
#include "io/text_format.hpp"
#include "workload/floorplan.hpp"
#include "workload/netgen.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Rect;

constexpr const char* kSample = R"(
# a small two-cell problem
boundary 0 0 100 100
minsep 4
cell alu 10 10 30 30
cell rom 50 50 80 80
term alu a 30 20
term alu clk 10 15 30 15
term rom d 50 70
pad vdd 0 5
net n1 alu.a rom.d
net pwr alu.clk pad.vdd
)";

TEST(TextFormat, ParsesSample) {
  const layout::Layout lay = io::read_layout_string(kSample);
  EXPECT_EQ(lay.boundary(), (Rect{0, 0, 100, 100}));
  EXPECT_EQ(lay.min_separation(), 4);
  ASSERT_EQ(lay.cells().size(), 2u);
  EXPECT_EQ(lay.cells()[0].name(), "alu");
  ASSERT_EQ(lay.cells()[0].terminals().size(), 2u);
  EXPECT_EQ(lay.cells()[0].terminals()[1].pins.size(), 2u);  // multi-pin clk
  ASSERT_EQ(lay.pads().size(), 1u);
  ASSERT_EQ(lay.nets().size(), 2u);
  EXPECT_FALSE(lay.nets()[1].terminals()[1].cell.valid());  // pad ref
  EXPECT_TRUE(lay.valid());
}

TEST(TextFormat, RoundTripPreservesEverything) {
  const layout::Layout a = io::read_layout_string(kSample);
  const std::string text = io::write_layout_string(a);
  const layout::Layout b = io::read_layout_string(text);
  EXPECT_EQ(io::write_layout_string(b), text);
  EXPECT_EQ(b.cells().size(), a.cells().size());
  EXPECT_EQ(b.nets().size(), a.nets().size());
  EXPECT_EQ(b.pin_count(), a.pin_count());
}

TEST(TextFormat, RoundTripGeneratedLayout) {
  workload::FloorplanOptions opts;
  opts.seed = 11;
  layout::Layout lay = workload::random_floorplan(opts);
  workload::sprinkle_pins(lay);
  workload::generate_nets(lay);
  const std::string text = io::write_layout_string(lay);
  const layout::Layout back = io::read_layout_string(text);
  EXPECT_EQ(io::write_layout_string(back), text);
  EXPECT_EQ(back.nets().size(), lay.nets().size());
}

TEST(TextFormat, PolygonCells) {
  const char* text = R"(
boundary 0 0 100 100
poly ell 10 10 50 10 50 30 30 30 30 50 10 50
)";
  const layout::Layout lay = io::read_layout_string(text);
  ASSERT_EQ(lay.cells().size(), 1u);
  EXPECT_TRUE(lay.cells()[0].polygonal());
  EXPECT_EQ(lay.cells()[0].shape().area(), 40 * 20 + 20 * 20);
  // Writer emits the polygon; round trip is stable.
  const layout::Layout back = io::read_layout_string(io::write_layout_string(lay));
  EXPECT_TRUE(back.cells()[0].polygonal());
}

TEST(TextFormat, Errors) {
  EXPECT_THROW((void)io::read_layout_string("bogus 1 2"), io::ParseError);
  EXPECT_THROW(io::read_layout_string("boundary 1 2 3"), io::ParseError);
  EXPECT_THROW(io::read_layout_string("cell a 0 0 x 9"), io::ParseError);
  EXPECT_THROW(io::read_layout_string("term ghost t 1 2"), io::ParseError);
  EXPECT_THROW(io::read_layout_string("net n a.b c.d"), io::ParseError);
  EXPECT_THROW(io::read_layout_string("net n nodot"), io::ParseError);
  EXPECT_THROW(
      io::read_layout_string("cell a 0 0 5 5\ncell a 6 6 9 9"),
      io::ParseError);
  EXPECT_THROW(io::read_layout_string("poly p 0 0 5 5 0 5 5 0"),
               io::ParseError);  // invalid polygon
  try {
    (void)io::read_layout_string("boundary 0 0 9 9\nwhat");
    FAIL() << "expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(TextFormat, RejectsTruncatedAndGarbageInput) {
  // The serving layer parses untrusted request bodies: anything that is not
  // a complete layout must throw, never return partial state.
  EXPECT_THROW((void)io::read_layout_string(""), io::ParseError);
  EXPECT_THROW((void)io::read_layout_string("# only a comment\n"),
               io::ParseError);
  // Truncated: directives but no boundary.
  EXPECT_THROW((void)io::read_layout_string("minsep 4\n"), io::ParseError);
  // Degenerate or inverted boundary.
  EXPECT_THROW((void)io::read_layout_string("boundary 0 0 0 0\n"),
               io::ParseError);
  EXPECT_THROW((void)io::read_layout_string("boundary 9 9 0 0\n"),
               io::ParseError);
  // Duplicate boundary.
  EXPECT_THROW((void)io::read_layout_string(
                   "boundary 0 0 9 9\nboundary 0 0 8 8\n"),
               io::ParseError);
  // Binary garbage: the error must carry line + a printable token.
  try {
    (void)io::read_layout_string(std::string("\x01\x02\xff garbage", 11));
    FAIL() << "expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    const std::string what = e.what();
    for (const char c : what) {
      EXPECT_TRUE(c == '\t' || (static_cast<unsigned char>(c) >= 0x20 &&
                                static_cast<unsigned char>(c) < 0x7f))
          << "unprintable byte in diagnostic";
    }
  }
  // Error messages report how many arguments were actually supplied.
  try {
    (void)io::read_layout_string("boundary 1 2 3");
    FAIL() << "expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("got 3"), std::string::npos);
  }
}

TEST(TextFormat, CommentsAndBlankLinesIgnored) {
  const layout::Layout lay = io::read_layout_string(
      "\n# header\nboundary 0 0 9 9\n\ncell a 1 1 3 3  # inline comment\n");
  EXPECT_EQ(lay.cells().size(), 1u);
}

TEST(Svg, ContainsCellsPinsAndRoutes) {
  layout::Layout lay(Rect{0, 0, 100, 100});
  lay.set_min_separation(4);
  const auto a = lay.add_cell(layout::Cell{"a", Rect{10, 10, 30, 30}});
  const auto b = lay.add_cell(layout::Cell{"b", Rect{60, 60, 90, 90}});
  lay.cell(a).add_pin_terminal("p", Point{30, 20});
  lay.cell(b).add_pin_terminal("q", Point{60, 70});
  layout::Net net("n");
  net.add_terminal(layout::TerminalRef{a, 0});
  net.add_terminal(layout::TerminalRef{b, 0});
  lay.add_net(std::move(net));

  const route::NetlistRouter router(lay);
  const auto result = router.route_all();
  const std::string svg = io::svg_string(lay, &result);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);  // pins
  EXPECT_NE(svg.find("<line"), std::string::npos);    // route segments
  EXPECT_NE(svg.find(">a</text>"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, PolygonCellRendersDecomposition) {
  layout::Layout lay(Rect{0, 0, 60, 60});
  const geom::OrthoPolygon ell{{{10, 10}, {50, 10}, {50, 30}, {30, 30},
                                {30, 50}, {10, 50}}};
  lay.add_cell(layout::Cell{"ell", ell});
  const std::string svg = io::svg_string(lay);
  // Two decomposition rectangles plus the backdrop.
  EXPECT_GE(static_cast<int>(std::count(svg.begin(), svg.end(), '\n')), 4);
  EXPECT_NE(svg.find("ell"), std::string::npos);
}

}  // namespace
