// Tests for the classic two-row channel router: density bounds, vertical
// constraints, dogleg cycle breaking, on textbook-style instances.

#include <gtest/gtest.h>

#include "detail/channel_router.hpp"

namespace {

using namespace gcr::detail;

/// Checks the two legality rules: no same-track overlap between different
/// nets, and every vertical constraint respected (top net on higher track —
/// i.e. numerically smaller — than bottom net at that column).
void expect_legal(const ChannelProblem& p, const ChannelResult& r) {
  ASSERT_TRUE(r.ok);
  for (std::size_t i = 0; i < r.trunks.size(); ++i) {
    for (std::size_t j = i + 1; j < r.trunks.size(); ++j) {
      const ChannelTrunk& a = r.trunks[i];
      const ChannelTrunk& b = r.trunks[j];
      if (a.track != b.track || a.net == b.net) continue;
      const bool overlap = a.col_lo <= b.col_hi && b.col_lo <= a.col_hi;
      EXPECT_FALSE(overlap) << "nets " << a.net << "," << b.net << " on track "
                            << a.track;
    }
  }
  const auto trunk_at = [&r](int net, std::size_t col) -> const ChannelTrunk* {
    for (const ChannelTrunk& t : r.trunks) {
      if (t.net == net && t.col_lo <= col && col <= t.col_hi) return &t;
    }
    return nullptr;
  };
  for (std::size_t c = 0; c < p.columns(); ++c) {
    const int t = p.top[c];
    const int b = p.bottom[c];
    if (t <= 0 || b <= 0 || t == b) continue;
    const ChannelTrunk* tt = trunk_at(t, c);
    const ChannelTrunk* bt = trunk_at(b, c);
    if (tt == nullptr || bt == nullptr) continue;  // straight verticals
    EXPECT_LT(tt->track, bt->track)
        << "column " << c << ": net " << t << " must be above net " << b;
  }
}

TEST(ChannelRouter, SingleNetSingleTrack) {
  const ChannelProblem p{{1, 0, 1}, {0, 0, 0}};
  const auto r = route_channel(p);
  expect_legal(p, r);
  EXPECT_EQ(r.tracks_used, 1u);
}

TEST(ChannelRouter, DisjointNetsShareTrack) {
  const ChannelProblem p{{1, 1, 0, 2, 2}, {0, 0, 0, 0, 0}};
  const auto r = route_channel(p);
  expect_legal(p, r);
  EXPECT_EQ(r.tracks_used, 1u);
}

TEST(ChannelRouter, OverlappingNetsStack) {
  const ChannelProblem p{{1, 2, 0, 0, 0}, {0, 0, 1, 2, 0}};
  const auto r = route_channel(p);
  expect_legal(p, r);
  EXPECT_GE(r.tracks_used, 2u);
}

TEST(ChannelRouter, VerticalConstraintOrdersTracks) {
  // Column 1 pins net 1 on top and net 2 on bottom; both span overlapping
  // ranges, so net 1 must take the higher track.
  const ChannelProblem p{{0, 1, 1, 0}, {2, 2, 0, 0}};
  const auto r = route_channel(p);
  expect_legal(p, r);
}

TEST(ChannelRouter, DensityLowerBoundRespected) {
  const ChannelProblem p{{1, 2, 3, 0, 0, 0}, {0, 0, 0, 1, 2, 3}};
  EXPECT_EQ(p.density(), 3u);
  const auto r = route_channel(p);
  expect_legal(p, r);
  EXPECT_GE(r.tracks_used, p.density());
}

TEST(ChannelRouter, ClassicExampleNearDensity) {
  // A Yoshimura-Kuh-style instance.
  const ChannelProblem p{
      {0, 1, 4, 5, 1, 6, 7, 0, 4, 9, 10, 10},
      {2, 3, 5, 3, 5, 2, 6, 8, 9, 8, 7, 9}};
  const auto r = route_channel(p);
  expect_legal(p, r);
  EXPECT_GE(r.tracks_used, p.density());
  EXPECT_LE(r.tracks_used, p.density() + 4);  // near-density, not exact
}

TEST(ChannelRouter, CycleBrokenByDogleg) {
  // Net 1 above net 2 at column 0, net 2 above net 1 at column 2: a 2-cycle.
  // Net 1 has an internal pin at column 1, so one dogleg resolves it.
  const ChannelProblem p{{1, 1, 2}, {2, 1, 1}};
  const auto r = route_channel(p);
  EXPECT_TRUE(r.ok);
  EXPECT_GE(r.doglegs, 1u);
}

TEST(ChannelRouter, IrreducibleCycleFailsWithoutDoglegs) {
  const ChannelProblem p{{1, 1, 2}, {2, 1, 1}};
  ChannelOptions opts;
  opts.allow_doglegs = false;
  const auto r = route_channel(p, opts);
  EXPECT_FALSE(r.ok);
}

TEST(ChannelRouter, UnsplittableCycleFails) {
  // 2-cycle between two 2-pin nets: no internal pin to dogleg at.
  const ChannelProblem p{{1, 2}, {2, 1}};
  const auto r = route_channel(p);
  EXPECT_FALSE(r.ok);
}

TEST(ChannelRouter, StraightVerticalNeedsNoTrunk) {
  // Net 1 pins top and bottom of the same column only.
  const ChannelProblem p{{1, 2, 2}, {1, 0, 0}};
  const auto r = route_channel(p);
  expect_legal(p, r);
  for (const ChannelTrunk& t : r.trunks) EXPECT_NE(t.net, 1);
}

TEST(ChannelRouter, EmptyChannel) {
  const ChannelProblem p{{}, {}};
  const auto r = route_channel(p);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.tracks_used, 0u);
  EXPECT_EQ(p.density(), 0u);
}

TEST(ChannelRouter, DensityComputation) {
  const ChannelProblem p{{1, 0, 0, 1}, {0, 2, 2, 0}};
  EXPECT_EQ(p.density(), 2u);
}

}  // namespace
