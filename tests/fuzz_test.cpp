// Brute-force cross-validation ("fuzz") tests: the optimized spatial
// structures must agree with naive reference implementations on thousands
// of randomized queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "fuzz_env.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"
#include "workload/floorplan.hpp"

namespace {

using namespace gcr;
using geom::Axis;
using geom::Coord;
using geom::Dir;
using geom::Point;
using geom::Rect;
using geom::Segment;

/// Naive reference ray trace: O(obstacles) scan, no tables.
spatial::RayHit naive_trace(const Rect& boundary,
                            const std::vector<Rect>& obstacles, const Point& p,
                            Dir d) {
  spatial::RayHit hit;
  switch (d) {
    case Dir::kEast: hit.stop = boundary.xhi; break;
    case Dir::kWest: hit.stop = boundary.xlo; break;
    case Dir::kNorth: hit.stop = boundary.yhi; break;
    case Dir::kSouth: hit.stop = boundary.ylo; break;
  }
  const Axis ax = axis_of(d);
  const Axis perp = other(ax);
  for (std::size_t i = 0; i < obstacles.size(); ++i) {
    const Rect& r = obstacles[i];
    if (!r.span(perp).contains_open(p.along(perp))) continue;
    Coord edge = 0;
    switch (d) {
      case Dir::kEast: edge = r.xlo; break;
      case Dir::kWest: edge = r.xhi; break;
      case Dir::kNorth: edge = r.ylo; break;
      case Dir::kSouth: edge = r.yhi; break;
    }
    const int sgn = sign_of(d);
    if (sgn * edge < sgn * p.along(ax)) continue;  // behind the origin
    if (sgn * edge < sgn * hit.stop) {
      hit.stop = edge;
      hit.obstacle = i;
    }
  }
  const int sgn = sign_of(d);
  if (sgn > 0) {
    hit.stop = std::max(hit.stop, p.along(ax));
  } else {
    hit.stop = std::min(hit.stop, p.along(ax));
  }
  return hit;
}

class SpatialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpatialFuzz, TraceMatchesNaiveReference) {
  workload::FloorplanOptions fp;
  fp.seed = GetParam();
  fp.cell_count = 20;
  fp.boundary = Rect{0, 0, 400, 400};
  const layout::Layout lay = workload::random_floorplan(fp);
  const auto obstacles = lay.obstacles();
  const spatial::ObstacleIndex index(lay.boundary(), obstacles);

  std::mt19937_64 rng(GetParam() * 7919 + 3);
  std::uniform_int_distribution<Coord> c(0, 400);
  for (int q = 0; q < gcr::test::fuzz_iters(500); ++q) {
    const Point p{c(rng), c(rng)};
    if (!index.routable(p)) continue;
    for (const Dir d : geom::kAllDirs) {
      const auto fast = index.trace(p, d);
      const auto slow = naive_trace(lay.boundary(), obstacles, p, d);
      ASSERT_EQ(fast.stop, slow.stop)
          << "seed " << GetParam() << " p=" << p << " dir "
          << static_cast<int>(d);
      // The blocking obstacle may differ when several share an edge
      // coordinate, but blocked-ness must agree.
      EXPECT_EQ(fast.obstacle.has_value(), slow.obstacle.has_value());
    }
  }
}

TEST_P(SpatialFuzz, SegmentBlockedMatchesPointScan) {
  workload::FloorplanOptions fp;
  fp.seed = GetParam() + 100;
  fp.cell_count = 12;
  fp.boundary = Rect{0, 0, 200, 200};
  const layout::Layout lay = workload::random_floorplan(fp);
  const spatial::ObstacleIndex index(lay.boundary(), lay.obstacles());

  std::mt19937_64 rng(GetParam() * 31 + 17);
  std::uniform_int_distribution<Coord> c(0, 200);
  for (int q = 0; q < gcr::test::fuzz_iters(200); ++q) {
    Point a{c(rng), c(rng)};
    Point b = (q % 2 == 0) ? Point{c(rng), a.y} : Point{a.x, c(rng)};
    const Segment s{a, b};
    // Reference: a segment is blocked iff some strictly-interior point of
    // it is interior to an obstacle.  Integer sampling misses sub-DBU
    // sliver overlaps, so sample the segment at doubled coordinates (every
    // half-DBU of the original geometry).
    std::vector<Rect> scaled;
    for (const Rect& r : lay.obstacles()) {
      scaled.push_back(Rect{2 * r.xlo, 2 * r.ylo, 2 * r.xhi, 2 * r.yhi});
    }
    const auto interior2x = [&scaled](const Point& p) {
      return std::any_of(scaled.begin(), scaled.end(),
                         [&p](const Rect& r) { return r.contains_open(p); });
    };
    bool blocked = false;
    const Axis ax = s.axis();
    const Point a2{2 * a.x, 2 * a.y};
    for (Coord v = 2 * s.span().lo + 1; v < 2 * s.span().hi && !blocked; ++v) {
      Point p = a2;
      p.along(ax) = v;
      blocked = interior2x(p);
    }
    // Degenerate segments: interior point is the point itself.
    if (s.degenerate()) blocked = index.interior(a);
    EXPECT_EQ(index.segment_blocked(s), blocked)
        << "seed " << GetParam() << " " << s;
  }
}

TEST_P(SpatialFuzz, EscapeLinesAreFreeAndMaximal) {
  workload::FloorplanOptions fp;
  fp.seed = GetParam() + 200;
  fp.cell_count = 16;
  fp.boundary = Rect{0, 0, 300, 300};
  const layout::Layout lay = workload::random_floorplan(fp);
  const spatial::ObstacleIndex index(lay.boundary(), lay.obstacles());
  const spatial::EscapeLineSet lines(index);

  for (const spatial::EscapeLine& ln : lines.lines()) {
    // Free: the line segment never pierces an obstacle.
    const Segment seg =
        ln.axis == Axis::kX
            ? Segment{Point{ln.span.lo, ln.track}, Point{ln.span.hi, ln.track}}
            : Segment{Point{ln.track, ln.span.lo}, Point{ln.track, ln.span.hi}};
    EXPECT_FALSE(index.segment_blocked(seg)) << seg;
    // Maximal: extending one DBU beyond either end leaves the boundary or
    // enters an obstacle (only checked for obstacle-sourced lines; the
    // four boundary lines are maximal by construction).
    if (ln.source == spatial::EscapeLine::npos) continue;
    for (const int end : {0, 1}) {
      Point tip = end == 0 ? seg.a : seg.b;
      const Dir out_dir =
          ln.axis == Axis::kX ? (end == 0 ? Dir::kWest : Dir::kEast)
                              : (end == 0 ? Dir::kSouth : Dir::kNorth);
      const Point beyond = tip.stepped(out_dir, 1);
      EXPECT_FALSE(index.routable(beyond))
          << "line " << seg << " extends past " << tip;
    }
  }
}

TEST_P(SpatialFuzz, CrossingsMatchNaiveFilter) {
  workload::FloorplanOptions fp;
  fp.seed = GetParam() + 300;
  fp.cell_count = 10;
  fp.boundary = Rect{0, 0, 250, 250};
  const layout::Layout lay = workload::random_floorplan(fp);
  const spatial::ObstacleIndex index(lay.boundary(), lay.obstacles());
  const spatial::EscapeLineSet lines(index);

  std::mt19937_64 rng(GetParam() * 101 + 9);
  std::uniform_int_distribution<Coord> c(0, 250);
  for (int q = 0; q < gcr::test::fuzz_iters(100); ++q) {
    const Point p{c(rng), c(rng)};
    if (!index.routable(p)) continue;
    for (const Dir d : geom::kAllDirs) {
      const Coord stop = index.trace(p, d).stop;
      const auto fast = lines.crossings(p, d, stop);
      // Naive: scan every line.
      std::vector<Coord> slow;
      const Axis ax = axis_of(d);
      const Coord lo = std::min(p.along(ax), stop);
      const Coord hi = std::max(p.along(ax), stop);
      for (const auto& ln : lines.lines()) {
        if (ln.axis == ax) continue;
        if (ln.track == p.along(ax)) continue;
        if (ln.track < lo || ln.track > hi) continue;
        if (!ln.span.contains(p.along(other(ax)))) continue;
        slow.push_back(ln.track);
      }
      std::sort(slow.begin(), slow.end());
      slow.erase(std::unique(slow.begin(), slow.end()), slow.end());
      if (sign_of(d) < 0) std::reverse(slow.begin(), slow.end());
      EXPECT_EQ(fast, slow) << "seed " << GetParam() << " p=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SpatialFuzz,
    ::testing::ValuesIn(gcr::test::fuzz_seeds(1, 1, 5)));

}  // namespace
