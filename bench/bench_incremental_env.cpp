// E12 — incremental SearchEnvironment maintenance vs per-net rebuilds.
//
// Sequential-mode routing adds every routed net's wire halos to the
// obstacle set.  The classical implementation rebuilds the ObstacleIndex
// and EscapeLineSet from scratch before each net — O(nets x build-cost) —
// while commit_route splices the new halos into the existing structures
// (sorted-table insert + localized escape-line re-tracing).  Two claims are
// measured: (1) the per-net incremental update is far cheaper than a full
// rebuild, with the gap *growing* as committed wires accumulate (the
// rebuild re-traces everything, the update re-traces only what the new
// halos cut); (2) end-to-end sequential route_all drops the same way.
// Differential tests prove both paths produce bit-identical routes, so
// this table is a pure cost comparison.

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "core/netlist_router.hpp"
#include "core/search_environment.hpp"
#include "reference_sequential.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"

namespace {

using namespace gcr;
using geom::Coord;
using geom::Point;
using geom::Rect;
using geom::Segment;
using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Wire-halo-shaped rectangles (thin, axis-aligned) like sequential routing
/// commits, reproducible by seed.
std::vector<Rect> halo_stream(std::size_t count, Coord extent,
                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Coord> pos(0, extent - 1);
  std::uniform_int_distribution<Coord> len(4, extent / 3);
  std::uniform_int_distribution<int> axis(0, 1);
  std::vector<Rect> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Coord x = pos(rng), y = pos(rng), l = len(rng);
    const Segment s = axis(rng) == 0
                          ? Segment{Point{x, y}, Point{std::min(x + l, extent), y}}
                          : Segment{Point{x, y}, Point{x, std::min(y + l, extent)}};
    out.push_back(s.bounds().inflated(1));
  }
  return out;
}

void print_table() {
  std::puts("E12 — incremental environment updates vs per-net rebuilds");
  bench::rule('-', 78);

  // ---- maintenance-only cost: insert a halo stream into a 24-cell base.
  std::puts("environment maintenance per committed wire (24 base cells):");
  std::printf("  %-8s %14s %14s %10s\n", "wires", "incr us/wire",
              "rebuild us/wire", "speedup");
  for (const std::size_t wires : {16u, 32u, 64u, 128u, 256u}) {
    const layout::Layout base =
        bench::make_workload(24, 640, 1, 42);
    const std::vector<Rect> halos = halo_stream(wires, 640, 99);

    spatial::ObstacleIndex index(base.boundary(), base.obstacles());
    spatial::EscapeLineSet lines(index);
    const auto t_incr = Clock::now();
    for (const Rect& r : halos) {
      index.insert(r);
      lines.insert_obstacle(index, index.size() - 1);
    }
    const double incr_us = secs_since(t_incr) * 1e6 / double(wires);

    std::vector<Rect> obstacles = base.obstacles();
    const auto t_rebuild = Clock::now();
    for (const Rect& r : halos) {
      obstacles.push_back(r);
      const spatial::ObstacleIndex fresh(base.boundary(), obstacles);
      const spatial::EscapeLineSet fresh_lines(fresh);
      benchmark::DoNotOptimize(fresh_lines.lines().size());
    }
    const double rebuild_us = secs_since(t_rebuild) * 1e6 / double(wires);
    std::printf("  %-8zu %14.1f %14.1f %9.1fx\n", wires, incr_us, rebuild_us,
                incr_us > 0 ? rebuild_us / incr_us : 0.0);
  }
  std::puts("  (rebuild cost grows with accumulated wires; incremental cost"
            " stays local)");

  // ---- end-to-end: sequential route_all, incremental vs rebuild loop.
  std::puts("sequential route_all (20 cells), end-to-end:");
  std::printf("  %-8s %12s %12s %10s %8s\n", "nets", "incr ms", "rebuild ms",
              "speedup", "match");
  for (const std::size_t nets : {8u, 16u, 32u, 64u}) {
    const layout::Layout lay = bench::make_workload(20, 640, nets, 7);
    route::NetlistOptions opts;
    opts.mode = route::NetlistMode::kSequential;

    const auto t_incr = Clock::now();
    const auto incr = route::NetlistRouter(lay).route_all(opts);
    const double incr_ms = secs_since(t_incr) * 1e3;

    const auto t_reb = Clock::now();
    const auto reb = test::reference_sequential(lay, opts);
    const double reb_ms = secs_since(t_reb) * 1e3;

    const bool match = incr.total_wirelength == reb.total_wirelength &&
                       incr.routed == reb.routed;
    std::printf("  %-8zu %12.2f %12.2f %9.1fx %8s\n", nets, incr_ms, reb_ms,
                incr_ms > 0 ? reb_ms / incr_ms : 0.0, match ? "yes" : "NO");
  }
  std::puts("  (speedup grows with net count: per-net rebuild is"
            " O(nets x build), commits are local)");
  bench::rule('-', 78);
}

void BM_CommitWireHalo(benchmark::State& state) {
  // Cost of one incremental commit into an environment already holding
  // `range` committed wires.
  const std::size_t preload = static_cast<std::size_t>(state.range(0));
  const layout::Layout base = bench::make_workload(24, 640, 1, 42);
  const std::vector<Rect> halos = halo_stream(preload + 1, 640, 99);
  spatial::ObstacleIndex index(base.boundary(), base.obstacles());
  spatial::EscapeLineSet lines(index);
  for (std::size_t i = 0; i < preload; ++i) {
    index.insert(halos[i]);
    lines.insert_obstacle(index, index.size() - 1);
  }
  for (auto _ : state) {
    state.PauseTiming();
    spatial::ObstacleIndex idx = index;  // copy, then commit into the copy
    spatial::EscapeLineSet ln = lines;
    state.ResumeTiming();
    idx.insert(halos[preload]);
    ln.insert_obstacle(idx, idx.size() - 1);
    benchmark::DoNotOptimize(ln.lines().size());
  }
  state.SetLabel(std::to_string(preload) + " wires committed");
}
BENCHMARK(BM_CommitWireHalo)->Arg(16)->Arg(64)->Arg(256);

void BM_FullRebuild(benchmark::State& state) {
  // The cost commit_route avoids: from-scratch index + escape lines over
  // the same obstacle count.
  const std::size_t preload = static_cast<std::size_t>(state.range(0));
  const layout::Layout base = bench::make_workload(24, 640, 1, 42);
  std::vector<Rect> obstacles = base.obstacles();
  for (const Rect& r : halo_stream(preload, 640, 99)) obstacles.push_back(r);
  for (auto _ : state) {
    const spatial::ObstacleIndex idx(base.boundary(), obstacles);
    const spatial::EscapeLineSet ln(idx);
    benchmark::DoNotOptimize(ln.lines().size());
  }
  state.SetLabel(std::to_string(preload) + " wires committed");
}
BENCHMARK(BM_FullRebuild)->Arg(16)->Arg(64)->Arg(256);

void BM_SequentialRouteIncremental(benchmark::State& state) {
  const layout::Layout lay = bench::make_workload(
      20, 640, static_cast<std::size_t>(state.range(0)), 7);
  route::NetlistOptions opts;
  opts.mode = route::NetlistMode::kSequential;
  const route::NetlistRouter router(lay);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route_all(opts));
  }
  state.SetLabel(std::to_string(state.range(0)) + " nets");
}
BENCHMARK(BM_SequentialRouteIncremental)->Arg(16)->Arg(48);

}  // namespace

GCR_BENCH_MAIN(print_table)
