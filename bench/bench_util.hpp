#pragma once

// Shared helpers for the experiment benchmarks (E1..E10).  Each bench binary
// prints a deterministic results table first — node counts, lengths, success
// rates are machine-independent, which is how the paper's efficiency claims
// are meaningfully checked 40 years later — then runs google-benchmark
// timings for the wall-clock side of each claim.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/gridless_router.hpp"
#include "core/steiner.hpp"
#include "layout/layout.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"
#include "workload/floorplan.hpp"
#include "workload/netgen.hpp"

namespace gcr::bench {

/// A layout with its routing acceleration structures built.
struct World {
  layout::Layout lay;
  spatial::ObstacleIndex index;
  spatial::EscapeLineSet lines;

  explicit World(layout::Layout l)
      : lay(std::move(l)), index(lay.boundary(), lay.obstacles()), lines(index) {}
};

/// Standard random workload: `cells` macros in a `extent`^2 region with pins
/// and `nets` nets.
inline layout::Layout make_workload(std::size_t cells, geom::Coord extent,
                                    std::size_t nets, std::uint64_t seed) {
  return workload::standard_workload(cells, extent, nets, seed);
}

/// Random routable point pairs for two-pin queries, reproducible by seed.
inline std::vector<std::pair<geom::Point, geom::Point>> random_queries(
    const World& w, std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<geom::Coord> cx(w.lay.boundary().xlo,
                                                w.lay.boundary().xhi);
  std::uniform_int_distribution<geom::Coord> cy(w.lay.boundary().ylo,
                                                w.lay.boundary().yhi);
  const auto free_point = [&] {
    for (;;) {
      const geom::Point p{cx(rng), cy(rng)};
      if (w.index.routable(p)) return p;
    }
  };
  std::vector<std::pair<geom::Point, geom::Point>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.emplace_back(free_point(), free_point());
  }
  return out;
}

inline void rule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Runs the deterministic table printer, then google-benchmark.
#define GCR_BENCH_MAIN(print_table)                   \
  int main(int argc, char** argv) {                   \
    print_table();                                    \
    ::benchmark::Initialize(&argc, argv);             \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();            \
    ::benchmark::Shutdown();                          \
    return 0;                                         \
  }

}  // namespace gcr::bench
