// E4 — scaling: "Using the grid-based approach tends to require large
// amounts of memory and processor time since so many nodes are expanded";
// the gridless representation's effort scales with the number of cells, not
// the routing area.
//
// Sweep: cell count x routing extent; per configuration, the table reports
// average expansions and memory proxies (grid vertices vs escape lines) for
// the gridless A* against Lee-Moore at pitch 1 and 4.  The timed section
// measures both routers across the sweep.

#include "bench_util.hpp"
#include "grid/lee_moore.hpp"

namespace {

using namespace gcr;

constexpr std::size_t kQueries = 8;

struct Config {
  std::size_t cells;
  geom::Coord extent;
};

const std::vector<Config> kConfigs = {
    {4, 256}, {16, 512}, {64, 1024}, {256, 2048}};

void print_table() {
  std::puts("E4 — effort and memory scaling: gridless vs grid");
  std::printf("(%zu random queries per configuration; averages)\n", kQueries);
  bench::rule('-', 112);
  std::printf("%6s %7s | %12s %12s | %14s %14s | %14s %14s\n", "cells",
              "extent", "gridless-exp", "esc-lines", "grid1-expanded",
              "grid1-verts", "grid4-expanded", "grid4-verts");
  bench::rule('-', 112);
  for (const Config& cfg : kConfigs) {
    const bench::World w(
        bench::make_workload(cfg.cells, cfg.extent, 0, 1000 + cfg.cells));
    const auto queries = bench::random_queries(w, kQueries, 31 + cfg.cells);

    const route::GridlessRouter router(w.index, w.lines);
    double gridless_exp = 0;
    for (const auto& [a, b] : queries) {
      gridless_exp += static_cast<double>(router.route(a, b).stats.nodes_expanded);
    }

    double grid_exp[2] = {0, 0};
    std::size_t grid_verts[2] = {0, 0};
    const geom::Coord pitches[2] = {1, 4};
    for (int k = 0; k < 2; ++k) {
      const grid::GridGraph gg(w.index, pitches[k]);
      grid_verts[k] = gg.vertex_count();
      const grid::LeeMooreRouter lee(gg);
      for (const auto& [a, b] : queries) {
        grid_exp[k] += static_cast<double>(
            lee.route(a, b, search::Strategy::kBestFirst).stats.nodes_expanded);
      }
    }
    std::printf("%6zu %7lld | %12.1f %12zu | %14.1f %14zu | %14.1f %14zu\n",
                cfg.cells, static_cast<long long>(cfg.extent),
                gridless_exp / kQueries, w.lines.lines().size(),
                grid_exp[0] / kQueries, grid_verts[0], grid_exp[1] / kQueries,
                grid_verts[1]);
  }
  bench::rule('-', 112);
  std::puts("(the gridless column grows with cells; the grid columns grow "
            "with area — the paper's memory/time argument)\n");
}

void BM_GridlessScaling(benchmark::State& state) {
  const Config cfg = kConfigs[static_cast<std::size_t>(state.range(0))];
  const bench::World w(
      bench::make_workload(cfg.cells, cfg.extent, 0, 1000 + cfg.cells));
  const auto queries = bench::random_queries(w, kQueries, 31 + cfg.cells);
  const route::GridlessRouter router(w.index, w.lines);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(queries[i].first, queries[i].second));
    i = (i + 1) % queries.size();
  }
  state.SetLabel(std::to_string(cfg.cells) + " cells / " +
                 std::to_string(cfg.extent) + " dbu");
}
BENCHMARK(BM_GridlessScaling)->DenseRange(0, 3);

void BM_LeeMooreScaling(benchmark::State& state) {
  const Config cfg = kConfigs[static_cast<std::size_t>(state.range(0))];
  const bench::World w(
      bench::make_workload(cfg.cells, cfg.extent, 0, 1000 + cfg.cells));
  const auto queries = bench::random_queries(w, kQueries, 31 + cfg.cells);
  const grid::GridGraph gg(w.index, 4);
  const grid::LeeMooreRouter lee(gg);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lee.route(queries[i].first, queries[i].second,
                                       search::Strategy::kBestFirst));
    i = (i + 1) % queries.size();
  }
  state.SetLabel(std::to_string(cfg.cells) + " cells / pitch 4");
}
BENCHMARK(BM_LeeMooreScaling)->DenseRange(0, 3);

void BM_EscapeLineConstruction(benchmark::State& state) {
  const Config cfg = kConfigs[static_cast<std::size_t>(state.range(0))];
  const layout::Layout lay =
      bench::make_workload(cfg.cells, cfg.extent, 0, 1000 + cfg.cells);
  const spatial::ObstacleIndex index(lay.boundary(), lay.obstacles());
  for (auto _ : state) {
    benchmark::DoNotOptimize(spatial::EscapeLineSet(index));
  }
  state.SetLabel(std::to_string(cfg.cells) + " cells");
}
BENCHMARK(BM_EscapeLineConstruction)->DenseRange(0, 3);

void BM_GridConstruction(benchmark::State& state) {
  const Config cfg = kConfigs[static_cast<std::size_t>(state.range(0))];
  const layout::Layout lay =
      bench::make_workload(cfg.cells, cfg.extent, 0, 1000 + cfg.cells);
  const spatial::ObstacleIndex index(lay.boundary(), lay.obstacles());
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid::GridGraph(index, 1));
  }
  state.SetLabel(std::to_string(cfg.cells) + " cells / pitch 1");
}
BENCHMARK(BM_GridConstruction)->DenseRange(0, 3);

}  // namespace

GCR_BENCH_MAIN(print_table)
