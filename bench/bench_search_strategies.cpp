// E3 — the search-strategy taxonomy and the Lee-Moore special case.
//
// Claims reproduced:
//   * "Lee-Moore is the general search algorithm with grid successors and
//     h = 0" — grid best-first and grid BFS expand comparably and find equal
//     lengths;
//   * "The best-first algorithm can show a dramatic improvement in time and
//     space efficiency over blind searches such as depth-first and
//     breadth-first";
//   * the Manhattan heuristic (A*) prunes further still.
// Table: average expansions / generations / OPEN peak / length-optimality
// per strategy over a fixed query set on a random 16-cell layout.

#include "bench_util.hpp"
#include "grid/lee_moore.hpp"

namespace {

using namespace gcr;

constexpr std::size_t kQueries = 12;

struct Row {
  std::string name;
  double expanded = 0, generated = 0, open = 0;
  std::size_t optimal = 0, found = 0;
};

void accumulate(Row& row, const search::SearchStats& st, bool found,
                bool optimal) {
  row.expanded += static_cast<double>(st.nodes_expanded);
  row.generated += static_cast<double>(st.nodes_generated);
  row.open += static_cast<double>(st.max_open_size);
  row.found += found ? 1 : 0;
  row.optimal += optimal ? 1 : 0;
}

std::vector<Row> run_all() {
  const bench::World w(bench::make_workload(16, 512, 0, /*seed=*/42));
  const auto queries = bench::random_queries(w, kQueries, 77);

  // Optimal lengths from the gridless A* (cross-validated in the tests).
  const route::GridlessRouter router(w.index, w.lines);
  std::vector<geom::Cost> optimum;
  for (const auto& [a, b] : queries) {
    optimum.push_back(router.route(a, b).length);
  }

  std::vector<Row> rows;
  // Gridless strategies.
  for (const auto& [s, name] :
       {std::pair{search::Strategy::kAStar, "gridless A* (paper)"},
        std::pair{search::Strategy::kBestFirst, "gridless best-first"},
        std::pair{search::Strategy::kGreedy, "gridless greedy (h only)"},
        std::pair{search::Strategy::kBreadthFirst, "gridless breadth-first"},
        std::pair{search::Strategy::kDepthFirst, "gridless depth-first"}}) {
    Row row{name, 0, 0, 0, 0, 0};
    for (std::size_t i = 0; i < queries.size(); ++i) {
      route::RouteOptions opts;
      opts.strategy = s;
      opts.max_expansions = 2'000'000;
      const auto r = router.route(queries[i].first, queries[i].second, opts);
      accumulate(row, r.stats, r.found, r.found && r.length == optimum[i]);
    }
    rows.push_back(row);
  }
  // Grid strategies (pitch 4 keeps the blind ones tractable).
  const grid::GridGraph gg(w.index, 4);
  const grid::LeeMooreRouter lee(gg);
  for (const auto& [s, name] :
       {std::pair{search::Strategy::kBestFirst, "grid best-first = Lee-Moore"},
        std::pair{search::Strategy::kBreadthFirst, "grid BFS (classic wave)"},
        std::pair{search::Strategy::kAStar, "grid A*"}}) {
    Row row{name, 0, 0, 0, 0, 0};
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto r = lee.route(queries[i].first, queries[i].second, s);
      // Grid lengths are pitch-quantized; count "optimal" as within one
      // grid step per bend of the gridless optimum.
      const bool near_opt =
          r.found && r.length + 8 * 4 >= optimum[i] && r.length >= optimum[i] - 8 * 4;
      accumulate(row, r.stats, r.found, near_opt);
    }
    rows.push_back(row);
  }
  return rows;
}

void print_table() {
  std::puts("E3 — strategy taxonomy: blind vs best-first vs heuristic search");
  std::printf("(16 random macros, %zu queries; averages per query)\n",
              kQueries);
  bench::rule();
  std::printf("%-30s %10s %11s %9s %8s %8s\n", "strategy", "expanded",
              "generated", "max-open", "found", "optimal");
  bench::rule();
  for (const Row& r : run_all()) {
    std::printf("%-30s %10.1f %11.1f %9.1f %5zu/%-2zu %5zu/%-2zu\n",
                r.name.c_str(), r.expanded / kQueries, r.generated / kQueries,
                r.open / kQueries, r.found, kQueries, r.optimal, kQueries);
  }
  bench::rule();
  std::puts("");
}

void BM_Strategy(benchmark::State& state) {
  static const bench::World w(bench::make_workload(16, 512, 0, 42));
  static const auto queries = bench::random_queries(w, kQueries, 77);
  const route::GridlessRouter router(w.index, w.lines);
  const auto strat = static_cast<search::Strategy>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    route::RouteOptions opts;
    opts.strategy = strat;
    opts.max_expansions = 2'000'000;
    benchmark::DoNotOptimize(
        router.route(queries[i].first, queries[i].second, opts));
    i = (i + 1) % queries.size();
  }
  state.SetLabel(std::string(to_string(strat)));
}
BENCHMARK(BM_Strategy)
    ->Arg(static_cast<int>(search::Strategy::kAStar))
    ->Arg(static_cast<int>(search::Strategy::kBestFirst))
    ->Arg(static_cast<int>(search::Strategy::kGreedy))
    ->Arg(static_cast<int>(search::Strategy::kBreadthFirst))
    ->Arg(static_cast<int>(search::Strategy::kDepthFirst));

}  // namespace

GCR_BENCH_MAIN(print_table)
