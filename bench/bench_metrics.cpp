// E12 — observability overhead: what the tracing/metrics layer costs.
//
// PR 9's instrumentation sits on every request's hot path, so this bench
// pins down three costs: (1) Histogram::record — three relaxed fetch_adds —
// against the mutexed LatencyWindow it replaced; (2) rendering the full
// STATS body (histogram snapshots + percentile walks for every verb shard);
// (3) the end-to-end ROUTE delta between trace=0 (spans stamped, nothing
// rendered) and trace=1 (span breakdown appended to the response meta).
//
// The deterministic table prints the machine-independent contract first:
// the exact STATS key inventory (service keys, and loop_* keys over a live
// TCP front-end), the span keys a traced response carries, the log2 bucket
// boundaries, and whether the u64 atomics the histogram relies on are
// lock-free.  Set GCR_METRICS_OUT=<path> to write that contract as JSON —
// CI diffs it against bench/baselines/bench_metrics.json, so renaming or
// dropping a STATS key, changing the bucket math, or regressing record()
// past a generous sanity bound fails the build.  Wall-clock numbers print
// to stdout (and run under google-benchmark) but are NOT in the JSON:
// timings are machine-dependent and would make the diff gate flaky.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "io/text_format.hpp"
#include "serve/metrics.hpp"
#include "serve/routing_service.hpp"
#include "serve/trace.hpp"

#if defined(__linux__)
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "serve/fd_stream.hpp"
#endif

namespace {

using namespace gcr;

std::string workload_text(std::size_t cells, std::size_t nets,
                          std::uint64_t seed) {
  return io::write_layout_string(bench::make_workload(cells, 640, nets, seed));
}

/// First whitespace-separated token of every line — the STATS key set.
std::vector<std::string> body_keys(const std::string& body) {
  std::vector<std::string> keys;
  std::istringstream is(body);
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t sp = line.find(' ');
    if (sp != std::string::npos && sp > 0) keys.push_back(line.substr(0, sp));
  }
  return keys;
}

/// ` k=v k=v ...` -> the key names, in order.
std::vector<std::string> meta_keys(const std::string& meta) {
  std::vector<std::string> keys;
  std::istringstream is(meta);
  std::string tok;
  while (is >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq != std::string::npos) keys.push_back(tok.substr(0, eq));
  }
  return keys;
}

std::vector<std::string> service_stats_keys() {
  serve::RoutingService service;
  return body_keys(service.stats_text());
}

std::vector<std::string> span_keys() {
  serve::RequestTrace t;
  t.subs.push_back({"stage_run", 0});
  return meta_keys(t.render_meta());
}

#if defined(__linux__)
/// loop_* keys as a TCP client sees them: STATS through a live event loop.
std::vector<std::string> loop_stats_keys() {
  serve::RoutingService service;
  net::EventLoop loop(service);
  std::thread loop_thread([&loop] { loop.run(); });
  std::vector<std::string> keys;
  {
    const net::ScopedFd fd = net::tcp_connect(loop.port());
    serve::FdTransport t(fd.get());
    t.out() << "STATS\nQUIT\n";
    t.out().flush();
    std::string status;
    std::getline(t.in(), status);
    std::istringstream is(status);
    std::string kw;
    std::size_t nbytes = 0;
    if ((is >> kw >> nbytes) && kw == "OK") {
      std::string body(nbytes, '\0');
      t.in().read(body.data(), static_cast<std::streamsize>(nbytes));
      for (std::string& k : body_keys(body)) {
        if (k.rfind("loop_", 0) == 0) keys.push_back(std::move(k));
      }
    }
  }
  loop.stop();
  loop_thread.join();
  return keys;
}
#else
std::vector<std::string> loop_stats_keys() { return {}; }
#endif

// ------------------------------------------------------------- wall clocks

/// Median of `reps` timings of `iters` calls to `fn`, in ns per call.
template <typename Fn>
double median_ns_per_call(std::size_t reps, std::size_t iters, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn(i);
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct OverheadReport {
  double hist_record_ns = 0;
  double window_record_ns = 0;
  double stats_render_us = 0;
  double route_plain_us = 0;
  double route_traced_us = 0;
};

OverheadReport measure_overhead() {
  OverheadReport rep;

  serve::Histogram hist;
  rep.hist_record_ns = median_ns_per_call(
      9, 1'000'000, [&](std::size_t i) { hist.record(i & 0xffff); });
  serve::LatencyWindow window(1024);
  rep.window_record_ns = median_ns_per_call(
      9, 1'000'000, [&](std::size_t i) { window.record(i & 0xffff); });

  const std::string text = workload_text(25, 40, 105);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(text);
  // Populate every shard so the render walks realistic histograms.
  for (std::size_t k = 0; k < serve::kVerbKinds; ++k) {
    for (int i = 0; i < 64; ++i) {
      service.record_verb_latency(static_cast<serve::VerbKind>(k),
                                  100 + 37 * i);
    }
  }
  rep.stats_render_us =
      median_ns_per_call(9, 200, [&](std::size_t) {
        std::string body = service.stats_text();
        if (body.empty()) std::abort();
      }) /
      1e3;

  // Interleave the two variants request by request so clock drift and
  // cache-warming affect both medians equally — two separate timing blocks
  // would let a few percent of drift masquerade as tracing overhead.
  const auto one_route_us = [&](bool traced) {
    serve::RouteRequest req;
    req.session_key = session->key;
    req.trace = traced;
    req.received = std::chrono::steady_clock::now();
    const auto t0 = std::chrono::steady_clock::now();
    const serve::RouteResponse resp = service.route(std::move(req));
    const auto t1 = std::chrono::steady_clock::now();
    if (!resp.ok()) std::abort();
    return std::chrono::duration<double, std::micro>(t1 - t0).count();
  };
  std::vector<double> plain, traced;
  for (int i = 0; i < 40; ++i) {
    if (i % 2 == 0) {
      plain.push_back(one_route_us(false));
      traced.push_back(one_route_us(true));
    } else {
      traced.push_back(one_route_us(true));
      plain.push_back(one_route_us(false));
    }
  }
  std::sort(plain.begin(), plain.end());
  std::sort(traced.begin(), traced.end());
  rep.route_plain_us = plain[plain.size() / 2];
  rep.route_traced_us = traced[traced.size() / 2];
  return rep;
}

// ------------------------------------------------------------------- table

void json_string_list(std::ostream& os, const char* name,
                      const std::vector<std::string>& items, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << '"' << name << "\": [";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) os << ", ";
    os << '"' << items[i] << '"';
  }
  os << ']';
}

void write_metrics_json(const char* path, const OverheadReport& rep) {
  std::ofstream os(path);
  os << "{\n";
  json_string_list(os, "stats_keys", service_stats_keys(), 2);
  os << ",\n";
  json_string_list(os, "loop_stats_keys", loop_stats_keys(), 2);
  os << ",\n";
  json_string_list(os, "span_keys", span_keys(), 2);
  os << ",\n  \"histogram\": {\n    \"lock_free\": "
     << (std::atomic<std::uint64_t>::is_always_lock_free ? "true" : "false")
     << ",\n    \"buckets\": [";
  const std::uint64_t probes[] = {0, 1, 2, 3, 4, 1023, 1024, 1u << 20};
  bool first = true;
  for (const std::uint64_t v : probes) {
    if (!first) os << ", ";
    first = false;
    const std::size_t b = serve::Histogram::bucket_index(v);
    os << "{\"value\": " << v << ", \"bucket\": " << b
       << ", \"upper\": " << serve::Histogram::bucket_upper(b) << '}';
  }
  // Sanity bounds only — orders of magnitude above any healthy build, so
  // the gate trips on a catastrophic regression (a mutex or allocation on
  // the record path; percentile math gone quadratic), never on CI jitter.
  // The precise numbers are on stdout and in the benchmark artifacts.
  os << "]\n  },\n  \"overhead_sane\": {\n"
     << "    \"record_under_5000ns\": "
     << (rep.hist_record_ns < 5000 ? "true" : "false") << ",\n"
     << "    \"stats_render_under_50ms\": "
     << (rep.stats_render_us < 50'000 ? "true" : "false") << "\n  }\n}\n";
}

void print_table() {
  std::puts("E12 — observability: instrumentation cost and STATS contract");
  bench::rule('-', 72);

  const std::vector<std::string> keys = service_stats_keys();
  std::printf("STATS body keys (service): %zu\n ", keys.size());
  for (const std::string& k : keys) std::printf(" %s", k.c_str());
  std::putchar('\n');
  const std::vector<std::string> loop_keys = loop_stats_keys();
  std::printf("STATS body keys (event loop): %zu\n ", loop_keys.size());
  for (const std::string& k : loop_keys) std::printf(" %s", k.c_str());
  std::putchar('\n');
  std::printf("trace=1 span keys:\n ");
  for (const std::string& k : span_keys()) std::printf(" %s", k.c_str());
  std::putchar('\n');
  std::printf("histogram: 65 log2 buckets, u64 atomics lock-free: %s\n",
              std::atomic<std::uint64_t>::is_always_lock_free ? "yes" : "NO");

  const OverheadReport rep = measure_overhead();
  std::puts("record cost (median ns/sample, single thread):");
  std::printf("  Histogram::record   %8.1f ns  (3 relaxed fetch_adds)\n",
              rep.hist_record_ns);
  std::printf("  LatencyWindow       %8.1f ns  (mutex + ring store)\n",
              rep.window_record_ns);
  std::printf("STATS render: %.1f us (all %zu verb shards populated)\n",
              rep.stats_render_us, serve::kVerbKinds);
  const double delta_pct =
      rep.route_plain_us > 0
          ? 100.0 * (rep.route_traced_us - rep.route_plain_us) /
                rep.route_plain_us
          : 0.0;
  std::printf("ROUTE end-to-end (median us): trace=0 %.1f, trace=1 %.1f"
              "  (delta %+.1f%%)\n",
              rep.route_plain_us, rep.route_traced_us, delta_pct);
  std::puts("  (spans are stamped unconditionally; trace=1 only adds the\n"
            "   meta rendering, so the delta bounds the knob's cost)");
  bench::rule('-', 72);

  if (const char* out = std::getenv("GCR_METRICS_OUT")) {
    write_metrics_json(out, rep);
    std::printf("  metrics contract JSON written to %s\n", out);
  }
}

// -------------------------------------------------------------- benchmarks

void BM_HistogramRecord(benchmark::State& state) {
  serve::Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = (v * 2862933555777941757ull + 3037000493ull) & 0xffff;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord)->ThreadRange(1, 8);

void BM_LatencyWindowRecord(benchmark::State& state) {
  static serve::LatencyWindow w(1024);
  std::uint64_t v = 1;
  for (auto _ : state) {
    w.record(v);
    v = (v * 2862933555777941757ull + 3037000493ull) & 0xffff;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencyWindowRecord)->ThreadRange(1, 8);

void BM_HistogramSnapshotPercentiles(benchmark::State& state) {
  serve::Histogram h;
  for (std::uint64_t i = 0; i < 4096; ++i) h.record(100 + 37 * i);
  for (auto _ : state) {
    const serve::Histogram::Snapshot s = h.snapshot();
    benchmark::DoNotOptimize(s.percentile(50));
    benchmark::DoNotOptimize(s.percentile(95));
    benchmark::DoNotOptimize(s.percentile(99));
  }
}
BENCHMARK(BM_HistogramSnapshotPercentiles);

void BM_StatsRender(benchmark::State& state) {
  serve::RoutingService service;
  for (std::size_t k = 0; k < serve::kVerbKinds; ++k) {
    for (int i = 0; i < 64; ++i) {
      service.record_verb_latency(static_cast<serve::VerbKind>(k),
                                  100 + 37 * i);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.stats_text());
  }
}
BENCHMARK(BM_StatsRender);

void BM_ServiceRouteTraced(benchmark::State& state) {
  const std::string text = workload_text(25, 40, 105);
  serve::RoutingService::Options opts;
  opts.workers = 1;
  serve::RoutingService service(opts);
  const auto session = service.load(text);
  const bool traced = state.range(0) != 0;
  for (auto _ : state) {
    serve::RouteRequest req;
    req.session_key = session->key;
    req.trace = traced;
    req.received = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(service.route(std::move(req)));
  }
  state.SetLabel(traced ? "trace=1" : "trace=0");
}
BENCHMARK(BM_ServiceRouteTraced)->Arg(0)->Arg(1);

}  // namespace

GCR_BENCH_MAIN(print_table)
