// E12 (ablation) — what the escape-line crossing set buys.
//
// DESIGN.md's key algorithmic decision is that probe rays emit successors at
// *every* escape-line crossing, not only where they collide with obstacles.
// This ablation removes the crossings (successors at hug points and goal
// projections only) and measures the damage: success rate, length
// optimality, and effort, across layout densities.  It is the quantitative
// justification for the paper's "leaves no stone unturned" requirement on
// successor generation.

#include "bench_util.hpp"

namespace {

using namespace gcr;

constexpr std::size_t kQueries = 16;

void print_table() {
  std::puts("E12 (ablation) — full crossing successors vs sparse probes");
  std::printf("(%zu random queries per density; sparse = hug points + goal"
              " projections only)\n",
              kQueries);
  bench::rule('-', 108);
  std::printf("%6s | %9s %12s %12s | %9s %12s %12s %12s\n", "cells",
              "full-ok", "full-exp", "full-len", "sparse-ok", "sparse-exp",
              "sparse-len", "len-ratio");
  bench::rule('-', 108);
  for (const std::size_t cells : {8, 24, 64, 128}) {
    const bench::World w(bench::make_workload(cells, 768, 0, 700 + cells));
    const auto queries = bench::random_queries(w, kQueries, 800 + cells);
    const route::GridlessRouter router(w.index, w.lines);

    std::size_t full_ok = 0, sparse_ok = 0;
    double full_exp = 0, sparse_exp = 0, full_len = 0, sparse_len = 0;
    double ratio = 0;
    std::size_t ratio_n = 0;
    for (const auto& [a, b] : queries) {
      const auto rf = router.route(a, b);
      route::RouteOptions sparse;
      sparse.successors = route::SuccessorMode::kSparse;
      sparse.max_expansions = 100000;
      const auto rs = router.route(a, b, sparse);
      full_ok += rf.found ? 1 : 0;
      sparse_ok += rs.found ? 1 : 0;
      full_exp += static_cast<double>(rf.stats.nodes_expanded);
      sparse_exp += static_cast<double>(rs.stats.nodes_expanded);
      if (rf.found) full_len += static_cast<double>(rf.length);
      if (rs.found) sparse_len += static_cast<double>(rs.length);
      if (rf.found && rs.found && rf.length > 0) {
        ratio += static_cast<double>(rs.length) /
                 static_cast<double>(rf.length);
        ++ratio_n;
      }
    }
    std::printf("%6zu | %6zu/%-2zu %12.1f %12.1f | %6zu/%-2zu %12.1f %12.1f"
                " %12.3f\n",
                cells, full_ok, kQueries, full_exp / kQueries,
                full_len / kQueries, sparse_ok, kQueries,
                sparse_exp / kQueries, sparse_len / kQueries,
                ratio_n ? ratio / ratio_n : 0.0);
  }
  bench::rule('-', 108);
  std::puts("(full mode: 100% success at provably minimal length; sparse"
            " mode loses optimality and\n can fail outright — the crossing"
            " set is what makes the line search admissible)\n");
}

void BM_FullSuccessors(benchmark::State& state) {
  static const bench::World w(bench::make_workload(64, 768, 0, 764));
  static const auto queries = bench::random_queries(w, kQueries, 864);
  const route::GridlessRouter router(w.index, w.lines);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(queries[i].first, queries[i].second));
    i = (i + 1) % queries.size();
  }
}
BENCHMARK(BM_FullSuccessors);

void BM_SparseSuccessors(benchmark::State& state) {
  static const bench::World w(bench::make_workload(64, 768, 0, 764));
  static const auto queries = bench::random_queries(w, kQueries, 864);
  const route::GridlessRouter router(w.index, w.lines);
  route::RouteOptions sparse;
  sparse.successors = route::SuccessorMode::kSparse;
  sparse.max_expansions = 100000;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        router.route(queries[i].first, queries[i].second, sparse));
    i = (i + 1) % queries.size();
  }
}
BENCHMARK(BM_SparseSuccessors);

}  // namespace

GCR_BENCH_MAIN(print_table)
