// E5 — Hightower vs the admissible searches.
//
// "[The line-segment representation] greatly improved the efficiency of the
// algorithm but caused it to fail to find some connections which could be
// found by a Lee-Moore router.  As a result, some routers use Hightower's
// algorithm for a quick first try, and if it fails, then the full power of
// the Lee-Moore maze search algorithm is used."
//
// Table 1: success rate + effort on random layouts and on the two maze
// families.  Table 2: the "quick first try, then maze search" pipeline cost.

#include "bench_util.hpp"
#include "grid/lee_moore.hpp"
#include "hightower/hightower.hpp"
#include "workload/figures.hpp"

namespace {

using namespace gcr;

struct Scenario {
  std::string name;
  layout::Layout lay;
  std::vector<std::pair<geom::Point, geom::Point>> queries;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  for (const std::size_t cells : {8, 32, 96}) {
    Scenario s;
    s.name = "random " + std::to_string(cells) + " cells";
    s.lay = bench::make_workload(cells, 768, 0, 500 + cells);
    const bench::World w(s.lay);
    s.queries = bench::random_queries(w, 24, 900 + cells);
    out.push_back(std::move(s));
  }
  for (const std::size_t teeth : {4, 8}) {
    const auto q = workload::comb_maze(teeth);
    Scenario s;
    s.name = "comb maze " + std::to_string(teeth) + " teeth";
    s.lay = q.layout;
    s.queries = {{q.s, q.d}};
    out.push_back(std::move(s));
  }
  for (const std::size_t turns : {2, 4}) {
    const auto q = workload::spiral_maze(turns);
    Scenario s;
    s.name = "spiral maze " + std::to_string(turns) + " turns";
    s.lay = q.layout;
    s.queries = {{q.s, q.d}};
    out.push_back(std::move(s));
  }
  return out;
}

void print_table() {
  std::puts("E5 — Hightower line probe vs admissible searches");
  std::puts("(budget: 64 escape lines per try — the 'quick first try')");
  bench::rule('-', 110);
  std::printf("%-24s %9s | %13s %11s | %13s %13s | %11s\n", "scenario",
              "queries", "HT success", "HT lines", "A* success",
              "A* expanded", "len ratio");
  bench::rule('-', 110);
  for (const Scenario& sc : scenarios()) {
    const bench::World w(sc.lay);
    const hightower::HightowerRouter ht(w.index);
    const route::GridlessRouter astar(w.index, w.lines);
    std::size_t ht_ok = 0, astar_ok = 0;
    double ht_lines = 0, astar_exp = 0, ratio_sum = 0;
    std::size_t ratio_n = 0;
    for (const auto& [a, b] : sc.queries) {
      const auto hr = ht.route(a, b, 64);
      const auto ar = astar.route(a, b);
      ht_ok += hr.found ? 1 : 0;
      astar_ok += ar.found ? 1 : 0;
      ht_lines += static_cast<double>(hr.lines_used);
      astar_exp += static_cast<double>(ar.stats.nodes_expanded);
      if (hr.found && ar.found && ar.length > 0) {
        ratio_sum += static_cast<double>(hr.length) /
                     static_cast<double>(ar.length);
        ++ratio_n;
      }
    }
    const std::size_t n = sc.queries.size();
    std::printf("%-24s %9zu | %10zu/%-2zu %11.1f | %10zu/%-2zu %13.1f | %11s\n",
                sc.name.c_str(), n, ht_ok, n, ht_lines / n, astar_ok, n,
                astar_exp / n,
                ratio_n ? std::to_string(ratio_sum / ratio_n).substr(0, 5).c_str()
                        : "-");
  }
  bench::rule('-', 110);
  std::puts("(A* succeeds on every query; Hightower fails on the spirals and"
            " under-budget combs,\n reproducing the paper's fallback"
            " architecture)\n");
}

void BM_HightowerRandom(benchmark::State& state) {
  static const bench::World w(bench::make_workload(32, 768, 0, 532));
  static const auto queries = bench::random_queries(w, 24, 932);
  const hightower::HightowerRouter ht(w.index);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht.route(queries[i].first, queries[i].second, 64));
    i = (i + 1) % queries.size();
  }
}
BENCHMARK(BM_HightowerRandom);

void BM_GridlessAStarRandom(benchmark::State& state) {
  static const bench::World w(bench::make_workload(32, 768, 0, 532));
  static const auto queries = bench::random_queries(w, 24, 932);
  const route::GridlessRouter router(w.index, w.lines);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(queries[i].first, queries[i].second));
    i = (i + 1) % queries.size();
  }
}
BENCHMARK(BM_GridlessAStarRandom);

void BM_QuickTryThenMaze(benchmark::State& state) {
  // The historical pipeline: try Hightower; on failure, fall back.
  static const bench::World w(bench::make_workload(32, 768, 0, 532));
  static const auto queries = bench::random_queries(w, 24, 932);
  const hightower::HightowerRouter ht(w.index);
  const route::GridlessRouter fallback(w.index, w.lines);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto hr = ht.route(queries[i].first, queries[i].second, 64);
    if (!hr.found) {
      benchmark::DoNotOptimize(
          fallback.route(queries[i].first, queries[i].second));
    }
    benchmark::DoNotOptimize(hr);
    i = (i + 1) % queries.size();
  }
}
BENCHMARK(BM_QuickTryThenMaze);

void BM_LeeMooreFallback(benchmark::State& state) {
  static const bench::World w(bench::make_workload(32, 768, 0, 532));
  static const auto queries = bench::random_queries(w, 24, 932);
  const grid::GridGraph gg(w.index, 4);
  const grid::LeeMooreRouter lee(gg);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lee.route(queries[i].first, queries[i].second,
                                       search::Strategy::kBestFirst));
    i = (i + 1) % queries.size();
  }
}
BENCHMARK(BM_LeeMooreFallback);

}  // namespace

GCR_BENCH_MAIN(print_table)
