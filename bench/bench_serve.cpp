// E11 — serving-layer throughput: requests/sec vs worker count.
//
// The routing service amortizes the per-layout setup (ObstacleIndex +
// EscapeLineSet, built once into a cached LayoutSession) across requests
// and fans requests out over a persistent worker pool.  Two claims are
// measured: (1) closed-loop requests/sec on one cached session scales with
// the worker count, because independent-mode routing shares a read-only
// environment; (2) a session-cache hit skips environment construction
// entirely, so a warm LOAD is orders of magnitude cheaper than a cold one.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/search_environment.hpp"
#include "io/text_format.hpp"
#include "net/reactor_pool.hpp"
#include "net/socket.hpp"
#include "serve/fd_stream.hpp"
#include "serve/layout_session.hpp"
#include "serve/routing_service.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"

namespace {

using namespace gcr;

std::string workload_text(std::size_t cells, std::size_t nets,
                          std::uint64_t seed) {
  return io::write_layout_string(
      bench::make_workload(cells, 640, nets, seed));
}

/// Closed-loop: `clients` threads each fire `per_client` requests
/// back-to-back at a service with `workers` routing workers.
double requests_per_sec(std::size_t workers, std::size_t clients,
                        std::size_t per_client, const std::string& text) {
  serve::RoutingService::Options opts;
  opts.workers = workers;
  opts.queue_capacity = clients * 2 + 8;
  serve::RoutingService service(opts);
  const auto session = service.load(text);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (std::size_t q = 0; q < per_client; ++q) {
        serve::RouteRequest req;
        req.session_key = session->key;
        (void)service.route(std::move(req));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return secs > 0 ? static_cast<double>(clients * per_client) / secs : 0.0;
}

#if defined(__linux__)

/// One framed request/response round trip on a blocking client socket;
/// returns false on a non-OK status.
bool tcp_round_trip(std::ostream& out, std::istream& in,
                    const std::string& line, const std::string& body) {
  out << line << '\n' << body;
  out.flush();
  std::string status;
  if (!std::getline(in, status)) return false;
  std::istringstream is(status);
  std::string kw;
  std::size_t nbytes = 0;
  if (!(is >> kw >> nbytes) || kw != "OK") return false;
  std::string sink(nbytes, '\0');
  in.read(sink.data(), static_cast<std::streamsize>(nbytes));
  return static_cast<std::size_t>(in.gcount()) == nbytes;
}

/// Closed-loop requests/sec through the network front-end: `connections`
/// concurrent TCP clients (kernel-sharded across `reactors` SO_REUSEPORT
/// event loops), each firing `per_client` ROUTEs back-to-back.
double tcp_requests_per_sec(std::size_t connections, std::size_t per_client,
                            const std::string& text,
                            std::size_t reactors = 1) {
  serve::RoutingService::Options sopts;
  sopts.queue_capacity = connections * 2 + 8;
  serve::RoutingService service(sopts);
  net::ReactorPoolOptions popts;
  popts.reactors = reactors;
  net::ReactorPool pool(service, popts);
  std::thread pool_thread([&pool] { pool.run(); });

  const std::string key = serve::SessionCache::content_key(text);
  {
    // Prime the session cache over the wire.
    const net::ScopedFd fd = net::tcp_connect(pool.port());
    serve::FdTransport t(fd.get());
    (void)tcp_round_trip(t.out(), t.in(),
                         "LOAD " + std::to_string(text.size()), text);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&] {
      const net::ScopedFd fd = net::tcp_connect(pool.port());
      serve::FdTransport t(fd.get());
      for (std::size_t q = 0; q < per_client; ++q) {
        (void)tcp_round_trip(t.out(), t.in(), "ROUTE " + key, "");
      }
      (void)tcp_round_trip(t.out(), t.in(), "QUIT", "");
    });
  }
  for (std::thread& t : clients) t.join();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  pool.stop();
  pool_thread.join();
  return secs > 0
             ? static_cast<double>(connections * per_client) / secs
             : 0.0;
}

/// Reactors × connections matrix: the multi-reactor scaling claim.  When
/// GCR_SERVE_SCALING_OUT names a file, the table is also archived as a
/// JSON artifact (the CI scaling plot).
void print_reactor_table(const std::string& text) {
  std::puts("requests/sec: reactors x concurrent TCP connections");
  std::puts("(SO_REUSEPORT shards accepted connections across N event"
            " loops;");
  std::puts(" all loops feed one worker pool through the fair queue):");
  const std::vector<std::size_t> reactor_counts{1, 2, 4};
  const std::vector<std::size_t> conn_counts{4, 16, 32};
  std::printf("  %-10s", "reactors");
  for (const std::size_t conns : conn_counts) {
    std::printf(" %8zu conns", conns);
  }
  std::printf("\n");
  std::vector<std::vector<double>> rps(reactor_counts.size());
  for (std::size_t r = 0; r < reactor_counts.size(); ++r) {
    std::printf("  %-10zu", reactor_counts[r]);
    for (const std::size_t conns : conn_counts) {
      const double v = tcp_requests_per_sec(conns, 4, text,
                                            reactor_counts[r]);
      rps[r].push_back(v);
      std::printf(" %14.1f", v);
    }
    std::printf("\n");
  }
  std::puts("  (single-loop accept/read/flush saturates one core;"
            " sharding the\n   front-end keeps the worker pool fed once"
            " connections outnumber it)");

  const char* out_path = std::getenv("GCR_SERVE_SCALING_OUT");
  if (out_path != nullptr && out_path[0] != '\0') {
    std::ofstream os(out_path);
    os << "{\n  \"hardware_threads\": "
       << std::thread::hardware_concurrency() << ",\n  \"per_client\": 4"
       << ",\n  \"rows\": [";
    for (std::size_t r = 0; r < reactor_counts.size(); ++r) {
      os << (r == 0 ? "\n" : ",\n") << "    {\"reactors\": "
         << reactor_counts[r] << ", \"req_s\": {";
      for (std::size_t c = 0; c < conn_counts.size(); ++c) {
        os << (c == 0 ? "" : ", ") << '"' << conn_counts[c]
           << "\": " << rps[r][c];
      }
      os << "}}";
    }
    os << "\n  ]\n}\n";
    std::printf("  scaling table written to %s\n", out_path);
  }
}

void print_tcp_table(const std::string& text) {
  std::puts("requests/sec vs concurrent TCP connections (epoll front-end,");
  std::puts("one worker pool, default workers):");
  std::printf("  %-12s %12s %10s\n", "connections", "req/s", "speedup");
  double base = 0.0;
  for (const std::size_t conns : {1u, 4u, 16u}) {
    const double rps = tcp_requests_per_sec(conns, 4, text);
    if (conns == 1) base = rps;
    std::printf("  %-12zu %12.1f %9.2fx\n", conns, rps,
                base > 0 ? rps / base : 0.0);
  }
  std::puts("  (the event loop multiplexes every connection onto the same\n"
            "   cached session and pool; scaling flattens when the pool\n"
            "   saturates, not when connections do)");
}

#else  // !__linux__

void print_tcp_table(const std::string&) {
  std::puts("(TCP front-end table skipped: requires Linux epoll)");
}

void print_reactor_table(const std::string&) {
  std::puts("(reactor scaling table skipped: requires Linux epoll)");
}

#endif  // __linux__

void print_table() {
  std::puts("E11 — routing service: throughput scaling and session reuse");
  bench::rule('-', 72);

  const std::string text = workload_text(25, 40, 105);
  std::printf("hardware threads: %u (wall-clock scaling needs >1;"
              " CPU-time split is machine-independent)\n",
              std::thread::hardware_concurrency());
  std::puts("requests/sec vs routing workers (25 cells, 40 nets,"
            " 8 closed-loop clients):");
  std::printf("  %-8s %12s %10s\n", "workers", "req/s", "speedup");
  double base = 0.0;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const double rps = requests_per_sec(workers, 8, 6, text);
    if (workers == 1) base = rps;
    std::printf("  %-8zu %12.1f %9.2fx\n", workers, rps,
                base > 0 ? rps / base : 0.0);
  }
  std::puts("  (one cached session, shared read-only search environment —\n"
            "   the paper's independent-net claim turned into service"
            " throughput)");

  print_tcp_table(text);
  print_reactor_table(text);

  // Session cache: cold LOAD parses + builds the environment; warm LOAD is
  // a hash lookup.  The build counter proves the skip.
  std::puts("session cache (cold = parse + index + escape lines,"
            " warm = hash hit):");
  serve::RoutingService service;
  const auto builds_before = route::SearchEnvironment::build_count();
  const auto t0 = std::chrono::steady_clock::now();
  (void)service.load(text);
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < 100; ++i) (void)service.load(text);
  const auto t2 = std::chrono::steady_clock::now();
  const auto builds_after = route::SearchEnvironment::build_count();
  const double cold_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  const double warm_us =
      std::chrono::duration<double, std::micro>(t2 - t1).count() / 100.0;
  std::printf("  cold LOAD %10.1f us   warm LOAD %8.2f us   (%.0fx)\n",
              cold_us, warm_us, warm_us > 0 ? cold_us / warm_us : 0.0);
  std::printf("  environments built: %zu (cold) + %zu (100 warm loads)\n",
              static_cast<std::size_t>(1),
              static_cast<std::size_t>(builds_after - builds_before - 1));

  // Cold-load anatomy: EscapeLineSet construction dominates large
  // floorplans and is embarrassingly parallel per obstacle edge (each
  // obstacle's lines land in preassigned slots, so every thread count is
  // bit-identical).  Serial vs parallel build on a floorplan big enough to
  // clear the auto-parallel threshold:
  std::puts("cold-build anatomy (600-cell floorplan, escape-line set):");
  const layout::Layout big = bench::make_workload(600, 8000, 1, 11);
  const spatial::ObstacleIndex big_index(big.boundary(), big.obstacles());
  const auto b0 = std::chrono::steady_clock::now();
  const spatial::EscapeLineSet serial_lines(big_index, 1);
  const auto b1 = std::chrono::steady_clock::now();
  const spatial::EscapeLineSet parallel_lines(big_index, 0);
  const auto b2 = std::chrono::steady_clock::now();
  const double serial_ms =
      std::chrono::duration<double, std::milli>(b1 - b0).count();
  const double parallel_ms =
      std::chrono::duration<double, std::milli>(b2 - b1).count();
  std::printf(
      "  serial %8.2f ms   parallel(auto) %8.2f ms   (%.2fx, %zu lines,"
      " identical: %s)\n",
      serial_ms, parallel_ms,
      parallel_ms > 0 ? serial_ms / parallel_ms : 0.0,
      parallel_lines.lines().size(),
      serial_lines.lines() == parallel_lines.lines() ? "yes" : "NO");
  bench::rule('-', 72);
}

void BM_EscapeLineBuild(benchmark::State& state) {
  // The cold-session-load hot spot: escape-line construction over a large
  // floorplan, serial (threads=1) vs auto-parallel (threads=0).
  const layout::Layout big = bench::make_workload(600, 8000, 1, 11);
  const spatial::ObstacleIndex index(big.boundary(), big.obstacles());
  const unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const spatial::EscapeLineSet lines(index, threads);
    benchmark::DoNotOptimize(lines.lines().size());
  }
  state.SetLabel(threads == 0 ? "auto threads" : "serial");
}
BENCHMARK(BM_EscapeLineBuild)->Arg(1)->Arg(0);

void BM_ServiceRoute(benchmark::State& state) {
  const std::string text = workload_text(25, 40, 105);
  serve::RoutingService::Options opts;
  opts.workers = static_cast<std::size_t>(state.range(0));
  serve::RoutingService service(opts);
  const auto session = service.load(text);
  for (auto _ : state) {
    serve::RouteRequest req;
    req.session_key = session->key;
    benchmark::DoNotOptimize(service.route(std::move(req)));
  }
  state.SetLabel(std::to_string(state.range(0)) + " workers");
}
BENCHMARK(BM_ServiceRoute)->Arg(1)->Arg(4);

void BM_SessionLoadWarm(benchmark::State& state) {
  const std::string text = workload_text(25, 40, 105);
  serve::RoutingService service;
  (void)service.load(text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.load(text));
  }
}
BENCHMARK(BM_SessionLoadWarm);

void BM_SessionLoadCold(benchmark::State& state) {
  const std::string text = workload_text(25, 40, 105);
  for (auto _ : state) {
    serve::SessionCache cache(2);
    benchmark::DoNotOptimize(cache.load(text));
  }
}
BENCHMARK(BM_SessionLoadCold);

}  // namespace

GCR_BENCH_MAIN(print_table)
