// E7 — congestion-driven two-pass routing.
//
// "A first-pass route of all nets would reveal congested areas ... A second
// route of the affected nets could penalize those paths which chose the
// congested area."
//
// Workload: funnel layouts where every net's shortest route dives through
// one narrow passage although detours exist.  Table: passage overflow and
// max occupancy before/after the second pass, and the wirelength paid.

#include "bench_util.hpp"
#include "congestion/two_pass.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Rect;

/// Two big macros with a narrow gap between them.  Pins sit on the *outer*
/// edges, so every net's shortest route hugs a rim of the gap (congesting
/// it), while a slightly longer detour along the routing boundary exists —
/// the configuration the second pass is meant to exploit.
layout::Layout funnel(std::size_t nets) {
  const geom::Coord top = 30 + static_cast<geom::Coord>(nets) * 8 + 40;
  layout::Layout lay(Rect{0, 0, 206, top + 20});
  lay.set_min_separation(4);
  const auto a = lay.add_cell(layout::Cell{"west", Rect{20, 10, 100, top}});
  const auto b = lay.add_cell(layout::Cell{"east", Rect{106, 10, 186, top}});
  for (std::size_t i = 0; i < nets; ++i) {
    const geom::Coord y = 30 + static_cast<geom::Coord>(i) * 8;
    lay.cell(a).add_pin_terminal("p" + std::to_string(i), Point{20, y});
    lay.cell(b).add_pin_terminal("q" + std::to_string(i), Point{186, y});
    layout::Net net("n" + std::to_string(i));
    net.add_terminal(layout::TerminalRef{a, static_cast<std::uint32_t>(i)});
    net.add_terminal(layout::TerminalRef{b, static_cast<std::uint32_t>(i)});
    lay.add_net(std::move(net));
  }
  return lay;
}

void print_table() {
  std::puts("E7 — two-pass congestion routing on funnel layouts");
  std::puts("(gap capacity 3 wires at pitch 2; overflow = occupancy beyond"
            " capacity, summed)");
  bench::rule('-', 108);
  std::printf("%6s | %10s %12s | %10s %12s | %9s %12s %10s\n", "nets",
              "overflow-1", "max-occ-1", "overflow-2", "max-occ-2",
              "rerouted", "WL pass1", "WL final");
  bench::rule('-', 108);
  for (const std::size_t nets : {4, 6, 8, 12}) {
    const layout::Layout lay = funnel(nets);
    const congestion::TwoPassRouter tp(lay);
    congestion::TwoPassOptions opts;
    opts.passages.wire_pitch = 2;
    opts.penalty_dbu = 64;
    const auto rep = tp.run(opts);
    std::printf("%6zu | %10zu %12zu | %10zu %12zu | %9zu %12lld %10lld\n",
                nets, rep.overflow_before, rep.max_occupancy_before,
                rep.overflow_after, rep.max_occupancy_after,
                rep.nets_rerouted,
                static_cast<long long>(rep.first_pass.total_wirelength),
                static_cast<long long>(rep.final_pass.total_wirelength));
  }
  bench::rule('-', 108);
  std::puts("(the second pass trades wirelength for spread-out passages —"
            " the paper's proposal)\n");
}

void BM_FirstPassOnly(benchmark::State& state) {
  const layout::Layout lay = funnel(static_cast<std::size_t>(state.range(0)));
  const route::NetlistRouter router(lay);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route_all());
  }
  state.SetLabel(std::to_string(state.range(0)) + " nets");
}
BENCHMARK(BM_FirstPassOnly)->Arg(4)->Arg(8)->Arg(12);

void BM_TwoPass(benchmark::State& state) {
  const layout::Layout lay = funnel(static_cast<std::size_t>(state.range(0)));
  const congestion::TwoPassRouter tp(lay);
  congestion::TwoPassOptions opts;
  opts.passages.wire_pitch = 2;
  opts.penalty_dbu = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tp.run(opts));
  }
  state.SetLabel(std::to_string(state.range(0)) + " nets");
}
BENCHMARK(BM_TwoPass)->Arg(4)->Arg(8)->Arg(12);

void BM_PassageExtraction(benchmark::State& state) {
  const layout::Layout lay =
      bench::make_workload(static_cast<std::size_t>(state.range(0)), 1024, 0, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(congestion::extract_passages(lay, {}));
  }
  state.SetLabel(std::to_string(state.range(0)) + " cells");
}
BENCHMARK(BM_PassageExtraction)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

GCR_BENCH_MAIN(print_table)
