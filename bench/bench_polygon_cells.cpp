// E10 — the orthogonal-polygon cell extension.
//
// "Another useful extension would be to allow orthogonal polygons for the
// cell boundaries.  To accommodate the more general cell geometry the
// procedure which generates successors must be modified so that it leaves no
// stone unturned."
//
// We realize the extension by rectangle decomposition: the successor
// generator sees only rectangles, so admissibility carries over unchanged.
// Table 1: on layouts of L/T/U-shaped macros, the gridless A* still matches
// the unit-grid Lee-Moore length on every query.  Table 2: the polygon maze
// families (single-polygon labyrinth and C-ring spiral) routed to optimality.

#include "bench_util.hpp"
#include "grid/lee_moore.hpp"
#include "workload/figures.hpp"

namespace {

using namespace gcr;
using geom::Coord;
using geom::OrthoPolygon;
using geom::Point;
using geom::Rect;

/// A layout of L/T/U-shaped macros placed on a jittered grid of slots.
layout::Layout polygon_layout(std::size_t shapes, std::uint64_t seed) {
  layout::Layout lay(Rect{0, 0, 640, 640});
  lay.set_min_separation(8);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> kind(0, 2);
  const std::size_t per_side =
      static_cast<std::size_t>(std::ceil(std::sqrt(double(shapes))));
  const Coord slot = 640 / static_cast<Coord>(per_side);
  std::size_t made = 0;
  for (std::size_t gy = 0; gy < per_side && made < shapes; ++gy) {
    for (std::size_t gx = 0; gx < per_side && made < shapes; ++gx, ++made) {
      const Coord x0 = static_cast<Coord>(gx) * slot + 8;
      const Coord y0 = static_cast<Coord>(gy) * slot + 8;
      const Coord w = slot - 24;
      const Coord h = slot - 24;
      std::vector<Point> v;
      switch (kind(rng)) {
        case 0:  // L
          v = {{x0, y0}, {x0 + w, y0}, {x0 + w, y0 + h / 2},
               {x0 + w / 2, y0 + h / 2}, {x0 + w / 2, y0 + h}, {x0, y0 + h}};
          break;
        case 1:  // T
          v = {{x0, y0}, {x0 + w, y0}, {x0 + w, y0 + h / 3},
               {x0 + 2 * w / 3, y0 + h / 3}, {x0 + 2 * w / 3, y0 + h},
               {x0 + w / 3, y0 + h}, {x0 + w / 3, y0 + h / 3},
               {x0, y0 + h / 3}};
          break;
        default:  // U
          v = {{x0, y0}, {x0 + w, y0}, {x0 + w, y0 + h},
               {x0 + 2 * w / 3, y0 + h}, {x0 + 2 * w / 3, y0 + h / 3},
               {x0 + w / 3, y0 + h / 3}, {x0 + w / 3, y0 + h}, {x0, y0 + h}};
          break;
      }
      lay.add_cell(
          layout::Cell{"p" + std::to_string(made), OrthoPolygon{std::move(v)}});
    }
  }
  return lay;
}

void print_table() {
  std::puts("E10 — orthogonal-polygon cells via rectangle decomposition");
  const layout::Layout lay = polygon_layout(9, 11);
  if (!lay.valid()) {
    std::puts("  (layout invalid — generator bug)");
    return;
  }
  const bench::World w(lay);
  const auto queries = bench::random_queries(w, 10, 321);
  const route::GridlessRouter router(w.index, w.lines);
  const grid::GridGraph gg(w.index, 1);
  const grid::LeeMooreRouter lee(gg);

  bench::rule('-', 96);
  std::printf("%-26s %12s %12s %12s %12s %10s\n", "query",
              "gridless-len", "grid-len", "agree?", "gridless-exp",
              "grid-exp");
  bench::rule('-', 96);
  std::size_t agree = 0;
  for (const auto& [a, b] : queries) {
    const auto r = router.route(a, b);
    const auto lr = lee.route(a, b, search::Strategy::kAStar);
    const bool same = r.found && lr.found && r.length == lr.length;
    agree += same ? 1 : 0;
    std::printf("(%3lld,%3lld)->(%3lld,%3lld)%8s %12lld %12lld %12s %12zu %10zu\n",
                static_cast<long long>(a.x), static_cast<long long>(a.y),
                static_cast<long long>(b.x), static_cast<long long>(b.y), "",
                static_cast<long long>(r.length),
                static_cast<long long>(lr.length), same ? "yes" : "NO",
                r.stats.nodes_expanded, lr.stats.nodes_expanded);
  }
  bench::rule('-', 96);
  std::printf("optimality agreement on polygon cells: %zu/%zu\n\n", agree,
              queries.size());

  std::puts("polygon maze families (single-polygon walls, no slits):");
  for (const std::size_t teeth : {4, 8}) {
    const auto q = workload::comb_maze(teeth);
    const bench::World mw(q.layout);
    const route::GridlessRouter r(mw.index, mw.lines);
    const auto res = r.route(q.s, q.d);
    std::printf("  comb(%zu): found=%d len=%lld (manhattan %lld) expanded=%zu\n",
                teeth, res.found, static_cast<long long>(res.length),
                static_cast<long long>(manhattan(q.s, q.d)),
                res.stats.nodes_expanded);
  }
  for (const std::size_t turns : {2, 4}) {
    const auto q = workload::spiral_maze(turns);
    const bench::World mw(q.layout);
    const route::GridlessRouter r(mw.index, mw.lines);
    const auto res = r.route(q.s, q.d);
    std::printf("  spiral(%zu): found=%d len=%lld (manhattan %lld) expanded=%zu\n",
                turns, res.found, static_cast<long long>(res.length),
                static_cast<long long>(manhattan(q.s, q.d)),
                res.stats.nodes_expanded);
  }
  std::puts("");
}

void BM_PolygonLayoutRoute(benchmark::State& state) {
  static const bench::World w(polygon_layout(9, 11));
  static const auto queries = bench::random_queries(w, 10, 321);
  const route::GridlessRouter router(w.index, w.lines);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(queries[i].first, queries[i].second));
    i = (i + 1) % queries.size();
  }
}
BENCHMARK(BM_PolygonLayoutRoute);

void BM_RectangleLayoutRoute(benchmark::State& state) {
  // Comparable rectangle-only layout: same slot structure, solid cells.
  static const bench::World w(bench::make_workload(9, 640, 0, 11));
  static const auto queries = bench::random_queries(w, 10, 321);
  const route::GridlessRouter router(w.index, w.lines);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(queries[i].first, queries[i].second));
    i = (i + 1) % queries.size();
  }
}
BENCHMARK(BM_RectangleLayoutRoute);

void BM_SpiralMazeRoute(benchmark::State& state) {
  const auto q = workload::spiral_maze(static_cast<std::size_t>(state.range(0)));
  const bench::World w(q.layout);
  const route::GridlessRouter router(w.index, w.lines);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(q.s, q.d));
  }
  state.SetLabel(std::to_string(state.range(0)) + " turns");
}
BENCHMARK(BM_SpiralMazeRoute)->Arg(2)->Arg(4)->Arg(8);

void BM_PolygonDecomposition(benchmark::State& state) {
  const auto q = workload::comb_maze(12);
  const auto& shape = q.layout.cells()[0].shape();
  for (auto _ : state) {
    benchmark::DoNotOptimize(shape.blocking_rects());
  }
}
BENCHMARK(BM_PolygonDecomposition);

}  // namespace

GCR_BENCH_MAIN(print_table)
