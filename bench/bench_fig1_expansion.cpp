// E1 — Paper Figure 1: node expansion of the gridless A* line search.
//
// The paper's figure shows the handful of nodes the gridless algorithm
// expands on a small general-cell example, its argument against the
// Lee-Moore grid.  This bench reroutes the replica layout with every
// representation/heuristic combination and reports expansions, generations,
// OPEN high-water mark, and path length; the timed section measures each
// method's wall clock.

#include "bench_util.hpp"
#include "core/track_graph.hpp"
#include "grid/lee_moore.hpp"
#include "workload/figures.hpp"

namespace {

using namespace gcr;

struct MethodResult {
  std::string name;
  geom::Cost length = 0;
  search::SearchStats stats;
  std::size_t graph_size = 0;  // vertices materialized / grid points
};

std::vector<MethodResult> run_all() {
  const workload::PointQuery q = workload::figure1_layout();
  const bench::World w(q.layout);
  std::vector<MethodResult> out;

  const auto gridless = [&](search::Strategy s, const char* name) {
    const route::GridlessRouter router(w.index, w.lines);
    route::RouteOptions opts;
    opts.strategy = s;
    const auto r = router.route(q.s, q.d, opts);
    out.push_back({name, r.length, r.stats, w.lines.lines().size()});
  };
  gridless(search::Strategy::kAStar, "gridless A* (paper)");
  gridless(search::Strategy::kBestFirst, "gridless best-first (h=0)");

  for (const geom::Coord pitch : {1, 2, 4}) {
    const grid::GridGraph gg(w.index, pitch);
    const grid::LeeMooreRouter lee(gg);
    for (const auto& [s, tag] :
         {std::pair{search::Strategy::kBestFirst, "Lee-Moore wave"},
          std::pair{search::Strategy::kAStar, "grid A*"}}) {
      const auto r = lee.route(q.s, q.d, s);
      out.push_back({std::string(tag) + " pitch=" + std::to_string(pitch),
                     r.length, r.stats, gg.vertex_count()});
    }
  }

  const route::TrackGraph oracle(w.index, w.lines);
  MethodResult tg;
  tg.name = "explicit track graph (Dijkstra)";
  tg.length = oracle.shortest_length(q.s, q.d);
  tg.graph_size = oracle.vertex_count(q.s, q.d);
  out.push_back(tg);
  return out;
}

void print_table() {
  std::puts("E1 / Figure 1 — node expansion on the general-cell example");
  std::puts("(layout: 3 blocks, s=(5,40), d=(115,45); optimal length is the");
  std::puts(" same for every admissible method — only the effort differs)");
  bench::rule();
  std::printf("%-34s %8s %10s %10s %9s %11s\n", "method", "length",
              "expanded", "generated", "max-open", "graph-size");
  bench::rule();
  for (const MethodResult& m : run_all()) {
    std::printf("%-34s %8lld %10zu %10zu %9zu %11zu\n", m.name.c_str(),
                static_cast<long long>(m.length), m.stats.nodes_expanded,
                m.stats.nodes_generated, m.stats.max_open_size, m.graph_size);
  }
  bench::rule();
  std::puts("");
}

void BM_GridlessAStar(benchmark::State& state) {
  const workload::PointQuery q = workload::figure1_layout();
  const bench::World w(q.layout);
  const route::GridlessRouter router(w.index, w.lines);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(q.s, q.d));
  }
}
BENCHMARK(BM_GridlessAStar);

void BM_LeeMooreWave(benchmark::State& state) {
  const workload::PointQuery q = workload::figure1_layout();
  const bench::World w(q.layout);
  const grid::GridGraph gg(w.index, state.range(0));
  const grid::LeeMooreRouter lee(gg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lee.route(q.s, q.d, gcr::search::Strategy::kBestFirst));
  }
}
BENCHMARK(BM_LeeMooreWave)->Arg(1)->Arg(2)->Arg(4);

void BM_GridAStar(benchmark::State& state) {
  const workload::PointQuery q = workload::figure1_layout();
  const bench::World w(q.layout);
  const grid::GridGraph gg(w.index, state.range(0));
  const grid::LeeMooreRouter lee(gg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lee.route(q.s, q.d, gcr::search::Strategy::kAStar));
  }
}
BENCHMARK(BM_GridAStar)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

GCR_BENCH_MAIN(print_table)
