// E2 — Paper Figure 2: the inverted corner.
//
// "Since both routes have exactly the same length, if a small number, e, is
// added to the cost of the non-preferred route the algorithm will
// automatically pick the preferred route."  The replica layout admits
// several equal-length shortest routes, exactly one of which bends at the
// block corner (the preferred, hugging route).  The table reports, over the
// four mirrored/rotated variants of the configuration, which route class the
// router picks with epsilon = 0 versus epsilon > 0.

#include "bench_util.hpp"
#include "core/cost_model.hpp"
#include "workload/figures.hpp"

namespace {

using namespace gcr;
using geom::Point;
using geom::Rect;

struct Variant {
  std::string name;
  layout::Layout lay;
  Point s, d;
  Point preferred_bend;  // the hugging corner
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  const Rect block{30, 30, 60, 60};
  const auto make = [&](const char* name, Point s, Point d, Point corner) {
    layout::Layout lay(Rect{0, 0, 80, 80});
    lay.set_min_separation(4);
    lay.add_cell(layout::Cell{"block", block});
    out.push_back({name, std::move(lay), s, d, corner});
  };
  make("NW->SE around UR corner", {20, 60}, {60, 20}, {60, 60});
  make("SE->NW around LL corner", {60, 20}, {20, 60}, Point{30, 30});
  make("NE->SW around UL corner", {70, 60}, {30, 15}, Point{30, 30});
  make("SW->NE around LR corner", {15, 30}, {60, 70}, Point{60, 30});
  return out;
}

bool bends_all_on_boundary(const spatial::ObstacleIndex& idx,
                           const route::Route& r) {
  for (std::size_t i = 1; i + 1 < r.points.size(); ++i) {
    if (!route::on_obstacle_boundary(idx, r.points[i])) return false;
  }
  return true;
}

void print_table() {
  std::puts("E2 / Figure 2 — the inverted corner, epsilon tie-break");
  std::puts("(each row: does the chosen route bend only at cell corners?)");
  bench::rule();
  std::printf("%-28s %8s %12s %14s %14s\n", "variant", "length",
              "num-optima", "eps=0 hugs?", "eps=1 hugs?");
  bench::rule();
  std::size_t preferred_with_eps = 0, total = 0;
  for (const Variant& v : variants()) {
    const bench::World w(v.lay);
    const route::GridlessRouter plain(w.index, w.lines);
    const route::InvertedCornerCost eps(1);
    const route::GridlessRouter biased(w.index, w.lines, &eps);

    const auto r0 = plain.route(v.s, v.d);
    const auto r1 = biased.route(v.s, v.d);
    const bool hug0 = bends_all_on_boundary(w.index, r0);
    const bool hug1 = bends_all_on_boundary(w.index, r1);
    ++total;
    preferred_with_eps += hug1 ? 1 : 0;
    std::printf("%-28s %8lld %12s %14s %14s\n", v.name.c_str(),
                static_cast<long long>(r1.length), ">=2",
                hug0 ? "yes" : "no (tie)", hug1 ? "yes" : "NO");
  }
  bench::rule();
  std::printf("preferred-route selection rate with epsilon: %zu/%zu "
              "(paper: always picks the preferred route)\n\n",
              preferred_with_eps, total);
}

void BM_RouteWithoutEpsilon(benchmark::State& state) {
  const auto vs = variants();
  const bench::World w(vs[0].lay);
  const route::GridlessRouter router(w.index, w.lines);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(vs[0].s, vs[0].d));
  }
}
BENCHMARK(BM_RouteWithoutEpsilon);

void BM_RouteWithEpsilon(benchmark::State& state) {
  const auto vs = variants();
  const bench::World w(vs[0].lay);
  const route::InvertedCornerCost eps(1);
  const route::GridlessRouter router(w.index, w.lines, &eps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(vs[0].s, vs[0].d));
  }
}
BENCHMARK(BM_RouteWithEpsilon);

}  // namespace

GCR_BENCH_MAIN(print_table)
