// E11 (extension) — the placement-adjustment feedback loop.
//
// The paper leaves routing-driven placement adjustment as open research:
// "It has not been shown that this approach is guaranteed to converge even
// with sufficient restrictions."  Our loop uses a *sufficient restriction* —
// rigid widen-only shifts, under which no passage ever shrinks — and this
// bench studies convergence empirically: iterations to convergence, area
// paid, and wirelength drift across gap sizes and net counts.

#include "bench_util.hpp"
#include "placement/feedback_loop.hpp"

namespace {

using namespace gcr;
using geom::Coord;
using geom::Point;
using geom::Rect;

layout::Layout tight_gap(std::size_t nets, Coord gap) {
  const Coord top = 30 + static_cast<Coord>(nets) * 8 + 40;
  layout::Layout lay(Rect{0, 0, 186 + gap, top + 20});
  lay.set_min_separation(2);
  const auto a = lay.add_cell(layout::Cell{"west", Rect{20, 10, 100, top}});
  const auto b =
      lay.add_cell(layout::Cell{"east", Rect{100 + gap, 10, 180 + gap, top}});
  for (std::size_t i = 0; i < nets; ++i) {
    const Coord y = 30 + static_cast<Coord>(i) * 8;
    lay.cell(a).add_pin_terminal("p" + std::to_string(i), Point{20, y});
    lay.cell(b).add_pin_terminal("q" + std::to_string(i), Point{180 + gap, y});
    layout::Net net("n" + std::to_string(i));
    net.add_terminal(layout::TerminalRef{a, static_cast<std::uint32_t>(i)});
    net.add_terminal(layout::TerminalRef{b, static_cast<std::uint32_t>(i)});
    lay.add_net(std::move(net));
  }
  return lay;
}

/// A 2x2 quad of macros: deficits in one passage interact with the others,
/// the configuration the paper worried about ("creating inter-cell spacing
/// problems where they did not previously exist").
layout::Layout quad(std::size_t nets_per_side, Coord gap) {
  const Coord cell = 90;
  const Coord size = 2 * cell + gap + 40;
  layout::Layout lay(Rect{0, 0, size, size});
  lay.set_min_separation(2);
  const Coord x0 = 20, y0 = 20;
  const Coord x1 = x0 + cell + gap, y1 = y0 + cell + gap;
  const auto ll = lay.add_cell(layout::Cell{"ll", Rect{x0, y0, x0 + cell, y0 + cell}});
  const auto lr = lay.add_cell(layout::Cell{"lr", Rect{x1, y0, x1 + cell, y0 + cell}});
  const auto ul = lay.add_cell(layout::Cell{"ul", Rect{x0, y1, x0 + cell, y1 + cell}});
  const auto ur = lay.add_cell(layout::Cell{"ur", Rect{x1, y1, x1 + cell, y1 + cell}});
  std::uint32_t term[4] = {0, 0, 0, 0};
  const layout::CellId ids[4] = {ll, lr, ul, ur};
  const auto pin = [&](int c, Point p) {
    lay.cell(ids[c]).add_pin_terminal("t" + std::to_string(term[c]), p);
    return layout::TerminalRef{ids[c], term[c]++};
  };
  for (std::size_t i = 0; i < nets_per_side; ++i) {
    const Coord d = 20 + static_cast<Coord>(i) * 8;
    // Horizontal neighbors (outer pins) and vertical neighbors (outer pins).
    layout::Net h("h" + std::to_string(i));
    h.add_terminal(pin(0, Point{x0, y0 + d}));
    h.add_terminal(pin(1, Point{x1 + cell, y0 + d}));
    lay.add_net(std::move(h));
    layout::Net v("v" + std::to_string(i));
    v.add_terminal(pin(0, Point{x0 + d, y0}));
    v.add_terminal(pin(2, Point{x0 + d, y1 + cell}));
    lay.add_net(std::move(v));
  }
  (void)ur;
  return lay;
}

void print_table() {
  std::puts("E11 (extension) — placement feedback loop convergence");
  std::puts("(widen-only rigid shifts; the monotone restriction under which"
            " the loop converges)");
  bench::rule('-', 104);
  std::printf("%-22s %6s %5s | %10s %11s | %11s %12s %12s\n", "workload",
              "nets", "gap", "converged", "iterations", "area-growth",
              "WL first", "WL final");
  bench::rule('-', 104);
  const auto run_one = [](const char* name, const layout::Layout& lay,
                          std::size_t nets, Coord gap) {
    placement::FeedbackOptions opts;
    opts.spacing.wire_pitch = 2;
    const auto rep = placement::run_feedback(lay, opts);
    geom::Cost growth = 0;
    for (const auto& it : rep.trace) growth += it.area_growth;
    std::printf("%-22s %6zu %5lld | %10s %11zu | %11lld %12lld %12lld\n", name,
                nets, static_cast<long long>(gap),
                rep.converged ? "yes" : "NO", rep.iterations,
                static_cast<long long>(growth),
                static_cast<long long>(rep.trace.front().wirelength),
                static_cast<long long>(rep.trace.back().wirelength));
  };
  for (const auto& [nets, gap] :
       {std::pair<std::size_t, Coord>{4, 4}, {8, 4}, {12, 2}, {16, 2}}) {
    run_one("two-macro gap", tight_gap(nets, gap), nets, gap);
  }
  for (const auto& [nets, gap] :
       {std::pair<std::size_t, Coord>{4, 4}, {8, 4}, {8, 2}}) {
    run_one("quad (interacting)", quad(nets, gap), nets * 2, gap);
  }
  bench::rule('-', 104);
  std::puts("(every configuration converges in a handful of iterations —"
            " evidence for the paper's\n conjecture under the widen-only"
            " restriction)\n");
}

void BM_FeedbackLoop(benchmark::State& state) {
  const layout::Layout lay =
      tight_gap(static_cast<std::size_t>(state.range(0)), 2);
  placement::FeedbackOptions opts;
  opts.spacing.wire_pitch = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::run_feedback(lay, opts));
  }
  state.SetLabel(std::to_string(state.range(0)) + " nets");
}
BENCHMARK(BM_FeedbackLoop)->Arg(4)->Arg(8)->Arg(16);

void BM_SpacingAnalysis(benchmark::State& state) {
  const layout::Layout lay =
      tight_gap(static_cast<std::size_t>(state.range(0)), 2);
  const route::NetlistRouter router(lay);
  const auto routed = router.route_all();
  placement::SpacingOptions opts;
  opts.wire_pitch = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::spacing_deficits(lay, routed, opts));
  }
  state.SetLabel(std::to_string(state.range(0)) + " nets");
}
BENCHMARK(BM_SpacingAnalysis)->Arg(4)->Arg(16);

}  // namespace

GCR_BENCH_MAIN(print_table)
