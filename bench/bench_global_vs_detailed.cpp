// E9 — "The processor time consumed by global routing is always less than
// the time consumed by detailed routing and layer assignment."
//
// Full chip-assembly flow on random layouts of increasing size.  Global
// routing = gridless A* Steiner netlist over the escape-line graph.
// Detailed routing = the follow-on substrate: dynamic channel assignment +
// left-edge track assignment (structural stage) + the two-layer gridded
// track router that realizes every connection at wire-pitch resolution with
// nets blocking one another and vias at layer changes — the "detailed
// routing and layer assignment" whose cost the paper compares against.

#include <chrono>

#include "bench_util.hpp"
#include "core/netlist_router.hpp"
#include "detail/detailed_router.hpp"
#include "detail/track_router.hpp"

namespace {

using namespace gcr;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void print_table() {
  std::puts("E9 — global routing vs detailed routing + layer assignment");
  bench::rule('-', 120);
  std::printf("%6s %6s | %11s %11s %7s | %9s %8s %7s %7s %7s | %13s\n",
              "cells", "nets", "global-ms", "detail-ms", "ratio", "channels",
              "tracks", "wires", "vias", "fail", "claim holds?");
  bench::rule('-', 120);
  for (const auto& [cells, nets] :
       {std::pair<std::size_t, std::size_t>{16, 32},
        std::pair<std::size_t, std::size_t>{36, 72},
        std::pair<std::size_t, std::size_t>{64, 128},
        std::pair<std::size_t, std::size_t>{100, 200}}) {
    const layout::Layout lay =
        bench::make_workload(cells, 1024, nets, 300 + cells);

    const auto t0 = std::chrono::steady_clock::now();
    const route::NetlistRouter router(lay);
    const auto global = router.route_all();
    const double global_ms = ms_since(t0);

    const auto t1 = std::chrono::steady_clock::now();
    const detail::DetailedRouter dr;
    const auto structural = dr.run(global);
    detail::TrackRouter tr(lay);
    const auto realized = tr.realize(global);
    const double detail_ms = ms_since(t1);

    std::printf("%6zu %6zu | %11.2f %11.2f %7.2f | %9zu %8zu %7zu %7zu %7zu"
                " | %13s\n",
                cells, nets, global_ms, detail_ms,
                global_ms > 0 ? detail_ms / global_ms : 0.0,
                structural.channel_count, structural.total_tracks,
                realized.wires.size(), realized.via_count,
                realized.connections_failed,
                global_ms < detail_ms ? "yes" : "NO");
  }
  bench::rule('-', 120);
  std::puts("(ratio = detailed/global; the paper observed it always above 1"
            " — detailed routing works at\n wire-pitch resolution while"
            " global routing searches the sparse escape-line graph)\n");
}

void BM_GlobalRouting(benchmark::State& state) {
  const std::size_t cells = static_cast<std::size_t>(state.range(0));
  const layout::Layout lay =
      bench::make_workload(cells, 1024, cells * 2, 300 + cells);
  const route::NetlistRouter router(lay);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route_all());
  }
  state.SetLabel(std::to_string(cells) + " cells");
}
BENCHMARK(BM_GlobalRouting)->Arg(16)->Arg(36)->Arg(64);

void BM_DetailedStructural(benchmark::State& state) {
  const std::size_t cells = static_cast<std::size_t>(state.range(0));
  const layout::Layout lay =
      bench::make_workload(cells, 1024, cells * 2, 300 + cells);
  const route::NetlistRouter router(lay);
  const auto global = router.route_all();
  const detail::DetailedRouter dr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dr.run(global));
  }
  state.SetLabel(std::to_string(cells) + " cells, channels+left-edge");
}
BENCHMARK(BM_DetailedStructural)->Arg(16)->Arg(36)->Arg(64);

void BM_DetailedTrackRealization(benchmark::State& state) {
  const std::size_t cells = static_cast<std::size_t>(state.range(0));
  const layout::Layout lay =
      bench::make_workload(cells, 1024, cells * 2, 300 + cells);
  const route::NetlistRouter router(lay);
  const auto global = router.route_all();
  for (auto _ : state) {
    detail::TrackRouter tr(lay);
    benchmark::DoNotOptimize(tr.realize(global));
  }
  state.SetLabel(std::to_string(cells) + " cells, 2-layer track routing");
}
BENCHMARK(BM_DetailedTrackRealization)->Arg(16)->Arg(36)->Arg(64);

void BM_FullFlow(benchmark::State& state) {
  const std::size_t cells = static_cast<std::size_t>(state.range(0));
  const layout::Layout lay =
      bench::make_workload(cells, 1024, cells * 2, 300 + cells);
  for (auto _ : state) {
    const route::NetlistRouter router(lay);
    const auto global = router.route_all();
    const detail::DetailedRouter dr;
    benchmark::DoNotOptimize(dr.run(global));
    detail::TrackRouter tr(lay);
    benchmark::DoNotOptimize(tr.realize(global));
  }
  state.SetLabel(std::to_string(cells) + " cells, global+detailed");
}
BENCHMARK(BM_FullFlow)->Arg(16)->Arg(36);

}  // namespace

GCR_BENCH_MAIN(print_table)
