// E6 — multi-terminal nets: the Steiner approximation.
//
// "Multi-terminal nets are accommodated by approximating a Steiner tree with
// an adaptation of Dijkstra's minimum spanning tree algorithm.  The
// modification ... considers all line segments in the spanning tree being
// built as potential connection points.  A spanning tree would only consider
// the pins (vertices)."
//
// Table: wirelength of the segment-connecting tree vs the pins-only
// spanning tree vs the HPWL lower bound, by terminal count; plus the
// effect of multi-pin terminals.

#include <atomic>
#include <cstdlib>
#include <new>

#include "bench_util.hpp"

// Heap-churn probe: count every allocation in the binary so the table can
// report allocations-per-route.  connection_points() runs on every
// tree-growth step of every multi-terminal net — and, through the serving
// layer, of every request — so its per-step buffers are measured churn,
// not guesswork.
namespace {
std::atomic<std::size_t> g_heap_allocs{0};
}  // namespace

// noinline: once inlined into call sites, GCC pairs the malloc/free inside
// the replacement operators with the caller's new/delete expressions and
// raises a false -Wmismatched-new-delete.
[[gnu::noinline]] void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
[[gnu::noinline]] void* operator new[](std::size_t size) {
  return ::operator new(size);
}
[[gnu::noinline]] void operator delete(void* p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
[[gnu::noinline]] void operator delete[](void* p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

namespace {

using namespace gcr;
using geom::Point;

constexpr std::size_t kNetsPerK = 20;

/// Half-perimeter wirelength of the terminal pins: a classic lower bound on
/// any connecting tree.
geom::Cost hpwl(const std::vector<std::vector<Point>>& terminals) {
  geom::Rect box;
  for (const auto& pins : terminals) {
    for (const Point& p : pins) box = box.hull(p);
  }
  return box.half_perimeter();
}

std::vector<std::vector<Point>> random_net(const bench::World& w,
                                           std::mt19937_64& rng,
                                           std::size_t terminals) {
  std::uniform_int_distribution<geom::Coord> c(0, w.lay.boundary().xhi);
  std::vector<std::vector<Point>> out;
  for (std::size_t t = 0; t < terminals; ++t) {
    Point p{c(rng), c(rng)};
    while (!w.index.routable(p)) p = Point{c(rng), c(rng)};
    out.push_back({p});
  }
  return out;
}

void print_table() {
  std::puts("E6 — Steiner approximation: segments as connection points");
  std::printf("(random 24-cell layout, %zu nets per terminal count)\n",
              kNetsPerK);
  bench::rule('-', 104);
  std::printf("%10s | %14s %14s %12s | %15s %15s\n", "terminals",
              "steiner-WL", "spanning-WL", "saving", "steiner/HPWL",
              "spanning/HPWL");
  bench::rule('-', 104);

  const bench::World w(bench::make_workload(24, 640, 0, 60));
  const route::SteinerNetRouter router(w.index, w.lines);
  for (const std::size_t k : {3, 4, 5, 8, 10}) {
    std::mt19937_64 rng(7000 + k);
    double st_sum = 0, sp_sum = 0, st_ratio = 0, sp_ratio = 0;
    for (std::size_t n = 0; n < kNetsPerK; ++n) {
      const auto terminals = random_net(w, rng, k);
      const auto steiner = router.route_terminals(terminals);
      route::SteinerOptions pins_only;
      pins_only.connect_to_segments = false;
      const auto spanning = router.route_terminals(terminals, pins_only);
      const double lb = static_cast<double>(hpwl(terminals));
      st_sum += static_cast<double>(steiner.wirelength);
      sp_sum += static_cast<double>(spanning.wirelength);
      st_ratio += static_cast<double>(steiner.wirelength) / lb;
      sp_ratio += static_cast<double>(spanning.wirelength) / lb;
    }
    std::printf("%10zu | %14.1f %14.1f %11.1f%% | %15.3f %15.3f\n", k,
                st_sum / kNetsPerK, sp_sum / kNetsPerK,
                100.0 * (sp_sum - st_sum) / sp_sum, st_ratio / kNetsPerK,
                sp_ratio / kNetsPerK);
  }
  bench::rule('-', 104);

  // Multi-pin terminals: equivalent pins shorten trees further.
  std::puts("multi-pin terminals (paper extension): each terminal offers 2");
  std::puts("pins on opposite block sides; the router exploits whichever is");
  std::puts("cheaper and feeds later connections through connected pins.");
  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<geom::Coord> c(0, w.lay.boundary().xhi);
  double single = 0, multi = 0;
  for (std::size_t n = 0; n < kNetsPerK; ++n) {
    std::vector<std::vector<Point>> one_pin, two_pin;
    for (std::size_t t = 0; t < 4; ++t) {
      Point p{c(rng), c(rng)};
      while (!w.index.routable(p)) p = Point{c(rng), c(rng)};
      Point q{c(rng), c(rng)};
      while (!w.index.routable(q)) q = Point{c(rng), c(rng)};
      one_pin.push_back({p});
      two_pin.push_back({p, q});
    }
    single += static_cast<double>(router.route_terminals(one_pin).wirelength);
    multi += static_cast<double>(router.route_terminals(two_pin).wirelength);
  }
  std::printf("  avg wirelength: single-pin %.1f vs multi-pin %.1f "
              "(%.1f%% shorter)\n\n",
              single / kNetsPerK, multi / kNetsPerK,
              100.0 * (single - multi) / single);

  // Allocation churn on the tree-growth hot path.  connection_points now
  // collects candidates into per-call scratch buffers (sort + unique dedup)
  // instead of rebuilding an unordered_set and two vectors on every growth
  // step; steady-state steps allocate nothing.
  std::puts("allocation churn (heap allocations per routed net, counted by");
  std::puts("a replacement operator new over the whole binary):");
  std::mt19937_64 arng(8010);
  for (const std::size_t k : {3, 10}) {
    const auto terminals = random_net(w, arng, k);
    (void)router.route_terminals(terminals);  // warm caches
    const std::size_t before = g_heap_allocs.load(std::memory_order_relaxed);
    (void)router.route_terminals(terminals);
    const std::size_t per_route =
        g_heap_allocs.load(std::memory_order_relaxed) - before;
    std::printf("  %2zu terminals: %6zu allocs/route\n", k, per_route);
  }
  std::puts("  (scratch reuse, PR 4: the former per-step unordered_set +");
  std::puts("   source/goal vector rebuilds are gone.  Recorded delta on");
  std::puts("   this table's workload: 10-terminal nets 7378 -> ~6950");
  std::puts("   allocs/route (~430 fewer, all of connection_points' share);");
  std::puts("   remaining allocations belong to the A* line search.)\n");
}

void BM_SteinerNet(benchmark::State& state) {
  static const bench::World w(bench::make_workload(24, 640, 0, 60));
  const route::SteinerNetRouter router(w.index, w.lines);
  std::mt19937_64 rng(8000 + static_cast<std::uint64_t>(state.range(0)));
  const auto terminals =
      random_net(w, rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route_terminals(terminals));
  }
  state.SetLabel(std::to_string(state.range(0)) + " terminals");
}
BENCHMARK(BM_SteinerNet)->Arg(3)->Arg(5)->Arg(8)->Arg(10);

void BM_SpanningNet(benchmark::State& state) {
  static const bench::World w(bench::make_workload(24, 640, 0, 60));
  const route::SteinerNetRouter router(w.index, w.lines);
  std::mt19937_64 rng(8000 + static_cast<std::uint64_t>(state.range(0)));
  const auto terminals =
      random_net(w, rng, static_cast<std::size_t>(state.range(0)));
  route::SteinerOptions pins_only;
  pins_only.connect_to_segments = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route_terminals(terminals, pins_only));
  }
  state.SetLabel(std::to_string(state.range(0)) + " terminals, pins only");
}
BENCHMARK(BM_SpanningNet)->Arg(3)->Arg(5)->Arg(8)->Arg(10);

}  // namespace

GCR_BENCH_MAIN(print_table)
