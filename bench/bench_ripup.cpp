// E13 — incremental rip-up (obstacle removal) vs full environment rebuilds.
//
// Rip-up-and-reroute rips a committed net's wire halos back out of the
// search environment.  The classical implementation rebuilds the
// ObstacleIndex and EscapeLineSet from scratch over the surviving
// obstacles; `SearchEnvironment::remove_route` instead tombstones the halos
// in the edge tables and bucket grid and re-extends only the escape lines
// they had clipped, with periodic compaction keeping the tombstoned tables
// bounded across rip-up cycles.  Two claims are measured: (1) ripping one
// wire out costs O(affected geometry) — far cheaper than a rebuild, with
// the gap growing as committed wires accumulate; (2) end-to-end
// rip-up-and-reroute (`NetlistOptions::reroute`) beats the rebuild-based
// reference loop the differential tests prove it bit-identical to.
//
// The acceptance bar from the issue: per-net removal at 256 committed
// wires must be at least 5x cheaper than a full rebuild.

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "core/netlist_router.hpp"
#include "core/search_environment.hpp"
#include "reference_sequential.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"

namespace {

using namespace gcr;
using geom::Coord;
using geom::Point;
using geom::Rect;
using geom::Segment;
using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Wire-shaped segments (thin, axis-aligned) like sequential routing
/// commits, reproducible by seed.
std::vector<Segment> wire_stream(std::size_t count, Coord extent,
                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Coord> pos(0, extent - 1);
  std::uniform_int_distribution<Coord> len(4, extent / 3);
  std::uniform_int_distribution<int> axis(0, 1);
  std::vector<Segment> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Coord x = pos(rng), y = pos(rng), l = len(rng);
    out.push_back(axis(rng) == 0
                      ? Segment{Point{x, y}, Point{std::min(x + l, extent), y}}
                      : Segment{Point{x, y}, Point{x, std::min(y + l, extent)}});
  }
  return out;
}

/// An environment with `wires` single-segment nets committed under keys
/// 0..wires-1.
route::SearchEnvironment committed_env(const layout::Layout& base,
                                       const std::vector<Segment>& wires) {
  route::SearchEnvironment env(base);
  for (std::size_t i = 0; i < wires.size(); ++i) {
    env.commit_route(i, {wires[i]}, 1);
  }
  return env;
}

void print_table() {
  std::puts("E13 — incremental rip-up (removal) vs full environment rebuilds");
  bench::rule('-', 78);

  std::puts("per-net removal cost at N committed wires (24 base cells):");
  std::printf("  %-8s %14s %16s %10s\n", "wires", "remove us/net",
              "rebuild us/net", "speedup");
  for (const std::size_t wires : {16u, 64u, 256u}) {
    const layout::Layout base = bench::make_workload(24, 640, 1, 42);
    const std::vector<Segment> wires_v = wire_stream(wires, 640, 99);
    const route::SearchEnvironment env = committed_env(base, wires_v);

    // Remove every 8th committed net from a copy — the rip-up pattern —
    // and charge the copy outside the timed region.
    std::vector<std::size_t> victims;
    for (std::size_t i = 0; i < wires; i += 8) victims.push_back(i);

    route::SearchEnvironment ripped = env;
    const auto t_remove = Clock::now();
    for (const std::size_t v : victims) ripped.remove_route(v);
    const double remove_us =
        secs_since(t_remove) * 1e6 / double(victims.size());
    benchmark::DoNotOptimize(ripped.committed());

    // The cost remove_route avoids: a from-scratch build over the same
    // survivor set, once per removal.  The copy is charged outside the
    // timed region, same as on the removal side; repeated rebuild() calls
    // on the copy cost the same as the first (full re-sort + re-trace).
    route::SearchEnvironment fresh = env;
    const auto t_rebuild = Clock::now();
    for (std::size_t k = 0; k < victims.size(); ++k) {
      fresh.rebuild();
      benchmark::DoNotOptimize(fresh.committed());
    }
    const double rebuild_us =
        secs_since(t_rebuild) * 1e6 / double(victims.size());

    std::printf("  %-8zu %14.1f %16.1f %9.1fx\n", wires, remove_us,
                rebuild_us, remove_us > 0 ? rebuild_us / remove_us : 0.0);
  }
  std::puts("  (the issue's bar: >= 5x at 256 wires; removal touches only"
            " the clipped lines)");

  std::puts("end-to-end rip-up-and-reroute (20 cells), incremental vs"
            " rebuild reference:");
  std::printf("  %-8s %12s %12s %10s %8s\n", "nets", "incr ms", "rebuild ms",
              "speedup", "match");
  for (const std::size_t nets : {8u, 16u, 32u}) {
    const layout::Layout lay = bench::make_workload(20, 640, nets, 7);
    route::NetlistOptions opts;
    opts.mode = route::NetlistMode::kSequential;
    for (std::size_t i = 0; i < nets; i += 3) opts.reroute.push_back(i);

    const auto t_incr = Clock::now();
    const auto incr = route::NetlistRouter(lay).route_all(opts);
    const double incr_ms = secs_since(t_incr) * 1e3;

    const auto t_reb = Clock::now();
    const auto reb = test::reference_ripup(lay, opts, opts.reroute);
    const double reb_ms = secs_since(t_reb) * 1e3;

    const bool match = incr.total_wirelength == reb.total_wirelength &&
                       incr.routed == reb.routed;
    std::printf("  %-8zu %12.2f %12.2f %9.1fx %8s\n", nets, incr_ms, reb_ms,
                incr_ms > 0 ? reb_ms / incr_ms : 0.0, match ? "yes" : "NO");
  }
  bench::rule('-', 78);
}

void BM_RemoveRoute(benchmark::State& state) {
  // Cost of ripping one committed net out of an environment holding
  // `range` committed wires.
  const std::size_t preload = static_cast<std::size_t>(state.range(0));
  const layout::Layout base = bench::make_workload(24, 640, 1, 42);
  const route::SearchEnvironment env =
      committed_env(base, wire_stream(preload, 640, 99));
  for (auto _ : state) {
    state.PauseTiming();
    route::SearchEnvironment copy = env;
    state.ResumeTiming();
    copy.remove_route(preload / 2);
    benchmark::DoNotOptimize(copy.committed());
  }
  state.SetLabel(std::to_string(preload) + " wires committed");
}
BENCHMARK(BM_RemoveRoute)->Arg(16)->Arg(64)->Arg(256);

void BM_RebuildAfterRemoval(benchmark::State& state) {
  // The cost remove_route avoids: the rebuild() fallback over the same
  // committed set.
  const std::size_t preload = static_cast<std::size_t>(state.range(0));
  const layout::Layout base = bench::make_workload(24, 640, 1, 42);
  const route::SearchEnvironment env =
      committed_env(base, wire_stream(preload, 640, 99));
  for (auto _ : state) {
    state.PauseTiming();
    route::SearchEnvironment copy = env;
    state.ResumeTiming();
    copy.rebuild();
    benchmark::DoNotOptimize(copy.committed());
  }
  state.SetLabel(std::to_string(preload) + " wires committed");
}
BENCHMARK(BM_RebuildAfterRemoval)->Arg(16)->Arg(64)->Arg(256);

void BM_RipupReroute(benchmark::State& state) {
  // End-to-end: sequential route, rip a third of the nets, re-route them.
  const std::size_t nets = static_cast<std::size_t>(state.range(0));
  const layout::Layout lay = bench::make_workload(20, 640, nets, 7);
  route::NetlistOptions opts;
  opts.mode = route::NetlistMode::kSequential;
  for (std::size_t i = 0; i < nets; i += 3) opts.reroute.push_back(i);
  const route::NetlistRouter router(lay);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route_all(opts));
  }
  state.SetLabel(std::to_string(nets) + " nets");
}
BENCHMARK(BM_RipupReroute)->Arg(16)->Arg(48);

}  // namespace

GCR_BENCH_MAIN(print_table)
