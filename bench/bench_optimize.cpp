// E14 — OPTIMIZE convergence: iterated rip-up with negotiated-congestion
// costs.
//
// The optimizer's value is its convergence curve: per pass, total
// wirelength and passage overflow must fall (never rise — regressed passes
// roll back unrecorded), and most of the win should land in the first few
// passes.  The curve is a function of the layout and the cost constants
// only — wirelengths and overflow counts are integers, machine-independent
// — so the table below is deterministic and CI diffs it (via the JSON dump)
// against a committed baseline: an engine change that degrades convergence
// fails the build instead of shipping silently.
//
// Set GCR_OPTIMIZE_CONVERGENCE_OUT=<path> to write the same curves as JSON.
// Regenerate the baseline after an *intentional* engine change by running
// ./build/bench_optimize --benchmark_filter=NONE with that variable set to
// bench/baselines/bench_optimize_convergence.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "core/optimize.hpp"

namespace {

using namespace gcr;
using Clock = std::chrono::steady_clock;

// The congested corpus: dense nets over a coarse passage pitch, the regime
// pass 1 leaves detours and overflow in.  Fixed seeds — the curves are the
// regression surface, so they must not float.
constexpr std::size_t kCells = 12;
constexpr geom::Coord kExtent = 200;
constexpr std::size_t kNets = 32;
constexpr geom::Coord kWirePitch = 12;
constexpr std::uint64_t kSeeds[] = {101, 118, 135, 152, 169, 186};

route::OptimizeReport run_seed(std::uint64_t seed) {
  const layout::Layout lay =
      bench::make_workload(kCells, kExtent, kNets, seed);
  route::OptimizeOptions opts;
  opts.passages.wire_pitch = kWirePitch;
  return route::Optimizer(lay).run(opts);
}

void write_convergence_json(const char* path,
                            const std::vector<route::OptimizeReport>& reports) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_optimize: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"workload\": {\"cells\": %zu, \"extent\": %lld, "
               "\"nets\": %zu, \"wire_pitch\": %lld},\n  \"seeds\": [\n",
               kCells, static_cast<long long>(kExtent), kNets,
               static_cast<long long>(kWirePitch));
  for (std::size_t s = 0; s < reports.size(); ++s) {
    std::fprintf(f, "    {\"seed\": %llu, \"passes\": [",
                 static_cast<unsigned long long>(kSeeds[s]));
    const auto& passes = reports[s].passes;
    for (std::size_t i = 0; i < passes.size(); ++i) {
      std::fprintf(
          f, "%s{\"pass\": %zu, \"wirelength\": %lld, \"overflow\": %zu}",
          i == 0 ? "" : ", ", passes[i].pass,
          static_cast<long long>(passes[i].wirelength), passes[i].overflow);
    }
    std::fprintf(f, "]}%s\n", s + 1 == reports.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void print_table() {
  std::puts("E14 — OPTIMIZE convergence (iterated rip-up, negotiated"
            " congestion)");
  bench::rule('-', 78);
  std::printf("  workload: %zu cells, %lld extent, %zu nets, wire_pitch"
              " %lld\n",
              kCells, static_cast<long long>(kExtent), kNets,
              static_cast<long long>(kWirePitch));

  std::vector<route::OptimizeReport> reports;
  geom::Cost wl_before = 0, wl_after = 0;
  std::size_t of_before = 0, of_after = 0;
  for (const std::uint64_t seed : kSeeds) {
    reports.push_back(run_seed(seed));
    const route::OptimizeReport& r = reports.back();
    std::printf("  seed %-4llu", static_cast<unsigned long long>(seed));
    for (const route::OptimizePassStats& p : r.passes) {
      std::printf("  %lld/%zu", static_cast<long long>(p.wirelength),
                  p.overflow);
    }
    std::printf("  (%zu pass%s%s)\n", r.passes.size(),
                r.passes.size() == 1 ? "" : "es",
                r.converged ? ", converged" : "");
    wl_before += r.passes.front().wirelength;
    of_before += r.passes.front().overflow;
    wl_after += r.passes.back().wirelength;
    of_after += r.passes.back().overflow;
  }
  std::printf("  aggregate: wirelength %lld -> %lld (%.1f%%), overflow %zu"
              " -> %zu\n",
              static_cast<long long>(wl_before),
              static_cast<long long>(wl_after),
              wl_before > 0
                  ? 100.0 * double(wl_before - wl_after) / double(wl_before)
                  : 0.0,
              of_before, of_after);
  std::puts("  (each column is one recorded pass, wirelength/overflow;"
            " non-increasing by contract)");
  bench::rule('-', 78);

  if (const char* out = std::getenv("GCR_OPTIMIZE_CONVERGENCE_OUT")) {
    write_convergence_json(out, reports);
    std::printf("  convergence JSON written to %s\n", out);
  }
}

void BM_OptimizeFullRun(benchmark::State& state) {
  // End-to-end OPTIMIZE on one congested seed: pass 1 plus every rip-up
  // pass until convergence.
  const std::uint64_t seed = kSeeds[static_cast<std::size_t>(state.range(0))];
  const layout::Layout lay =
      bench::make_workload(kCells, kExtent, kNets, seed);
  route::OptimizeOptions opts;
  opts.passages.wire_pitch = kWirePitch;
  const route::Optimizer optimizer(lay);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.run(opts));
  }
  state.SetLabel("seed " + std::to_string(seed));
}
BENCHMARK(BM_OptimizeFullRun)->Arg(0)->Arg(1);

void BM_OptimizeRipupPassesOnly(benchmark::State& state) {
  // What OPTIMIZE costs *over* ROUTE: the full run minus the pass-1 price,
  // approximated by timing a max_passes=1 run in the same loop for
  // comparison against BM_OptimizeFullRun.
  const std::uint64_t seed = kSeeds[0];
  const layout::Layout lay =
      bench::make_workload(kCells, kExtent, kNets, seed);
  route::OptimizeOptions opts;
  opts.passages.wire_pitch = kWirePitch;
  opts.max_passes = 1;
  const route::Optimizer optimizer(lay);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.run(opts));
  }
  state.SetLabel("pass 1 + one rip-up pass");
}
BENCHMARK(BM_OptimizeRipupPassesOnly);

}  // namespace

GCR_BENCH_MAIN(print_table)
