// E15 — pipeline stages: dormant engines run against committed routes.
//
// Every stage is a pure function of (layout, committed routes, options), so
// its protocol-ready output — meta fields and framed body — is byte-stable
// across machines.  The table below prints, per seed and stage, the body
// size and an FNV-1a hash of meta+body: the cheapest possible end-to-end
// regression surface for four engines at once (detail tracks, congestion
// passes, verifier verdicts, SVG rendering).  CI diffs the JSON dump
// against a committed baseline, so a stage whose output drifts fails the
// build instead of silently invalidating every cached result in the fleet.
//
// Set GCR_PIPELINE_STAGES_OUT=<path> to write the same table as JSON.
// Regenerate the baseline after an *intentional* engine change by running
// ./build/bench_pipeline --benchmark_filter=NONE with that variable set to
// bench/baselines/bench_pipeline_stages.json.
//
// The BM_ timings answer the serving question: what does a stage verb cost
// on a warm session (run_stage from scratch) versus a stage-cache hit
// (one map lookup + LRU touch)?

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/netlist_router.hpp"
#include "core/search_environment.hpp"
#include "pipeline/route_state.hpp"
#include "pipeline/stage.hpp"
#include "pipeline/stage_cache.hpp"
#include "pipeline/stage_runner.hpp"

namespace {

using namespace gcr;

// Fixed corpus: the stage outputs are the regression surface, so the seeds
// must not float.  Extent/net counts match the serve-path tests.
constexpr std::size_t kCells = 12;
constexpr geom::Coord kExtent = 512;
constexpr std::size_t kNets = 24;
constexpr std::uint64_t kSeeds[] = {11, 29, 47};

constexpr pipeline::StageKind kKinds[] = {
    pipeline::StageKind::kDetail, pipeline::StageKind::kCongest,
    pipeline::StageKind::kVerify, pipeline::StageKind::kSvg};

/// A layout with its environment and committed (full-ROUTE) routes — the
/// exact inputs the serving path hands run_stage.
struct Session {
  layout::Layout lay;
  route::SearchEnvironment env;
  route::NetlistResult routes;
  std::string routes_fp;

  explicit Session(std::uint64_t seed)
      : lay(bench::make_workload(kCells, kExtent, kNets, seed)),
        env(lay),
        routes(route::NetlistRouter(lay).route_all()),
        routes_fp(pipeline::fingerprint_routes(routes)) {}
};

std::uint64_t fnv1a(const std::string& s, std::uint64_t h = 0xcbf29ce484222325ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

pipeline::StageResult run_kind(const Session& s, pipeline::StageKind kind) {
  pipeline::StageOptions opts;
  opts.kind = kind;
  const pipeline::StageOutcome out =
      pipeline::run_stage({s.lay, s.env, s.routes, nullptr, {}}, opts);
  if (!out.result) {
    std::fprintf(stderr, "bench_pipeline: stage %s did not produce a result\n",
                 std::string(pipeline::to_string(kind)).c_str());
    std::exit(1);
  }
  return *out.result;
}

struct StageRow {
  pipeline::StageKind kind;
  std::size_t body_bytes;
  std::uint64_t hash;  ///< FNV-1a over meta, then body
};

struct SeedRow {
  std::uint64_t seed;
  std::string routes_fp;
  std::vector<StageRow> stages;
};

SeedRow run_seed(std::uint64_t seed) {
  const Session s(seed);
  SeedRow row{seed, s.routes_fp, {}};
  for (const pipeline::StageKind kind : kKinds) {
    const pipeline::StageResult res = run_kind(s, kind);
    row.stages.push_back(
        {kind, res.body.size(), fnv1a(res.body, fnv1a(res.meta))});
  }
  return row;
}

void write_stages_json(const char* path, const std::vector<SeedRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_pipeline: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"workload\": {\"cells\": %zu, \"extent\": %lld, "
               "\"nets\": %zu},\n  \"seeds\": [\n",
               kCells, static_cast<long long>(kExtent), kNets);
  for (std::size_t s = 0; s < rows.size(); ++s) {
    std::fprintf(f, "    {\"seed\": %llu, \"routes_fp\": \"%s\", \"stages\": [",
                 static_cast<unsigned long long>(rows[s].seed),
                 rows[s].routes_fp.c_str());
    for (std::size_t i = 0; i < rows[s].stages.size(); ++i) {
      const StageRow& st = rows[s].stages[i];
      std::fprintf(f, "%s{\"stage\": \"%s\", \"body_bytes\": %zu, "
                      "\"hash\": \"%016llx\"}",
                   i == 0 ? "" : ", ",
                   std::string(pipeline::to_string(st.kind)).c_str(),
                   st.body_bytes, static_cast<unsigned long long>(st.hash));
    }
    std::fprintf(f, "]}%s\n", s + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void print_table() {
  std::puts("E15 — pipeline stages over committed routes (DETAIL / CONGEST /"
            " VERIFY / SVG)");
  bench::rule('-', 78);
  std::printf("  workload: %zu cells, %lld extent, %zu nets\n", kCells,
              static_cast<long long>(kExtent), kNets);

  std::vector<SeedRow> rows;
  for (const std::uint64_t seed : kSeeds) {
    rows.push_back(run_seed(seed));
    const SeedRow& row = rows.back();
    std::printf("  seed %-4llu routes %s\n",
                static_cast<unsigned long long>(row.seed),
                row.routes_fp.c_str());
    for (const StageRow& st : row.stages) {
      std::printf("    %-8s %7zu bytes  %016llx\n",
                  std::string(pipeline::to_string(st.kind)).c_str(),
                  st.body_bytes, static_cast<unsigned long long>(st.hash));
    }
  }
  std::puts("  (hash is FNV-1a over the stage's meta fields then body;"
            " byte-stable by design)");
  bench::rule('-', 78);

  if (const char* out = std::getenv("GCR_PIPELINE_STAGES_OUT")) {
    write_stages_json(out, rows);
    std::printf("  stage JSON written to %s\n", out);
  }
}

void BM_StageRun(benchmark::State& state) {
  // One stage executed from scratch on a warm session — the cache-miss cost
  // of a DETAIL/CONGEST/VERIFY/SVG verb after the routes are committed.
  const pipeline::StageKind kind =
      kKinds[static_cast<std::size_t>(state.range(0))];
  const Session s(kSeeds[0]);
  pipeline::StageOptions opts;
  opts.kind = kind;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline::run_stage({s.lay, s.env, s.routes, nullptr, {}}, opts));
  }
  state.SetLabel(std::string(pipeline::to_string(kind)));
}
BENCHMARK(BM_StageRun)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_StageCacheHit(benchmark::State& state) {
  // The repeated-verb price: a content-addressed lookup plus an LRU touch.
  const Session s(kSeeds[0]);
  pipeline::StageOptions opts;
  pipeline::StageCache cache(8);
  const std::string key = pipeline::StageCache::key_for(
      "benchsession", s.routes_fp, opts.fingerprint());
  cache.insert(key, std::make_shared<pipeline::StageResult>(
                        run_kind(s, pipeline::StageKind::kDetail)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.find(key));
  }
}
BENCHMARK(BM_StageCacheHit);

void BM_RouteFingerprint(benchmark::State& state) {
  // The per-commit invalidation cost: fingerprinting the committed geometry
  // is what REROUTE/OPTIMIZE pay to re-key every cached stage.
  const Session s(kSeeds[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::fingerprint_routes(s.routes));
  }
}
BENCHMARK(BM_RouteFingerprint);

}  // namespace

GCR_BENCH_MAIN(print_table)
