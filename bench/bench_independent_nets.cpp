// E8 — independent net routing vs the classical ordered/sequential scheme.
//
// "Independently routing each net considerably reduces the complexity of the
// search since the only obstacles are the cells.  Classically, nets have
// been ordered and routed one after another.  With this approach nets must
// avoid other nets as well as cells, greatly increasing the search time.
// Independent net routing also eliminates the problem of net ordering."
//
// Table 1: effort, wirelength and failures per mode over a netlist sweep.
// Table 2: order sensitivity — total wirelength across K random orders
// (variance is zero for the independent scheme by construction).

#include <algorithm>
#include <chrono>
#include <random>

#include "bench_util.hpp"
#include "core/netlist_router.hpp"

namespace {

using namespace gcr;

void print_table() {
  std::puts("E8 — independent vs sequential (nets-as-obstacles) routing");
  bench::rule('-', 112);
  std::printf("%6s %6s | %14s %12s %8s | %14s %12s %8s\n", "cells", "nets",
              "indep-generated", "indep-WL/net", "fail", "seq-generated",
              "seq-WL/net", "fail");
  bench::rule('-', 112);
  for (const auto& [cells, nets] :
       {std::pair<std::size_t, std::size_t>{9, 12},
        std::pair<std::size_t, std::size_t>{16, 24},
        std::pair<std::size_t, std::size_t>{25, 40}}) {
    const layout::Layout lay =
        bench::make_workload(cells, 640, nets, 80 + cells);
    const route::NetlistRouter router(lay);

    const auto indep = router.route_all();
    route::NetlistOptions seq;
    seq.mode = route::NetlistMode::kSequential;
    const auto sequential = router.route_all(seq);

    const auto per_net = [](const route::NetlistResult& r) {
      return r.routed == 0 ? 0.0
                           : static_cast<double>(r.total_wirelength) /
                                 static_cast<double>(r.routed);
    };
    std::printf("%6zu %6zu | %14zu %12.1f %8zu | %14zu %12.1f %8zu\n", cells,
                nets, indep.stats.nodes_generated, per_net(indep),
                indep.failed, sequential.stats.nodes_generated,
                per_net(sequential), sequential.failed);
  }
  bench::rule('-', 112);
  std::puts("(sequential failures: later nets are walled in by earlier wires"
            " — the net-ordering problem\n the paper's independent scheme"
            " eliminates; per-net wirelength is over routed nets only)");

  std::puts("order sensitivity (16 cells, 24 nets, 6 random orders):");
  const layout::Layout lay = bench::make_workload(16, 640, 24, 96);
  const route::NetlistRouter router(lay);
  std::vector<std::size_t> order(lay.nets().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::mt19937_64 rng(555);
  std::printf("  %-12s %16s %16s %8s\n", "order", "indep-WL", "seq-WL",
              "seq-fail");
  for (int k = 0; k < 6; ++k) {
    route::NetlistOptions iopts;
    iopts.order = order;
    const auto indep = router.route_all(iopts);
    route::NetlistOptions sopts;
    sopts.mode = route::NetlistMode::kSequential;
    sopts.order = order;
    const auto seq = router.route_all(sopts);
    std::printf("  #%-11d %16lld %16lld %8zu\n", k,
                static_cast<long long>(indep.total_wirelength),
                static_cast<long long>(seq.total_wirelength), seq.failed);
    std::shuffle(order.begin(), order.end(), rng);
  }
  std::puts("  (independent wirelength is order-invariant; sequential varies"
            " and can fail)\n");

  // Batch driver sanity: independent nets routed concurrently over the
  // shared read-only index must reproduce the serial result exactly.
  std::puts("parallel batch driver (25 cells, 40 nets):");
  const layout::Layout big = bench::make_workload(25, 640, 40, 105);
  const route::NetlistRouter batch_router(big);
  route::NetlistOptions serial;
  serial.threads = 1;
  const auto serial_result = batch_router.route_all(serial);
  std::printf("  %-8s %16s %8s %8s\n", "threads", "total-WL", "routed",
              "match");
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    route::NetlistOptions par;
    par.threads = threads;
    const auto r = batch_router.route_all(par);
    const bool match = r.total_wirelength == serial_result.total_wirelength &&
                       r.routed == serial_result.routed;
    std::printf("  %-8u %16lld %8zu %8s\n", threads,
                static_cast<long long>(r.total_wirelength), r.routed,
                match ? "yes" : "NO");
  }
  std::puts("  (identical totals for every thread count — determinism is"
            " free when nets are independent)\n");

  // Batch scheduling: arrival-order dispatch lets a long net pulled last
  // straggle alone at the tail of the batch; longest-first (net bbox
  // half-perimeter, descending) fills that tail with short nets instead.
  // Results are bit-identical either way, so the delta is pure latency.
  std::puts("batch scheduling: arrival-order vs longest-first dispatch"
            " (25 cells, 40 nets, 4 threads):");
  const auto batch_ms = [&](bool sorted) {
    route::NetlistOptions o;
    o.threads = 4;
    o.sorted_dispatch = sorted;
    double best = 1e99;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = batch_router.route_all(o);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(r);
      best = std::min(best,
                      std::chrono::duration<double, std::milli>(t1 - t0)
                          .count());
    }
    return best;
  };
  const double fifo_ms = batch_ms(false);
  const double sorted_ms = batch_ms(true);
  std::printf("  %-16s %10.2f ms\n  %-16s %10.2f ms   (tail-latency delta"
              " %+.1f%%)\n",
              "arrival-order", fifo_ms, "longest-first", sorted_ms,
              fifo_ms > 0 ? (sorted_ms - fifo_ms) / fifo_ms * 100.0 : 0.0);
  std::puts("  (identical routes either way; gains require >1 hardware"
            " thread and a skewed net-length mix)\n");
}

void BM_IndependentNetlist(benchmark::State& state) {
  const layout::Layout lay = bench::make_workload(
      static_cast<std::size_t>(state.range(0)), 640,
      static_cast<std::size_t>(state.range(0)) * 3 / 2, 80 + state.range(0));
  const route::NetlistRouter router(lay);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route_all());
  }
  state.SetLabel(std::to_string(state.range(0)) + " cells");
}
BENCHMARK(BM_IndependentNetlist)->Arg(9)->Arg(16)->Arg(25);

void BM_SequentialNetlist(benchmark::State& state) {
  const layout::Layout lay = bench::make_workload(
      static_cast<std::size_t>(state.range(0)), 640,
      static_cast<std::size_t>(state.range(0)) * 3 / 2, 80 + state.range(0));
  const route::NetlistRouter router(lay);
  route::NetlistOptions seq;
  seq.mode = route::NetlistMode::kSequential;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route_all(seq));
  }
  state.SetLabel(std::to_string(state.range(0)) + " cells");
}
BENCHMARK(BM_SequentialNetlist)->Arg(9)->Arg(16)->Arg(25);

void BM_IndependentNetlistBatch(benchmark::State& state) {
  const layout::Layout lay =
      bench::make_workload(25, 640, 40, 105);
  const route::NetlistRouter router(lay);
  route::NetlistOptions par;
  par.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route_all(par));
  }
  state.SetLabel(std::to_string(state.range(0)) + " threads");
}
BENCHMARK(BM_IndependentNetlistBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_BatchDispatchOrder(benchmark::State& state) {
  const layout::Layout lay = bench::make_workload(25, 640, 40, 105);
  const route::NetlistRouter router(lay);
  route::NetlistOptions par;
  par.threads = 4;
  par.sorted_dispatch = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route_all(par));
  }
  state.SetLabel(par.sorted_dispatch ? "longest-first" : "arrival-order");
}
BENCHMARK(BM_BatchDispatchOrder)->Arg(0)->Arg(1);

}  // namespace

GCR_BENCH_MAIN(print_table)
