#include "spatial/obstacle_index.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace gcr::spatial {

using geom::Axis;
using geom::Coord;
using geom::Dir;
using geom::Point;
using geom::Rect;
using geom::Segment;

ObstacleIndex::ObstacleIndex(Rect boundary, std::vector<Rect> obstacles)
    : boundary_(boundary), obstacles_(std::move(obstacles)) {
  const std::size_t n = obstacles_.size();
  by_xlo_.resize(n);
  for (std::size_t i = 0; i < n; ++i) by_xlo_[i] = i;
  by_xhi_ = by_ylo_ = by_yhi_ = by_xlo_;
  const auto& obs = obstacles_;
  std::sort(by_xlo_.begin(), by_xlo_.end(), [&obs](std::size_t a, std::size_t b) {
    return obs[a].xlo < obs[b].xlo;
  });
  std::sort(by_xhi_.begin(), by_xhi_.end(), [&obs](std::size_t a, std::size_t b) {
    return obs[a].xhi > obs[b].xhi;
  });
  std::sort(by_ylo_.begin(), by_ylo_.end(), [&obs](std::size_t a, std::size_t b) {
    return obs[a].ylo < obs[b].ylo;
  });
  std::sort(by_yhi_.begin(), by_yhi_.end(), [&obs](std::size_t a, std::size_t b) {
    return obs[a].yhi > obs[b].yhi;
  });
}

bool ObstacleIndex::interior(const Point& p) const {
  return std::any_of(obstacles_.begin(), obstacles_.end(),
                     [&p](const Rect& r) { return r.contains_open(p); });
}

bool ObstacleIndex::routable(const Point& p) const {
  return boundary_.contains(p) && !interior(p);
}

bool ObstacleIndex::segment_blocked(const Segment& s) const {
  return std::any_of(obstacles_.begin(), obstacles_.end(),
                     [&s](const Rect& r) { return s.pierces(r); });
}

RayHit ObstacleIndex::trace(const Point& p, Dir d) const {
  assert(boundary_.contains(p));
  RayHit hit;
  const Axis ax = axis_of(d);
  const Axis perp = other(ax);
  const Coord pos = p.along(ax);
  const Coord off = p.along(perp);

  // Boundary clip: the farthest the ray can possibly go.
  switch (d) {
    case Dir::kEast: hit.stop = boundary_.xhi; break;
    case Dir::kWest: hit.stop = boundary_.xlo; break;
    case Dir::kNorth: hit.stop = boundary_.yhi; break;
    case Dir::kSouth: hit.stop = boundary_.ylo; break;
  }

  // An obstacle blocks the ray iff the perpendicular coordinate lies strictly
  // inside its perpendicular span (boundaries are routable) and its near edge
  // is at or ahead of the ray origin.  The edge tables are sorted by near-edge
  // coordinate in travel order, so we scan from the first edge at or past the
  // origin and stop once edges lie beyond the best stop found so far.
  const auto scan = [&](const std::vector<std::size_t>& table, int sgn) {
    // Binary search for the first table entry whose near edge is not behind p.
    const auto near_edge = [&](std::size_t idx) -> Coord {
      const Rect& r = obstacles_[idx];
      switch (d) {
        case Dir::kEast: return r.xlo;
        case Dir::kWest: return r.xhi;
        case Dir::kNorth: return r.ylo;
        case Dir::kSouth: return r.yhi;
      }
      return 0;
    };
    auto it = std::lower_bound(
        table.begin(), table.end(), pos,
        [&](std::size_t idx, Coord v) { return sgn * near_edge(idx) < sgn * v; });
    for (; it != table.end(); ++it) {
      const Coord edge = near_edge(*it);
      if (sgn * edge > sgn * hit.stop) break;  // beyond current stop: done
      const Rect& r = obstacles_[*it];
      if (!r.span(perp).contains_open(off)) continue;
      // This obstacle's interior starts at `edge` in travel direction; the
      // ray must stop on its boundary.
      if (sgn * edge < sgn * hit.stop ||
          (edge == hit.stop && !hit.obstacle.has_value())) {
        hit.stop = edge;
        hit.obstacle = *it;
      }
    }
  };

  switch (d) {
    case Dir::kEast: scan(by_xlo_, +1); break;
    case Dir::kWest: scan(by_xhi_, -1); break;
    case Dir::kNorth: scan(by_ylo_, +1); break;
    case Dir::kSouth: scan(by_yhi_, -1); break;
  }

  // A ray never travels backwards: if every blocker is behind p (possible
  // when p hugs an edge), the stop clamps to p itself.
  if (sign_of(d) > 0) {
    hit.stop = std::max(hit.stop, pos);
  } else {
    hit.stop = std::min(hit.stop, pos);
  }
  return hit;
}

std::vector<std::size_t> ObstacleIndex::query(const Rect& q) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < obstacles_.size(); ++i) {
    if (obstacles_[i].intersects(q)) out.push_back(i);
  }
  return out;
}

}  // namespace gcr::spatial
