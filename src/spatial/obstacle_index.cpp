#include "spatial/obstacle_index.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

namespace gcr::spatial {

using geom::Axis;
using geom::Coord;
using geom::Dir;
using geom::Point;
using geom::Rect;
using geom::Segment;

ObstacleIndex::ObstacleIndex(Rect boundary, std::vector<Rect> obstacles)
    : boundary_(boundary), obstacles_(std::move(obstacles)) {
  const std::size_t n = obstacles_.size();
  dead_.assign(n, 0);
  by_xlo_.resize(n);
  for (std::size_t i = 0; i < n; ++i) by_xlo_[i] = i;
  by_xhi_ = by_ylo_ = by_yhi_ = by_xlo_;
  const auto& obs = obstacles_;
  std::sort(by_xlo_.begin(), by_xlo_.end(), [&obs](std::size_t a, std::size_t b) {
    return obs[a].xlo < obs[b].xlo;
  });
  std::sort(by_xhi_.begin(), by_xhi_.end(), [&obs](std::size_t a, std::size_t b) {
    return obs[a].xhi > obs[b].xhi;
  });
  std::sort(by_ylo_.begin(), by_ylo_.end(), [&obs](std::size_t a, std::size_t b) {
    return obs[a].ylo < obs[b].ylo;
  });
  std::sort(by_yhi_.begin(), by_yhi_.end(), [&obs](std::size_t a, std::size_t b) {
    return obs[a].yhi > obs[b].yhi;
  });
  build_buckets();
}

void ObstacleIndex::build_buckets() {
  // Aim for ~1 obstacle per cell: a g x g grid with g = ceil(sqrt(n)).
  // Sequential-mode wire halos keep inserting into this fixed grid; even if
  // the obstacle count grows well past n, occupancy degrades gracefully (a
  // rebuild re-derives the resolution).
  const std::size_t n = obstacles_.size();
  const std::size_t g = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(std::sqrt(static_cast<double>(n)))));
  const Coord w = std::max<Coord>(1, boundary_.width());
  const Coord h = std::max<Coord>(1, boundary_.height());
  grid_x_ = std::min<std::size_t>(g, static_cast<std::size_t>(w));
  grid_y_ = std::min<std::size_t>(g, static_cast<std::size_t>(h));
  cell_w_ = (w + static_cast<Coord>(grid_x_) - 1) / static_cast<Coord>(grid_x_);
  cell_h_ = (h + static_cast<Coord>(grid_y_) - 1) / static_cast<Coord>(grid_y_);
  buckets_.assign(grid_x_ * grid_y_, {});
  for (std::size_t i = 0; i < n; ++i) file_into_buckets(i);
}

std::size_t ObstacleIndex::bucket_x(Coord x) const noexcept {
  if (x <= boundary_.xlo) return 0;
  const std::size_t gx = static_cast<std::size_t>((x - boundary_.xlo) / cell_w_);
  return std::min(gx, grid_x_ - 1);
}

std::size_t ObstacleIndex::bucket_y(Coord y) const noexcept {
  if (y <= boundary_.ylo) return 0;
  const std::size_t gy = static_cast<std::size_t>((y - boundary_.ylo) / cell_h_);
  return std::min(gy, grid_y_ - 1);
}

void ObstacleIndex::file_into_buckets(std::size_t idx) {
  const Rect& r = obstacles_[idx];
  const std::size_t x0 = bucket_x(r.xlo), x1 = bucket_x(r.xhi);
  const std::size_t y0 = bucket_y(r.ylo), y1 = bucket_y(r.yhi);
  for (std::size_t gy = y0; gy <= y1; ++gy) {
    for (std::size_t gx = x0; gx <= x1; ++gx) {
      buckets_[gy * grid_x_ + gx].push_back(idx);
    }
  }
}

void ObstacleIndex::insert(const Rect& r) {
  const std::size_t idx = obstacles_.size();
  // Grow the parallel arrays before touching any table: if a later splice
  // throws (allocation), the rect and its live flag are already consistent,
  // so a rebuild over `obstacles_` recovers a coherent index (the
  // environment's invalidation contract relies on this).
  obstacles_.push_back(r);
  dead_.push_back(0);
  const auto& obs = obstacles_;
  // A default-constructed index never ran build_buckets (the building ctor
  // did); lay the grid out now — it files the new obstacle too.
  const bool grid_ready = !buckets_.empty();
  if (!grid_ready) build_buckets();

  // Splice into each sorted edge table; equal keys keep the new entry after
  // existing ones (upper_bound), so insertion is deterministic.
  const auto splice = [idx](std::vector<std::size_t>& table, auto&& less_key) {
    table.insert(std::upper_bound(table.begin(), table.end(), idx, less_key),
                 idx);
  };
  splice(by_xlo_, [&obs](std::size_t a, std::size_t b) {
    return obs[a].xlo < obs[b].xlo;
  });
  splice(by_xhi_, [&obs](std::size_t a, std::size_t b) {
    return obs[a].xhi > obs[b].xhi;
  });
  splice(by_ylo_, [&obs](std::size_t a, std::size_t b) {
    return obs[a].ylo < obs[b].ylo;
  });
  splice(by_yhi_, [&obs](std::size_t a, std::size_t b) {
    return obs[a].yhi > obs[b].yhi;
  });
  if (grid_ready) file_into_buckets(idx);
}

bool ObstacleIndex::remove(std::size_t idx) noexcept {
  if (idx >= obstacles_.size() || dead_[idx] != 0) return false;
  dead_[idx] = 1;
  ++dead_count_;
  return true;
}

std::vector<std::size_t> ObstacleIndex::compact() {
  std::vector<std::size_t> remap(obstacles_.size(), npos);
  std::vector<Rect> live;
  live.reserve(obstacles_.size() - dead_count_);
  for (std::size_t i = 0; i < obstacles_.size(); ++i) {
    if (dead_[i] != 0) continue;
    remap[i] = live.size();
    live.push_back(obstacles_[i]);
  }
  // The building constructor already does everything a compaction needs:
  // stable renumbering happened above, and rebuilding re-sorts the tables
  // and re-derives the bucket resolution for the shrunken count.
  *this = ObstacleIndex(boundary_, std::move(live));
  return remap;
}

bool ObstacleIndex::interior(const Point& p) const {
  if (buckets_.empty()) return false;
  const auto& bucket = buckets_[bucket_y(p.y) * grid_x_ + bucket_x(p.x)];
  return std::any_of(bucket.begin(), bucket.end(), [&](std::size_t i) {
    return dead_[i] == 0 && obstacles_[i].contains_open(p);
  });
}

bool ObstacleIndex::routable(const Point& p) const {
  return boundary_.contains(p) && !interior(p);
}

bool ObstacleIndex::segment_blocked(const Segment& s) const {
  if (buckets_.empty()) return false;
  const Rect b = s.bounds();
  const std::size_t x0 = bucket_x(b.xlo), x1 = bucket_x(b.xhi);
  const std::size_t y0 = bucket_y(b.ylo), y1 = bucket_y(b.yhi);
  for (std::size_t gy = y0; gy <= y1; ++gy) {
    for (std::size_t gx = x0; gx <= x1; ++gx) {
      for (const std::size_t i : buckets_[gy * grid_x_ + gx]) {
        if (dead_[i] == 0 && s.pierces(obstacles_[i])) return true;
      }
    }
  }
  return false;
}

RayHit ObstacleIndex::trace(const Point& p, Dir d) const {
  RayHit hit;
  const Axis ax = axis_of(d);
  const Axis perp = other(ax);
  const Coord pos = p.along(ax);
  const Coord off = p.along(perp);

  // Boundary clip: the farthest the ray can possibly go.
  switch (d) {
    case Dir::kEast: hit.stop = boundary_.xhi; break;
    case Dir::kWest: hit.stop = boundary_.xlo; break;
    case Dir::kNorth: hit.stop = boundary_.yhi; break;
    case Dir::kSouth: hit.stop = boundary_.ylo; break;
  }

  // An obstacle blocks the ray iff the perpendicular coordinate lies strictly
  // inside its perpendicular span (boundaries are routable) and its near edge
  // is at or ahead of the ray origin.  The edge tables are sorted by near-edge
  // coordinate in travel order, so we scan from the first edge at or past the
  // origin and stop once edges lie beyond the best stop found so far.
  const auto scan = [&](const std::vector<std::size_t>& table, int sgn) {
    // Binary search for the first table entry whose near edge is not behind p.
    const auto near_edge = [&](std::size_t idx) -> Coord {
      const Rect& r = obstacles_[idx];
      switch (d) {
        case Dir::kEast: return r.xlo;
        case Dir::kWest: return r.xhi;
        case Dir::kNorth: return r.ylo;
        case Dir::kSouth: return r.yhi;
      }
      return 0;
    };
    auto it = std::lower_bound(
        table.begin(), table.end(), pos,
        [&](std::size_t idx, Coord v) { return sgn * near_edge(idx) < sgn * v; });
    for (; it != table.end(); ++it) {
      const Coord edge = near_edge(*it);
      if (sgn * edge > sgn * hit.stop) break;  // beyond current stop: done
      if (dead_[*it] != 0) continue;           // tombstoned (ripped-up halo)
      const Rect& r = obstacles_[*it];
      if (!r.span(perp).contains_open(off)) continue;
      // This obstacle's interior starts at `edge` in travel direction; the
      // ray must stop on its boundary.
      if (sgn * edge < sgn * hit.stop ||
          (edge == hit.stop && !hit.obstacle.has_value())) {
        hit.stop = edge;
        hit.obstacle = *it;
      }
    }
  };

  switch (d) {
    case Dir::kEast: scan(by_xlo_, +1); break;
    case Dir::kWest: scan(by_xhi_, -1); break;
    case Dir::kNorth: scan(by_ylo_, +1); break;
    case Dir::kSouth: scan(by_yhi_, -1); break;
  }

  // A ray never travels backwards: if every blocker is behind p (possible
  // when p hugs an edge, or when p lies outside the boundary — a wire-halo
  // corner inflated past it), the stop clamps to p itself.
  if (sign_of(d) > 0) {
    hit.stop = std::max(hit.stop, pos);
  } else {
    hit.stop = std::min(hit.stop, pos);
  }
  return hit;
}

std::vector<std::size_t> ObstacleIndex::query(const Rect& q) const {
  std::vector<std::size_t> out;
  if (buckets_.empty() || q.empty()) return out;
  const std::size_t x0 = bucket_x(q.xlo), x1 = bucket_x(q.xhi);
  const std::size_t y0 = bucket_y(q.ylo), y1 = bucket_y(q.yhi);
  for (std::size_t gy = y0; gy <= y1; ++gy) {
    for (std::size_t gx = x0; gx <= x1; ++gx) {
      for (const std::size_t i : buckets_[gy * grid_x_ + gx]) {
        if (dead_[i] == 0 && obstacles_[i].intersects(q)) out.push_back(i);
      }
    }
  }
  // An obstacle spanning several cells is collected once per cell; callers
  // expect ascending unique indices (the linear-scan contract).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace gcr::spatial
