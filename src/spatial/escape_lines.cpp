#include "spatial/escape_lines.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <thread>
#include <vector>

namespace gcr::spatial {

using geom::Axis;
using geom::Coord;
using geom::Dir;
using geom::Interval;
using geom::Point;
using geom::Rect;

namespace {

/// Below this obstacle count a parallel build costs more in thread spawn
/// than the traces are worth; measured on the bench_serve cold-load table.
constexpr std::size_t kParallelThreshold = 256;
/// Minimum obstacles per worker so threads do not fight over tiny chunks.
constexpr std::size_t kParallelGrain = 64;

std::size_t resolve_build_workers(unsigned requested, std::size_t jobs) {
  std::size_t n = requested;
  if (n == 0) {
    if (jobs < kParallelThreshold) return 1;
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  return std::max<std::size_t>(
      1, std::min(n, jobs / std::max<std::size_t>(kParallelGrain, 1)));
}

}  // namespace

void EscapeLineSet::trace_obstacle_lines(const ObstacleIndex& index,
                                         std::size_t i) {
  const Rect& r = index.obstacles()[i];
  const std::size_t base = 4 + 4 * i;
  // Vertical lines through the left/right edges, extended through the
  // corners until blocked.  The edge itself is always part of the line:
  // edges are routable hug corridors.
  std::size_t slot = base;
  for (const Coord x : {r.xlo, r.xhi}) {
    const Coord lo = index.trace(Point{x, r.ylo}, Dir::kSouth).stop;
    const Coord hi = index.trace(Point{x, r.yhi}, Dir::kNorth).stop;
    lines_[slot++] = {Axis::kY, x, Interval{lo, hi}, i};
  }
  // Horizontal lines through the bottom/top edges.
  for (const Coord y : {r.ylo, r.yhi}) {
    const Coord lo = index.trace(Point{r.xlo, y}, Dir::kWest).stop;
    const Coord hi = index.trace(Point{r.xhi, y}, Dir::kEast).stop;
    lines_[slot++] = {Axis::kX, y, Interval{lo, hi}, i};
  }
}

void EscapeLineSet::retrace_line(const ObstacleIndex& index,
                                 std::size_t slot) {
  EscapeLine& ln = lines_[slot];
  assert(ln.source != EscapeLine::npos && "boundary lines are never clipped");
  const Rect& r = index.obstacles()[ln.source];
  if (ln.axis == Axis::kY) {
    ln.span = {index.trace(Point{ln.track, r.ylo}, Dir::kSouth).stop,
               index.trace(Point{ln.track, r.yhi}, Dir::kNorth).stop};
  } else {
    ln.span = {index.trace(Point{r.xlo, ln.track}, Dir::kWest).stop,
               index.trace(Point{r.xhi, ln.track}, Dir::kEast).stop};
  }
}

void EscapeLineSet::splice_table_slot(std::vector<std::size_t>& table,
                                      std::size_t slot) {
  const auto at = std::upper_bound(
      table.begin(), table.end(), slot,
      [this](std::size_t a, std::size_t b) {
        return lines_[a].track != lines_[b].track
                   ? lines_[a].track < lines_[b].track
                   : a < b;
      });
  table.insert(at, slot);
}

void EscapeLineSet::erase_table_slot(std::vector<std::size_t>& table,
                                     std::size_t slot) {
  // The tables are sorted by (track, slot), so the exact entry is a binary
  // search away; the slot's record must still carry its track.
  const auto it = std::lower_bound(
      table.begin(), table.end(), slot,
      [this](std::size_t a, std::size_t b) {
        return lines_[a].track != lines_[b].track
                   ? lines_[a].track < lines_[b].track
                   : a < b;
      });
  if (it != table.end() && *it == slot) table.erase(it);
}

EscapeLineSet EscapeLineSet::restore(std::vector<EscapeLine> lines) {
  EscapeLineSet out;
  out.lines_ = std::move(lines);
  out.build_tables();
  return out;
}

void EscapeLineSet::build_tables() {
  vertical_by_x_.clear();
  horizontal_by_y_.clear();
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    if (lines_[i].dead) continue;  // retired records never re-enter
    (lines_[i].axis == Axis::kY ? vertical_by_x_ : horizontal_by_y_)
        .push_back(i);
  }
  // Ties broken by slot index so the table layout is deterministic (the
  // crossings output is tie-order independent either way).
  const auto by_track = [this](std::size_t a, std::size_t b) {
    return lines_[a].track != lines_[b].track ? lines_[a].track < lines_[b].track
                                              : a < b;
  };
  std::sort(vertical_by_x_.begin(), vertical_by_x_.end(), by_track);
  std::sort(horizontal_by_y_.begin(), horizontal_by_y_.end(), by_track);
}

EscapeLineSet::EscapeLineSet(const ObstacleIndex& index, unsigned threads) {
  const Rect& bounds = index.boundary();
  const std::size_t n = index.size();
  lines_.resize(4 + 4 * n);

  // Boundary edges are routable corridors too.  They carry their full
  // extent unconditionally — by definition, not by tracing — and
  // insert_obstacle exempts them the same way, so both construction paths
  // agree even when a wire halo protrudes across a boundary edge.  (A
  // stale crossing hint there is harmless: successor candidates are always
  // clipped to the ray's traced extent.)
  lines_[0] = {Axis::kX, bounds.ylo, bounds.xs(), EscapeLine::npos};
  lines_[1] = {Axis::kX, bounds.yhi, bounds.xs(), EscapeLine::npos};
  lines_[2] = {Axis::kY, bounds.xlo, bounds.ys(), EscapeLine::npos};
  lines_[3] = {Axis::kY, bounds.xhi, bounds.ys(), EscapeLine::npos};

  // Per-obstacle slots are preassigned, so workers write disjoint ranges of
  // lines_ against a read-only index: bit-identical for any worker count.
  const std::size_t workers = resolve_build_workers(threads, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) trace_obstacle_lines(index, i);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    const std::size_t chunk = (n + workers - 1) / workers;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t lo = w * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      if (lo >= hi) break;
      pool.emplace_back([this, &index, lo, hi] {
        for (std::size_t i = lo; i < hi; ++i) trace_obstacle_lines(index, i);
      });
    }
    for (std::thread& t : pool) t.join();
  }

  build_tables();
}

void EscapeLineSet::insert_obstacle(const ObstacleIndex& index,
                                    std::size_t ob) {
  assert(ob + 1 == index.size() && "insert_obstacle expects the newest obstacle");
  assert(lines_.size() == 4 + 4 * ob &&
         "line set out of step with the index it was built from");
  const Rect& r = index.obstacles()[ob];

  // Re-trace the existing lines the new interior can cut.  A trace result
  // changes only if the new obstacle blocks the ray strictly earlier, which
  // requires the line's track to lie strictly inside the newcomer's
  // perpendicular open span and the new near edge to fall inside the old
  // span — so candidates are a binary-searched track range whose spans touch
  // the newcomer.  Re-tracing a candidate that did not actually change is
  // idempotent.  Boundary lines are exempt by construction (see ctor).
  const auto clip = [&](const std::vector<std::size_t>& table,
                        const Interval& track_open, const Interval& hit_span) {
    if (track_open.lo >= track_open.hi) return;  // degenerate: blocks nothing
    const auto first = std::upper_bound(
        table.begin(), table.end(), track_open.lo,
        [this](Coord v, std::size_t idx) { return v < lines_[idx].track; });
    const auto last = std::lower_bound(
        first, table.end(), track_open.hi,
        [this](std::size_t idx, Coord v) { return lines_[idx].track < v; });
    for (auto it = first; it != last; ++it) {
      const EscapeLine& ln = lines_[*it];
      if (ln.source == EscapeLine::npos) continue;
      if (!ln.span.overlaps(hit_span)) continue;
      retrace_line(index, *it);
    }
  };
  clip(vertical_by_x_, r.xs(), r.ys());
  clip(horizontal_by_y_, r.ys(), r.xs());

  // Append the newcomer's four lines (traced against the index that already
  // contains it) and splice their slots into the lookup tables.
  lines_.resize(lines_.size() + 4);
  trace_obstacle_lines(index, ob);
  const std::size_t base = 4 + 4 * ob;
  splice_table_slot(vertical_by_x_, base);        // left edge line (Y)
  splice_table_slot(vertical_by_x_, base + 1);    // right edge line (Y)
  splice_table_slot(horizontal_by_y_, base + 2);  // bottom edge line (X)
  splice_table_slot(horizontal_by_y_, base + 3);  // top edge line (X)
}

void EscapeLineSet::remove_obstacle(const ObstacleIndex& index,
                                    std::size_t ob) {
  assert(ob < index.size() && !index.alive(ob) &&
         "remove_obstacle expects an index that already tombstoned ob");
  assert(lines_.size() == 4 + 4 * index.size() &&
         "line set out of step with the index it was built from");
  const std::size_t base = 4 + 4 * ob;
  if (lines_[base].dead) return;  // retried after a failed multi-step update
  const Rect& r = index.obstacles()[ob];

  // Retire the obstacle's four records: out of the lookup tables first
  // (erase needs the still-live track), then flagged.  Spans are blanked so
  // a stale record can never masquerade as a corridor.
  erase_table_slot(vertical_by_x_, base);
  erase_table_slot(vertical_by_x_, base + 1);
  erase_table_slot(horizontal_by_y_, base + 2);
  erase_table_slot(horizontal_by_y_, base + 3);
  for (std::size_t k = 0; k < 4; ++k) {
    lines_[base + k].dead = true;
    lines_[base + k].span = {};
  }

  // Re-extend the lines the vacated interior had clipped.  A line was
  // clipped by `r` only if its track lies strictly inside r's perpendicular
  // open span (an obstacle blocks only rays strictly inside it), and a
  // clipped span *abuts* the blocking edge — so candidates are the same
  // binary-searched track range as the insert-side clip, tested with
  // closed (touching) span overlap.  Re-tracing an unclipped candidate is
  // idempotent, and the traces run against the post-tombstone index, so
  // spans grow through the hole exactly as a from-scratch build would
  // find them.
  const auto reextend = [&](const std::vector<std::size_t>& table,
                            const Interval& track_open,
                            const Interval& edge_span) {
    if (track_open.lo >= track_open.hi) return;  // degenerate: blocked nothing
    const auto first = std::upper_bound(
        table.begin(), table.end(), track_open.lo,
        [this](Coord v, std::size_t idx) { return v < lines_[idx].track; });
    const auto last = std::lower_bound(
        first, table.end(), track_open.hi,
        [this](std::size_t idx, Coord v) { return lines_[idx].track < v; });
    for (auto it = first; it != last; ++it) {
      const EscapeLine& ln = lines_[*it];
      if (ln.source == EscapeLine::npos) continue;  // boundary: full extent
      if (!ln.span.overlaps(edge_span)) continue;
      retrace_line(index, *it);
    }
  };
  reextend(vertical_by_x_, r.xs(), r.ys());
  reextend(horizontal_by_y_, r.ys(), r.xs());
}

void EscapeLineSet::compact(const std::vector<std::size_t>& remap) {
  assert(lines_.size() == 4 + 4 * remap.size() &&
         "compact remap out of step with the line set");
  std::size_t live = 0;
  for (const std::size_t to : remap) live += to != ObstacleIndex::npos;
  std::vector<EscapeLine> next(4 + 4 * live);
  for (std::size_t k = 0; k < 4; ++k) next[k] = lines_[k];
  for (std::size_t i = 0; i < remap.size(); ++i) {
    const std::size_t to = remap[i];
    if (to == ObstacleIndex::npos) continue;
    for (std::size_t k = 0; k < 4; ++k) {
      EscapeLine& moved = next[4 + 4 * to + k];
      moved = lines_[4 + 4 * i + k];
      assert(!moved.dead && "survivor slot holds a retired record");
      moved.source = to;
    }
  }
  lines_.swap(next);
  build_tables();
}

std::vector<Coord> EscapeLineSet::crossings(const Point& from, Dir d,
                                            Coord stop) const {
  const Axis ax = axis_of(d);
  const Coord origin = from.along(ax);
  const Coord off = from.along(geom::other(ax));
  const Coord lo = std::min(origin, stop);
  const Coord hi = std::max(origin, stop);

  const std::vector<std::size_t>& table =
      ax == Axis::kX ? vertical_by_x_ : horizontal_by_y_;

  // Binary search the track range [lo, hi] in the perpendicular table.
  const auto first = std::lower_bound(
      table.begin(), table.end(), lo,
      [this](std::size_t idx, Coord v) { return lines_[idx].track < v; });
  const auto last = std::upper_bound(
      table.begin(), table.end(), hi,
      [this](Coord v, std::size_t idx) { return v < lines_[idx].track; });

  std::vector<Coord> out;
  for (auto it = first; it != last; ++it) {
    const EscapeLine& ln = lines_[*it];
    if (ln.track == origin) continue;  // exclusive of the ray origin
    if (ln.span.contains(off)) out.push_back(ln.track);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (sign_of(d) < 0) std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace gcr::spatial
