#include "spatial/escape_lines.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

namespace gcr::spatial {

using geom::Axis;
using geom::Coord;
using geom::Dir;
using geom::Interval;
using geom::Point;
using geom::Rect;

EscapeLineSet::EscapeLineSet(const ObstacleIndex& index) {
  const Rect& bounds = index.boundary();

  // Boundary edges are routable corridors too.
  lines_.push_back(
      {Axis::kX, bounds.ylo, bounds.xs(), EscapeLine::npos});
  lines_.push_back(
      {Axis::kX, bounds.yhi, bounds.xs(), EscapeLine::npos});
  lines_.push_back(
      {Axis::kY, bounds.xlo, bounds.ys(), EscapeLine::npos});
  lines_.push_back(
      {Axis::kY, bounds.xhi, bounds.ys(), EscapeLine::npos});

  // Each obstacle edge extends through its corners until the extension would
  // enter another obstacle's interior (or leave the boundary).  The edge
  // itself is always part of the line: edges are routable hug corridors.
  for (std::size_t i = 0; i < index.size(); ++i) {
    const Rect& r = index.obstacles()[i];
    // Vertical lines through left/right edges.
    for (const Coord x : {r.xlo, r.xhi}) {
      const Coord lo = index.trace(Point{x, r.ylo}, Dir::kSouth).stop;
      const Coord hi = index.trace(Point{x, r.yhi}, Dir::kNorth).stop;
      lines_.push_back({Axis::kY, x, Interval{lo, hi}, i});
    }
    // Horizontal lines through bottom/top edges.
    for (const Coord y : {r.ylo, r.yhi}) {
      const Coord lo = index.trace(Point{r.xlo, y}, Dir::kWest).stop;
      const Coord hi = index.trace(Point{r.xhi, y}, Dir::kEast).stop;
      lines_.push_back({Axis::kX, y, Interval{lo, hi}, i});
    }
  }

  // Merge exact duplicates (cells aligned on the same edge coordinate).
  std::sort(lines_.begin(), lines_.end(),
            [](const EscapeLine& a, const EscapeLine& b) {
              return std::tie(a.axis, a.track, a.span.lo, a.span.hi, a.source) <
                     std::tie(b.axis, b.track, b.span.lo, b.span.hi, b.source);
            });
  lines_.erase(std::unique(lines_.begin(), lines_.end(),
                           [](const EscapeLine& a, const EscapeLine& b) {
                             return a.axis == b.axis && a.track == b.track &&
                                    a.span == b.span;
                           }),
               lines_.end());

  for (std::size_t i = 0; i < lines_.size(); ++i) {
    if (lines_[i].axis == Axis::kY) {
      vertical_by_x_.push_back(i);
    } else {
      horizontal_by_y_.push_back(i);
    }
  }
  std::sort(vertical_by_x_.begin(), vertical_by_x_.end(),
            [this](std::size_t a, std::size_t b) {
              return lines_[a].track < lines_[b].track;
            });
  std::sort(horizontal_by_y_.begin(), horizontal_by_y_.end(),
            [this](std::size_t a, std::size_t b) {
              return lines_[a].track < lines_[b].track;
            });
}

std::vector<Coord> EscapeLineSet::crossings(const Point& from, Dir d,
                                            Coord stop) const {
  const Axis ax = axis_of(d);
  const Coord origin = from.along(ax);
  const Coord off = from.along(geom::other(ax));
  const Coord lo = std::min(origin, stop);
  const Coord hi = std::max(origin, stop);

  const std::vector<std::size_t>& table =
      ax == Axis::kX ? vertical_by_x_ : horizontal_by_y_;

  // Binary search the track range [lo, hi] in the perpendicular table.
  const auto first = std::lower_bound(
      table.begin(), table.end(), lo,
      [this](std::size_t idx, Coord v) { return lines_[idx].track < v; });
  const auto last = std::upper_bound(
      table.begin(), table.end(), hi,
      [this](Coord v, std::size_t idx) { return v < lines_[idx].track; });

  std::vector<Coord> out;
  for (auto it = first; it != last; ++it) {
    const EscapeLine& ln = lines_[*it];
    if (ln.track == origin) continue;  // exclusive of the ray origin
    if (ln.span.contains(off)) out.push_back(ln.track);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (sign_of(d) < 0) std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace gcr::spatial
