#pragma once

#include <cstddef>
#include <vector>

#include "geometry/geometry.hpp"
#include "spatial/obstacle_index.hpp"

/// \file escape_lines.hpp
/// Escape lines for the gridless line search.
///
/// The paper observes that "optimal paths need only hug the boundaries of
/// cells if they intervene in the path selection."  Formally: among disjoint
/// rectangular obstacles there is always a shortest rectilinear path whose
/// bend points lie on the *escape lines* — the maximal obstacle-free segments
/// extending each obstacle edge through and beyond its corners (plus the
/// source/target projection lines, which the router adds per query).  The
/// gridless successor generator therefore emits successors only where a probe
/// ray crosses an escape line, at the hug point on the blocking boundary, and
/// at the goal-aligned projection.  This is the line-segment representation
/// that replaces the Lee–Moore grid.

namespace gcr::spatial {

/// A maximal obstacle-free axis-parallel open corridor line.
/// axis == kX: horizontal line y == track spanning x in `span`;
/// axis == kY: vertical line x == track spanning y in `span`.
struct EscapeLine {
  geom::Axis axis = geom::Axis::kX;
  geom::Coord track = 0;
  geom::Interval span;
  /// Obstacle that generated the line (routing-boundary lines: npos).
  std::size_t source = npos;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  friend bool operator==(const EscapeLine&, const EscapeLine&) = default;
};

/// The set of escape lines of a layout, indexed for ray-crossing queries.
class EscapeLineSet {
 public:
  EscapeLineSet() = default;

  /// Builds the escape lines of \p index: for every obstacle, the four edge
  /// lines extended until blocked; plus the four routing-boundary edges.
  /// Duplicates (e.g. two cells sharing an edge coordinate) are merged.
  explicit EscapeLineSet(const ObstacleIndex& index);

  [[nodiscard]] const std::vector<EscapeLine>& lines() const noexcept {
    return lines_;
  }

  /// All crossings of the directed probe ray from \p from to the stop
  /// coordinate \p stop (exclusive of the origin, inclusive of the stop
  /// coordinate) with escape lines perpendicular to the probe.  Returned as
  /// coordinates along the probe axis, sorted in travel order, deduplicated.
  [[nodiscard]] std::vector<geom::Coord> crossings(const geom::Point& from,
                                                   geom::Dir d,
                                                   geom::Coord stop) const;

 private:
  std::vector<EscapeLine> lines_;
  // Perpendicular lookup tables sorted by track coordinate.
  std::vector<std::size_t> vertical_by_x_;    // crossed by horizontal probes
  std::vector<std::size_t> horizontal_by_y_;  // crossed by vertical probes
};

}  // namespace gcr::spatial
