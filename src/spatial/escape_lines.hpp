#pragma once

#include <cstddef>
#include <vector>

#include "geometry/geometry.hpp"
#include "spatial/obstacle_index.hpp"

/// \file escape_lines.hpp
/// Escape lines for the gridless line search.
///
/// The paper observes that "optimal paths need only hug the boundaries of
/// cells if they intervene in the path selection."  Formally: among disjoint
/// rectangular obstacles there is always a shortest rectilinear path whose
/// bend points lie on the *escape lines* — the maximal obstacle-free segments
/// extending each obstacle edge through and beyond its corners (plus the
/// source/target projection lines, which the router adds per query).  The
/// gridless successor generator therefore emits successors only where a probe
/// ray crosses an escape line, at the hug point on the blocking boundary, and
/// at the goal-aligned projection.  This is the line-segment representation
/// that replaces the Lee–Moore grid.
///
/// The set is *incrementally updatable* in both directions.
/// `insert_obstacle` splices in the four edge lines of a newly inserted
/// obstacle and re-traces only the lines whose free extension the new
/// interior cuts; `remove_obstacle` — the rip-up direction — retires the
/// removed obstacle's four records and re-extends only the lines its
/// interior had clipped (the same binary-searched candidate range, probed
/// against the index *after* the tombstone so traces pass through).  To
/// make both sound, storage keeps every source obstacle's four lines as
/// distinct records (coincident edges are NOT merged): two obstacles
/// sharing an edge coordinate may have identical spans today yet diverge
/// when a later wire halo lands *between* them, so a merged record could
/// not be split back apart — and symmetrically, removal retires exactly the
/// four records of its own obstacle, so repeated insert/remove cycles can
/// never leak or lose a duplicate.  `crossings` deduplicates emitted
/// coordinates, so duplicate records never change routing behavior.
///
/// Retired records stay as dead slots in `lines()` (slot k of obstacle i is
/// always 4 + 4i + k, the invariant every update relies on) until `compact`
/// renumbers the set in lockstep with an `ObstacleIndex::compact`.

namespace gcr::spatial {

/// A maximal obstacle-free axis-parallel open corridor line.
/// axis == kX: horizontal line y == track spanning x in `span`;
/// axis == kY: vertical line x == track spanning y in `span`.
struct EscapeLine {
  geom::Axis axis = geom::Axis::kX;
  geom::Coord track = 0;
  geom::Interval span;
  /// Obstacle that generated the line (routing-boundary lines: npos).
  std::size_t source = npos;
  /// Retired by remove_obstacle: the slot lingers (slot arithmetic must
  /// hold) but the line is out of the lookup tables and never crossed.
  bool dead = false;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  friend bool operator==(const EscapeLine&, const EscapeLine&) = default;
};

/// The set of escape lines of a layout, indexed for ray-crossing queries.
class EscapeLineSet {
 public:
  EscapeLineSet() = default;

  /// Builds the escape lines of \p index: for every obstacle, the four edge
  /// lines extended until blocked; plus the four routing-boundary edges.
  /// Construction is embarrassingly parallel per obstacle edge — each
  /// obstacle's lines land in preassigned slots, so the result is
  /// bit-identical for every thread count.  \p threads: 0 = one worker per
  /// hardware thread (small sets stay serial), 1 = serial, N = at most N
  /// (always capped so each worker keeps a minimum per-thread grain of
  /// obstacles; tiny sets degrade to serial).
  explicit EscapeLineSet(const ObstacleIndex& index, unsigned threads = 0);

  /// Line records in a deterministic layout: the four routing-boundary lines
  /// first, then each obstacle's four edge lines in insertion order.
  /// Records from coincident edges are kept distinct (see file comment).
  [[nodiscard]] const std::vector<EscapeLine>& lines() const noexcept {
    return lines_;
  }

  /// Rehydrates a set from serialized records (snapshot restore).  \p lines
  /// must be a from-scratch layout — the four boundary lines, then four
  /// lines per obstacle, all alive, spans already exact — i.e. what
  /// `lines()` reports right after a compaction.  Only the lookup tables
  /// are re-derived; no tracing runs, so restoring skips the expensive
  /// probe work a constructor build would pay.
  [[nodiscard]] static EscapeLineSet restore(std::vector<EscapeLine> lines);

  /// Incrementally accounts for obstacle \p ob, which must have just been
  /// added to \p index (the index this set was built from, after an
  /// `ObstacleIndex::insert`).  Re-traces the existing lines whose extension
  /// the new interior cuts — a localized subset found by binary search —
  /// and adds the newcomer's four edge lines.  The result is exactly the
  /// line set a from-scratch build over \p index would produce.
  void insert_obstacle(const ObstacleIndex& index, std::size_t ob);

  /// Incrementally rips obstacle \p ob back out.  \p index must already
  /// have it tombstoned (`ObstacleIndex::remove`), so re-traces extend
  /// through the vacated interior.  Retires the obstacle's four records and
  /// re-extends the lines whose span the removed interior had clipped — a
  /// localized candidate set: tracks strictly inside the removed rect's
  /// perpendicular open span whose spans *touch* its parallel span (a
  /// clipped line abuts the blocking edge exactly).  The result answers
  /// `crossings` exactly as a from-scratch build over the remaining live
  /// obstacles would.  Idempotent for an already-retired obstacle.
  void remove_obstacle(const ObstacleIndex& index, std::size_t ob);

  /// Renumbers the set after an `ObstacleIndex::compact`: dead slots are
  /// erased, survivor slots move to 4 + 4*remap[source], and sources are
  /// rewritten through \p remap.  Spans are already exact (removal
  /// re-extended them), so this is pure bookkeeping — no tracing.
  void compact(const std::vector<std::size_t>& remap);

  /// Records still participating in crossings (boundary lines + 4 per live
  /// obstacle).
  [[nodiscard]] std::size_t live_lines() const noexcept {
    return vertical_by_x_.size() + horizontal_by_y_.size();
  }

  /// All crossings of the directed probe ray from \p from to the stop
  /// coordinate \p stop (exclusive of the origin, inclusive of the stop
  /// coordinate) with escape lines perpendicular to the probe.  Returned as
  /// coordinates along the probe axis, sorted in travel order, deduplicated.
  [[nodiscard]] std::vector<geom::Coord> crossings(const geom::Point& from,
                                                   geom::Dir d,
                                                   geom::Coord stop) const;

 private:
  /// Writes obstacle \p i's four lines into their preassigned slots
  /// (4 + 4i .. 4 + 4i + 3), traced against \p index.
  void trace_obstacle_lines(const ObstacleIndex& index, std::size_t i);
  /// Re-traces the span of the line in slot \p slot from its source
  /// obstacle's corners (track and axis never change, so lookup-table order
  /// is preserved).
  void retrace_line(const ObstacleIndex& index, std::size_t slot);
  void build_tables();
  /// Splices \p slot into \p table at its (track, slot) position.
  void splice_table_slot(std::vector<std::size_t>& table, std::size_t slot);
  /// Removes \p slot from \p table (binary search on the same ordering).
  void erase_table_slot(std::vector<std::size_t>& table, std::size_t slot);

  std::vector<EscapeLine> lines_;
  // Perpendicular lookup tables sorted by track coordinate.
  std::vector<std::size_t> vertical_by_x_;    // crossed by horizontal probes
  std::vector<std::size_t> horizontal_by_y_;  // crossed by vertical probes
};

}  // namespace gcr::spatial
