#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "geometry/geometry.hpp"

/// \file obstacle_index.hpp
/// Spatial index over the blocking rectangles of a layout.
///
/// The paper: "All points are linked to reflect their topological order in
/// both x and y. ... By maintaining the topological ordering, an efficient
/// means of ray-tracing is used to expand the frontiers of the search."
/// This index realizes that idea with obstacle edge tables sorted per probe
/// direction, so a ray-trace is a binary search plus a short forward scan.
///
/// The index is *incrementally updatable* in both directions.  `insert` adds
/// one obstacle (a routed wire's spacing halo, in sequential-mode routing)
/// by splicing it into the sorted edge tables and the spatial bucket grid,
/// so committing a routed net costs O(obstacles) table maintenance instead
/// of a full O(n log n) rebuild.  `remove` — the rip-up direction — is a
/// *tombstone*: the obstacle stays in the tables and buckets but every query
/// skips it, so ripping a wire out costs O(1) plus the query-side skips.
/// Tombstones accumulate across rip-up cycles; `compact` erases them,
/// renumbers the survivors, and re-derives the bucket grid, and callers that
/// hold obstacle indices (the escape-line set, the environment's per-net
/// records) renumber through the remap it returns.  Point/segment predicates
/// are answered from a uniform bucket grid over the boundary rather than a
/// linear scan, which keeps them fast as wire halos accumulate.

namespace gcr::spatial {

/// Result of tracing a ray from a point until it would enter an obstacle's
/// open interior or leave the routing boundary.
struct RayHit {
  /// Coordinate (along the probe axis) at which the ray must stop.  The stop
  /// point itself is reachable: it lies on the blocking obstacle's boundary
  /// (the "hug" position) or on the routing boundary.
  geom::Coord stop = 0;
  /// Index of the blocking obstacle, or nullopt when the routing boundary
  /// stopped the ray.
  std::optional<std::size_t> obstacle;

  [[nodiscard]] bool blocked_by_obstacle() const noexcept {
    return obstacle.has_value();
  }
};

/// Obstacle index.  Obstacles are closed rectangles whose *open* interiors
/// block routing; their boundaries are routable (paths may hug cells).  The
/// routing boundary clips all rays.
///
/// Read-only operations are safe to share across threads; `insert` requires
/// exclusive access (sequential-mode routing mutates a private copy).
class ObstacleIndex {
 public:
  ObstacleIndex() = default;
  ObstacleIndex(geom::Rect boundary, std::vector<geom::Rect> obstacles);

  [[nodiscard]] const geom::Rect& boundary() const noexcept {
    return boundary_;
  }
  /// Every obstacle ever inserted, *including tombstoned ones* (their slots
  /// keep the removed geometry until `compact`); filter with `alive`.
  [[nodiscard]] const std::vector<geom::Rect>& obstacles() const noexcept {
    return obstacles_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return obstacles_.size(); }
  /// Obstacles that still block routing (size() minus tombstones).
  [[nodiscard]] std::size_t live_size() const noexcept {
    return obstacles_.size() - dead_count_;
  }
  [[nodiscard]] std::size_t dead_count() const noexcept { return dead_count_; }
  [[nodiscard]] bool alive(std::size_t idx) const noexcept {
    return idx < obstacles_.size() && dead_[idx] == 0;
  }

  /// Incrementally adds \p r as obstacle index `size()`.  Equivalent to
  /// rebuilding the index over the extended obstacle list: every subsequent
  /// query answers exactly as a from-scratch index would.  The rectangle may
  /// extend past the routing boundary (wire halos inflate beyond it); the
  /// out-of-boundary part only matters to `interior`, since rays are
  /// boundary-clipped anyway.
  void insert(const geom::Rect& r);

  /// Tombstones obstacle \p idx: it stops blocking every query, exactly as
  /// if the index had been rebuilt without it, but its slots linger in the
  /// edge tables and buckets until `compact`.  Indices of other obstacles
  /// are untouched.  Idempotent — removing a dead or out-of-range index is a
  /// no-op — and returns whether this call actually removed it, so a caller
  /// retrying after a failed multi-obstacle update can skip the side effects
  /// it already applied.  Never throws.
  bool remove(std::size_t idx) noexcept;

  /// Erases every tombstone, renumbers the survivors (stable order), re-sorts
  /// the edge tables, and re-derives the bucket grid resolution.  Returns the
  /// renumbering: remap[old] is the new index, or `npos` for removed
  /// obstacles.  Queries answer identically before and after.
  std::vector<std::size_t> compact();

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// True when \p p lies strictly inside some obstacle (an illegal position
  /// for any route point).
  [[nodiscard]] bool interior(const geom::Point& p) const;

  /// True when \p p is routable: inside the boundary and not interior to any
  /// obstacle.
  [[nodiscard]] bool routable(const geom::Point& p) const;

  /// True when the axis-parallel segment crosses any obstacle's open
  /// interior.  Segments hugging boundaries are legal.
  [[nodiscard]] bool segment_blocked(const geom::Segment& s) const;

  /// Traces a ray from \p p in direction \p d.  Returns where the ray stops
  /// and what stopped it.  When \p p sits directly against a blocking edge,
  /// stop == p's own coordinate and the ray has zero extent.  Origins
  /// outside the boundary (wire-halo corners inflate past it) are legal and
  /// clamp the same way: the ray never travels backwards, so the stop never
  /// precedes the origin in the travel direction.
  [[nodiscard]] RayHit trace(const geom::Point& p, geom::Dir d) const;

  /// Obstacles whose closed extent intersects \p query (for region analyses,
  /// e.g. congestion passage extraction).  Ascending obstacle index.
  [[nodiscard]] std::vector<std::size_t> query(const geom::Rect& query) const;

 private:
  /// (Re)derives the bucket grid geometry from the boundary and obstacle
  /// count, then files every obstacle.  Called by the building constructor;
  /// `insert` files into the existing grid instead (grid resolution is fixed
  /// at construction — the incremental path trades ideal bucket occupancy
  /// for O(cells-covered) insertion).
  void build_buckets();
  void file_into_buckets(std::size_t idx);
  [[nodiscard]] std::size_t bucket_x(geom::Coord x) const noexcept;
  [[nodiscard]] std::size_t bucket_y(geom::Coord y) const noexcept;

  geom::Rect boundary_;
  std::vector<geom::Rect> obstacles_;
  /// Tombstone flags, parallel to obstacles_ (char, not bool: the hot query
  /// loops index it and vector<bool>'s proxy defeats the optimizer).
  std::vector<char> dead_;
  std::size_t dead_count_ = 0;

  /// Edge tables: obstacle indices sorted by the coordinate of the edge a ray
  /// travelling in the keyed direction would hit first (east rays hit left
  /// edges, sorted ascending by xlo, etc.).
  std::vector<std::size_t> by_xlo_;  // east probes
  std::vector<std::size_t> by_xhi_;  // west probes (descending xhi)
  std::vector<std::size_t> by_ylo_;  // north probes
  std::vector<std::size_t> by_yhi_;  // south probes (descending yhi)

  /// Uniform bucket grid over the boundary: buckets_[gy * grid_x_ + gx]
  /// lists (ascending) the obstacles whose closed extent touches that cell.
  /// Coordinates outside the boundary clamp to the edge cells, so obstacles
  /// protruding past the boundary are still filed where a clamped point
  /// lookup will find them.
  std::size_t grid_x_ = 1, grid_y_ = 1;
  geom::Coord cell_w_ = 1, cell_h_ = 1;
  std::vector<std::vector<std::size_t>> buckets_;
};

}  // namespace gcr::spatial
