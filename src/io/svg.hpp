#pragma once

#include <iosfwd>
#include <string>

#include "core/netlist_router.hpp"
#include "layout/layout.hpp"

/// \file svg.hpp
/// SVG export for visual inspection of layouts and global routes — the
/// modern stand-in for the pen plots a 1984 routing system would have
/// produced.  Cells render as filled rectangles (polygon cells as their
/// decomposition), pins as dots, routes as colored polylines.

namespace gcr::io {

struct SvgOptions {
  /// Pixels per DBU.
  double scale = 4.0;
  bool draw_pins = true;
  bool draw_cell_names = true;
};

/// Writes the layout (and optionally its routed nets) as a standalone SVG.
void write_svg(std::ostream& out, const layout::Layout& lay,
               const route::NetlistResult* routes = nullptr,
               const SvgOptions& opts = {});

[[nodiscard]] std::string svg_string(const layout::Layout& lay,
                                     const route::NetlistResult* routes = nullptr,
                                     const SvgOptions& opts = {});

/// Convenience: writes the SVG to a file; returns false on I/O failure.
bool save_svg(const std::string& path, const layout::Layout& lay,
              const route::NetlistResult* routes = nullptr,
              const SvgOptions& opts = {});

}  // namespace gcr::io
