#include "io/text_format.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace gcr::io {

using geom::Coord;
using geom::Point;
using geom::Rect;

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;  // comment to end of line
    out.push_back(tok);
  }
  return out;
}

/// Clamps a token for error messages: untrusted input (the serving layer
/// parses request bodies) can contain arbitrarily long or binary garbage —
/// including terminal escape sequences — and the diagnostic is echoed back
/// to clients and operator terminals, so it must stay short and printable.
std::string printable(const std::string& tok) {
  std::string out;
  const std::size_t limit = std::min<std::size_t>(tok.size(), 32);
  for (std::size_t i = 0; i < limit; ++i) {
    const unsigned char c = static_cast<unsigned char>(tok[i]);
    out += (c >= 0x20 && c < 0x7f) ? tok[i] : '?';
  }
  if (tok.size() > limit) out += "...";
  return out;
}

Coord to_coord(const std::string& s, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return static_cast<Coord>(v);
  } catch (const std::exception&) {
    throw ParseError(line_no, "expected integer, got '" + printable(s) + "'");
  }
}

}  // namespace

layout::Layout read_layout(std::istream& in) {
  layout::Layout lay;
  std::map<std::string, layout::CellId> cell_by_name;
  std::map<std::string, std::map<std::string, std::uint32_t>> term_by_name;
  std::map<std::string, std::uint32_t> pad_by_name;

  std::string line;
  std::size_t line_no = 0;
  bool have_boundary = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string& kw = tok[0];
    const auto need = [&](std::size_t n) {
      if (tok.size() < n + 1) {
        throw ParseError(line_no, kw + " needs at least " +
                                      std::to_string(n) + " arguments, got " +
                                      std::to_string(tok.size() - 1));
      }
    };

    if (kw == "boundary") {
      need(4);
      if (have_boundary) {
        throw ParseError(line_no, "duplicate boundary directive");
      }
      const Rect b{to_coord(tok[1], line_no), to_coord(tok[2], line_no),
                   to_coord(tok[3], line_no), to_coord(tok[4], line_no)};
      if (b.xhi <= b.xlo || b.yhi <= b.ylo) {
        throw ParseError(line_no, "boundary is empty or inverted");
      }
      lay.set_boundary(b);
      have_boundary = true;
    } else if (kw == "minsep") {
      need(1);
      lay.set_min_separation(to_coord(tok[1], line_no));
    } else if (kw == "cell") {
      need(5);
      if (cell_by_name.count(tok[1]) != 0) {
        throw ParseError(line_no, "duplicate cell '" + printable(tok[1]) + "'");
      }
      cell_by_name[tok[1]] = lay.add_cell(layout::Cell{
          tok[1], Rect{to_coord(tok[2], line_no), to_coord(tok[3], line_no),
                       to_coord(tok[4], line_no), to_coord(tok[5], line_no)}});
    } else if (kw == "poly") {
      need(7);  // name + at least 3 vertices... 4+ vertices => 8 coords
      if ((tok.size() - 2) % 2 != 0) {
        throw ParseError(line_no, "poly needs an even coordinate count");
      }
      if (cell_by_name.count(tok[1]) != 0) {
        throw ParseError(line_no, "duplicate cell '" + printable(tok[1]) + "'");
      }
      std::vector<Point> verts;
      for (std::size_t i = 2; i + 1 < tok.size(); i += 2) {
        verts.push_back(
            Point{to_coord(tok[i], line_no), to_coord(tok[i + 1], line_no)});
      }
      geom::OrthoPolygon poly(std::move(verts));
      if (!poly.valid()) {
        throw ParseError(line_no, "invalid orthogonal polygon '" +
                                      printable(tok[1]) + "'");
      }
      cell_by_name[tok[1]] = lay.add_cell(layout::Cell{tok[1], std::move(poly)});
    } else if (kw == "term") {
      need(4);
      const auto it = cell_by_name.find(tok[1]);
      if (it == cell_by_name.end()) {
        throw ParseError(line_no, "unknown cell '" + printable(tok[1]) + "'");
      }
      if ((tok.size() - 3) % 2 != 0) {
        throw ParseError(line_no, "term needs pin coordinate pairs");
      }
      layout::Terminal term;
      term.name = tok[2];
      for (std::size_t i = 3; i + 1 < tok.size(); i += 2) {
        term.pins.push_back(layout::Pin{
            Point{to_coord(tok[i], line_no), to_coord(tok[i + 1], line_no)},
            term.name});
      }
      term_by_name[tok[1]][tok[2]] =
          lay.cell(it->second).add_terminal(std::move(term));
    } else if (kw == "pad") {
      need(3);
      if (pad_by_name.count(tok[1]) != 0) {
        throw ParseError(line_no, "duplicate pad '" + printable(tok[1]) + "'");
      }
      layout::Terminal term;
      term.name = tok[1];
      for (std::size_t i = 2; i + 1 < tok.size(); i += 2) {
        term.pins.push_back(layout::Pin{
            Point{to_coord(tok[i], line_no), to_coord(tok[i + 1], line_no)},
            term.name});
      }
      pad_by_name[tok[1]] = lay.add_pad(std::move(term));
    } else if (kw == "net") {
      need(3);
      layout::Net net(tok[1]);
      for (std::size_t i = 2; i < tok.size(); ++i) {
        const std::string& ref = tok[i];
        const std::size_t dot = ref.find('.');
        if (dot == std::string::npos) {
          throw ParseError(line_no, "terminal ref '" + printable(ref) +
                                        "' must be cell.term or pad.name");
        }
        const std::string owner = ref.substr(0, dot);
        const std::string term = ref.substr(dot + 1);
        if (owner == "pad") {
          const auto it = pad_by_name.find(term);
          if (it == pad_by_name.end()) {
            throw ParseError(line_no, "unknown pad '" + printable(term) + "'");
          }
          net.add_terminal(layout::TerminalRef{layout::CellId{}, it->second});
        } else {
          const auto cit = cell_by_name.find(owner);
          if (cit == cell_by_name.end()) {
            throw ParseError(line_no, "unknown cell '" + printable(owner) + "'");
          }
          const auto& terms = term_by_name[owner];
          const auto tit = terms.find(term);
          if (tit == terms.end()) {
            throw ParseError(line_no, "unknown terminal '" + printable(owner) +
                                          "." + printable(term) + "'");
          }
          net.add_terminal(layout::TerminalRef{cit->second, tit->second});
        }
      }
      lay.add_net(std::move(net));
    } else {
      throw ParseError(line_no, "unknown directive '" + printable(kw) + "'");
    }
  }
  // A stream that *failed* (I/O error) rather than cleanly reaching EOF may
  // have silently dropped trailing directives — never hand back the partial
  // layout it happened to accumulate.
  if (in.bad()) {
    throw ParseError(line_no, "I/O error while reading layout");
  }
  if (!have_boundary) {
    throw ParseError(line_no,
                     "input ended without a boundary directive (truncated or "
                     "not a layout)");
  }
  return lay;
}

layout::Layout read_layout_string(const std::string& text) {
  std::istringstream is(text);
  return read_layout(is);
}

void write_layout(std::ostream& out, const layout::Layout& lay) {
  const Rect& b = lay.boundary();
  out << "boundary " << b.xlo << ' ' << b.ylo << ' ' << b.xhi << ' ' << b.yhi
      << '\n';
  out << "minsep " << lay.min_separation() << '\n';
  for (const layout::Cell& c : lay.cells()) {
    if (c.polygonal()) {
      out << "poly " << c.name();
      for (const Point& p : c.shape().vertices()) {
        out << ' ' << p.x << ' ' << p.y;
      }
      out << '\n';
    } else {
      const Rect& r = c.outline();
      out << "cell " << c.name() << ' ' << r.xlo << ' ' << r.ylo << ' '
          << r.xhi << ' ' << r.yhi << '\n';
    }
    for (const layout::Terminal& t : c.terminals()) {
      out << "term " << c.name() << ' ' << t.name;
      for (const layout::Pin& p : t.pins) {
        out << ' ' << p.pos.x << ' ' << p.pos.y;
      }
      out << '\n';
    }
  }
  for (const layout::Terminal& t : lay.pads()) {
    out << "pad " << t.name;
    for (const layout::Pin& p : t.pins) out << ' ' << p.pos.x << ' ' << p.pos.y;
    out << '\n';
  }
  for (const layout::Net& n : lay.nets()) {
    out << "net " << n.name();
    for (const layout::TerminalRef& ref : n.terminals()) {
      if (ref.cell.valid()) {
        const layout::Cell& c = lay.cells()[ref.cell.value];
        out << ' ' << c.name() << '.' << c.terminals()[ref.terminal].name;
      } else {
        out << " pad." << lay.pads()[ref.terminal].name;
      }
    }
    out << '\n';
  }
}

std::string write_layout_string(const layout::Layout& lay) {
  std::ostringstream os;
  write_layout(os, lay);
  return os.str();
}

}  // namespace gcr::io
