#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/netlist_router.hpp"
#include "layout/layout.hpp"

/// \file route_dump.hpp
/// Text serialization of global-routing results, so a routing run can be
/// archived, diffed, or handed to a downstream detailed router as a file.
///
/// ```text
/// route n1 ok wirelength 120
/// seg 80 60 100 60
/// seg 100 60 100 80
/// route n2 failed
/// ```

namespace gcr::io {

/// Writes every net's result (in net order) to \p out.
void write_routes(std::ostream& out, const layout::Layout& lay,
                  const route::NetlistResult& result);
[[nodiscard]] std::string write_routes_string(const layout::Layout& lay,
                                              const route::NetlistResult& result);

/// Writes only the listed nets (in list order) — the dump of a
/// subset-routing request (`NetlistOptions::subset`), where unlisted slots
/// of \p result were never attempted and must not be reported as failures.
void write_routes(std::ostream& out, const layout::Layout& lay,
                  const route::NetlistResult& result,
                  const std::vector<std::size_t>& nets);
[[nodiscard]] std::string write_routes_string(
    const layout::Layout& lay, const route::NetlistResult& result,
    const std::vector<std::size_t>& nets);

/// Parses a dump produced by write_routes.  The layout provides net count
/// and names; mismatched names or malformed lines throw ParseError (see
/// text_format.hpp).  Wirelength is recomputed from the segments and checked
/// against the recorded value.
[[nodiscard]] route::NetlistResult read_routes(std::istream& in,
                                               const layout::Layout& lay);
[[nodiscard]] route::NetlistResult read_routes_string(const std::string& text,
                                                      const layout::Layout& lay);

}  // namespace gcr::io
