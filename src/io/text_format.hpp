#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "layout/layout.hpp"

/// \file text_format.hpp
/// A small line-oriented interchange format for routing problems, so that
/// examples and tests can ship human-readable fixtures.
///
/// ```text
/// # comment
/// boundary 0 0 1024 1024
/// minsep 8
/// cell alu 100 100 300 260
/// poly rom 400 100 500 100 500 200 450 200 450 150 400 150
/// term alu a 100 120            # one pin
/// term alu clk 100 200 300 200  # multi-pin terminal (two pins)
/// pad vdd 0 512
/// net n1 alu.a rom.t0 pad.vdd
/// ```
/// Cell terminals are referenced `cell.term`, pads `pad.name`.

namespace gcr::io {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parses a layout from the text format.  Throws ParseError on malformed
/// input (unknown directive, bad arity, dangling reference).
[[nodiscard]] layout::Layout read_layout(std::istream& in);
[[nodiscard]] layout::Layout read_layout_string(const std::string& text);

/// Serializes a layout; read_layout(write_layout(x)) reproduces x.
void write_layout(std::ostream& out, const layout::Layout& lay);
[[nodiscard]] std::string write_layout_string(const layout::Layout& lay);

}  // namespace gcr::io
