#include "io/svg.hpp"

#include <array>
#include <cstddef>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

namespace gcr::io {

using geom::Point;
using geom::Rect;

namespace {

constexpr std::array<const char*, 8> kNetColors = {
    "#e6194b", "#3cb44b", "#4363d8", "#f58231",
    "#911eb4", "#46f0f0", "#f032e6", "#9a6324"};

}  // namespace

void write_svg(std::ostream& out, const layout::Layout& lay,
               const route::NetlistResult* routes, const SvgOptions& opts) {
  const Rect& b = lay.boundary();
  const double s = opts.scale;
  const double w = static_cast<double>(b.width()) * s;
  const double h = static_cast<double>(b.height()) * s;
  // SVG y grows downward; flip so the layout reads in chip coordinates.
  const auto X = [&](geom::Coord x) {
    return (static_cast<double>(x - b.xlo)) * s;
  };
  const auto Y = [&](geom::Coord y) {
    return h - (static_cast<double>(y - b.ylo)) * s;
  };

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
      << "\" height=\"" << h << "\">\n";
  out << "<rect x=\"0\" y=\"0\" width=\"" << w << "\" height=\"" << h
      << "\" fill=\"#fdfdf5\" stroke=\"#333\"/>\n";

  for (const layout::Cell& c : lay.cells()) {
    for (const Rect& r : c.obstacles()) {
      out << "<rect x=\"" << X(r.xlo) << "\" y=\"" << Y(r.yhi)
          << "\" width=\"" << static_cast<double>(r.width()) * s
          << "\" height=\"" << static_cast<double>(r.height()) * s
          << "\" fill=\"#cfd8dc\" stroke=\"#546e7a\"/>\n";
    }
    if (opts.draw_cell_names) {
      const Point ctr = c.outline().center();
      out << "<text x=\"" << X(ctr.x) << "\" y=\"" << Y(ctr.y)
          << "\" font-size=\"" << 4 * s
          << "\" text-anchor=\"middle\" fill=\"#37474f\">" << c.name()
          << "</text>\n";
    }
    if (opts.draw_pins) {
      for (const layout::Terminal& t : c.terminals()) {
        for (const layout::Pin& p : t.pins) {
          out << "<circle cx=\"" << X(p.pos.x) << "\" cy=\"" << Y(p.pos.y)
              << "\" r=\"" << s << "\" fill=\"#263238\"/>\n";
        }
      }
    }
  }
  if (opts.draw_pins) {
    for (const layout::Terminal& t : lay.pads()) {
      for (const layout::Pin& p : t.pins) {
        out << "<rect x=\"" << X(p.pos.x) - s << "\" y=\"" << Y(p.pos.y) - s
            << "\" width=\"" << 2 * s << "\" height=\"" << 2 * s
            << "\" fill=\"#263238\"/>\n";
      }
    }
  }

  if (routes != nullptr) {
    for (std::size_t n = 0; n < routes->routes.size(); ++n) {
      const route::NetRoute& nr = routes->routes[n];
      if (!nr.ok) continue;
      const char* color = kNetColors[n % kNetColors.size()];
      for (const geom::Segment& seg : nr.segments) {
        out << "<line x1=\"" << X(seg.a.x) << "\" y1=\"" << Y(seg.a.y)
            << "\" x2=\"" << X(seg.b.x) << "\" y2=\"" << Y(seg.b.y)
            << "\" stroke=\"" << color << "\" stroke-width=\"" << s * 0.6
            << "\" stroke-linecap=\"round\"/>\n";
      }
    }
  }
  out << "</svg>\n";
}

std::string svg_string(const layout::Layout& lay,
                       const route::NetlistResult* routes,
                       const SvgOptions& opts) {
  std::ostringstream os;
  write_svg(os, lay, routes, opts);
  return os.str();
}

bool save_svg(const std::string& path, const layout::Layout& lay,
              const route::NetlistResult* routes, const SvgOptions& opts) {
  std::ofstream f(path);
  if (!f) return false;
  write_svg(f, lay, routes, opts);
  return f.good();
}

}  // namespace gcr::io
