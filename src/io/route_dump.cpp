#include "io/route_dump.hpp"

#include <cstddef>
#include <ostream>
#include <sstream>
#include <string>

#include "io/text_format.hpp"

namespace gcr::io {

using geom::Point;
using geom::Segment;

namespace {

void write_one_route(std::ostream& out, const layout::Layout& lay,
                     const route::NetlistResult& result, std::size_t n) {
  const route::NetRoute& nr = result.routes[n];
  const std::string& name = n < lay.nets().size() ? lay.nets()[n].name() : "?";
  if (!nr.ok) {
    out << "route " << name << " failed\n";
    return;
  }
  out << "route " << name << " ok wirelength " << nr.wirelength << '\n';
  for (const Segment& s : nr.segments) {
    out << "seg " << s.a.x << ' ' << s.a.y << ' ' << s.b.x << ' ' << s.b.y
        << '\n';
  }
}

}  // namespace

void write_routes(std::ostream& out, const layout::Layout& lay,
                  const route::NetlistResult& result) {
  for (std::size_t n = 0; n < result.routes.size(); ++n) {
    write_one_route(out, lay, result, n);
  }
}

std::string write_routes_string(const layout::Layout& lay,
                                const route::NetlistResult& result) {
  std::ostringstream os;
  write_routes(os, lay, result);
  return os.str();
}

void write_routes(std::ostream& out, const layout::Layout& lay,
                  const route::NetlistResult& result,
                  const std::vector<std::size_t>& nets) {
  for (const std::size_t n : nets) {
    if (n < result.routes.size()) write_one_route(out, lay, result, n);
  }
}

std::string write_routes_string(const layout::Layout& lay,
                                const route::NetlistResult& result,
                                const std::vector<std::size_t>& nets) {
  std::ostringstream os;
  write_routes(os, lay, result, nets);
  return os.str();
}

route::NetlistResult read_routes(std::istream& in, const layout::Layout& lay) {
  route::NetlistResult result;
  result.routes.resize(lay.nets().size());

  std::string line;
  std::size_t line_no = 0;
  long long current = -1;
  geom::Cost recorded = 0;

  const auto finish_current = [&](std::size_t at_line) {
    if (current < 0) return;
    route::NetRoute& nr = result.routes[static_cast<std::size_t>(current)];
    geom::Cost geometric = 0;
    for (const Segment& s : nr.segments) geometric += s.length();
    if (geometric != recorded) {
      throw ParseError(at_line, "wirelength mismatch for net " +
                                    lay.nets()[static_cast<std::size_t>(current)]
                                        .name());
    }
    nr.wirelength = geometric;
    ++result.routed;
    result.total_wirelength += geometric;
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream is(line);
    std::string kw;
    if (!(is >> kw) || kw[0] == '#') continue;
    if (kw == "route") {
      finish_current(line_no);
      current = -1;
      std::string name, status;
      if (!(is >> name >> status)) {
        throw ParseError(line_no, "route needs: name status");
      }
      long long idx = -1;
      for (std::size_t n = 0; n < lay.nets().size(); ++n) {
        if (lay.nets()[n].name() == name) {
          idx = static_cast<long long>(n);
          break;
        }
      }
      if (idx < 0) throw ParseError(line_no, "unknown net '" + name + "'");
      if (status == "failed") {
        ++result.failed;
        continue;
      }
      if (status != "ok") {
        throw ParseError(line_no, "status must be ok or failed");
      }
      std::string kw2;
      if (!(is >> kw2 >> recorded) || kw2 != "wirelength") {
        throw ParseError(line_no, "expected: wirelength <n>");
      }
      current = idx;
      result.routes[static_cast<std::size_t>(current)].ok = true;
    } else if (kw == "seg") {
      if (current < 0) throw ParseError(line_no, "seg outside a route");
      geom::Coord x0, y0, x1, y1;
      if (!(is >> x0 >> y0 >> x1 >> y1)) {
        throw ParseError(line_no, "seg needs 4 coordinates");
      }
      if (x0 != x1 && y0 != y1) {
        throw ParseError(line_no, "seg must be axis-parallel");
      }
      result.routes[static_cast<std::size_t>(current)].segments.push_back(
          Segment{Point{x0, y0}, Point{x1, y1}});
    } else {
      throw ParseError(line_no, "unknown directive '" + kw + "'");
    }
  }
  finish_current(line_no);
  return result;
}

route::NetlistResult read_routes_string(const std::string& text,
                                        const layout::Layout& lay) {
  std::istringstream is(text);
  return read_routes(is, lay);
}

}  // namespace gcr::io
