#include "placement/spacing_demand.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "congestion/two_pass.hpp"

namespace gcr::placement {

using geom::Axis;
using geom::Coord;
using geom::Rect;

std::vector<SpacingDeficit> spacing_deficits(const layout::Layout& lay,
                                             const route::NetlistResult& routed,
                                             const SpacingOptions& opts) {
  congestion::PassageOptions popts;
  popts.wire_pitch = opts.wire_pitch;
  const congestion::CongestionMap map =
      congestion::build_map(lay, routed, popts);

  std::vector<SpacingDeficit> out;
  for (const congestion::PassageLoad& load : map.loads()) {
    // Boundary passages widen by growing the region, which the rigid-shift
    // adjustment already does implicitly; only cell-to-cell passages
    // constrain the placement.
    if (load.passage.cell_b == congestion::Passage::npos) continue;
    const Coord demand =
        static_cast<Coord>(load.occupancy) * opts.wire_pitch + opts.slack;
    if (demand > load.passage.gap) {
      out.push_back(
          SpacingDeficit{load.passage, load.occupancy, demand - load.passage.gap});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpacingDeficit& a, const SpacingDeficit& b) {
              if (a.deficit != b.deficit) return a.deficit > b.deficit;
              return a.passage.region < b.passage.region;
            });
  return out;
}

geom::Cost widen_passages(layout::Layout& lay,
                          const std::vector<SpacingDeficit>& deficits) {
  const geom::Cost area_before = lay.boundary().area();
  Rect boundary = lay.boundary();

  for (const SpacingDeficit& d : deficits) {
    const Rect& region = d.passage.region;
    const Coord delta = d.deficit;
    if (delta <= 0) continue;
    if (d.passage.flow_axis == Axis::kY) {
      // Vertical corridor between side-by-side cells: shift everything at or
      // right of the corridor's right wall further right.
      const Coord cut = region.xhi;
      for (std::size_t c = 0; c < lay.cells().size(); ++c) {
        layout::Cell& cell =
            lay.cell(layout::CellId{static_cast<std::uint32_t>(c)});
        if (cell.outline().xlo >= cut) cell.translate(delta, 0);
      }
      boundary.xhi += delta;
    } else {
      // Horizontal corridor between stacked cells: shift upward.
      const Coord cut = region.yhi;
      for (std::size_t c = 0; c < lay.cells().size(); ++c) {
        layout::Cell& cell =
            lay.cell(layout::CellId{static_cast<std::uint32_t>(c)});
        if (cell.outline().ylo >= cut) cell.translate(0, delta);
      }
      boundary.yhi += delta;
    }
  }
  lay.set_boundary(boundary);
  return boundary.area() - area_before;
}

}  // namespace gcr::placement
