#pragma once

#include <cstddef>
#include <vector>

#include "congestion/congestion_map.hpp"
#include "core/netlist_router.hpp"
#include "layout/layout.hpp"

/// \file spacing_demand.hpp
/// Routing-to-placement feedback: how much wider must each inter-cell
/// passage become to carry the wires the global router put through it?
///
/// The paper's introduction poses the problem: the global router assumes
/// "an unlimited number of wires may pass between any two cells", so either
/// the designer reserves enough spacing up front, or "the routing system
/// [must] provide feedback so that the placement can be automatically
/// adjusted".  This module computes that feedback.

namespace gcr::placement {

/// A passage whose occupancy exceeds the tracks its gap can carry.
struct SpacingDeficit {
  congestion::Passage passage;
  std::size_t occupancy = 0;
  /// Extra gap width (DBU) needed: occupancy * pitch - current gap.
  geom::Coord deficit = 0;
};

struct SpacingOptions {
  /// Wire pitch used to convert occupancy to demanded gap width.
  geom::Coord wire_pitch = 2;
  /// Extra slack (DBU) added on top of the exact demand.
  geom::Coord slack = 0;
};

/// Analyzes a routed netlist and returns every under-sized passage, sorted
/// by descending deficit (deterministic).
[[nodiscard]] std::vector<SpacingDeficit> spacing_deficits(
    const layout::Layout& lay, const route::NetlistResult& routed,
    const SpacingOptions& opts = {});

/// Applies one round of placement adjustment: for each deficit, every cell
/// on the far side of the passage shifts away by the deficit, and the
/// routing boundary grows to keep all cells inside.  Rigid 1-D shifts
/// preserve the placement rules (relative order and separations only grow).
/// Returns the total area growth in DBU^2.
geom::Cost widen_passages(layout::Layout& lay,
                          const std::vector<SpacingDeficit>& deficits);

}  // namespace gcr::placement
