#include "placement/feedback_loop.hpp"

#include <cstddef>
#include <utility>
#include <vector>

namespace gcr::placement {

FeedbackReport run_feedback(const layout::Layout& lay,
                            const FeedbackOptions& opts) {
  FeedbackReport report;
  report.final_layout = lay;

  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    const route::NetlistRouter router(report.final_layout);
    route::NetlistResult routed = router.route_all(opts.routing);
    ++report.iterations;

    const std::vector<SpacingDeficit> deficits =
        spacing_deficits(report.final_layout, routed, opts.spacing);

    IterationRecord rec;
    rec.deficits = deficits.size();
    rec.worst_deficit = deficits.empty() ? 0 : deficits.front().deficit;
    rec.wirelength = routed.total_wirelength;

    if (deficits.empty()) {
      report.converged = true;
      report.final_routes = std::move(routed);
      report.trace.push_back(rec);
      return report;
    }

    rec.area_growth = widen_passages(report.final_layout, deficits);
    report.trace.push_back(rec);
    report.final_routes = std::move(routed);
  }
  return report;
}

}  // namespace gcr::placement
