#pragma once

#include <cstddef>
#include <vector>

#include "core/netlist_router.hpp"
#include "placement/spacing_demand.hpp"

/// \file feedback_loop.hpp
/// The route -> analyze -> adjust -> re-route loop, and its convergence.
///
/// The paper flags this as open research: "Placement adjustment can alter
/// the paths taken during global routing thereby creating inter-cell spacing
/// problems where they did not previously exist.  This in turn may lead to
/// another placement adjustment.  It has not been shown that this approach
/// is guaranteed to converge even with sufficient restrictions.  This is the
/// topic of further research by the author."
///
/// This implementation studies the question empirically: each iteration
/// routes the netlist, measures the spacing deficits, widens the offending
/// passages by rigid shifts, and repeats.  The loop records the deficit
/// trace so benchmarks can observe convergence (deficits typically vanish in
/// a few iterations, because rigid shifts never shrink any passage — a
/// sufficient restriction under which the loop *is* monotone).

namespace gcr::placement {

struct FeedbackOptions {
  SpacingOptions spacing;
  route::NetlistOptions routing;
  std::size_t max_iterations = 8;
};

struct IterationRecord {
  std::size_t deficits = 0;
  geom::Coord worst_deficit = 0;
  geom::Cost area_growth = 0;
  geom::Cost wirelength = 0;
};

struct FeedbackReport {
  bool converged = false;       ///< no deficits remained
  std::size_t iterations = 0;   ///< routing passes performed
  layout::Layout final_layout;  ///< adjusted placement
  route::NetlistResult final_routes;
  std::vector<IterationRecord> trace;
};

/// Runs the feedback loop on a copy of \p lay.
[[nodiscard]] FeedbackReport run_feedback(const layout::Layout& lay,
                                          const FeedbackOptions& opts = {});

}  // namespace gcr::placement
