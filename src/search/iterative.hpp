#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "search/searcher.hpp"

/// \file iterative.hpp
/// Memory-light search drivers: iterative-deepening depth-first search and
/// IDA* (Korf's iterative-deepening A*, published while the paper was in
/// press).  Both re-run a bounded depth-first probe with a growing cutoff —
/// depth for IDDFS, f = g + h for IDA* — trading re-expansion time for O(d)
/// memory.  The paper holds the Lee-Moore grid's memory appetite against
/// it; these drivers are the opposite end of the memory spectrum for the
/// same state spaces, and the benches use them to complete the taxonomy.

namespace gcr::search {

struct IterativeOptions {
  /// Hard ceiling on total node expansions across all passes (0 = none).
  std::size_t max_expansions = 0;
  /// Hard ceiling on the cutoff growth: max depth for IDDFS, max f for
  /// IDA* (0 = none).
  geom::Cost max_bound = 0;
};

namespace internal {

/// Bounded DFS for IDA*: returns the smallest f that exceeded the bound
/// (or kCostInf when the subtree is exhausted), and fills `path` on success.
template <SearchSpace Space>
geom::Cost ida_probe(const Space& space, const typename Space::State& s,
                     geom::Cost g, geom::Cost bound,
                     std::vector<typename Space::State>& path,
                     SearchStats& stats, const IterativeOptions& opts,
                     bool& found, bool& aborted) {
  const geom::Cost f = g + space.heuristic(s);
  if (f > bound) return f;
  if (space.is_goal(s)) {
    found = true;
    path.push_back(s);
    return f;
  }
  if (opts.max_expansions != 0 && stats.nodes_expanded >= opts.max_expansions) {
    aborted = true;
    return geom::kCostInf;
  }
  ++stats.nodes_expanded;
  std::vector<Successor<typename Space::State>> succ;
  space.successors(s, succ);
  stats.nodes_generated += succ.size();

  geom::Cost next_bound = geom::kCostInf;
  path.push_back(s);
  for (const auto& edge : succ) {
    // Avoid trivial cycles: skip states already on the current path.
    if (std::find(path.begin(), path.end(), edge.state) != path.end()) {
      continue;
    }
    const geom::Cost t = ida_probe(space, edge.state, g + edge.cost, bound,
                                   path, stats, opts, found, aborted);
    if (found || aborted) return t;
    next_bound = std::min(next_bound, t);
  }
  path.pop_back();
  return next_bound;
}

}  // namespace internal

/// IDA*: optimal on non-negative edge costs with an admissible heuristic,
/// using memory linear in the solution depth.
template <SearchSpace Space>
[[nodiscard]] SearchResult<typename Space::State> ida_star(
    const Space& space, const typename Space::State& start,
    const IterativeOptions& opts = {}) {
  SearchResult<typename Space::State> result;
  geom::Cost bound = space.heuristic(start);
  for (;;) {
    if (opts.max_bound != 0 && bound > opts.max_bound) return result;
    bool found = false;
    bool aborted = false;
    std::vector<typename Space::State> path;
    const geom::Cost t = internal::ida_probe(space, start, 0, bound, path,
                                             result.stats, opts, found,
                                             aborted);
    if (found) {
      result.found = true;
      result.path = std::move(path);
      result.cost = t;
      return result;
    }
    if (aborted) {
      result.stats.aborted = true;
      return result;
    }
    if (t >= geom::kCostInf) return result;  // space exhausted
    bound = t;
  }
}

/// Iterative-deepening DFS: complete on finite branching, blind, O(d)
/// memory; finds a shallowest (fewest-edges) path, not a cheapest one.
template <SearchSpace Space>
[[nodiscard]] SearchResult<typename Space::State> iddfs(
    const Space& space, const typename Space::State& start,
    const IterativeOptions& opts = {}) {
  SearchResult<typename Space::State> result;
  for (std::size_t depth = 0;; ++depth) {
    if (opts.max_bound != 0 &&
        depth > static_cast<std::size_t>(opts.max_bound)) {
      return result;
    }
    bool hit_limit = false;  // some branch was cut: deeper pass may help

    // Explicit-stack bounded DFS with on-path cycle avoidance.
    struct Frame {
      typename Space::State state;
      geom::Cost g;
      std::vector<Successor<typename Space::State>> succ;
      std::size_t next = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({start, 0, {}, 0});
    if (space.is_goal(start)) {
      result.found = true;
      result.cost = 0;
      result.path = {start};
      return result;
    }
    space.successors(stack.back().state, stack.back().succ);
    result.stats.nodes_generated += stack.back().succ.size();
    ++result.stats.nodes_expanded;

    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next >= top.succ.size()) {
        stack.pop_back();
        continue;
      }
      const auto& edge = top.succ[top.next++];
      if (space.is_goal(edge.state)) {
        result.found = true;
        result.cost = top.g + edge.cost;
        for (const Frame& f : stack) result.path.push_back(f.state);
        result.path.push_back(edge.state);
        return result;
      }
      if (stack.size() > depth) {
        hit_limit = true;
        continue;
      }
      bool on_path = false;
      for (const Frame& f : stack) {
        if (f.state == edge.state) {
          on_path = true;
          break;
        }
      }
      if (on_path) continue;
      if (opts.max_expansions != 0 &&
          result.stats.nodes_expanded >= opts.max_expansions) {
        result.stats.aborted = true;
        return result;
      }
      Frame next{edge.state, top.g + edge.cost, {}, 0};
      space.successors(next.state, next.succ);
      result.stats.nodes_generated += next.succ.size();
      ++result.stats.nodes_expanded;
      stack.push_back(std::move(next));
    }
    if (!hit_limit) return result;  // exhausted without cutoff: no path
  }
}

}  // namespace gcr::search
