#pragma once

#include <algorithm>
#include <cassert>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "geometry/coord.hpp"
#include "search/stats.hpp"
#include "search/strategy.hpp"

/// \file searcher.hpp
/// Generic graph search over an implicit state space, following the paper's
/// presentation: an OPEN list of frontier nodes, a CLOSED list of expanded
/// nodes, parent pointers for path back-tracing, and CLOSED-to-OPEN
/// reopening with pointer re-direction when a shorter path to an
/// intermediate point is found.
///
/// The same engine runs every strategy in the paper's taxonomy; only the
/// OPEN-list ordering (and the termination rule for blind searches) differs.
/// Instantiated by the gridless router (states = plane points reached by
/// line probes), the Lee–Moore grid router (states = grid points), and the
/// fifteen-puzzle example (states = board permutations) — demonstrating the
/// paper's point that wire routing is one instance of general state-space
/// search.

namespace gcr::search {

/// A successor edge: the reached state and the non-negative edge cost.
template <class State>
struct Successor {
  State state;
  geom::Cost cost = 0;
};

/// Requirements on a problem definition.
template <class Space>
concept SearchSpace = requires(const Space& sp, const typename Space::State& s,
                               std::vector<Successor<typename Space::State>>& out) {
  typename Space::State;
  { sp.successors(s, out) } -> std::same_as<void>;
  { sp.heuristic(s) } -> std::convertible_to<geom::Cost>;
  { sp.is_goal(s) } -> std::convertible_to<bool>;
};

template <class State>
struct SearchResult {
  bool found = false;
  geom::Cost cost = geom::kCostInf;
  /// States from a start to the goal, inclusive.
  std::vector<State> path;
  SearchStats stats;
};

struct SearchOptions {
  Strategy strategy = Strategy::kAStar;
  /// Depth-first only: maximum path depth ("a depth limit is sometimes used
  /// to prevent the algorithm from going too far down the wrong path").
  /// 0 = unlimited.
  std::size_t depth_limit = 0;
  /// Abort after this many expansions (safety valve for blind strategies on
  /// large spaces).  0 = unlimited.
  std::size_t max_expansions = 0;
};

template <SearchSpace Space>
class Searcher {
 public:
  using State = typename Space::State;

  explicit Searcher(const Space& space) : space_(space) {}

  /// Runs the search from (possibly several) start states.  Multiple starts
  /// implement the multi-source tree-to-terminal searches of the Steiner
  /// construction: every point of the partially built tree is a start.
  [[nodiscard]] SearchResult<State> run(const std::vector<State>& starts,
                                        const SearchOptions& opts = {}) {
    reset();
    SearchResult<State> result;
    const Strategy strat = opts.strategy;
    const bool blind =
        strat == Strategy::kDepthFirst || strat == Strategy::kBreadthFirst;

    for (const State& s : starts) {
      const std::uint32_t idx = intern(s);
      nodes_[idx].g = 0;
      nodes_[idx].depth = 0;
      nodes_[idx].parent = kNoParent;
      push(idx, strat);
    }

    std::uint32_t best_goal = kNoParent;  // exhaustive mode tracks the best
    geom::Cost best_goal_g = geom::kCostInf;

    std::vector<Successor<State>> succ;
    while (!open_empty(strat)) {
      result.stats.max_open_size =
          std::max(result.stats.max_open_size, open_size(strat));
      const std::uint32_t cur = pop(strat);
      if (cur == kNoParent) continue;  // stale heap entry
      Node& node = nodes_[cur];
      if (node.closed) continue;
      node.closed = true;

      // Termination: "the algorithm terminates when the goal node is removed
      // from OPEN to be expanded."  Exhaustive mode ignores it and drains
      // OPEN; blind modes terminate at generation time below (and here, in
      // case a start is itself a goal).
      if (space_.is_goal(states_[cur])) {
        if (strat == Strategy::kExhaustive) {
          if (node.g < best_goal_g) {
            best_goal_g = node.g;
            best_goal = cur;
          }
          continue;  // goals have no successors worth pursuing
        }
        finish(result, cur);
        return result;
      }

      ++result.stats.nodes_expanded;
      if (opts.max_expansions != 0 &&
          result.stats.nodes_expanded > opts.max_expansions) {
        result.stats.aborted = true;
        break;
      }
      if (strat == Strategy::kDepthFirst && opts.depth_limit != 0 &&
          node.depth >= opts.depth_limit) {
        continue;  // depth cutoff: do not expand below the limit
      }

      succ.clear();
      space_.successors(states_[cur], succ);
      for (const Successor<State>& edge : succ) {
        assert(edge.cost >= 0 && "edge weights must be non-negative");
        ++result.stats.nodes_generated;
        const std::uint32_t nxt = intern(edge.state);
        Node& child = nodes_[nxt];
        const geom::Cost g_new = nodes_[cur].g + edge.cost;

        if (blind) {
          // Blind searches keep the first path found to a state.
          if (child.g != geom::kCostInf) continue;
          child.g = g_new;
          child.parent = cur;
          child.depth = nodes_[cur].depth + 1;
          if (space_.is_goal(edge.state)) {  // generation-time termination
            finish(result, nxt);
            return result;
          }
          push(nxt, strat);
          continue;
        }

        if (g_new < child.g) {
          // "If its new f is less than the old it must be placed back on
          // OPEN ... its pointers must be redirected in order to reflect
          // this new shorter path back to the start node."
          if (child.closed) {
            child.closed = false;
            ++result.stats.nodes_reopened;
          }
          child.g = g_new;
          child.parent = cur;
          child.depth = nodes_[cur].depth + 1;
          push(nxt, strat);
        }
      }
    }

    if (strat == Strategy::kExhaustive && best_goal != kNoParent) {
      finish(result, best_goal);
    }
    return result;
  }

 private:
  static constexpr std::uint32_t kNoParent = 0xFFFFFFFFu;

  struct Node {
    geom::Cost g = geom::kCostInf;
    std::uint32_t parent = kNoParent;
    std::uint32_t depth = 0;
    bool closed = false;
  };

  struct HeapEntry {
    geom::Cost priority;
    std::uint64_t seq;   // FIFO tie-break for determinism
    std::uint32_t node;
    geom::Cost g_at_push;

    bool operator>(const HeapEntry& o) const noexcept {
      if (priority != o.priority) return priority > o.priority;
      return seq > o.seq;
    }
  };

  void reset() {
    states_.clear();
    nodes_.clear();
    index_.clear();
    heap_ = {};
    fifo_.clear();
    seq_ = 0;
  }

  std::uint32_t intern(const State& s) {
    const auto [it, inserted] =
        index_.try_emplace(s, static_cast<std::uint32_t>(states_.size()));
    if (inserted) {
      states_.push_back(s);
      nodes_.emplace_back();
    }
    return it->second;
  }

  [[nodiscard]] static bool ordered(Strategy s) noexcept {
    return s == Strategy::kBestFirst || s == Strategy::kGreedy ||
           s == Strategy::kAStar || s == Strategy::kExhaustive;
  }

  [[nodiscard]] geom::Cost priority_of(std::uint32_t idx, Strategy s) const {
    switch (s) {
      case Strategy::kBestFirst:
      case Strategy::kExhaustive:
        return nodes_[idx].g;
      case Strategy::kGreedy:
        return space_.heuristic(states_[idx]);
      case Strategy::kAStar:
        return nodes_[idx].g + space_.heuristic(states_[idx]);
      default:
        return 0;
    }
  }

  void push(std::uint32_t idx, Strategy s) {
    if (ordered(s)) {
      heap_.push(HeapEntry{priority_of(idx, s), seq_++, idx, nodes_[idx].g});
    } else {
      fifo_.push_back(idx);
    }
  }

  [[nodiscard]] bool open_empty(Strategy s) const {
    return ordered(s) ? heap_.empty() : fifo_.empty();
  }
  [[nodiscard]] std::size_t open_size(Strategy s) const {
    return ordered(s) ? heap_.size() : fifo_.size();
  }

  std::uint32_t pop(Strategy s) {
    if (ordered(s)) {
      const HeapEntry e = heap_.top();
      heap_.pop();
      // Lazy deletion: an entry is stale if the node found a better g since
      // it was pushed (a fresher entry is in the heap).
      if (e.g_at_push != nodes_[e.node].g) return kNoParent;
      return e.node;
    }
    std::uint32_t idx;
    if (s == Strategy::kDepthFirst) {
      idx = fifo_.back();
      fifo_.pop_back();
    } else {
      idx = fifo_.front();
      fifo_.pop_front();
    }
    return idx;
  }

  void finish(SearchResult<State>& result, std::uint32_t goal) const {
    result.found = true;
    result.cost = nodes_[goal].g;
    for (std::uint32_t n = goal; n != kNoParent; n = nodes_[n].parent) {
      result.path.push_back(states_[n]);
    }
    std::reverse(result.path.begin(), result.path.end());
  }

  const Space& space_;
  std::vector<State> states_;
  std::vector<Node> nodes_;
  std::unordered_map<State, std::uint32_t> index_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::deque<std::uint32_t> fifo_;
  std::uint64_t seq_ = 0;
};

/// Convenience wrapper for single-start searches.
template <SearchSpace Space>
[[nodiscard]] SearchResult<typename Space::State> find_path(
    const Space& space, const typename Space::State& start,
    const SearchOptions& opts = {}) {
  Searcher<Space> searcher(space);
  return searcher.run({start}, opts);
}

}  // namespace gcr::search
