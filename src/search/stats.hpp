#pragma once

#include <cstddef>
#include <ostream>

/// \file stats.hpp
/// Machine-independent instrumentation of a search run.  The paper's
/// efficiency argument ("surprisingly few nodes are generated before an
/// optimal path is found") is about node counts, so every search records
/// them; wall-clock numbers live in the benchmarks.

namespace gcr::search {

struct SearchStats {
  /// Nodes removed from OPEN and expanded (successor generation performed).
  std::size_t nodes_expanded = 0;
  /// Successor nodes generated (including duplicates later discarded).
  std::size_t nodes_generated = 0;
  /// Nodes moved back from CLOSED to OPEN because a shorter path was found —
  /// the paper's re-pointing case.
  std::size_t nodes_reopened = 0;
  /// High-water mark of the OPEN list (memory proxy).
  std::size_t max_open_size = 0;
  /// True when the run hit the expansion cap before exhausting OPEN.
  bool aborted = false;

  SearchStats& operator+=(const SearchStats& o) {
    nodes_expanded += o.nodes_expanded;
    nodes_generated += o.nodes_generated;
    nodes_reopened += o.nodes_reopened;
    if (o.max_open_size > max_open_size) max_open_size = o.max_open_size;
    aborted = aborted || o.aborted;
    return *this;
  }
};

inline std::ostream& operator<<(std::ostream& os, const SearchStats& s) {
  return os << "expanded=" << s.nodes_expanded
            << " generated=" << s.nodes_generated
            << " reopened=" << s.nodes_reopened
            << " max_open=" << s.max_open_size
            << (s.aborted ? " (aborted)" : "");
}

}  // namespace gcr::search
