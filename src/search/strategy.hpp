#pragma once

#include <cstdint>
#include <string_view>

/// \file strategy.hpp
/// The paper's taxonomy of search algorithms, selectable at run time so the
/// benchmarks can sweep them on identical problems.

namespace gcr::search {

enum class Strategy : std::uint8_t {
  /// LIFO OPEN list, optional depth limit; blind.
  kDepthFirst,
  /// FIFO OPEN list; blind.  With unit grid successors this is Lee–Moore
  /// wave expansion.
  kBreadthFirst,
  /// OPEN ordered by g-hat (path cost so far); branch-and-bound.  Equals
  /// A* with h == 0 — the paper's characterization of Lee–Moore as a
  /// special case of the general algorithm.
  kBestFirst,
  /// OPEN ordered by h-hat only (pure heuristic, inadmissible ordering);
  /// included for the taxonomy's sake.
  kGreedy,
  /// OPEN ordered by f = g-hat + h-hat with admissible h; optimal.
  kAStar,
  /// Expand until OPEN is empty; return the best goal path seen.  The
  /// paper's "exhaustive search" — order of expansion does not matter.
  kExhaustive,
};

[[nodiscard]] constexpr std::string_view to_string(Strategy s) noexcept {
  switch (s) {
    case Strategy::kDepthFirst: return "depth-first";
    case Strategy::kBreadthFirst: return "breadth-first";
    case Strategy::kBestFirst: return "best-first";
    case Strategy::kGreedy: return "greedy";
    case Strategy::kAStar: return "A*";
    case Strategy::kExhaustive: return "exhaustive";
  }
  return "unknown";
}

/// True for strategies that guarantee a minimal-cost path on non-negative
/// edge weights (the paper's admissibility property).
[[nodiscard]] constexpr bool admissible(Strategy s) noexcept {
  return s == Strategy::kBestFirst || s == Strategy::kAStar ||
         s == Strategy::kExhaustive;
}

}  // namespace gcr::search
