#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "grid/grid_graph.hpp"
#include "search/searcher.hpp"
#include "search/strategy.hpp"

/// \file lee_moore.hpp
/// The Lee–Moore grid router, expressed through the generic search engine.
///
/// The paper's central observation: "If this [grid successor] model is used
/// with h(n) defined to be 0 then it is equivalent to the Lee-Moore
/// algorithm."  LeeMooreRouter therefore simply instantiates the generic
/// Searcher on grid successors; the strategy argument selects classic wave
/// expansion (breadth-first / best-first with h = 0) or the gridded-A*
/// variant (Manhattan h), so benchmarks can isolate both the grid-vs-line
/// representation effect and the heuristic effect.

namespace gcr::grid {

/// Search-space adapter: states are grid points, successors the 4-adjacent
/// routable grid points at cost = pitch, goals an explicit point set.
class GridRouteSpace {
 public:
  using State = GridPoint;

  GridRouteSpace(const GridGraph& graph, std::vector<GridPoint> goals)
      : graph_(graph), goals_(std::move(goals)) {}

  void successors(const State& s,
                  std::vector<search::Successor<State>>& out) const {
    static constexpr std::int32_t kDx[4] = {1, -1, 0, 0};
    static constexpr std::int32_t kDy[4] = {0, 0, 1, -1};
    for (int d = 0; d < 4; ++d) {
      const GridPoint n{s.ix + kDx[d], s.iy + kDy[d]};
      if (graph_.routable(n)) out.push_back({n, graph_.pitch()});
    }
  }

  /// Manhattan distance (in DBU) to the nearest goal — the admissible h.
  [[nodiscard]] geom::Cost heuristic(const State& s) const {
    geom::Cost best = geom::kCostInf;
    for (const GridPoint& g : goals_) {
      const geom::Cost d =
          (geom::coord_abs_diff(s.ix, g.ix) + geom::coord_abs_diff(s.iy, g.iy)) *
          graph_.pitch();
      if (d < best) best = d;
    }
    return best;
  }

  [[nodiscard]] bool is_goal(const State& s) const {
    for (const GridPoint& g : goals_) {
      if (g == s) return true;
    }
    return false;
  }

 private:
  const GridGraph& graph_;
  std::vector<GridPoint> goals_;
};

/// A routed grid path plus its statistics.
struct GridRoute {
  bool found = false;
  geom::Cost length = 0;                ///< DBU wirelength
  std::vector<geom::Point> points;      ///< DBU polyline (every grid step)
  search::SearchStats stats;
};

/// Point-to-point (or point-to-point-set) router on a grid.
class LeeMooreRouter {
 public:
  explicit LeeMooreRouter(const GridGraph& graph) : graph_(graph) {}

  /// Routes from \p from to \p to using \p strategy.  kBreadthFirst or
  /// kBestFirst reproduce the classic Lee–Moore expansion; kAStar is the
  /// gridded heuristic variant.  Pins are snapped to the nearest routable
  /// grid point.
  [[nodiscard]] GridRoute route(
      const geom::Point& from, const geom::Point& to,
      search::Strategy strategy = search::Strategy::kBestFirst) const;

  /// Multi-source multi-target variant (tree extension on the grid).
  [[nodiscard]] GridRoute route_set(
      const std::vector<geom::Point>& sources,
      const std::vector<geom::Point>& targets,
      search::Strategy strategy = search::Strategy::kBestFirst) const;

 private:
  const GridGraph& graph_;
};

}  // namespace gcr::grid
