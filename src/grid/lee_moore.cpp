#include "grid/lee_moore.hpp"

#include <utility>
#include <vector>

namespace gcr::grid {

using geom::Point;

GridRoute LeeMooreRouter::route(const Point& from, const Point& to,
                                search::Strategy strategy) const {
  return route_set({from}, {to}, strategy);
}

GridRoute LeeMooreRouter::route_set(const std::vector<Point>& sources,
                                    const std::vector<Point>& targets,
                                    search::Strategy strategy) const {
  GridRoute out;
  std::vector<GridPoint> starts;
  for (const Point& p : sources) {
    if (const auto g = graph_.snap(p)) starts.push_back(*g);
  }
  std::vector<GridPoint> goals;
  for (const Point& p : targets) {
    if (const auto g = graph_.snap(p)) goals.push_back(*g);
  }
  if (starts.empty() || goals.empty()) return out;

  const GridRouteSpace space(graph_, std::move(goals));
  search::Searcher<GridRouteSpace> searcher(space);
  search::SearchOptions opts;
  opts.strategy = strategy;
  const auto result = searcher.run(starts, opts);

  out.found = result.found;
  out.stats = result.stats;
  if (result.found) {
    out.length = result.cost;
    out.points.reserve(result.path.size());
    for (const GridPoint& g : result.path) out.points.push_back(graph_.to_dbu(g));
  }
  return out;
}

}  // namespace gcr::grid
