#include "grid/grid_graph.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <optional>

namespace gcr::grid {

using geom::Coord;
using geom::Point;
using geom::Rect;

GridGraph::GridGraph(const spatial::ObstacleIndex& index, Coord pitch)
    : pitch_(pitch) {
  assert(pitch >= 1);
  const Rect& b = index.boundary();
  origin_ = b.ll();
  nx_ = static_cast<std::int32_t>(b.width() / pitch) + 1;
  ny_ = static_cast<std::int32_t>(b.height() / pitch) + 1;
  blocked_.assign(vertex_count(), 0);

  // Rasterize each obstacle's open interior: grid coordinates strictly
  // between the obstacle edges are blocked.
  for (const Rect& r : index.obstacles()) {
    // Smallest index with origin + i*pitch > r.xlo  and largest with < r.xhi.
    const auto first_inside = [this](Coord lo, Coord org) {
      return static_cast<std::int32_t>((lo - org) / pitch_) + 1;
    };
    const auto last_inside = [this](Coord hi, Coord org) {
      Coord q = (hi - org) / pitch_;
      if (org + q * pitch_ >= hi) --q;
      return static_cast<std::int32_t>(q);
    };
    const std::int32_t ix0 = std::max(0, first_inside(r.xlo, origin_.x));
    const std::int32_t ix1 = std::min(nx_ - 1, last_inside(r.xhi, origin_.x));
    const std::int32_t iy0 = std::max(0, first_inside(r.ylo, origin_.y));
    const std::int32_t iy1 = std::min(ny_ - 1, last_inside(r.yhi, origin_.y));
    for (std::int32_t iy = iy0; iy <= iy1; ++iy) {
      for (std::int32_t ix = ix0; ix <= ix1; ++ix) {
        blocked_[flat(GridPoint{ix, iy})] = 1;
      }
    }
  }
}

GridPoint GridGraph::nearest(const Point& p) const noexcept {
  const auto clamp_idx = [](Coord v, std::int32_t n) {
    return static_cast<std::int32_t>(
        std::clamp<Coord>(v, 0, static_cast<Coord>(n - 1)));
  };
  const Coord ix = (p.x - origin_.x + pitch_ / 2) / pitch_;
  const Coord iy = (p.y - origin_.y + pitch_ / 2) / pitch_;
  return {clamp_idx(ix, nx_), clamp_idx(iy, ny_)};
}

std::optional<GridPoint> GridGraph::snap(const Point& p) const {
  const GridPoint c = nearest(p);
  if (routable(c)) return c;
  const std::int32_t max_ring = std::max(nx_, ny_);
  for (std::int32_t ring = 1; ring < max_ring; ++ring) {
    for (std::int32_t dx = -ring; dx <= ring; ++dx) {
      const std::int32_t rem = ring - (dx < 0 ? -dx : dx);
      for (const std::int32_t dy : {-rem, rem}) {
        const GridPoint g{c.ix + dx, c.iy + dy};
        if (routable(g)) return g;
        if (rem == 0) break;  // avoid testing the same point twice
      }
    }
  }
  return std::nullopt;
}

}  // namespace gcr::grid
