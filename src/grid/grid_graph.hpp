#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "geometry/geometry.hpp"
#include "spatial/obstacle_index.hpp"

/// \file grid_graph.hpp
/// Uniform routing grid — the Lee–Moore model the paper generalizes away
/// from: "The most straightforward way of generating successors is to divide
/// the routing surface up into a grid ... the grid spacing equal to the
/// minimum wire spacing."  Kept as the baseline for every comparison bench.

namespace gcr::grid {

/// A grid vertex by integer indices.
struct GridPoint {
  std::int32_t ix = 0;
  std::int32_t iy = 0;

  friend constexpr auto operator<=>(const GridPoint&, const GridPoint&) =
      default;
};

/// Uniform grid over a routing boundary with obstacles rasterized onto it.
/// Grid points covered by an obstacle's open interior are blocked; points on
/// obstacle boundaries stay routable, mirroring the gridless model.
class GridGraph {
 public:
  GridGraph() = default;

  /// \p pitch is the grid spacing in database units ("minimum wire spacing").
  GridGraph(const spatial::ObstacleIndex& index, geom::Coord pitch);

  [[nodiscard]] geom::Coord pitch() const noexcept { return pitch_; }
  [[nodiscard]] std::int32_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::int32_t ny() const noexcept { return ny_; }
  /// Total number of grid vertices — the memory cost the paper holds against
  /// the grid-based approach.
  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  }

  [[nodiscard]] bool in_bounds(GridPoint g) const noexcept {
    return g.ix >= 0 && g.ix < nx_ && g.iy >= 0 && g.iy < ny_;
  }
  [[nodiscard]] bool blocked(GridPoint g) const {
    return blocked_[flat(g)];
  }
  [[nodiscard]] bool routable(GridPoint g) const noexcept {
    return in_bounds(g) && !blocked_[flat(g)];
  }

  /// Database-unit position of a grid point.
  [[nodiscard]] geom::Point to_dbu(GridPoint g) const noexcept {
    return {origin_.x + static_cast<geom::Coord>(g.ix) * pitch_,
            origin_.y + static_cast<geom::Coord>(g.iy) * pitch_};
  }

  /// Nearest grid point to \p p (no routability guarantee).
  [[nodiscard]] GridPoint nearest(const geom::Point& p) const noexcept;

  /// Nearest *routable* grid point to \p p, searched in expanding rings;
  /// nullopt when the whole grid is blocked.  Pins sit on cell boundaries,
  /// which rasterize as routable, so the ring search almost always stops at
  /// distance zero or one.
  [[nodiscard]] std::optional<GridPoint> snap(const geom::Point& p) const;

 private:
  [[nodiscard]] std::size_t flat(GridPoint g) const noexcept {
    return static_cast<std::size_t>(g.iy) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(g.ix);
  }

  geom::Point origin_;
  geom::Coord pitch_ = 1;
  std::int32_t nx_ = 0;
  std::int32_t ny_ = 0;
  std::vector<std::uint8_t> blocked_;
};

}  // namespace gcr::grid

template <>
struct std::hash<gcr::grid::GridPoint> {
  std::size_t operator()(const gcr::grid::GridPoint& g) const noexcept {
    return (static_cast<std::size_t>(static_cast<std::uint32_t>(g.ix)) << 32) ^
           static_cast<std::uint32_t>(g.iy);
  }
};
