#include "hightower/hightower.hpp"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

namespace gcr::hightower {

using geom::Axis;
using geom::Coord;
using geom::Dir;
using geom::Point;
using geom::Segment;

namespace {

/// An escape line: a maximal free segment plus the point on its parent line
/// it was erected through (for path back-tracing).
struct Line {
  Segment seg;
  int parent = -1;
  Point via;  // on both this line and its parent (== the origin for roots)
};

struct Side {
  std::vector<Line> lines;
  Point origin;
  int active = -1;   // index of the line currently being escaped from
  bool stuck = false;
};

struct VisitKey {
  Point p;
  Axis axis;
  bool operator==(const VisitKey&) const = default;
};

struct VisitHash {
  std::size_t operator()(const VisitKey& k) const noexcept {
    return std::hash<Point>{}(k.p) * 2 + static_cast<std::size_t>(k.axis);
  }
};

Segment maximal_line(const spatial::ObstacleIndex& idx, const Point& p,
                     Axis axis) {
  if (axis == Axis::kX) {
    const Coord w = idx.trace(p, Dir::kWest).stop;
    const Coord e = idx.trace(p, Dir::kEast).stop;
    return Segment{Point{w, p.y}, Point{e, p.y}};
  }
  const Coord s = idx.trace(p, Dir::kSouth).stop;
  const Coord n = idx.trace(p, Dir::kNorth).stop;
  return Segment{Point{p.x, s}, Point{p.x, n}};
}

/// Walks from \p meet back along one side's via chain to its origin.
std::vector<Point> trace_back(const Side& side, int line_idx, Point meet) {
  std::vector<Point> pts{meet};
  int cur = line_idx;
  while (cur >= 0) {
    const Line& ln = side.lines[static_cast<std::size_t>(cur)];
    if (pts.back() != ln.via) pts.push_back(ln.via);
    cur = ln.parent;
  }
  if (pts.back() != side.origin) pts.push_back(side.origin);
  return pts;
}

}  // namespace

HightowerResult HightowerRouter::route(const Point& from, const Point& to,
                                       std::size_t max_lines) const {
  HightowerResult out;
  if (!obstacles_.routable(from) || !obstacles_.routable(to)) return out;

  Side src, dst;
  src.origin = from;
  dst.origin = to;
  std::unordered_set<VisitKey, VisitHash> visited;

  const auto erect = [&](Side& side, const Point& at, Axis axis, int parent) {
    if (!visited.insert(VisitKey{at, axis}).second) return -1;
    side.lines.push_back(Line{maximal_line(obstacles_, at, axis), parent, at});
    ++out.lines_used;
    return static_cast<int>(side.lines.size() - 1);
  };

  // Hightower starts each side with the horizontal and vertical lines
  // through the terminal.
  erect(src, from, Axis::kX, -1);
  erect(src, from, Axis::kY, -1);
  erect(dst, to, Axis::kX, -1);
  erect(dst, to, Axis::kY, -1);
  src.active = static_cast<int>(src.lines.size()) - 1;
  dst.active = static_cast<int>(dst.lines.size()) - 1;

  const auto check_meet = [&](const Side& a, const Side& b)
      -> std::optional<std::vector<Point>> {
    for (std::size_t i = 0; i < a.lines.size(); ++i) {
      for (std::size_t j = 0; j < b.lines.size(); ++j) {
        const auto x = a.lines[i].seg.crossing(b.lines[j].seg);
        if (!x) continue;
        // Assemble source-side path + reversed target-side path.
        std::vector<Point> sa =
            trace_back(a, static_cast<int>(i), *x);
        std::reverse(sa.begin(), sa.end());  // origin .. meet
        const std::vector<Point> sb = trace_back(b, static_cast<int>(j), *x);
        sa.insert(sa.end(), sb.begin() + 1, sb.end());  // meet .. other origin
        return sa;
      }
    }
    return std::nullopt;
  };

  const auto finish = [&](std::vector<Point> path, bool reversed) {
    if (reversed) std::reverse(path.begin(), path.end());
    out.found = true;
    geom::Cost len = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      len += manhattan(path[i], path[i + 1]);
    }
    out.length = len;
    out.path = std::move(path);
  };

  if (const auto p = check_meet(src, dst)) {
    finish(std::move(*p), false);
    return out;
  }

  // Greedy single-escape-line expansion: from the active line, erect one
  // perpendicular line at the endpoint nearest the other terminal.  No
  // backtracking beyond trying the second endpoint — Hightower's
  // incompleteness in its purest form.
  const auto expand = [&](Side& side, const Point& toward) -> int {
    while (side.active >= 0) {
      const Line& ln = side.lines[static_cast<std::size_t>(side.active)];
      const Axis perp = other(ln.seg.axis());
      Point e1 = ln.seg.a;
      Point e2 = ln.seg.b;
      if (manhattan(e2, toward) < manhattan(e1, toward)) std::swap(e1, e2);
      for (const Point& at : {e1, e2}) {
        const int idx = erect(side, at, perp, side.active);
        if (idx >= 0) return idx;
      }
      // Both endpoints exhausted: retreat to the parent line.
      side.active = ln.parent;
    }
    side.stuck = true;
    return -1;
  };

  while ((!src.stuck || !dst.stuck) &&
         src.lines.size() < max_lines && dst.lines.size() < max_lines) {
    // Expand source side, then target side, checking for a meeting after
    // each new line.
    const int si = src.stuck ? -1 : expand(src, to);
    if (si >= 0) {
      src.active = si;
      if (const auto p = check_meet(src, dst)) {
        finish(std::move(*p), false);
        return out;
      }
    }
    const int di = dst.stuck ? -1 : expand(dst, from);
    if (di >= 0) {
      dst.active = di;
      if (const auto p = check_meet(dst, src)) {
        finish(std::move(*p), true);
        return out;
      }
    }
    if (si < 0 && di < 0) break;
  }
  return out;
}

}  // namespace gcr::hightower
