#pragma once

#include <cstddef>
#include <vector>

#include "geometry/geometry.hpp"
#include "spatial/obstacle_index.hpp"

/// \file hightower.hpp
/// The Hightower (1969) line-probe router, implemented as the paper's
/// historical baseline.
///
/// "In 1969 David Hightower proposed using line segments as the
/// representation instead of a large grid of points and this greatly
/// improved the efficiency of the algorithm but caused it to fail to find
/// some connections which could be found by a Lee-Moore router.  As a
/// result, some routers use Hightower's algorithm for a quick first try,
/// and if it fails, then the full power of the Lee-Moore maze search
/// algorithm is used."
///
/// This implementation follows Hightower's single-escape-line discipline:
/// both endpoints grow escape-line trees one perpendicular line at a time,
/// each erected at a greedily chosen escape point, until a line from one
/// side crosses a line from the other.  The greedy, non-backtracking choice
/// is exactly what makes the algorithm incomplete — benchmark E5 measures
/// its failure rate against the admissible searches.

namespace gcr::hightower {

struct HightowerResult {
  bool found = false;
  /// Bend polyline from source to target when found.
  std::vector<geom::Point> path;
  /// Rectilinear length of the path (not necessarily minimal).
  geom::Cost length = 0;
  /// Escape lines erected before success/failure — the effort metric.
  std::size_t lines_used = 0;
};

class HightowerRouter {
 public:
  explicit HightowerRouter(const spatial::ObstacleIndex& obstacles)
      : obstacles_(obstacles) {}

  /// Attempts a two-point connection, erecting at most \p max_lines escape
  /// lines per side before giving up.
  [[nodiscard]] HightowerResult route(const geom::Point& from,
                                      const geom::Point& to,
                                      std::size_t max_lines = 64) const;

 private:
  const spatial::ObstacleIndex& obstacles_;
};

}  // namespace gcr::hightower
