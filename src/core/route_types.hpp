#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "geometry/geometry.hpp"
#include "search/stats.hpp"

/// \file route_types.hpp
/// Value types shared by the gridless router, the Steiner net builder, and
/// the netlist driver.

namespace gcr::route {

/// All internal path costs are lengths scaled by this factor, so that
/// sub-length-quantum penalties (the paper's epsilon for the inverted
/// corner: "if a small number, e, is added to the cost of the non-preferred
/// route") are representable in integer arithmetic.  Any penalty in
/// [1, kCostScale) breaks ties without ever overriding a real length
/// difference.
inline constexpr geom::Cost kCostScale = 64;

/// Sentinel direction for "no incoming probe" (start states).
inline constexpr std::uint8_t kNoDir = 4;

/// A search state of the gridless line search: a point of the routing plane
/// plus the direction the probe arrived from.  Direction is part of the
/// state so that corner-dependent costs (bend and inverted-corner penalties)
/// remain well-defined edge weights, keeping A* admissible.
struct RouteState {
  geom::Point p;
  std::uint8_t in_dir = kNoDir;  ///< geom::Dir value, or kNoDir at a start

  friend constexpr auto operator<=>(const RouteState&, const RouteState&) =
      default;
};

/// A completed point-to-point (or set-to-set) connection.
struct Route {
  bool found = false;
  /// Total scaled cost (length * kCostScale + penalties).
  geom::Cost cost = 0;
  /// Pure rectilinear wirelength in database units.
  geom::Cost length = 0;
  /// Bend-point polyline from source to target (colinear runs compressed).
  std::vector<geom::Point> points;
  search::SearchStats stats;

  /// The polyline as axis-parallel segments.
  [[nodiscard]] std::vector<geom::Segment> segments() const {
    std::vector<geom::Segment> out;
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
      out.emplace_back(points[i], points[i + 1]);
    }
    return out;
  }

  [[nodiscard]] std::size_t bend_count() const noexcept {
    return points.size() > 2 ? points.size() - 2 : 0;
  }
};

/// A routed multi-terminal net: the union of tree segments plus bookkeeping.
struct NetRoute {
  bool ok = false;
  /// Tree wire segments (one polyline per terminal connection, concatenated).
  std::vector<geom::Segment> segments;
  /// Total tree wirelength in DBU.
  geom::Cost wirelength = 0;
  /// Per-connection routes in the order terminals joined the tree.
  std::vector<Route> connections;
  /// Aggregate search statistics over all connections.
  search::SearchStats stats;
};

}  // namespace gcr::route

template <>
struct std::hash<gcr::route::RouteState> {
  std::size_t operator()(const gcr::route::RouteState& s) const noexcept {
    return std::hash<gcr::geom::Point>{}(s.p) * 31u + s.in_dir;
  }
};
