#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "congestion/congestion_map.hpp"
#include "core/netlist_router.hpp"
#include "layout/layout.hpp"

/// \file optimize.hpp
/// Iterated rip-up-and-reroute — the quality engine built on PR 5's cheap
/// per-net removal.
///
/// The paper's escape hatch for congestion — "a second route of the
/// affected nets could penalize those paths which chose the congested
/// area" — is a *one-shot* second pass in src/congestion/two_pass.  This
/// driver iterates it, PathFinder-style (McMurchie & Ebeling, FPGA'95):
///
///   1. Route the whole netlist sequentially (keyed commits, so every net
///      can be ripped back out).
///   2. Score committed nets by detour ratio (wirelength over the Manhattan
///      lower bound of the terminal bounding box) and by how many congested
///      passages they cross.
///   3. Rip the worst offenders out via SearchEnvironment::remove_route —
///      O(affected geometry) each, never a rebuild — and re-route them
///      through a HistoryCost model whose per-passage penalty is the
///      present overuse multiplied up by the overuse *history* accumulated
///      across iterations (all terms >= 0, so A* stays admissible).
///   4. Accept a re-route only if it is no longer and crosses no more
///      congested passages than the route it replaces; restore the old
///      route otherwise.  If a whole pass still fails to hold the line on
///      (wirelength, overflow) — possible when independently-improved nets
///      pile into the same fresh passage — the pass is rolled back
///      wholesale.  Total wirelength and total passage overflow are
///      therefore *non-increasing, pass over pass*, by construction.
///   5. Repeat until a pass changes nothing (converged), the pass cap is
///      reached, or the time budget / deadline / cancel token fires —
///      budget expiry is not an error: the current best routing is
///      returned, so a client buys quality with latency.
///
/// Nets that failed to route in pass 1 committed no wire and are left
/// alone: recovering them would *raise* total wirelength, and this engine's
/// contract is monotone improvement of the routed set.

namespace gcr::route {

struct OptimizePassStats {
  std::size_t pass = 0;  ///< 1-based; pass 1 is the initial sequential route
  geom::Cost wirelength = 0;    ///< total over routed nets after this pass
  std::size_t overflow = 0;     ///< total passage overflow after this pass
  std::size_t routed = 0;
  std::size_t failed = 0;
  std::size_t ripped = 0;       ///< nets ripped up this pass
  std::size_t improved = 0;     ///< rip-ups whose new route was accepted
};

/// Per-pass progress hook.  Invoked after every completed pass (including
/// pass 1) from whatever thread runs the optimizer; the serving layer
/// streams these as `PASS` reply lines.  Must not throw.
using OptimizeProgress = std::function<void(const OptimizePassStats&)>;

struct OptimizeOptions {
  SteinerOptions steiner;
  /// Wire-spacing halo for committed segments (see NetlistOptions).
  geom::Coord wire_halo = 1;
  congestion::PassageOptions passages;
  /// Optimization passes after the initial route (pass cap).
  std::size_t max_passes = 8;
  /// Wall-clock budget for the whole run; zero = unbounded.  Checked at
  /// pass boundaries — an in-flight pass runs to completion.
  std::chrono::milliseconds budget{0};
  /// Absolute deadline (the serving layer's deadline_ms); default = none.
  std::chrono::steady_clock::time_point deadline{};
  /// Cooperative cancel, checked at pass boundaries (client disconnect).
  std::shared_ptr<std::atomic<bool>> cancel;
  OptimizeProgress progress;
  /// Present-cost per unit of passage overflow, in DBU of equivalent wire
  /// per crossing (scaled by kCostScale internally).
  geom::Cost present_penalty_dbu = 8;
  /// Residual history charge per unit of accumulated overuse, in DBU.
  geom::Cost history_penalty_dbu = 2;
  /// Rip at most this fraction of the routed nets per pass...
  double rip_fraction = 0.25;
  /// ...and never more than this many.
  std::size_t max_rip = 64;
  /// Detour-ratio floor for congestion-free candidates: nets whose route is
  /// at most this factor over their Manhattan lower bound are left alone
  /// unless they cross a congested passage.
  double detour_threshold = 1.05;
};

struct OptimizeReport {
  /// Final routing (same shape as NetlistRouter::route_all's result);
  /// `stats` accumulates every search performed across all passes.
  NetlistResult result;
  /// One entry per completed pass, pass 1 first.  `wirelength` and
  /// `overflow` are non-increasing down this vector.
  std::vector<OptimizePassStats> passes;
  /// True when iteration stopped because a pass changed nothing (as opposed
  /// to hitting the pass cap, budget, deadline, or cancel).
  bool converged = false;
  /// True when the cancel token stopped iteration early.
  bool cancelled = false;
  [[nodiscard]] std::size_t final_overflow() const noexcept {
    return passes.empty() ? 0 : passes.back().overflow;
  }
};

/// Detour ratio of a routed net: wirelength over the half-perimeter of its
/// terminals' bounding box (the Manhattan lower bound for connecting them).
/// A net whose terminals are coincident has a zero lower bound; its ratio
/// is *defined as 1.0* (no detour) so degenerate nets are never selected
/// for rip-up and never divide by zero.  Unrouted nets also score 1.0.
[[nodiscard]] double detour_ratio(const layout::Layout& lay,
                                  const layout::Net& net, const NetRoute& nr);

class Optimizer {
 public:
  /// Independent per-call environments, like NetlistRouter.
  explicit Optimizer(const layout::Layout& lay) : layout_(lay) {}

  /// Injects a prebuilt environment (the serving layer's cached session):
  /// the run starts from a *copy* of \p env — plain vector duplication, no
  /// index or escape-line construction.  \p env must match \p lay's
  /// placement, hold no committed halos, and outlive the optimizer.
  Optimizer(const layout::Layout& lay, const SearchEnvironment& env)
      : layout_(lay), env_(&env) {}

  [[nodiscard]] OptimizeReport run(const OptimizeOptions& opts = {}) const;

 private:
  const layout::Layout& layout_;
  const SearchEnvironment* env_ = nullptr;
};

}  // namespace gcr::route
