#pragma once

#include <vector>

#include "core/gridless_router.hpp"
#include "core/route_types.hpp"
#include "layout/layout.hpp"

/// \file steiner.hpp
/// Multi-terminal net construction.
///
/// "Multi-terminal nets are accommodated by approximating a Steiner tree
/// with an adaptation of Dijkstra's minimum spanning tree algorithm.  The
/// modification of the spanning tree algorithm considers all line segments
/// in the spanning tree being built as potential connection points."
///
/// The builder grows a tree Prim-style: at each step a multi-source
/// multi-target A* runs from the *connected set* — every pin already in the
/// tree plus every point of every tree segment — to the pins of all
/// yet-unconnected terminals, and the cheapest connection joins the tree.
/// "Multi-pin terminals are handled by logically grouping all pins which
/// belong to a terminal": when a terminal connects, all of its pins enter
/// the connected set.

namespace gcr::route {

struct SteinerOptions {
  RouteOptions route;
  /// The paper's modification: tree segments are legal connection points.
  /// false = classic spanning tree over pins only (the ablation baseline).
  bool connect_to_segments = true;
};

class SteinerNetRouter {
 public:
  SteinerNetRouter(const spatial::ObstacleIndex& obstacles,
                   const spatial::EscapeLineSet& lines,
                   const CostModel* cost = nullptr)
      : router_(obstacles, lines, cost), lines_(lines) {}

  /// Routes a net given its terminals as pin-position lists.  The first
  /// terminal seeds the tree; terminals then join in cheapest-connection
  /// order.  On failure (some terminal unreachable) `ok` is false and the
  /// partial tree is returned.
  [[nodiscard]] NetRoute route_terminals(
      const std::vector<std::vector<geom::Point>>& terminals,
      const SteinerOptions& opts = {}) const;

  /// Convenience: resolve a layout net's terminal references and route it.
  [[nodiscard]] NetRoute route_net(const layout::Layout& lay,
                                   const layout::Net& net,
                                   const SteinerOptions& opts = {}) const;

  [[nodiscard]] const GridlessRouter& router() const noexcept {
    return router_;
  }

 private:
  /// Reusable workspace for one route_terminals call: connection_points
  /// used to rebuild a dedup hash set, a source vector, and a goal vector
  /// on *every* tree-growth step, and those steps are the hot path of
  /// every multi-terminal net (and, via the serving layer, of every
  /// request).  Carrying the buffers across steps keeps their capacity
  /// instead of reallocating per step.  Local to each call, so the router
  /// itself stays const-shared across the batch driver's threads.
  struct ConnectScratch {
    std::vector<geom::Point> sources;
    std::vector<geom::Point> goals;
  };

  /// The finite realization of "all line segments are potential connection
  /// points": pins already connected, segment endpoints, escape-line
  /// crossings on each segment, and each goal pin's perpendicular
  /// projection onto each segment.  Fills \p scratch.sources (sorted for
  /// deterministic seeding) from \p scratch.goals and the tree.
  void connection_points(ConnectScratch& scratch,
                         const std::vector<geom::Point>& connected_pins,
                         const std::vector<geom::Segment>& tree,
                         bool segments_allowed) const;

  GridlessRouter router_;
  const spatial::EscapeLineSet& lines_;
};

/// Resolves every pin position of a net's terminals (cell terminals and pad
/// terminals alike).
[[nodiscard]] std::vector<std::vector<geom::Point>> net_terminal_pins(
    const layout::Layout& lay, const layout::Net& net);

}  // namespace gcr::route
