#pragma once

#include <cstddef>

#include "layout/layout.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"

/// \file search_environment.hpp
/// The immutable per-layout search state shared by every independent-mode
/// net: the obstacle index over the placed cells and the escape-line set
/// derived from it.
///
/// The paper's independent-routing scheme fixes the obstacle set for the
/// whole netlist ("the only obstacles are the cells"), so this environment
/// is built once per *layout*, not once per routing call — the serving
/// layer caches it inside a layout session and reuses it across requests,
/// amortizing the dominant setup cost (EscapeLineSet construction) over
/// arbitrarily many route requests.

namespace gcr::route {

/// Read-only after construction; safe to share across threads.
class SearchEnvironment {
 public:
  /// Builds the index and escape lines for \p lay's current placement.  The
  /// environment copies what it needs; it does not retain a reference to
  /// \p lay, but it also does not track later mutations of the layout.
  explicit SearchEnvironment(const layout::Layout& lay);

  [[nodiscard]] const spatial::ObstacleIndex& index() const noexcept {
    return index_;
  }
  [[nodiscard]] const spatial::EscapeLineSet& lines() const noexcept {
    return lines_;
  }

  /// Process-wide count of environments ever constructed.  Exists so tests
  /// can assert that a session-cache hit really skipped ObstacleIndex and
  /// EscapeLineSet construction (the serving layer's whole reason to exist).
  [[nodiscard]] static std::size_t build_count() noexcept;

 private:
  spatial::ObstacleIndex index_;
  spatial::EscapeLineSet lines_;
};

}  // namespace gcr::route
