#pragma once

#include <cstddef>
#include <vector>

#include "layout/layout.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"

/// \file search_environment.hpp
/// The per-layout search state shared by every independent-mode net — the
/// obstacle index over the placed cells and the escape-line set derived from
/// it — now *incrementally updatable* so sequential-mode routing can reuse
/// it too.
///
/// The paper's independent-routing scheme fixes the obstacle set for the
/// whole netlist ("the only obstacles are the cells"), so this environment
/// is built once per *layout*, not once per routing call — the serving
/// layer caches it inside a layout session and reuses it across requests,
/// amortizing the dominant setup cost (EscapeLineSet construction) over
/// arbitrarily many route requests.
///
/// Sequential-mode routing adds each routed net's wire halos to the
/// obstacle set.  `commit_route` applies that as a *local* update — a
/// spatial-bucket insert into the index plus localized escape-line
/// regeneration around the new geometry — instead of rebuilding both
/// structures from scratch per net.  The incremental state is exactly
/// equivalent to a from-scratch build over the same obstacles (the
/// differential tests prove bit-identical routes).  For non-local edits
/// (placement changes, obstacle removal) there is no incremental path:
/// call `rebuild` to invalidate and reconstruct.

namespace gcr::route {

/// Read-only use is safe to share across threads.  Mutation (`commit_route`,
/// `rebuild`) requires exclusive access; sequential-mode routing therefore
/// copies a shared environment before committing into it — a copy is plain
/// vector duplication, far cheaper than a build (and it does not count as
/// one in `build_count`).
class SearchEnvironment {
 public:
  /// Builds the index and escape lines for \p lay's current placement.  The
  /// environment copies what it needs; it does not retain a reference to
  /// \p lay, but it also does not track later mutations of the layout (see
  /// `rebuild`).
  explicit SearchEnvironment(const layout::Layout& lay);

  [[nodiscard]] const spatial::ObstacleIndex& index() const noexcept {
    return index_;
  }
  [[nodiscard]] const spatial::EscapeLineSet& lines() const noexcept {
    return lines_;
  }

  /// Commits a routed net: every segment, inflated by \p halo (the minimum
  /// wire spacing), joins the obstacle set via incremental insertion —
  /// O(affected geometry), not O(full rebuild).  Equivalent to rebuilding
  /// the environment over the extended obstacle list.
  void commit_route(const std::vector<geom::Segment>& segments,
                    geom::Coord halo);

  /// Obstacles committed on top of the base layout (wire halos).
  [[nodiscard]] std::size_t committed() const noexcept {
    return index_.size() - base_obstacles_;
  }

  /// Invalidate-and-rebuild fallback for non-local edits: reconstructs both
  /// structures from scratch over the *current* obstacle set (base cells +
  /// committed halos).  Also re-derives the bucket-grid resolution, which
  /// incremental inserts leave fixed.  Counts as a build.
  void rebuild();

  /// Rebuild against a new placement: discards every committed halo and all
  /// incremental state.  Counts as a build.
  void rebuild(const layout::Layout& lay);

  /// Process-wide count of environments ever constructed or rebuilt.  Exists
  /// so tests can assert that a session-cache hit really skipped
  /// ObstacleIndex and EscapeLineSet construction, and that sequential-mode
  /// incremental commits never degenerate into rebuilds.
  [[nodiscard]] static std::size_t build_count() noexcept;

 private:
  spatial::ObstacleIndex index_;
  spatial::EscapeLineSet lines_;
  std::size_t base_obstacles_ = 0;
};

}  // namespace gcr::route
