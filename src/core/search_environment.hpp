#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "layout/layout.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"

/// \file search_environment.hpp
/// The per-layout search state shared by every independent-mode net — the
/// obstacle index over the placed cells and the escape-line set derived from
/// it — now *incrementally updatable in both directions* so sequential-mode
/// routing and rip-up-and-reroute can reuse it too.
///
/// The paper's independent-routing scheme fixes the obstacle set for the
/// whole netlist ("the only obstacles are the cells"), so this environment
/// is built once per *layout*, not once per routing call — the serving
/// layer caches it inside a layout session and reuses it across requests,
/// amortizing the dominant setup cost (EscapeLineSet construction) over
/// arbitrarily many route requests.
///
/// Sequential-mode routing adds each routed net's wire halos to the
/// obstacle set.  `commit_route` applies that as a *local* update — a
/// spatial-bucket insert into the index plus localized escape-line
/// regeneration around the new geometry — instead of rebuilding both
/// structures from scratch per net.  `remove_route` is the inverse: it
/// tombstones a committed net's halos and re-extends only the escape lines
/// they had clipped, so ripping a net up for re-routing costs O(affected
/// geometry) rather than a full rebuild (tombstones are compacted away
/// periodically so rip-up cycles keep the tables bounded).  Both
/// incremental paths are exactly equivalent to a from-scratch build over
/// the same live obstacles (the differential tests prove bit-identical
/// routes).  For edits with no incremental path (placement changes), call
/// `rebuild` to invalidate and reconstruct.
///
/// Exception safety: a throw from inside `commit_route`/`remove_route`
/// (allocation, most plausibly) can leave the index and line set
/// half-spliced.  Both operations therefore flag the environment invalid
/// for their duration; on a throw the flag sticks, and the next accessor
/// *or mutator* call repairs the environment with a full `rebuild()` first
/// — a query can observe a coherent (possibly partially-updated) obstacle
/// set, never a torn index, and a retried mutation never splices into
/// structures that are out of step with each other.

namespace gcr::route {

/// Read-only use is safe to share across threads: a shared environment is
/// only ever in the valid state, so the accessors' lazy-repair path (see
/// file comment) cannot run on it.  Mutation (`commit_route`,
/// `remove_route`, `rebuild`) requires exclusive access; sequential-mode
/// routing therefore copies a shared environment before committing into it
/// — a copy is plain vector duplication, far cheaper than a build (and it
/// does not count as one in `build_count`).
class SearchEnvironment {
 public:
  /// Builds the index and escape lines for \p lay's current placement.  The
  /// environment copies what it needs; it does not retain a reference to
  /// \p lay, but it also does not track later mutations of the layout (see
  /// `rebuild`).
  explicit SearchEnvironment(const layout::Layout& lay);

  /// Accessors repair an invalidated environment (failed update) with a
  /// full rebuild before answering — hence not noexcept.
  [[nodiscard]] const spatial::ObstacleIndex& index() const {
    if (invalid_) repair();
    return index_;
  }
  [[nodiscard]] const spatial::EscapeLineSet& lines() const {
    if (invalid_) repair();
    return lines_;
  }

  /// Commits a routed net: every segment, inflated by \p halo (the minimum
  /// wire spacing), joins the obstacle set via incremental insertion —
  /// O(affected geometry), not O(full rebuild).  Equivalent to rebuilding
  /// the environment over the extended obstacle list.  This form is
  /// anonymous: the halos cannot be ripped up again except via
  /// `rebuild(layout)`.
  void commit_route(const std::vector<geom::Segment>& segments,
                    geom::Coord halo);

  /// Keyed form: same incremental commit, but the halos are recorded under
  /// \p net_id so `remove_route(net_id)` can rip them back out.
  /// Re-committing an id that is still committed throws
  /// std::invalid_argument (rip it up first).
  void commit_route(std::size_t net_id,
                    const std::vector<geom::Segment>& segments,
                    geom::Coord halo);

  /// Rips up the net committed under \p net_id: its halos are tombstoned in
  /// the index and the escape lines they clipped are re-extended — both
  /// O(affected geometry).  Exactly equivalent to rebuilding the
  /// environment over the remaining live obstacles.  Returns false (and
  /// does nothing) when nothing is committed under \p net_id.  Triggers a
  /// coordinated compaction of the tombstoned tables once enough removals
  /// have accumulated, so rip-up cycles keep memory and query cost bounded.
  bool remove_route(std::size_t net_id);

  /// Live obstacles committed on top of the base layout (wire halos).
  [[nodiscard]] std::size_t committed() const noexcept {
    return index_.live_size() - base_obstacles_;
  }

  /// The keyed commit records (net id -> obstacle slots in `index()`), in
  /// net-id order — the snapshot encoder's view of what `remove_route`
  /// could still rip up.  Slots may reference tombstoned obstacles only
  /// after a failed update; a valid environment's records are all live.
  [[nodiscard]] const std::map<std::size_t, std::vector<std::size_t>>&
  committed_records() const noexcept {
    return committed_by_net_;
  }

  /// Rehydrates an environment from serialized parts (snapshot restore).
  /// \p index must hold the base obstacles first (the first
  /// \p base_obstacles slots) followed by committed wire halos, with no
  /// tombstones; \p lines must be the matching escape-line set; \p
  /// committed maps net ids to their obstacle slots.  Unlike the building
  /// constructor and `rebuild`, this performs no tracing and does NOT
  /// count toward `build_count` — the whole point of a snapshot is that a
  /// restart skips the build.
  [[nodiscard]] static SearchEnvironment restore(
      spatial::ObstacleIndex index, spatial::EscapeLineSet lines,
      std::size_t base_obstacles,
      std::map<std::size_t, std::vector<std::size_t>> committed);

  /// False after `commit_route`/`remove_route` threw mid-update: queries
  /// would repair via rebuild() first (see file comment).
  [[nodiscard]] bool valid() const noexcept { return !invalid_; }

  /// Invalidate-and-rebuild fallback: reconstructs both structures from
  /// scratch over the *current* live obstacle set (base cells + committed
  /// halos), erasing accumulated tombstones and re-deriving the bucket-grid
  /// resolution.  Keyed commit records survive (renumbered).  Counts as a
  /// build.
  void rebuild();

  /// Rebuild against a new placement: discards every committed halo and all
  /// incremental state.  Counts as a build.
  void rebuild(const layout::Layout& lay);

  /// Process-wide count of environments ever constructed or rebuilt.  Exists
  /// so tests can assert that a session-cache hit really skipped
  /// ObstacleIndex and EscapeLineSet construction, and that sequential-mode
  /// incremental commits never degenerate into rebuilds.
  [[nodiscard]] static std::size_t build_count() noexcept;

  /// Test seam for the exception-safety contract: the next
  /// `commit_route`/`remove_route` on any environment throws mid-update
  /// (after part of the splice has been applied), as an allocation failure
  /// would.  One-shot; cleared when it fires.
  static void inject_update_fault_for_tests() noexcept;

 private:
  SearchEnvironment() = default;  ///< restore() fills the members in

  /// RAII guard around a multi-step splice: the environment reads as
  /// invalid while the update runs, and stays invalid if it throws.
  class UpdateGuard;

  void repair() const;  ///< rebuild() from a const accessor (exclusive access)
  void maybe_compact();
  static void check_injected_fault();

  spatial::ObstacleIndex index_;
  spatial::EscapeLineSet lines_;
  std::size_t base_obstacles_ = 0;
  bool invalid_ = false;
  /// Obstacle indices of each keyed committed net, for remove_route.
  /// Renumbered in place when the index compacts.
  std::map<std::size_t, std::vector<std::size_t>> committed_by_net_;
};

}  // namespace gcr::route
