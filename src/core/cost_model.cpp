#include "core/cost_model.hpp"

#include <algorithm>

namespace gcr::route {

using geom::Dir;
using geom::Point;
using geom::Rect;
using geom::Segment;

bool on_obstacle_boundary(const spatial::ObstacleIndex& idx, const Point& p) {
  return std::any_of(
      idx.obstacles().begin(), idx.obstacles().end(),
      [&p](const Rect& r) { return r.on_boundary(p); });
}

geom::Cost BendCost::penalty(const EdgeContext& ctx) const {
  const bool bend =
      ctx.from.in_dir != kNoDir &&
      axis_of(static_cast<Dir>(ctx.from.in_dir)) != axis_of(ctx.move);
  return bend ? epsilon_ : 0;
}

geom::Cost InvertedCornerCost::penalty(const EdgeContext& ctx) const {
  const bool bend =
      ctx.from.in_dir != kNoDir &&
      axis_of(static_cast<Dir>(ctx.from.in_dir)) != axis_of(ctx.move);
  if (!bend) return 0;
  // A bend hugging a cell is preferred; a floating bend is the inverted
  // corner's signature and pays epsilon.
  return on_obstacle_boundary(ctx.obstacles, ctx.from.p) ? 0 : epsilon_;
}

geom::Cost RegionPenaltyCost::penalty(const EdgeContext& ctx) const {
  const Segment edge{ctx.from.p, ctx.to};
  geom::Cost sum = 0;
  for (const Region& r : regions_) {
    // Closed intersection: running along a congested passage's rim counts.
    if (edge.bounds().intersects(r.area)) sum += r.weight;
  }
  return sum;
}

geom::Cost HistoryCost::penalty(const EdgeContext& ctx) const {
  const Segment edge{ctx.from.p, ctx.to};
  geom::Cost sum = 0;
  for (const Region& r : regions_) {
    // Closed intersection, like RegionPenaltyCost: running along a
    // congested passage's rim counts as using it.
    if (!edge.bounds().intersects(r.area)) continue;
    // History is clamped so a pathological run cannot overflow the scaled
    // cost arithmetic; 1024 iterations of sustained overuse is already far
    // past any practical convergence horizon.
    const geom::Cost h = std::min<geom::Cost>(r.history, 1024);
    sum += r.present * (1 + h) + history_base_ * h;
  }
  return sum;
}

}  // namespace gcr::route
