#include "core/search_environment.hpp"

#include <atomic>

namespace gcr::route {

namespace {
std::atomic<std::size_t> g_build_count{0};
}  // namespace

SearchEnvironment::SearchEnvironment(const layout::Layout& lay)
    : index_(lay.boundary(), lay.obstacles()),
      lines_(index_),
      base_obstacles_(index_.size()) {
  g_build_count.fetch_add(1, std::memory_order_relaxed);
}

void SearchEnvironment::commit_route(
    const std::vector<geom::Segment>& segments, geom::Coord halo) {
  for (const geom::Segment& s : segments) {
    index_.insert(s.bounds().inflated(halo));
    lines_.insert_obstacle(index_, index_.size() - 1);
  }
}

void SearchEnvironment::rebuild() {
  index_ = spatial::ObstacleIndex(index_.boundary(), index_.obstacles());
  lines_ = spatial::EscapeLineSet(index_);
  g_build_count.fetch_add(1, std::memory_order_relaxed);
}

void SearchEnvironment::rebuild(const layout::Layout& lay) {
  index_ = spatial::ObstacleIndex(lay.boundary(), lay.obstacles());
  lines_ = spatial::EscapeLineSet(index_);
  base_obstacles_ = index_.size();
  g_build_count.fetch_add(1, std::memory_order_relaxed);
}

std::size_t SearchEnvironment::build_count() noexcept {
  return g_build_count.load(std::memory_order_relaxed);
}

}  // namespace gcr::route
