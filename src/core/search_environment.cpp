#include "core/search_environment.hpp"

#include <atomic>

namespace gcr::route {

namespace {
std::atomic<std::size_t> g_build_count{0};
}  // namespace

SearchEnvironment::SearchEnvironment(const layout::Layout& lay)
    : index_(lay.boundary(), lay.obstacles()), lines_(index_) {
  g_build_count.fetch_add(1, std::memory_order_relaxed);
}

std::size_t SearchEnvironment::build_count() noexcept {
  return g_build_count.load(std::memory_order_relaxed);
}

}  // namespace gcr::route
