#include "core/search_environment.hpp"

#include <atomic>
#include <stdexcept>

namespace gcr::route {

namespace {
std::atomic<std::size_t> g_build_count{0};
std::atomic<bool> g_inject_update_fault{false};

/// Compaction policy: tombstones are cheap individually (a skipped table
/// entry) but rip-up cycles accumulate them without bound, so compact once
/// they are both numerous and a large fraction of the table.  The absolute
/// floor keeps small environments from compacting on every removal; the
/// ratio keeps query-side skip cost proportional to live work.
constexpr std::size_t kCompactMinDead = 16;

bool should_compact(const spatial::ObstacleIndex& index) {
  return index.dead_count() >= kCompactMinDead &&
         index.dead_count() * 2 >= index.size();
}

}  // namespace

/// Marks the environment invalid for the duration of a multi-step splice.
/// Destruction without disarm() — the throw path — leaves it invalid, so
/// the next accessor repairs with a rebuild instead of answering from a
/// half-spliced index.
class SearchEnvironment::UpdateGuard {
 public:
  explicit UpdateGuard(SearchEnvironment& env) : env_(env) {
    env_.invalid_ = true;
  }
  ~UpdateGuard() {
    if (completed_) env_.invalid_ = false;
  }
  void disarm() noexcept { completed_ = true; }

 private:
  SearchEnvironment& env_;
  bool completed_ = false;
};

SearchEnvironment::SearchEnvironment(const layout::Layout& lay)
    : index_(lay.boundary(), lay.obstacles()),
      lines_(index_),
      base_obstacles_(index_.size()) {
  g_build_count.fetch_add(1, std::memory_order_relaxed);
}

void SearchEnvironment::check_injected_fault() {
  if (g_inject_update_fault.exchange(false, std::memory_order_relaxed)) {
    throw std::runtime_error("injected SearchEnvironment update fault");
  }
}

void SearchEnvironment::inject_update_fault_for_tests() noexcept {
  g_inject_update_fault.store(true, std::memory_order_relaxed);
}

void SearchEnvironment::commit_route(
    const std::vector<geom::Segment>& segments, geom::Coord halo) {
  if (invalid_) rebuild();  // never splice into a half-updated structure
  UpdateGuard guard(*this);
  for (const geom::Segment& s : segments) {
    index_.insert(s.bounds().inflated(halo));
    check_injected_fault();
    lines_.insert_obstacle(index_, index_.size() - 1);
  }
  guard.disarm();
}

void SearchEnvironment::commit_route(std::size_t net_id,
                                     const std::vector<geom::Segment>& segments,
                                     geom::Coord halo) {
  if (committed_by_net_.count(net_id) != 0) {
    throw std::invalid_argument(
        "SearchEnvironment: net is already committed; remove_route it first");
  }
  if (invalid_) rebuild();  // never splice into a half-updated structure
  // Reserve the record up front: if a splice below throws, every obstacle
  // that made it into the index is on record, so a later remove_route or
  // the rebuild repair can still account for it.
  std::vector<std::size_t>& record = committed_by_net_[net_id];
  record.reserve(segments.size());
  UpdateGuard guard(*this);
  for (const geom::Segment& s : segments) {
    record.push_back(index_.size());
    index_.insert(s.bounds().inflated(halo));
    check_injected_fault();
    lines_.insert_obstacle(index_, index_.size() - 1);
  }
  guard.disarm();
}

bool SearchEnvironment::remove_route(std::size_t net_id) {
  // Repair before mutating: a retry directly after a failed update would
  // otherwise splice against structures that are out of step with each
  // other (e.g. a tombstoned obstacle whose line records were never
  // retired — the idempotent skip below would then silently leave them
  // live forever).  The rebuild also renumbers this net's record, so the
  // loop only ever sees coherent live indices.
  if (invalid_) rebuild();
  const auto it = committed_by_net_.find(net_id);
  if (it == committed_by_net_.end()) return false;
  UpdateGuard guard(*this);
  for (const std::size_t idx : it->second) {
    // Defensive: a record can only reference live obstacles here (see the
    // repair above), but remove() stays idempotent regardless.
    if (!index_.remove(idx)) continue;
    check_injected_fault();
    lines_.remove_obstacle(index_, idx);
  }
  committed_by_net_.erase(it);
  maybe_compact();
  guard.disarm();
  return true;
}

void SearchEnvironment::maybe_compact() {
  if (!should_compact(index_)) return;
  const std::vector<std::size_t> remap = index_.compact();
  lines_.compact(remap);
  for (auto& [net, record] : committed_by_net_) {
    for (std::size_t& idx : record) idx = remap[idx];
  }
}

void SearchEnvironment::repair() const {
  // Reached only after a failed mutation, which required exclusive access —
  // so exclusive access still holds and the const_cast rebuild is safe (a
  // *shared* environment is never invalid; see class comment).
  const_cast<SearchEnvironment*>(this)->rebuild();
}

void SearchEnvironment::rebuild() {
  // compact() doubles as the from-scratch rebuild: it erases tombstones,
  // renumbers survivors, re-sorts every table, and re-derives the bucket
  // grid; the line set is then rebuilt outright (after a failed update it
  // may be out of step with the index, so no incremental shortcut is
  // sound here).
  const std::vector<std::size_t> remap = index_.compact();
  lines_ = spatial::EscapeLineSet(index_);
  for (auto& [net, record] : committed_by_net_) {
    std::vector<std::size_t> renumbered;
    renumbered.reserve(record.size());
    for (const std::size_t idx : record) {
      // Drop entries that never made it into the index (a commit whose
      // insert itself threw) along with tombstoned ones.
      if (idx < remap.size() && remap[idx] != spatial::ObstacleIndex::npos) {
        renumbered.push_back(remap[idx]);
      }
    }
    record = std::move(renumbered);
  }
  invalid_ = false;
  g_build_count.fetch_add(1, std::memory_order_relaxed);
}

void SearchEnvironment::rebuild(const layout::Layout& lay) {
  index_ = spatial::ObstacleIndex(lay.boundary(), lay.obstacles());
  lines_ = spatial::EscapeLineSet(index_);
  base_obstacles_ = index_.size();
  committed_by_net_.clear();
  invalid_ = false;
  g_build_count.fetch_add(1, std::memory_order_relaxed);
}

SearchEnvironment SearchEnvironment::restore(
    spatial::ObstacleIndex index, spatial::EscapeLineSet lines,
    std::size_t base_obstacles,
    std::map<std::size_t, std::vector<std::size_t>> committed) {
  if (base_obstacles > index.size()) {
    throw std::invalid_argument(
        "SearchEnvironment::restore: base obstacle count exceeds the index");
  }
  for (const auto& [net, record] : committed) {
    for (const std::size_t slot : record) {
      if (slot >= index.size() || slot < base_obstacles) {
        throw std::invalid_argument(
            "SearchEnvironment::restore: commit record references an "
            "obstacle outside the committed range");
      }
    }
  }
  SearchEnvironment env;
  env.index_ = std::move(index);
  env.lines_ = std::move(lines);
  env.base_obstacles_ = base_obstacles;
  env.committed_by_net_ = std::move(committed);
  // No g_build_count bump: nothing was traced or sorted from scratch —
  // that is the restore path's contract (tests assert it).
  return env;
}

std::size_t SearchEnvironment::build_count() noexcept {
  return g_build_count.load(std::memory_order_relaxed);
}

}  // namespace gcr::route
