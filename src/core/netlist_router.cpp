#include "core/netlist_router.hpp"

#include <numeric>

namespace gcr::route {

using geom::Rect;
using geom::Segment;

namespace {

std::vector<std::size_t> resolve_order(const NetlistOptions& opts,
                                       std::size_t n) {
  if (!opts.order.empty()) {
    assert(opts.order.size() == n && "order must cover every net");
    return opts.order;
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

void account(NetlistResult& result, std::size_t net_idx, NetRoute nr) {
  result.stats += nr.stats;
  if (nr.ok) {
    ++result.routed;
    result.total_wirelength += nr.wirelength;
  } else {
    ++result.failed;
  }
  result.routes[net_idx] = std::move(nr);
}

}  // namespace

NetlistResult NetlistRouter::route_all(const NetlistOptions& opts) const {
  return opts.mode == NetlistMode::kIndependent ? route_independent(opts)
                                                : route_sequential(opts);
}

NetlistResult NetlistRouter::route_independent(
    const NetlistOptions& opts) const {
  NetlistResult result;
  result.routes.resize(layout_.nets().size());

  // One obstacle index and one escape-line set serve every net: the whole
  // point of independent routing is that the search environment is fixed.
  const spatial::ObstacleIndex index(layout_.boundary(), layout_.obstacles());
  const spatial::EscapeLineSet lines(index);
  const SteinerNetRouter net_router(index, lines, cost_);

  for (const std::size_t i : resolve_order(opts, layout_.nets().size())) {
    account(result, i,
            net_router.route_net(layout_, layout_.nets()[i], opts.steiner));
  }
  return result;
}

NetlistResult NetlistRouter::route_sequential(
    const NetlistOptions& opts) const {
  NetlistResult result;
  result.routes.resize(layout_.nets().size());

  // Previously routed nets join the obstacle set (inflated by the wire
  // spacing halo), so the index and escape lines must be rebuilt per net —
  // part of the cost the paper's independent scheme avoids.
  std::vector<Rect> obstacles = layout_.obstacles();
  const std::size_t cell_obstacles = obstacles.size();

  for (const std::size_t i : resolve_order(opts, layout_.nets().size())) {
    const spatial::ObstacleIndex index(layout_.boundary(), obstacles);
    const spatial::EscapeLineSet lines(index);
    const SteinerNetRouter net_router(index, lines, cost_);

    // A net whose pins are swallowed by earlier wires' halos cannot route.
    bool pins_ok = true;
    for (const auto& pins :
         net_terminal_pins(layout_, layout_.nets()[i])) {
      for (const geom::Point& p : pins) {
        if (!index.routable(p)) pins_ok = false;
      }
    }
    NetRoute nr;
    if (pins_ok) {
      nr = net_router.route_net(layout_, layout_.nets()[i], opts.steiner);
    }
    if (nr.ok) {
      for (const Segment& s : nr.segments) {
        obstacles.push_back(s.bounds().inflated(opts.wire_halo));
      }
    }
    account(result, i, std::move(nr));
  }
  // Restore invariant for readers: obstacles beyond cell_obstacles are wires.
  (void)cell_obstacles;
  return result;
}

}  // namespace gcr::route
