#include "core/netlist_router.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <exception>
#include <mutex>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace gcr::route {

using geom::Rect;

namespace {

/// Validates NetlistOptions::reroute: unique in-range indices, sequential
/// mode only, exclusive with subset.  Returns the list (empty = no rip-up).
std::vector<std::size_t> resolve_reroute(const NetlistOptions& opts,
                                         std::size_t n) {
  if (opts.reroute.empty()) return {};
  if (opts.mode != NetlistMode::kSequential) {
    throw std::invalid_argument(
        "NetlistOptions: reroute requires sequential mode (independent "
        "routing has no net ordering to repair)");
  }
  if (!opts.subset.empty()) {
    throw std::invalid_argument(
        "NetlistOptions: reroute and subset are mutually exclusive (rip-up "
        "re-routes against the full committed remainder)");
  }
  std::vector<bool> seen(n, false);
  for (const std::size_t i : opts.reroute) {
    if (i >= n || seen[i]) {
      throw std::invalid_argument(
          "NetlistOptions::reroute entries must be unique net indices");
    }
    seen[i] = true;
  }
  return opts.reroute;
}

std::vector<std::size_t> resolve_order(const NetlistOptions& opts,
                                       std::size_t n) {
  if (!opts.subset.empty()) {
    // A subset request routes exactly the listed nets; accounting and (in
    // sequential mode) routing follow list order, so the list doubles as
    // the order and combining it with `order` would be ambiguous.
    if (!opts.order.empty()) {
      throw std::invalid_argument(
          "NetlistOptions: subset and order are mutually exclusive");
    }
    std::vector<bool> seen(n, false);
    for (const std::size_t i : opts.subset) {
      if (i >= n || seen[i]) {
        throw std::invalid_argument(
            "NetlistOptions::subset entries must be unique net indices");
      }
      seen[i] = true;
    }
    return opts.subset;
  }
  if (!opts.order.empty()) {
    // A non-permutation order would double-route some nets and skip others
    // — and with the parallel batch driver, a duplicate index would let two
    // workers write the same result slot (a data race).  Fail loudly in
    // every build type rather than relying on a debug-only assert.
    bool valid = opts.order.size() == n;
    if (valid) {
      std::vector<bool> seen(n, false);
      for (const std::size_t i : opts.order) {
        if (i >= n || seen[i]) {
          valid = false;
          break;
        }
        seen[i] = true;
      }
    }
    if (!valid) {
      throw std::invalid_argument(
          "NetlistOptions::order must be a permutation of every net index");
    }
    return opts.order;
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::size_t resolve_workers(unsigned requested, std::size_t jobs) {
  return std::min(resolve_worker_count(requested),
                  std::max<std::size_t>(jobs, 1));
}

/// Estimated routing effort of a net: the half-perimeter of its pins'
/// bounding box.  Search work grows with the spanned area, so this cheap
/// proxy is what the batch driver sorts by to schedule long nets first.
geom::Cost estimated_effort(const layout::Layout& lay,
                            const layout::Net& net) {
  std::optional<Rect> bbox;
  for (const auto& pins : net_terminal_pins(lay, net)) {
    for (const geom::Point& p : pins) {
      bbox = bbox ? bbox->hull(p) : Rect{p, p};
    }
  }
  return bbox ? bbox->half_perimeter() : 0;
}

/// Longest-first dispatch schedule for the batch driver.  A stable sort on
/// descending effort keeps ties in `order` order, so the schedule is
/// deterministic; results are unaffected either way because accounting
/// always replays the caller's `order`.
std::vector<std::size_t> effort_sorted(const layout::Layout& lay,
                                       const std::vector<std::size_t>& order) {
  std::vector<std::pair<geom::Cost, std::size_t>> keyed;
  keyed.reserve(order.size());
  for (const std::size_t i : order) {
    keyed.emplace_back(estimated_effort(lay, lay.nets()[i]), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::size_t> dispatch;
  dispatch.reserve(keyed.size());
  for (const auto& [effort, i] : keyed) dispatch.push_back(i);
  return dispatch;
}

/// Between-net stop check shared by every mode: cancel token first (the
/// cheap load), then the deadline.  Net routing dwarfs a Clock::now() call,
/// so checking per net costs nothing measurable.
bool stop_requested(const NetlistOptions& opts) {
  if (opts.cancel && opts.cancel->load(std::memory_order_relaxed)) {
    return true;
  }
  return opts.deadline != std::chrono::steady_clock::time_point{} &&
         std::chrono::steady_clock::now() >= opts.deadline;
}

void account(NetlistResult& result, std::size_t net_idx, NetRoute nr) {
  result.stats += nr.stats;
  if (nr.ok) {
    ++result.routed;
    result.total_wirelength += nr.wirelength;
  } else {
    ++result.failed;
  }
  result.routes[net_idx] = std::move(nr);
}

}  // namespace

std::size_t resolve_worker_count(std::size_t requested) {
  std::size_t n =
      requested == 0 ? std::thread::hardware_concurrency() : requested;
  if (n == 0) n = 1;  // hardware_concurrency() may be unknown
  return n;
}

NetlistResult NetlistRouter::route_all(const NetlistOptions& opts) const {
  return opts.mode == NetlistMode::kIndependent ? route_independent(opts)
                                                : route_sequential(opts);
}

NetlistResult NetlistRouter::route_independent(
    const NetlistOptions& opts) const {
  NetlistResult result;
  result.routes.resize(layout_.nets().size());
  resolve_reroute(opts, result.routes.size());  // throws: wrong mode

  // One obstacle index and one escape-line set serve every net: the whole
  // point of independent routing is that the search environment is fixed.
  // That same immutability is what makes the batch driver below safe — the
  // index, escape lines, router, and cost model are read-only once built.
  // An injected environment (the serving layer's session cache) skips the
  // per-call build entirely.
  std::optional<SearchEnvironment> local_env;
  if (env_ == nullptr) local_env.emplace(layout_);
  const SearchEnvironment& env = env_ != nullptr ? *env_ : *local_env;
  const SteinerNetRouter net_router(env.index(), env.lines(), cost_);

  const std::vector<std::size_t> order =
      resolve_order(opts, layout_.nets().size());
  const std::size_t workers = resolve_workers(opts.threads, order.size());

  if (workers <= 1) {
    // Deterministic serial fallback (and the semantics the parallel path
    // must reproduce exactly).
    for (const std::size_t i : order) {
      if (stop_requested(opts)) {
        result.cancelled = true;
        return result;
      }
      account(result, i,
              net_router.route_net(layout_, layout_.nets()[i], opts.steiner));
    }
    return result;
  }

  // Batch driver: workers pull net indices from a shared cursor and write
  // each finished route into its own (disjoint) slot, so no locking is
  // needed on the hot path.  Accounting then runs serially in `order`
  // order, making totals and stats bit-identical to the serial fallback.
  // Dispatch longest-first by default: with arrival-order dispatch a long
  // net pulled last runs alone while every other worker idles.
  const std::vector<std::size_t> dispatch =
      opts.sorted_dispatch ? effort_sorted(layout_, order) : order;
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> stopped{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const auto work = [&]() noexcept {
    try {
      for (std::size_t k = cursor.fetch_add(1, std::memory_order_relaxed);
           k < dispatch.size();
           k = cursor.fetch_add(1, std::memory_order_relaxed)) {
        if (stop_requested(opts)) {
          stopped.store(true, std::memory_order_relaxed);
          cursor.store(dispatch.size(), std::memory_order_relaxed);  // drain
          return;
        }
        const std::size_t i = dispatch[k];
        result.routes[i] =
            net_router.route_net(layout_, layout_.nets()[i], opts.steiner);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
      cursor.store(dispatch.size(), std::memory_order_relaxed);  // drain queue
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  try {
    for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(work);
  } catch (...) {
    // Thread exhaustion: drain the queue so already-running workers stop,
    // join them (destroying a joinable thread would terminate), and let
    // whatever workers did start plus this thread finish the batch.
    cursor.store(dispatch.size(), std::memory_order_relaxed);
    for (std::thread& th : pool) th.join();
    pool.clear();
    cursor.store(0, std::memory_order_relaxed);
  }
  work();
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
  if (stopped.load(std::memory_order_relaxed)) {
    // Partial batch: unreached slots are default-constructed, so replaying
    // the accounting would miscount them as failures.  The caller discards
    // a cancelled result anyway.
    result.cancelled = true;
    return result;
  }

  for (const std::size_t i : order) {
    account(result, i, std::move(result.routes[i]));
  }
  return result;
}

NetlistResult NetlistRouter::route_sequential(
    const NetlistOptions& opts) const {
  NetlistResult result;
  const std::size_t n = layout_.nets().size();
  result.routes.resize(n);

  // Previously routed nets join the obstacle set (inflated by the wire
  // spacing halo).  The environment absorbs each routed net *incrementally*
  // (commit_route: bucket insert + localized escape-line regeneration), so
  // sequential mode pays O(local update) per net instead of the full
  // O(index + escape-line rebuild) the classical scheme implies — and a
  // cached session environment can serve sequential requests too: copying
  // the shared read-only environment is vector duplication, not a build.
  assert((env_ == nullptr || env_->committed() == 0) &&
         "injected environment must not carry committed wire halos");
  SearchEnvironment env =
      env_ != nullptr ? *env_ : SearchEnvironment(layout_);

  const std::vector<std::size_t> order = resolve_order(opts, n);
  const std::vector<std::size_t> reroute = resolve_reroute(opts, n);

  const auto route_one = [&](std::size_t i) {
    const SteinerNetRouter net_router(env.index(), env.lines(), cost_);
    // A net whose pins are swallowed by earlier wires' halos cannot route.
    bool pins_ok = true;
    for (const auto& pins :
         net_terminal_pins(layout_, layout_.nets()[i])) {
      for (const geom::Point& p : pins) {
        if (!env.index().routable(p)) pins_ok = false;
      }
    }
    NetRoute nr;
    if (pins_ok) {
      nr = net_router.route_net(layout_, layout_.nets()[i], opts.steiner);
    }
    if (nr.ok) {
      env.commit_route(i, nr.segments, opts.wire_halo);
    }
    result.routes[i] = std::move(nr);
  };

  for (const std::size_t i : order) {
    if (stop_requested(opts)) {
      result.cancelled = true;
      return result;
    }
    route_one(i);
  }

  if (!reroute.empty()) {
    // Rip-up-and-reroute: tombstone every listed net's halos (each removal
    // is O(affected geometry); a net that failed to route committed
    // nothing and remove_route is a no-op), then re-route the list in
    // order against the committed remainder.  The environment after the
    // removals is exactly the one a from-scratch rebuild over the
    // remainder would build, so the re-routes are bit-identical to the
    // rebuild-based reference — the differential suite proves it.
    for (const std::size_t r : reroute) env.remove_route(r);
    for (const std::size_t r : reroute) {
      if (stop_requested(opts)) {
        result.cancelled = true;
        return result;
      }
      route_one(r);
    }
  }

  // Accounting replays the *final* order — remaining nets in first-pass
  // order, then the re-routed list — over each net's final route, so a
  // ripped net's discarded first route never pollutes totals or stats and
  // the result matches the rebuild-based rip-up reference bit for bit.
  // (That is the guarantee; full equality with a from-scratch route of
  // this order additionally requires the first pass to have routed the
  // ripped nets last — see NetlistOptions::reroute.)
  std::vector<bool> ripped(n, false);
  for (const std::size_t r : reroute) ripped[r] = true;
  for (const std::size_t i : order) {
    if (!ripped[i]) account(result, i, std::move(result.routes[i]));
  }
  for (const std::size_t r : reroute) {
    account(result, r, std::move(result.routes[r]));
  }
  return result;
}

}  // namespace gcr::route
