#include "core/netlist_router.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace gcr::route {

using geom::Rect;
using geom::Segment;

namespace {

std::vector<std::size_t> resolve_order(const NetlistOptions& opts,
                                       std::size_t n) {
  if (!opts.order.empty()) {
    // A non-permutation order would double-route some nets and skip others
    // — and with the parallel batch driver, a duplicate index would let two
    // workers write the same result slot (a data race).  Fail loudly in
    // every build type rather than relying on a debug-only assert.
    bool valid = opts.order.size() == n;
    if (valid) {
      std::vector<bool> seen(n, false);
      for (const std::size_t i : opts.order) {
        if (i >= n || seen[i]) {
          valid = false;
          break;
        }
        seen[i] = true;
      }
    }
    if (!valid) {
      throw std::invalid_argument(
          "NetlistOptions::order must be a permutation of every net index");
    }
    return opts.order;
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::size_t resolve_workers(unsigned requested, std::size_t jobs) {
  std::size_t n =
      requested == 0 ? std::thread::hardware_concurrency() : requested;
  if (n == 0) n = 1;  // hardware_concurrency() may be unknown
  return std::min(n, std::max<std::size_t>(jobs, 1));
}

void account(NetlistResult& result, std::size_t net_idx, NetRoute nr) {
  result.stats += nr.stats;
  if (nr.ok) {
    ++result.routed;
    result.total_wirelength += nr.wirelength;
  } else {
    ++result.failed;
  }
  result.routes[net_idx] = std::move(nr);
}

}  // namespace

NetlistResult NetlistRouter::route_all(const NetlistOptions& opts) const {
  return opts.mode == NetlistMode::kIndependent ? route_independent(opts)
                                                : route_sequential(opts);
}

NetlistResult NetlistRouter::route_independent(
    const NetlistOptions& opts) const {
  NetlistResult result;
  result.routes.resize(layout_.nets().size());

  // One obstacle index and one escape-line set serve every net: the whole
  // point of independent routing is that the search environment is fixed.
  // That same immutability is what makes the batch driver below safe — the
  // index, escape lines, router, and cost model are read-only once built.
  const spatial::ObstacleIndex index(layout_.boundary(), layout_.obstacles());
  const spatial::EscapeLineSet lines(index);
  const SteinerNetRouter net_router(index, lines, cost_);

  const std::vector<std::size_t> order =
      resolve_order(opts, layout_.nets().size());
  const std::size_t workers = resolve_workers(opts.threads, order.size());

  if (workers <= 1) {
    // Deterministic serial fallback (and the semantics the parallel path
    // must reproduce exactly).
    for (const std::size_t i : order) {
      account(result, i,
              net_router.route_net(layout_, layout_.nets()[i], opts.steiner));
    }
    return result;
  }

  // Batch driver: workers pull net indices from a shared cursor and write
  // each finished route into its own (disjoint) slot, so no locking is
  // needed on the hot path.  Accounting then runs serially in `order`
  // order, making totals and stats bit-identical to the serial fallback.
  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const auto work = [&]() noexcept {
    try {
      for (std::size_t k = cursor.fetch_add(1, std::memory_order_relaxed);
           k < order.size();
           k = cursor.fetch_add(1, std::memory_order_relaxed)) {
        const std::size_t i = order[k];
        result.routes[i] =
            net_router.route_net(layout_, layout_.nets()[i], opts.steiner);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
      cursor.store(order.size(), std::memory_order_relaxed);  // drain queue
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  try {
    for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(work);
  } catch (...) {
    // Thread exhaustion: drain the queue so already-running workers stop,
    // join them (destroying a joinable thread would terminate), and let
    // whatever workers did start plus this thread finish the batch.
    cursor.store(order.size(), std::memory_order_relaxed);
    for (std::thread& th : pool) th.join();
    pool.clear();
    cursor.store(0, std::memory_order_relaxed);
  }
  work();
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);

  for (const std::size_t i : order) {
    account(result, i, std::move(result.routes[i]));
  }
  return result;
}

NetlistResult NetlistRouter::route_sequential(
    const NetlistOptions& opts) const {
  NetlistResult result;
  result.routes.resize(layout_.nets().size());

  // Previously routed nets join the obstacle set (inflated by the wire
  // spacing halo), so the index and escape lines must be rebuilt per net —
  // part of the cost the paper's independent scheme avoids.
  std::vector<Rect> obstacles = layout_.obstacles();
  const std::size_t cell_obstacles = obstacles.size();

  for (const std::size_t i : resolve_order(opts, layout_.nets().size())) {
    const spatial::ObstacleIndex index(layout_.boundary(), obstacles);
    const spatial::EscapeLineSet lines(index);
    const SteinerNetRouter net_router(index, lines, cost_);

    // A net whose pins are swallowed by earlier wires' halos cannot route.
    bool pins_ok = true;
    for (const auto& pins :
         net_terminal_pins(layout_, layout_.nets()[i])) {
      for (const geom::Point& p : pins) {
        if (!index.routable(p)) pins_ok = false;
      }
    }
    NetRoute nr;
    if (pins_ok) {
      nr = net_router.route_net(layout_, layout_.nets()[i], opts.steiner);
    }
    if (nr.ok) {
      for (const Segment& s : nr.segments) {
        obstacles.push_back(s.bounds().inflated(opts.wire_halo));
      }
    }
    account(result, i, std::move(nr));
  }
  // Restore invariant for readers: obstacles beyond cell_obstacles are wires.
  (void)cell_obstacles;
  return result;
}

}  // namespace gcr::route
