#include "core/steiner.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace gcr::route {

using geom::Axis;
using geom::Coord;
using geom::Dir;
using geom::Point;
using geom::Segment;

std::vector<std::vector<Point>> net_terminal_pins(const layout::Layout& lay,
                                                  const layout::Net& net) {
  std::vector<std::vector<Point>> out;
  out.reserve(net.terminals().size());
  for (const layout::TerminalRef& ref : net.terminals()) {
    const layout::Terminal& t = lay.terminal(ref);
    std::vector<Point> pins;
    pins.reserve(t.pins.size());
    for (const layout::Pin& p : t.pins) pins.push_back(p.pos);
    out.push_back(std::move(pins));
  }
  return out;
}

void SteinerNetRouter::connection_points(
    ConnectScratch& scratch, const std::vector<Point>& connected_pins,
    const std::vector<Segment>& tree, bool segments_allowed) const {
  // Gather candidates (duplicates and all) into the reused vector, then
  // sort + unique.  The result must be sorted for deterministic seeding
  // anyway, so deduplicating through a hash set was pure overhead — and
  // the per-step set/vector churn showed up in every multi-terminal net.
  std::vector<Point>& src = scratch.sources;
  src.clear();  // keeps capacity across tree-growth steps
  src.insert(src.end(), connected_pins.begin(), connected_pins.end());
  if (segments_allowed) {
    for (const Segment& s : tree) {
      src.push_back(s.a);
      src.push_back(s.b);
      if (s.degenerate()) continue;
      // Escape-line crossings along the segment: the departure points the
      // line search could use anyway, realized as explicit sources.
      const Axis ax = s.axis();
      const Dir d = s.b.along(ax) > s.a.along(ax)
                        ? (ax == Axis::kX ? Dir::kEast : Dir::kNorth)
                        : (ax == Axis::kX ? Dir::kWest : Dir::kSouth);
      for (const Coord c : lines_.crossings(s.a, d, s.b.along(ax))) {
        Point q = s.a;
        q.along(ax) = c;
        src.push_back(q);
      }
      // Perpendicular projections of the remaining goals: the closest legal
      // departure toward each target pin.
      for (const Point& g : scratch.goals) src.push_back(s.closest_point(g));
    }
  }
  std::sort(src.begin(), src.end());  // deterministic seeding order
  src.erase(std::unique(src.begin(), src.end()), src.end());
}

NetRoute SteinerNetRouter::route_terminals(
    const std::vector<std::vector<Point>>& terminals,
    const SteinerOptions& opts) const {
  NetRoute out;
  if (terminals.empty()) return out;
  for (const auto& pins : terminals) {
    if (pins.empty()) return out;  // a pinless terminal is unroutable
  }

  // Seed the tree with the first terminal's pins (all of them: a multi-pin
  // terminal is internally connected by its cell).
  std::vector<Point> connected_pins = terminals[0];
  std::vector<bool> joined(terminals.size(), false);
  joined[0] = true;
  std::size_t remaining = terminals.size() - 1;

  out.ok = true;
  ConnectScratch scratch;  // buffers live across the tree-growth steps
  while (remaining > 0) {
    scratch.goals.clear();
    for (std::size_t t = 0; t < terminals.size(); ++t) {
      if (joined[t]) continue;
      scratch.goals.insert(scratch.goals.end(), terminals[t].begin(),
                           terminals[t].end());
    }
    connection_points(scratch, connected_pins, out.segments,
                      opts.connect_to_segments);

    Route conn = router_.route_set(scratch.sources, scratch.goals, opts.route);
    out.stats += conn.stats;
    if (!conn.found) {
      out.ok = false;
      break;
    }

    // Which terminal did we hit?  The path ends on one of its pins.
    const Point hit = conn.points.back();
    std::size_t hit_term = terminals.size();
    for (std::size_t t = 0; t < terminals.size() && hit_term == terminals.size();
         ++t) {
      if (joined[t]) continue;
      if (std::find(terminals[t].begin(), terminals[t].end(), hit) !=
          terminals[t].end()) {
        hit_term = t;
      }
    }
    assert(hit_term < terminals.size() && "goal must belong to some terminal");

    for (std::size_t i = 0; i + 1 < conn.points.size(); ++i) {
      out.segments.emplace_back(conn.points[i], conn.points[i + 1]);
    }
    out.wirelength += conn.length;
    joined[hit_term] = true;
    --remaining;
    // "all the pins which are associated with the newly connected terminal
    // are brought into the connected set."
    connected_pins.insert(connected_pins.end(), terminals[hit_term].begin(),
                          terminals[hit_term].end());
    out.connections.push_back(std::move(conn));
  }
  return out;
}

NetRoute SteinerNetRouter::route_net(const layout::Layout& lay,
                                     const layout::Net& net,
                                     const SteinerOptions& opts) const {
  return route_terminals(net_terminal_pins(lay, net), opts);
}

}  // namespace gcr::route
