#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/cost_model.hpp"
#include "core/route_types.hpp"
#include "search/searcher.hpp"
#include "search/strategy.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"

/// \file gridless_router.hpp
/// The paper's global router: a gridless line search driven by the generic
/// A* engine.
///
/// Successor generation implements the paper's two rules — a probe
/// "(1) extends any path as far toward the goal as is feasible in x and y and
/// (2) hugs cells (obstacles) as they are encountered" — by ray tracing:
/// from the current point a ray is cast in each axis direction, stopped at
/// the first cell interior (or the routing boundary), and successors are
/// emitted at
///   * every crossing with an escape line (the maximal extensions of cell
///     edges, where hugging turns happen),
///   * the goal-aligned projection (extend toward the goal), and
///   * the hug point on the blocking boundary itself.
/// Because a shortest rectilinear path among disjoint rectangles always
/// exists whose bends lie on these lines, A* with the Manhattan heuristic is
/// admissible: it returns a *minimal* route, while typically expanding
/// orders of magnitude fewer nodes than the Lee–Moore grid (paper Figure 1).

namespace gcr::route {

/// Successor-generation policy — the ablation knob for the paper's rule.
enum class SuccessorMode : std::uint8_t {
  /// The paper's rule: successors at every escape-line crossing, the hug
  /// point, and the goal projection.  Complete and admissible.
  kFull,
  /// Ablation: hug point and goal projection only (no escape-line
  /// crossings).  Probes can still round obstacles they run into, but turns
  /// "remembered" from obstacles a probe merely passes are lost — routes
  /// degrade to suboptimal or unreachable, quantifying what the crossing
  /// set buys.
  kSparse,
};

/// Search-space adapter over the routing plane.  States are (point, incoming
/// direction) pairs; goals are an explicit set of points (a pin, or every
/// pin of every yet-unconnected terminal during Steiner construction).
class GridlessSpace {
 public:
  using State = RouteState;

  GridlessSpace(const spatial::ObstacleIndex& obstacles,
                const spatial::EscapeLineSet& lines,
                std::vector<geom::Point> goals,
                const CostModel* cost = nullptr,
                SuccessorMode mode = SuccessorMode::kFull);

  void successors(const State& s,
                  std::vector<search::Successor<State>>& out) const;

  /// Scaled Manhattan distance to the nearest goal — the paper's h-hat.
  [[nodiscard]] geom::Cost heuristic(const State& s) const;

  [[nodiscard]] bool is_goal(const State& s) const {
    return goal_set_.contains(s.p);
  }

  [[nodiscard]] const std::vector<geom::Point>& goals() const noexcept {
    return goals_;
  }

 private:
  const spatial::ObstacleIndex& obstacles_;
  const spatial::EscapeLineSet& lines_;
  std::vector<geom::Point> goals_;
  std::unordered_set<geom::Point> goal_set_;
  const CostModel* cost_;  // nullable: pure wirelength
  SuccessorMode mode_;
};

/// Options for a single connection search.
struct RouteOptions {
  search::Strategy strategy = search::Strategy::kAStar;
  /// Abort threshold (0 = unlimited); blind strategies need one on large
  /// layouts.
  std::size_t max_expansions = 0;
  /// Depth limit for depth-first probing.
  std::size_t depth_limit = 0;
  /// Successor-generation policy (ablation knob; keep kFull for optimality).
  SuccessorMode successors = SuccessorMode::kFull;
};

/// Point-to-point / set-to-set gridless router.
class GridlessRouter {
 public:
  /// \p cost may be nullptr for pure-wirelength routing.  All referenced
  /// objects must outlive the router.
  GridlessRouter(const spatial::ObstacleIndex& obstacles,
                 const spatial::EscapeLineSet& lines,
                 const CostModel* cost = nullptr)
      : obstacles_(obstacles), lines_(lines), cost_(cost) {}

  /// Routes a two-point connection.  Both endpoints must be routable.
  [[nodiscard]] Route route(const geom::Point& from, const geom::Point& to,
                            const RouteOptions& opts = {}) const;

  /// Multi-source, multi-target: the Steiner tree extension step.  The search
  /// starts simultaneously from every source (the connected set) and stops at
  /// the first goal reached with minimal cost.
  [[nodiscard]] Route route_set(const std::vector<geom::Point>& sources,
                                const std::vector<geom::Point>& targets,
                                const RouteOptions& opts = {}) const;

  [[nodiscard]] const spatial::ObstacleIndex& obstacles() const noexcept {
    return obstacles_;
  }
  [[nodiscard]] const spatial::EscapeLineSet& lines() const noexcept {
    return lines_;
  }

 private:
  const spatial::ObstacleIndex& obstacles_;
  const spatial::EscapeLineSet& lines_;
  const CostModel* cost_;
};

/// Compresses a state path into a bend polyline and computes its DBU length.
[[nodiscard]] std::vector<geom::Point> compress_path(
    const std::vector<RouteState>& states);

/// Total rectilinear length of a polyline.
[[nodiscard]] geom::Cost polyline_length(const std::vector<geom::Point>& pts);

}  // namespace gcr::route
