#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/route_types.hpp"
#include "geometry/geometry.hpp"
#include "spatial/obstacle_index.hpp"

/// \file cost_model.hpp
/// Generalized cost functions.
///
/// "Because of the generality of the A* algorithm, the heuristic cost
/// function can be used to favor certain classes of routes over others."
/// A CostModel adds a non-negative *penalty* on top of the scaled rectilinear
/// length of each probe edge.  Penalties never subtract, so the Manhattan
/// heuristic stays a lower bound and A* stays admissible with respect to the
/// penalized cost.

namespace gcr::route {

/// Context handed to cost models when pricing one probe edge.
struct EdgeContext {
  const spatial::ObstacleIndex& obstacles;
  /// State the probe leaves from (carries the incoming direction).
  RouteState from;
  /// Probe direction of this edge.
  geom::Dir move;
  /// Landing point.
  geom::Point to;
};

/// Interface: price the penalty of a probe edge (>= 0, in scaled cost units).
class CostModel {
 public:
  virtual ~CostModel() = default;
  [[nodiscard]] virtual geom::Cost penalty(const EdgeContext& ctx) const = 0;
};

/// Pure wirelength: no penalty.  The paper's base cost ("we will assume cost
/// to be the length of the path").
class WirelengthCost final : public CostModel {
 public:
  [[nodiscard]] geom::Cost penalty(const EdgeContext&) const override {
    return 0;
  }
};

/// Epsilon per bend.  Among equal-length routes the one with fewest corners
/// wins; with epsilon < kCostScale a bend penalty can never override a real
/// length difference.
class BendCost final : public CostModel {
 public:
  explicit BendCost(geom::Cost epsilon = 1) : epsilon_(epsilon) {}
  [[nodiscard]] geom::Cost penalty(const EdgeContext& ctx) const override;

 private:
  geom::Cost epsilon_;
};

/// The paper's inverted-corner rule (Figure 2): among equal-length routes,
/// penalize bends that happen *away from* any cell boundary.  The preferred
/// route turns exactly at cell corners (hugging); the non-preferred route
/// carries a floating jog that leaves an inverted corner in the wiring.
/// Adding epsilon to each floating bend makes the router deterministically
/// pick the preferred route.
class InvertedCornerCost final : public CostModel {
 public:
  explicit InvertedCornerCost(geom::Cost epsilon = 1) : epsilon_(epsilon) {}
  [[nodiscard]] geom::Cost penalty(const EdgeContext& ctx) const override;

 private:
  geom::Cost epsilon_;
};

/// Sum of component penalties.
class CompositeCost final : public CostModel {
 public:
  void add(std::shared_ptr<const CostModel> m) { parts_.push_back(std::move(m)); }
  [[nodiscard]] geom::Cost penalty(const EdgeContext& ctx) const override {
    geom::Cost sum = 0;
    for (const auto& m : parts_) sum += m->penalty(ctx);
    return sum;
  }
  [[nodiscard]] bool empty() const noexcept { return parts_.empty(); }

 private:
  std::vector<std::shared_ptr<const CostModel>> parts_;
};

/// Penalty for probing through user-marked congested regions — the paper's
/// "channel congestion" second-pass cost: "A second route of the affected
/// nets could penalize those paths which chose the congested area."  Each
/// region charges `weight` (scaled cost) when a probe edge intersects it.
class RegionPenaltyCost final : public CostModel {
 public:
  struct Region {
    geom::Rect area;
    geom::Cost weight;
  };

  void add_region(geom::Rect area, geom::Cost weight) {
    regions_.push_back({area, weight});
  }
  [[nodiscard]] const std::vector<Region>& regions() const noexcept {
    return regions_;
  }
  [[nodiscard]] geom::Cost penalty(const EdgeContext& ctx) const override;

 private:
  std::vector<Region> regions_;
};

/// PathFinder-style negotiated-congestion penalty (McMurchie & Ebeling,
/// FPGA'95) over region-shaped resources — the iterated generalization of
/// RegionPenaltyCost.  Each region carries a *present* cost (how over-used
/// the resource is right now) and a *history* cost (how persistently it has
/// been over-used across rip-up iterations).  A probe edge crossing the
/// region pays
///
///     present * (1 + history) + history_base * history
///
/// so a currently-congested region grows more expensive every iteration it
/// stays congested (the present term is multiplied up by history), and a
/// region with a congested *past* keeps a residual charge even after it
/// drains (the additive history term) — which is what breaks the
/// oscillation a memoryless penalty falls into when two nets keep swapping
/// between the same two corridors.  Every term is >= 0, so the Manhattan
/// heuristic stays a lower bound and A* stays admissible.
class HistoryCost final : public CostModel {
 public:
  struct Region {
    geom::Rect area;
    geom::Cost present = 0;  ///< scaled cost per crossing, current overuse
    geom::Cost history = 0;  ///< accumulated overuse (dimensionless count)
  };

  /// \p history_base is the scaled cost one unit of history charges on a
  /// region that is not presently congested.
  explicit HistoryCost(geom::Cost history_base = 0)
      : history_base_(history_base) {}

  /// Negative inputs are clamped to zero: penalties must never subtract.
  void add_region(geom::Rect area, geom::Cost present, geom::Cost history) {
    regions_.push_back({area, present < 0 ? 0 : present,
                        history < 0 ? 0 : history});
  }
  [[nodiscard]] const std::vector<Region>& regions() const noexcept {
    return regions_;
  }
  [[nodiscard]] geom::Cost penalty(const EdgeContext& ctx) const override;

 private:
  geom::Cost history_base_;
  std::vector<Region> regions_;
};

/// True when \p p lies on the boundary of any obstacle (a "hugging" point).
[[nodiscard]] bool on_obstacle_boundary(const spatial::ObstacleIndex& idx,
                                        const geom::Point& p);

}  // namespace gcr::route
