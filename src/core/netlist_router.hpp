#pragma once

#include <cstddef>
#include <vector>

#include "core/steiner.hpp"
#include "layout/layout.hpp"

/// \file netlist_router.hpp
/// Whole-netlist global routing.
///
/// The paper routes every net *independently*: "Independently routing each
/// net considerably reduces the complexity of the search since the only
/// obstacles are the cells. ... Independent net routing also eliminates the
/// problem of net ordering."  The classical alternative — nets routed one
/// after another with earlier nets added to the obstacle set — is kept as a
/// selectable mode so the benchmark can reproduce the claimed contrast
/// (search time blow-up and order sensitivity).

namespace gcr::route {

enum class NetlistMode {
  /// The paper's scheme: every net sees only the cells.
  kIndependent,
  /// Classical scheme: previously routed nets become obstacles (inflated to
  /// one wire-spacing halo), so later nets must maze around them and net
  /// ordering matters.
  kSequential,
};

struct NetlistOptions {
  NetlistMode mode = NetlistMode::kIndependent;
  SteinerOptions steiner;
  /// Halo, in DBU, applied to routed segments when they become obstacles in
  /// sequential mode (the minimum wire spacing).
  geom::Coord wire_halo = 1;
  /// Optional routing order (net indices); empty = netlist order.  Only
  /// meaningful in sequential mode — the paper's point is that independent
  /// routing makes this knob irrelevant.
  std::vector<std::size_t> order;
  /// Worker threads for the independent-mode batch driver.  1 = the
  /// deterministic serial loop; 0 = one worker per hardware thread; N > 1 =
  /// exactly N workers.  Because independent nets share a read-only search
  /// environment, the result is bit-identical for every thread count.
  /// Ignored in sequential mode, which is inherently ordered.
  unsigned threads = 1;
};

struct NetlistResult {
  std::vector<NetRoute> routes;  ///< indexed by net id
  std::size_t routed = 0;
  std::size_t failed = 0;
  geom::Cost total_wirelength = 0;
  search::SearchStats stats;
};

class NetlistRouter {
 public:
  /// \p cost may be nullptr.  The layout must outlive the router.
  explicit NetlistRouter(const layout::Layout& lay,
                         const CostModel* cost = nullptr)
      : layout_(lay), cost_(cost) {}

  [[nodiscard]] NetlistResult route_all(const NetlistOptions& opts = {}) const;

 private:
  [[nodiscard]] NetlistResult route_independent(const NetlistOptions&) const;
  [[nodiscard]] NetlistResult route_sequential(const NetlistOptions&) const;

  const layout::Layout& layout_;
  const CostModel* cost_;
};

}  // namespace gcr::route
