#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/search_environment.hpp"
#include "core/steiner.hpp"
#include "layout/layout.hpp"

/// \file netlist_router.hpp
/// Whole-netlist global routing.
///
/// The paper routes every net *independently*: "Independently routing each
/// net considerably reduces the complexity of the search since the only
/// obstacles are the cells. ... Independent net routing also eliminates the
/// problem of net ordering."  The classical alternative — nets routed one
/// after another with earlier nets added to the obstacle set — is kept as a
/// selectable mode so the benchmark can reproduce the claimed contrast
/// (search time blow-up and order sensitivity).

namespace gcr::route {

enum class NetlistMode {
  /// The paper's scheme: every net sees only the cells.
  kIndependent,
  /// Classical scheme: previously routed nets become obstacles (inflated to
  /// one wire-spacing halo), so later nets must maze around them and net
  /// ordering matters.
  kSequential,
};

struct NetlistOptions {
  NetlistMode mode = NetlistMode::kIndependent;
  SteinerOptions steiner;
  /// Halo, in DBU, applied to routed segments when they become obstacles in
  /// sequential mode (the minimum wire spacing).
  geom::Coord wire_halo = 1;
  /// Optional routing order (net indices); empty = netlist order.  Only
  /// meaningful in sequential mode — the paper's point is that independent
  /// routing makes this knob irrelevant.
  std::vector<std::size_t> order;
  /// Optional net subset: when non-empty, only the listed nets are routed
  /// (in list order for sequential mode); every other slot of
  /// `NetlistResult::routes` stays default-constructed and the
  /// routed/failed/wirelength totals cover the subset alone.  This is the
  /// serving layer's request-batching hook — a client re-routes the two
  /// nets it changed instead of the whole netlist.  Entries must be unique,
  /// in-range net indices, and `order` must be empty (the subset *is* the
  /// order); violations throw std::invalid_argument.
  std::vector<std::size_t> subset;
  /// Rip-up-and-reroute (sequential mode only): after the full sequential
  /// pass, the listed nets are ripped back out of the search environment
  /// (incremental halo removal, no rebuild) and re-routed in list order
  /// against the committed remainder — the classical remedy for
  /// order-sensitivity, priced at O(affected geometry) per ripped net.
  /// The final result — routes, totals, stats — is bit-identical to
  /// performing the same rip-up with from-scratch environment rebuilds
  /// (the incremental removal is exact), and accounting replays the final
  /// order (remaining nets in first-pass order, then the list); when the
  /// first pass already routed the listed nets last, the result is
  /// therefore bit-identical to the plain sequential route of that order.
  /// Entries must be unique in-range net indices; requires sequential mode
  /// and no `subset` (violations throw std::invalid_argument).  May
  /// combine with `order`, which fixes the first-pass order.
  std::vector<std::size_t> reroute;
  /// Worker threads for the independent-mode batch driver.  1 = the
  /// deterministic serial loop; 0 = one worker per hardware thread; N > 1 =
  /// exactly N workers.  Because independent nets share a read-only search
  /// environment, the result is bit-identical for every thread count.
  /// Ignored in sequential mode, which is inherently ordered.
  unsigned threads = 1;
  /// Absolute deadline; default = none.  Checked between nets (every mode):
  /// expiry stops the pass early and marks the result `cancelled`.  It
  /// never alters a run that finishes in time, so the bit-identical
  /// guarantees below hold for every completed result.
  std::chrono::steady_clock::time_point deadline{};
  /// Cooperative cancel token (client disconnect), checked between nets
  /// like `deadline`.  May be null.
  std::shared_ptr<std::atomic<bool>> cancel;
  /// Batch-driver scheduling: dispatch work items longest-first (estimated
  /// effort = net bounding-box half-perimeter, descending) so a long net
  /// pulled last cannot straggle alone at the tail of the batch.  Dispatch
  /// order never affects results — independent nets share a read-only
  /// environment and each writes its own slot — so this is purely a
  /// tail-latency knob; `false` restores arrival-order dispatch (the
  /// baseline `bench_independent_nets` compares against).  Ignored when the
  /// batch runs serially.
  bool sorted_dispatch = true;
};

struct NetlistResult {
  std::vector<NetRoute> routes;  ///< indexed by net id
  std::size_t routed = 0;
  std::size_t failed = 0;
  geom::Cost total_wirelength = 0;
  search::SearchStats stats;
  /// True when the cancel token or deadline stopped the pass early.  The
  /// result is then *partial* — unreached `routes` slots stay default and
  /// the totals are unaccounted — and must be discarded, never committed
  /// or cached.
  bool cancelled = false;
};

/// Resolves the "0 = one worker per hardware thread" convention shared by
/// the batch driver and the serving worker pool; never returns 0 (a machine
/// whose concurrency is unknown gets one worker).
[[nodiscard]] std::size_t resolve_worker_count(std::size_t requested);

class NetlistRouter {
 public:
  /// \p cost may be nullptr.  The layout must outlive the router.
  /// Independent mode builds a fresh SearchEnvironment per route_all call.
  explicit NetlistRouter(const layout::Layout& lay,
                         const CostModel* cost = nullptr)
      : layout_(lay), cost_(cost) {}

  /// Injects a prebuilt environment (the serving layer's session cache):
  /// independent-mode calls reuse \p env instead of rebuilding the obstacle
  /// index and escape lines, and sequential-mode calls start from a *copy*
  /// of it (plain vector duplication, no build) and absorb each routed
  /// net's wire halos via incremental `commit_route` updates.  \p env must
  /// have been built from \p lay's current placement, hold no committed
  /// halos, and outlive the router.
  NetlistRouter(const layout::Layout& lay, const SearchEnvironment& env,
                const CostModel* cost = nullptr)
      : layout_(lay), cost_(cost), env_(&env) {}

  [[nodiscard]] NetlistResult route_all(const NetlistOptions& opts = {}) const;

 private:
  [[nodiscard]] NetlistResult route_independent(const NetlistOptions&) const;
  [[nodiscard]] NetlistResult route_sequential(const NetlistOptions&) const;

  const layout::Layout& layout_;
  const CostModel* cost_;
  const SearchEnvironment* env_ = nullptr;  ///< optional injected environment
};

}  // namespace gcr::route
