#include "core/optimize.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "congestion/two_pass.hpp"
#include "core/cost_model.hpp"
#include "core/route_types.hpp"
#include "core/search_environment.hpp"
#include "core/steiner.hpp"

namespace gcr::route {

namespace {

using congestion::CongestionMap;
using congestion::Passage;
using Clock = std::chrono::steady_clock;

/// Bounding box of a net's terminal pins — the region a detour-free route
/// would stay inside.  Empty for a net with no pins.
std::optional<geom::Rect> terminal_bbox(const layout::Layout& lay,
                                        const layout::Net& net) {
  std::optional<geom::Rect> bbox;
  for (const auto& pins : net_terminal_pins(lay, net)) {
    for (const geom::Point& p : pins) {
      bbox = bbox ? bbox->hull(p) : geom::Rect{p, p};
    }
  }
  return bbox;
}

/// Manhattan lower bound for connecting a net's terminals: the
/// half-perimeter of their bounding box.  Zero for coincident (or absent)
/// terminals — callers must treat that as "no meaningful bound".
geom::Cost manhattan_lower_bound(const layout::Layout& lay,
                                 const layout::Net& net) {
  const auto bbox = terminal_bbox(lay, net);
  return bbox ? bbox->half_perimeter() : 0;
}

/// How many of the \p hot passage regions the net's tree touches.  The
/// per-net acceptance test compares this against the *pass-start* hot set
/// for both the old and the new route, so the comparison is apples to
/// apples even though the map shifts as the pass commits changes.
std::size_t hot_crossings(const std::vector<geom::Rect>& hot,
                          const NetRoute& nr) {
  std::size_t count = 0;
  for (const geom::Rect& r : hot) {
    for (const geom::Segment& s : nr.segments) {
      if (s.bounds().intersects(r)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace

double detour_ratio(const layout::Layout& lay, const layout::Net& net,
                    const NetRoute& nr) {
  if (!nr.ok) return 1.0;
  const geom::Cost lb = manhattan_lower_bound(lay, net);
  // Coincident-terminal nets have a zero lower bound; dividing would be UB
  // and any positive wirelength would score as infinite detour.  Such nets
  // are defined to have no detour — there is nothing to optimize.
  if (lb <= 0) return 1.0;
  return static_cast<double>(nr.wirelength) / static_cast<double>(lb);
}

OptimizeReport Optimizer::run(const OptimizeOptions& opts) const {
  const auto start = Clock::now();
  // The effective stop time: the earlier of the absolute deadline and the
  // relative budget.  Checked only at pass boundaries — a pass in flight
  // runs to completion (the router has no preemption points).
  Clock::time_point stop_at = opts.deadline;
  if (opts.budget.count() > 0) {
    const Clock::time_point budget_end = start + opts.budget;
    if (stop_at == Clock::time_point{} || budget_end < stop_at) {
      stop_at = budget_end;
    }
  }

  OptimizeReport report;
  NetlistResult& result = report.result;
  const std::size_t n = layout_.nets().size();
  result.routes.resize(n);

  assert((env_ == nullptr || env_->committed() == 0) &&
         "injected environment must not carry committed wire halos");
  SearchEnvironment env =
      env_ != nullptr ? *env_ : SearchEnvironment(layout_);

  const auto route_one = [&](std::size_t i, const CostModel* cost) {
    const SteinerNetRouter net_router(env.index(), env.lines(), cost);
    // A net whose pins are swallowed by other wires' halos cannot route.
    bool pins_ok = true;
    for (const auto& pins : net_terminal_pins(layout_, layout_.nets()[i])) {
      for (const geom::Point& p : pins) {
        if (!env.index().routable(p)) pins_ok = false;
      }
    }
    NetRoute nr;
    if (pins_ok) {
      nr = net_router.route_net(layout_, layout_.nets()[i], opts.steiner);
    }
    return nr;
  };

  // ---------------------------------------- pass 1: full sequential route
  for (std::size_t i = 0; i < n; ++i) {
    NetRoute nr = route_one(i, nullptr);
    result.stats += nr.stats;
    if (nr.ok) env.commit_route(i, nr.segments, opts.wire_halo);
    result.routes[i] = std::move(nr);
  }

  // Passage geometry depends only on the placement, so it is extracted
  // once; occupancy is re-counted per pass.
  const std::vector<Passage> passages =
      congestion::extract_passages(layout_, opts.passages);
  std::vector<geom::Cost> history(passages.size(), 0);

  const auto measure = [&](std::size_t pass) {
    OptimizePassStats s;
    s.pass = pass;
    CongestionMap map(passages);
    for (std::size_t i = 0; i < n; ++i) {
      if (!result.routes[i].ok) {
        ++s.failed;
        continue;
      }
      map.add_net(i, result.routes[i]);
      ++s.routed;
      s.wirelength += result.routes[i].wirelength;
    }
    s.overflow = map.total_overflow();
    return s;
  };

  report.passes.push_back(measure(1));
  if (opts.progress) opts.progress(report.passes.back());

  // ------------------------------------------- iterated rip-up-and-reroute
  for (std::size_t pass = 2; pass <= opts.max_passes + 1; ++pass) {
    if (opts.cancel && opts.cancel->load(std::memory_order_relaxed)) {
      report.cancelled = true;
      break;
    }
    if (stop_at != Clock::time_point{} && Clock::now() >= stop_at) break;

    const OptimizePassStats prev = report.passes.back();

    CongestionMap map(passages);
    for (std::size_t i = 0; i < n; ++i) {
      if (result.routes[i].ok) map.add_net(i, result.routes[i]);
    }
    const std::vector<std::size_t> hot = map.congested();
    std::vector<geom::Rect> hot_rects;
    hot_rects.reserve(hot.size());
    std::vector<char> through_hot(n, 0);
    for (const std::size_t p : hot) {
      hot_rects.push_back(map.loads()[p].passage.region);
      // Negotiation memory: every pass a passage stays over capacity, its
      // history grows, and with it the penalty the cost model charges.
      history[p] += static_cast<geom::Cost>(map.loads()[p].overflow());
      for (const std::size_t i : map.nets_through(p)) through_hot[i] = 1;
    }

    // Score the committed nets: congestion contribution (crossings of
    // over-capacity passages) plus detour (how far over the Manhattan
    // lower bound the route strayed).  Congestion-free nets below the
    // detour threshold are left alone.
    struct Candidate {
      double score;
      std::size_t idx;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < n; ++i) {
      if (!result.routes[i].ok) continue;
      const double ratio =
          detour_ratio(layout_, layout_.nets()[i], result.routes[i]);
      if (through_hot[i] == 0 && ratio <= opts.detour_threshold) continue;
      const std::size_t cross =
          through_hot[i] != 0 ? hot_crossings(hot_rects, result.routes[i])
                              : 0;
      candidates.push_back(
          {ratio - 1.0 + static_cast<double>(cross), i});
    }
    if (candidates.empty()) {
      report.converged = true;
      break;
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.score != b.score ? a.score > b.score
                                          : a.idx < b.idx;
              });
    const std::size_t cap = std::max<std::size_t>(
        1, std::min(opts.max_rip,
                    static_cast<std::size_t>(opts.rip_fraction *
                                             static_cast<double>(prev.routed))));
    if (candidates.size() > cap) candidates.resize(cap);

    // The negotiated-congestion cost for this pass: present overuse
    // multiplied up by accumulated history, plus a residual history charge
    // on passages that drained but used to overflow (oscillation damping).
    HistoryCost cost(opts.history_penalty_dbu * kCostScale);
    for (std::size_t p = 0; p < passages.size(); ++p) {
      const geom::Cost present =
          static_cast<geom::Cost>(map.loads()[p].overflow());
      if (present == 0 && history[p] == 0) continue;
      cost.add_region(passages[p].region,
                      opts.present_penalty_dbu * kCostScale * present,
                      history[p]);
    }

    // Rip every victim first (each removal is O(affected geometry)), then
    // re-route them in score order against the committed remainder.
    std::vector<std::size_t> victims;
    victims.reserve(candidates.size());
    std::vector<char> is_victim(n, 0);
    for (const Candidate& c : candidates) {
      victims.push_back(c.idx);
      is_victim[c.idx] = 1;
    }
    // Co-rip each victim's *blockers*: a detoured net re-routed alone faces
    // strictly more committed wire than it did in pass 1 (everything routed
    // after it is now in the way), so on its own it can never get shorter.
    // Any other routed net whose tree cuts through a victim's terminal box
    // — the region a detour-free route would use — is ripped alongside it
    // and re-routed *after* the victims, so the shortened net grabs the
    // corridor first and the blocker settles around it (its old route is
    // restored if it cannot do at least as well).
    for (const Candidate& c : candidates) {
      if (victims.size() >= opts.max_rip) break;
      const auto bbox = terminal_bbox(layout_, layout_.nets()[c.idx]);
      if (!bbox) continue;
      for (std::size_t i = 0; i < n && victims.size() < opts.max_rip; ++i) {
        if (is_victim[i] != 0 || !result.routes[i].ok) continue;
        for (const geom::Segment& seg : result.routes[i].segments) {
          if (seg.bounds().intersects(*bbox)) {
            victims.push_back(i);
            is_victim[i] = 1;
            break;
          }
        }
      }
    }
    for (const std::size_t v : victims) env.remove_route(v);

    struct Undo {
      std::size_t idx;
      NetRoute old;
    };
    std::vector<Undo> changed;
    std::size_t improved = 0;
    for (const std::size_t v : victims) {
      NetRoute old = std::move(result.routes[v]);
      const std::size_t old_cross = hot_crossings(hot_rects, old);
      NetRoute nr = route_one(v, &cost);
      result.stats += nr.stats;
      // Per-net acceptance: the new route must regress neither dimension
      // (no longer, no more crossings of this pass's congested passages)
      // and strictly improve at least one — otherwise the old route is
      // restored verbatim.  Strictness keeps `improved` an honest progress
      // measure (lateral churn would iterate to the pass cap for nothing),
      // and the no-regress half is what makes the per-pass totals monotone
      // (the pass-level guard below catches the residual case of
      // independently-accepted nets piling into the same fresh passage).
      const std::size_t new_cross =
          nr.ok ? hot_crossings(hot_rects, nr) : 0;
      const bool accept =
          nr.ok && nr.wirelength <= old.wirelength &&
          new_cross <= old_cross &&
          (nr.wirelength < old.wirelength || new_cross < old_cross);
      if (accept) {
        env.commit_route(v, nr.segments, opts.wire_halo);
        result.routes[v] = std::move(nr);
        changed.push_back({v, std::move(old)});
        ++improved;
      } else {
        env.commit_route(v, old.segments, opts.wire_halo);
        result.routes[v] = std::move(old);
      }
    }

    OptimizePassStats s = measure(pass);
    s.ripped = victims.size();
    s.improved = improved;
    if (s.wirelength > prev.wirelength || s.overflow > prev.overflow) {
      // The pass made things worse in aggregate: roll every accepted
      // change back (remove the new halos, recommit the old ones) and
      // stop.  The reverted pass is not recorded, so the recorded curve
      // stays non-increasing.
      for (Undo& u : changed) {
        env.remove_route(u.idx);
        env.commit_route(u.idx, u.old.segments, opts.wire_halo);
        result.routes[u.idx] = std::move(u.old);
      }
      report.converged = true;
      break;
    }
    report.passes.push_back(s);
    if (opts.progress) opts.progress(s);
    if (improved == 0) {
      report.converged = true;
      break;
    }
  }

  // Final accounting over the surviving routes.
  result.routed = 0;
  result.failed = 0;
  result.total_wirelength = 0;
  for (const NetRoute& nr : result.routes) {
    if (nr.ok) {
      ++result.routed;
      result.total_wirelength += nr.wirelength;
    } else {
      ++result.failed;
    }
  }
  return report;
}

}  // namespace gcr::route
