#include "core/track_graph.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <utility>
#include <vector>

namespace gcr::route {

using geom::Axis;
using geom::Coord;
using geom::Cost;
using geom::Dir;
using geom::Interval;
using geom::Point;
using spatial::EscapeLine;

TrackGraph::Built TrackGraph::build(const Point& a, const Point& b) const {
  Built out;
  if (!obstacles_.routable(a) || !obstacles_.routable(b)) return out;

  // Augment the layout's escape lines with the two query points' projection
  // lines (each point contributes one maximal horizontal and one maximal
  // vertical free segment through itself).  The set keeps per-source records
  // (coincident edges are not merged, for incremental updatability); the
  // duplicates are harmless here — crossings intern to the same vertex, and
  // parallel equal-weight edges do not change shortest path lengths.
  std::vector<EscapeLine> lines = lines_.lines();
  for (const Point& p : {a, b}) {
    const Coord w = obstacles_.trace(p, Dir::kWest).stop;
    const Coord e = obstacles_.trace(p, Dir::kEast).stop;
    const Coord s = obstacles_.trace(p, Dir::kSouth).stop;
    const Coord n = obstacles_.trace(p, Dir::kNorth).stop;
    lines.push_back({Axis::kX, p.y, Interval{w, e}, EscapeLine::npos});
    lines.push_back({Axis::kY, p.x, Interval{s, n}, EscapeLine::npos});
  }

  // Vertices: crossings of every horizontal with every vertical line.  A
  // crossing is only usable when it is routable (escape lines are free by
  // construction, but an added projection line may cross a line segment at a
  // point interior to nothing — crossings are always on both lines, hence
  // free).
  std::map<Point, std::uint32_t> vert_of;
  const auto intern = [&](const Point& p) {
    const auto [it, inserted] =
        vert_of.try_emplace(p, static_cast<std::uint32_t>(out.verts.size()));
    if (inserted) out.verts.push_back(p);
    return it->second;
  };

  // Collect the crossing points per line so edges join consecutive ones.
  std::vector<std::vector<Point>> on_line(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].axis != Axis::kX) continue;
    for (std::size_t j = 0; j < lines.size(); ++j) {
      if (lines[j].axis != Axis::kY) continue;
      const EscapeLine& h = lines[i];
      const EscapeLine& v = lines[j];
      if (h.span.contains(v.track) && v.span.contains(h.track)) {
        const Point x{v.track, h.track};
        intern(x);
        on_line[i].push_back(x);
        on_line[j].push_back(x);
      }
    }
  }
  intern(a);
  intern(b);
  // The query points lie on their own projection lines; register them there.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const Point& p : {a, b}) {
      const bool on = lines[i].axis == Axis::kX
                          ? (lines[i].track == p.y && lines[i].span.contains(p.x))
                          : (lines[i].track == p.x && lines[i].span.contains(p.y));
      if (on) on_line[i].push_back(p);
    }
  }

  out.adj.resize(out.verts.size());
  const auto connect = [&](const Point& p, const Point& q) {
    const std::uint32_t u = vert_of.at(p);
    const std::uint32_t v = vert_of.at(q);
    const Cost w = manhattan(p, q);
    out.adj[u].push_back({v, w});
    out.adj[v].push_back({u, w});
  };
  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto& pts = on_line[i];
    if (pts.size() < 2) continue;
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
    for (std::size_t k = 0; k + 1 < pts.size(); ++k) {
      connect(pts[k], pts[k + 1]);
    }
  }

  out.src = vert_of.at(a);
  out.dst = vert_of.at(b);
  out.ok = true;
  return out;
}

Cost TrackGraph::shortest_length(const Point& a, const Point& b) const {
  const Built g = build(a, b);
  if (!g.ok) return geom::kCostInf;
  std::vector<Cost> dist(g.verts.size(), geom::kCostInf);
  using Entry = std::pair<Cost, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[g.src] = 0;
  pq.push({0, g.src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    if (u == g.dst) return d;
    for (const auto& [v, w] : g.adj[u]) {
      if (d + w < dist[v]) {
        dist[v] = d + w;
        pq.push({d + w, v});
      }
    }
  }
  return dist[g.dst];
}

std::size_t TrackGraph::vertex_count(const Point& a, const Point& b) const {
  return build(a, b).verts.size();
}

}  // namespace gcr::route
