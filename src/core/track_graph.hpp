#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/geometry.hpp"
#include "spatial/escape_lines.hpp"
#include "spatial/obstacle_index.hpp"

/// \file track_graph.hpp
/// Explicit escape-line graph — the materialized form of the implicit graph
/// the gridless router searches.
///
/// Vertices are the pairwise crossings of perpendicular escape lines (plus
/// the projection lines of the two query points); edges join consecutive
/// crossings along each line, weighted by distance.  A shortest rectilinear
/// path among disjoint rectangular obstacles always exists inside this
/// graph, so a Dijkstra sweep over it is an *optimality oracle*: tests and
/// ablation benches compare the gridless A* result against it.  Building the
/// whole graph costs O(L^2) in the number of lines, which is exactly the
/// blow-up the on-the-fly ray-traced generation avoids.

namespace gcr::route {

class TrackGraph {
 public:
  TrackGraph(const spatial::ObstacleIndex& obstacles,
             const spatial::EscapeLineSet& lines)
      : obstacles_(obstacles), lines_(lines) {}

  /// Length of a shortest rectilinear obstacle-avoiding path from \p a to
  /// \p b, or geom::kCostInf when disconnected.  Exact (oracle quality).
  [[nodiscard]] geom::Cost shortest_length(const geom::Point& a,
                                           const geom::Point& b) const;

  /// Number of vertices the explicit graph materializes for a query —
  /// reported by the ablation bench as the cost of *not* generating
  /// successors on the fly.
  [[nodiscard]] std::size_t vertex_count(const geom::Point& a,
                                         const geom::Point& b) const;

 private:
  struct Built {
    std::vector<geom::Point> verts;
    std::vector<std::vector<std::pair<std::uint32_t, geom::Cost>>> adj;
    std::uint32_t src = 0, dst = 0;
    bool ok = false;
  };
  [[nodiscard]] Built build(const geom::Point& a, const geom::Point& b) const;

  const spatial::ObstacleIndex& obstacles_;
  const spatial::EscapeLineSet& lines_;
};

}  // namespace gcr::route
