#pragma once

#include <cstddef>

#include "congestion/congestion_map.hpp"
#include "core/netlist_router.hpp"

/// \file two_pass.hpp
/// The paper's congestion-driven second pass: "A second route of the
/// affected nets could penalize those paths which chose the congested area."
///
/// Pass 1 routes every net independently on pure wirelength.  The congestion
/// map then identifies over-capacity passages; only the nets crossing them
/// are re-routed with a RegionPenaltyCost charging each congested passage,
/// steering them into under-used corridors when an alternative of comparable
/// length exists.

namespace gcr::congestion {

struct TwoPassOptions {
  PassageOptions passages;
  route::SteinerOptions steiner;
  /// Scaled-cost penalty per congested passage crossed (per probe edge).
  /// Charged in units of route::kCostScale; the default makes one congested
  /// crossing as expensive as `penalty_dbu` DBU of extra wire.
  geom::Cost penalty_dbu = 32;
  /// Re-route iterations (each rebuilds the map and re-routes offenders).
  std::size_t max_iterations = 3;
};

struct TwoPassReport {
  route::NetlistResult first_pass;
  route::NetlistResult final_pass;
  std::size_t passes_run = 1;
  std::size_t nets_rerouted = 0;
  /// Congestion metrics before and after.
  std::size_t overflow_before = 0;
  std::size_t overflow_after = 0;
  std::size_t max_occupancy_before = 0;
  std::size_t max_occupancy_after = 0;
};

class TwoPassRouter {
 public:
  explicit TwoPassRouter(const layout::Layout& lay) : layout_(lay) {}

  [[nodiscard]] TwoPassReport run(const TwoPassOptions& opts = {}) const;

 private:
  const layout::Layout& layout_;
};

/// Builds a congestion map for an already-routed netlist.
[[nodiscard]] CongestionMap build_map(const layout::Layout& lay,
                                      const route::NetlistResult& result,
                                      const PassageOptions& opts);

}  // namespace gcr::congestion
