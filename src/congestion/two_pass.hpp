#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>

#include "congestion/congestion_map.hpp"
#include "core/netlist_router.hpp"

/// \file two_pass.hpp
/// The paper's congestion-driven second pass: "A second route of the
/// affected nets could penalize those paths which chose the congested area."
///
/// Pass 1 routes every net independently on pure wirelength.  The congestion
/// map then identifies over-capacity passages; only the nets crossing them
/// are re-routed with a RegionPenaltyCost charging each congested passage,
/// steering them into under-used corridors when an alternative of comparable
/// length exists.

namespace gcr::congestion {

struct TwoPassOptions {
  PassageOptions passages;
  route::SteinerOptions steiner;
  /// Scaled-cost penalty per congested passage crossed (per probe edge).
  /// Charged in units of route::kCostScale; the default makes one congested
  /// crossing as expensive as `penalty_dbu` DBU of extra wire.
  geom::Cost penalty_dbu = 32;
  /// Re-route iterations (each rebuilds the map and re-routes offenders).
  std::size_t max_iterations = 3;
  /// Starts from these routes instead of running pass 1 (the serving
  /// layer's committed routes).  Must index the same netlist as the layout;
  /// must outlive the run() call.  nullptr = route pass 1 internally.
  const route::NetlistResult* first_pass = nullptr;
  /// Absolute deadline; default = none.  Checked between per-net reroutes —
  /// an expired run keeps whatever routes it has and stops improving them.
  std::chrono::steady_clock::time_point deadline{};
  /// Cooperative cancel (client disconnect), checked with the deadline.
  std::shared_ptr<std::atomic<bool>> cancel;
};

struct TwoPassReport {
  route::NetlistResult first_pass;
  route::NetlistResult final_pass;
  std::size_t passes_run = 1;
  std::size_t nets_rerouted = 0;
  /// Congestion metrics before and after.
  std::size_t overflow_before = 0;
  std::size_t overflow_after = 0;
  std::size_t max_occupancy_before = 0;
  std::size_t max_occupancy_after = 0;
  /// True when the cancel token or the deadline stopped the reroute loop
  /// early: the report is truncated and must not be treated (or cached) as
  /// the canonical result of its options.
  bool cancelled = false;
};

class TwoPassRouter {
 public:
  explicit TwoPassRouter(const layout::Layout& lay) : layout_(lay) {}

  /// Injects a prebuilt environment (the serving layer's session cache):
  /// pass 1 and the penalized reroutes reuse \p env's obstacle index and
  /// escape lines instead of rebuilding them per iteration.  \p env must
  /// match \p lay's placement, hold no committed halos, and outlive the
  /// router.
  TwoPassRouter(const layout::Layout& lay, const route::SearchEnvironment& env)
      : layout_(lay), env_(&env) {}

  [[nodiscard]] TwoPassReport run(const TwoPassOptions& opts = {}) const;

 private:
  const layout::Layout& layout_;
  const route::SearchEnvironment* env_ = nullptr;
};

/// Builds a congestion map for an already-routed netlist.
[[nodiscard]] CongestionMap build_map(const layout::Layout& lay,
                                      const route::NetlistResult& result,
                                      const PassageOptions& opts);

}  // namespace gcr::congestion
