#include "congestion/two_pass.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

namespace gcr::congestion {

CongestionMap build_map(const layout::Layout& lay,
                        const route::NetlistResult& result,
                        const PassageOptions& opts) {
  CongestionMap map(extract_passages(lay, opts));
  for (std::size_t i = 0; i < result.routes.size(); ++i) {
    if (result.routes[i].ok) map.add_net(i, result.routes[i]);
  }
  return map;
}

TwoPassReport TwoPassRouter::run(const TwoPassOptions& opts) const {
  using Clock = std::chrono::steady_clock;
  TwoPassReport report;

  // Stop improving (keeping whatever routes exist) when the requester is
  // gone or out of time; checked between per-net reroutes like the
  // optimizer's pass boundaries.
  const auto stop_requested = [&] {
    if (opts.cancel && opts.cancel->load(std::memory_order_relaxed)) {
      report.cancelled = true;
      return true;
    }
    if (opts.deadline != Clock::time_point{} &&
        Clock::now() >= opts.deadline) {
      // A deadline stop truncates the run exactly like a cancel: the report
      // is incomplete and must never be mistaken for (or cached as) the
      // canonical result of these options.
      report.cancelled = true;
      return true;
    }
    return false;
  };

  // Pass 1: independent wirelength routing — unless the caller already has
  // routes (the serving layer's committed state), which become pass 1.
  if (opts.first_pass != nullptr) {
    report.first_pass = *opts.first_pass;
  } else {
    const route::NetlistRouter base_router =
        env_ != nullptr ? route::NetlistRouter(layout_, *env_)
                        : route::NetlistRouter(layout_);
    route::NetlistOptions nl_opts;
    nl_opts.steiner = opts.steiner;
    report.first_pass = base_router.route_all(nl_opts);
  }

  route::NetlistResult current = report.first_pass;
  {
    const CongestionMap map = build_map(layout_, current, opts.passages);
    report.overflow_before = map.total_overflow();
    report.max_occupancy_before = map.max_occupancy();
  }

  bool stopped = false;
  for (std::size_t iter = 0; iter < opts.max_iterations && !stopped; ++iter) {
    if (stop_requested()) break;
    const CongestionMap map = build_map(layout_, current, opts.passages);
    const std::vector<std::size_t> hot = map.congested();
    if (hot.empty()) break;

    // Affected nets: every net crossing a congested passage.
    std::unordered_set<std::size_t> affected;
    route::RegionPenaltyCost penalty;
    for (const std::size_t p : hot) {
      const PassageLoad& load = map.loads()[p];
      penalty.add_region(load.passage.region,
                         opts.penalty_dbu * route::kCostScale *
                             static_cast<geom::Cost>(load.overflow()));
      for (const std::size_t n : map.nets_through(p)) affected.insert(n);
    }
    if (affected.empty()) break;

    // Re-route only the offenders with the penalized cost function.  An
    // injected environment already holds the index and escape lines; the
    // standalone path builds them once per iteration as before.
    std::optional<spatial::ObstacleIndex> own_index;
    std::optional<spatial::EscapeLineSet> own_lines;
    if (env_ == nullptr) {
      own_index.emplace(layout_.boundary(), layout_.obstacles());
      own_lines.emplace(*own_index);
    }
    const spatial::ObstacleIndex& index =
        env_ != nullptr ? env_->index() : *own_index;
    const spatial::EscapeLineSet& lines =
        env_ != nullptr ? env_->lines() : *own_lines;
    const route::SteinerNetRouter rerouter(index, lines, &penalty);
    bool changed = false;
    for (const std::size_t n : affected) {
      if (stop_requested()) {
        stopped = true;
        break;
      }
      route::NetRoute nr =
          rerouter.route_net(layout_, layout_.nets()[n], opts.steiner);
      if (!nr.ok) continue;  // keep the pass-1 route on failure
      if (nr.segments != current.routes[n].segments) changed = true;
      current.total_wirelength +=
          nr.wirelength - current.routes[n].wirelength;
      current.routes[n] = std::move(nr);
      ++report.nets_rerouted;
    }
    ++report.passes_run;
    if (!changed) break;
  }

  {
    const CongestionMap map = build_map(layout_, current, opts.passages);
    report.overflow_after = map.total_overflow();
    report.max_occupancy_after = map.max_occupancy();
  }
  report.final_pass = std::move(current);
  return report;
}

}  // namespace gcr::congestion
