#include "congestion/two_pass.hpp"

#include <algorithm>
#include <cstddef>
#include <unordered_set>
#include <utility>
#include <vector>

namespace gcr::congestion {

CongestionMap build_map(const layout::Layout& lay,
                        const route::NetlistResult& result,
                        const PassageOptions& opts) {
  CongestionMap map(extract_passages(lay, opts));
  for (std::size_t i = 0; i < result.routes.size(); ++i) {
    if (result.routes[i].ok) map.add_net(i, result.routes[i]);
  }
  return map;
}

TwoPassReport TwoPassRouter::run(const TwoPassOptions& opts) const {
  TwoPassReport report;

  // Pass 1: independent wirelength routing.
  const route::NetlistRouter base_router(layout_);
  route::NetlistOptions nl_opts;
  nl_opts.steiner = opts.steiner;
  report.first_pass = base_router.route_all(nl_opts);

  route::NetlistResult current = report.first_pass;
  {
    const CongestionMap map = build_map(layout_, current, opts.passages);
    report.overflow_before = map.total_overflow();
    report.max_occupancy_before = map.max_occupancy();
  }

  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    const CongestionMap map = build_map(layout_, current, opts.passages);
    const std::vector<std::size_t> hot = map.congested();
    if (hot.empty()) break;

    // Affected nets: every net crossing a congested passage.
    std::unordered_set<std::size_t> affected;
    route::RegionPenaltyCost penalty;
    for (const std::size_t p : hot) {
      const PassageLoad& load = map.loads()[p];
      penalty.add_region(load.passage.region,
                         opts.penalty_dbu * route::kCostScale *
                             static_cast<geom::Cost>(load.overflow()));
      for (const std::size_t n : map.nets_through(p)) affected.insert(n);
    }
    if (affected.empty()) break;

    // Re-route only the offenders with the penalized cost function.
    const spatial::ObstacleIndex index(layout_.boundary(), layout_.obstacles());
    const spatial::EscapeLineSet lines(index);
    const route::SteinerNetRouter rerouter(index, lines, &penalty);
    bool changed = false;
    for (const std::size_t n : affected) {
      route::NetRoute nr =
          rerouter.route_net(layout_, layout_.nets()[n], opts.steiner);
      if (!nr.ok) continue;  // keep the pass-1 route on failure
      if (nr.segments != current.routes[n].segments) changed = true;
      current.total_wirelength +=
          nr.wirelength - current.routes[n].wirelength;
      current.routes[n] = std::move(nr);
      ++report.nets_rerouted;
    }
    ++report.passes_run;
    if (!changed) break;
  }

  {
    const CongestionMap map = build_map(layout_, current, opts.passages);
    report.overflow_after = map.total_overflow();
    report.max_occupancy_after = map.max_occupancy();
  }
  report.final_pass = std::move(current);
  return report;
}

}  // namespace gcr::congestion
