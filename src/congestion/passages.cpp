#include "congestion/passages.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace gcr::congestion {

using geom::Axis;
using geom::Coord;
using geom::Interval;
using geom::Rect;

namespace {

/// Builds the passage between two facing spans, if the projection overlap is
/// non-empty and no third cell intrudes.
void consider_pair(std::vector<Passage>& out, const std::vector<Rect>& cells,
                   std::size_t i, std::size_t j, const PassageOptions& opts) {
  const Rect& a = cells[i];
  const Rect& b = cells[j];

  // Vertical gap (cells stacked): wires flow horizontally? No — wires
  // crossing a vertical gap travel horizontally *through* the corridor
  // between the cells; the corridor extends along x where the cells'
  // x-projections overlap, and its height is the gap.  Flow is along x.
  const Interval x_overlap = a.xs().intersection(b.xs());
  if (!x_overlap.empty() && x_overlap.length() > 0) {
    const bool a_below = a.yhi <= b.ylo;
    const bool b_below = b.yhi <= a.ylo;
    if (a_below || b_below) {
      const Coord lo = a_below ? a.yhi : b.yhi;
      const Coord hi = a_below ? b.ylo : a.ylo;
      const Rect region{x_overlap.lo, lo, x_overlap.hi, hi};
      const Coord gap = hi - lo;
      if (gap > 0 && (opts.max_gap == 0 || gap <= opts.max_gap)) {
        // Reject if a third cell pokes into the corridor.
        const bool clear = std::none_of(
            cells.begin(), cells.end(),
            [&region](const Rect& c) { return c.intersects_open(region); });
        if (clear) {
          out.push_back(Passage{
              region, Axis::kX, gap,
              static_cast<std::size_t>(
                  std::max<Coord>(1, gap / opts.wire_pitch)),
              i, j});
        }
      }
    }
  }

  // Horizontal gap (cells side by side): corridor along y, flow along y.
  const Interval y_overlap = a.ys().intersection(b.ys());
  if (!y_overlap.empty() && y_overlap.length() > 0) {
    const bool a_left = a.xhi <= b.xlo;
    const bool b_left = b.xhi <= a.xlo;
    if (a_left || b_left) {
      const Coord lo = a_left ? a.xhi : b.xhi;
      const Coord hi = a_left ? b.xlo : a.xlo;
      const Rect region{lo, y_overlap.lo, hi, y_overlap.hi};
      const Coord gap = hi - lo;
      if (gap > 0 && (opts.max_gap == 0 || gap <= opts.max_gap)) {
        const bool clear = std::none_of(
            cells.begin(), cells.end(),
            [&region](const Rect& c) { return c.intersects_open(region); });
        if (clear) {
          out.push_back(Passage{
              region, Axis::kY, gap,
              static_cast<std::size_t>(
                  std::max<Coord>(1, gap / opts.wire_pitch)),
              i, j});
        }
      }
    }
  }
}

}  // namespace

std::vector<Passage> extract_passages(const layout::Layout& lay,
                                      const PassageOptions& opts) {
  std::vector<Passage> out;
  const std::vector<Rect> cells = lay.obstacles();

  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      consider_pair(out, cells, i, j, opts);
    }
  }

  // Cell-to-boundary passages: treat the four boundary edges as virtual
  // cells just outside the routing region.
  const Rect& b = lay.boundary();
  const Coord w = std::max<Coord>(1, b.width());
  const Coord h = std::max<Coord>(1, b.height());
  const std::vector<Rect> walls = {
      Rect{b.xlo - 1, b.ylo - h, b.xhi + 1, b.ylo},  // south wall
      Rect{b.xlo - 1, b.yhi, b.xhi + 1, b.yhi + h},  // north wall
      Rect{b.xlo - w, b.ylo - 1, b.xlo, b.yhi + 1},  // west wall
      Rect{b.xhi, b.ylo - 1, b.xhi + w, b.yhi + 1},  // east wall
  };
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (const Rect& wall : walls) {
      std::vector<Rect> pair_cells = cells;
      pair_cells.push_back(wall);
      std::vector<Passage> tmp;
      consider_pair(tmp, pair_cells, i, pair_cells.size() - 1, opts);
      for (Passage& p : tmp) {
        p.cell_b = Passage::npos;  // boundary, not a real cell
        out.push_back(p);
      }
    }
  }
  return out;
}

}  // namespace gcr::congestion
