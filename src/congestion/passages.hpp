#pragma once

#include <cstddef>
#include <vector>

#include "geometry/geometry.hpp"
#include "layout/layout.hpp"

/// \file passages.hpp
/// Inter-cell passages — the paper's "congested passages between adjacent
/// cells".  "Since there are no channels the term [channel congestion] is
/// slightly abused, but it refers here to congested passages between
/// adjacent cells."  A passage is the gap region between two facing cell
/// edges (or between a cell edge and the routing boundary); its capacity is
/// the number of wire tracks that fit in the gap.

namespace gcr::congestion {

struct Passage {
  /// The open corridor between the two facing edges.
  geom::Rect region;
  /// The axis wires traverse the passage along (perpendicular to the gap).
  geom::Axis flow_axis = geom::Axis::kX;
  /// Gap width in DBU.
  geom::Coord gap = 0;
  /// Wire tracks that fit: gap / wire_pitch (at least 1 when gap > 0).
  std::size_t capacity = 0;
  /// The two cells forming the passage; second == npos for cell-to-boundary.
  std::size_t cell_a = npos;
  std::size_t cell_b = npos;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

struct PassageOptions {
  /// Wire pitch in DBU, for capacity computation.
  geom::Coord wire_pitch = 2;
  /// Only gaps at most this wide count as passages (wider regions are open
  /// field, not chokepoints).  0 = no limit.
  geom::Coord max_gap = 0;
};

/// Extracts every passage between facing cell pairs (projection overlap,
/// no third cell in between) and between cells and the routing boundary.
[[nodiscard]] std::vector<Passage> extract_passages(
    const layout::Layout& lay, const PassageOptions& opts = {});

}  // namespace gcr::congestion
