#include "congestion/congestion_map.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace gcr::congestion {

using geom::Segment;

CongestionMap::CongestionMap(std::vector<Passage> passages) {
  loads_.reserve(passages.size());
  for (Passage& p : passages) loads_.push_back(PassageLoad{std::move(p), 0});
  nets_.resize(loads_.size());
}

void CongestionMap::add_net(std::size_t net_idx, const route::NetRoute& nr) {
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    const geom::Rect& region = loads_[i].passage.region;
    const bool crosses = std::any_of(
        nr.segments.begin(), nr.segments.end(), [&region](const Segment& s) {
          // A wire uses the passage when it runs through the corridor's
          // open area (hugging the rim counts too: the rim is where nets
          // pile up against the cell edge).
          return s.bounds().intersects(region);
        });
    if (!crosses) continue;
    auto& occupants = nets_[i];
    if (std::find(occupants.begin(), occupants.end(), net_idx) ==
        occupants.end()) {
      occupants.push_back(net_idx);
      ++loads_[i].occupancy;
    }
  }
}

std::vector<std::size_t> CongestionMap::congested() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    if (loads_[i].overflow() > 0) out.push_back(i);
  }
  return out;
}

std::size_t CongestionMap::max_occupancy() const noexcept {
  std::size_t best = 0;
  for (const PassageLoad& l : loads_) best = std::max(best, l.occupancy);
  return best;
}

std::size_t CongestionMap::total_overflow() const noexcept {
  std::size_t sum = 0;
  for (const PassageLoad& l : loads_) sum += l.overflow();
  return sum;
}

}  // namespace gcr::congestion
