#pragma once

#include <cstddef>
#include <vector>

#include "congestion/passages.hpp"
#include "core/route_types.hpp"

/// \file congestion_map.hpp
/// Passage occupancy accounting.
///
/// "A first-pass route of all nets would reveal congested areas.  These
/// congested areas would manifest themselves in the form of several nets
/// hugging the edge of a cell which was close to an adjacent cell."
/// The map counts, per passage, how many distinct nets run wire through it,
/// and reports overflow against the passage capacity.

namespace gcr::congestion {

struct PassageLoad {
  Passage passage;
  std::size_t occupancy = 0;  ///< distinct nets crossing the passage
  [[nodiscard]] std::size_t overflow() const noexcept {
    return occupancy > passage.capacity ? occupancy - passage.capacity : 0;
  }
};

class CongestionMap {
 public:
  explicit CongestionMap(std::vector<Passage> passages);

  /// Accounts one routed net: each passage its segments touch gains one
  /// occupant (counted once per net, however many segments cross).
  void add_net(std::size_t net_idx, const route::NetRoute& nr);

  [[nodiscard]] const std::vector<PassageLoad>& loads() const noexcept {
    return loads_;
  }

  /// Indices (into loads()) of passages over capacity.
  [[nodiscard]] std::vector<std::size_t> congested() const;

  /// Nets recorded as crossing the given passage.
  [[nodiscard]] const std::vector<std::size_t>& nets_through(
      std::size_t passage_idx) const {
    return nets_.at(passage_idx);
  }

  [[nodiscard]] std::size_t max_occupancy() const noexcept;
  [[nodiscard]] std::size_t total_overflow() const noexcept;

 private:
  std::vector<PassageLoad> loads_;
  std::vector<std::vector<std::size_t>> nets_;  // per passage
};

}  // namespace gcr::congestion
