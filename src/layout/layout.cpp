#include "layout/layout.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gcr::layout {

std::vector<geom::Rect> Cell::obstacles() const {
  if (!polygonal()) return {outline_};
  // An invalid polygon cannot be decomposed (its edges are not even
  // axis-parallel); fall back to the bounding outline so callers that run
  // before/while validate() reports the issue never see garbage rects.
  if (!shape_->valid()) return {outline_};
  return shape_->blocking_rects();
}

std::uint32_t Cell::add_terminal(Terminal t) {
  terminals_.push_back(std::move(t));
  return static_cast<std::uint32_t>(terminals_.size() - 1);
}

std::uint32_t Cell::add_pin_terminal(std::string name, geom::Point pos) {
  Terminal t;
  t.name = name;
  t.pins.push_back(Pin{pos, std::move(name)});
  return add_terminal(std::move(t));
}

void Cell::translate(geom::Coord dx, geom::Coord dy) {
  outline_ = geom::Rect{outline_.xlo + dx, outline_.ylo + dy,
                        outline_.xhi + dx, outline_.yhi + dy};
  if (shape_.has_value()) {
    std::vector<geom::Point> verts = shape_->vertices();
    for (geom::Point& v : verts) {
      v.x += dx;
      v.y += dy;
    }
    shape_ = geom::OrthoPolygon{std::move(verts)};
  }
  for (Terminal& t : terminals_) {
    for (Pin& p : t.pins) {
      p.pos.x += dx;
      p.pos.y += dy;
    }
  }
}

CellId Layout::add_cell(Cell c) {
  cells_.push_back(std::move(c));
  return CellId{static_cast<std::uint32_t>(cells_.size() - 1)};
}

std::uint32_t Layout::add_pad(Terminal t) {
  pads_.push_back(std::move(t));
  return static_cast<std::uint32_t>(pads_.size() - 1);
}

TerminalRef Layout::add_pad_pin(std::string name, geom::Point pos) {
  Terminal t;
  t.name = name;
  t.pins.push_back(Pin{pos, std::move(name)});
  return TerminalRef{CellId{}, add_pad(std::move(t))};
}

NetId Layout::add_net(Net n) {
  nets_.push_back(std::move(n));
  return NetId{static_cast<std::uint32_t>(nets_.size() - 1)};
}

bool Layout::terminal_exists(const TerminalRef& ref) const noexcept {
  if (!ref.cell.valid()) return ref.terminal < pads_.size();
  if (ref.cell.value >= cells_.size()) return false;
  return ref.terminal < cells_[ref.cell.value].terminals().size();
}

const Terminal& Layout::terminal(const TerminalRef& ref) const {
  if (!ref.cell.valid()) return pads_.at(ref.terminal);
  return cells_.at(ref.cell.value).terminals().at(ref.terminal);
}

std::vector<geom::Rect> Layout::obstacles() const {
  std::vector<geom::Rect> out;
  out.reserve(cells_.size());
  for (const Cell& c : cells_) {
    for (const geom::Rect& r : c.obstacles()) out.push_back(r);
  }
  return out;
}

std::size_t Layout::pin_count() const noexcept {
  std::size_t n = 0;
  for (const Cell& c : cells_) {
    for (const Terminal& t : c.terminals()) n += t.pins.size();
  }
  for (const Terminal& t : pads_) n += t.pins.size();
  return n;
}

namespace {

std::string describe(const TerminalRef& ref) {
  std::ostringstream os;
  if (ref.cell.valid()) {
    os << "cell#" << ref.cell.value << "/term#" << ref.terminal;
  } else {
    os << "pad#" << ref.terminal;
  }
  return os.str();
}

}  // namespace

std::vector<ValidationIssue> Layout::validate() const {
  std::vector<ValidationIssue> issues;
  const auto add = [&issues](ValidationIssue::Kind k, std::string d) {
    issues.push_back(ValidationIssue{k, std::move(d)});
  };

  // -- Placement restrictions (paper: rectangular, orthogonal, finite and
  //    non-zero distance apart, inside the routing boundary).
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    std::ostringstream who;
    who << "cell#" << i << " '" << c.name() << "'";
    if (!c.outline().proper()) {
      add(ValidationIssue::Kind::kCellNotProper, who.str());
      continue;
    }
    if (c.polygonal() && !c.shape().valid()) {
      add(ValidationIssue::Kind::kInvalidPolygon, who.str());
      continue;
    }
    if (!boundary_.empty() && !boundary_.contains(c.outline())) {
      add(ValidationIssue::Kind::kCellOutsideBoundary, who.str());
    }
  }
  // Pairwise separation is measured between the cells' actual blocking
  // rectangles (polygon cells decompose), so nested orthogonal-polygon
  // shapes with overlapping bounding boxes are judged correctly.
  const auto placeable = [](const Cell& c) {
    return c.outline().proper() && (!c.polygonal() || c.shape().valid());
  };
  std::vector<std::vector<geom::Rect>> cell_obstacles;
  cell_obstacles.reserve(cells_.size());
  for (const Cell& c : cells_) cell_obstacles.push_back(c.obstacles());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (!placeable(cells_[i])) continue;
    for (std::size_t j = i + 1; j < cells_.size(); ++j) {
      if (!placeable(cells_[j])) continue;
      geom::Coord sep = geom::kCoordMax;
      for (const geom::Rect& a : cell_obstacles[i]) {
        for (const geom::Rect& b : cell_obstacles[j]) {
          sep = std::min(sep, a.separation(b));
        }
      }
      if (sep < min_separation_) {
        std::ostringstream os;
        os << "cell#" << i << " and cell#" << j << " separation " << sep
           << " < " << min_separation_;
        add(ValidationIssue::Kind::kCellsTooClose, os.str());
      }
    }
  }

  // -- Pins must not sit strictly inside any blocking interior (a pin on a
  //    cell boundary is the normal case; a buried pin is unreachable).
  const auto obstacle_rects = obstacles();
  const auto check_pins = [&](const Terminal& t, const std::string& who) {
    if (t.pins.empty()) {
      add(ValidationIssue::Kind::kTerminalNoPins, who);
      return;
    }
    for (const Pin& p : t.pins) {
      for (const geom::Rect& r : obstacle_rects) {
        if (r.contains_open(p.pos)) {
          std::ostringstream os;
          os << who << " pin " << p.pos << " inside obstacle " << r;
          add(ValidationIssue::Kind::kPinInsideCell, os.str());
          break;
        }
      }
    }
  };
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    for (std::size_t t = 0; t < cells_[i].terminals().size(); ++t) {
      std::ostringstream who;
      who << "cell#" << i << "/term#" << t;
      check_pins(cells_[i].terminals()[t], who.str());
    }
  }
  for (std::size_t t = 0; t < pads_.size(); ++t) {
    std::ostringstream who;
    who << "pad#" << t;
    check_pins(pads_[t], who.str());
  }

  // -- Netlist consistency.
  for (std::size_t n = 0; n < nets_.size(); ++n) {
    const Net& net = nets_[n];
    std::ostringstream who;
    who << "net#" << n << " '" << net.name() << "'";
    if (net.terminals().size() < 2) {
      add(ValidationIssue::Kind::kNetTooSmall, who.str());
    }
    for (const TerminalRef& ref : net.terminals()) {
      if (!terminal_exists(ref)) {
        add(ValidationIssue::Kind::kDanglingTerminal,
            who.str() + " -> " + describe(ref));
      }
    }
  }
  return issues;
}

std::string_view to_string(ValidationIssue::Kind k) noexcept {
  using Kind = ValidationIssue::Kind;
  switch (k) {
    case Kind::kCellNotProper: return "cell-not-proper";
    case Kind::kCellOutsideBoundary: return "cell-outside-boundary";
    case Kind::kCellsTooClose: return "cells-too-close";
    case Kind::kInvalidPolygon: return "invalid-polygon";
    case Kind::kPinInsideCell: return "pin-inside-cell";
    case Kind::kDanglingTerminal: return "dangling-terminal";
    case Kind::kNetTooSmall: return "net-too-small";
    case Kind::kTerminalNoPins: return "terminal-no-pins";
  }
  return "unknown";
}

}  // namespace gcr::layout
