#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

/// \file ids.hpp
/// Strong index types for layout entities.  Each is a thin wrapper over a
/// 32-bit index into the owning container; mixing them up is a compile error.

namespace gcr::layout {

namespace detail {

template <class Tag>
struct StrongId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid =
      std::numeric_limits<std::uint32_t>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const noexcept {
    return value != kInvalid;
  }
  friend constexpr auto operator<=>(const StrongId&, const StrongId&) = default;
};

}  // namespace detail

struct CellTag {};
struct NetTag {};

/// Index of a cell within Layout::cells().
using CellId = detail::StrongId<CellTag>;
/// Index of a net within Layout::nets().
using NetId = detail::StrongId<NetTag>;

/// A terminal is addressed by its owning cell plus index, or — for pads and
/// other cell-less terminals — by an index into the layout's pad-terminal
/// list (cell invalid).
struct TerminalRef {
  CellId cell;             ///< invalid() => pad terminal owned by the layout
  std::uint32_t terminal = 0;

  friend constexpr auto operator<=>(const TerminalRef&, const TerminalRef&) =
      default;
};

}  // namespace gcr::layout

template <class Tag>
struct std::hash<gcr::layout::detail::StrongId<Tag>> {
  std::size_t operator()(
      const gcr::layout::detail::StrongId<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
