#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "geometry/geometry.hpp"
#include "layout/ids.hpp"

/// \file layout.hpp
/// The general-cell layout model: rectangular (or orthogonal-polygon) blocks
/// placed orthogonally a non-zero distance apart, with multi-pin terminals
/// grouped into multi-terminal nets — exactly the problem statement of the
/// paper's introduction.

namespace gcr::layout {

/// A physical connection point.  Gridless: any database-unit coordinate.
struct Pin {
  geom::Point pos;
  std::string name;  ///< optional; empty for anonymous pins
};

/// A logical terminal: one or more electrically-equivalent pins.
/// "Multi-pin terminals are handled by logically grouping all pins which
/// belong to a terminal" — connecting any one pin connects the terminal, and
/// all of its pins join the connected set.
struct Terminal {
  std::string name;
  std::vector<Pin> pins;
};

/// A placed block ("general cell", macro).  The outline is the blocking
/// region; routes may hug its boundary but not cross its open interior.
/// Orthogonal-polygon cells (the paper's extension) carry a shape whose
/// rectangle decomposition supplies the obstacles; rectangular cells use the
/// outline directly.
class Cell {
 public:
  Cell() = default;
  Cell(std::string name, geom::Rect outline)
      : name_(std::move(name)), outline_(outline) {}
  Cell(std::string name, geom::OrthoPolygon shape)
      : name_(std::move(name)),
        outline_(shape.bounding_box()),
        shape_(std::move(shape)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const geom::Rect& outline() const noexcept { return outline_; }
  [[nodiscard]] bool polygonal() const noexcept { return shape_.has_value(); }
  [[nodiscard]] const geom::OrthoPolygon& shape() const {
    return *shape_;
  }

  /// The blocking rectangles this cell contributes: {outline} when
  /// rectangular, the polygon decomposition otherwise.
  [[nodiscard]] std::vector<geom::Rect> obstacles() const;

  [[nodiscard]] const std::vector<Terminal>& terminals() const noexcept {
    return terminals_;
  }

  /// Adds a terminal; returns its index within this cell.
  std::uint32_t add_terminal(Terminal t);

  /// Convenience: single-pin terminal at \p pos.
  std::uint32_t add_pin_terminal(std::string name, geom::Point pos);

  /// Rigid translation of the cell: outline, polygon shape, and every pin
  /// move together.  Used by the placement-adjustment feedback loop.
  void translate(geom::Coord dx, geom::Coord dy);

 private:
  std::string name_;
  geom::Rect outline_;
  std::optional<geom::OrthoPolygon> shape_;
  std::vector<Terminal> terminals_;
};

/// A net connects two or more terminals.  Routing builds an approximate
/// Steiner tree over them.
class Net {
 public:
  Net() = default;
  explicit Net(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<TerminalRef>& terminals() const noexcept {
    return terminals_;
  }
  void add_terminal(TerminalRef ref) { terminals_.push_back(ref); }

 private:
  std::string name_;
  std::vector<TerminalRef> terminals_;
};

/// One placement-rule or netlist-consistency violation found by validation.
struct ValidationIssue {
  enum class Kind {
    kCellNotProper,        ///< zero-width/height or empty outline
    kCellOutsideBoundary,  ///< outline not contained in the routing boundary
    kCellsTooClose,        ///< separation not strictly positive (or < minimum)
    kInvalidPolygon,       ///< orthogonal-polygon shape fails validity
    kPinInsideCell,        ///< pin strictly inside some cell's interior
    kDanglingTerminal,     ///< net references a terminal that does not exist
    kNetTooSmall,          ///< net with fewer than two terminals
    kTerminalNoPins,       ///< terminal with no pins
  };
  Kind kind;
  std::string detail;
};

/// The complete routing problem: boundary, placed cells, pad terminals, nets.
class Layout {
 public:
  Layout() = default;
  explicit Layout(geom::Rect boundary) : boundary_(boundary) {}

  [[nodiscard]] const geom::Rect& boundary() const noexcept {
    return boundary_;
  }
  void set_boundary(geom::Rect b) noexcept { boundary_ = b; }

  /// Minimum inter-cell separation the placement must respect.  The paper
  /// requires blocks "placed a finite and non-zero distance apart"; callers
  /// may demand more than 1 DBU to reserve routing space.
  [[nodiscard]] geom::Coord min_separation() const noexcept {
    return min_separation_;
  }
  void set_min_separation(geom::Coord s) noexcept { min_separation_ = s; }

  [[nodiscard]] const std::vector<Cell>& cells() const noexcept {
    return cells_;
  }
  [[nodiscard]] const Cell& cell(CellId id) const { return cells_.at(id.value); }
  [[nodiscard]] Cell& cell(CellId id) { return cells_.at(id.value); }
  CellId add_cell(Cell c);

  /// Pad terminals: cell-less terminals (e.g. chip I/O pads on the boundary).
  [[nodiscard]] const std::vector<Terminal>& pads() const noexcept {
    return pads_;
  }
  std::uint32_t add_pad(Terminal t);
  /// Convenience: single-pin pad.
  TerminalRef add_pad_pin(std::string name, geom::Point pos);

  [[nodiscard]] const std::vector<Net>& nets() const noexcept { return nets_; }
  [[nodiscard]] const Net& net(NetId id) const { return nets_.at(id.value); }
  NetId add_net(Net n);

  /// Resolves a terminal reference; throws std::out_of_range when dangling.
  [[nodiscard]] const Terminal& terminal(const TerminalRef& ref) const;
  [[nodiscard]] bool terminal_exists(const TerminalRef& ref) const noexcept;

  /// All blocking rectangles (cells, polygon cells decomposed), in cell order.
  [[nodiscard]] std::vector<geom::Rect> obstacles() const;

  /// Checks every placement restriction and netlist invariant; empty result
  /// means the layout is routable by the global router.
  [[nodiscard]] std::vector<ValidationIssue> validate() const;
  [[nodiscard]] bool valid() const { return validate().empty(); }

  /// Total pin count across cells and pads (for reporting).
  [[nodiscard]] std::size_t pin_count() const noexcept;

 private:
  geom::Rect boundary_;
  geom::Coord min_separation_ = 1;
  std::vector<Cell> cells_;
  std::vector<Terminal> pads_;
  std::vector<Net> nets_;
};

[[nodiscard]] std::string_view to_string(ValidationIssue::Kind k) noexcept;

}  // namespace gcr::layout
