#include "detail/track_router.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/steiner.hpp"

namespace gcr::detail {

using geom::Coord;
using geom::Point;
using geom::Rect;

namespace {

/// Search-space adapter over the two-layer fabric.  Moves: +-x on layer 0,
/// +-y on layer 1, via between layers.  Cells owned by other nets block.
class TrackSpace {
 public:
  using State = TrackPoint;

  TrackSpace(const std::vector<std::uint32_t>& owner, std::int32_t nx,
             std::int32_t ny, Coord pitch, geom::Cost via_cost,
             std::uint32_t net, TrackPoint goal)
      : owner_(owner),
        nx_(nx),
        ny_(ny),
        pitch_(pitch),
        via_cost_(via_cost),
        net_(net),
        goal_(goal) {}

  void successors(const State& s,
                  std::vector<search::Successor<State>>& out) const {
    const auto try_push = [&](TrackPoint p, geom::Cost c) {
      if (p.ix < 0 || p.ix >= nx_ || p.iy < 0 || p.iy >= ny_) return;
      if (!usable(p)) return;
      out.push_back({p, c});
    };
    if (s.layer == 0) {  // horizontal layer
      try_push({s.ix + 1, s.iy, 0}, pitch_);
      try_push({s.ix - 1, s.iy, 0}, pitch_);
    } else {  // vertical layer
      try_push({s.ix, s.iy + 1, 1}, pitch_);
      try_push({s.ix, s.iy - 1, 1}, pitch_);
    }
    try_push({s.ix, s.iy, static_cast<std::uint8_t>(1 - s.layer)},
             via_cost_ * pitch_);
  }

  [[nodiscard]] geom::Cost heuristic(const State& s) const {
    // Manhattan to the goal column/row, layer-agnostic: admissible.
    return (geom::coord_abs_diff(s.ix, goal_.ix) +
            geom::coord_abs_diff(s.iy, goal_.iy)) *
           pitch_;
  }

  [[nodiscard]] bool is_goal(const State& s) const {
    return s.ix == goal_.ix && s.iy == goal_.iy;
  }

 private:
  [[nodiscard]] bool usable(const TrackPoint& p) const {
    const std::uint32_t o =
        owner_[(static_cast<std::size_t>(p.layer) *
                    static_cast<std::size_t>(ny_) +
                static_cast<std::size_t>(p.iy)) *
                   static_cast<std::size_t>(nx_) +
               static_cast<std::size_t>(p.ix)];
    return o == 0xFFFFFFFFu || o == net_;
  }

  const std::vector<std::uint32_t>& owner_;
  std::int32_t nx_, ny_;
  Coord pitch_;
  geom::Cost via_cost_;
  std::uint32_t net_;
  TrackPoint goal_;
};

}  // namespace

TrackRouter::TrackRouter(const layout::Layout& lay, TrackRouteOptions opts)
    : origin_(lay.boundary().ll()), opts_(opts) {
  const Rect& b = lay.boundary();
  nx_ = static_cast<std::int32_t>(b.width() / opts_.pitch) + 1;
  ny_ = static_cast<std::int32_t>(b.height() / opts_.pitch) + 1;
  owner_.assign(2 * static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_),
                kFree);

  // Macros block both layers (no over-the-cell routing in a 1984 two-layer
  // process).  Open interiors only: pins on boundaries stay reachable.
  for (const Rect& r : lay.obstacles()) {
    const auto first_inside = [this](Coord lo, Coord org) {
      return static_cast<std::int32_t>((lo - org) / opts_.pitch) + 1;
    };
    const auto last_inside = [this](Coord hi, Coord org) {
      Coord q = (hi - org) / opts_.pitch;
      if (org + q * opts_.pitch >= hi) --q;
      return static_cast<std::int32_t>(q);
    };
    const std::int32_t ix0 = std::max(0, first_inside(r.xlo, origin_.x));
    const std::int32_t ix1 = std::min(nx_ - 1, last_inside(r.xhi, origin_.x));
    const std::int32_t iy0 = std::max(0, first_inside(r.ylo, origin_.y));
    const std::int32_t iy1 = std::min(ny_ - 1, last_inside(r.yhi, origin_.y));
    for (std::int32_t iy = iy0; iy <= iy1; ++iy) {
      for (std::int32_t ix = ix0; ix <= ix1; ++ix) {
        owner_[flat(ix, iy, 0)] = kBlocked;
        owner_[flat(ix, iy, 1)] = kBlocked;
      }
    }
  }
}

bool TrackRouter::usable(const TrackPoint& p, std::uint32_t net) const {
  const std::uint32_t o = owner_[flat(p.ix, p.iy, p.layer)];
  return o == kFree || o == net;
}

bool TrackRouter::route_connection(std::size_t net, const Point& a,
                                   const Point& b, TrackRealization& out) {
  const std::uint32_t net32 = static_cast<std::uint32_t>(net);
  // Snap to the nearest fabric cell usable by this net (pins sit on cell
  // boundaries, which may rasterize a half-pitch inside the macro; the ring
  // search escapes to the adjacent routable column/row).
  const auto snap = [this, net32](const Point& p) -> TrackPoint {
    const TrackPoint c{
        static_cast<std::int32_t>(std::clamp<Coord>(
            (p.x - origin_.x + opts_.pitch / 2) / opts_.pitch, 0, nx_ - 1)),
        static_cast<std::int32_t>(std::clamp<Coord>(
            (p.y - origin_.y + opts_.pitch / 2) / opts_.pitch, 0, ny_ - 1)),
        0};
    const auto ok = [&](std::int32_t ix, std::int32_t iy) {
      if (ix < 0 || ix >= nx_ || iy < 0 || iy >= ny_) return false;
      return usable(TrackPoint{ix, iy, 0}, net32) ||
             usable(TrackPoint{ix, iy, 1}, net32);
    };
    if (ok(c.ix, c.iy)) return c;
    for (std::int32_t ring = 1; ring < std::max(nx_, ny_); ++ring) {
      for (std::int32_t dx = -ring; dx <= ring; ++dx) {
        const std::int32_t rem = ring - (dx < 0 ? -dx : dx);
        for (const std::int32_t dy : {-rem, rem}) {
          if (ok(c.ix + dx, c.iy + dy)) {
            return TrackPoint{c.ix + dx, c.iy + dy, 0};
          }
          if (rem == 0) break;
        }
      }
    }
    return c;  // fully blocked fabric: let the search fail cleanly
  };
  TrackPoint start = snap(a);
  TrackPoint goal = snap(b);
  if (start.ix == goal.ix && start.iy == goal.iy) return true;

  const TrackSpace space(owner_, nx_, ny_, opts_.pitch, opts_.via_cost, net32,
                         goal);
  search::Searcher<TrackSpace> searcher(space);
  search::SearchOptions sopts;
  sopts.strategy = search::Strategy::kAStar;
  sopts.max_expansions = opts_.max_expansions;
  // Seed both layers at the start pin (a pin is reachable on either layer).
  std::vector<TrackPoint> starts;
  for (const std::uint8_t l : {0, 1}) {
    TrackPoint s = start;
    s.layer = l;
    if (usable(s, net32)) starts.push_back(s);
  }
  if (starts.empty()) return false;
  const auto result = searcher.run(starts, sopts);
  out.stats += result.stats;
  if (!result.found) return false;

  // Commit the wire to the fabric and record it.
  TrackWire wire;
  wire.net = net;
  geom::Cost length = 0;
  for (std::size_t i = 0; i < result.path.size(); ++i) {
    const TrackPoint& p = result.path[i];
    owner_[flat(p.ix, p.iy, p.layer)] = net32;
    wire.points.push_back(Point{origin_.x + p.ix * opts_.pitch,
                                origin_.y + p.iy * opts_.pitch});
    wire.layers.push_back(p.layer);
    if (i > 0) {
      const TrackPoint& q = result.path[i - 1];
      if (p.layer != q.layer) {
        ++out.via_count;
      } else {
        length += opts_.pitch;
      }
    }
  }
  out.total_wirelength += length;
  out.wires.push_back(std::move(wire));
  return true;
}

TrackRealization TrackRouter::realize(const route::NetlistResult& global) {
  TrackRealization out;
  for (std::size_t n = 0; n < global.routes.size(); ++n) {
    const route::NetRoute& nr = global.routes[n];
    if (!nr.ok) continue;
    // Re-route each global connection endpoint-to-endpoint at track level.
    for (const route::Route& conn : nr.connections) {
      if (conn.points.size() < 2) continue;
      if (route_connection(n, conn.points.front(), conn.points.back(), out)) {
        ++out.connections_routed;
      } else {
        ++out.connections_failed;
      }
    }
  }
  return out;
}

}  // namespace gcr::detail
