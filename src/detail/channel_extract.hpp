#pragma once

#include <cstddef>
#include <vector>

#include "core/netlist_router.hpp"
#include "detail/channel_router.hpp"
#include "detail/channels.hpp"

/// \file channel_extract.hpp
/// Bridges the dynamically discovered channels to the classic channel-
/// routing formulation: each subnet's trunk endpoints become pin columns,
/// and the side each pin enters from (top or bottom) is recovered from the
/// net's own perpendicular segments at that endpoint.  The resulting
/// ChannelProblem feeds the VCG/dogleg channel router, giving the detailed
/// stage constraint-aware track assignment instead of plain left-edge.

namespace gcr::detail {

/// Builds the two-row channel problem for \p channel.  Net ids in the
/// problem are subnet net indices + 1 (the channel formulation reserves 0
/// for "no pin").  Endpoints whose connecting perpendicular segment leaves
/// upward pin on the top row; downward on the bottom row; endpoints with no
/// perpendicular continuation contribute an interval but no vertical
/// constraint (they are recorded on the row facing the channel's extent
/// center so the trunk interval survives).
[[nodiscard]] ChannelProblem make_channel_problem(
    const Channel& channel, const std::vector<SubNet>& subnets,
    const route::NetlistResult& global);

/// Result of routing every discovered channel with the VCG router.
struct VcgSummary {
  std::size_t channels_routed = 0;
  std::size_t channels_failed = 0;  ///< irreducible constraint cycles
  std::size_t total_tracks = 0;
  std::size_t total_doglegs = 0;
  std::size_t density_lower_bound = 0;  ///< sum of per-channel densities
};

/// Routes every channel of \p channels via the constrained left-edge
/// algorithm; channels with irreducible cycles are counted as failed (the
/// plain left-edge assignment remains the fallback for them).
[[nodiscard]] VcgSummary route_channels_vcg(
    const std::vector<Channel>& channels, const std::vector<SubNet>& subnets,
    const route::NetlistResult& global);

}  // namespace gcr::detail
