#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/netlist_router.hpp"
#include "detail/channels.hpp"
#include "detail/left_edge.hpp"

/// \file detailed_router.hpp
/// The detailed-routing substrate that follows global routing.
///
/// "This approach does require a detailed router to follow which does the
/// track assignment.  A special algorithm has been developed which
/// dynamically assigns channels based on net interference rather than cell
/// placement.  Within the dynamically assigned channel the subnets can be
/// track-assigned using standard channel routing algorithms."
///
/// Pipeline: global routes are split into axis-parallel subnets; channels
/// are discovered by interference clustering; each channel is track-assigned
/// with the left-edge algorithm; layers follow the H/V convention with a via
/// at every bend.  The result carries the final offset geometry plus the
/// counters benchmark E9 uses to reproduce the paper's global-versus-
/// detailed runtime claim.

namespace gcr::detail {

struct DetailedOptions {
  /// Interference window for channel clustering (DBU).
  geom::Coord channel_window = 8;
  /// Track pitch for the offset geometry (DBU).
  geom::Coord track_pitch = 2;
  /// Absolute deadline; default = none.  Checked between channels — an
  /// expired run returns the channels assigned so far with
  /// `cancelled = true`.
  std::chrono::steady_clock::time_point deadline{};
  /// Cooperative cancel (client disconnect), checked with the deadline.
  std::shared_ptr<std::atomic<bool>> cancel;
};

/// A subnet after track assignment: its final (offset) geometry and layer.
struct AssignedWire {
  std::size_t net = 0;
  geom::Segment seg;     ///< track-offset geometry
  std::size_t layer = 0; ///< 0 = horizontal layer, 1 = vertical layer
  std::size_t channel = 0;
  std::size_t track = 0;
};

struct DetailedResult {
  std::size_t subnet_count = 0;
  std::size_t channel_count = 0;
  std::size_t total_tracks = 0;        ///< sum of tracks over channels
  std::size_t max_channel_tracks = 0;  ///< widest channel
  std::size_t via_count = 0;           ///< one per bend of every net
  std::vector<AssignedWire> wires;
  std::vector<geom::Point> vias;
  /// True when the cancel token or deadline stopped track assignment early;
  /// the wires/counters cover only the channels completed before the stop.
  bool cancelled = false;
};

class DetailedRouter {
 public:
  explicit DetailedRouter(DetailedOptions opts = {}) : opts_(opts) {}

  /// Runs channel discovery + track assignment + layer assignment over a
  /// globally routed netlist.
  [[nodiscard]] DetailedResult run(const route::NetlistResult& global) const;

 private:
  DetailedOptions opts_;
};

/// Splits every routed net into axis-parallel subnets (degenerate pieces
/// dropped).
[[nodiscard]] std::vector<SubNet> collect_subnets(
    const route::NetlistResult& global);

}  // namespace gcr::detail
