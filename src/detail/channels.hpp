#pragma once

#include <cstddef>
#include <vector>

#include "geometry/geometry.hpp"

/// \file channels.hpp
/// Dynamic channel assignment.
///
/// The paper's follow-on detailed router "dynamically assigns channels based
/// on net interference rather than cell placement".  A *subnet* is one
/// axis-parallel piece of a global route; two parallel subnets interfere
/// when their spans overlap and their tracks are within one channel window
/// of each other.  The transitive closure of interference defines the
/// channels — no a-priori slicing of the routing surface into channels is
/// ever done, which is exactly the paper's argument for skipping routing
/// surface decomposition.

namespace gcr::detail {

/// One axis-parallel piece of a routed net.
struct SubNet {
  std::size_t net = 0;
  geom::Segment seg;
};

/// A dynamically discovered channel: a set of mutually interfering parallel
/// subnets, to be track-assigned together.
struct Channel {
  geom::Axis axis = geom::Axis::kX;
  std::vector<std::size_t> members;  ///< indices into the subnet vector
  geom::Rect extent;                 ///< hull of member segments
};

/// Clusters subnets into channels by interference.  \p window is the track
/// distance (DBU) within which two parallel overlapping subnets interfere.
[[nodiscard]] std::vector<Channel> assign_channels(
    const std::vector<SubNet>& subnets, geom::Coord window);

}  // namespace gcr::detail
