#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/netlist_router.hpp"
#include "layout/layout.hpp"
#include "search/searcher.hpp"

/// \file track_router.hpp
/// Track-level realization: the "detailed routing and layer assignment" that
/// follows global routing.
///
/// The paper: "This approach does require a detailed router to follow which
/// does the track assignment ... The processor time consumed by global
/// routing is always less than the time consumed by detailed routing and
/// layer assignment."  The reason is resolution: global routing searches the
/// sparse escape-line graph between macros, while detailed routing must
/// produce legal geometry at wire-pitch resolution, wire by wire, with nets
/// blocking one another and vias at every layer change.
///
/// This module is that substrate: a classic two-layer gridded track router.
/// Layer 0 carries horizontal wires, layer 1 vertical wires (the H/V
/// convention), vias connect the layers at a configurable cost, and every
/// routed net occupies its grid cells against later nets.  Each global
/// connection is re-routed at grid resolution between its endpoints; the
/// global route's corridor gives the net ordering (netlist order, as a 1984
/// system would).

namespace gcr::detail {

/// A grid state of the two-layer routing fabric.
struct TrackPoint {
  std::int32_t ix = 0;
  std::int32_t iy = 0;
  std::uint8_t layer = 0;  ///< 0 = horizontal layer, 1 = vertical layer

  friend constexpr auto operator<=>(const TrackPoint&, const TrackPoint&) =
      default;
};

struct TrackRouteOptions {
  /// Routing grid pitch in DBU ("the minimum wire spacing").
  geom::Coord pitch = 2;
  /// Cost of a via, in multiples of the pitch cost.
  geom::Cost via_cost = 4;
  /// Abort threshold per connection (0 = unlimited).
  std::size_t max_expansions = 0;
};

/// One realized wire path (grid points in order, layer changes = vias).
struct TrackWire {
  std::size_t net = 0;
  std::vector<geom::Point> points;  ///< DBU positions
  std::vector<std::uint8_t> layers; ///< layer per point
};

struct TrackRealization {
  std::size_t connections_routed = 0;
  std::size_t connections_failed = 0;
  std::size_t via_count = 0;
  geom::Cost total_wirelength = 0;  ///< DBU, vias excluded
  std::vector<TrackWire> wires;
  search::SearchStats stats;
};

/// The two-layer occupancy fabric plus the per-connection router.
class TrackRouter {
 public:
  TrackRouter(const layout::Layout& lay, TrackRouteOptions opts = {});

  /// Realizes every connection of every successfully globally-routed net.
  /// Earlier nets' wires block later nets (grid cells owned per net).
  [[nodiscard]] TrackRealization realize(const route::NetlistResult& global);

  /// Routes one two-point connection at track level; on success the wire is
  /// committed to the fabric.  Exposed for tests.
  [[nodiscard]] bool route_connection(std::size_t net, const geom::Point& a,
                                      const geom::Point& b,
                                      TrackRealization& out);

  [[nodiscard]] std::int32_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::int32_t ny() const noexcept { return ny_; }

 private:
  [[nodiscard]] std::size_t flat(std::int32_t ix, std::int32_t iy,
                                 std::uint8_t layer) const noexcept {
    return (static_cast<std::size_t>(layer) * static_cast<std::size_t>(ny_) +
            static_cast<std::size_t>(iy)) *
               static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(ix);
  }

  /// Owner net of a fabric cell; kFree or kBlocked otherwise.
  static constexpr std::uint32_t kFree = 0xFFFFFFFFu;
  static constexpr std::uint32_t kBlocked = 0xFFFFFFFEu;

  [[nodiscard]] bool usable(const TrackPoint& p, std::uint32_t net) const;

  geom::Point origin_;
  TrackRouteOptions opts_;
  std::int32_t nx_ = 0;
  std::int32_t ny_ = 0;
  std::vector<std::uint32_t> owner_;  ///< 2 * ny * nx fabric cells
};

}  // namespace gcr::detail

template <>
struct std::hash<gcr::detail::TrackPoint> {
  std::size_t operator()(const gcr::detail::TrackPoint& p) const noexcept {
    return (static_cast<std::size_t>(static_cast<std::uint32_t>(p.ix)) << 33) ^
           (static_cast<std::size_t>(static_cast<std::uint32_t>(p.iy)) << 1) ^
           p.layer;
  }
};
