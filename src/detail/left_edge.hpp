#pragma once

#include <cstddef>
#include <vector>

#include "geometry/geometry.hpp"

/// \file left_edge.hpp
/// The classic left-edge channel-routing algorithm: "Within the dynamically
/// assigned channel the subnets can be track-assigned using standard channel
/// routing algorithms which try to minimize the number of tracks used."
/// Intervals belonging to the same net may share a track and may abut;
/// intervals of different nets on one track must be disjoint.

namespace gcr::detail {

struct TrackInterval {
  geom::Interval span;
  std::size_t net = 0;
};

struct TrackAssignment {
  /// Track index per input interval (same order as the input).
  std::vector<std::size_t> track_of;
  std::size_t tracks_used = 0;
};

/// Assigns each interval to the lowest feasible track (left-edge greedy).
/// Deterministic: ties broken by input order after the left-edge sort.
[[nodiscard]] TrackAssignment left_edge(
    const std::vector<TrackInterval>& intervals);

}  // namespace gcr::detail
