#include "detail/channels.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

namespace gcr::detail {

using geom::Axis;
using geom::Coord;

namespace {

/// Minimal union-find over subnet indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<Channel> assign_channels(const std::vector<SubNet>& subnets,
                                     Coord window) {
  UnionFind uf(subnets.size());

  // Interference: same axis, track distance <= window, span overlap.
  // Degenerate subnets (single points) never interfere.
  for (std::size_t i = 0; i < subnets.size(); ++i) {
    if (subnets[i].seg.degenerate()) continue;
    for (std::size_t j = i + 1; j < subnets.size(); ++j) {
      if (subnets[j].seg.degenerate()) continue;
      const geom::Segment& a = subnets[i].seg;
      const geom::Segment& b = subnets[j].seg;
      if (a.axis() != b.axis()) continue;
      if (geom::coord_abs_diff(a.track(), b.track()) > window) continue;
      if (!a.span().overlaps(b.span())) continue;
      uf.unite(i, j);
    }
  }

  // Materialize clusters in deterministic order of first member.
  std::vector<Channel> channels;
  std::vector<std::size_t> channel_of(subnets.size(),
                                      static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < subnets.size(); ++i) {
    if (subnets[i].seg.degenerate()) continue;
    const std::size_t root = uf.find(i);
    if (channel_of[root] == static_cast<std::size_t>(-1)) {
      channel_of[root] = channels.size();
      Channel c;
      c.axis = subnets[i].seg.axis();
      channels.push_back(c);
    }
    Channel& c = channels[channel_of[root]];
    c.members.push_back(i);
    c.extent = c.extent.hull(subnets[i].seg.bounds());
  }
  return channels;
}

}  // namespace gcr::detail
