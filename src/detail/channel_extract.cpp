#include "detail/channel_extract.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <vector>

namespace gcr::detail {

using geom::Axis;
using geom::Coord;
using geom::Point;
using geom::Segment;

namespace {

/// Which side does net `net`'s wire leave trunk endpoint `p` on?  Looks for
/// a perpendicular segment of the same net touching `p`.
/// +1 = top, -1 = bottom, 0 = no perpendicular continuation.
int pin_side(const route::NetlistResult& global, std::size_t net,
             const Point& p, Axis trunk_axis) {
  if (net >= global.routes.size() || !global.routes[net].ok) return 0;
  for (const Segment& s : global.routes[net].segments) {
    if (s.degenerate() || s.axis() == trunk_axis) continue;
    if (!s.contains(p)) continue;
    // The perpendicular segment extends to one side (or both, if p is in
    // its middle — then the net genuinely pins both ways; report the longer
    // side).
    const Axis perp = other(trunk_axis);
    const Coord at = p.along(perp);
    const Coord lo = s.span().lo;
    const Coord hi = s.span().hi;
    if (hi > at && lo < at) return hi - at >= at - lo ? +1 : -1;
    if (hi > at) return +1;
    if (lo < at) return -1;
  }
  return 0;
}

}  // namespace

ChannelProblem make_channel_problem(const Channel& channel,
                                    const std::vector<SubNet>& subnets,
                                    const route::NetlistResult& global) {
  // Collect pin events: (coordinate along the channel, side, net+1).
  struct Event {
    Coord at;
    int side;  // +1 top, -1 bottom, 0 unknown
    int net;
    std::size_t order;  // stable tiebreak
  };
  std::vector<Event> events;
  const Axis ax = channel.axis;
  for (const std::size_t m : channel.members) {
    const SubNet& sn = subnets[m];
    const int net = static_cast<int>(sn.net) + 1;
    for (const Point& endp : {sn.seg.a, sn.seg.b}) {
      events.push_back(Event{endp.along(ax),
                             pin_side(global, sn.net, endp, ax), net,
                             events.size()});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.order < b.order;
  });

  // One column per event keeps the construction conflict-free; unknown-side
  // pins alternate to the bottom row (they impose no real constraint, the
  // row only preserves the trunk's interval).
  ChannelProblem p;
  p.top.assign(events.size(), 0);
  p.bottom.assign(events.size(), 0);
  for (std::size_t c = 0; c < events.size(); ++c) {
    if (events[c].side >= 0 && events[c].side != 0) {
      p.top[c] = events[c].net;
    } else {
      p.bottom[c] = events[c].net;
    }
  }
  return p;
}

VcgSummary route_channels_vcg(const std::vector<Channel>& channels,
                              const std::vector<SubNet>& subnets,
                              const route::NetlistResult& global) {
  VcgSummary out;
  for (const Channel& ch : channels) {
    const ChannelProblem problem = make_channel_problem(ch, subnets, global);
    out.density_lower_bound += problem.density();
    const ChannelResult r = route_channel(problem);
    if (r.ok) {
      ++out.channels_routed;
      out.total_tracks += r.tracks_used;
      out.total_doglegs += r.doglegs;
    } else {
      ++out.channels_failed;
    }
  }
  return out;
}

}  // namespace gcr::detail
