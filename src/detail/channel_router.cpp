#include "detail/channel_router.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace gcr::detail {

namespace {

/// A trunk under construction: one horizontal piece of a net.
struct Piece {
  int net = 0;
  std::size_t lo = 0, hi = 0;
};

/// Pin columns of every net, in column order.
std::map<int, std::vector<std::size_t>> net_columns(
    const ChannelProblem& p) {
  std::map<int, std::vector<std::size_t>> cols;
  for (std::size_t c = 0; c < p.columns(); ++c) {
    for (const int n : {p.top[c], p.bottom[c]}) {
      if (n > 0) cols[n].push_back(c);
    }
  }
  for (auto& [net, v] : cols) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return cols;
}

/// Index of the piece of net `n` covering column `c` (pieces are disjoint
/// except at split columns; prefer the piece that *starts* earlier).
std::size_t piece_at(const std::vector<Piece>& pieces,
                     const std::map<int, std::vector<std::size_t>>& of_net,
                     int n, std::size_t c) {
  for (const std::size_t idx : of_net.at(n)) {
    if (pieces[idx].lo <= c && c <= pieces[idx].hi) return idx;
  }
  return static_cast<std::size_t>(-1);
}

/// Vertical constraint edges between pieces: at every column, the piece
/// pinned on top must sit above the piece pinned on the bottom.
std::set<std::pair<std::size_t, std::size_t>> build_vcg(
    const ChannelProblem& p, const std::vector<Piece>& pieces,
    const std::map<int, std::vector<std::size_t>>& of_net) {
  std::set<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t c = 0; c < p.columns(); ++c) {
    const int t = p.top[c];
    const int b = p.bottom[c];
    if (t <= 0 || b <= 0 || t == b) continue;
    const std::size_t pt = piece_at(pieces, of_net, t, c);
    const std::size_t pb = piece_at(pieces, of_net, b, c);
    if (pt != static_cast<std::size_t>(-1) &&
        pb != static_cast<std::size_t>(-1)) {
      edges.insert({pt, pb});
    }
  }
  return edges;
}

/// Returns one cycle (as a vertex list) in the VCG, or empty when acyclic.
std::vector<std::size_t> find_cycle(
    std::size_t n, const std::set<std::pair<std::size_t, std::size_t>>& edges) {
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& [u, v] : edges) adj[u].push_back(v);
  std::vector<int> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<std::size_t> stack;

  // Recursive DFS via explicit stack of (node, next-child).
  std::vector<std::pair<std::size_t, std::size_t>> frames;
  for (std::size_t s = 0; s < n; ++s) {
    if (color[s] != 0) continue;
    frames.push_back({s, 0});
    color[s] = 1;
    stack.push_back(s);
    while (!frames.empty()) {
      auto& [u, child] = frames.back();
      if (child < adj[u].size()) {
        const std::size_t v = adj[u][child++];
        if (color[v] == 1) {
          // Cycle: suffix of `stack` from v to u.
          const auto it = std::find(stack.begin(), stack.end(), v);
          return {it, stack.end()};
        }
        if (color[v] == 0) {
          color[v] = 1;
          stack.push_back(v);
          frames.push_back({v, 0});
        }
      } else {
        color[u] = 2;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
  return {};
}

}  // namespace

std::size_t ChannelProblem::density() const {
  const auto cols = net_columns(*this);
  std::size_t best = 0;
  for (std::size_t c = 0; c < columns(); ++c) {
    std::size_t d = 0;
    for (const auto& [net, v] : cols) {
      if (v.size() < 2) continue;
      if (v.front() <= c && c <= v.back()) ++d;
    }
    best = std::max(best, d);
  }
  return best;
}

ChannelResult route_channel(const ChannelProblem& problem,
                            const ChannelOptions& opts) {
  ChannelResult result;
  const auto cols = net_columns(problem);

  // Initial pieces: one trunk per net spanning all of its pin columns.
  // Single-column nets need no trunk: a top+bottom pair in one column is a
  // straight vertical wire, and a lone pin needs nothing.
  std::vector<Piece> pieces;
  std::map<int, std::vector<std::size_t>> of_net;
  for (const auto& [net, v] : cols) {
    if (v.size() < 2) continue;
    of_net[net].push_back(pieces.size());
    pieces.push_back(Piece{net, v.front(), v.back()});
  }

  // Break vertical-constraint cycles with doglegs.
  auto edges = build_vcg(problem, pieces, of_net);
  std::size_t guard = 0;
  for (;;) {
    const auto cycle = find_cycle(pieces.size(), edges);
    if (cycle.empty()) break;
    if (!opts.allow_doglegs || ++guard > pieces.size() + cols.size()) {
      return result;  // ok == false: irreducible cycle
    }
    // Split the first cycle member that has an internal pin column.
    bool split_done = false;
    for (const std::size_t idx : cycle) {
      const Piece piece = pieces[idx];
      const auto& pin_cols = cols.at(piece.net);
      for (const std::size_t c : pin_cols) {
        if (c > piece.lo && c < piece.hi) {
          // Replace `idx` with [lo, c]; append [c, hi].
          pieces[idx].hi = c;
          of_net[piece.net].push_back(pieces.size());
          pieces.push_back(Piece{piece.net, c, piece.hi});
          // Keep the per-net piece list ordered by start column.
          auto& lst = of_net[piece.net];
          std::sort(lst.begin(), lst.end(), [&](std::size_t a, std::size_t b) {
            return pieces[a].lo < pieces[b].lo;
          });
          ++result.doglegs;
          split_done = true;
          break;
        }
      }
      if (split_done) break;
    }
    if (!split_done) return result;  // no splittable net: give up
    edges = build_vcg(problem, pieces, of_net);
  }

  // Constrained left-edge: fill tracks top-down; a piece is eligible when
  // all of its VCG predecessors are already placed (on higher tracks).
  std::vector<std::size_t> pred_count(pieces.size(), 0);
  for (const auto& [u, v] : edges) ++pred_count[v];
  std::vector<bool> placed(pieces.size(), false);
  std::size_t remaining = pieces.size();

  std::vector<std::size_t> order(pieces.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&pieces](std::size_t a, std::size_t b) {
                     return pieces[a].lo < pieces[b].lo;
                   });

  std::size_t track = 0;
  while (remaining > 0) {
    long long last_hi = -1;
    bool any = false;
    for (const std::size_t idx : order) {
      if (placed[idx] || pred_count[idx] != 0) continue;
      if (static_cast<long long>(pieces[idx].lo) <= last_hi) continue;
      placed[idx] = true;
      any = true;
      --remaining;
      last_hi = static_cast<long long>(pieces[idx].hi);
      result.trunks.push_back(
          ChannelTrunk{pieces[idx].net, pieces[idx].lo, pieces[idx].hi, track});
    }
    if (any) {
      // Recompute pred counts from unplaced predecessors (simple and safe).
      std::fill(pred_count.begin(), pred_count.end(), 0);
      for (const auto& [u, v] : edges) {
        if (!placed[u]) ++pred_count[v];
      }
      ++track;
    } else {
      return result;  // stuck (should not happen: VCG is acyclic here)
    }
  }
  result.tracks_used = track;
  result.ok = true;
  return result;
}

}  // namespace gcr::detail
