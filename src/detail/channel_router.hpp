#pragma once

#include <cstddef>
#include <vector>

#include "geometry/geometry.hpp"

/// \file channel_router.hpp
/// A classic two-row channel router: the "standard channel routing
/// algorithms which try to minimize the number of tracks used" that the
/// paper's detailed router applies inside each dynamically assigned channel.
///
/// Problem statement (textbook form): a channel with pins on its top and
/// bottom edges at integer columns; `top[c]` / `bottom[c]` give the net id
/// at column c (0 = no pin).  Horizontal net trunks must be assigned to
/// tracks such that (a) trunks of different nets sharing a track do not
/// overlap, and (b) at every column the net pinned on top lies on a higher
/// track than the net pinned on the bottom (the *vertical constraint*).
///
/// The implementation is the constrained left-edge algorithm over the
/// vertical constraint graph (VCG), with single-dogleg splitting to break
/// constraint cycles.  Density (the max column congestion) lower-bounds the
/// track count; the tests verify both legality and near-density results on
/// textbook instances.

namespace gcr::detail {

struct ChannelProblem {
  /// Net id per column; 0 means no pin.  Both vectors share the same length.
  std::vector<int> top;
  std::vector<int> bottom;

  [[nodiscard]] std::size_t columns() const noexcept { return top.size(); }
  /// Max number of nets whose [min,max] column interval covers any column.
  [[nodiscard]] std::size_t density() const;
};

/// One assigned horizontal trunk (a net or a dogleg piece of a net).
struct ChannelTrunk {
  int net = 0;
  std::size_t col_lo = 0;
  std::size_t col_hi = 0;
  std::size_t track = 0;  ///< 0 = topmost track
};

struct ChannelResult {
  bool ok = false;             ///< false: cyclic constraints survived doglegs
  std::size_t tracks_used = 0;
  std::size_t doglegs = 0;     ///< nets split to break cycles
  std::vector<ChannelTrunk> trunks;
};

struct ChannelOptions {
  /// Allow splitting multi-pin nets at internal pin columns to break
  /// vertical-constraint cycles.
  bool allow_doglegs = true;
};

/// Routes the channel; tracks are numbered top (0) to bottom.
[[nodiscard]] ChannelResult route_channel(const ChannelProblem& problem,
                                          const ChannelOptions& opts = {});

}  // namespace gcr::detail
