#include "detail/left_edge.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace gcr::detail {

using geom::Coord;

TrackAssignment left_edge(const std::vector<TrackInterval>& intervals) {
  TrackAssignment out;
  out.track_of.assign(intervals.size(), 0);

  // Left-edge order: ascending left endpoint, then input order.
  std::vector<std::size_t> order(intervals.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&intervals](std::size_t a, std::size_t b) {
                     return intervals[a].span.lo < intervals[b].span.lo;
                   });

  struct Track {
    Coord right = geom::kCoordMin;  // rightmost occupied coordinate
    std::size_t last_net = static_cast<std::size_t>(-1);
  };
  std::vector<Track> tracks;

  for (const std::size_t idx : order) {
    const TrackInterval& iv = intervals[idx];
    bool placed = false;
    for (std::size_t t = 0; t < tracks.size() && !placed; ++t) {
      const bool same_net = tracks[t].last_net == iv.net;
      // Different nets need strict separation; the same net may abut or
      // overlap (it is one electrical node).
      if ((same_net && iv.span.lo >= tracks[t].right) ||
          (!same_net && iv.span.lo > tracks[t].right)) {
        tracks[t].right = std::max(tracks[t].right, iv.span.hi);
        tracks[t].last_net = iv.net;
        out.track_of[idx] = t;
        placed = true;
      }
    }
    if (!placed) {
      out.track_of[idx] = tracks.size();
      tracks.push_back(Track{iv.span.hi, iv.net});
    }
  }
  out.tracks_used = tracks.size();
  return out;
}

}  // namespace gcr::detail
