#include "detail/detailed_router.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <vector>

namespace gcr::detail {

using geom::Axis;
using geom::Coord;
using geom::Point;
using geom::Segment;

std::vector<SubNet> collect_subnets(const route::NetlistResult& global) {
  std::vector<SubNet> out;
  for (std::size_t n = 0; n < global.routes.size(); ++n) {
    const route::NetRoute& nr = global.routes[n];
    if (!nr.ok) continue;
    for (const Segment& s : nr.segments) {
      if (s.degenerate()) continue;
      out.push_back(SubNet{n, s});
    }
  }
  return out;
}

DetailedResult DetailedRouter::run(const route::NetlistResult& global) const {
  using Clock = std::chrono::steady_clock;
  DetailedResult out;

  const auto stop_requested = [&] {
    if (opts_.cancel && opts_.cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    return opts_.deadline != Clock::time_point{} &&
           Clock::now() >= opts_.deadline;
  };

  const std::vector<SubNet> subnets = collect_subnets(global);
  out.subnet_count = subnets.size();

  const std::vector<Channel> channels =
      assign_channels(subnets, opts_.channel_window);
  out.channel_count = channels.size();

  out.wires.reserve(subnets.size());
  for (std::size_t c = 0; c < channels.size(); ++c) {
    if (stop_requested()) {
      out.cancelled = true;
      return out;
    }
    const Channel& ch = channels[c];
    std::vector<TrackInterval> ivs;
    ivs.reserve(ch.members.size());
    for (const std::size_t m : ch.members) {
      ivs.push_back(TrackInterval{subnets[m].seg.span(), subnets[m].net});
    }
    const TrackAssignment ta = left_edge(ivs);
    out.total_tracks += ta.tracks_used;
    out.max_channel_tracks = std::max(out.max_channel_tracks, ta.tracks_used);

    for (std::size_t k = 0; k < ch.members.size(); ++k) {
      const SubNet& sn = subnets[ch.members[k]];
      // Offset the wire perpendicular to its run by its track index; tracks
      // fan out from the global-route line, which hugs the cell edge.
      const Coord off =
          static_cast<Coord>(ta.track_of[k]) * opts_.track_pitch;
      Segment placed = sn.seg;
      if (sn.seg.axis() == Axis::kX) {
        placed.a.y += off;
        placed.b.y += off;
      } else {
        placed.a.x += off;
        placed.b.x += off;
      }
      out.wires.push_back(AssignedWire{
          sn.net, placed,
          sn.seg.axis() == Axis::kX ? std::size_t{0} : std::size_t{1}, c,
          ta.track_of[k]});
    }
  }

  // Layer assignment is H/V by construction; a via sits at every bend of
  // every routed net (consecutive perpendicular segments meet there).
  for (const route::NetRoute& nr : global.routes) {
    if (!nr.ok) continue;
    for (std::size_t i = 0; i + 1 < nr.segments.size(); ++i) {
      const Segment& a = nr.segments[i];
      const Segment& b = nr.segments[i + 1];
      if (a.degenerate() || b.degenerate()) continue;
      if (a.axis() != b.axis()) {
        out.vias.push_back(a.b == b.a ? a.b : b.a);
      }
    }
  }
  out.via_count = out.vias.size();
  return out;
}

}  // namespace gcr::detail
