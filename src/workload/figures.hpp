#pragma once

#include <cstddef>

#include "layout/layout.hpp"

/// \file figures.hpp
/// Deterministic layouts replicating the paper's figures and the layouts the
/// qualitative claims need.

namespace gcr::workload {

/// A layout plus one source/destination query, for figure-style experiments.
struct PointQuery {
  layout::Layout layout;
  geom::Point s;
  geom::Point d;
};

/// Figure 1 replica: several blocks between a left-hand source and a
/// right-hand destination, sized so the optimal route must round two block
/// corners — the configuration the paper uses to show "surprisingly few
/// nodes are generated before an optimal path is found".
[[nodiscard]] PointQuery figure1_layout();

/// Figure 2 replica: a single block with source/destination placed so that
/// several equal-length shortest routes exist, exactly one of which bends at
/// the block corner (the preferred route).  Exercises the inverted-corner
/// epsilon.
[[nodiscard]] PointQuery inverted_corner_layout();

/// A comb maze of \p teeth alternating walls.  Admissible searches always
/// connect s to d (through the serpentine); the greedy Hightower line search
/// loses its way for modest tooth counts — the paper's "fails to find some
/// connections which could be found by a Lee-Moore router".
[[nodiscard]] PointQuery comb_maze(std::size_t teeth);

/// A spiral maze wrapping \p turns times around the destination; the
/// hardest case for blind searches and another Hightower killer.
[[nodiscard]] PointQuery spiral_maze(std::size_t turns);

}  // namespace gcr::workload
