#pragma once

#include <cstddef>
#include <cstdint>

#include "layout/layout.hpp"

/// \file netgen.hpp
/// Random pin and net generation on top of a placed layout.
///
/// Pins land on cell boundaries (the only physically meaningful location for
/// a macro's connection points).  Terminals are optionally multi-pin —
/// several electrically equivalent pins on different sides of the same cell,
/// the case the paper's "logically grouping all pins which belong to a
/// terminal" extension addresses.  Nets draw 2..k terminals from distinct
/// cells, exercising the Steiner construction.

namespace gcr::workload {

struct PinGenOptions {
  /// Terminals per cell, uniform in [min_terminals, max_terminals].
  std::size_t min_terminals = 2;
  std::size_t max_terminals = 4;
  /// Percentage of terminals that get 2-3 pins on different cell sides.
  int multi_pin_pct = 20;
  std::uint64_t seed = 7;
};

/// Adds random boundary terminals to every cell of \p lay.
void sprinkle_pins(layout::Layout& lay, const PinGenOptions& opts = {});

struct NetGenOptions {
  std::size_t net_count = 32;
  /// Terminals per net, uniform in [min_terminals, max_terminals].
  std::size_t min_terminals = 2;
  std::size_t max_terminals = 4;
  std::uint64_t seed = 11;
};

/// Adds random nets over the cells' existing terminals.  Each net's
/// terminals come from distinct cells.  Cells without terminals are skipped;
/// generation quietly produces fewer nets when the layout is too small.
void generate_nets(layout::Layout& lay, const NetGenOptions& opts = {});

/// The standard synthetic routing problem used by benches, the serving
/// tests, and the load generator: `cells` macros in an `extent`² region
/// (random_floorplan seeded with \p seed), pins sprinkled with seed+1, and
/// `nets` nets generated with seed+2.  One definition so the seed-offset
/// convention cannot drift between the reference and the thing under test.
[[nodiscard]] layout::Layout standard_workload(std::size_t cells,
                                               geom::Coord extent,
                                               std::size_t nets,
                                               std::uint64_t seed);

}  // namespace gcr::workload
