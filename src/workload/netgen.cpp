#include "workload/netgen.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "workload/floorplan.hpp"
#include "workload/rng.hpp"

namespace gcr::workload {

using geom::Coord;
using geom::Point;
using geom::Rect;

namespace {

/// A uniformly random point on the boundary of \p r, one of the four sides.
Point boundary_point(std::mt19937_64& rng, const Rect& r) {
  const auto fx = [&] { return uniform_int<Coord>(rng, r.xlo, r.xhi); };
  const auto fy = [&] { return uniform_int<Coord>(rng, r.ylo, r.yhi); };
  switch (uniform_int(rng, 0, 3)) {
    case 0: return {fx(), r.ylo};   // south
    case 1: return {fx(), r.yhi};   // north
    case 2: return {r.xlo, fy()};   // west
    default: return {r.xhi, fy()};  // east
  }
}

}  // namespace

void sprinkle_pins(layout::Layout& lay, const PinGenOptions& opts) {
  std::mt19937_64 rng(opts.seed);

  for (std::size_t c = 0; c < lay.cells().size(); ++c) {
    layout::Cell& cell = lay.cell(layout::CellId{static_cast<std::uint32_t>(c)});
    const Rect r = cell.outline();
    const std::size_t n =
        uniform_int(rng, opts.min_terminals, opts.max_terminals);
    for (std::size_t t = 0; t < n; ++t) {
      layout::Terminal term;
      term.name = "t" + std::to_string(t);
      term.pins.push_back(layout::Pin{boundary_point(rng, r), term.name});
      if (uniform_int(rng, 0, 99) < opts.multi_pin_pct) {
        const int more = uniform_int(rng, 1, 2);
        for (int k = 0; k < more; ++k) {
          term.pins.push_back(layout::Pin{boundary_point(rng, r), term.name});
        }
      }
      cell.add_terminal(std::move(term));
    }
  }
}

void generate_nets(layout::Layout& lay, const NetGenOptions& opts) {
  std::mt19937_64 rng(opts.seed);

  // Cells that actually carry terminals.
  std::vector<std::uint32_t> eligible;
  for (std::size_t c = 0; c < lay.cells().size(); ++c) {
    if (!lay.cells()[c].terminals().empty()) {
      eligible.push_back(static_cast<std::uint32_t>(c));
    }
  }
  if (eligible.size() < 2) return;

  for (std::size_t n = 0; n < opts.net_count; ++n) {
    const std::size_t want = std::min(
        uniform_int(rng, opts.min_terminals, opts.max_terminals),
        eligible.size());
    if (want < 2) continue;
    // Sample `want` distinct cells.
    std::vector<std::uint32_t> cells = eligible;
    portable_shuffle(cells.begin(), cells.end(), rng);
    cells.resize(want);

    layout::Net net("net" + std::to_string(n));
    for (const std::uint32_t c : cells) {
      const auto& terms = lay.cells()[c].terminals();
      const auto pick = static_cast<std::uint32_t>(uniform_int<std::size_t>(
          rng, 0, terms.size() - 1));
      net.add_terminal(layout::TerminalRef{layout::CellId{c}, pick});
    }
    lay.add_net(std::move(net));
  }
}

layout::Layout standard_workload(std::size_t cells, geom::Coord extent,
                                 std::size_t nets, std::uint64_t seed) {
  FloorplanOptions fp;
  fp.cell_count = cells;
  fp.boundary = geom::Rect{0, 0, extent, extent};
  fp.seed = seed;
  layout::Layout lay = random_floorplan(fp);
  PinGenOptions pg;
  pg.seed = seed + 1;
  sprinkle_pins(lay, pg);
  NetGenOptions ng;
  ng.seed = seed + 2;
  ng.net_count = nets;
  generate_nets(lay, ng);
  return lay;
}

}  // namespace gcr::workload
