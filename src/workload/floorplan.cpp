#include "workload/floorplan.hpp"

#include <algorithm>
#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include "workload/rng.hpp"

namespace gcr::workload {

using geom::Coord;
using geom::Rect;

namespace {

/// Recursively bisects \p region into \p count slots with jittered cuts.
void slice(std::mt19937_64& rng, const Rect& region, std::size_t count,
           std::vector<Rect>& out) {
  if (count <= 1) {
    out.push_back(region);
    return;
  }
  const std::size_t left = count / 2;
  const std::size_t right = count - left;
  // Cut the longer side; the cut position tracks the slot ratio with jitter
  // so slots stay roughly proportional but not identical.
  const bool cut_x = region.width() >= region.height();
  const Coord extent = cut_x ? region.width() : region.height();
  const Coord ideal =
      extent * static_cast<Coord>(left) / static_cast<Coord>(count);
  const Coord jitter_range = std::max<Coord>(1, extent / 8);
  const Coord jitter = uniform_int<Coord>(rng, -jitter_range, jitter_range);
  const Coord cut =
      std::clamp<Coord>(ideal + jitter, extent / 5, extent * 4 / 5);
  if (cut_x) {
    slice(rng, Rect{region.xlo, region.ylo, region.xlo + cut, region.yhi},
          left, out);
    slice(rng, Rect{region.xlo + cut, region.ylo, region.xhi, region.yhi},
          right, out);
  } else {
    slice(rng, Rect{region.xlo, region.ylo, region.xhi, region.ylo + cut},
          left, out);
    slice(rng, Rect{region.xlo, region.ylo + cut, region.xhi, region.yhi},
          right, out);
  }
}

}  // namespace

layout::Layout random_floorplan(const FloorplanOptions& opts) {
  layout::Layout lay(opts.boundary);
  lay.set_min_separation(opts.min_separation);
  std::mt19937_64 rng(opts.seed);

  std::vector<Rect> slots;
  slice(rng, opts.boundary, opts.cell_count, slots);

  // Half the separation on each side of every slot guarantees the pairwise
  // distance; rounding up keeps odd separations safe.
  const Coord inset = (opts.min_separation + 1) / 2;

  std::size_t idx = 0;
  for (const Rect& slot : slots) {
    const Rect usable = Rect{slot.xlo + inset, slot.ylo + inset,
                             slot.xhi - inset, slot.yhi - inset};
    if (!usable.proper()) continue;  // degenerate slot: skip (tiny boundary)
    const int fill_w = uniform_int(rng, opts.min_fill_pct, opts.max_fill_pct);
    const int fill_h = uniform_int(rng, opts.min_fill_pct, opts.max_fill_pct);
    Coord w = std::max<Coord>(2, usable.width() * fill_w / 100);
    Coord h = std::max<Coord>(2, usable.height() * fill_h / 100);
    w = std::min(w, usable.width());
    h = std::min(h, usable.height());
    const Coord x = uniform_int<Coord>(rng, usable.xlo, usable.xhi - w);
    const Coord y = uniform_int<Coord>(rng, usable.ylo, usable.yhi - h);
    lay.add_cell(layout::Cell{"cell" + std::to_string(idx++),
                              Rect{x, y, x + w, y + h}});
  }
  return lay;
}

}  // namespace gcr::workload
