#pragma once

#include <cstddef>
#include <cstdint>

#include "layout/layout.hpp"

/// \file padring.hpp
/// I/O pad generation — the missing piece of the paper's chip-assembly
/// scenario: "These components or cells can then be connected together,
/// along with the pads, to form a complete chip."  Pads are cell-less
/// terminals distributed around the routing boundary; pad nets tie each pad
/// to terminals of core cells.

namespace gcr::workload {

struct PadRingOptions {
  /// Pads per boundary side.
  std::size_t pads_per_side = 4;
  /// Fraction (percent) of pads wired to a core-cell terminal.
  int connected_pct = 100;
  /// Extra core terminals per pad net beyond the first (0 = two-point nets).
  std::size_t extra_terminals = 0;
  std::uint64_t seed = 23;
};

/// Adds a ring of pads on the boundary of \p lay and nets from pads to
/// randomly chosen existing cell terminals.  Cells must already carry
/// terminals (see sprinkle_pins).  Returns the number of pad nets created.
std::size_t add_pad_ring(layout::Layout& lay, const PadRingOptions& opts = {});

}  // namespace gcr::workload
