#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <random>
#include <utility>

/// \file rng.hpp
/// Portable deterministic sampling for the workload generators.
///
/// std::mt19937_64 is fully specified by the standard — identical seeds
/// produce identical 64-bit streams on every platform.  The *distributions*
/// are not: std::uniform_int_distribution and std::shuffle are
/// implementation-defined, so libstdc++ and libc++ turn the same engine
/// stream into different layouts.  That breaks the serving layer's `GEN`
/// verb, whose whole point is that `GEN standard seed=7 ...` materializes a
/// byte-identical layout — and therefore the same content-addressed session
/// key — on every replica a client might hit.  These helpers pin the
/// engine-to-value mapping: rejection-sampled bounded draws and a
/// Fisher–Yates shuffle, both defined entirely in terms of the specified
/// mt19937_64 output.

namespace gcr::workload {

/// Uniform draw in [0, n).  Rejection sampling over the engine's full 64-bit
/// range: draws below `2^64 mod n` are discarded so every residue is equally
/// likely (the classic arc4random_uniform construction).  n = 0 is treated
/// as the degenerate single-value range and returns 0.
[[nodiscard]] inline std::uint64_t bounded_u64(std::mt19937_64& rng,
                                               std::uint64_t n) {
  if (n < 2) return 0;
  const std::uint64_t threshold = (0 - n) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = rng();
    if (r >= threshold) return r % n;
  }
}

/// Uniform draw in [lo, hi] (inclusive), any integral type.  The span is
/// computed as an unsigned 64-bit difference, which is well-defined for the
/// full range of both signed (jitter in [-r, r]) and unsigned arguments —
/// including values above INT64_MAX and the degenerate full 64-bit span.
template <typename Int>
[[nodiscard]] Int uniform_int(std::mt19937_64& rng, Int lo, Int hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (span == std::numeric_limits<std::uint64_t>::max()) {
    return static_cast<Int>(rng());  // span+1 would wrap to 0
  }
  return static_cast<Int>(static_cast<std::uint64_t>(lo) +
                          bounded_u64(rng, span + 1));
}

/// Fisher–Yates shuffle with the portable bounded draw — a drop-in for
/// std::shuffle wherever generated layouts must not depend on the standard
/// library flavour.
template <typename It>
void portable_shuffle(It first, It last, std::mt19937_64& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    using std::swap;
    swap(first[i - 1], first[bounded_u64(rng, i)]);
  }
}

}  // namespace gcr::workload
