#include "workload/padring.hpp"

#include <cstddef>
#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "workload/rng.hpp"

namespace gcr::workload {

using geom::Coord;
using geom::Point;
using geom::Rect;

std::size_t add_pad_ring(layout::Layout& lay, const PadRingOptions& opts) {
  const Rect& b = lay.boundary();
  std::mt19937_64 rng(opts.seed);

  // Evenly spaced pads on each side (corners excluded).
  std::vector<layout::TerminalRef> pads;
  const auto side_positions = [&](Coord lo, Coord hi) {
    std::vector<Coord> out;
    const Coord step = (hi - lo) / static_cast<Coord>(opts.pads_per_side + 1);
    for (std::size_t i = 1; i <= opts.pads_per_side; ++i) {
      out.push_back(lo + step * static_cast<Coord>(i));
    }
    return out;
  };
  std::size_t pad_no = 0;
  for (const Coord x : side_positions(b.xlo, b.xhi)) {
    pads.push_back(lay.add_pad_pin("pad" + std::to_string(pad_no++),
                                   Point{x, b.ylo}));
    pads.push_back(lay.add_pad_pin("pad" + std::to_string(pad_no++),
                                   Point{x, b.yhi}));
  }
  for (const Coord y : side_positions(b.ylo, b.yhi)) {
    pads.push_back(lay.add_pad_pin("pad" + std::to_string(pad_no++),
                                   Point{b.xlo, y}));
    pads.push_back(lay.add_pad_pin("pad" + std::to_string(pad_no++),
                                   Point{b.xhi, y}));
  }

  // Eligible core terminals.
  std::vector<layout::TerminalRef> core;
  for (std::size_t c = 0; c < lay.cells().size(); ++c) {
    for (std::size_t t = 0; t < lay.cells()[c].terminals().size(); ++t) {
      core.push_back(layout::TerminalRef{
          layout::CellId{static_cast<std::uint32_t>(c)},
          static_cast<std::uint32_t>(t)});
    }
  }
  if (core.empty()) return 0;

  const auto pick = [&] {
    return uniform_int<std::size_t>(rng, 0, core.size() - 1);
  };
  std::size_t nets_made = 0;
  for (std::size_t p = 0; p < pads.size(); ++p) {
    if (uniform_int(rng, 0, 99) >= opts.connected_pct) continue;
    layout::Net net("padnet" + std::to_string(p));
    net.add_terminal(pads[p]);
    net.add_terminal(core[pick()]);
    for (std::size_t e = 0; e < opts.extra_terminals; ++e) {
      net.add_terminal(core[pick()]);
    }
    lay.add_net(std::move(net));
    ++nets_made;
  }
  return nets_made;
}

}  // namespace gcr::workload
