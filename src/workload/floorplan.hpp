#pragma once

#include <cstddef>
#include <cstdint>

#include "layout/layout.hpp"

/// \file floorplan.hpp
/// Synthetic general-cell placements.
///
/// The paper's own workloads (Caltech custom-chip layouts assembled by the
/// Siclops silicon compiler) are not available, so benchmarks run on
/// parameterized slicing floorplans: recursive bisection partitions the
/// routing boundary into slots, and each slot receives one randomly sized
/// block inset by half the required separation.  The construction
/// *guarantees* the paper's placement restrictions — rectangular blocks,
/// orthogonal orientation, pairwise separation >= min_separation — for every
/// seed and cell count, which is what makes seed sweeps usable as unit
/// property tests.

namespace gcr::workload {

struct FloorplanOptions {
  geom::Rect boundary{0, 0, 1024, 1024};
  std::size_t cell_count = 16;
  /// Minimum inter-cell separation (also kept to the boundary).
  geom::Coord min_separation = 8;
  /// Cell side as a percentage of its slot side, sampled uniformly in
  /// [min_fill_pct, max_fill_pct].
  int min_fill_pct = 45;
  int max_fill_pct = 80;
  std::uint64_t seed = 1;
};

/// Generates a valid random placement (cells only; add pins/nets with the
/// netgen helpers).
[[nodiscard]] layout::Layout random_floorplan(const FloorplanOptions& opts);

}  // namespace gcr::workload
