#include "workload/figures.hpp"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace gcr::workload {

using geom::Coord;
using geom::OrthoPolygon;
using geom::Point;
using geom::Rect;

PointQuery figure1_layout() {
  PointQuery q;
  q.layout = layout::Layout(Rect{0, 0, 120, 80});
  q.layout.set_min_separation(4);
  q.layout.add_cell(layout::Cell{"A", Rect{20, 10, 40, 45}});
  q.layout.add_cell(layout::Cell{"B", Rect{50, 30, 70, 70}});
  q.layout.add_cell(layout::Cell{"C", Rect{80, 10, 100, 40}});
  q.s = Point{5, 40};
  q.d = Point{115, 45};
  return q;
}

PointQuery inverted_corner_layout() {
  PointQuery q;
  q.layout = layout::Layout(Rect{0, 0, 80, 80});
  q.layout.set_min_separation(4);
  q.layout.add_cell(layout::Cell{"block", Rect{30, 30, 60, 60}});
  // Several 80-DBU shortest routes exist; exactly one bends at the block's
  // upper-right corner (60,60) — the preferred, hugging route.  The others
  // carry at least one floating bend (the inverted corner) and lose by
  // epsilon under InvertedCornerCost.
  q.s = Point{20, 60};
  q.d = Point{60, 20};
  return q;
}

namespace {

/// A "C" ring: a square annulus of wall thickness \p t with one gap of width
/// \p g centered on side \p gap_side (0=N,1=E,2=S,3=W), as a single
/// orthogonal polygon.
OrthoPolygon c_ring(const Rect& outer, Coord t, Coord g, int gap_side) {
  const Rect inner = outer.inflated(-t);
  const Coord cx = (outer.xlo + outer.xhi) / 2;
  const Coord cy = (outer.ylo + outer.yhi) / 2;
  std::vector<Point> v;
  switch (gap_side) {
    case 0: {  // gap centered on the north side
      const Coord g0 = cx - g / 2, g1 = cx + g / 2;
      v = {{g0, outer.yhi}, {outer.xlo, outer.yhi}, {outer.xlo, outer.ylo},
           {outer.xhi, outer.ylo}, {outer.xhi, outer.yhi}, {g1, outer.yhi},
           {g1, inner.yhi},  {inner.xhi, inner.yhi}, {inner.xhi, inner.ylo},
           {inner.xlo, inner.ylo}, {inner.xlo, inner.yhi}, {g0, inner.yhi}};
      break;
    }
    case 1: {  // east
      const Coord g0 = cy - g / 2, g1 = cy + g / 2;
      v = {{outer.xhi, g1}, {outer.xhi, outer.yhi}, {outer.xlo, outer.yhi},
           {outer.xlo, outer.ylo}, {outer.xhi, outer.ylo}, {outer.xhi, g0},
           {inner.xhi, g0}, {inner.xhi, inner.ylo}, {inner.xlo, inner.ylo},
           {inner.xlo, inner.yhi}, {inner.xhi, inner.yhi}, {inner.xhi, g1}};
      break;
    }
    case 2: {  // south
      const Coord g0 = cx - g / 2, g1 = cx + g / 2;
      v = {{g1, outer.ylo}, {outer.xhi, outer.ylo}, {outer.xhi, outer.yhi},
           {outer.xlo, outer.yhi}, {outer.xlo, outer.ylo}, {g0, outer.ylo},
           {g0, inner.ylo}, {inner.xlo, inner.ylo}, {inner.xlo, inner.yhi},
           {inner.xhi, inner.yhi}, {inner.xhi, inner.ylo}, {g1, inner.ylo}};
      break;
    }
    default: {  // west
      const Coord g0 = cy - g / 2, g1 = cy + g / 2;
      v = {{outer.xlo, g0}, {outer.xlo, outer.ylo}, {outer.xhi, outer.ylo},
           {outer.xhi, outer.yhi}, {outer.xlo, outer.yhi}, {outer.xlo, g1},
           {inner.xlo, g1}, {inner.xlo, inner.yhi}, {inner.xhi, inner.yhi},
           {inner.xhi, inner.ylo}, {inner.xlo, inner.ylo}, {inner.xlo, g0}};
      break;
    }
  }
  return OrthoPolygon{std::move(v)};
}

/// A labyrinth: a rectangular wall ring with one entry gap on its west wall
/// and alternating internal teeth (odd teeth hang from the top arm, even
/// teeth rise from the bottom arm), all as ONE orthogonal polygon, so there
/// are no cell-to-cell slits to sneak through.  The only way from the entry
/// to the chamber past the last tooth is the full serpentine.
OrthoPolygon labyrinth(const Rect& outer, Coord t, Coord gap, Coord corridor,
                       std::size_t teeth, Coord slot) {
  const Rect inner = outer.inflated(-t);
  const Coord gmid = (outer.ylo + outer.yhi) / 2;
  const Coord gy0 = gmid - gap / 2;
  const Coord gy1 = gmid + gap / 2;
  const Coord top_tip = inner.ylo + corridor;  // top teeth reach down to here
  const Coord bot_tip = inner.yhi - corridor;  // bottom teeth rise to here

  std::vector<Coord> top_teeth, bot_teeth;
  for (std::size_t i = 0; i < teeth; ++i) {
    const Coord a = inner.xlo + slot * static_cast<Coord>(i + 1) - t / 2;
    if (i % 2 == 0) {
      bot_teeth.push_back(a);
    } else {
      top_teeth.push_back(a);
    }
  }

  std::vector<Point> v;
  // Outer boundary (counterclockwise), skipping the west-wall gap.
  v.push_back({outer.xlo, gy0});
  v.push_back({outer.xlo, outer.ylo});
  v.push_back({outer.xhi, outer.ylo});
  v.push_back({outer.xhi, outer.yhi});
  v.push_back({outer.xlo, outer.yhi});
  v.push_back({outer.xlo, gy1});
  v.push_back({inner.xlo, gy1});  // cross the wall at the gap's top lip
  // Inner contour: up the west wall, east along the top arm (around the
  // hanging teeth), down the east wall, west along the bottom arm (around
  // the rising teeth), and back to the gap's bottom lip.
  v.push_back({inner.xlo, inner.yhi});
  for (const Coord a : top_teeth) {
    v.push_back({a, inner.yhi});
    v.push_back({a, top_tip});
    v.push_back({a + t, top_tip});
    v.push_back({a + t, inner.yhi});
  }
  v.push_back({inner.xhi, inner.yhi});
  v.push_back({inner.xhi, inner.ylo});
  for (auto it = bot_teeth.rbegin(); it != bot_teeth.rend(); ++it) {
    const Coord a = *it;
    v.push_back({a + t, inner.ylo});
    v.push_back({a + t, bot_tip});
    v.push_back({a, bot_tip});
    v.push_back({a, inner.ylo});
  }
  v.push_back({inner.xlo, inner.ylo});
  v.push_back({inner.xlo, gy0});
  return OrthoPolygon{std::move(v)};
}

}  // namespace

PointQuery comb_maze(std::size_t teeth) {
  const Coord t = 4;       // wall thickness
  const Coord c = 12;      // corridor width at each tooth tip
  const Coord slot = 16;   // tooth-to-tooth spacing
  const Coord margin = 8;
  const Coord height = 96;
  const Coord width =
      margin * 2 + 2 * t + slot * static_cast<Coord>(teeth + 1);

  PointQuery q;
  q.layout = layout::Layout(Rect{0, 0, width, height + 2 * margin});
  q.layout.set_min_separation(2);

  const Rect outer{margin, margin, width - margin, margin + height};
  q.layout.add_cell(layout::Cell{
      "labyrinth", labyrinth(outer, t, /*gap=*/8, c, teeth, slot)});

  // Source outside the entry gap; destination in the chamber past the last
  // tooth.
  q.s = Point{margin / 2, (outer.ylo + outer.yhi) / 2};
  q.d = Point{outer.xhi - t - slot / 2, (outer.ylo + outer.yhi) / 2};
  return q;
}

PointQuery spiral_maze(std::size_t turns) {
  const Coord t = 4;    // wall thickness
  const Coord c = 12;   // corridor width
  const Coord g = 8;    // gap width
  const Coord margin = 8;
  const Coord core = 24;
  const Coord size =
      2 * (margin + static_cast<Coord>(turns) * (t + c)) + core;

  PointQuery q;
  q.layout = layout::Layout(Rect{0, 0, size, size});
  q.layout.set_min_separation(2);

  for (std::size_t k = 0; k < turns; ++k) {
    const Coord inset = margin + static_cast<Coord>(k) * (t + c);
    const Rect outer{inset, inset, size - inset, size - inset};
    q.layout.add_cell(layout::Cell{"ring" + std::to_string(k),
                                   c_ring(outer, t, g, static_cast<int>(k % 4))});
  }
  q.s = Point{2, 2};
  q.d = Point{size / 2, size / 2};
  return q;
}

}  // namespace gcr::workload
