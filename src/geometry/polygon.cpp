#include "geometry/polygon.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <ostream>
#include <set>
#include <utility>
#include <vector>

namespace gcr::geom {

OrthoPolygon::OrthoPolygon(std::vector<Point> vertices)
    : vertices_(std::move(vertices)) {}

OrthoPolygon OrthoPolygon::from_rect(const Rect& r) {
  return OrthoPolygon{{r.ll(), r.lr(), r.ur(), r.ul()}};
}

std::vector<Segment> OrthoPolygon::edges() const {
  std::vector<Segment> out;
  out.reserve(vertices_.size());
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % vertices_.size()];
    out.emplace_back(a, b);
  }
  return out;
}

bool OrthoPolygon::valid() const {
  const std::size_t n = vertices_.size();
  if (n < 4 || n % 2 != 0) return false;
  // Axis-parallel edges alternating in axis, no zero-length edges.
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    if (a == b) return false;
    if (!colinear_rectilinear(a, b)) return false;
    const Point& c = vertices_[(i + 2) % n];
    const bool ab_vertical = a.x == b.x;
    const bool bc_vertical = b.x == c.x;
    if (ab_vertical == bc_vertical) return false;  // must alternate
  }
  // Distinct vertices.
  std::set<Point> uniq(vertices_.begin(), vertices_.end());
  if (uniq.size() != n) return false;
  // No self-intersection: non-adjacent edges must not touch.
  const auto es = edges();
  for (std::size_t i = 0; i < es.size(); ++i) {
    for (std::size_t j = i + 1; j < es.size(); ++j) {
      const bool adjacent = (j == i + 1) || (i == 0 && j == es.size() - 1);
      if (adjacent) continue;
      if (es[i].crossing(es[j]).has_value()) return false;
      // Parallel overlap check.
      if (es[i].axis() == es[j].axis() && es[i].track() == es[j].track() &&
          es[i].span().overlaps(es[j].span())) {
        return false;
      }
    }
  }
  return area() > 0;
}

Rect OrthoPolygon::bounding_box() const noexcept {
  Rect r;  // empty
  for (const Point& p : vertices_) r = r.hull(Rect{p, p});
  return r;
}

Cost OrthoPolygon::area() const {
  // Shoelace formula; orthogonal polygons give exact integer areas.
  Cost twice = 0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    twice += a.x * b.y - b.x * a.y;
  }
  return twice < 0 ? -twice / 2 : twice / 2;
}

std::vector<Rect> OrthoPolygon::decompose() const {
  // Vertical slab decomposition: slice the plane at every distinct vertex x;
  // inside each slab the polygon's cross-section is a fixed set of y-ranges
  // delimited by the horizontal edges spanning the slab (even-odd pairing).
  std::vector<Rect> out;
  if (vertices_.empty()) return out;

  std::vector<Coord> xs;
  xs.reserve(vertices_.size());
  for (const Point& p : vertices_) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  const auto es = edges();
  for (std::size_t s = 0; s + 1 < xs.size(); ++s) {
    const Interval slab{xs[s], xs[s + 1]};
    // Horizontal edges fully spanning this slab, sorted by track (y).
    std::vector<Coord> tracks;
    for (const Segment& e : es) {
      if (e.axis() != Axis::kX) continue;
      if (e.span().contains(slab)) tracks.push_back(e.track());
    }
    std::sort(tracks.begin(), tracks.end());
    assert(tracks.size() % 2 == 0 &&
           "simple orthogonal polygon has even crossings per slab");
    for (std::size_t i = 0; i + 1 < tracks.size(); i += 2) {
      out.push_back(Rect{slab.lo, tracks[i], slab.hi, tracks[i + 1]});
    }
  }
  return out;
}

std::vector<Rect> OrthoPolygon::blocking_rects() const {
  std::vector<Rect> rects = decompose();
  const std::size_t n = rects.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      // By value: the push_backs below can reallocate `rects`, and a
      // reference would dangle across them (caught by ASan).
      const Rect a = rects[i];
      const Rect b = rects[j];
      // Vertical seam: a's right edge coincides with b's left edge.
      if (a.xhi == b.xlo) {
        const Interval ov = a.ys().intersection(b.ys());
        if (ov.length() > 0) {
          rects.push_back(Rect{a.xhi - 1, ov.lo, b.xlo + 1, ov.hi});
        }
      }
      // Horizontal seam: a's top edge coincides with b's bottom edge.
      // (The vertical-slab decomposition never produces these, but the
      // cover is cheap insurance for future decompositions.)
      if (a.yhi == b.ylo) {
        const Interval ov = a.xs().intersection(b.xs());
        if (ov.length() > 0) {
          rects.push_back(Rect{ov.lo, a.yhi - 1, ov.hi, b.ylo + 1});
        }
      }
    }
  }
  return rects;
}

bool OrthoPolygon::contains(const Point& p) const {
  for (const Rect& r : decompose()) {
    if (r.contains(p)) return true;
  }
  return false;
}

bool OrthoPolygon::contains_open(const Point& p) const {
  if (!contains(p)) return false;
  // Interior iff contained and not on any boundary edge.
  for (const Segment& e : edges()) {
    if (e.contains(p)) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const OrthoPolygon& poly) {
  os << "poly{";
  for (std::size_t i = 0; i < poly.vertices().size(); ++i) {
    if (i) os << ' ';
    os << poly.vertices()[i];
  }
  return os << '}';
}

}  // namespace gcr::geom
