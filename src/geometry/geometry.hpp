#pragma once

/// \file geometry.hpp
/// Umbrella header for the geometry substrate.

#include "geometry/coord.hpp"     // IWYU pragma: export
#include "geometry/interval.hpp"  // IWYU pragma: export
#include "geometry/point.hpp"     // IWYU pragma: export
#include "geometry/polygon.hpp"   // IWYU pragma: export
#include "geometry/rect.hpp"      // IWYU pragma: export
#include "geometry/segment.hpp"   // IWYU pragma: export
