#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

#include "geometry/coord.hpp"

/// \file point.hpp
/// The atomic unit of the paper's data structure: "The atomic unit of the
/// data structure is the point."  Points are plain value types; the dynamic
/// x/y topological linking the paper describes lives in spatial::ObstacleIndex.

namespace gcr::geom {

/// Axis selector for axis-parallel geometry.  Rectilinear routing only ever
/// moves along one axis at a time.
enum class Axis : std::uint8_t { kX = 0, kY = 1 };

/// The axis orthogonal to \p a.
[[nodiscard]] constexpr Axis other(Axis a) noexcept {
  return a == Axis::kX ? Axis::kY : Axis::kX;
}

/// One of the four rectilinear probe directions used by the line search.
enum class Dir : std::uint8_t { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };

inline constexpr Dir kAllDirs[4] = {Dir::kEast, Dir::kWest, Dir::kNorth,
                                    Dir::kSouth};

[[nodiscard]] constexpr Axis axis_of(Dir d) noexcept {
  return (d == Dir::kEast || d == Dir::kWest) ? Axis::kX : Axis::kY;
}

/// +1 for increasing-coordinate directions (east/north), -1 otherwise.
[[nodiscard]] constexpr int sign_of(Dir d) noexcept {
  return (d == Dir::kEast || d == Dir::kNorth) ? 1 : -1;
}

[[nodiscard]] constexpr Dir opposite(Dir d) noexcept {
  switch (d) {
    case Dir::kEast: return Dir::kWest;
    case Dir::kWest: return Dir::kEast;
    case Dir::kNorth: return Dir::kSouth;
    case Dir::kSouth: return Dir::kNorth;
  }
  return Dir::kEast;  // unreachable
}

/// A point in the routing plane (database units).
struct Point {
  Coord x = 0;
  Coord y = 0;

  friend constexpr auto operator<=>(const Point&, const Point&) = default;

  /// Coordinate along \p a.
  [[nodiscard]] constexpr Coord along(Axis a) const noexcept {
    return a == Axis::kX ? x : y;
  }

  /// Mutable access to the coordinate along \p a.
  [[nodiscard]] constexpr Coord& along(Axis a) noexcept {
    return a == Axis::kX ? x : y;
  }

  /// The point displaced by \p delta along direction \p d.
  [[nodiscard]] constexpr Point stepped(Dir d, Coord delta) const noexcept {
    Point p = *this;
    p.along(axis_of(d)) += sign_of(d) * delta;
    return p;
  }
};

/// Rectilinear (Manhattan) distance — the paper's edge weight and, from a node
/// to the goal, its admissible heuristic h-hat: "the best you can do using
/// Manhattan geometry is a connection whose length is equal to the rectilinear
/// distance between the two points."
[[nodiscard]] constexpr Cost manhattan(const Point& a, const Point& b) noexcept {
  return coord_abs_diff(a.x, b.x) + coord_abs_diff(a.y, b.y);
}

/// True when \p a and \p b share an axis-parallel line (a rectilinear segment
/// can join them without a bend).
[[nodiscard]] constexpr bool colinear_rectilinear(const Point& a,
                                                  const Point& b) noexcept {
  return a.x == b.x || a.y == b.y;
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

}  // namespace gcr::geom

template <>
struct std::hash<gcr::geom::Point> {
  std::size_t operator()(const gcr::geom::Point& p) const noexcept {
    // Split-mix style combine; points cluster on escape lines, so mix well.
    std::uint64_t h = static_cast<std::uint64_t>(p.x) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<std::uint64_t>(p.y) + 0x9E3779B97F4A7C15ULL + (h << 6) +
         (h >> 2);
    return static_cast<std::size_t>(h);
  }
};
