#pragma once

#include <algorithm>
#include <cassert>
#include <compare>
#include <ostream>

#include "geometry/coord.hpp"

/// \file interval.hpp
/// Closed 1-D intervals.  Rectangles are products of two intervals; ray
/// tracing and escape-line stabbing reduce to interval tests.

namespace gcr::geom {

/// A closed interval [lo, hi] on one axis.  Empty iff lo > hi.
struct Interval {
  Coord lo = 0;
  Coord hi = -1;  // default-constructed interval is empty

  constexpr Interval() = default;
  constexpr Interval(Coord l, Coord h) : lo(l), hi(h) {}

  friend constexpr auto operator<=>(const Interval&, const Interval&) = default;

  [[nodiscard]] constexpr bool empty() const noexcept { return lo > hi; }
  [[nodiscard]] constexpr Coord length() const noexcept {
    return empty() ? 0 : hi - lo;
  }

  /// Closed containment: lo <= v <= hi.
  [[nodiscard]] constexpr bool contains(Coord v) const noexcept {
    return lo <= v && v <= hi;
  }

  /// Open containment: lo < v < hi.  Used for "does a ray cross the *open*
  /// interior of a cell edge span" — cells block only their open interiors so
  /// routes may hug boundaries.
  [[nodiscard]] constexpr bool contains_open(Coord v) const noexcept {
    return lo < v && v < hi;
  }

  [[nodiscard]] constexpr bool contains(const Interval& o) const noexcept {
    return !o.empty() && lo <= o.lo && o.hi <= hi;
  }

  /// Closed-closed overlap (shares at least a point).
  [[nodiscard]] constexpr bool overlaps(const Interval& o) const noexcept {
    return !empty() && !o.empty() && lo <= o.hi && o.lo <= hi;
  }

  /// Overlap with positive length (shares more than a point).
  [[nodiscard]] constexpr bool overlaps_open(const Interval& o) const noexcept {
    return !empty() && !o.empty() && lo < o.hi && o.lo < hi;
  }

  [[nodiscard]] constexpr Interval intersection(const Interval& o) const noexcept {
    return Interval{std::max(lo, o.lo), std::min(hi, o.hi)};
  }

  /// Smallest interval containing both (treats empty as identity).
  [[nodiscard]] constexpr Interval hull(const Interval& o) const noexcept {
    if (empty()) return o;
    if (o.empty()) return *this;
    return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
  }

  [[nodiscard]] constexpr Interval inflated(Coord by) const noexcept {
    return empty() ? *this : Interval{lo - by, hi + by};
  }

  /// Clamp \p v into the interval (requires non-empty).
  [[nodiscard]] constexpr Coord clamp(Coord v) const noexcept {
    assert(!empty());
    return std::clamp(v, lo, hi);
  }
};

inline std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << '[' << iv.lo << ',' << iv.hi << ']';
}

}  // namespace gcr::geom
