#pragma once

#include <algorithm>
#include <cassert>
#include <compare>
#include <optional>
#include <ostream>

#include "geometry/point.hpp"
#include "geometry/rect.hpp"

/// \file segment.hpp
/// Axis-parallel line segments.  "Points are linked dynamically to form line
/// segments which can either be edges of boxes (cells) or segments of wire
/// nets."  Segments are the edges of the search graph and, after routing, the
/// pieces of every global route.

namespace gcr::geom {

/// A closed axis-parallel segment between two points.  Degenerate segments
/// (a == b) are allowed; they arise when a route visits a point without
/// moving (e.g. a terminal directly on the current frontier).
struct Segment {
  Point a;
  Point b;

  constexpr Segment() = default;
  constexpr Segment(Point p, Point q) : a(p), b(q) {
    assert(colinear_rectilinear(p, q) && "segments must be axis-parallel");
  }

  friend constexpr auto operator<=>(const Segment&, const Segment&) = default;

  [[nodiscard]] constexpr bool degenerate() const noexcept { return a == b; }

  /// The axis the segment runs along.  A degenerate segment reports kX.
  [[nodiscard]] constexpr Axis axis() const noexcept {
    return a.x == b.x && a.y != b.y ? Axis::kY : Axis::kX;
  }

  [[nodiscard]] constexpr bool horizontal() const noexcept {
    return axis() == Axis::kX;
  }
  [[nodiscard]] constexpr bool vertical() const noexcept {
    return axis() == Axis::kY;
  }

  [[nodiscard]] constexpr Cost length() const noexcept {
    return manhattan(a, b);
  }

  /// The coordinate shared by every point of the segment (y for horizontal,
  /// x for vertical).  Degenerate segments report their y.
  [[nodiscard]] constexpr Coord track() const noexcept {
    return axis() == Axis::kX ? a.y : a.x;
  }

  /// The interval the segment spans along its own axis.
  [[nodiscard]] constexpr Interval span() const noexcept {
    const Axis ax = axis();
    const Coord lo = std::min(a.along(ax), b.along(ax));
    const Coord hi = std::max(a.along(ax), b.along(ax));
    return {lo, hi};
  }

  [[nodiscard]] constexpr Rect bounds() const noexcept { return Rect{a, b}; }

  [[nodiscard]] constexpr bool contains(const Point& p) const noexcept {
    if (degenerate()) return p == a;
    if (axis() == Axis::kX) return p.y == a.y && span().contains(p.x);
    return p.x == a.x && span().contains(p.y);
  }

  /// Crossing point of two perpendicular segments, if they intersect
  /// (endpoint touches count).  Parallel segments yield nullopt even when
  /// overlapping; overlap is handled by span arithmetic at the call sites.
  [[nodiscard]] constexpr std::optional<Point> crossing(
      const Segment& o) const noexcept {
    if (degenerate() || o.degenerate()) {
      if (degenerate() && o.contains(a)) return a;
      if (o.degenerate() && contains(o.a)) return o.a;
      return std::nullopt;
    }
    if (axis() == o.axis()) return std::nullopt;
    const Segment& h = horizontal() ? *this : o;
    const Segment& v = horizontal() ? o : *this;
    const Point x{v.a.x, h.a.y};
    if (h.span().contains(x.x) && v.span().contains(x.y)) return x;
    return std::nullopt;
  }

  /// True when the segment passes through the *open interior* of \p r —
  /// i.e. routing along this segment would violate the block.  Touching or
  /// running along the boundary (hugging) is legal and returns false.
  [[nodiscard]] constexpr bool pierces(const Rect& r) const noexcept {
    if (!r.proper()) return false;
    if (degenerate()) return r.contains_open(a);
    if (axis() == Axis::kX) {
      return r.ys().contains_open(a.y) &&
             span().overlaps_open(Interval{r.xlo, r.xhi});
    }
    return r.xs().contains_open(a.x) &&
           span().overlaps_open(Interval{r.ylo, r.yhi});
  }

  /// Perpendicular projection of \p p onto the segment's line, clamped to the
  /// segment.  Used to find candidate tree-connection points when extending a
  /// partially built Steiner tree toward a new terminal.
  [[nodiscard]] constexpr Point closest_point(const Point& p) const noexcept {
    if (degenerate()) return a;
    if (axis() == Axis::kX) return {span().clamp(p.x), a.y};
    return {a.x, span().clamp(p.y)};
  }
};

inline std::ostream& operator<<(std::ostream& os, const Segment& s) {
  return os << s.a << '-' << s.b;
}

}  // namespace gcr::geom
