#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <compare>
#include <ostream>

#include "geometry/interval.hpp"
#include "geometry/point.hpp"

/// \file rect.hpp
/// Axis-aligned rectangles — the paper's cell abstraction ("the blocks must be
/// rectangular, oriented orthogonally").  A rectangle blocks routing through
/// its *open interior*; its boundary is routable, which is what lets optimal
/// paths "hug the boundaries of cells".

namespace gcr::geom {

/// Axis-aligned closed rectangle [xlo,xhi] x [ylo,yhi].  Degenerate (zero
/// width/height) rectangles are permitted as geometric values but rejected as
/// cell outlines by layout validation.
struct Rect {
  Coord xlo = 0, ylo = 0;
  Coord xhi = -1, yhi = -1;  // default-constructed rect is empty

  constexpr Rect() = default;
  constexpr Rect(Coord x0, Coord y0, Coord x1, Coord y1)
      : xlo(x0), ylo(y0), xhi(x1), yhi(y1) {}
  constexpr Rect(const Point& a, const Point& b)
      : xlo(std::min(a.x, b.x)),
        ylo(std::min(a.y, b.y)),
        xhi(std::max(a.x, b.x)),
        yhi(std::max(a.y, b.y)) {}

  friend constexpr auto operator<=>(const Rect&, const Rect&) = default;

  [[nodiscard]] static constexpr Rect from_intervals(const Interval& x,
                                                     const Interval& y) {
    return Rect{x.lo, y.lo, x.hi, y.hi};
  }

  [[nodiscard]] constexpr Interval xs() const noexcept { return {xlo, xhi}; }
  [[nodiscard]] constexpr Interval ys() const noexcept { return {ylo, yhi}; }
  [[nodiscard]] constexpr Interval span(Axis a) const noexcept {
    return a == Axis::kX ? xs() : ys();
  }

  [[nodiscard]] constexpr bool empty() const noexcept {
    return xlo > xhi || ylo > yhi;
  }
  /// Positive area in both dimensions (a real block, not a line or point).
  [[nodiscard]] constexpr bool proper() const noexcept {
    return xlo < xhi && ylo < yhi;
  }

  [[nodiscard]] constexpr Coord width() const noexcept { return xhi - xlo; }
  [[nodiscard]] constexpr Coord height() const noexcept { return yhi - ylo; }
  [[nodiscard]] constexpr Cost half_perimeter() const noexcept {
    return width() + height();
  }
  [[nodiscard]] constexpr Cost area() const noexcept {
    return empty() ? 0 : width() * height();
  }

  [[nodiscard]] constexpr Point ll() const noexcept { return {xlo, ylo}; }
  [[nodiscard]] constexpr Point lr() const noexcept { return {xhi, ylo}; }
  [[nodiscard]] constexpr Point ul() const noexcept { return {xlo, yhi}; }
  [[nodiscard]] constexpr Point ur() const noexcept { return {xhi, yhi}; }
  [[nodiscard]] constexpr std::array<Point, 4> corners() const noexcept {
    return {ll(), lr(), ur(), ul()};
  }
  [[nodiscard]] constexpr Point center() const noexcept {
    return {(xlo + xhi) / 2, (ylo + yhi) / 2};
  }

  /// Closed containment (boundary included).
  [[nodiscard]] constexpr bool contains(const Point& p) const noexcept {
    return xs().contains(p.x) && ys().contains(p.y);
  }
  /// Open containment (strict interior).  The blocking predicate for routing.
  [[nodiscard]] constexpr bool contains_open(const Point& p) const noexcept {
    return xs().contains_open(p.x) && ys().contains_open(p.y);
  }
  [[nodiscard]] constexpr bool contains(const Rect& o) const noexcept {
    return !o.empty() && xs().contains(o.xs()) && ys().contains(o.ys());
  }
  /// True when \p p lies on the rectangle's boundary.
  [[nodiscard]] constexpr bool on_boundary(const Point& p) const noexcept {
    return contains(p) && !contains_open(p);
  }

  /// Closed intersection test (touching counts).
  [[nodiscard]] constexpr bool intersects(const Rect& o) const noexcept {
    return xs().overlaps(o.xs()) && ys().overlaps(o.ys());
  }
  /// Open intersection test: interiors overlap (touching does not count).
  /// Placement validation requires cells be a *non-zero* distance apart, so
  /// even closed intersection is illegal between cells; this predicate is the
  /// weaker overlap notion used for geometric bookkeeping.
  [[nodiscard]] constexpr bool intersects_open(const Rect& o) const noexcept {
    return xs().overlaps_open(o.xs()) && ys().overlaps_open(o.ys());
  }

  [[nodiscard]] constexpr Rect intersection(const Rect& o) const noexcept {
    return from_intervals(xs().intersection(o.xs()), ys().intersection(o.ys()));
  }
  [[nodiscard]] constexpr Rect hull(const Rect& o) const noexcept {
    return from_intervals(xs().hull(o.xs()), ys().hull(o.ys()));
  }
  [[nodiscard]] constexpr Rect hull(const Point& p) const noexcept {
    return hull(Rect{p, p});
  }
  [[nodiscard]] constexpr Rect inflated(Coord by) const noexcept {
    return empty() ? *this
                   : Rect{xlo - by, ylo - by, xhi + by, yhi + by};
  }

  /// Rectilinear separation between two rectangles: 0 when they touch or
  /// overlap, otherwise the Manhattan gap.  Placement validation requires this
  /// to be strictly positive between every pair of cells.
  [[nodiscard]] constexpr Coord separation(const Rect& o) const noexcept {
    const Coord dx = std::max<Coord>(
        0, std::max(o.xlo - xhi, xlo - o.xhi));
    const Coord dy = std::max<Coord>(
        0, std::max(o.ylo - yhi, ylo - o.yhi));
    return dx + dy;
  }

  /// Manhattan distance from a point to the closed rectangle (0 if inside).
  [[nodiscard]] constexpr Cost distance(const Point& p) const noexcept {
    const Coord dx =
        p.x < xlo ? xlo - p.x : (p.x > xhi ? p.x - xhi : 0);
    const Coord dy =
        p.y < ylo ? ylo - p.y : (p.y > yhi ? p.y - yhi : 0);
    return dx + dy;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.xlo << ',' << r.ylo << " .. " << r.xhi << ',' << r.yhi
            << ']';
}

}  // namespace gcr::geom
