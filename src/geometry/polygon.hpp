#pragma once

#include <ostream>
#include <vector>

#include "geometry/rect.hpp"
#include "geometry/segment.hpp"

/// \file polygon.hpp
/// Orthogonal (rectilinear) polygons — the paper's proposed extension beyond
/// rectangular cells: "Another useful extension would be to allow orthogonal
/// polygons for the cell boundaries."  We support them by decomposing each
/// polygon into axis-aligned rectangles; the router then sees only rectangles,
/// so admissibility of the line search is preserved unchanged.

namespace gcr::geom {

/// A simple orthogonal polygon given by its vertex cycle.  Consecutive
/// vertices must alternate horizontal/vertical moves; the boundary must not
/// self-intersect.  Orientation (CW/CCW) is accepted either way.
class OrthoPolygon {
 public:
  OrthoPolygon() = default;
  explicit OrthoPolygon(std::vector<Point> vertices);

  /// Rectangle convenience: a 4-vertex polygon.
  [[nodiscard]] static OrthoPolygon from_rect(const Rect& r);

  [[nodiscard]] const std::vector<Point>& vertices() const noexcept {
    return vertices_;
  }
  [[nodiscard]] bool empty() const noexcept { return vertices_.empty(); }

  /// Structural validity: >= 4 vertices, axis-parallel alternating edges,
  /// closed, no repeated vertices, no self-intersection, positive area.
  [[nodiscard]] bool valid() const;

  /// Boundary edges in vertex order (closing edge included).
  [[nodiscard]] std::vector<Segment> edges() const;

  [[nodiscard]] Rect bounding_box() const noexcept;

  [[nodiscard]] Cost area() const;

  /// True when \p p is inside or on the boundary.
  [[nodiscard]] bool contains(const Point& p) const;

  /// True when \p p is strictly interior.
  [[nodiscard]] bool contains_open(const Point& p) const;

  /// Slab decomposition into disjoint-interior rectangles whose union is the
  /// polygon.  Adjacent rectangles share full edges; the decomposition is
  /// deterministic (vertical slabs between consecutive distinct vertex x's).
  [[nodiscard]] std::vector<Rect> decompose() const;

  /// The decomposition plus overlap "seam covers": because obstacles block
  /// only their *open* interiors, the shared edge between two adjacent
  /// decomposition rectangles would otherwise be a zero-width routable
  /// corridor through the polygon's body.  Each seam gains a 2-DBU-wide
  /// cover rectangle (still inside the polygon), so the union blocks exactly
  /// the polygon interior.  This is the set routers must use.
  [[nodiscard]] std::vector<Rect> blocking_rects() const;

 private:
  std::vector<Point> vertices_;
};

std::ostream& operator<<(std::ostream& os, const OrthoPolygon& poly);

}  // namespace gcr::geom
