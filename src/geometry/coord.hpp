#pragma once

#include <cassert>
#include <cstdint>
#include <limits>

/// \file coord.hpp
/// Database-unit coordinate type for the routing plane.
///
/// The paper's line-search formulation is gridless: pin and cell coordinates
/// are arbitrary integers (database units), not grid indices.  A 64-bit signed
/// integer keeps every derived quantity (Manhattan distances, path costs,
/// ray-trace spans) exactly representable without overflow for any realistic
/// layout extent.

namespace gcr::geom {

/// A coordinate in database units.  Signed so that halos around the layout
/// boundary and reflected/negative placements are representable.
using Coord = std::int64_t;

/// Cost/weight type for path costs.  Edge weights are rectilinear distances
/// (non-negative, as the paper requires for the termination argument), but
/// generalized cost models add penalties, so costs get their own alias.
using Cost = std::int64_t;

/// Sentinel for "no coordinate" / unbounded ray extents.
inline constexpr Coord kCoordMax = std::numeric_limits<Coord>::max() / 4;
inline constexpr Coord kCoordMin = -kCoordMax;

/// Sentinel for "infinite" cost (never produced by a finite path).
inline constexpr Cost kCostInf = std::numeric_limits<Cost>::max() / 4;

/// Absolute difference of two coordinates; the building block of the
/// rectilinear (Manhattan) metric used for both edge weights and the A*
/// heuristic.
[[nodiscard]] constexpr Coord coord_abs_diff(Coord a, Coord b) noexcept {
  return a > b ? a - b : b - a;
}

}  // namespace gcr::geom
