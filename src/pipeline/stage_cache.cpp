#include "pipeline/stage_cache.hpp"

#include <utility>

namespace gcr::pipeline {

std::shared_ptr<const StageResult> StageCache::find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  touch(it->second);
  return it->second.result;
}

void StageCache::insert(const std::string& key,
                        std::shared_ptr<const StageResult> res) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A concurrent builder won the race; keep the resident result (both
    // were computed from identical inputs) and just refresh recency.
    touch(it->second);
    return;
  }
  recency_.push_front(key);
  entries_.emplace(key, Entry{std::move(res), recency_.begin()});
  while (entries_.size() > capacity_) {
    const std::string& victim = recency_.back();
    entries_.erase(victim);
    recency_.pop_back();
    ++evictions_;
  }
}

std::size_t StageCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t StageCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t StageCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t StageCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void StageCache::touch(Entry& entry) {
  recency_.splice(recency_.begin(), recency_, entry.recency);
  entry.recency = recency_.begin();
}

}  // namespace gcr::pipeline
