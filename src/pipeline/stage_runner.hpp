#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>

#include "core/netlist_router.hpp"
#include "core/search_environment.hpp"
#include "layout/layout.hpp"
#include "pipeline/stage.hpp"

/// \file stage_runner.hpp
/// Executes one pipeline stage against a session's committed routes and
/// renders the protocol-ready StageResult.
///
/// The runner is a pure function of its context: layout + environment +
/// routes + options in, StageResult out, nothing mutated — which is what
/// makes the StageCache sound.  Cancel/deadline tokens thread into the
/// engines that do real work (two-pass reroutes, per-channel track
/// assignment); a stopped stage returns no result and is never cached.

namespace gcr::pipeline {

struct StageContext {
  const layout::Layout& layout;
  const route::SearchEnvironment& env;
  const route::NetlistResult& routes;
  /// Cooperative cancel (client disconnect); may be null.
  std::shared_ptr<std::atomic<bool>> cancel;
  /// Absolute deadline; default = none.
  std::chrono::steady_clock::time_point deadline{};
};

struct StageOutcome {
  /// The rendered result; nullptr when the stage was stopped early.
  std::shared_ptr<const StageResult> result;
  /// True when the cancel token or deadline stopped the stage.
  bool cancelled = false;
};

[[nodiscard]] StageOutcome run_stage(const StageContext& ctx,
                                     const StageOptions& opts);

/// Test seam: number of stage executions that ran to completion in this
/// process (cache hits don't count — the invalidation tests assert on the
/// delta, like the PR 2 environment-build counter).
[[nodiscard]] std::size_t stage_build_count() noexcept;

}  // namespace gcr::pipeline
