#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "geometry/geometry.hpp"

/// \file stage.hpp
/// Stage vocabulary for the pipeline-orchestration subsystem.
///
/// The repo holds every stage of the paper's flow — congestion analysis,
/// channel/detailed routing, verification, rendering, workload synthesis —
/// but until this subsystem only the netlist router was served.  A Stage is
/// one of those engines run against a session's committed global routes; a
/// StageResult is the protocol-ready rendering of its output (meta fields
/// for the OK line, body lines for the framed payload), cacheable because
/// every input that affects it is captured by the cache key: the session's
/// content hash, the committed-route fingerprint, and the stage options
/// fingerprint below.

namespace gcr::pipeline {

enum class StageKind {
  kDetail,   ///< channel extraction + left-edge track assignment
  kCongest,  ///< two-pass congestion map over the committed routes
  kVerify,   ///< deployment-side route verifier
  kSvg,      ///< layout + routes rendered as a standalone SVG
};

[[nodiscard]] std::string_view to_string(StageKind k) noexcept;

/// All knobs of every stage, with the engines' defaults.  Only the fields
/// the selected stage reads participate in `fingerprint()`, so a DETAIL
/// request never misses the cache because an (irrelevant) congestion knob
/// differs.
struct StageOptions {
  StageKind kind = StageKind::kDetail;

  // DETAIL: detail::DetailedOptions.
  geom::Coord channel_window = 8;
  geom::Coord track_pitch = 2;

  // CONGEST: congestion::TwoPassOptions + PassageOptions.
  geom::Cost penalty_dbu = 32;
  std::size_t max_iterations = 3;
  geom::Coord wire_pitch = 2;
  geom::Coord max_gap = 0;

  // VERIFY: verify::VerifyOptions.
  bool require_all_routed = true;

  // SVG: io::SvgOptions.
  double scale = 4.0;
  bool draw_pins = true;
  bool draw_cell_names = true;

  /// Canonical stage + relevant-knob string, the third component of the
  /// stage-cache key.
  [[nodiscard]] std::string fingerprint() const;
};

/// A stage's protocol-ready output.  `meta` is appended to the OK response
/// line (space-separated `key=value` fields, no newline); `body` is the
/// framed payload the OK line's byte count announces.  Immutable once built
/// and shared by shared_ptr, like LayoutSession.
struct StageResult {
  StageKind kind = StageKind::kDetail;
  std::string meta;
  std::string body;
};

}  // namespace gcr::pipeline
