#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "pipeline/stage.hpp"

/// \file stage_cache.hpp
/// Content-addressed LRU cache of stage results, the pipeline counterpart
/// of serve's SessionCache.
///
/// The key is the concatenation of every input a stage reads: the session's
/// layout content hash, the committed-route fingerprint, and the stage
/// options fingerprint.  Because routes are addressed by content, a
/// REROUTE/OPTIMIZE that changes the geometry changes the key — stale
/// entries are never *returned*, they merely age out of the LRU.  A repeated
/// DETAIL on an unchanged session hits; the counters below make both
/// visible in STATS.

namespace gcr::pipeline {

class StageCache {
 public:
  explicit StageCache(std::size_t capacity = 32)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// The composite cache key.  '|' never occurs inside the components
  /// (session keys and route fingerprints are hex, option fingerprints use
  /// spaces and '='), so the concatenation is unambiguous.
  [[nodiscard]] static std::string key_for(const std::string& session_key,
                                           const std::string& routes_fp,
                                           const std::string& options_fp) {
    return session_key + "|" + routes_fp + "|" + options_fp;
  }

  /// nullptr on miss.  Hits refresh LRU recency and the hit counter; misses
  /// count too — together they are the stage-dedup ratio STATS reports.
  [[nodiscard]] std::shared_ptr<const StageResult> find(const std::string& key);

  /// Inserts (or replaces — idempotent for concurrent builders of the same
  /// key) and becomes most recent.
  void insert(const std::string& key, std::shared_ptr<const StageResult> res);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  struct Entry {
    std::shared_ptr<const StageResult> result;
    std::list<std::string>::iterator recency;  ///< position in recency_
  };

  void touch(Entry& entry);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::string> recency_;  ///< most recent first
  std::map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace gcr::pipeline
