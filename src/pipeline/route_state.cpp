#include "pipeline/route_state.hpp"

#include <cstdint>
#include <utility>

namespace gcr::pipeline {

namespace {

void mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a byte-wise over the value's 8 little-endian bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;  // FNV-1a prime
  }
}

}  // namespace

std::string fingerprint_routes(const route::NetlistResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  mix(h, r.routes.size());
  for (const route::NetRoute& nr : r.routes) {
    mix(h, nr.ok ? 1 : 0);
    mix(h, static_cast<std::uint64_t>(nr.wirelength));
    mix(h, nr.segments.size());
    for (const geom::Segment& s : nr.segments) {
      mix(h, static_cast<std::uint64_t>(s.a.x));
      mix(h, static_cast<std::uint64_t>(s.a.y));
      mix(h, static_cast<std::uint64_t>(s.b.x));
      mix(h, static_cast<std::uint64_t>(s.b.y));
    }
  }
  char buf[17];
  static const char* hex = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = hex[h & 0xf];
    h >>= 4;
  }
  buf[16] = '\0';
  return std::string(buf, 16);
}

std::shared_ptr<const CommittedRoutes> RouteStateSlot::get() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::shared_ptr<const CommittedRoutes> RouteStateSlot::set(
    route::NetlistResult result) {
  auto next = std::make_shared<CommittedRoutes>();
  next->fingerprint = fingerprint_routes(result);
  next->result = std::move(result);
  std::lock_guard<std::mutex> lock(mu_);
  state_ = next;
  return state_;
}

}  // namespace gcr::pipeline
