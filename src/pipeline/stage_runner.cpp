#include "pipeline/stage_runner.hpp"

#include <atomic>
#include <sstream>
#include <utility>

#include "congestion/two_pass.hpp"
#include "detail/detailed_router.hpp"
#include "io/svg.hpp"
#include "verify/route_verifier.hpp"

namespace gcr::pipeline {

namespace {

std::atomic<std::size_t> g_stage_builds{0};

using Clock = std::chrono::steady_clock;

bool stopped(const StageContext& ctx) {
  if (ctx.cancel && ctx.cancel->load(std::memory_order_relaxed)) return true;
  return ctx.deadline != Clock::time_point{} && Clock::now() >= ctx.deadline;
}

StageOutcome run_detail(const StageContext& ctx, const StageOptions& opts) {
  detail::DetailedOptions dopts;
  dopts.channel_window = opts.channel_window;
  dopts.track_pitch = opts.track_pitch;
  dopts.cancel = ctx.cancel;
  dopts.deadline = ctx.deadline;
  const detail::DetailedResult dr =
      detail::DetailedRouter(dopts).run(ctx.routes);
  if (dr.cancelled) return StageOutcome{nullptr, true};

  auto res = std::make_shared<StageResult>();
  res->kind = StageKind::kDetail;
  {
    std::ostringstream meta;
    meta << "subnets=" << dr.subnet_count << " channels=" << dr.channel_count
         << " tracks=" << dr.total_tracks << " max_tracks="
         << dr.max_channel_tracks << " vias=" << dr.via_count;
    res->meta = std::move(meta).str();
  }
  std::ostringstream body;
  for (const detail::AssignedWire& w : dr.wires) {
    body << "wire " << w.net << " " << w.seg.a.x << " " << w.seg.a.y << " "
         << w.seg.b.x << " " << w.seg.b.y << " layer " << w.layer
         << " channel " << w.channel << " track " << w.track << "\n";
  }
  for (const geom::Point& v : dr.vias) {
    body << "via " << v.x << " " << v.y << "\n";
  }
  res->body = std::move(body).str();
  return StageOutcome{std::move(res), false};
}

StageOutcome run_congest(const StageContext& ctx, const StageOptions& opts) {
  congestion::TwoPassOptions topts;
  topts.passages.wire_pitch = opts.wire_pitch;
  topts.passages.max_gap = opts.max_gap;
  topts.penalty_dbu = opts.penalty_dbu;
  topts.max_iterations = opts.max_iterations;
  topts.first_pass = &ctx.routes;
  topts.cancel = ctx.cancel;
  topts.deadline = ctx.deadline;
  const congestion::TwoPassRouter router(ctx.layout, ctx.env);
  const congestion::TwoPassReport rep = router.run(topts);
  if (rep.cancelled) return StageOutcome{nullptr, true};

  const congestion::CongestionMap map = congestion::build_map(
      ctx.layout, rep.final_pass, topts.passages);

  auto res = std::make_shared<StageResult>();
  res->kind = StageKind::kCongest;
  {
    std::ostringstream meta;
    meta << "passages=" << map.loads().size() << " passes=" << rep.passes_run
         << " rerouted=" << rep.nets_rerouted << " overflow_before="
         << rep.overflow_before << " overflow=" << rep.overflow_after
         << " max_occupancy=" << rep.max_occupancy_after;
    res->meta = std::move(meta).str();
  }
  std::ostringstream body;
  for (std::size_t i = 0; i < map.loads().size(); ++i) {
    const congestion::PassageLoad& ld = map.loads()[i];
    body << "passage " << i << " axis "
         << (ld.passage.flow_axis == geom::Axis::kX ? "x" : "y") << " region "
         << ld.passage.region.xlo << " " << ld.passage.region.ylo << " "
         << ld.passage.region.xhi << " " << ld.passage.region.yhi << " gap "
         << ld.passage.gap << " capacity " << ld.passage.capacity
         << " occupancy " << ld.occupancy << " overflow " << ld.overflow()
         << "\n";
  }
  res->body = std::move(body).str();
  return StageOutcome{std::move(res), false};
}

StageOutcome run_verify(const StageContext& ctx, const StageOptions& opts) {
  verify::VerifyOptions vopts;
  vopts.require_all_routed = opts.require_all_routed;
  const std::vector<verify::RouteViolation> violations =
      verify::verify_routes(ctx.layout, ctx.routes, vopts);

  auto res = std::make_shared<StageResult>();
  res->kind = StageKind::kVerify;
  res->meta = "violations=" + std::to_string(violations.size());
  std::ostringstream body;
  for (const verify::RouteViolation& v : violations) {
    body << verify::to_string(v.kind) << " " << v.net << " "
         << (v.net < ctx.layout.nets().size()
                 ? ctx.layout.nets()[v.net].name()
                 : std::string("?"))
         << " " << v.detail << "\n";
  }
  res->body = std::move(body).str();
  return StageOutcome{std::move(res), false};
}

StageOutcome run_svg(const StageContext& ctx, const StageOptions& opts) {
  io::SvgOptions sopts;
  sopts.scale = opts.scale;
  sopts.draw_pins = opts.draw_pins;
  sopts.draw_cell_names = opts.draw_cell_names;
  auto res = std::make_shared<StageResult>();
  res->kind = StageKind::kSvg;
  res->meta = "format=svg";
  res->body = io::svg_string(ctx.layout, &ctx.routes, sopts);
  return StageOutcome{std::move(res), false};
}

}  // namespace

StageOutcome run_stage(const StageContext& ctx, const StageOptions& opts) {
  // One check before any work: a request whose client is already gone (or
  // whose deadline passed in the queue) must not burn a worker.  The
  // heavier stages keep checking inside their own loops.
  if (stopped(ctx)) return StageOutcome{nullptr, true};

  StageOutcome out;
  switch (opts.kind) {
    case StageKind::kDetail: out = run_detail(ctx, opts); break;
    case StageKind::kCongest: out = run_congest(ctx, opts); break;
    case StageKind::kVerify: out = run_verify(ctx, opts); break;
    case StageKind::kSvg: out = run_svg(ctx, opts); break;
  }
  if (out.result != nullptr) {
    g_stage_builds.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

std::size_t stage_build_count() noexcept {
  return g_stage_builds.load(std::memory_order_relaxed);
}

}  // namespace gcr::pipeline
