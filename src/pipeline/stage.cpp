#include "pipeline/stage.hpp"

#include <sstream>

namespace gcr::pipeline {

std::string_view to_string(StageKind k) noexcept {
  switch (k) {
    case StageKind::kDetail: return "detail";
    case StageKind::kCongest: return "congest";
    case StageKind::kVerify: return "verify";
    case StageKind::kSvg: return "svg";
  }
  return "?";
}

std::string StageOptions::fingerprint() const {
  std::ostringstream out;
  out << to_string(kind);
  switch (kind) {
    case StageKind::kDetail:
      out << " cw=" << channel_window << " tp=" << track_pitch;
      break;
    case StageKind::kCongest:
      out << " pen=" << penalty_dbu << " it=" << max_iterations
          << " wp=" << wire_pitch << " mg=" << max_gap;
      break;
    case StageKind::kVerify:
      out << " all=" << (require_all_routed ? 1 : 0);
      break;
    case StageKind::kSvg:
      // The scale is formatted through the stream's default float rules on
      // purpose: two option sets that print the same render the same SVG.
      out << " s=" << scale << " p=" << (draw_pins ? 1 : 0)
          << " n=" << (draw_cell_names ? 1 : 0);
      break;
  }
  return std::move(out).str();
}

}  // namespace gcr::pipeline
