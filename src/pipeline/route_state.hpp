#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "core/netlist_router.hpp"

/// \file route_state.hpp
/// A session's committed global routes — the input every pipeline stage
/// consumes.
///
/// LayoutSession is immutable by design (shared read-only across workers);
/// committed routes are the one piece of per-session state that ROUTE,
/// REROUTE, and OPTIMIZE legitimately replace.  A RouteStateSlot is a tiny
/// swap cell: writers publish a complete immutable CommittedRoutes snapshot,
/// readers grab a shared_ptr and work off it without holding any lock while
/// stages run.  The snapshot carries a content fingerprint of its geometry;
/// since the stage cache keys on that fingerprint, replacing the routes
/// *automatically* invalidates every cached stage result — dirty tracking by
/// content addressing, no explicit invalidation walk.

namespace gcr::pipeline {

struct CommittedRoutes {
  route::NetlistResult result;
  /// FNV-1a over the route geometry, 16 lowercase hex digits.  Identical
  /// routes re-committed (e.g. a repeated full ROUTE of an unchanged
  /// session) keep the fingerprint and therefore keep stage-cache hits.
  std::string fingerprint;
};

/// FNV-1a 64-bit over every route's ok flag, wirelength, and segment
/// coordinates, as 16 lowercase hex digits.
[[nodiscard]] std::string fingerprint_routes(const route::NetlistResult& r);

class RouteStateSlot {
 public:
  /// The current snapshot; nullptr when nothing has been committed yet.
  [[nodiscard]] std::shared_ptr<const CommittedRoutes> get() const;

  /// Publishes \p result as the committed state (computes the fingerprint
  /// outside the lock) and returns the new snapshot.
  std::shared_ptr<const CommittedRoutes> set(route::NetlistResult result);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const CommittedRoutes> state_;
};

}  // namespace gcr::pipeline
