#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "net/frame_parser.hpp"
#include "net/socket.hpp"

/// \file connection.hpp
/// Per-client connection state for the epoll front-end: the incremental
/// frame parser on the inbound side, and on the outbound side a *sequenced*
/// response buffer.
///
/// Sequencing is the part a blocking loop gets for free and an event loop
/// must earn: a pipelined client may have several ROUTE jobs in flight on
/// the worker pool at once, and they complete in whatever order routing
/// finishes — but the protocol promises responses in request order.  Every
/// command therefore takes a ticket (assign_seq) at dispatch; a completed
/// response parks in `ready_` until every earlier ticket has been flattened
/// into the write buffer.  Interleaving is impossible by construction.
///
/// The write buffer is also where backpressure is measured: backlog() is
/// the byte count a slow reader has forced the server to hold, and the
/// event loop suspends reads (high-water) or drops the connection (hard
/// cap) based on it.
///
/// All members are owned and touched by the event-loop thread only; worker
/// threads never see a Connection (they post completions through the
/// loop's mailbox, keyed by id).  The one cross-thread member is the
/// cancel token, an atomic shared with queued jobs so a vanished client's
/// requests are dropped at dequeue instead of routed into the void.

namespace gcr::net {

class Connection {
 public:
  Connection(ScopedFd fd, std::uint64_t id, const FrameParser::Options& popts)
      : fd_(std::move(fd)), id_(id), parser_(popts),
        cancel_(std::make_shared<std::atomic<bool>>(false)) {}

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] FrameParser& parser() noexcept { return parser_; }
  [[nodiscard]] const std::shared_ptr<std::atomic<bool>>& cancel_token()
      const noexcept {
    return cancel_;
  }

  // ------------------------------------------------- response sequencing
  /// Takes the next response ticket; one per dispatched command.
  [[nodiscard]] std::uint64_t assign_seq() noexcept { return next_seq_++; }

  /// Delivers the final response for ticket \p seq.  Flattens it — and any
  /// later finished responses it unblocks — into the write buffer the
  /// moment it is next in line; parks it otherwise.
  void complete(std::uint64_t seq, std::string frame) {
    deliver(seq, std::move(frame), /*done=*/true);
  }

  /// Appends a *progress* chunk (an OPTIMIZE `PASS` line) to ticket
  /// \p seq without finishing it.  When the ticket is front of line the
  /// bytes stream straight to the write buffer — the client sees passes as
  /// they complete; otherwise they park with the ticket and flush, still
  /// in order, once the earlier responses land.  The ticket keeps blocking
  /// later responses until complete() arrives.
  void progress(std::uint64_t seq, std::string chunk) {
    deliver(seq, std::move(chunk), /*done=*/false);
  }

  /// In-flight accounting for jobs handed to the worker pool.
  void job_dispatched() noexcept { ++inflight_; }
  void job_completed() noexcept {
    if (inflight_ > 0) --inflight_;
  }
  [[nodiscard]] std::size_t inflight() const noexcept { return inflight_; }

  // ------------------------------------------------------- write buffer
  [[nodiscard]] bool has_output() const noexcept {
    return out_off_ < out_.size();
  }
  [[nodiscard]] const char* out_data() const noexcept {
    return out_.data() + out_off_;
  }
  [[nodiscard]] std::size_t out_size() const noexcept {
    return out_.size() - out_off_;
  }
  /// Marks \p n bytes as written; reclaims the buffer when fully drained
  /// (or when the dead prefix has grown past a compaction threshold).
  void out_consume(std::size_t n) noexcept {
    out_off_ += n;
    if (out_off_ >= out_.size()) {
      out_.clear();
      out_off_ = 0;
    } else if (out_off_ >= kCompactAt) {
      out_.erase(0, out_off_);
      out_off_ = 0;
    }
  }

  /// Outbound bytes held for this peer: unwritten buffer + parked
  /// out-of-order responses.  The backpressure measure.
  [[nodiscard]] std::size_t backlog() const noexcept {
    return (out_.size() - out_off_) + ready_bytes_;
  }

  /// True once every assigned ticket has been completed and written — the
  /// graceful-close condition.
  [[nodiscard]] bool drained() const noexcept {
    return inflight_ == 0 && ready_.empty() && !has_output();
  }

  // ---------------------------------- lifecycle flags (event-loop owned)
  bool eof = false;                ///< peer finished sending (read got 0)
  bool quit = false;               ///< QUIT seen: stop serving commands
  bool close_after_flush = false;  ///< close once drained
  bool reads_suspended = false;    ///< EPOLLIN currently off
  /// A cold LOAD is building on the worker pool.  Commands behind it park
  /// in `deferred` until its completion lands: a pipelined `LOAD …\nROUTE`
  /// burst must see the session resolvable at the ROUTE's admission, which
  /// the old loop-thread-inline LOAD guaranteed for free and the offloaded
  /// path must earn with this barrier.
  bool load_inflight = false;
  std::uint32_t registered_events = 0;  ///< epoll interest as last set

  /// Commands parsed but not yet dispatched: when one recv batch carries
  /// more (cheap, synchronously-answered) commands than the high-water
  /// mark can hold responses for, the surplus parks here and resumes as
  /// the peer drains — the backlog bound stays real even against a single
  /// pipelined burst.  Cleared on QUIT/fatal/shutdown (commands after
  /// those are never served).
  std::deque<FrameParser::Event> deferred;

 private:
  static constexpr std::size_t kCompactAt = 64 * 1024;

  /// A parked response: the bytes accumulated so far and whether the final
  /// frame has arrived.  An unfinished entry at the front of the line
  /// streams its text out incrementally but stays parked — it must keep
  /// blocking later tickets until complete() marks it done.
  struct Pending {
    std::string text;
    bool done = false;
  };

  void deliver(std::uint64_t seq, std::string bytes, bool done) {
    if (seq == flush_seq_ && ready_.find(seq) == ready_.end()) {
      // Front of line with nothing parked: stream straight through.
      out_ += bytes;
      if (done) {
        ++flush_seq_;
        flush_ready();
      } else {
        // Park an empty marker so drained() and later tickets still see
        // this response as unfinished.
        ready_.emplace(seq, Pending{});
      }
      return;
    }
    auto [it, inserted] = ready_.try_emplace(seq);
    Pending& p = it->second;
    ready_bytes_ += bytes.size();
    p.text += bytes;
    p.done = p.done || done;
    if (seq == flush_seq_) {
      // Front-of-line ticket that was already parked (progress arrived
      // before this chunk): flush what we have; retire it only when done.
      ready_bytes_ -= p.text.size();
      out_ += p.text;
      p.text.clear();
      if (p.done) {
        ready_.erase(it);
        ++flush_seq_;
        flush_ready();
      }
    }
  }

  /// Flattens the in-order prefix of finished responses into the write
  /// buffer, stopping at a gap or at an unfinished (streaming) ticket.
  void flush_ready() {
    auto it = ready_.begin();
    while (it != ready_.end() && it->first == flush_seq_) {
      ready_bytes_ -= it->second.text.size();
      out_ += it->second.text;
      if (!it->second.done) {
        it->second.text.clear();
        break;  // streaming ticket: emit its bytes but keep it parked
      }
      it = ready_.erase(it);
      ++flush_seq_;
    }
  }

  ScopedFd fd_;
  std::uint64_t id_;
  FrameParser parser_;
  std::shared_ptr<std::atomic<bool>> cancel_;
  std::uint64_t next_seq_ = 0;   ///< next ticket to hand out
  std::uint64_t flush_seq_ = 0;  ///< next ticket the write buffer expects
  std::map<std::uint64_t, Pending> ready_;  ///< parked responses
  std::size_t ready_bytes_ = 0;
  std::string out_;
  std::size_t out_off_ = 0;
  std::size_t inflight_ = 0;
};

}  // namespace gcr::net
