#pragma once

#include <cstdint>
#include <string>
#include <utility>

/// \file socket.hpp
/// The thin POSIX layer under the network front-end: an owning descriptor,
/// non-blocking mode, and loopback TCP / unix-domain endpoints.  Everything
/// above this file (frame parser, connection state, event loop) is testable
/// without a kernel; everything below it is four syscalls.  POSIX-only — on
/// other platforms the constructors throw std::runtime_error.

namespace gcr::net {

/// An owning file descriptor (close-on-destroy, move-only).  -1 = empty.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) noexcept : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] explicit operator bool() const noexcept { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int release() noexcept { return std::exchange(fd_, -1); }
  /// Closes the held descriptor (if any) and adopts \p fd.
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Puts \p fd into non-blocking mode; throws std::runtime_error on failure.
void set_nonblocking(int fd);

/// A listening socket — the accept side of the epoll front-end.  Either a
/// loopback TCP socket (non-blocking, SO_REUSEADDR, optionally
/// SO_REUSEPORT for multi-reactor sharding) or a unix-domain socket bound
/// to a filesystem path (unlinked when the listener is destroyed).
class Listener {
 public:
  /// Binds 127.0.0.1:\p port (0 = kernel-assigned ephemeral port, see
  /// port()) and listens.  With \p reuse_port, SO_REUSEPORT is set before
  /// the bind so N reactors can each bind the same port and let the kernel
  /// distribute incoming connections across them — reactor 0 binds with
  /// port 0, the rest bind the resolved port.  Throws std::runtime_error
  /// on failure.
  explicit Listener(std::uint16_t port, bool reuse_port = false);

  /// Binds a unix-domain stream socket at \p path and listens.  A stale
  /// socket file at \p path is unlinked first (a previous unclean exit
  /// must not wedge the daemon); the path is unlinked again on
  /// destruction.  Throws std::runtime_error on failure.
  static Listener unix_listener(const std::string& path);

  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  /// The actually bound port — the one to advertise when constructed with
  /// 0.  Always 0 for a unix-domain listener.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// The bound filesystem path (unix-domain listeners only; else empty).
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Accepts one pending connection; returns an empty fd when none is
  /// pending (EAGAIN).  The accepted socket comes back non-blocking and
  /// close-on-exec.  Throws on unrecoverable accept errors.
  [[nodiscard]] ScopedFd accept_one();

 private:
  Listener() = default;

  ScopedFd fd_;
  std::uint16_t port_ = 0;
  std::string path_;  ///< non-empty = unix listener, unlink on destroy
};

/// Blocking loopback connect — the client side (load generator, tests).
/// \p so_rcvbuf > 0 shrinks the client's receive buffer *before* the
/// connect (it sizes the advertised TCP window), which is how the
/// backpressure tests make a "slow reader" deterministic: with a tiny
/// window the kernel cannot absorb responses on the client's behalf.
/// Throws std::runtime_error when the connection is refused.
[[nodiscard]] ScopedFd tcp_connect(std::uint16_t port, int so_rcvbuf = 0);

/// Blocking connect to a unix-domain listener at \p path.  Throws
/// std::runtime_error when the socket is absent or refuses.
[[nodiscard]] ScopedFd unix_connect(const std::string& path);

}  // namespace gcr::net
