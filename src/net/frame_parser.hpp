#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

/// \file frame_parser.hpp
/// Incremental framing for the routing protocol: bytes go in as they arrive
/// off a non-blocking socket, complete protocol commands come out.  The
/// blocking loop (serve::serve_connection) frames by *reading* — it can ask
/// the stream for "one line" or "N body bytes" and wait.  An event loop
/// cannot wait, so this parser inverts control: it is a state machine over
/// the same grammar (command line, optional byte-counted LOAD body) that
/// holds partial input between feed() calls.
///
/// The hardening rules match the blocking loop exactly:
///   - a command line longer than max_line is discarded to its terminating
///     LF and reported (the connection answers ERR and keeps going);
///   - a LOAD whose count exceeds max_load is reported and its body bytes
///     are skipped without buffering (framing survives);
///   - a LOAD whose count cannot be parsed is fatal — the stream position
///     is unknowable, so the connection must close after the ERR.
/// Memory held between calls is therefore bounded by max_line + max_load
/// regardless of peer behaviour.

namespace gcr::net {

/// Framing limits.  Top-level (not nested in FrameParser) so its default
/// member initializers are usable in default arguments — GCC rejects that
/// for nested aggregates until the enclosing class completes.
struct FrameParserOptions {
  std::size_t max_line = serve::kMaxCommandLine;
  std::size_t max_load = serve::kMaxLoadBytes;
};

class FrameParser {
 public:
  using Options = FrameParserOptions;

  enum class EventKind {
    kCommand,       ///< complete command line (+ body when it was a LOAD)
    kOverlongLine,  ///< line exceeded max_line; discarded — answer ERR
    kOversizeLoad,  ///< LOAD count > max_load; body skipped — answer ERR
    kFatal,         ///< unparsable LOAD count — answer ERR, then close
  };

  struct Event {
    EventKind kind = EventKind::kCommand;
    std::string line;   ///< the command line, CR stripped
    std::string body;   ///< LOAD body bytes
    std::string error;  ///< diagnostic for the non-kCommand kinds
  };

  explicit FrameParser(const FrameParserOptions& opts = FrameParserOptions())
      : opts_(opts) {}

  /// Feeds \p n bytes, appending every event they complete to \p out.
  /// Returns false once a fatal event has been emitted; further bytes are
  /// ignored (the connection is out of sync and must close).
  bool feed(const char* data, std::size_t n, std::vector<Event>& out);

  /// Signals end of input.  Flushes a trailing LF-less command line — the
  /// blocking front-end's getline serves those, so parity demands the
  /// same here — and reports a LOAD whose declared body the peer never
  /// finished (kFatal, the blocking loop's "body truncated" ERR).  The
  /// parser is dead afterwards.  Returns like feed().
  bool finish_eof(std::vector<Event>& out);

  [[nodiscard]] bool dead() const noexcept { return state_ == State::kDead; }
  /// Bytes currently buffered awaiting completion (tests pin the bound).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return line_.size() + body_.size();
  }

 private:
  enum class State {
    kLine,         ///< accumulating a command line
    kBody,         ///< accumulating a LOAD body (need_ bytes left)
    kSkipBody,     ///< discarding an oversize LOAD body (need_ bytes left)
    kDiscardLine,  ///< discarding an overlong line up to the next LF
    kDead,         ///< fatal framing error; feed() is a no-op
  };

  /// Handles one complete command line; may change state (LOAD).
  void finish_line(std::vector<Event>& out);

  FrameParserOptions opts_;
  State state_ = State::kLine;
  std::string line_;        ///< partial command line
  std::string body_;        ///< partial LOAD body
  std::string load_line_;   ///< the LOAD command line awaiting its body
  std::size_t need_ = 0;    ///< body bytes still to read / skip
};

}  // namespace gcr::net
