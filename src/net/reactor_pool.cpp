#include "net/reactor_pool.hpp"

#include <exception>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

namespace gcr::net {

ReactorPool::ReactorPool(serve::RoutingService& service,
                         const ReactorPoolOptions& opts)
    : service_(service) {
  const std::size_t n = opts.reactors == 0 ? 1 : opts.reactors;
  loops_.reserve(n);

  // Loop 0 resolves the port (possibly kernel-assigned) and carries the
  // unix-domain listener; SO_REUSEPORT must be set on *every* sharing
  // socket before its bind, including the first.
  EventLoopOptions lo = opts.loop;
  lo.reuse_port = n > 1;
  lo.register_stats = false;
  loops_.push_back(std::make_unique<EventLoop>(service_, lo));

  const std::uint16_t bound = loops_[0]->port();
  for (std::size_t i = 1; i < n; ++i) {
    EventLoopOptions li = opts.loop;
    li.port = bound;
    li.reuse_port = true;
    li.register_stats = false;
    li.unix_path.clear();  // AF_UNIX cannot shard; loop 0 owns the path
    loops_.push_back(std::make_unique<EventLoop>(service_, li));
  }

  service_.set_extra_stats([this] { return render_stats(); });
}

ReactorPool::~ReactorPool() { service_.set_extra_stats({}); }

std::uint16_t ReactorPool::port() const noexcept { return loops_[0]->port(); }

void ReactorPool::run() {
  std::mutex err_mu;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(loops_.size());
  for (auto& loop : loops_) {
    threads.emplace_back([this, &loop, &err_mu, &first_error] {
      try {
        loop->run();
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // One dead reactor must not leave the rest serving half a pool.
        stop();
        stop();  // second stop: force-close so the barrier cannot hang
      }
    });
  }
  // The drain barrier: every reactor has returned from run() — drained or
  // force-closed — before the pool's run() returns to the caller.
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

void ReactorPool::stop() noexcept {
  for (auto& loop : loops_) loop->stop();
}

std::string ReactorPool::render_stats() const {
  std::vector<LoopStatsView> views;
  views.reserve(loops_.size());
  LoopStatsView total;
  for (const auto& loop : loops_) {
    views.push_back(snapshot_loop_stats(loop->stats()));
    total.merge(views.back());
  }
  std::ostringstream os;
  os << render_loop_stats(total, "loop_");
  os << "loop_reactors " << loops_.size() << '\n';
  for (std::size_t i = 0; i < views.size(); ++i) {
    os << render_loop_stats(views[i], "loop" + std::to_string(i) + "_");
  }
  return os.str();
}

}  // namespace gcr::net
