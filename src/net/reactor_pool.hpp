#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/event_loop.hpp"

/// \file reactor_pool.hpp
/// N event loops sharing one port: the multi-reactor front-end.
///
/// Every loop binds the same loopback port with SO_REUSEPORT and the
/// kernel hashes incoming connections across them, so accept/parse/flush
/// work scales with reactor count while each *connection* stays affine to
/// the loop that accepted it — its Connection state, mailbox completions
/// and epoll registration never cross threads, which is exactly the
/// single-loop invariant EventLoop was built on.  Loop 0 additionally
/// carries the optional unix-domain listener (AF_UNIX has no reuseport
/// load balancing, so one loop owns the path).
///
/// The pool owns the service's extra-stats hook: each loop is constructed
/// with register_stats=false and the pool renders one aggregated `loop_*`
/// block (counters summed, lag histograms merged bucket-wise so the
/// percentiles are of the true combined distribution) followed by per-loop
/// `loop<i>_*` shards — existing `loop_*` STATS consumers keep working and
/// per-reactor skew stays observable.
///
/// run() spawns one thread per loop and joins them all: the join *is* the
/// shutdown drain barrier across reactors.  stop() is async-signal-safe
/// (it only forwards to EventLoop::stop); first call drains every loop,
/// second force-closes every connection.

namespace gcr::net {

struct ReactorPoolOptions {
  /// Number of event loops; 0 is treated as 1.  With one reactor the pool
  /// is byte-for-byte the old single-loop server (no SO_REUSEPORT).
  std::size_t reactors = 1;
  /// Per-loop options.  `port` may be 0 (loop 0 binds it, the rest bind
  /// the resolved port); `unix_path` is honored on loop 0 only;
  /// `reuse_port`/`register_stats` are overridden by the pool.
  EventLoopOptions loop{};
};

class ReactorPool {
 public:
  /// Binds all listeners (throws on failure, e.g. the port or unix path is
  /// unusable); loops do not serve until run().
  ReactorPool(serve::RoutingService& service,
              const ReactorPoolOptions& opts = {});
  ~ReactorPool();

  ReactorPool(const ReactorPool&) = delete;
  ReactorPool& operator=(const ReactorPool&) = delete;

  /// The shared bound port — what to advertise when options said 0.
  [[nodiscard]] std::uint16_t port() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return loops_.size(); }
  [[nodiscard]] EventLoop& loop(std::size_t i) { return *loops_[i]; }

  /// Serves until stop(): spawns one thread per reactor and joins them all.
  /// The join is the multi-loop drain barrier — run() returns only when
  /// every loop has drained (or force-closed) its connections.  A loop
  /// thread that throws stops the whole pool; the first exception is
  /// rethrown here after the barrier.
  void run();

  /// Requests shutdown on every loop; async-signal-safe, callable from any
  /// thread or a signal handler.  First call drains, second force-closes.
  void stop() noexcept;

  /// The `loop_*` aggregate + `loop<i>_*` shard STATS block (the pool's
  /// extra-stats hook).  Reads only atomics — safe from any thread.
  [[nodiscard]] std::string render_stats() const;

 private:
  serve::RoutingService& service_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
};

}  // namespace gcr::net
