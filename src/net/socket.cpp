#include "net/socket.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#define GCR_NET_HAVE_POSIX 1
#else
#define GCR_NET_HAVE_POSIX 0
#endif

namespace gcr::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

#if GCR_NET_HAVE_POSIX

void ScopedFd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

Listener::Listener(std::uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) throw_errno("socket");
  const int one = 1;
  // REUSEADDR so a restarted daemon rebinds its port without waiting out
  // TIME_WAIT sockets from the previous incarnation's connections.
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd.get(), 128) < 0) throw_errno("listen");
  set_nonblocking(fd.get());
  // Read back the kernel-assigned port for the port=0 case.
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  fd_ = std::move(fd);
}

ScopedFd Listener::accept_one() {
  for (;;) {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) {
      ScopedFd out(fd);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
      set_nonblocking(fd);
      // The protocol pipelines small frames; Nagle would add 40ms stalls
      // between a command and its response on an otherwise idle socket.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return out;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ScopedFd();
    // Transient per-connection failures (the peer gave up between the
    // kernel queueing it and us accepting it) are not listener failures.
    if (errno == ECONNABORTED || errno == EPROTO) continue;
    throw_errno("accept");
  }
}

ScopedFd tcp_connect(std::uint16_t port, int so_rcvbuf) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) throw_errno("socket");
  if (so_rcvbuf > 0) {
    // Must precede connect: the receive buffer sizes the TCP window the
    // client advertises in its SYN.
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &so_rcvbuf,
                 sizeof so_rcvbuf);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    throw_errno("connect 127.0.0.1:" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

#else  // !GCR_NET_HAVE_POSIX

void ScopedFd::reset(int fd) noexcept { fd_ = fd; }

void set_nonblocking(int) {
  throw std::runtime_error("gcr::net requires a POSIX platform");
}

Listener::Listener(std::uint16_t) {
  throw std::runtime_error("gcr::net requires a POSIX platform");
}

ScopedFd Listener::accept_one() { return ScopedFd(); }

ScopedFd tcp_connect(std::uint16_t, int) {
  throw std::runtime_error("gcr::net requires a POSIX platform");
}

#endif  // GCR_NET_HAVE_POSIX

}  // namespace gcr::net
