#include "net/socket.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define GCR_NET_HAVE_POSIX 1
#else
#define GCR_NET_HAVE_POSIX 0
#endif

namespace gcr::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

#if GCR_NET_HAVE_POSIX

void ScopedFd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

namespace {

/// Fills a sockaddr_un for \p path, rejecting paths that do not fit.
sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("unix socket path unusable (empty or longer "
                             "than " +
                             std::to_string(sizeof addr.sun_path - 1) +
                             " bytes): '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Listener::Listener(std::uint16_t port, bool reuse_port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) throw_errno("socket");
  const int one = 1;
  // REUSEADDR so a restarted daemon rebinds its port without waiting out
  // TIME_WAIT sockets from the previous incarnation's connections.
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  if (reuse_port &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) < 0) {
    // Must be set before bind on every sharing socket: the kernel hashes
    // incoming connections across all listeners in the reuseport group.
    throw_errno("setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd.get(), 128) < 0) throw_errno("listen");
  set_nonblocking(fd.get());
  // Read back the kernel-assigned port for the port=0 case.
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  fd_ = std::move(fd);
}

Listener Listener::unix_listener(const std::string& path) {
  const sockaddr_un addr = unix_addr(path);
  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd) throw_errno("socket(AF_UNIX)");
  // A stale socket file from an unclean exit would make bind fail with
  // EADDRINUSE forever; remove it up front.  A live daemon on the same
  // path loses its listener either way — the path is the lock, and the
  // operator picked it.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    throw_errno("bind unix:" + path);
  }
  if (::listen(fd.get(), 128) < 0) throw_errno("listen unix:" + path);
  set_nonblocking(fd.get());
  Listener out;
  out.fd_ = std::move(fd);
  out.path_ = path;
  return out;
}

Listener::~Listener() {
  if (!path_.empty()) ::unlink(path_.c_str());
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::move(other.fd_)),
      port_(other.port_),
      path_(std::move(other.path_)) {
  other.path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    if (!path_.empty()) ::unlink(path_.c_str());
    fd_ = std::move(other.fd_);
    port_ = other.port_;
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

ScopedFd Listener::accept_one() {
  for (;;) {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) {
      ScopedFd out(fd);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
      set_nonblocking(fd);
      // The protocol pipelines small frames; Nagle would add 40ms stalls
      // between a command and its response on an otherwise idle socket.
      // Harmlessly fails on AF_UNIX (no Nagle there to begin with).
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return out;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ScopedFd();
    // Transient per-connection failures (the peer gave up between the
    // kernel queueing it and us accepting it) are not listener failures.
    if (errno == ECONNABORTED || errno == EPROTO) continue;
    throw_errno("accept");
  }
}

ScopedFd tcp_connect(std::uint16_t port, int so_rcvbuf) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) throw_errno("socket");
  if (so_rcvbuf > 0) {
    // Must precede connect: the receive buffer sizes the TCP window the
    // client advertises in its SYN.
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &so_rcvbuf,
                 sizeof so_rcvbuf);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    throw_errno("connect 127.0.0.1:" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

ScopedFd unix_connect(const std::string& path) {
  const sockaddr_un addr = unix_addr(path);
  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd) throw_errno("socket(AF_UNIX)");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    throw_errno("connect unix:" + path);
  }
  return fd;
}

#else  // !GCR_NET_HAVE_POSIX

void ScopedFd::reset(int fd) noexcept { fd_ = fd; }

void set_nonblocking(int) {
  throw std::runtime_error("gcr::net requires a POSIX platform");
}

Listener::Listener(std::uint16_t, bool) {
  throw std::runtime_error("gcr::net requires a POSIX platform");
}

Listener Listener::unix_listener(const std::string&) {
  throw std::runtime_error("gcr::net requires a POSIX platform");
}

Listener::~Listener() = default;
Listener::Listener(Listener&&) noexcept = default;
Listener& Listener::operator=(Listener&&) noexcept = default;

ScopedFd Listener::accept_one() { return ScopedFd(); }

ScopedFd tcp_connect(std::uint16_t, int) {
  throw std::runtime_error("gcr::net requires a POSIX platform");
}

ScopedFd unix_connect(const std::string&) {
  throw std::runtime_error("gcr::net requires a POSIX platform");
}

#endif  // GCR_NET_HAVE_POSIX

}  // namespace gcr::net
