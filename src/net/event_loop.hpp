#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/connection.hpp"
#include "net/frame_parser.hpp"
#include "net/socket.hpp"
#include "serve/routing_service.hpp"
#include "serve/trace.hpp"

/// \file event_loop.hpp
/// The asynchronous multi-client front-end: one thread, one epoll set, many
/// TCP connections, all multiplexed onto the routing service's existing
/// worker pool.
///
/// Division of labour — the loop thread only ever does cheap things:
///   - accept connections and read whatever bytes are available;
///   - feed the per-connection FrameParser and dispatch completed commands
///     (ROUTE becomes a worker-pool job via RoutingService::submit's
///     callback form; STATS/LOAD/errors are answered inline);
///   - flush write buffers and maintain epoll interest sets.
/// Routing runs on the pool; a finished job's worker thread formats the
/// response (the expensive route-dump rendering) and posts it to the
/// loop's mailbox — a mutex-guarded vector plus an eventfd the loop sleeps
/// on — so routing never blocks the loop and the loop never blocks routing.
/// Cold LOADs (layout parse + environment build) go to the pool the same
/// way, so a cold-session storm cannot stall every connection behind one
/// build; only the content-hash probe for an already-resident session runs
/// on the loop.  While a connection's LOAD is building, its later commands
/// park on the connection (Connection::load_inflight) and replay once the
/// completion lands, preserving pipelined LOAD→ROUTE semantics and
/// response order.
///
/// Backpressure: each connection's backlog (unwritten + parked response
/// bytes, see Connection) is compared against two marks.  Past
/// write_high_water the connection's reads are suspended — a slow reader
/// stops injecting new work but keeps its in-flight responses.  Past
/// write_hard_cap the connection is dropped: its fd closes, its cancel
/// token flips so still-queued jobs die at dequeue, and late completions
/// are discarded by id.
///
/// Shutdown: stop() is async-signal-safe (atomic increment + eventfd
/// write).  The first stop closes the listener and lets every connection
/// drain — in-flight jobs complete and flush — before the loop returns; a
/// second stop() force-closes whatever is left (the escape hatch when a
/// dead peer will never drain its responses).

namespace gcr::net {

struct EventLoopOptions {
  /// Port to bind on loopback; 0 = kernel-assigned (read EventLoop::port()).
  std::uint16_t port = 0;
  std::size_t max_connections = 256;
  /// Backlog bytes past which a connection's reads are suspended.
  std::size_t write_high_water = 1u << 20;
  /// Backlog bytes past which a connection is dropped outright.
  std::size_t write_hard_cap = 4u << 20;
  /// Per-connection cap on commands dispatched but not yet completed
  /// (ROUTE jobs on the pool *and* fail-fast responses still parked in
  /// the wakeup mailbox — the byte marks cannot see either).  Past it the
  /// connection's surplus commands park exactly like write backpressure,
  /// so a burst of instant-failing ROUTEs cannot grow the mailbox without
  /// bound.
  std::size_t max_inflight = 256;
  /// SO_SNDBUF for accepted sockets; 0 = kernel default.  The backpressure
  /// marks measure *user-space* backlog, so a generous kernel send buffer
  /// hides a slow reader until it overflows — shrink this to make the
  /// marks bite early (tests do; a memory-tight deployment might).
  int so_sndbuf = 0;
  /// Sets SO_REUSEPORT on the TCP listener before bind, so N reactor loops
  /// can each bind the same port and let the kernel spread incoming
  /// connections across them (see ReactorPool).
  bool reuse_port = false;
  /// Non-empty: additionally listen on a unix-domain socket at this path.
  /// Accepted peers share the Connection/FrameParser path verbatim with
  /// TCP peers; the socket file is unlinked when the loop is destroyed.
  std::string unix_path;
  /// Whether the loop installs itself as the routing service's extra-stats
  /// hook (the `loop_*` STATS block).  A standalone loop should (default);
  /// a ReactorPool member must not — the pool owns the single hook and
  /// renders aggregated `loop_*` plus per-loop `loop<i>_*` shards itself.
  bool register_stats = true;
  FrameParser::Options parser{};
};

/// Counters the loop maintains; atomics so tests and monitoring threads can
/// read them while the loop runs.  Exported verbatim into the STATS body
/// (as `loop_*` keys) through RoutingService::set_extra_stats, so TCP
/// clients see loop health next to the service counters.
struct EventLoopStats {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected_at_capacity{0};
  std::atomic<std::uint64_t> closed{0};
  std::atomic<std::uint64_t> commands{0};
  std::atomic<std::uint64_t> reads_suspended{0};  ///< suspension *events*
  std::atomic<std::uint64_t> dropped_slow{0};     ///< hard-cap drops
  std::atomic<std::uint64_t> dropped_error{0};    ///< read/write errors
  std::atomic<std::uint64_t> completions_discarded{0};  ///< conn died first
  /// Commands parked on a connection (backpressure or a LOAD barrier) and
  /// parked commands later replayed by settle(); parked >= replayed, the
  /// difference is what is parked right now plus what died parked.
  std::atomic<std::uint64_t> parked{0};
  std::atomic<std::uint64_t> replayed{0};
  std::atomic<std::uint64_t> bytes_in{0};   ///< recv()'d payload bytes
  std::atomic<std::uint64_t> bytes_out{0};  ///< send()'d payload bytes
  std::atomic<std::uint64_t> wakeups{0};    ///< epoll batches processed
  /// Live connection gauge — a dedicated atomic rather than conns_.size()
  /// because the STATS render runs on whatever thread asked, not the loop.
  std::atomic<std::uint64_t> connections{0};
  /// Wall-clock per epoll batch (event processing, not the sleep),
  /// microseconds: the loop's own responsiveness.  A fat tail here means
  /// something is doing expensive work on the loop thread.
  serve::Histogram loop_lag;
};

/// A plain-value snapshot of EventLoopStats.  Atomics and histograms do
/// not add, but their snapshots do: a ReactorPool sums one view per loop
/// into the aggregated `loop_*` block while rendering each view verbatim
/// as that loop's `loop<i>_*` shard.
struct LoopStatsView {
  std::uint64_t connections = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_at_capacity = 0;
  std::uint64_t closed = 0;
  std::uint64_t commands = 0;
  std::uint64_t reads_suspended = 0;
  std::uint64_t dropped_slow = 0;
  std::uint64_t dropped_error = 0;
  std::uint64_t completions_discarded = 0;
  std::uint64_t parked = 0;
  std::uint64_t replayed = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t wakeups = 0;
  serve::Histogram::Snapshot lag{};

  /// Folds \p other into this view: counters sum, lag histograms merge
  /// bucket-wise (percentiles of the merged distribution stay exact).
  void merge(const LoopStatsView& other);
};

/// Reads every counter (and the lag histogram) at relaxed order; safe from
/// any thread while the loop runs.
[[nodiscard]] LoopStatsView snapshot_loop_stats(const EventLoopStats& stats);

/// Renders the 17-key loop-health block as `<prefix><key> <value>` STATS
/// lines ("loop_" for the standalone/aggregate block, "loop0_" … for
/// per-reactor shards).
[[nodiscard]] std::string render_loop_stats(const LoopStatsView& view,
                                            const std::string& prefix);

class EventLoop {
 public:
  /// Binds the listener and creates the epoll set and wakeup mailbox; the
  /// loop does not serve until run().  Throws std::runtime_error when the
  /// port cannot be bound (and on non-Linux platforms, which lack epoll).
  EventLoop(serve::RoutingService& service, const EventLoopOptions& opts = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The bound port — what to advertise when options said 0.
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Serves until stop().  Call from exactly one thread.
  void run();

  /// Requests shutdown; async-signal-safe, callable from any thread or a
  /// signal handler.  First call drains, second call force-closes.
  void stop() noexcept;

  [[nodiscard]] const EventLoopStats& stats() const noexcept { return stats_; }

 private:
  struct Mailbox;  ///< completion queue + wakeup eventfd (in the .cpp)

  void accept_ready(Listener& from);
  void drain_mailbox();
  void handle_readable(std::uint64_t id);
  /// Dispatches events[from..] in order, parking the tail on the
  /// connection (and suspending reads) the moment the backlog crosses the
  /// high-water mark — settle() resumes the parked tail as the peer
  /// drains.
  void process_events(Connection& conn,
                      std::vector<FrameParser::Event>& events,
                      std::size_t from = 0);
  void dispatch(Connection& conn, FrameParser::Event& ev);
  /// Writes what the socket accepts, applies backpressure marks, updates
  /// epoll interest, and closes the connection when it is done.  The one
  /// place a connection's fate is decided; \p id may be gone afterwards.
  void settle(std::uint64_t id);
  void close_connection(std::uint64_t id, bool drop);
  void begin_shutdown();
  void force_close_all();
  void update_interest(Connection& conn);
  /// Renders the `loop_* <value>` lines appended to the STATS body.
  /// Reads only atomics — safe from any thread while the loop runs.
  [[nodiscard]] std::string render_loop_stats() const;

  serve::RoutingService& service_;
  EventLoopOptions opts_;
  EventLoopStats stats_;
  ScopedFd epoll_;
  Listener listener_;
  std::optional<Listener> unix_listener_;  ///< --listen-unix, loop 0 only
  std::shared_ptr<Mailbox> mailbox_;
  std::atomic<int> stop_requests_{0};
  bool stopping_ = false;
  bool listener_armed_ = false;
  bool unix_listener_armed_ = false;
  /// 0 = TCP listener tag, 1 = mailbox tag, 2 = unix listener tag.
  std::uint64_t next_conn_id_ = 3;
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
};

}  // namespace gcr::net
