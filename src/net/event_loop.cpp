#include "net/event_loop.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "serve/protocol.hpp"

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#define GCR_NET_HAVE_EPOLL 1
#else
#define GCR_NET_HAVE_EPOLL 0
#endif

namespace gcr::net {

namespace {

#if GCR_NET_HAVE_EPOLL

constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kMailboxTag = 1;
constexpr std::uint64_t kUnixListenerTag = 2;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

#endif  // GCR_NET_HAVE_EPOLL

}  // namespace

/// The bridge between worker threads and the loop thread.  post() is called
/// from workers (and, for fail-fast submissions, from the loop itself);
/// drain() only from the loop.  wake() is a bare eventfd write — no lock,
/// no allocation — which is what makes stop() safe inside a signal handler.
/// Held by shared_ptr from every in-flight job's callback, so a completion
/// landing after the loop died posts into a soon-to-be-freed vector instead
/// of a dangling one.
struct EventLoop::Mailbox {
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string frame;
    /// This completion finishes the connection's offloaded LOAD: drop the
    /// dispatch barrier so parked commands replay (see
    /// Connection::load_inflight).
    bool load = false;
    /// A progress chunk (an OPTIMIZE `PASS` line), not the final response:
    /// the ticket stays open — no in-flight decrement, no barrier drop —
    /// and the bytes stream through Connection::progress.  Workers post
    /// every partial before the final frame on the same thread, and the
    /// mailbox is FIFO, so order within a ticket is preserved.
    bool partial = false;
  };

#if GCR_NET_HAVE_EPOLL
  Mailbox() : event_fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
    if (!event_fd) throw_errno("eventfd");
  }
#else
  Mailbox() { throw std::runtime_error("gcr::net requires Linux epoll"); }
#endif

  void post(Completion c) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      items.push_back(std::move(c));
    }
    wake();
  }

  void wake() noexcept {
#if GCR_NET_HAVE_EPOLL
    const std::uint64_t one = 1;
    // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
    [[maybe_unused]] const auto r =
        ::write(event_fd.get(), &one, sizeof one);
#endif
  }

  std::vector<Completion> drain() {
#if GCR_NET_HAVE_EPOLL
    std::uint64_t counter = 0;
    [[maybe_unused]] const auto r =
        ::read(event_fd.get(), &counter, sizeof counter);
#endif
    std::vector<Completion> out;
    const std::lock_guard<std::mutex> lock(mu);
    out.swap(items);
    return out;
  }

  ScopedFd event_fd;
  std::mutex mu;
  std::vector<Completion> items;
};

#if GCR_NET_HAVE_EPOLL

EventLoop::EventLoop(serve::RoutingService& service,
                     const EventLoopOptions& opts)
    : service_(service), opts_(opts),
      epoll_(::epoll_create1(EPOLL_CLOEXEC)),
      listener_(opts.port, opts.reuse_port),
      mailbox_(std::make_shared<Mailbox>()) {
  if (!epoll_) throw_errno("epoll_create1");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.fd(), &ev) < 0) {
    throw_errno("epoll_ctl(listener)");
  }
  listener_armed_ = true;
  ev.events = EPOLLIN;
  ev.data.u64 = kMailboxTag;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, mailbox_->event_fd.get(),
                  &ev) < 0) {
    throw_errno("epoll_ctl(mailbox)");
  }
  if (!opts_.unix_path.empty()) {
    // A second accept source on the same loop: unix-domain peers get the
    // same Connection/FrameParser/backpressure path as TCP peers — only
    // the accept syscall's address family differs.
    unix_listener_.emplace(Listener::unix_listener(opts_.unix_path));
    ev.events = EPOLLIN;
    ev.data.u64 = kUnixListenerTag;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, unix_listener_->fd(),
                    &ev) < 0) {
      throw_errno("epoll_ctl(unix listener)");
    }
    unix_listener_armed_ = true;
  }
  // Splice the loop's own health into the service's STATS body: TCP
  // clients see one coherent metrics page.  The render reads only atomics,
  // so any thread may call stats_text() while the loop runs.  A
  // ReactorPool member loop skips this — the pool renders all its loops
  // through one hook instead.
  if (opts_.register_stats) {
    service_.set_extra_stats([this] { return render_loop_stats(); });
  }
}

EventLoop::~EventLoop() {
  // Unhook before members die; a stats_text() racing the destructor is the
  // caller's lifetime bug (the loop must outlive its servers), this just
  // keeps an orderly shutdown from rendering freed counters.
  if (opts_.register_stats) service_.set_extra_stats({});
}

std::uint16_t EventLoop::port() const noexcept { return listener_.port(); }

void EventLoop::stop() noexcept {
  stop_requests_.fetch_add(1, std::memory_order_relaxed);
  mailbox_->wake();
}

void EventLoop::run() {
  epoll_event events[64];
  for (;;) {
    const int stops = stop_requests_.load(std::memory_order_relaxed);
    if (stops > 0 && !stopping_) begin_shutdown();
    if (stops >= 2) force_close_all();
    if (stopping_ && conns_.empty()) return;

    const int n = ::epoll_wait(epoll_.get(), events,
                               static_cast<int>(std::size(events)), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    // Loop lag = how long this batch keeps the thread away from
    // epoll_wait; every connection's tail latency rides on it.
    const auto batch_begin = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      const std::uint32_t flags = events[i].events;
      if (tag == kListenerTag) {
        accept_ready(listener_);
        continue;
      }
      if (tag == kUnixListenerTag) {
        accept_ready(*unix_listener_);
        continue;
      }
      if (tag == kMailboxTag) {
        drain_mailbox();
        continue;
      }
      // A connection may have been closed by an earlier event in this same
      // batch (or by a completion); stale tags simply miss.
      if (conns_.find(tag) == conns_.end()) continue;
      if ((flags & (EPOLLHUP | EPOLLERR)) != 0 &&
          (flags & EPOLLIN) == 0) {
        // Pure error/hangup with nothing readable: the peer is gone.
        stats_.dropped_error.fetch_add(1, std::memory_order_relaxed);
        close_connection(tag, /*drop=*/true);
        continue;
      }
      if ((flags & EPOLLIN) != 0) handle_readable(tag);
      if (conns_.find(tag) != conns_.end() && (flags & EPOLLOUT) != 0) {
        settle(tag);
      }
    }
    stats_.wakeups.fetch_add(1, std::memory_order_relaxed);
    stats_.loop_lag.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - batch_begin)
            .count()));
  }
}

void EventLoop::accept_ready(Listener& from) {
  for (;;) {
    ScopedFd fd = from.accept_one();
    if (!fd) return;
    if (stopping_ || conns_.size() >= opts_.max_connections) {
      // Refuse by closing: the client sees a clean EOF, retries elsewhere.
      stats_.rejected_at_capacity.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (opts_.so_sndbuf > 0) {
      ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &opts_.so_sndbuf,
                   sizeof opts_.so_sndbuf);
    }
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(std::move(fd), id, opts_.parser);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, conn->fd(), &ev) < 0) {
      continue;  // kernel refused; drop the socket
    }
    conn->registered_events = EPOLLIN;
    conns_.emplace(id, std::move(conn));
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
  }
}

void EventLoop::drain_mailbox() {
  for (auto& c : mailbox_->drain()) {
    const auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) {
      // The connection died while its job was routing; nobody to tell.
      stats_.completions_discarded.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Connection& conn = *it->second;
    if (c.partial) {
      // Mid-response progress: the job is still running, so the ticket
      // stays in flight; just stream (or park) the bytes and flush.
      conn.progress(c.seq, std::move(c.frame));
      settle(c.conn_id);
      continue;
    }
    conn.job_completed();
    if (c.load) conn.load_inflight = false;  // barrier down: deferred replay
    conn.complete(c.seq, std::move(c.frame));
    settle(c.conn_id);
  }
}

void EventLoop::handle_readable(std::uint64_t id) {
  Connection& conn = *conns_.at(id);
  char buf[64 * 1024];
  std::vector<FrameParser::Event> events;
  // Fairness bound: a sender faster than our parsing must not monopolize
  // the loop — after a few buffers, fall back to epoll (level-triggered,
  // so the remaining data re-reports immediately) and let other
  // connections, accepts, and the completion mailbox run.
  int rounds = 4;
  while (!conn.reads_suspended && !conn.eof && rounds-- > 0) {
    const ssize_t r = ::recv(conn.fd(), buf, sizeof buf, 0);
    if (r > 0) {
      stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(r),
                                std::memory_order_relaxed);
      events.clear();
      conn.parser().feed(buf, static_cast<std::size_t>(r), events);
      process_events(conn, events);
      if (conn.quit || conn.close_after_flush || conn.parser().dead()) {
        conn.reads_suspended = true;  // no further commands will be served
        break;
      }
      if (conn.reads_suspended) break;  // backpressured mid-batch
      continue;
    }
    if (r == 0) {
      // Peer finished sending.  Possibly a half-close: keep flushing what
      // it is still owed; settle() closes once drained.  The parser may
      // hold a trailing LF-less command line — the blocking front-end
      // serves those, so flush and dispatch it for parity.
      conn.eof = true;
      conn.reads_suspended = true;
      events.clear();
      conn.parser().finish_eof(events);
      process_events(conn, events);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    stats_.dropped_error.fetch_add(1, std::memory_order_relaxed);
    close_connection(id, /*drop=*/true);
    return;
  }
  settle(id);
}

void EventLoop::process_events(Connection& conn,
                               std::vector<FrameParser::Event>& events,
                               std::size_t from) {
  for (std::size_t i = from; i < events.size(); ++i) {
    // Commands after QUIT or a fatal framing error are never served.
    if (conn.quit || conn.close_after_flush) break;
    const bool backpressured = conn.backlog() > opts_.write_high_water ||
                               conn.inflight() >= opts_.max_inflight;
    if (backpressured || conn.load_inflight) {
      // One recv batch of cheap commands can outrun the write marks all
      // by itself, and fail-fast ROUTE responses park in the mailbox
      // where the byte marks cannot see them; park the surplus so both
      // bounds hold even against a single pipelined burst.  An offloaded
      // LOAD parks everything behind it too (the ordering barrier) —
      // that is sequencing, not a slow reader, so it skips the
      // backpressure stat.
      stats_.parked.fetch_add(events.size() - i, std::memory_order_relaxed);
      for (std::size_t j = i; j < events.size(); ++j) {
        conn.deferred.push_back(std::move(events[j]));
      }
      if (!conn.reads_suspended) {
        conn.reads_suspended = true;
        if (backpressured) {
          stats_.reads_suspended.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return;
    }
    dispatch(conn, events[i]);
  }
}

void EventLoop::dispatch(Connection& conn, FrameParser::Event& ev) {
  if (ev.kind != FrameParser::EventKind::kCommand) {
    stats_.commands.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t err_seq = conn.assign_seq();
    conn.complete(err_seq, serve::format_err(ev.error));
    if (ev.kind == FrameParser::EventKind::kFatal) {
      conn.close_after_flush = true;
      conn.deferred.clear();
    }
    return;
  }

  // Classify before taking a response ticket: an unanswered ticket would
  // wedge the connection's in-order flush pipeline forever, so a line that
  // produces no response (blank — the parser filters these, defensive)
  // must not consume one.
  const serve::ClassifiedCommand cmd = serve::classify_command(ev.line);
  if (cmd.kind == serve::CommandKind::kBlank) return;
  stats_.commands.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t seq = conn.assign_seq();
  // span_parse_us origin: dispatch -> submit covers this front-end's knob
  // validation and request lowering (a parked command's queueing shows up
  // in the loop counters, not in its parse span).
  const auto received = std::chrono::steady_clock::now();

  switch (cmd.kind) {
    case serve::CommandKind::kBlank:
      return;  // unreachable; handled above
    case serve::CommandKind::kQuit:
      conn.complete(seq, serve::format_ok("bye", ""));
      conn.quit = true;
      conn.close_after_flush = true;
      conn.deferred.clear();
      return;
    case serve::CommandKind::kStats:
      conn.complete(seq, serve::exec_stats(service_));
      return;
    case serve::CommandKind::kHello:
      // Static capability text straight off the verb table; loop-thread
      // cheap by construction.
      conn.complete(seq, serve::format_hello(service_.uptime_s()));
      return;
    case serve::CommandKind::kTrace: {
      // A bounded copy of the slow ring (<= 256 small records): loop-thread
      // cheap, answered inline like STATS.
      try {
        conn.complete(seq, serve::exec_trace(
                               service_, serve::parse_trace_count(cmd.args)));
      } catch (const std::exception& e) {
        conn.complete(seq, serve::format_err(e.what()));
      }
      return;
    }
    case serve::CommandKind::kLoad: {
      // Repeat LOADs of resident content answer inline: the probe costs
      // one content hash — O(body bytes), which the loop pays knowingly;
      // it is orders of magnitude cheaper than the parse + environment
      // build and is what keeps the common resident case off the queue.
      // Cold LOADs go to the worker pool (with the already-computed key,
      // so the body is hashed exactly once) so a cold-session storm
      // cannot stall the loop thread; the barrier parks this connection's
      // later commands until the session exists (pipelined LOAD→ROUTE
      // must still resolve).
      std::string key;
      if (const auto cached = service_.sessions().find_content(ev.body, &key)) {
        conn.complete(seq, serve::format_load_ok(*cached, true));
        return;
      }
      conn.job_dispatched();
      conn.load_inflight = true;
      service_.submit_load(
          std::move(ev.body), std::move(key), conn.cancel_token(),
          [mailbox = mailbox_, id = conn.id(),
           seq](serve::LoadResponse resp) {
            mailbox->post({id, seq, serve::format_load_response(resp),
                           /*load=*/true});
          });
      return;
    }
    case serve::CommandKind::kRoute:
    case serve::CommandKind::kReroute: {
      serve::RouteCommand rc;
      try {
        rc = cmd.kind == serve::CommandKind::kRoute
                 ? serve::parse_route_command(cmd.args)
                 : serve::parse_reroute_command(cmd.args);
      } catch (const std::exception& e) {
        conn.complete(seq, serve::format_err(e.what()));
        return;
      }
      // REROUTE against a pin handle reroutes the pin's own committed
      // remainder (owner-gated, serialized on the pin's ticket chain)
      // instead of the shared stateless path.  The registry probe is one
      // locked map lookup — loop-thread cheap.
      if (cmd.kind == serve::CommandKind::kReroute &&
          service_.pins().find(rc.session_key) != nullptr) {
        serve::PinRequest preq;
        preq.op = serve::PinRequest::Op::kReroute;
        preq.key = rc.session_key;
        preq.nets = rc.nets;
        preq.wire_halo = rc.opts.wire_halo;
        preq.owner = conn.cancel_token();
        conn.job_dispatched();
        service_.submit_pin(
            std::move(preq),
            [mailbox = mailbox_, id = conn.id(),
             seq](serve::PinResponse resp) {
              mailbox->post({id, seq,
                             serve::format_pin_response(
                                 resp, serve::PinRequest::Op::kReroute)});
            });
        return;
      }
      serve::RouteRequest req = serve::to_request(rc);
      req.received = received;
      req.cancel = conn.cancel_token();
      conn.job_dispatched();
      // The callback runs on a worker thread (or inline for fail-fast
      // statuses): format there — route dumps are the expensive part of a
      // response and must stay off the loop — then post the finished bytes.
      service_.submit(std::move(req),
                      [mailbox = mailbox_, id = conn.id(),
                       seq](serve::RouteResponse resp) {
                        mailbox->post({id, seq,
                                       serve::format_route_response(resp)});
                      });
      return;
    }
    case serve::CommandKind::kOptimize: {
      serve::RouteRequest req;
      try {
        req = serve::to_request(serve::parse_optimize_command(cmd.args));
      } catch (const std::exception& e) {
        conn.complete(seq, serve::format_err(e.what()));
        return;
      }
      req.received = received;
      req.cancel = conn.cancel_token();
      // Progress lines post as partial completions under the same ticket:
      // they stream to the client as passes finish, yet still respect
      // pipelined request order — an OPTIMIZE behind a slow ROUTE parks
      // its PASS lines with the ticket until the ROUTE's frame flushes.
      req.progress = [mailbox = mailbox_, id = conn.id(),
                      seq](const route::OptimizePassStats& stats) {
        mailbox->post({id, seq, serve::format_pass_progress(stats),
                       /*load=*/false, /*partial=*/true});
      };
      conn.job_dispatched();
      service_.submit(std::move(req),
                      [mailbox = mailbox_, id = conn.id(),
                       seq](serve::RouteResponse resp) {
                        mailbox->post(
                            {id, seq, serve::format_optimize_response(resp)});
                      });
      return;
    }
    case serve::CommandKind::kDetail:
    case serve::CommandKind::kCongest:
    case serve::CommandKind::kVerify:
    case serve::CommandKind::kSvg: {
      const pipeline::StageKind stage_kind =
          cmd.kind == serve::CommandKind::kDetail
              ? pipeline::StageKind::kDetail
          : cmd.kind == serve::CommandKind::kCongest
              ? pipeline::StageKind::kCongest
          : cmd.kind == serve::CommandKind::kVerify
              ? pipeline::StageKind::kVerify
              : pipeline::StageKind::kSvg;
      serve::RouteRequest req;
      try {
        req = serve::to_request(
            serve::parse_stage_command(stage_kind, cmd.args));
      } catch (const std::exception& e) {
        conn.complete(seq, serve::format_err(e.what()));
        return;
      }
      req.received = received;
      req.cancel = conn.cancel_token();
      conn.job_dispatched();
      // Same shape as ROUTE: the stage runs (or its cached result is
      // fetched) on a worker, the body — possibly a multi-MB SVG — is
      // formatted there, and the finished frame posts back for the
      // in-order backpressured flush.
      service_.submit(std::move(req),
                      [mailbox = mailbox_, id = conn.id(),
                       seq](serve::RouteResponse resp) {
                        mailbox->post({id, seq,
                                       serve::format_stage_response(resp)});
                      });
      return;
    }
    case serve::CommandKind::kGen: {
      serve::GenCommand gen;
      try {
        gen = serve::parse_gen_command(cmd.args);
      } catch (const std::exception& e) {
        conn.complete(seq, serve::format_err(e.what()));
        return;
      }
      // Synthesis is deterministic but NOT loop-thread cheap: the parse
      // caps admit cells=4096 with nets=65536, whose per-net shuffles run
      // for seconds.  It therefore runs on a worker (like the cold LOAD
      // build), which then feeds the synthesized text through LOAD's exact
      // path — content probe, session build, cache insert — with the same
      // ordering barrier for pipelined GEN→ROUTE.
      conn.job_dispatched();
      conn.load_inflight = true;
      service_.submit_gen(
          [gen] { return serve::generate_workload_text(gen); },
          conn.cancel_token(),
          [mailbox = mailbox_, id = conn.id(), seq, kind = gen.kind,
           service = &service_](serve::LoadResponse resp) {
            service->record_gen(resp.ok);
            std::string frame =
                resp.ok ? serve::format_gen_ok(*resp.session, resp.cache_hit,
                                               kind)
                        : serve::format_err(resp.error);
            mailbox->post({id, seq, std::move(frame), /*load=*/true});
          });
      return;
    }
    case serve::CommandKind::kPin:
    case serve::CommandKind::kUnpin:
    case serve::CommandKind::kCommit:
    case serve::CommandKind::kUncommit:
    case serve::CommandKind::kSave: {
      serve::PinRequest req;
      try {
        req = serve::parse_pin_command(cmd.kind, cmd.args);
      } catch (const std::exception& e) {
        conn.complete(seq, serve::format_err(e.what()));
        return;
      }
      const serve::PinRequest::Op op = req.op;
      // The connection's cancel token is the pin owner: pointer identity
      // gates every later mutation, and close_connection's release_pins
      // call frees the pins when this peer goes away.
      req.owner = conn.cancel_token();
      conn.job_dispatched();
      service_.submit_pin(std::move(req),
                          [mailbox = mailbox_, id = conn.id(), seq,
                           op](serve::PinResponse resp) {
                            mailbox->post(
                                {id, seq,
                                 serve::format_pin_response(resp, op)});
                          });
      return;
    }
    case serve::CommandKind::kUnknown:
      break;
  }
  conn.complete(seq,
                serve::format_err("unknown command '" + cmd.keyword + "'"));
}

void EventLoop::settle(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;

  for (;;) {
    while (conn.has_output()) {
      const ssize_t w = ::send(conn.fd(), conn.out_data(), conn.out_size(),
                               MSG_NOSIGNAL);
      if (w > 0) {
        stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(w),
                                   std::memory_order_relaxed);
        conn.out_consume(static_cast<std::size_t>(w));
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EPIPE/ECONNRESET: the peer is gone.  Cancel whatever it still has
      // queued and discard the connection.
      stats_.dropped_error.fetch_add(1, std::memory_order_relaxed);
      close_connection(id, /*drop=*/true);
      return;
    }

    if (conn.backlog() > opts_.write_hard_cap) {
      // The socket stopped accepting and responses keep accumulating: this
      // reader is too slow to serve while a response is pending.
      stats_.dropped_slow.fetch_add(1, std::memory_order_relaxed);
      close_connection(id, /*drop=*/true);
      return;
    }

    // Work parked by mid-batch backpressure resumes once the peer has
    // drained below the low-water mark; whatever it produces goes back
    // through the flush above.  Dispatch pops the deque front in place —
    // the undispatched tail stays put, so replay cost is O(1) amortized
    // per command no matter how often the limits interrupt it (a
    // wholesale move-out/re-park here would be quadratic against a large
    // parked burst drained one completion at a time).
    if (conn.deferred.empty() || conn.quit || conn.close_after_flush ||
        conn.load_inflight ||
        conn.backlog() > opts_.write_high_water / 2 ||
        conn.inflight() >= opts_.max_inflight) {
      break;
    }
    while (!conn.deferred.empty() && !conn.quit && !conn.close_after_flush &&
           !conn.load_inflight &&
           conn.backlog() <= opts_.write_high_water &&
           conn.inflight() < opts_.max_inflight) {
      FrameParser::Event ev = std::move(conn.deferred.front());
      conn.deferred.pop_front();
      stats_.replayed.fetch_add(1, std::memory_order_relaxed);
      // dispatch may clear the deque (QUIT); ev was moved out already.
      dispatch(conn, ev);
    }
  }

  if ((conn.close_after_flush || conn.eof) && conn.drained() &&
      conn.deferred.empty()) {
    close_connection(id, /*drop=*/false);
    return;
  }

  // Resume reads once a backpressured (but otherwise live) connection has
  // drained to half the high-water mark — hysteresis so a borderline peer
  // does not flap between suspend and resume per byte.  Conversely suspend
  // when *completions* (not reads) pushed the backlog over the mark: an
  // unread socket then fills the peer's TCP window and stalls the sender
  // itself, which is backpressure all the way down.
  if (conn.reads_suspended && !conn.eof && !conn.quit &&
      !conn.close_after_flush && !conn.parser().dead() && !stopping_ &&
      conn.deferred.empty() && !conn.load_inflight &&
      conn.inflight() < opts_.max_inflight &&
      conn.backlog() <= opts_.write_high_water / 2) {
    conn.reads_suspended = false;
  } else if (!conn.reads_suspended &&
             conn.backlog() > opts_.write_high_water) {
    conn.reads_suspended = true;
    stats_.reads_suspended.fetch_add(1, std::memory_order_relaxed);
  }

  update_interest(conn);
}

void EventLoop::update_interest(Connection& conn) {
  const std::uint32_t want = (conn.reads_suspended ? 0u : EPOLLIN) |
                             (conn.has_output() ? EPOLLOUT : 0u);
  if (want == conn.registered_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn.fd(), &ev) == 0) {
    conn.registered_events = want;
  }
}

void EventLoop::close_connection(std::uint64_t id, bool drop) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (drop) {
    // Jobs still queued for this peer die at dequeue instead of routing
    // into the void; late completions are discarded in drain_mailbox.
    it->second->cancel_token()->store(true, std::memory_order_relaxed);
  }
  // Either way the owner identity is gone: auto-release this connection's
  // pins so the handles become claimable (and UNPIN-able) by successors.
  // During a drain, ownership is dropped but the sessions stay registered:
  // the shutdown path still owes each one a final SAVE.
  service_.release_pins(it->second->cancel_token(), /*preserve=*/stopping_);
  // Closing the fd (ScopedFd dtor) deregisters it from epoll implicitly.
  conns_.erase(it);
  stats_.closed.fetch_add(1, std::memory_order_relaxed);
  stats_.connections.fetch_sub(1, std::memory_order_relaxed);
}

void EventLoop::begin_shutdown() {
  stopping_ = true;
  if (listener_armed_) {
    ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, listener_.fd(), nullptr);
    listener_armed_ = false;
  }
  if (unix_listener_armed_) {
    ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, unix_listener_->fd(), nullptr);
    unix_listener_armed_ = false;
  }
  // Stop taking commands everywhere; settle() each connection so the ones
  // already drained close immediately and the rest close as their
  // in-flight jobs finish and flush.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) {
    conn->reads_suspended = true;
    conn->close_after_flush = true;
    conn->deferred.clear();  // commands after shutdown are not served
    ids.push_back(id);
  }
  for (const std::uint64_t id : ids) settle(id);
}

void EventLoop::force_close_all() {
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) close_connection(id, /*drop=*/true);
}

std::string EventLoop::render_loop_stats() const {
  return gcr::net::render_loop_stats(snapshot_loop_stats(stats_), "loop_");
}

#else  // !GCR_NET_HAVE_EPOLL

EventLoop::EventLoop(serve::RoutingService& service,
                     const EventLoopOptions& opts)
    : service_(service), opts_(opts), listener_(opts.port) {
  throw std::runtime_error("gcr::net::EventLoop requires Linux epoll");
}

EventLoop::~EventLoop() = default;
std::uint16_t EventLoop::port() const noexcept { return 0; }
void EventLoop::run() {}
void EventLoop::stop() noexcept {}
void EventLoop::accept_ready(Listener&) {}
void EventLoop::drain_mailbox() {}
void EventLoop::handle_readable(std::uint64_t) {}
void EventLoop::process_events(Connection&, std::vector<FrameParser::Event>&,
                               std::size_t) {}
void EventLoop::dispatch(Connection&, FrameParser::Event&) {}
void EventLoop::settle(std::uint64_t) {}
void EventLoop::close_connection(std::uint64_t, bool) {}
void EventLoop::begin_shutdown() {}
void EventLoop::force_close_all() {}
void EventLoop::update_interest(Connection&) {}
std::string EventLoop::render_loop_stats() const { return {}; }

#endif  // GCR_NET_HAVE_EPOLL

// ------------------------------------------------------------------------
// Loop-stats snapshot/render — pure computation, platform-independent.

void LoopStatsView::merge(const LoopStatsView& other) {
  connections += other.connections;
  accepted += other.accepted;
  rejected_at_capacity += other.rejected_at_capacity;
  closed += other.closed;
  commands += other.commands;
  reads_suspended += other.reads_suspended;
  dropped_slow += other.dropped_slow;
  dropped_error += other.dropped_error;
  completions_discarded += other.completions_discarded;
  parked += other.parked;
  replayed += other.replayed;
  bytes_in += other.bytes_in;
  bytes_out += other.bytes_out;
  wakeups += other.wakeups;
  for (std::size_t i = 0; i < lag.buckets.size(); ++i) {
    lag.buckets[i] += other.lag.buckets[i];
  }
  lag.count += other.lag.count;
  lag.sum += other.lag.sum;
}

LoopStatsView snapshot_loop_stats(const EventLoopStats& stats) {
  const auto v = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  LoopStatsView view;
  view.connections = v(stats.connections);
  view.accepted = v(stats.accepted);
  view.rejected_at_capacity = v(stats.rejected_at_capacity);
  view.closed = v(stats.closed);
  view.commands = v(stats.commands);
  view.reads_suspended = v(stats.reads_suspended);
  view.dropped_slow = v(stats.dropped_slow);
  view.dropped_error = v(stats.dropped_error);
  view.completions_discarded = v(stats.completions_discarded);
  view.parked = v(stats.parked);
  view.replayed = v(stats.replayed);
  view.bytes_in = v(stats.bytes_in);
  view.bytes_out = v(stats.bytes_out);
  view.wakeups = v(stats.wakeups);
  view.lag = stats.loop_lag.snapshot();
  return view;
}

std::string render_loop_stats(const LoopStatsView& view,
                              const std::string& prefix) {
  std::ostringstream os;
  os << prefix << "connections " << view.connections << '\n'
     << prefix << "accepted " << view.accepted << '\n'
     << prefix << "rejected_at_capacity " << view.rejected_at_capacity << '\n'
     << prefix << "closed " << view.closed << '\n'
     << prefix << "commands " << view.commands << '\n'
     << prefix << "reads_suspended " << view.reads_suspended << '\n'
     << prefix << "dropped_slow " << view.dropped_slow << '\n'
     << prefix << "dropped_error " << view.dropped_error << '\n'
     << prefix << "completions_discarded " << view.completions_discarded
     << '\n'
     << prefix << "parked " << view.parked << '\n'
     << prefix << "replayed " << view.replayed << '\n'
     << prefix << "bytes_in " << view.bytes_in << '\n'
     << prefix << "bytes_out " << view.bytes_out << '\n'
     << prefix << "wakeups " << view.wakeups << '\n'
     << prefix << "lag_p50_us " << view.lag.percentile(50) << '\n'
     << prefix << "lag_p95_us " << view.lag.percentile(95) << '\n'
     << prefix << "lag_p99_us " << view.lag.percentile(99) << '\n';
  return os.str();
}

}  // namespace gcr::net
